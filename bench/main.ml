(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (§IV) on the synthetic substrate.

   Experiments (see DESIGN.md's per-experiment index):
     e1          robustness: Null transform on the large workloads (§IV-A)
     fig4        file-size overhead histogram (Figure 4)
     fig5        execution overhead histogram (Figure 5)
     fig6        memory overhead histogram (Figure 6)
     fig7        average overheads (Figure 7)
     security    PoV outcomes per configuration (§IV-B, CFI)
     throughput  rewriter processing time vs binary size (§IV-A timings)
     ablation    placement strategies: naive vs optimized vs random (§III)
     pinning     pinned-address policy: conservative vs relaxed (§II-A2)
     jtrw        jump-table rewriting: statically modelled IBTs (§II-A2)
     defenses    every shipped defense compared on overhead + PoVs blocked
     micro       Bechamel micro-benchmarks, one per table/figure

   Run with no arguments to execute everything; or pass a subset of the
   experiment names. *)

module Histogram = Zipr_util.Histogram
module Stats = Zipr_util.Stats

let say fmt = Format.printf (fmt ^^ "@.")

(* ------------------------------------------------------------------ *)
(* Corpus evaluation shared by fig4-7 and security.                    *)
(* ------------------------------------------------------------------ *)

type cb_result = {
  name : string;
  null_eval : Cgc.Score.eval;
  cfi_eval : Cgc.Score.eval;
  null_stats : Zipr.Reassemble.stats;
  cfi_stats : Zipr.Reassemble.stats;
}

let corpus_results : cb_result list Lazy.t =
  lazy
    (let entries = Cgc.Corpus.build () in
     List.map
       (fun (e : Cgc.Corpus.entry) ->
         let orig = e.Cgc.Corpus.binary in
         let rn = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] orig in
         let rc = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Cfi.transform ] orig in
         let null_eval =
           Cgc.Score.evaluate ~name:e.Cgc.Corpus.name ~orig
             ~rewritten:rn.Zipr.Pipeline.rewritten ~meta:e.Cgc.Corpus.meta
             ~pollers:e.Cgc.Corpus.pollers
         in
         let cfi_eval =
           Cgc.Score.evaluate ~name:e.Cgc.Corpus.name ~orig
             ~rewritten:rc.Zipr.Pipeline.rewritten ~meta:e.Cgc.Corpus.meta
             ~pollers:e.Cgc.Corpus.pollers
         in
         {
           name = e.Cgc.Corpus.name;
           null_eval;
           cfi_eval;
           null_stats = rn.Zipr.Pipeline.stats;
           cfi_stats = rc.Zipr.Pipeline.stats;
         })
       entries)

let overhead_figure ~title ~metric () =
  let results = Lazy.force corpus_results in
  let h_null = Histogram.paper_bins () and h_cfi = Histogram.paper_bins () in
  List.iter
    (fun r ->
      Histogram.add h_null (metric r.null_eval);
      Histogram.add h_cfi (metric r.cfi_eval))
    results;
  print_string (Histogram.render h_null ~title:(title ^ " — baseline Zipr (Null transform)"));
  print_string (Histogram.render h_cfi ~title:(title ^ " — Zipr + CFI"))

let fig4 () =
  say "== Figure 4: histogram of file-size overhead (62 CBs) ==";
  overhead_figure ~title:"File-size overhead"
    ~metric:(fun e -> e.Cgc.Score.ov.Cgc.Score.size_pct)
    ();
  say "(paper: both configurations < 5%% for nearly all CBs, within the 20%% threshold)"

let fig5 () =
  say "== Figure 5: histogram of execution overhead (62 CBs) ==";
  overhead_figure ~title:"Execution overhead"
    ~metric:(fun e -> e.Cgc.Score.ov.Cgc.Score.exec_pct)
    ();
  say "(paper: vast majority within 5%%; CFI shifts several CBs into higher bins)"

let fig6 () =
  say "== Figure 6: histogram of memory (MaxRSS) overhead (62 CBs) ==";
  overhead_figure ~title:"Memory overhead"
    ~metric:(fun e -> e.Cgc.Score.ov.Cgc.Score.mem_pct)
    ();
  let results = Lazy.force corpus_results in
  let outlier =
    List.fold_left
      (fun acc r ->
        let m = r.cfi_eval.Cgc.Score.ov.Cgc.Score.mem_pct in
        match acc with Some (_, best) when best >= m -> acc | _ -> Some (r.name, m))
      None results
  in
  (match outlier with
  | Some (name, pct) -> say "worst CFI memory overhead: %s at %+.1f%%" name pct
  | None -> ());
  say "(paper: majority within 5%%; one pathological CB exceeded 50%% under CFI)"

let fig7 () =
  say "== Figure 7: average overheads across the corpus ==";
  let results = Lazy.force corpus_results in
  let avg metric evals = Stats.mean (List.map metric evals) in
  let nulls = List.map (fun r -> r.null_eval) results in
  let cfis = List.map (fun r -> r.cfi_eval) results in
  say "%-22s %12s %12s" "metric" "baseline" "zipr+CFI";
  say "%-22s %11.2f%% %11.2f%%" "file size"
    (avg (fun e -> e.Cgc.Score.ov.Cgc.Score.size_pct) nulls)
    (avg (fun e -> e.Cgc.Score.ov.Cgc.Score.size_pct) cfis);
  say "%-22s %11.2f%% %11.2f%%" "execution"
    (avg (fun e -> e.Cgc.Score.ov.Cgc.Score.exec_pct) nulls)
    (avg (fun e -> e.Cgc.Score.ov.Cgc.Score.exec_pct) cfis);
  say "%-22s %11.2f%% %11.2f%%" "memory"
    (avg (fun e -> e.Cgc.Score.ov.Cgc.Score.mem_pct) nulls)
    (avg (fun e -> e.Cgc.Score.ov.Cgc.Score.mem_pct) cfis);
  say "(paper: low average overheads for all three metrics in both configurations)"

let security () =
  say "== Security: PoV outcomes (§IV-B) ==";
  let results = Lazy.force corpus_results in
  let count f = List.length (List.filter f results) in
  let n = List.length results in
  let entries = Cgc.Corpus.build () in
  let pov_kinds =
    List.concat_map (fun (e : Cgc.Corpus.entry) -> Cgc.Pov.povs e.Cgc.Corpus.meta) entries
    |> List.map fst
  in
  let kind_count k = List.length (List.filter (( = ) k) pov_kinds) in
  say "corpus: %d CBs; %d PoVs (%d return hijacks, %d function-pointer hijacks)" n
    (List.length pov_kinds)
    (kind_count "stack-overflow")
    (kind_count "fptr-overwrite");
  say "original / Null-rewritten: exploited on %d/%d (PoV must still work: rewriting alone is not a defense)"
    (count (fun r -> r.null_eval.Cgc.Score.pov_blocked = Some false))
    n;
  say "Zipr + CFI: blocked on %d/%d"
    (count (fun r -> r.cfi_eval.Cgc.Score.pov_blocked = Some true))
    n;
  let avg_score evals = Stats.mean (List.map Cgc.Score.total evals) in
  say "mean CFE-style score: baseline %.3f, zipr+CFI %.3f"
    (avg_score (List.map (fun r -> r.null_eval) results))
    (avg_score (List.map (fun r -> r.cfi_eval) results));
  say "poller functionality: baseline %d/%d CBs fully passing, CFI %d/%d"
    (count (fun r -> r.null_eval.Cgc.Score.functionality = 1.0))
    n
    (count (fun r -> r.cfi_eval.Cgc.Score.functionality = 1.0))
    n

(* ------------------------------------------------------------------ *)
(* E1: robustness (§IV-A)                                              *)
(* ------------------------------------------------------------------ *)

let e1 () =
  say "== E1: robustness — Null transform on large workloads (§IV-A) ==";
  say "%-18s %10s %10s %12s %12s %10s" "workload" "text(B)" "file(B)" "rewrite(s)" "tests" "size ovh";
  List.iter
    (fun (w : Workloads.Synthetic.spec) ->
      let orig = w.Workloads.Synthetic.binary in
      let t0 = Unix.gettimeofday () in
      let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] orig in
      let dt = Unix.gettimeofday () -. t0 in
      let chk =
        Cgc.Poller.functional_check ~orig ~rewritten:r.Zipr.Pipeline.rewritten
          w.Workloads.Synthetic.test_suite
      in
      let size_ov =
        Stats.overhead_pct
          ~baseline:(float_of_int (Zelf.Binary.file_size orig))
          ~measured:(float_of_int (Zelf.Binary.file_size r.Zipr.Pipeline.rewritten))
      in
      say "%-18s %10d %10d %12.3f %8d/%d %+9.1f%%" w.Workloads.Synthetic.name
        (Zelf.Binary.text orig).Zelf.Section.size
        (Zelf.Binary.file_size orig) dt chk.Cgc.Poller.passed chk.Cgc.Poller.total size_ov)
    (Workloads.Synthetic.all ());
  say "(paper: rewritten libc passed its full unit-test suite; libjvm and Apache showed no failures)"

(* ------------------------------------------------------------------ *)
(* Throughput (§IV-A timings)                                          *)
(* ------------------------------------------------------------------ *)

(* [--json] makes throughput also write BENCH_throughput.json (per-workload
   timings, dollop counts and allocator traffic) for CI trend tracking;
   [--small] drops the 5x jvm-like workload so the smoke run stays cheap;
   [--jobs N] sets the worker-domain count for the corpus section (0 =
   auto-detect the core count);
   [--ir-jobs N] sets the intra-binary IR worker count per rewrite (0 =
   auto); output bytes are identical at any value;
   [--trace] installs an obs sink for the whole run — the aggregated
   per-phase table prints at the end, and with [--json] the report embeds
   into BENCH_throughput.json under the "obs" key. *)
let json_mode = ref false
let small_mode = ref false
let jobs = ref 1
let ir_jobs = ref 1
let clients = ref 4
let trace_mode = ref false

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Host facts embedded in every BENCH_*.json: timing figures are only
   comparable between runs on a known substrate, so each report records
   the core count, compiler and corpus size it was measured with. *)
let host_json ~corpus_size =
  Printf.sprintf
    "\"host\": { \"cores\": %d, \"ocaml_version\": \"%s\", \"corpus_size\": %d }"
    (Domain.recommended_domain_count ())
    (json_escape Sys.ocaml_version)
    corpus_size

(* Distribution summary (nearest-rank percentiles) — the migrated
   benches report p50/p90/max rather than bare means. *)
let dist_json xs =
  Printf.sprintf "{ \"p50\": %.4f, \"p90\": %.4f, \"max\": %.4f }"
    (Stats.percentile xs 50.0) (Stats.percentile xs 90.0) (Stats.percentile xs 100.0)

(* The corpus section of the throughput experiment: the scale-out corpus
   (the same deterministic class mix the placement bench draws from, at
   least 120 members) rewritten through [Parallel.Corpus].

   A serial admission pass runs first: the few corpus members the
   pipeline itself cannot rewrite (a pin slot colliding with a fixed
   data island — a strategy- and config-independent verdict, see the
   placement bench) are excluded from every measured pass and accounted
   for in the JSON; more than 2% failing means the generator regressed,
   so the run aborts.

   [speedup_vs_serial] is the {e schedule} speedup: the serial run's
   wall-clock divided by the parallel schedule's critical path, where the
   critical path charges each shard the serially-measured durations of
   the binaries it processed.  On a machine with at least [jobs] cores
   this equals the wall-clock speedup (minus queue overhead); on fewer
   cores — CI runners are often single-core — the domains time-share and
   raw wall-clock measures the scheduler, not the rewriter, so we report
   both and label them. *)
let corpus_section () =
  let count = if !small_mode then 120 else 360 in
  let corpus = Workloads.Scale.corpus ~seed:9 ~count () in
  let all_items =
    List.map
      (fun (it : Workloads.Scale.item) ->
        {
          Parallel.Corpus.name = it.Workloads.Scale.name;
          data = Zelf.Binary.serialize it.Workloads.Scale.binary;
        })
      corpus
  in
  let corpus_seed = 7 in
  let transforms = [ Transforms.Null.transform ] in
  let config = { Zipr.Pipeline.default_config with Zipr.Pipeline.ir_jobs = !ir_jobs } in
  let jobs_resolved = Zipr.Pipeline.resolve_jobs !jobs in
  let probe = Parallel.Corpus.rewrite_all ~jobs:1 ~config ~transforms ~corpus_seed all_items in
  let excluded =
    List.filter_map
      (fun (e : Parallel.Corpus.entry) ->
        match e.Parallel.Corpus.result with
        | Error m -> Some (e.Parallel.Corpus.name, m)
        | Ok _ -> None)
      probe.Parallel.Corpus.entries
  in
  List.iter (fun (n, m) -> say "excluded (unsupported) %s: %s" n m) excluded;
  if 100 * List.length excluded > 2 * count then
    failwith
      (Printf.sprintf "throughput: %d/%d unsupported corpus members exceeds the 2%% tolerance"
         (List.length excluded) count);
  let items =
    List.filter
      (fun (it : Parallel.Corpus.item) ->
        not (List.mem_assoc it.Parallel.Corpus.name excluded))
      all_items
  in
  let serial = Parallel.Corpus.rewrite_all ~jobs:1 ~config ~transforms ~corpus_seed items in
  let par =
    if jobs_resolved <= 1 then serial
    else Parallel.Corpus.rewrite_all ~jobs:jobs_resolved ~config ~transforms ~corpus_seed items
  in
  (* Critical path of the parallel schedule, charged at serial prices. *)
  let serial_elapsed =
    let a = Array.make (List.length items) 0.0 in
    List.iter (fun (e : Parallel.Corpus.entry) -> a.(e.index) <- e.elapsed_s) serial.entries;
    a
  in
  let per_shard = Hashtbl.create 8 in
  List.iter
    (fun (e : Parallel.Corpus.entry) ->
      let cur = try Hashtbl.find per_shard e.worker with Not_found -> 0.0 in
      Hashtbl.replace per_shard e.worker (cur +. serial_elapsed.(e.index)))
    par.entries;
  let critical_path_s = Hashtbl.fold (fun _ s acc -> max s acc) per_shard 0.0 in
  let speedup =
    if jobs_resolved <= 1 || critical_path_s <= 0.0 then 1.0
    else serial.wall_clock_s /. critical_path_s
  in
  let identical =
    List.for_all2
      (fun (a : Parallel.Corpus.entry) (b : Parallel.Corpus.entry) ->
        match (a.result, b.result) with
        | Ok x, Ok y -> Bytes.equal x.rewritten y.rewritten
        | Error x, Error y -> x = y
        | _ -> false)
      serial.entries par.entries
  in
  say "-- corpus: %d binaries (%d generated, %d unsupported), %d worker domain(s) --"
    (List.length items) count (List.length excluded) jobs_resolved;
  Format.printf "%a@." Parallel.Corpus.pp_report par;
  let elapsed_ms =
    List.map (fun (e : Parallel.Corpus.entry) -> e.Parallel.Corpus.elapsed_s *. 1e3)
      serial.Parallel.Corpus.entries
  in
  let queue_wait_ms =
    List.map (fun (e : Parallel.Corpus.entry) -> e.Parallel.Corpus.queue_wait_s *. 1e3)
      par.Parallel.Corpus.entries
  in
  say "per-item elapsed      p50 %.3f ms  p90 %.3f ms  max %.3f ms"
    (Stats.percentile elapsed_ms 50.0) (Stats.percentile elapsed_ms 90.0)
    (Stats.percentile elapsed_ms 100.0);
  say "queue wait            p50 %.3f ms  p90 %.3f ms  max %.3f ms"
    (Stats.percentile queue_wait_ms 50.0) (Stats.percentile queue_wait_ms 90.0)
    (Stats.percentile queue_wait_ms 100.0);
  say "serial wall clock     %10.4f s" serial.wall_clock_s;
  say "parallel wall clock   %10.4f s  (measured on this machine's cores)"
    par.Parallel.Corpus.wall_clock_s;
  say "critical path         %10.4f s  (parallel schedule at serial per-binary cost)"
    critical_path_s;
  say "speedup vs serial     %10.2fx  (schedule speedup = serial wall clock / critical path)"
    speedup;
  say "outputs vs serial     %s" (if identical then "byte-identical" else "DIVERGED");
  if not identical then failwith "corpus outputs diverged between serial and parallel runs";
  (* IR cache: a cold pass populates it (all misses), a warm pass at the
     configured job count must then hit on every item and still produce
     byte-identical outputs. *)
  let ir_cache = Irdb.Cache.create ~capacity:(2 * List.length items) () in
  let cold = Parallel.Corpus.rewrite_all ~jobs:1 ~config ~transforms ~ir_cache ~corpus_seed items in
  let warm =
    Parallel.Corpus.rewrite_all ~jobs:jobs_resolved ~config ~transforms ~ir_cache ~corpus_seed
      items
  in
  let cache_identical =
    List.for_all2
      (fun (a : Parallel.Corpus.entry) (b : Parallel.Corpus.entry) ->
        match (a.result, b.result) with
        | Ok x, Ok y -> Bytes.equal x.rewritten y.rewritten
        | Error x, Error y -> x = y
        | _ -> false)
      serial.entries warm.entries
  in
  say "ir cache cold         %10.4f s IR, %d misses" cold.merged_timing.ir_construction_s
    cold.merged_cache.Zipr.Pipeline.ir_cache_misses;
  say "ir cache warm         %10.4f s IR, %d hits (at --jobs %d)"
    warm.merged_timing.ir_construction_s warm.merged_cache.Zipr.Pipeline.ir_cache_hits
    jobs_resolved;
  say "warm outputs          %s" (if cache_identical then "byte-identical" else "DIVERGED");
  if warm.merged_cache.Zipr.Pipeline.ir_cache_hits <> List.length items then
    failwith "warm cache run did not hit on every corpus item";
  if not cache_identical then failwith "warm cache outputs diverged from uncached run";
  ( serial,
    par,
    cold,
    warm,
    critical_path_s,
    speedup,
    List.length items,
    count,
    List.map fst excluded,
    jobs_resolved,
    elapsed_ms,
    queue_wait_ms )

let throughput () =
  say "== Throughput: rewriter processing time vs binary size (§IV-A) ==";
  say "%-18s %10s %14s %14s %14s %8s %8s" "workload" "text(B)" "IR constr(s)" "transform(s)"
    "reassembly(s)" "dollops" "queries";
  let specs =
    if !small_mode then Workloads.Synthetic.[ libc_like (); apache_like () ]
    else Workloads.Synthetic.all ()
  in
  let rows =
    List.map
      (fun (w : Workloads.Synthetic.spec) ->
        let r =
          Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ]
            w.Workloads.Synthetic.binary
        in
        let t = r.Zipr.Pipeline.timing in
        let s = r.Zipr.Pipeline.stats in
        let text_bytes = (Zelf.Binary.text w.Workloads.Synthetic.binary).Zelf.Section.size in
        say "%-18s %10d %14.4f %14.4f %14.4f %8d %8d" w.Workloads.Synthetic.name text_bytes
          t.Zipr.Pipeline.ir_construction_s t.Zipr.Pipeline.transformation_s
          t.Zipr.Pipeline.reassembly_s s.Zipr.Reassemble.dollops_placed
          s.Zipr.Reassemble.alloc_queries;
        (w.Workloads.Synthetic.name, text_bytes, t, s))
      specs
  in
  let ( serial,
        par,
        cold,
        warm,
        critical_path_s,
        speedup,
        n_items,
        n_generated,
        excluded_names,
        jobs_resolved,
        elapsed_ms,
        queue_wait_ms ) =
    corpus_section ()
  in
  if !json_mode then begin
    let oc = open_out "BENCH_throughput.json" in
    let field fmt = Printf.fprintf oc fmt in
    field "{\n  \"experiment\": \"throughput\",\n  \"workloads\": [";
    List.iteri
      (fun i (name, text_bytes, (t : Zipr.Pipeline.timing), (s : Zipr.Reassemble.stats)) ->
        field "%s\n    { \"name\": \"%s\", \"text_bytes\": %d,\n"
          (if i = 0 then "" else ",")
          (json_escape name) text_bytes;
        field "      \"ir_construction_s\": %.6f, \"transformation_s\": %.6f, \"reassembly_s\": %.6f,\n"
          t.Zipr.Pipeline.ir_construction_s t.Zipr.Pipeline.transformation_s
          t.Zipr.Pipeline.reassembly_s;
        field "      \"dollops_placed\": %d, \"dollops_split\": %d,\n"
          s.Zipr.Reassemble.dollops_placed s.Zipr.Reassemble.dollops_split;
        field "      \"layouts_computed\": %d, \"layout_reuses\": %d,\n"
          s.Zipr.Reassemble.layouts_computed s.Zipr.Reassemble.layout_reuses;
        field "      \"alloc_queries\": %d, \"alloc_hits\": %d }" s.Zipr.Reassemble.alloc_queries
          s.Zipr.Reassemble.alloc_hits)
      rows;
    field "\n  ],\n";
    field "  \"jobs\": %d,\n  \"ir_jobs\": %d,\n  \"corpus_items\": %d,\n" jobs_resolved
      (Zipr.Pipeline.resolve_jobs !ir_jobs)
      n_items;
    field "  \"corpus_generated\": %d,\n  \"corpus_excluded\": [%s],\n" n_generated
      (String.concat ", "
         (List.map (fun n -> Printf.sprintf "\"%s\"" (json_escape n)) excluded_names));
    field "  \"elapsed_ms\": %s,\n  \"queue_wait_ms\": %s,\n" (dist_json elapsed_ms)
      (dist_json queue_wait_ms);
    field "  %s,\n" (host_json ~corpus_size:n_generated);
    field "  \"serial_wall_clock_s\": %.6f,\n  \"wall_clock_s\": %.6f,\n"
      serial.Parallel.Corpus.wall_clock_s par.Parallel.Corpus.wall_clock_s;
    field "  \"critical_path_s\": %.6f,\n  \"speedup_vs_serial\": %.3f,\n" critical_path_s
      speedup;
    field "  \"pool_spawn_s\": %.6f,\n" par.Parallel.Corpus.pool_spawn_s;
    field "  \"ir_cache_hits\": %d,\n  \"ir_cache_misses\": %d,\n"
      warm.Parallel.Corpus.merged_cache.Zipr.Pipeline.ir_cache_hits
      (cold.Parallel.Corpus.merged_cache.Zipr.Pipeline.ir_cache_misses
      + warm.Parallel.Corpus.merged_cache.Zipr.Pipeline.ir_cache_misses);
    field "  \"ir_cold_s\": %.6f,\n  \"ir_warm_s\": %.6f,\n"
      cold.Parallel.Corpus.merged_timing.Zipr.Pipeline.ir_construction_s
      warm.Parallel.Corpus.merged_timing.Zipr.Pipeline.ir_construction_s;
    let ms = par.Parallel.Corpus.merged_stats in
    field "  \"par_builds\": %d,\n  \"par_fallbacks\": %d,\n"
      par.Parallel.Corpus.merged_cache.Zipr.Pipeline.par_builds
      par.Parallel.Corpus.merged_cache.Zipr.Pipeline.par_fallbacks;
    field "  \"corpus\": {\n    \"ok\": %d, \"failed\": %d,\n" par.Parallel.Corpus.ok
      par.Parallel.Corpus.failed;
    field "    \"queue_wait_total_s\": %.6f, \"queue_wait_max_s\": %.6f,\n"
      par.Parallel.Corpus.queue_wait_total_s par.Parallel.Corpus.queue_wait_max_s;
    field "    \"merged\": { \"dollops_placed\": %d, \"dollops_split\": %d, \"layouts_computed\": %d, \"layout_reuses\": %d, \"alloc_queries\": %d, \"alloc_hits\": %d },\n"
      ms.Zipr.Reassemble.dollops_placed ms.Zipr.Reassemble.dollops_split
      ms.Zipr.Reassemble.layouts_computed ms.Zipr.Reassemble.layout_reuses
      ms.Zipr.Reassemble.alloc_queries ms.Zipr.Reassemble.alloc_hits;
    field "    \"shards\": [";
    List.iteri
      (fun i (w : Parallel.Pool.worker_stat) ->
        field "%s\n      { \"worker\": %d, \"tasks_run\": %d, \"busy_s\": %.6f }"
          (if i = 0 then "" else ",")
          w.Parallel.Pool.worker w.Parallel.Pool.tasks_run w.Parallel.Pool.busy_s)
      par.Parallel.Corpus.shards;
    field "\n    ]\n  }";
    (match Obs.active () with
    | Some sink ->
        (* [report_json] is itself a JSON object; embed it verbatim. *)
        field ",\n  \"obs\": %s" (String.trim (Obs.Tracer.report_json sink))
    | None -> ());
    field "\n}\n";
    close_out oc;
    say "wrote BENCH_throughput.json (%d workloads, corpus of %d at --jobs %d)"
      (List.length rows) n_items jobs_resolved
  end;
  say "(paper: libc 1.6MB in under 6 min; libjvm 12MB in under 58 min; Apache 624K in 71 s —";
  say " i.e. roughly linear in binary size, which the rows above should reproduce in shape)"

(* ------------------------------------------------------------------ *)
(* Alloc: free-space index microbenchmark                              *)
(* ------------------------------------------------------------------ *)

(* Direct evidence for the allocator rework: the augmented-tree
   Interval_set vs a naive sorted-list reference (the shape of the old
   implementation) on the three positional queries placement actually
   issues.  The workload binaries are small enough that end-to-end
   timings only hint at the asymptotic gap; this measures it. *)
let alloc () =
  say "== Alloc: free-space index — augmented tree vs linear scan ==";
  let module Iset = Zipr_util.Interval_set in
  let gaps n =
    (* Deterministic, disjoint, non-adjacent, varied widths. *)
    List.init n (fun i ->
        let lo = i * 96 in
        (lo, lo + 16 + (i * 7919 mod 48)))
  in
  (* Naive reference: ascending (lo, hi) list, linear scans throughout. *)
  let nv_first_fit l ~size = List.find_opt (fun (lo, hi) -> hi - lo >= size) l in
  let nv_fit_in_window l ~lo ~hi ~size =
    List.find_map
      (fun (glo, ghi) ->
        let a = max glo lo and b = min ghi hi in
        if b - a >= size then Some a else None)
      l
  in
  let nv_best_fit_near l ~center ~size =
    List.fold_left
      (fun best (glo, ghi) ->
        if ghi - glo < size then best
        else
          let a = max glo (min center (ghi - size)) in
          let d = abs (a - center) in
          match best with Some (_, bd) when bd <= d -> best | _ -> Some (a, d))
      None l
    |> Option.map fst
  in
  let time f =
    let reps = 2000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps
  in
  say "%8s %-16s %12s %12s %9s" "gaps" "query" "tree(ns)" "scan(ns)" "speedup";
  List.iter
    (fun n ->
      let l = gaps n in
      let t = List.fold_left (fun s (lo, hi) -> Iset.add s ~lo ~hi) Iset.empty l in
      let span = n * 96 in
      (* 64 never fits (widths cap at 63): the "any gap big enough?" probe
         that decides overflow spill, worst-case for a scan. *)
      let sizes = [| 8; 17; 33; 48; 61; 64 |] in
      let probe i = sizes.(i mod Array.length sizes) in
      let queries =
        [
          ( "first_fit",
            (fun i -> ignore (Iset.first_fit t ~size:(probe i))),
            fun i -> ignore (nv_first_fit l ~size:(probe i)) );
          ( "fit_in_window",
            (fun i ->
              let lo = i * 131 mod span in
              ignore (Iset.fit_in_window t ~lo ~hi:(lo + 4096) ~size:(probe i))),
            fun i ->
              let lo = i * 131 mod span in
              ignore (nv_fit_in_window l ~lo ~hi:(lo + 4096) ~size:(probe i)) );
          ( "best_fit_near",
            (fun i -> ignore (Iset.best_fit_near t ~center:(i * 257 mod span) ~size:(probe i))),
            fun i -> ignore (nv_best_fit_near l ~center:(i * 257 mod span) ~size:(probe i)) );
        ]
      in
      List.iter
        (fun (qname, tree_q, scan_q) ->
          let i = ref 0 in
          let tree_ns = time (fun () -> incr i; tree_q !i) in
          let scan_ns = time (fun () -> incr i; scan_q !i) in
          say "%8d %-16s %12.0f %12.0f %8.1fx" n qname tree_ns scan_ns (scan_ns /. tree_ns))
        queries)
    [ 256; 2048; 16384 ];
  say "(linear scans grow with the gap count; the augmented tree stays logarithmic, which is";
  say " what keeps placement cost flat as fragmentation shatters the text span)"

(* ------------------------------------------------------------------ *)
(* Ablation: placement strategies (§III)                               *)
(* ------------------------------------------------------------------ *)

let ablation () =
  say "== Ablation: placement strategy (naive / optimized / random), 16 CBs ==";
  let entries = Cgc.Corpus.build ~n:16 () in
  say "%-11s %12s %12s %12s %10s %8s %8s" "strategy" "size ovh" "exec ovh" "mem ovh" "colocated"
    "chains" "overflow";
  List.iter
    (fun (sname, strategy) ->
      let sizes = ref [] and execs = ref [] and mems = ref [] in
      let colocated = ref 0 and chains = ref 0 and overflow = ref 0 in
      List.iter
        (fun (e : Cgc.Corpus.entry) ->
          let orig = e.Cgc.Corpus.binary in
          let config =
            { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = strategy }
          in
          let r = Zipr.Pipeline.rewrite ~config ~transforms:[ Transforms.Null.transform ] orig in
          let ov =
            Cgc.Score.overheads ~orig ~rewritten:r.Zipr.Pipeline.rewritten
              e.Cgc.Corpus.pollers
          in
          sizes := ov.Cgc.Score.size_pct :: !sizes;
          execs := ov.Cgc.Score.exec_pct :: !execs;
          mems := ov.Cgc.Score.mem_pct :: !mems;
          colocated := !colocated + r.Zipr.Pipeline.stats.Zipr.Reassemble.pins_colocated;
          chains := !chains + r.Zipr.Pipeline.stats.Zipr.Reassemble.chain_hops;
          overflow := !overflow + r.Zipr.Pipeline.stats.Zipr.Reassemble.overflow_bytes)
        entries;
      say "%-11s %+11.2f%% %+11.2f%% %+11.2f%% %10d %8d %8d" sname (Stats.mean !sizes)
        (Stats.mean !execs) (Stats.mean !mems) !colocated !chains !overflow)
    [
      ("naive", Zipr.Placement.naive);
      ("optimized", Zipr.Placement.optimized);
      ("random", Zipr.Placement.random);
    ];
  say "(§III: the optimized layout trades layout diversity for space/memory efficiency;";
  say " naive and random spill more code and keep fewer pins colocated)"

(* ------------------------------------------------------------------ *)
(* Ablation 2: pinned-address policy (the |P - B| trade-off of II-A2)  *)
(* ------------------------------------------------------------------ *)

let pinning () =
  say "== Ablation: pinning policy — conservative (after-call pins) vs relaxed, 16 CBs ==";
  let entries = Cgc.Corpus.build ~n:16 () in
  say "%-14s %8s %12s %12s %10s" "policy" "|P|" "size ovh" "exec ovh" "func";
  List.iter
    (fun (pname, pin_config) ->
      let pins = ref 0 and sizes = ref [] and execs = ref [] in
      let passed = ref 0 and total = ref 0 in
      List.iter
        (fun (e : Cgc.Corpus.entry) ->
          let orig = e.Cgc.Corpus.binary in
          let config = { Zipr.Pipeline.default_config with Zipr.Pipeline.pin_config } in
          let r = Zipr.Pipeline.rewrite ~config ~transforms:[ Transforms.Null.transform ] orig in
          pins := !pins + r.Zipr.Pipeline.stats.Zipr.Reassemble.pins_total;
          let ov = Cgc.Score.overheads ~orig ~rewritten:r.Zipr.Pipeline.rewritten e.Cgc.Corpus.pollers in
          sizes := ov.Cgc.Score.size_pct :: !sizes;
          execs := ov.Cgc.Score.exec_pct :: !execs;
          let chk =
            Cgc.Poller.functional_check ~orig ~rewritten:r.Zipr.Pipeline.rewritten
              e.Cgc.Corpus.pollers
          in
          passed := !passed + chk.Cgc.Poller.passed;
          total := !total + chk.Cgc.Poller.total)
        entries;
      say "%-14s %8d %+11.2f%% %+11.2f%% %6d/%d" pname !pins (Stats.mean !sizes)
        (Stats.mean !execs) !passed !total)
    [
      ("conservative", { Analysis.Ibt.pin_after_calls = true });
      ("relaxed", { Analysis.Ibt.pin_after_calls = false });
    ];
  say "(II-A2: a larger P is always safe but less space-efficient; after-call pins are the";
  say " bulk of |P - B| and dropping them assumes no code computes on return addresses)"

(* ------------------------------------------------------------------ *)
(* Ablation 3: jump-table rewriting (statically modelled IBTs, II-A2)  *)
(* ------------------------------------------------------------------ *)

let jtrw () =
  say "== Ablation: jump-table rewriting (statically modelled IBTs), 16 CBs ==";
  let entries = Cgc.Corpus.build ~n:16 () in
  say "%-22s %12s %12s %10s" "configuration" "exec ovh" "size ovh" "func";
  List.iter
    (fun (cname, transforms) ->
      let sizes = ref [] and execs = ref [] in
      let passed = ref 0 and total = ref 0 in
      List.iter
        (fun (e : Cgc.Corpus.entry) ->
          let orig = e.Cgc.Corpus.binary in
          let r = Zipr.Pipeline.rewrite ~transforms orig in
          let ov = Cgc.Score.overheads ~orig ~rewritten:r.Zipr.Pipeline.rewritten e.Cgc.Corpus.pollers in
          sizes := ov.Cgc.Score.size_pct :: !sizes;
          execs := ov.Cgc.Score.exec_pct :: !execs;
          let chk =
            Cgc.Poller.functional_check ~orig ~rewritten:r.Zipr.Pipeline.rewritten
              e.Cgc.Corpus.pollers
          in
          passed := !passed + chk.Cgc.Poller.passed;
          total := !total + chk.Cgc.Poller.total)
        entries;
      say "%-22s %+11.2f%% %+11.2f%% %6d/%d" cname (Stats.mean !execs) (Stats.mean !sizes)
        !passed !total)
    [
      ("null", [ Transforms.Null.transform ]);
      ("jumptable-rewrite", [ Transforms.Jumptable_rewrite.transform ]);
      ("cfi", [ Transforms.Cfi.transform ]);
      ("jt-rewrite + cfi", [ Transforms.Jumptable_rewrite.transform; Transforms.Cfi.transform ]);
    ];
  say "(II-A2: IBTs whose behaviour is statically modelled need no pin indirection; the";
  say " rewritten tables follow their targets via relocations)"

(* ------------------------------------------------------------------ *)
(* Defense comparison: the paper's §IV-B closing list, evaluated        *)
(* ------------------------------------------------------------------ *)

let defenses () =
  say "== Defense comparison (§IV-B: the transforms the paper applied but could not evaluate), 16 CBs ==";
  let entries = Cgc.Corpus.build ~n:16 () in
  say "%-24s %10s %10s %10s %8s %14s" "defense" "size ovh" "exec ovh" "mem ovh" "func" "PoVs blocked";
  List.iter
    (fun (dname, transforms) ->
      let sizes = ref [] and execs = ref [] and mems = ref [] in
      let passed = ref 0 and total = ref 0 in
      let blocked = ref 0 and povs = ref 0 in
      List.iter
        (fun (e : Cgc.Corpus.entry) ->
          let orig = e.Cgc.Corpus.binary in
          let r = Zipr.Pipeline.rewrite ~transforms orig in
          let rw = r.Zipr.Pipeline.rewritten in
          let ov = Cgc.Score.overheads ~orig ~rewritten:rw e.Cgc.Corpus.pollers in
          sizes := ov.Cgc.Score.size_pct :: !sizes;
          execs := ov.Cgc.Score.exec_pct :: !execs;
          mems := ov.Cgc.Score.mem_pct :: !mems;
          let chk = Cgc.Poller.functional_check ~orig ~rewritten:rw e.Cgc.Corpus.pollers in
          passed := !passed + chk.Cgc.Poller.passed;
          total := !total + chk.Cgc.Poller.total;
          List.iter
            (fun (_, o) ->
              incr povs;
              if o <> Cgc.Pov.Exploited then incr blocked)
            (Cgc.Pov.attempt_all rw e.Cgc.Corpus.meta))
        entries;
      say "%-24s %+9.1f%% %+9.1f%% %+9.1f%% %4d/%d %10d/%d" dname (Stats.mean !sizes)
        (Stats.mean !execs) (Stats.mean !mems) !passed !total !blocked !povs)
    [
      ("null (baseline)", [ Transforms.Null.transform ]);
      ("cfi", [ Transforms.Cfi.transform ]);
      ("canary", [ Transforms.Canary.transform ]);
      ("stack-pad", [ Transforms.Stack_pad.transform ]);
      ("shadow-stack", [ Transforms.Shadow_stack.transform ]);
      ("stirring+nop-pad", [ Transforms.Stirring.transform; Transforms.Nop_pad.transform ]);
      ( "cfi+shadow-stack",
        [ Transforms.Shadow_stack.transform; Transforms.Cfi.transform ] );
    ];
  say "(the paper lists stack randomization, canary randomization and code mixing as applied";
  say " with Zipr but unevaluated for space; stack-pad blocks the fixed-offset PoV only by";
  say " displacement, and pure-diversity transforms block nothing — defense in depth matters)"

(* ------------------------------------------------------------------ *)
(* Serve: the rewriting daemon under concurrent load                   *)
(* ------------------------------------------------------------------ *)

(* An in-process load test of the serve subsystem: start a daemon on a
   Unix socket, hammer it from [--clients N] client domains, and report
   latency percentiles, throughput, shared-IR-cache effectiveness and
   overload behaviour.  Always writes BENCH_serve.json — the serve
   analog of BENCH_throughput.json; its fields are documented in the
   README's "Serving" section. *)
let serve_bench () =
  say "== Serve: daemon latency/throughput under %d concurrent clients ==" !clients;
  let sock_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "zipr-bench-%d.sock" (Unix.getpid ()))
  in
  let config =
    {
      Serve.Server.default_config with
      Serve.Server.jobs = Zipr.Pipeline.resolve_jobs !jobs;
      ir_jobs = !ir_jobs;
      queue_bound = max 4 (2 * !clients);
      delta = true;
    }
  in
  let server =
    Serve.Server.create ~config ~resolve_transform:Transforms.Registry.by_name
      (Serve.Protocol.Unix_path sock_path)
  in
  let addr = Serve.Server.address server in
  let server_domain = Domain.spawn (fun () -> Serve.Server.serve server) in
  (* The request mix: the scale-out corpus — distinct binaries (cache
     misses on first touch) revisited by every client (hits thereafter).
     The handful of members the pipeline cannot rewrite (pin slot vs
     fixed island, see the placement bench) are filtered out offline so
     every served request is expected to succeed. *)
  let corpus_generated = 128 in
  let corpus = Workloads.Scale.corpus ~seed:17 ~count:corpus_generated () in
  let inputs =
    List.filter_map
      (fun (it : Workloads.Scale.item) ->
        let binary = it.Workloads.Scale.binary in
        match Zipr.Pipeline.try_rewrite ~transforms:[ Transforms.Null.transform ] binary with
        | Ok _ -> Some (Bytes.unsafe_to_string (Zelf.Binary.serialize binary))
        | Error _ -> None)
      corpus
    |> Array.of_list
  in
  if Array.length inputs < 120 then
    failwith
      (Printf.sprintf "serve bench: only %d/%d supported corpus members (need >= 120)"
         (Array.length inputs) corpus_generated);
  let per_client = if !small_mode then 8 else 24 in
  (* Warm the IR cache so the measured section exercises the steady
     state; the misses recorded below are these first touches. *)
  Array.iter
    (fun data ->
      match Serve.Client.rewrite ~transforms:[ "null" ] addr data with
      | Ok { Serve.Protocol.Response.status = Serve.Protocol.Ok_; _ } -> ()
      | Ok r ->
          failwith
            (Printf.sprintf "serve bench: warmup rejected: %s: %s"
               (Serve.Protocol.status_to_string r.Serve.Protocol.Response.status)
               r.Serve.Protocol.Response.message)
      | Error msg -> failwith ("serve bench: warmup failed: " ^ msg))
    inputs;
  let t0 = Unix.gettimeofday () in
  let run_client c =
    let lat = ref [] and ok = ref 0 and rejects = ref 0 and errors = ref 0 in
    for i = 0 to per_client - 1 do
      let data = inputs.(((c * per_client) + i) mod Array.length inputs) in
      let r0 = Unix.gettimeofday () in
      (match
         Serve.Client.rewrite
           ~id:(Int64.of_int ((c * 1_000_000) + i))
           ~transforms:[ "null" ] addr data
       with
      | Ok { Serve.Protocol.Response.status = Serve.Protocol.Ok_; _ } ->
          incr ok;
          lat := (Unix.gettimeofday () -. r0) *. 1e3 :: !lat
      | Ok { Serve.Protocol.Response.status = Serve.Protocol.Overloaded; _ } -> incr rejects
      | Ok _ | Error _ -> incr errors)
    done;
    (!lat, !ok, !rejects, !errors)
  in
  let domains = List.init !clients (fun c -> Domain.spawn (fun () -> run_client c)) in
  let results = List.map Domain.join domains in
  let wall = Unix.gettimeofday () -. t0 in
  Serve.Server.stop server;
  Domain.join server_domain;
  let lats = List.concat_map (fun (l, _, _, _) -> l) results in
  let ok = List.fold_left (fun a (_, o, _, _) -> a + o) 0 results in
  let rejects = List.fold_left (fun a (_, _, r, _) -> a + r) 0 results in
  let errors = List.fold_left (fun a (_, _, _, e) -> a + e) 0 results in
  let total = !clients * per_client in
  let s = Serve.Server.stats server in
  let cache_lookups = s.Serve.Server.cache_hits + s.Serve.Server.cache_misses in
  let hit_rate =
    if cache_lookups = 0 then 0.0
    else float_of_int s.Serve.Server.cache_hits /. float_of_int cache_lookups
  in
  let p50 = Stats.percentile lats 50.0
  and p90 = Stats.percentile lats 90.0
  and p99 = Stats.percentile lats 99.0 in
  let lmax = List.fold_left max 0.0 lats in
  say "corpus                %10d  members (%d generated)" (Array.length inputs)
    corpus_generated;
  say "requests              %10d  (%d ok, %d overloaded, %d errors)" total ok rejects errors;
  say "wall clock            %10.4f s  (%.1f req/s)" wall (float_of_int ok /. wall);
  say "latency p50           %10.2f ms" p50;
  say "latency p90           %10.2f ms" p90;
  say "latency p99           %10.2f ms" p99;
  say "latency max           %10.2f ms" lmax;
  say "ir cache              %10d hits / %d misses (%.0f%% hit rate)" s.Serve.Server.cache_hits
    s.Serve.Server.cache_misses (hit_rate *. 100.0);
  say "routine cache         %10d hits / %d misses (%d delta builds)"
    s.Serve.Server.routine_hits s.Serve.Server.routine_misses s.Serve.Server.delta_builds;
  say "queue high water      %10d  (bound %d)" s.Serve.Server.queue_high_water
    s.Serve.Server.queue_bound;
  if errors > 0 then failwith "serve bench: unexpected request errors";
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"serve\",\n\
    \  \"clients\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"ir_jobs\": %d,\n\
    \  \"corpus_generated\": %d,\n\
    \  \"corpus_members\": %d,\n\
    \  %s,\n\
    \  \"requests_total\": %d,\n\
    \  \"ok\": %d,\n\
    \  \"overloaded_rejects\": %d,\n\
    \  \"errors\": %d,\n\
    \  \"wall_clock_s\": %.6f,\n\
    \  \"requests_per_s\": %.3f,\n\
    \  \"latency_ms\": %s,\n\
    \  \"latency_p50_ms\": %.3f,\n\
    \  \"latency_p90_ms\": %.3f,\n\
    \  \"latency_p99_ms\": %.3f,\n\
    \  \"latency_max_ms\": %.3f,\n\
    \  \"cache_hits\": %d,\n\
    \  \"cache_misses\": %d,\n\
    \  \"cache_hit_rate\": %.4f,\n\
    \  \"cache_resident_bytes\": %d,\n\
    \  \"cache_evictions\": %d,\n\
    \  \"routine_hits\": %d,\n\
    \  \"routine_misses\": %d,\n\
    \  \"delta_builds\": %d,\n\
    \  \"routine_fragments\": %d,\n\
    \  \"routine_fragment_bytes\": %d,\n\
    \  \"queue_bound\": %d,\n\
    \  \"queue_high_water\": %d\n\
     }\n"
    !clients config.Serve.Server.jobs
    (Zipr.Pipeline.resolve_jobs config.Serve.Server.ir_jobs)
    corpus_generated (Array.length inputs)
    (host_json ~corpus_size:(Array.length inputs))
    total ok rejects errors wall
    (float_of_int ok /. wall)
    (dist_json lats) p50 p90 p99 lmax s.Serve.Server.cache_hits s.Serve.Server.cache_misses
    hit_rate s.Serve.Server.cache_resident_bytes s.Serve.Server.cache_evictions
    s.Serve.Server.routine_hits s.Serve.Server.routine_misses s.Serve.Server.delta_builds
    s.Serve.Server.routine_fragments s.Serve.Server.routine_fragment_bytes
    s.Serve.Server.queue_bound s.Serve.Server.queue_high_water;
  close_out oc;
  say "wrote BENCH_serve.json (%d clients at --jobs %d)" !clients config.Serve.Server.jobs

(* ------------------------------------------------------------------ *)
(* Delta: incremental rewriting over a versioned corpus                *)
(* ------------------------------------------------------------------ *)

(* The incremental-IR experiment: N successive versions of one binary
   (a few local edits apart) rewritten three ways —

     cold   no caches: every version rebuilds its IR from scratch;
     delta  a fresh routine cache: v0 is a cold build that seeds the
            cache, every later version stitches cached routine fragments
            around its edits;
     warm   the same cache again: every version hits the whole-IR memo.

   Always writes BENCH_delta.json.  The run {e fails} (non-zero exit) if
   any pass diverges byte-wise from the cold outputs — at --jobs 1 and
   at --jobs 4 over a shared cache — or if the fully-warm IR phase is
   not at least 5x faster than cold: byte-identity and the speedup floor
   are the experiment's contract, not just its observables. *)
let delta_bench () =
  say "== Delta: incremental IR over a versioned corpus ==";
  let versions = if !small_mode then 4 else 8 in
  let n_routines = if !small_mode then 16 else 32 in
  let vs = Workloads.Versioned.generate ~n_routines ~seed:11 ~versions () in
  let items =
    List.map
      (fun (v : Workloads.Versioned.version) ->
        {
          Parallel.Corpus.name = v.Workloads.Versioned.name;
          data = Zelf.Binary.serialize v.Workloads.Versioned.binary;
        })
      vs
  in
  let transforms = [ Transforms.Cfi.transform; Transforms.Stack_pad.transform ] in
  let corpus_seed = 1 in
  let outputs (r : Parallel.Corpus.report) =
    List.map
      (fun (e : Parallel.Corpus.entry) ->
        match e.Parallel.Corpus.result with
        | Ok o -> o.Parallel.Corpus.rewritten
        | Error m -> failwith ("delta bench: rewrite failed: " ^ m))
      r.Parallel.Corpus.entries
  in
  let identical a b = List.for_all2 Bytes.equal (outputs a) (outputs b) in
  let cold = Parallel.Corpus.rewrite_all ~jobs:1 ~transforms ~corpus_seed items in
  let routine_cache = Zipr.Delta.create () in
  let delta = Parallel.Corpus.rewrite_all ~jobs:1 ~transforms ~routine_cache ~corpus_seed items in
  let warm = Parallel.Corpus.rewrite_all ~jobs:1 ~transforms ~routine_cache ~corpus_seed items in
  (* The same versioned corpus over a shared cache at 4 workers: outputs
     must not depend on scheduling or on which worker seeds the cache. *)
  let cache4 = Zipr.Delta.create () in
  let delta4 =
    Parallel.Corpus.rewrite_all ~jobs:4 ~transforms ~routine_cache:cache4 ~corpus_seed items
  in
  let warm4 =
    Parallel.Corpus.rewrite_all ~jobs:4 ~transforms ~routine_cache:cache4 ~corpus_seed items
  in
  let cold_ir = cold.Parallel.Corpus.merged_timing.Zipr.Pipeline.ir_construction_s in
  let delta_ir = delta.Parallel.Corpus.merged_timing.Zipr.Pipeline.ir_construction_s in
  let warm_ir = warm.Parallel.Corpus.merged_timing.Zipr.Pipeline.ir_construction_s in
  let dc = delta.Parallel.Corpus.merged_cache in
  let wc = warm.Parallel.Corpus.merged_cache in
  let lookups (c : Zipr.Pipeline.cache_stats) =
    c.Zipr.Pipeline.routine_hits + c.Zipr.Pipeline.routine_misses
  in
  let rate (c : Zipr.Pipeline.cache_stats) =
    if lookups c = 0 then 0.0
    else float_of_int c.Zipr.Pipeline.routine_hits /. float_of_int (lookups c)
  in
  let warm_speedup = if warm_ir > 0.0 then cold_ir /. warm_ir else 0.0 in
  let delta_speedup = if delta_ir > 0.0 then cold_ir /. delta_ir else 0.0 in
  let id_delta = identical cold delta in
  let id_warm = identical cold warm in
  let id_jobs4 = identical cold delta4 && identical cold warm4 in
  say "versions              %10d  (%d routines, seed 11)" versions n_routines;
  say "ir cold               %10.4f s" cold_ir;
  say "ir delta              %10.4f s  (%.1fx), %d/%d routine hits, %d delta builds"
    delta_ir delta_speedup dc.Zipr.Pipeline.routine_hits (lookups dc)
    dc.Zipr.Pipeline.delta_builds;
  say "ir warm               %10.4f s  (%.1fx), %d/%d routine hits" warm_ir warm_speedup
    wc.Zipr.Pipeline.routine_hits (lookups wc);
  say "delta outputs         %s" (if id_delta then "byte-identical" else "DIVERGED");
  say "warm outputs          %s" (if id_warm then "byte-identical" else "DIVERGED");
  say "jobs=4 outputs        %s" (if id_jobs4 then "byte-identical" else "DIVERGED");
  say "fragments resident    %10d  (%d bytes)"
    (Zipr.Delta.fragment_entries routine_cache)
    (Zipr.Delta.fragment_bytes routine_cache);
  let oc = open_out "BENCH_delta.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"delta\",\n\
    \  \"versions\": %d,\n\
    \  \"n_routines\": %d,\n\
    \  \"cold_ir_s\": %.6f,\n\
    \  \"delta_ir_s\": %.6f,\n\
    \  \"warm_ir_s\": %.6f,\n\
    \  \"delta_speedup\": %.3f,\n\
    \  \"warm_speedup\": %.3f,\n\
    \  \"routine_hits_delta\": %d,\n\
    \  \"routine_misses_delta\": %d,\n\
    \  \"delta_builds\": %d,\n\
    \  \"routine_hit_rate_delta\": %.4f,\n\
    \  \"routine_hits_warm\": %d,\n\
    \  \"routine_hit_rate_warm\": %.4f,\n\
    \  \"byte_identical_delta\": %b,\n\
    \  \"byte_identical_warm\": %b,\n\
    \  \"byte_identical_jobs4\": %b,\n\
    \  \"fragment_entries\": %d,\n\
    \  \"fragment_bytes\": %d,\n\
    \  %s\n\
     }\n"
    versions n_routines cold_ir delta_ir warm_ir delta_speedup warm_speedup
    dc.Zipr.Pipeline.routine_hits dc.Zipr.Pipeline.routine_misses
    dc.Zipr.Pipeline.delta_builds (rate dc) wc.Zipr.Pipeline.routine_hits (rate wc)
    id_delta id_warm id_jobs4
    (Zipr.Delta.fragment_entries routine_cache)
    (Zipr.Delta.fragment_bytes routine_cache)
    (host_json ~corpus_size:versions);
  close_out oc;
  say "wrote BENCH_delta.json (%d versions)" versions;
  if not (id_delta && id_warm && id_jobs4) then
    failwith "delta bench: outputs diverged from the cold path";
  if dc.Zipr.Pipeline.routine_hits = 0 then
    failwith "delta bench: the delta pass never hit the routine cache";
  if warm_speedup < 5.0 then
    failwith
      (Printf.sprintf "delta bench: warm IR speedup %.1fx below the 5x floor" warm_speedup)

(* ------------------------------------------------------------------ *)
(* Placement: strategy shoot-out over the scale-out corpus             *)
(* ------------------------------------------------------------------ *)

(* The search-based placement experiment: every strategy rewrites the
   same 1k+ scale-out corpus (fragmentation-heavy by design — smooth
   binaries place identically under every strategy) and the per-binary
   file-size overhead distributions are compared.  Always writes
   BENCH_placement.json.  The run {e fails} (non-zero exit) if search's
   outputs differ between --jobs 1 and --jobs 4, or if search does not
   cut the mean file-size overhead by at least 5% relative to the
   optimized allocator — the improvement floor is the experiment's
   contract, not just an observable.  A fig7-style diversity-vs-overhead
   trade-off curve (epsilon sweep over a subsample, two corpus seeds)
   rides along.

   A small fraction of generated members (~0.5% at 1k) is unsupported
   by the pipeline itself: pin planning rejects a pin whose reference
   slot collides with a fixed data island.  That verdict is reached
   before any placement decision, so it must be strategy-independent —
   the bench asserts the failure set is identical under every strategy
   (a member failing under one strategy only would be a placement bug,
   not a corpus artifact), tolerates at most 1% of the corpus, excludes
   those members from every distribution, and accounts for them in the
   output (`corpus_failed`, `excluded`). *)
let count_override = ref 0

let placement_bench () =
  say "== Placement: search vs greedy strategies over the scale-out corpus ==";
  let count =
    if !count_override > 0 then !count_override else if !small_mode then 120 else 1000
  in
  let corpus = Workloads.Scale.corpus ~seed:5 ~count () in
  let items =
    List.map
      (fun (it : Workloads.Scale.item) ->
        {
          Parallel.Corpus.name = it.Workloads.Scale.name;
          data = Zelf.Binary.serialize it.Workloads.Scale.binary;
        })
      corpus
  in
  let in_size =
    Array.of_list
      (List.map
         (fun (it : Parallel.Corpus.item) -> Bytes.length it.Parallel.Corpus.data)
         items)
  in
  let corpus_seed = 1 in
  let run ?(jobs = !jobs) strategy =
    let config = { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = strategy } in
    Parallel.Corpus.rewrite_all ~jobs ~config ~corpus_seed items
  in
  (* Successful entries, keyed by corpus index so distributions pair up
     across strategies even with unsupported members removed. *)
  let outputs (r : Parallel.Corpus.report) =
    List.filter_map
      (fun (e : Parallel.Corpus.entry) ->
        match e.Parallel.Corpus.result with
        | Ok o -> Some (e.Parallel.Corpus.index, o.Parallel.Corpus.rewritten)
        | Error _ -> None)
      r.Parallel.Corpus.entries
  in
  let failures (r : Parallel.Corpus.report) =
    List.filter_map
      (fun (e : Parallel.Corpus.entry) ->
        match e.Parallel.Corpus.result with
        | Error m -> Some (e.Parallel.Corpus.index, e.Parallel.Corpus.name, m)
        | Ok _ -> None)
      r.Parallel.Corpus.entries
  in
  let overheads (r : Parallel.Corpus.report) =
    List.map
      (fun (i, out) ->
        Stats.overhead_pct ~baseline:(float_of_int in_size.(i))
          ~measured:(float_of_int (Bytes.length out)))
      (outputs r)
  in
  let strategies =
    [
      ("naive", Zipr.Placement.naive);
      ("optimized", Zipr.Placement.optimized);
      ("random", Zipr.Placement.random);
      ("search", Zipr.Placement.search ());
    ]
  in
  let results = List.map (fun (name, s) -> (name, run s)) strategies in
  let excluded = failures (snd (List.hd results)) in
  List.iter
    (fun (name, r) ->
      if List.map (fun (i, _, _) -> i) (failures r) <> List.map (fun (i, _, _) -> i) excluded
      then
        failwith
          (Printf.sprintf
             "placement bench: failure set under %s differs from the other strategies — \
              a placement bug, not a corpus artifact"
             name))
    results;
  List.iter
    (fun (_, name, msg) -> say "excluded (unsupported) %s: %s" name msg)
    excluded;
  let failed = List.length excluded in
  if float_of_int failed > 0.01 *. float_of_int count then
    failwith
      (Printf.sprintf "placement bench: %d/%d unsupported members exceeds the 1%% tolerance"
         failed count);
  let dist name (r : Parallel.Corpus.report) =
    let ov = overheads r in
    let ms = r.Parallel.Corpus.merged_stats in
    say
      "%-10s overhead mean %6.2f%%  p50 %6.2f%%  p90 %6.2f%%  max %6.2f%%  (overflow %d B, \
       chains %d, cost %.0f, %d iter)"
      name (Stats.mean ov) (Stats.percentile ov 50.0) (Stats.percentile ov 90.0)
      (Stats.percentile ov 100.0)
      ms.Zipr.Reassemble.overflow_bytes ms.Zipr.Reassemble.chain_hops
      ms.Zipr.Reassemble.placement_cost ms.Zipr.Reassemble.search_iterations;
    (name, ov, ms)
  in
  let dists = List.map (fun (n, r) -> dist n r) results in
  let mean_of n =
    let _, ov, _ = List.find (fun (m, _, _) -> m = n) dists in
    Stats.mean ov
  in
  (* Byte-identity of the search strategy across worker counts: the whole
     point of the per-run tally and stateless seed derivation. *)
  let search1 = run ~jobs:1 (Zipr.Placement.search ()) in
  let search4 = run ~jobs:4 (Zipr.Placement.search ()) in
  let id_jobs =
    let o1 = outputs search1 and o4 = outputs search4 in
    List.length o1 = List.length o4
    && List.for_all2 (fun (i, a) (j, b) -> i = j && Bytes.equal a b) o1 o4
  in
  say "search jobs 1 vs 4    %s" (if id_jobs then "byte-identical" else "DIVERGED");
  (* Diversity-vs-overhead trade-off: epsilon diversifies the beam pick;
     two corpus seeds per epsilon measure how often the layout actually
     changes (fig7-style curve: pay overhead, buy diversity). *)
  let sub_n = min count 40 in
  let sub = List.filteri (fun i _ -> i < sub_n) items in
  let tradeoff =
    List.map
      (fun epsilon ->
        let strategy =
          Zipr.Placement.search
            ~knobs:{ Zipr.Placement.default_search_knobs with Zipr.Placement.epsilon }
            ()
        in
        let config =
          { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = strategy }
        in
        let ra = Parallel.Corpus.rewrite_all ~jobs:!jobs ~config ~corpus_seed:1 sub in
        let rb = Parallel.Corpus.rewrite_all ~jobs:!jobs ~config ~corpus_seed:2 sub in
        let oa = outputs ra and ob = outputs rb in
        let distinct =
          List.fold_left2
            (fun acc (_, a) (_, b) -> if Bytes.equal a b then acc else acc + 1)
            0 oa ob
        in
        let ov =
          List.map
            (fun (i, out) ->
              Stats.overhead_pct ~baseline:(float_of_int in_size.(i))
                ~measured:(float_of_int (Bytes.length out)))
            oa
        in
        let rate = float_of_int distinct /. float_of_int (max 1 (List.length oa)) in
        say "epsilon %.2f          distinct layouts %5.1f%%  mean overhead %6.2f%%"
          epsilon (100.0 *. rate) (Stats.mean ov);
        (epsilon, rate, Stats.mean ov))
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
  in
  let search_mean = mean_of "search" and optimized_mean = mean_of "optimized" in
  let reduction =
    if optimized_mean = 0.0 then 0.0 else (optimized_mean -. search_mean) /. optimized_mean
  in
  let gate_pass = id_jobs && reduction >= 0.05 in
  say "search vs optimized   %.2f%% -> %.2f%% mean overhead (%.1f%% relative reduction)"
    optimized_mean search_mean (100.0 *. reduction);
  let oc = open_out "BENCH_placement.json" in
  let strategy_json (name, ov, (ms : Zipr.Reassemble.stats)) =
    Printf.sprintf
      "    \"%s\": {\n\
      \      \"size_overhead_mean\": %.4f,\n\
      \      \"size_overhead_p50\": %.4f,\n\
      \      \"size_overhead_p90\": %.4f,\n\
      \      \"size_overhead_max\": %.4f,\n\
      \      \"overflow_bytes\": %d,\n\
      \      \"chain_hops\": %d,\n\
      \      \"slot_expansions\": %d,\n\
      \      \"dollops_split\": %d,\n\
      \      \"page_misses\": %d,\n\
      \      \"placement_cost\": %.1f,\n\
      \      \"search_iterations\": %d,\n\
      \      \"search_accepted\": %d,\n\
      \      \"search_rejected\": %d\n\
      \    }"
      name (Stats.mean ov) (Stats.percentile ov 50.0) (Stats.percentile ov 90.0)
      (Stats.percentile ov 100.0)
      ms.Zipr.Reassemble.overflow_bytes ms.Zipr.Reassemble.chain_hops
      ms.Zipr.Reassemble.slot_expansions ms.Zipr.Reassemble.dollops_split
      ms.Zipr.Reassemble.page_misses ms.Zipr.Reassemble.placement_cost
      ms.Zipr.Reassemble.search_iterations ms.Zipr.Reassemble.search_accepted
      ms.Zipr.Reassemble.search_rejected
  in
  let tradeoff_json =
    String.concat ",\n"
      (List.map
         (fun (e, rate, ov) ->
           Printf.sprintf
             "    { \"epsilon\": %.2f, \"distinct_layout_rate\": %.4f, \
              \"size_overhead_mean\": %.4f }"
             e rate ov)
         tradeoff)
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"placement\",\n\
    \  \"corpus_count\": %d,\n\
    \  \"corpus_failed\": %d,\n\
    \  \"excluded\": [%s],\n\
    \  \"corpus_seed\": %d,\n\
    \  \"strategies\": {\n\
     %s\n\
    \  },\n\
    \  \"byte_identical_jobs\": %b,\n\
    \  \"tradeoff\": [\n\
     %s\n\
    \  ],\n\
    \  \"search_gate\": { \"relative_reduction\": %.4f, \"floor\": 0.05, \"pass\": %b },\n\
    \  %s\n\
     }\n"
    count failed
    (String.concat ", "
       (List.map (fun (_, name, _) -> Printf.sprintf "\"%s\"" name) excluded))
    corpus_seed
    (String.concat ",\n" (List.map strategy_json dists))
    id_jobs tradeoff_json reduction gate_pass
    (host_json ~corpus_size:count);
  close_out oc;
  say "wrote BENCH_placement.json (%d binaries)" count;
  if not id_jobs then failwith "placement bench: search outputs diverged across --jobs";
  if reduction < 0.05 then
    failwith
      (Printf.sprintf
         "placement bench: search cut mean overhead by only %.1f%% (floor 5%%)"
         (100.0 *. reduction))

(* ------------------------------------------------------------------ *)
(* Irpar: intra-binary parallel IR construction                        *)
(* ------------------------------------------------------------------ *)

(* The gate for domain-parallel chunked IR construction: each member of
   the large class (>= 256 KiB of fully recursively-reachable text, the
   regime where the chunk fan-out pays) is rewritten with the serial IR
   builder and with 4 IR worker domains, and the run {e fails} unless

     - the summed IR-phase time speeds up by at least 2x,
     - every parallel build engaged (zero stitch-validation fallbacks on
       this class — its members are constructed to validate), and
     - the outputs are byte-identical.

   Each mode takes the best of several repetitions: IR construction is
   the measured phase and the minimum is the least noisy estimator on a
   shared CI box.  Always writes BENCH_irpar.json; the gates fire after
   the report is written so the artifact survives a failing run. *)
let irpar_bench () =
  say "== Irpar: intra-binary parallel IR construction (large class, --ir-jobs 4) ==";
  let members = if !small_mode then 2 else 4 in
  let reps = if !small_mode then 3 else 5 in
  let corpus = Workloads.Scale.large_corpus ~seed:1 ~count:members () in
  let transforms = [ Transforms.Null.transform ] in
  let rewrite ~ir_jobs binary =
    let config = { Zipr.Pipeline.default_config with Zipr.Pipeline.ir_jobs } in
    match Zipr.Pipeline.try_rewrite ~config ~transforms binary with
    | Ok r -> r
    | Error m -> failwith ("irpar bench: rewrite failed: " ^ m)
  in
  let best ~ir_jobs binary =
    let out = ref Bytes.empty and ir = ref infinity and builds = ref 0 and fbs = ref 0 in
    for _ = 1 to reps do
      let r = rewrite ~ir_jobs binary in
      ir := min !ir r.Zipr.Pipeline.timing.Zipr.Pipeline.ir_construction_s;
      out := Zelf.Binary.serialize r.Zipr.Pipeline.rewritten;
      builds := r.Zipr.Pipeline.cache.Zipr.Pipeline.par_builds;
      fbs := r.Zipr.Pipeline.cache.Zipr.Pipeline.par_fallbacks
    done;
    (!out, !ir, !builds, !fbs)
  in
  let serial_ir = ref 0.0 and par_ir = ref 0.0 in
  let par_builds = ref 0 and par_fallbacks = ref 0 in
  let identical = ref true in
  let rows =
    List.map
      (fun (it : Workloads.Scale.item) ->
        let binary = it.Workloads.Scale.binary in
        let text_bytes = (Zelf.Binary.text binary).Zelf.Section.size in
        let out1, ir1, _, _ = best ~ir_jobs:1 binary in
        let out4, ir4, b4, f4 = best ~ir_jobs:4 binary in
        serial_ir := !serial_ir +. ir1;
        par_ir := !par_ir +. ir4;
        par_builds := !par_builds + b4;
        par_fallbacks := !par_fallbacks + f4;
        if not (Bytes.equal out1 out4) then identical := false;
        let ratio = if ir4 > 0.0 then ir1 /. ir4 else 0.0 in
        say "%-16s text %8d B  ir serial %8.4f s  ir par(4) %8.4f s  %6.2fx"
          it.Workloads.Scale.name text_bytes ir1 ir4 ratio;
        (it.Workloads.Scale.name, text_bytes, ir1, ir4))
      corpus
  in
  let speedup = if !par_ir > 0.0 then !serial_ir /. !par_ir else 0.0 in
  say "ir serial total       %10.4f s" !serial_ir;
  say "ir parallel total     %10.4f s  (%d builds, %d fallbacks)" !par_ir !par_builds
    !par_fallbacks;
  say "ir speedup            %10.2fx  (floor 2x at --ir-jobs 4)" speedup;
  say "outputs               %s" (if !identical then "byte-identical" else "DIVERGED");
  let oc = open_out "BENCH_irpar.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"irpar\",\n\
    \  \"members\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"ir_jobs\": 4,\n\
    \  %s,\n\
    \  \"rows\": [%s\n  ],\n\
    \  \"serial_ir_s\": %.6f,\n\
    \  \"par_ir_s\": %.6f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"byte_identical\": %b,\n\
    \  \"par_builds\": %d,\n\
    \  \"par_fallbacks\": %d\n\
     }\n"
    members reps
    (host_json ~corpus_size:members)
    (String.concat ","
       (List.map
          (fun (name, text_bytes, ir1, ir4) ->
            Printf.sprintf
              "\n    { \"name\": \"%s\", \"text_bytes\": %d, \"serial_ir_s\": %.6f, \
               \"par_ir_s\": %.6f }"
              (json_escape name) text_bytes ir1 ir4)
          rows))
    !serial_ir !par_ir speedup !identical !par_builds !par_fallbacks;
  close_out oc;
  say "wrote BENCH_irpar.json (%d members, %d reps)" members reps;
  if not !identical then failwith "irpar bench: outputs diverged between --ir-jobs 1 and 4";
  if !par_fallbacks > 0 then
    failwith
      (Printf.sprintf "irpar bench: %d stitch-validation fallbacks on the large class"
         !par_fallbacks);
  if !par_builds < members then
    failwith
      (Printf.sprintf "irpar bench: only %d/%d members engaged the parallel builder"
         !par_builds members);
  if speedup < 2.0 then
    failwith
      (Printf.sprintf "irpar bench: IR speedup %.2fx below the 2x floor at --ir-jobs 4" speedup)

(* Infer bench: the inference refiner ([--infer]) over libc-like plus
   the adversarial corpus.  For every workload it measures the
   pinned-byte (ambiguous-range) reduction the refiner buys and the
   file-size overhead with the refiner off and on, then runs the
   differential soundness gate: every poller script executes on the
   original and the [--infer] rewrite, and any transcript divergence is
   a release blocker.  Always writes BENCH_infer.json; the run {e
   fails} (non-zero exit) if

     - libc-like's ambiguity reduction is below 10% (target >= 15%),
     - any differential fuzz case diverges, or
     - disabling the refiner does not reproduce the baseline bytes. *)
let infer_bench () =
  say "== Infer: inference-based third source over the adversarial corpus ==";
  let take n xs =
    let rec go i = function x :: tl when i < n -> x :: go (i + 1) tl | _ -> [] in
    go 0 xs
  in
  let suite_cap = if !small_mode then 15 else 60 in
  let specs = Workloads.Synthetic.libc_like () :: Workloads.Adversarial.all () in
  let transforms = [ Transforms.Null.transform ] in
  let rewrite ~infer binary =
    let config = { Zipr.Pipeline.default_config with Zipr.Pipeline.infer } in
    match Zipr.Pipeline.try_rewrite ~config ~transforms binary with
    | Ok r -> r
    | Error m -> failwith ("infer bench: rewrite failed: " ^ m)
  in
  let libc_reduction = ref 0.0 in
  let divergences = ref 0 in
  let identity_off = ref true in
  let rows =
    List.map
      (fun (spec : Workloads.Synthetic.spec) ->
        let b = spec.Workloads.Synthetic.binary in
        let orig_bytes = Bytes.length (Zelf.Binary.serialize b) in
        let amb agg =
          let _, _, a = Disasm.Aggregate.stats agg in
          a
        in
        let amb_base = amb (Disasm.Aggregate.run b) in
        let amb_inf = amb (Disasm.Aggregate.run ~infer:true b) in
        let reduction =
          100.0 *. float_of_int (amb_base - amb_inf) /. float_of_int (max 1 amb_base)
        in
        if spec.Workloads.Synthetic.name = "libc-like" then libc_reduction := reduction;
        let inf = Disasm.Infer.run b ~avoid:(Disasm.Recursive.traverse b) in
        (* Byte-identity with the refiner off: the baseline config and an
           explicit [infer = false] must agree byte for byte (guards the
           default ever silently flipping on). *)
        let r_base =
          match Zipr.Pipeline.try_rewrite ~transforms b with
          | Ok r -> r
          | Error m -> failwith ("infer bench: baseline rewrite failed: " ^ m)
        in
        let out_base = Zelf.Binary.serialize r_base.Zipr.Pipeline.rewritten in
        let r_off = rewrite ~infer:false b in
        if not (Bytes.equal out_base (Zelf.Binary.serialize r_off.Zipr.Pipeline.rewritten))
        then identity_off := false;
        let r_on = rewrite ~infer:true b in
        let on_bytes =
          Bytes.length (Zelf.Binary.serialize r_on.Zipr.Pipeline.rewritten)
        in
        let off_bytes = Bytes.length out_base in
        let overhead n = 100.0 *. float_of_int (n - orig_bytes) /. float_of_int orig_bytes in
        (* Differential soundness gate: transcript comparison over the
           workload's poller suite, original vs the [--infer] rewrite. *)
        let suite = take suite_cap spec.Workloads.Synthetic.test_suite in
        let check =
          Cgc.Poller.functional_check ~orig:b
            ~rewritten:r_on.Zipr.Pipeline.rewritten suite
        in
        let diverged = check.Cgc.Poller.total - check.Cgc.Poller.passed in
        divergences := !divergences + diverged;
        List.iter
          (fun (s, why) ->
            say "DIVERGED %s on %S: %s" spec.Workloads.Synthetic.name
              s.Cgc.Poller.input why)
          check.Cgc.Poller.failures;
        say
          "%-24s amb %5d -> %5d (%5.1f%%)  closed=%-5b  overhead off %6.2f%% on %6.2f%%  \
           fuzz %d/%d"
          spec.Workloads.Synthetic.name amb_base amb_inf reduction
          inf.Disasm.Infer.closed (overhead off_bytes) (overhead on_bytes)
          check.Cgc.Poller.passed check.Cgc.Poller.total;
        ( spec.Workloads.Synthetic.name,
          amb_base,
          amb_inf,
          reduction,
          inf.Disasm.Infer.closed,
          overhead off_bytes,
          overhead on_bytes,
          check.Cgc.Poller.total,
          diverged ))
      specs
  in
  say "libc-like reduction   %10.1f%%  (floor 10%%, target 15%%)" !libc_reduction;
  say "fuzz divergences      %10d" !divergences;
  say "byte-identity (off)   %s" (if !identity_off then "holds" else "VIOLATED");
  let oc = open_out "BENCH_infer.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"infer\",\n\
    \  %s,\n\
    \  \"rows\": [%s\n  ],\n\
    \  \"libc_reduction_pct\": %.2f,\n\
    \  \"fuzz_divergences\": %d,\n\
    \  \"byte_identity_off\": %b\n\
     }\n"
    (host_json ~corpus_size:(List.length specs))
    (String.concat ","
       (List.map
          (fun (name, ab, ai, red, closed, ovoff, ovon, total, div) ->
            Printf.sprintf
              "\n    { \"name\": \"%s\", \"ambiguous_before\": %d, \"ambiguous_after\": \
               %d, \"reduction_pct\": %.2f, \"closed\": %b, \"overhead_off_pct\": %.3f, \
               \"overhead_on_pct\": %.3f, \"fuzz_total\": %d, \"fuzz_divergences\": %d }"
              (json_escape name) ab ai red closed ovoff ovon total div)
          rows))
    !libc_reduction !divergences !identity_off;
  close_out oc;
  say "wrote BENCH_infer.json (%d workloads)" (List.length rows);
  if not !identity_off then
    failwith "infer bench: baseline bytes changed with the refiner disabled";
  if !divergences > 0 then
    failwith
      (Printf.sprintf "infer bench: %d differential fuzz divergences with --infer"
         !divergences);
  if !libc_reduction < 10.0 then
    failwith
      (Printf.sprintf "infer bench: libc-like reduction %.1f%% below the 10%% floor"
         !libc_reduction)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)
(* ------------------------------------------------------------------ *)

let micro () =
  say "== Bechamel micro-benchmarks (one per table/figure) ==";
  let open Bechamel in
  let cb = Cgc.Corpus.entry 5 in
  let orig = cb.Cgc.Corpus.binary in
  let libc = Workloads.Synthetic.libc_like () in
  let rewritten_null =
    (Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] orig).Zipr.Pipeline.rewritten
  in
  let poller = List.hd cb.Cgc.Corpus.pollers in
  let tests =
    [
      (* fig4/fig7: the cost of a full Null rewrite of a CB *)
      Test.make ~name:"fig4:null-rewrite-cb"
        (Staged.stage (fun () ->
             ignore (Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] orig)));
      (* fig5: executing a poller on the rewritten binary *)
      Test.make ~name:"fig5:poller-run-rewritten"
        (Staged.stage (fun () -> ignore (Cgc.Poller.run rewritten_null poller)));
      (* fig6: CFI rewrite (the memory-heavy configuration) *)
      Test.make ~name:"fig6:cfi-rewrite-cb"
        (Staged.stage (fun () ->
             ignore (Zipr.Pipeline.rewrite ~transforms:[ Transforms.Cfi.transform ] orig)));
      (* e1/throughput: IR construction on the large workload *)
      Test.make ~name:"e1:ir-construction-libc"
        (Staged.stage (fun () ->
             ignore (Zipr.Ir_construction.build libc.Workloads.Synthetic.binary)));
      (* security: a PoV attempt *)
      Test.make ~name:"security:pov-attempt"
        (Staged.stage (fun () -> ignore (Cgc.Pov.attempt orig cb.Cgc.Corpus.meta)));
      (* ablation: one dollop-placement-heavy reassembly *)
      Test.make ~name:"ablation:random-placement"
        (Staged.stage (fun () ->
             let config =
               { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = Zipr.Placement.random }
             in
             ignore
               (Zipr.Pipeline.rewrite ~config ~transforms:[ Transforms.Null.transform ] orig)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let anl = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name v ->
          match Analyze.OLS.estimates v with
          | Some [ est ] -> say "%-32s %12.1f ns/run" name est
          | _ -> say "%-32s (no estimate)" name)
        anl)
    tests

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("security", security);
    ("throughput", throughput);
    ("alloc", alloc);
    ("ablation", ablation);
    ("pinning", pinning);
    ("jtrw", jtrw);
    ("defenses", defenses);
    ("serve", serve_bench);
    ("delta", delta_bench);
    ("placement", placement_bench);
    ("irpar", irpar_bench);
    ("infer", infer_bench);
    ("micro", micro);
  ]

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  let rec parse names = function
    | [] -> List.rev names
    | "--json" :: rest ->
        json_mode := true;
        parse names rest
    | "--small" :: rest ->
        small_mode := true;
        parse names rest
    | "--jobs" :: n :: rest ->
        jobs := max 0 (int_of_string n);
        parse names rest
    | f :: rest when String.length f > 7 && String.sub f 0 7 = "--jobs=" ->
        jobs := max 0 (int_of_string (String.sub f 7 (String.length f - 7)));
        parse names rest
    | "--ir-jobs" :: n :: rest ->
        ir_jobs := max 0 (int_of_string n);
        parse names rest
    | f :: rest when String.length f > 10 && String.sub f 0 10 = "--ir-jobs=" ->
        ir_jobs := max 0 (int_of_string (String.sub f 10 (String.length f - 10)));
        parse names rest
    | "--count" :: n :: rest ->
        count_override := max 1 (int_of_string n);
        parse names rest
    | f :: rest when String.length f > 8 && String.sub f 0 8 = "--count=" ->
        count_override := max 1 (int_of_string (String.sub f 8 (String.length f - 8)));
        parse names rest
    | "--clients" :: n :: rest ->
        clients := max 1 (int_of_string n);
        parse names rest
    | f :: rest when String.length f > 10 && String.sub f 0 10 = "--clients=" ->
        clients := max 1 (int_of_string (String.sub f 10 (String.length f - 10)));
        parse names rest
    | "--trace" :: rest ->
        trace_mode := true;
        parse names rest
    | f :: rest when String.length f > 2 && String.sub f 0 2 = "--" ->
        say
          "unknown flag %S; available: --json, --small, --jobs N, --ir-jobs N, --clients N, \
           --count N, --trace"
          f;
        parse names rest
    | name :: rest -> parse (name :: names) rest
  in
  let names = parse [] argv in
  let requested = match names with [] -> List.map fst experiments | _ -> names in
  let sink = if !trace_mode then Some (Obs.Tracer.create ()) else None in
  Option.iter Obs.install sink;
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          f ();
          say ""
      | None ->
          say "unknown experiment %S; available: %s" name
            (String.concat ", " (List.map fst experiments)))
    requested;
  Option.iter
    (fun s ->
      Obs.disable ();
      say "== Trace: aggregated per-phase spans and counters ==";
      print_string (Obs.Tracer.render s))
    sink
