(** Greedy delta-debugging core.

    [greedy ~budget ~check ~candidates x] repeatedly replaces [x] by the
    first candidate that still satisfies [check] (i.e. still fails),
    until no candidate does or [budget] check evaluations have been
    spent.  Returns the minimized value and the number of checks used.
    [check x] is assumed true on entry and is never re-evaluated on the
    current value. *)

val greedy :
  budget:int -> check:('a -> bool) -> candidates:('a -> 'a list) -> 'a -> 'a * int

val shrink_string : string -> string list
(** Candidate reductions of an input string: empty, halves, and
    single-character deletions (capped), most aggressive first. *)
