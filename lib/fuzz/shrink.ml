let greedy ~budget ~check ~candidates x =
  let used = ref 0 in
  let try_one c =
    if !used >= budget then false
    else begin
      incr used;
      check c
    end
  in
  let rec fix x =
    match List.find_opt try_one (candidates x) with
    | Some c when !used <= budget -> fix c
    | _ -> x
  in
  (* bind before reading [used]: tuple components evaluate right to
     left, and the counter must observe the completed fixpoint *)
  let minimized = fix x in
  (minimized, !used)

let shrink_string s =
  let n = String.length s in
  if n = 0 then []
  else
    let halves =
      if n >= 2 then [ String.sub s 0 (n / 2); String.sub s (n / 2) (n - (n / 2)) ] else []
    in
    let deletions =
      (* drop one character at up to 8 evenly spread positions *)
      let step = max 1 (n / 8) in
      let rec go i acc =
        if i >= n then List.rev acc
        else go (i + step) ((String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)) :: acc)
      in
      go 0 []
    in
    ("" :: halves) @ deletions
