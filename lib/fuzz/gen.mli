(** Seeded random program generation for the differential fuzzer.

    Two families of test programs, both deterministic in their spec:

    - {b Profile} cases reuse the challenge-binary generator with a
      randomly sampled {!Cgc.Cb_gen.profile} — jump tables, function
      pointers, data islands, hidden code, dense pin pairs and PIC
      addressing in random combinations, driven by benign poller scripts.
    - {b Web} cases are built directly on {!Zasm.Builder} and concentrate
      the pathological shapes the paper's §IV-B worries about: a table of
      address-taken stubs packed {e adjacently} (1-byte-apart pins that
      force sleds), live data islands inside the text section (the program
      reads them, so a clobbered island changes output), and an acyclic
      web of short-range branches whose path depends on the input byte.

    A spec is a pure value: {!build} is referentially transparent, which
    is what makes greedy shrinking and reproducer dumps possible. *)

type web_params = {
  web_seed : int;
  blocks : int;  (** branch-web blocks, >= 1 *)
  obs_stubs : int;  (** observable (accumulator-mutating) stubs *)
  dense_pairs : int;
      (** pairs of adjacent 1-byte [ret] stubs — pins 1 byte apart, each
          pair forcing a sled; each pair is followed by live filler code
          so the sled footprint has movable bytes to consume *)
  islands : int;  (** live data islands embedded in text *)
  jumptable : bool;  (** dispatch into the web through a [jmpt] table *)
}

type spec =
  | Profile of { gen_seed : int; profile : Cgc.Cb_gen.profile }
  | Web of web_params

val random_spec : Zipr_util.Rng.t -> spec

val build : spec -> Zelf.Binary.t * string list
(** The program and its benign input set.  Deterministic: equal specs
    yield byte-identical binaries and identical inputs.  Raises [Failure]
    if the generated program does not assemble (a generator bug — the
    driver reports it as a finding). *)

val shrink : spec -> spec list
(** Strictly smaller candidate specs, most aggressive first. *)

val describe : spec -> string
(** One-line rendering, stable across runs (embedded in reproducers). *)
