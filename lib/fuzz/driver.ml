module Rng = Zipr_util.Rng
module Db = Irdb.Db

type fault = Skip_pin

type xf =
  | Null
  | Cfi
  | Shadow_stack
  | Jumptable_rewrite
  | Stack_pad of int
  | Canary of int
  | Stirring of int
  | Nop_pad of int

type cfg = { transforms : xf list; placement : string; layout_seed : int }

type options = {
  cases : int;
  seed : int;
  max_steps : int;
  fault : fault option;
  structural : bool;
  shrink_budget : int;
  jobs : int;
  infer : bool;
}

let default_options =
  {
    cases = 100;
    seed = 1;
    max_steps = 2_000_000;
    fault = None;
    structural = false;
    shrink_budget = 120;
    jobs = 1;
    infer = false;
  }

type failure = {
  case : int;
  spec : Gen.spec;
  cfg : cfg;
  input : string;
  reason : string;
  min_spec : Gen.spec;
  min_cfg : cfg;
  min_input : string;
  min_reason : string;
  shrink_tests : int;
  repro_zasm : string;
}

type summary = {
  cases_run : int;
  rewrites : int;
  inputs_compared : int;
  failures : failure list;
}

(* -- configuration sampling -- *)

let to_transform = function
  | Null -> Transforms.Null.transform
  | Cfi -> Transforms.Cfi.transform
  | Shadow_stack -> Transforms.Shadow_stack.transform
  | Jumptable_rewrite -> Transforms.Jumptable_rewrite.transform
  | Stack_pad s -> Transforms.Stack_pad.make ~seed:s ()
  | Canary s -> Transforms.Canary.make ~seed:s ()
  | Stirring s -> Transforms.Stirring.make ~seed:s ()
  | Nop_pad s -> Transforms.Nop_pad.make ~seed:s ()

let xf_name = function
  | Null -> "null"
  | Cfi -> "cfi"
  | Shadow_stack -> "shadow_stack"
  | Jumptable_rewrite -> "jumptable_rewrite"
  | Stack_pad s -> Printf.sprintf "stack_pad(%d)" s
  | Canary s -> Printf.sprintf "canary(%d)" s
  | Stirring s -> Printf.sprintf "stirring(%d)" s
  | Nop_pad s -> Printf.sprintf "nop_pad(%d)" s

let cfg_to_string c =
  Printf.sprintf "transforms=[%s] placement=%s layout-seed=%d"
    (String.concat "," (List.map xf_name c.transforms))
    c.placement c.layout_seed

let random_cfg rng =
  let s () = Rng.int_in rng 1 1_000_000 in
  let stack =
    match Rng.int rng 9 with
    | 0 -> [ Null ]
    | 1 -> [ Cfi ]
    | 2 -> [ Shadow_stack ]
    | 3 -> [ Jumptable_rewrite ]
    | 4 -> [ Stack_pad (s ()) ]
    | 5 -> [ Canary (s ()) ]
    | 6 -> [ Stirring (s ()) ]
    | 7 -> [ Nop_pad (s ()) ]
    | _ -> [ Stirring (s ()); Nop_pad (s ()) ]
  in
  {
    transforms = stack;
    placement = Rng.choose rng [| "naive"; "optimized"; "random" |];
    layout_seed = s ();
  }

(* -- fault injection -- *)

let decode_at binary addr =
  match Zvm.Decode.decode ~fetch:(Zelf.Binary.read8 binary) addr with
  | Ok (i, len) -> Some (i, len)
  | Error _ -> None

let patch_nops binary addr len =
  Zelf.Binary.create ~entry:binary.Zelf.Binary.entry
    (List.map
       (fun (s : Zelf.Section.t) ->
         if Zelf.Section.is_code s && Zelf.Section.contains s addr then begin
           let d = Bytes.copy s.Zelf.Section.data in
           for i = 0 to len - 1 do
             let off = addr - s.Zelf.Section.vaddr + i in
             if off < Bytes.length d then Bytes.set d off '\x90'
           done;
           Zelf.Section.make ~name:s.Zelf.Section.name ~kind:s.Zelf.Section.kind
             ~vaddr:s.Zelf.Section.vaddr d
         end
         else s)
       binary.Zelf.Binary.sections)

(* Overwrite one pinned address's reference jump with no-ops: the pin is
   still "reachable", but arriving there no longer lands on the pinned
   row's relocated instruction.  Prefers the entry pin (always exercised),
   falling back to the middle candidate for variety. *)
let skip_pin (r : Zipr.Pipeline.result) =
  let rewritten = r.Zipr.Pipeline.rewritten in
  let db = r.Zipr.Pipeline.ir.Zipr.Ir_construction.db in
  let candidates =
    List.filter_map
      (fun (addr, rid) ->
        let movable =
          match Db.row db rid with r -> not r.Db.fixed | exception Not_found -> false
        in
        if not movable then None
        else
          match decode_at rewritten addr with
          | Some (Zvm.Insn.Jmp _, len) -> Some (addr, len)
          | _ -> None)
      (Db.pinned_addresses db)
  in
  match candidates with
  | [] -> None
  | cs -> (
      match List.find_opt (fun (a, _) -> a = rewritten.Zelf.Binary.entry) cs with
      | Some (addr, len) -> Some (patch_nops rewritten addr len)
      | None ->
          let addr, len = List.nth cs (List.length cs / 2) in
          Some (patch_nops rewritten addr len))

(* -- testing one (spec, cfg, input) -- *)

type counters = { mutable rewrites : int; mutable inputs : int }

(* Returns the rewritten (possibly fault-injected) binary, or a failure
   reason that already terminates the case.  [ir_cache] pays off inside
   minimization, which re-rewrites the same (or a shrunk) binary once per
   shrink test: only the first rewrite of each distinct binary builds IR. *)
let rewrite_spec ~ir_cache opts counters spec cfg =
  match Gen.build spec with
  | exception Failure msg -> Error ("generator failure: " ^ msg)
  | exception e -> Error ("generator exception: " ^ Printexc.to_string e)
  | binary, inputs -> (
      let config =
        {
          Zipr.Pipeline.placement =
            (match Zipr.Placement.by_name cfg.placement with
            | Some p -> p
            | None -> Zipr.Placement.optimized);
          pin_config = Analysis.Ibt.default_config;
          seed = cfg.layout_seed;
          ir_jobs = 1;
          infer = opts.infer;
        }
      in
      let transforms = List.map to_transform cfg.transforms in
      match Zipr.Pipeline.rewrite ~config ~ir_cache ~transforms binary with
      | exception Zipr.Reassemble.Failure_ msg ->
          counters.rewrites <- counters.rewrites + 1;
          Error ("reassembly failed: " ^ msg)
      | exception e ->
          counters.rewrites <- counters.rewrites + 1;
          Error ("pipeline exception: " ^ Printexc.to_string e)
      | r -> (
          counters.rewrites <- counters.rewrites + 1;
          let structural_issue =
            if not opts.structural then None
            else
              let report =
                Zipr.Verify.structural ~orig:binary ~ir:r.Zipr.Pipeline.ir
                  ~rewritten:r.Zipr.Pipeline.rewritten
              in
              if Zipr.Verify.ok report then None
              else Some (Format.asprintf "structural: %a" Zipr.Verify.pp_report report)
          in
          match structural_issue with
          | Some msg -> Error msg
          | None ->
              let rewritten =
                match opts.fault with
                | None -> Some r.Zipr.Pipeline.rewritten
                | Some Skip_pin -> skip_pin r
              in
              (* A fault that found no pin to skip leaves the case clean. *)
              let rewritten = Option.value rewritten ~default:r.Zipr.Pipeline.rewritten in
              Ok (binary, rewritten, inputs)))

(* First failing input for the case, or None. *)
let check_case ~ir_cache opts counters spec cfg =
  match rewrite_spec ~ir_cache opts counters spec cfg with
  | Error reason -> Some ("", reason)
  | Ok (orig, rewritten, inputs) ->
      List.find_map
        (fun input ->
          counters.inputs <- counters.inputs + 1;
          match Diff.compare_on ~fuel:opts.max_steps ~orig ~rewritten input with
          | Diff.Diverged reason -> Some (input, reason)
          | Diff.Equivalent | Diff.Undecided -> None)
        inputs

(* Does this exact (spec, cfg, input) still fail?  Used by the shrinker. *)
let still_fails ~ir_cache opts counters (spec, cfg, input) =
  match rewrite_spec ~ir_cache opts counters spec cfg with
  | Error _ -> true
  | Ok (orig, rewritten, _) -> (
      counters.inputs <- counters.inputs + 1;
      match Diff.compare_on ~fuel:opts.max_steps ~orig ~rewritten input with
      | Diff.Diverged _ -> true
      | Diff.Equivalent | Diff.Undecided -> false)

let failure_reason ~ir_cache opts counters (spec, cfg, input) =
  match rewrite_spec ~ir_cache opts counters spec cfg with
  | Error reason -> reason
  | Ok (orig, rewritten, _) -> (
      match Diff.compare_on ~fuel:opts.max_steps ~orig ~rewritten input with
      | Diff.Diverged reason -> reason
      | Diff.Equivalent -> "no longer diverges (unstable shrink)"
      | Diff.Undecided -> "original exhausted its budget")

let shrink_candidates (spec, cfg, input) =
  let specs = List.map (fun s -> (s, cfg, input)) (Gen.shrink spec) in
  let cfgs =
    if List.length cfg.transforms <= 0 then []
    else
      List.mapi
        (fun i _ ->
          let transforms = List.filteri (fun j _ -> j <> i) cfg.transforms in
          (spec, { cfg with transforms }, input))
        cfg.transforms
  in
  let inputs = List.map (fun s -> (spec, cfg, s)) (Shrink.shrink_string input) in
  specs @ cfgs @ inputs

let minimize ~ir_cache opts counters spec cfg input =
  Shrink.greedy ~budget:opts.shrink_budget
    ~check:(still_fails ~ir_cache opts counters)
    ~candidates:shrink_candidates (spec, cfg, input)

let hex_of_string s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

let repro_listing (spec, cfg, input) reason =
  let listing =
    match Gen.build spec with
    | binary, _ -> Zasm.Printer.program_listing binary
    | exception _ -> "; (program did not assemble)\n"
  in
  Printf.sprintf
    "; ziprtool fuzz reproducer\n; spec: %s\n; config: %s\n; input (hex): %s\n; reason: %s\n%s"
    (Gen.describe spec) (cfg_to_string cfg) (hex_of_string input) reason listing

(* -- the main loop -- *)

(* One whole case — generation, rewrite, differential executions, and on
   failure the full minimization — as a pure function of its own RNG.
   This is the unit the parallel driver shards: per-case counters merge
   by summation, per-case verdicts assemble in case order, so the summary
   is identical whatever the worker count. *)
let run_case ~ir_cache opts log case rng =
  let counters = { rewrites = 0; inputs = 0 } in
  let spec = Gen.random_spec rng in
  let cfg = random_cfg rng in
  let failure =
    match check_case ~ir_cache opts counters spec cfg with
    | None -> None
    | Some (input, reason) ->
        log (Printf.sprintf "case %d FAILED: %s (minimizing...)" case reason);
        let (min_spec, min_cfg, min_input), shrink_tests =
          minimize ~ir_cache opts counters spec cfg input
        in
        let min_reason = failure_reason ~ir_cache opts counters (min_spec, min_cfg, min_input) in
        Some
          {
            case;
            spec;
            cfg;
            input;
            reason;
            min_spec;
            min_cfg;
            min_input;
            min_reason;
            shrink_tests;
            repro_zasm = repro_listing (min_spec, min_cfg, min_input) min_reason;
          }
  in
  (counters, failure)

let run ?(log = fun _ -> ()) opts =
  (* Case streams derive from the master serially, before any fan-out, so
     case [i] sees the same RNG under every [jobs] value. *)
  let master = Rng.create opts.seed in
  let case_rngs = Array.init (max 0 opts.cases) (fun _ -> Rng.split master) in
  (* One mutex-protected cache shared by every case and worker: restored
     IR is identical to cold-built IR, so hit/miss mix (which does vary
     with scheduling) never reaches the deterministic surface. *)
  let ir_cache = Irdb.Cache.create () in
  let results =
    if opts.jobs <= 1 then
      Array.mapi
        (fun case rng ->
          let r = run_case ~ir_cache opts log case rng in
          (match r with
          | _, Some _ | _, None ->
              if (case + 1) mod 50 = 0 then
                log (Printf.sprintf "%d/%d cases" (case + 1) opts.cases));
          r)
        case_rngs
    else
      let timed, _, _ =
        Parallel.Pool.map ~jobs:opts.jobs
          (fun (case, rng) -> run_case ~ir_cache opts log case rng)
          (Array.mapi (fun case rng -> (case, rng)) case_rngs)
      in
      Array.map (fun t -> t.Parallel.Pool.value) timed
  in
  let rewrites = ref 0 and inputs = ref 0 and failures = ref [] in
  (* Case order, not completion order: failure ordering is part of the
     deterministic surface. *)
  Array.iter
    (fun (c, f) ->
      rewrites := !rewrites + c.rewrites;
      inputs := !inputs + c.inputs;
      match f with Some f -> failures := f :: !failures | None -> ())
    results;
  {
    cases_run = max 0 opts.cases;
    rewrites = !rewrites;
    inputs_compared = !inputs;
    failures = List.rev !failures;
  }

let render_summary s =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "fuzz: %d cases, %d rewrites, %d differential executions, %d failures\n"
       s.cases_run s.rewrites s.inputs_compared (List.length s.failures));
  List.iter
    (fun f ->
      Buffer.add_string b (Printf.sprintf "case %d: %s\n" f.case f.reason);
      Buffer.add_string b (Printf.sprintf "  spec: %s\n" (Gen.describe f.spec));
      Buffer.add_string b (Printf.sprintf "  config: %s\n" (cfg_to_string f.cfg));
      Buffer.add_string b (Printf.sprintf "  input (hex): %s\n" (hex_of_string f.input));
      Buffer.add_string b
        (Printf.sprintf "  minimized (%d shrink tests): %s\n" f.shrink_tests
           (Gen.describe f.min_spec));
      Buffer.add_string b (Printf.sprintf "  min config: %s\n" (cfg_to_string f.min_cfg));
      Buffer.add_string b
        (Printf.sprintf "  min input (hex): %s\n" (hex_of_string f.min_input));
      Buffer.add_string b (Printf.sprintf "  min reason: %s\n" f.min_reason))
    s.failures;
  Buffer.contents b
