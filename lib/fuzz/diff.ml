type verdict = Equivalent | Undecided | Diverged of string

let stop_kind = function
  | Zvm.Vm.Halted -> "halted"
  | Zvm.Vm.Exited n -> Printf.sprintf "exit %d" n
  | Zvm.Vm.Fault (Zvm.Vm.Decode_fault _) -> "decode-fault"
  | Zvm.Vm.Fault (Zvm.Vm.Mem_fault _) -> "mem-fault"
  | Zvm.Vm.Fault (Zvm.Vm.Div_fault _) -> "div-fault"
  | Zvm.Vm.Fault (Zvm.Vm.Bad_syscall _) -> "bad-syscall"
  | Zvm.Vm.Fault Zvm.Vm.Fuel_exhausted -> "hang"

let render_trace t =
  String.concat ";" (List.map string_of_int t)

let compare_on ?(fuel = 2_000_000) ~orig ~rewritten input =
  let a = Zipr.Verify.execute ~fuel orig ~input in
  if a.Zipr.Verify.stop = Zvm.Vm.Fault Zvm.Vm.Fuel_exhausted then Undecided
  else
    let b = Zipr.Verify.execute ~fuel:((2 * fuel) + 4096) rewritten ~input in
    let ka = stop_kind a.Zipr.Verify.stop and kb = stop_kind b.Zipr.Verify.stop in
    if ka <> kb then Diverged (Printf.sprintf "stop: %s vs %s" ka kb)
    else if a.Zipr.Verify.output <> b.Zipr.Verify.output then
      Diverged
        (Printf.sprintf "output: %S vs %S" a.Zipr.Verify.output b.Zipr.Verify.output)
    else if a.Zipr.Verify.syscalls <> b.Zipr.Verify.syscalls then
      Diverged
        (Printf.sprintf "syscall trace: [%s] vs [%s]"
           (render_trace a.Zipr.Verify.syscalls)
           (render_trace b.Zipr.Verify.syscalls))
    else Equivalent
