module Rng = Zipr_util.Rng
module Builder = Zasm.Builder
module Insn = Zvm.Insn
module Reg = Zvm.Reg
module Cond = Zvm.Cond

type web_params = {
  web_seed : int;
  blocks : int;
  obs_stubs : int;
  dense_pairs : int;
  islands : int;
  jumptable : bool;
}

type spec =
  | Profile of { gen_seed : int; profile : Cgc.Cb_gen.profile }
  | Web of web_params

(* -- sampling -- *)

let random_profile rng =
  {
    Cgc.Cb_gen.n_handlers = Rng.int_in rng 1 5;
    n_helpers = Rng.int_in rng 0 6;
    body_ops = Rng.int_in rng 2 30;
    loop_iters = Rng.int_in rng 1 40;
    use_jump_table = Rng.bool rng;
    n_fptrs = Rng.choose rng [| 0; 2; 3 |];
    data_islands = Rng.int_in rng 0 2;
    hidden_funcs = Rng.int_in rng 0 1;
    dense_pair = Rng.bool rng;
    vuln = true;
    vuln_fptr = Rng.bool rng;
    pathological = Rng.chance rng 0.15;
    mem_span = Rng.choose rng [| 0; 64; 256 |];
    pic = Rng.bool rng;
  }

let random_web rng =
  {
    web_seed = Rng.int_in rng 1 1_000_000;
    blocks = Rng.int_in rng 1 8;
    obs_stubs = Rng.int_in rng 0 4;
    dense_pairs = Rng.int_in rng 0 2;
    islands = Rng.int_in rng 0 2;
    jumptable = Rng.bool rng;
  }

(* The adversarial corpus classes ride along in the mix at full size:
   overlap traps, flattened/masked/opaque dispatch and dense islands are
   exactly the shapes the inference refiner bets on, so the differential
   run must keep hammering them whether or not --infer is set. *)
let adversarial_profiles =
  Array.of_list (List.map snd Workloads.Adversarial.profiles)

let random_spec rng =
  let u = Rng.int rng 100 in
  if u < 50 then
    Profile { gen_seed = Rng.int_in rng 1 1_000_000; profile = random_profile rng }
  else if u < 65 then
    Profile
      {
        gen_seed = Rng.int_in rng 1 1_000_000;
        profile = Rng.choose rng adversarial_profiles;
      }
  else Web (random_web rng)

(* -- web construction -- *)

let island_lbl k = Printf.sprintf "island_%d" k
let web_lbl k = Printf.sprintf "web_%d" k
let stub_lbl k = Printf.sprintf "stub_%d" k

(* Island bytes are drawn from 0x01..0x0f: no such byte is a valid opcode
   (so the disassemblers agree the range is data) and no 4-byte window of
   such bytes forms a word inside the text span (so the data scan cannot
   conjure spurious pins out of island contents — word values start at
   0x01010101, far above any text address). *)
let island_bytes rng n =
  let d = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set d i (Char.chr (1 + Rng.int rng 15))
  done;
  d

let build_web (w : web_params) =
  let rng = Rng.create w.web_seed in
  let b = Builder.create ~entry:"main" () in
  let n_stubs = w.obs_stubs + (2 * w.dense_pairs) in
  Builder.label b "main";
  Builder.insn b (Insn.Movi (Reg.R6, Rng.int rng 0xffffff));
  Builder.label b "loop";
  (* receive one byte; r0 = count, 0 at EOF *)
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.movi_lab b Reg.R1 "iobuf";
  Builder.insn b (Insn.Movi (Reg.R2, 1));
  Builder.insn b (Insn.Sys (Zvm.Syscall.number Zvm.Syscall.Receive));
  Builder.insn b (Insn.Cmpi (Reg.R0, 0));
  Builder.jcc b Cond.Eq "done";
  Builder.movi_lab b Reg.R1 "iobuf";
  Builder.insn b (Insn.Load8 { dst = Reg.R3; base = Reg.R1; disp = 0 });
  (* live islands: their contents feed the accumulator *)
  for k = 0 to w.islands - 1 do
    Builder.loada_lab b Reg.R5 (island_lbl k);
    Builder.insn b (Insn.Alu (Insn.Xor, Reg.R6, Reg.R5))
  done;
  (* dense dispatch: call a stub selected by the input byte *)
  if n_stubs > 0 then begin
    Builder.insn b (Insn.Mov (Reg.R4, Reg.R3));
    Builder.insn b (Insn.Movi (Reg.R5, n_stubs));
    Builder.insn b (Insn.Alu (Insn.Mod, Reg.R4, Reg.R5));
    Builder.insn b (Insn.Shli (Reg.R4, 2));
    Builder.movi_lab b Reg.R1 "stub_table";
    Builder.insn b (Insn.Alu (Insn.Add, Reg.R1, Reg.R4));
    Builder.insn b (Insn.Load { dst = Reg.R2; base = Reg.R1; disp = 0 });
    Builder.insn b (Insn.Callr Reg.R2)
  end;
  (* enter the branch web *)
  Builder.insn b (Insn.Mov (Reg.R5, Reg.R3));
  if w.jumptable && w.blocks > 1 then begin
    Builder.insn b (Insn.Mov (Reg.R4, Reg.R3));
    Builder.insn b (Insn.Movi (Reg.R7, w.blocks));
    Builder.insn b (Insn.Alu (Insn.Mod, Reg.R4, Reg.R7));
    Builder.jmpt_lab b Reg.R4 "web_table"
  end
  else Builder.jmp b (web_lbl 0);
  (* Acyclic web: block i only branches to blocks j > i or to web_out, so
     every path terminates.  Physical order is shuffled so the short
     branches span randomized distances. *)
  let order = Array.init w.blocks (fun i -> i) in
  Rng.shuffle rng order;
  let target_after rng i =
    if i + 1 >= w.blocks then "web_out"
    else if Rng.chance rng 0.3 then "web_out"
    else web_lbl (Rng.int_in rng (i + 1) (w.blocks - 1))
  in
  Array.iter
    (fun i ->
      Builder.label b (web_lbl i);
      Builder.insn b (Insn.Alui (Insn.Xori, Reg.R6, Rng.int rng 0xffff));
      Builder.insn b (Insn.Alui (Insn.Addi, Reg.R5, Rng.int_in rng 1 9));
      Builder.insn b (Insn.Cmpi (Reg.R5, Rng.int rng 300));
      Builder.jcc b (Rng.choose rng [| Cond.Eq; Cond.Ne; Cond.Lt; Cond.Ge; Cond.Ult |])
        (target_after rng i);
      Builder.jmp b (target_after rng i))
    order;
  Builder.label b "web_out";
  Builder.jmp b (if w.dense_pairs > 0 then "filler_0" else "loop");
  Builder.label b "done";
  (* transmit the accumulator, then exit 0 *)
  Builder.storea_lab b "acc" Reg.R6;
  Builder.insn b (Insn.Movi (Reg.R0, 1));
  Builder.movi_lab b Reg.R1 "acc";
  Builder.insn b (Insn.Movi (Reg.R2, 4));
  Builder.insn b (Insn.Sys (Zvm.Syscall.number Zvm.Syscall.Transmit));
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.insn b (Insn.Sys (Zvm.Syscall.number Zvm.Syscall.Terminate));
  (* observable stubs mutate the accumulator *)
  for k = 0 to w.obs_stubs - 1 do
    Builder.label b (stub_lbl k);
    Builder.insn b (Insn.Alui (Insn.Xori, Reg.R6, 0x1000 + (0x111 * k)));
    Builder.insn b Insn.Ret
  done;
  (* Dense pin pairs: two address-taken 1-byte ret stubs back to back
     (pins 1 byte apart force a sled), each followed by a reachable
     filler block so the sled's tail-and-dispatch footprint lands on
     movable code rather than on the end of text or a fixed range.  The
     filler blocks chain web_out back to the loop, so they are live code
     for the recursive disassembler. *)
  for k = 0 to w.dense_pairs - 1 do
    Builder.label b (stub_lbl (w.obs_stubs + (2 * k)));
    Builder.insn b Insn.Ret;
    Builder.label b (stub_lbl (w.obs_stubs + (2 * k) + 1));
    Builder.insn b Insn.Ret;
    Builder.label b (Printf.sprintf "filler_%d" k);
    for _ = 1 to 4 do
      Builder.insn b (Insn.Alui (Insn.Xori, Reg.R7, Rng.int rng 0xffff))
    done;
    Builder.jmp b (if k + 1 < w.dense_pairs then Printf.sprintf "filler_%d" (k + 1) else "loop")
  done;
  (* data islands embedded in text, jumped over and read by the loop *)
  for k = 0 to w.islands - 1 do
    let skip = Printf.sprintf "skip_island_%d" k in
    Builder.jmp b skip;
    Builder.label b (island_lbl k);
    Builder.text_item b (Zasm.Ast.Raw_bytes (island_bytes rng (4 + Rng.int rng 9)));
    Builder.label b skip
  done;
  (* final safety net: anything falling past the islands halts *)
  Builder.insn b Insn.Halt;
  (* rodata tables *)
  if n_stubs > 0 then begin
    Builder.rodata_label b "stub_table";
    for k = 0 to n_stubs - 1 do
      Builder.rodata_word b (Zasm.Ast.Lab (stub_lbl k))
    done
  end;
  if w.jumptable && w.blocks > 1 then begin
    Builder.rodata_label b "web_table";
    for k = 0 to w.blocks - 1 do
      Builder.rodata_word b (Zasm.Ast.Lab (web_lbl k))
    done
  end;
  Builder.bss b "iobuf" 4;
  Builder.bss b "acc" 4;
  match Builder.assemble b with
  | Ok (binary, _) -> binary
  | Error e -> failwith (Format.asprintf "web generator: %a" Zasm.Assemble.pp_error e)

let web_inputs (w : web_params) =
  let rng = Rng.create (w.web_seed * 131 + 7) in
  let one () = Bytes.to_string (Rng.bytes rng (Rng.int_in rng 1 12)) in
  [ ""; one (); one (); one () ]

(* -- building -- *)

let build = function
  | Profile { gen_seed; profile } ->
      let binary, meta = Cgc.Cb_gen.generate ~seed:gen_seed profile in
      let scripts = Cgc.Poller.generate meta ~seed:((gen_seed * 31) + 13) ~count:3 in
      (binary, "" :: List.map (fun s -> s.Cgc.Poller.input) scripts)
  | Web w -> (build_web w, web_inputs w)

(* -- shrinking -- *)

let shrink_profile gen_seed (p : Cgc.Cb_gen.profile) =
  let mk profile = Profile { gen_seed; profile } in
  let acc = ref [] in
  let add c = acc := c :: !acc in
  let num v floor set =
    if v > floor then begin
      add (mk (set floor));
      if v > floor + 1 then add (mk (set ((v + floor) / 2)))
    end
  in
  let flag v set = if v then add (mk (set false)) in
  num p.Cgc.Cb_gen.n_handlers 1 (fun v -> { p with Cgc.Cb_gen.n_handlers = v });
  num p.Cgc.Cb_gen.n_helpers 0 (fun v -> { p with Cgc.Cb_gen.n_helpers = v });
  num p.Cgc.Cb_gen.body_ops 2 (fun v -> { p with Cgc.Cb_gen.body_ops = v });
  num p.Cgc.Cb_gen.loop_iters 1 (fun v -> { p with Cgc.Cb_gen.loop_iters = v });
  num p.Cgc.Cb_gen.n_fptrs 0 (fun v -> { p with Cgc.Cb_gen.n_fptrs = v });
  num p.Cgc.Cb_gen.data_islands 0 (fun v -> { p with Cgc.Cb_gen.data_islands = v });
  num p.Cgc.Cb_gen.hidden_funcs 0 (fun v -> { p with Cgc.Cb_gen.hidden_funcs = v });
  num p.Cgc.Cb_gen.mem_span 0 (fun v -> { p with Cgc.Cb_gen.mem_span = v });
  flag p.Cgc.Cb_gen.use_jump_table (fun v -> { p with Cgc.Cb_gen.use_jump_table = v });
  flag p.Cgc.Cb_gen.dense_pair (fun v -> { p with Cgc.Cb_gen.dense_pair = v });
  flag p.Cgc.Cb_gen.vuln_fptr (fun v -> { p with Cgc.Cb_gen.vuln_fptr = v });
  flag p.Cgc.Cb_gen.pathological (fun v -> { p with Cgc.Cb_gen.pathological = v });
  flag p.Cgc.Cb_gen.pic (fun v -> { p with Cgc.Cb_gen.pic = v });
  List.rev !acc

let shrink_web (w : web_params) =
  let mk w = Web w in
  let acc = ref [] in
  let add c = acc := c :: !acc in
  let num v floor set =
    if v > floor then begin
      add (mk (set floor));
      if v > floor + 1 then add (mk (set ((v + floor) / 2)))
    end
  in
  num w.blocks 1 (fun v -> { w with blocks = v });
  num w.obs_stubs 0 (fun v -> { w with obs_stubs = v });
  num w.dense_pairs 0 (fun v -> { w with dense_pairs = v });
  num w.islands 0 (fun v -> { w with islands = v });
  if w.jumptable then add (mk { w with jumptable = false });
  List.rev !acc

let shrink = function
  | Profile { gen_seed; profile } -> shrink_profile gen_seed profile
  | Web w -> shrink_web w

(* -- rendering -- *)

let describe = function
  | Profile { gen_seed; profile = p } ->
      Printf.sprintf
        "profile seed=%d handlers=%d helpers=%d ops=%d iters=%d jt=%b fptrs=%d islands=%d \
         hidden=%d dense=%b vfp=%b path=%b span=%d pic=%b"
        gen_seed p.Cgc.Cb_gen.n_handlers p.Cgc.Cb_gen.n_helpers p.Cgc.Cb_gen.body_ops
        p.Cgc.Cb_gen.loop_iters p.Cgc.Cb_gen.use_jump_table p.Cgc.Cb_gen.n_fptrs
        p.Cgc.Cb_gen.data_islands p.Cgc.Cb_gen.hidden_funcs p.Cgc.Cb_gen.dense_pair
        p.Cgc.Cb_gen.vuln_fptr p.Cgc.Cb_gen.pathological p.Cgc.Cb_gen.mem_span p.Cgc.Cb_gen.pic
  | Web w ->
      Printf.sprintf "web seed=%d blocks=%d obs=%d pairs=%d islands=%d jt=%b" w.web_seed
        w.blocks w.obs_stubs w.dense_pairs w.islands w.jumptable
