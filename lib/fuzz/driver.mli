(** The differential-fuzzing driver.

    Each case: draw a random program spec ({!Gen}), draw a random rewrite
    configuration (transform stack, placement strategy, layout-diversity
    seed), rewrite, and execute original vs. rewritten on the spec's
    inputs ({!Diff}).  Reassembly failures, structural-verifier issues
    (when enabled) and behavioural divergences are all findings; every
    finding is greedily minimized ({!Shrink}) over the spec, the
    transform stack and the distinguishing input, and dumped as a
    reparseable zasm reproducer.

    Determinism contract: {!run} is a pure function of {!options} — the
    same seed yields the same cases, the same configurations, the same
    verdicts and the same minimized reproducers, so a reported failure is
    always replayable.  A fault can be injected to validate the harness
    end-to-end (it must catch a deliberately broken rewrite). *)

type fault =
  | Skip_pin
      (** after rewriting, overwrite one pinned address's reference jump
          with no-ops — simulating a rewriter that dropped a pin *)

type xf =
  | Null
  | Cfi
  | Shadow_stack
  | Jumptable_rewrite
  | Stack_pad of int
  | Canary of int
  | Stirring of int
  | Nop_pad of int  (** seeds are part of the configuration *)

type cfg = { transforms : xf list; placement : string; layout_seed : int }

type options = {
  cases : int;
  seed : int;
  max_steps : int;  (** the original's per-execution instruction budget *)
  fault : fault option;
  structural : bool;  (** also run {!Zipr.Verify.structural} per case *)
  shrink_budget : int;  (** max re-tests spent minimizing one failure *)
  jobs : int;
      (** worker domains for case execution.  Every case's RNG stream is
          split off the master serially before any fan-out, each case
          (including its minimization) runs against only its own stream,
          and verdicts reassemble in case order — so the summary,
          including reproducers and failure ordering, is identical for
          every [jobs] value. *)
  infer : bool;
      (** rewrite every case with the {!Disasm.Infer} refiner on — the
          differential soundness gate for inference-based refinement:
          any divergence it surfaces is a refinement bug. *)
}

val default_options : options
(** 100 cases, seed 1, 2M steps, no fault, no structural, budget 120,
    1 job, no inference refiner. *)

type failure = {
  case : int;
  spec : Gen.spec;
  cfg : cfg;
  input : string;
  reason : string;
  min_spec : Gen.spec;
  min_cfg : cfg;
  min_input : string;
  min_reason : string;
  shrink_tests : int;
  repro_zasm : string;  (** reparseable listing of the minimized program *)
}

type summary = {
  cases_run : int;
  rewrites : int;
  inputs_compared : int;
  failures : failure list;
}

val cfg_to_string : cfg -> string

val run : ?log:(string -> unit) -> options -> summary
(** [log] receives progress lines (side channel; not part of the
    deterministic output). *)

val render_summary : summary -> string
(** Deterministic multi-line report (reproducer listings excluded). *)
