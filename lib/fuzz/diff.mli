(** Differential execution of an original/rewritten binary pair.

    Both binaries run in the ZVM on the same input; the comparison covers
    exit status, transmitted output and the ordered system-call trace
    (via {!Zipr.Verify.execute}).  Two deliberate asymmetries:

    - the rewritten binary gets roughly double the instruction budget,
      since reference jumps, sleds and chained hops legitimately retire
      extra instructions;
    - faults compare by {e kind}, not by faulting address — a rewrite
      moves code, so pc values and (under stack diversity) stack
      addresses differ even between equivalent executions. *)

type verdict =
  | Equivalent
  | Undecided  (** the original exhausted its budget; nothing to compare *)
  | Diverged of string  (** human-readable mismatch description *)

val stop_kind : Zvm.Vm.stop -> string
(** Address-insensitive rendering of a stop ("exit 0", "mem-fault", ...). *)

val compare_on :
  ?fuel:int -> orig:Zelf.Binary.t -> rewritten:Zelf.Binary.t -> string -> verdict
(** [compare_on ~orig ~rewritten input] with [fuel] (default 2 million)
    as the original's budget. *)
