(** A versioned corpus: N successive versions of one synthetic binary,
    differing by a handful of local edits per version — the workload the
    incremental (delta) rewriting path is built for.

    Version-to-version churn is deliberately {e local}: cross-routine
    calls go through a fixed-shape pointer table in rodata and all data
    references are absolute into fixed-shape pools, so editing one
    routine leaves every other routine's encoded bytes untouched (even
    when the edit shifts the text layout).  A warm {!Zipr.Delta} cache
    should therefore hit on every unedited routine.  The pointer table's
    address words also make every routine a recursive-disassembly root,
    keeping the whole text unambiguous — the precondition for fragments
    to be cacheable at all (DESIGN.md §12). *)

type edit =
  | Insn_edit of int  (** regenerate routine [id]'s body *)
  | Data_move of int  (** move routine [id]'s pool word to the next slot *)
  | Insert of int  (** bring extra routine [id] to life *)
  | Delete of int  (** remove extra routine [id] *)

type version = {
  name : string;  (** ["v0"], ["v1"], ... *)
  binary : Zelf.Binary.t;
  edits : edit list;  (** edits applied relative to the previous version *)
}

val pp_edit : Format.formatter -> edit -> unit

val generate :
  ?n_routines:int ->
  ?n_extras:int ->
  ?body_ops:int ->
  ?edits_per_version:int ->
  seed:int ->
  versions:int ->
  unit ->
  version list
(** [generate ~seed ~versions ()] builds [versions] successive versions.
    [n_routines] core routines (live in every version, default 24) plus
    up to [n_extras] extra routines that insertions/deletions toggle
    (default 8, half live initially); [body_ops] sizes routine bodies
    (default 36, comfortably above the chunker's minimum chunk);
    [edits_per_version] edits are applied between consecutive versions
    (default 2).  Fully deterministic in its arguments: an unedited
    routine emits identical bytes in every version. *)
