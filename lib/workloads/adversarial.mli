(** Adversarial corpus for the inference refiner ({!Disasm.Infer}).

    Each class targets one way superset disambiguation goes wrong, and
    each ships a poller test suite so the differential soundness gate
    ([ziprtool fuzz], [bench infer]) can execute original and rewritten
    binaries side by side.  The classes:

    - {b overlap-trap}: pathological pin scatter plus adjacent 1-byte
      pins whose superset decodes overlap at different lengths — the
      refiner must {e report} the mismatched ranges, never clamp them.
    - {b flattened-dispatch}: all control flow through a jump table and
      a wide pointer surface, no direct branches to handlers.
    - {b masked-dispatch}: many hidden functions reachable only through
      Loada/Xori-masked computed jumps — the class the value analysis
      must fully resolve.
    - {b opaque-dispatch}: the indirect call target lives in a
      {e writable} table, so resolution must fail and conservative pins
      must survive; anything else is unsound.
    - {b dense-islands}: text saturated with decodable data blobs that
      reachability facts must exclude.

    All classes are deterministic in their seeds. *)

type spec = Synthetic.spec = {
  name : string;
  binary : Zelf.Binary.t;
  meta : Cgc.Cb_gen.meta;
  test_suite : Cgc.Poller.script list;
}

val overlap_trap : ?seed:int -> ?tests:int -> unit -> spec
(** Overlapping decode traps (pathological + dense pair).  Defaults:
    seed 1201, 60 tests. *)

val flattened_dispatch : ?seed:int -> ?tests:int -> unit -> spec
(** Flattening-style dispatch: wide jump table plus a 96-entry pointer
    surface.  Defaults: seed 1302, 60 tests. *)

val masked_dispatch : ?seed:int -> ?tests:int -> unit -> spec
(** Resolvable masked computed dispatch (six hidden functions).
    Defaults: seed 1403, 60 tests. *)

val opaque_dispatch : ?seed:int -> ?tests:int -> unit -> spec
(** Unresolvable dispatch through a writable pointer table
    ([vuln_fptr]); the refiner must stay conservative here.  Defaults:
    seed 1504, 60 tests. *)

val dense_islands : ?seed:int -> ?tests:int -> unit -> spec
(** Text saturated with decodable data islands.  Defaults: seed 1605,
    60 tests. *)

val all : unit -> spec list
(** All five classes, in the order listed above. *)

val profiles : (string * Cgc.Cb_gen.profile) list
(** The five classes as raw generator profiles (class name first), for
    harnesses that draw their own seeds — the differential fuzzer mixes
    these into its random spec stream. *)
