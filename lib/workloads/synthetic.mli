(** Synthetic stand-ins for the robustness workloads of the paper's
    §IV-A: libc, OpenJDK's libjvm, and the Apache httpd binaries.

    We cannot link the real artifacts in this environment (see DESIGN.md's
    substitution table), so each stand-in reproduces the {e traits} the
    paper calls out, at reduced but proportional scale:

    - {b libc-like}: a large service with a high proportion of
      "handwritten assembly" irregularity — data islands inside text,
      computed-jump-only (hidden) regions, dense address-taken targets —
      plus a broad unit-test suite (the paper ran >2500 libc tests; the
      suite size here is a parameter).
    - {b jvm-like}: several times larger than libc-like, dominated by a
      big dispatch surface (a wide function-pointer table standing in for
      interpreter dispatch) and deep call chains.
    - {b apache-like}: moderate size, compiled in two configurations —
      with and without position-independent addressing — matching the
      paper's PIC / non-PIC Apache experiments.

    All four are deterministic in their seeds. *)

type spec = {
  name : string;
  binary : Zelf.Binary.t;
  meta : Cgc.Cb_gen.meta;
  test_suite : Cgc.Poller.script list;  (** the workload's "unit tests" *)
}

val libc_like : ?seed:int -> ?tests:int -> unit -> spec
(** Defaults: seed 101, 120 tests. *)

val jvm_like : ?seed:int -> ?tests:int -> unit -> spec
(** Roughly 5x the text of {!libc_like} (the paper's libjvm/libc ratio).
    Defaults: seed 202, 60 tests. *)

val apache_like : ?pic:bool -> ?seed:int -> ?tests:int -> unit -> spec
(** Defaults: non-PIC, seed 303, 80 tests. *)

val frag_like : ?seed:int -> ?tests:int -> unit -> spec
(** A fragmentation-heavy service: many data islands, hidden
    computed-jump regions and scattered pins shatter the text span, so
    placement must split dollops into fragments — the workload that keeps
    the reassembler's split path and drain-cache
    ([layout_reuses]) demonstrably live.  Defaults: seed 404, 40 tests. *)

val all : unit -> spec list
(** libc-like, jvm-like, apache-like (both PIC modes), frag-like. *)
