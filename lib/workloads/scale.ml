(* Scale-out corpus: a deterministic stream of varied binaries for the
   1k+ placement benches.  Each index derives its own splitmix stream
   (Rng.derive), so generation order, worker count and corpus size never
   change binary i's bytes — generating 100 or 10_000 yields the same
   first 100 files. *)

module Rng = Zipr_util.Rng

type item = { name : string; binary : Zelf.Binary.t }

(* The class mix leans fragmentation-heavy on purpose: shattered text
   spans are where placement strategies actually differ.  Smooth
   binaries place everything colocated or near-referent no matter the
   strategy, and a bench dominated by them measures nothing. *)
let class_of_draw d =
  if d < 40 then `Frag
  else if d < 60 then `Cgc
  else if d < 75 then `Libc_small
  else if d < 90 then `Apache_small
  else `Pathological

let class_name = function
  | `Frag -> "frag"
  | `Cgc -> "cgc"
  | `Libc_small -> "libc"
  | `Apache_small -> "apache"
  | `Pathological -> "path"

let frag_profile rng =
  {
    Cgc.Cb_gen.n_handlers = Rng.int_in rng 6 12;
    n_helpers = Rng.int_in rng 8 24;
    body_ops = Rng.int_in rng 180 480;
    loop_iters = 40;
    use_jump_table = true;
    n_fptrs = Rng.int_in rng 8 20;
    data_islands = Rng.int_in rng 8 20;
    hidden_funcs = Rng.int_in rng 2 6;
    dense_pair = Rng.bool rng;
    vuln = false;
    vuln_fptr = false;
    pathological = false;
    mem_span = 1024;
    pic = Rng.chance rng 0.25;
  }

let libc_small_profile rng =
  {
    Cgc.Cb_gen.n_handlers = Rng.int_in rng 5 9;
    n_helpers = Rng.int_in rng 20 48;
    body_ops = Rng.int_in rng 90 200;
    loop_iters = 60;
    use_jump_table = true;
    n_fptrs = Rng.int_in rng 6 14;
    data_islands = Rng.int_in rng 3 8;
    hidden_funcs = Rng.int_in rng 1 4;
    dense_pair = Rng.bool rng;
    vuln = false;
    vuln_fptr = false;
    pathological = false;
    mem_span = 1024;
    pic = false;
  }

let apache_small_profile rng =
  {
    Cgc.Cb_gen.n_handlers = Rng.int_in rng 5 9;
    n_helpers = Rng.int_in rng 12 32;
    body_ops = Rng.int_in rng 80 180;
    loop_iters = 60;
    use_jump_table = Rng.bool rng;
    n_fptrs = Rng.int_in rng 4 10;
    data_islands = Rng.int_in rng 1 4;
    hidden_funcs = Rng.int_in rng 0 2;
    dense_pair = false;
    vuln = false;
    vuln_fptr = false;
    pathological = false;
    mem_span = 2048;
    pic = Rng.bool rng;
  }

let pathological_profile rng =
  {
    Cgc.Cb_gen.n_handlers = Rng.int_in rng 6 12;
    n_helpers = Rng.int_in rng 6 16;
    body_ops = Rng.int_in rng 120 320;
    loop_iters = 30;
    use_jump_table = true;
    n_fptrs = Rng.int_in rng 4 12;
    data_islands = Rng.int_in rng 4 10;
    hidden_funcs = Rng.int_in rng 1 3;
    dense_pair = true;
    vuln = false;
    vuln_fptr = false;
    pathological = true;
    mem_span = 512;
    pic = false;
  }

(* The "large" class: libc-like-and-larger bodies (>= 256 KiB of text)
   for the intra-binary parallelism benches.  Deliberately a separate
   entry point rather than a new [class_of_draw] arm: the existing
   corpus stream's bytes are pinned (the placement benches and their
   recorded baselines depend on them), so growing the mix in place
   would silently invalidate every historical number. *)
(* Everything in a large member's text must be recursively reachable
   (the jump table publishes every handler address, the rodata fptr
   table every fptr target) and nothing in the text may be data: that
   is the stitch-validation regime where the chunked parallel IR path
   engages rather than falling back, which is the whole point of this
   class.  No helpers — a helper that no handler happens to call is
   dead code, which reads as Ambiguous and forces the serial fallback.
   Members with islands, hidden code and dead routines are what the
   base corpus is for. *)
let large_profile rng =
  {
    Cgc.Cb_gen.n_handlers = Rng.int_in rng 40 56;
    n_helpers = 0;
    body_ops = Rng.int_in rng 1800 2400;
    loop_iters = 20;
    use_jump_table = true;
    n_fptrs = Rng.int_in rng 8 16;
    data_islands = 0;
    hidden_funcs = 0;
    dense_pair = false;
    vuln = false;
    vuln_fptr = false;
    pathological = false;
    mem_span = 2048;
    pic = false;
  }

let generate_large ~seed index =
  let item_seed = Rng.derive ~corpus_seed:seed ~index in
  let rng = Rng.create item_seed in
  let binary, _meta = Cgc.Cb_gen.generate ~seed:item_seed (large_profile rng) in
  { name = Printf.sprintf "lg%03d-large.zbf" index; binary }

let large_corpus ?(seed = 1) ~count () = List.init count (generate_large ~seed)

let generate_one ~seed index =
  let item_seed = Rng.derive ~corpus_seed:seed ~index in
  let rng = Rng.create item_seed in
  let cls = class_of_draw (Rng.int rng 100) in
  let profile =
    match cls with
    | `Frag -> frag_profile rng
    | `Cgc -> Cgc.Corpus.profile_for (Rng.int rng 64) ~master_seed:item_seed
    | `Libc_small -> libc_small_profile rng
    | `Apache_small -> apache_small_profile rng
    | `Pathological -> pathological_profile rng
  in
  let binary, _meta = Cgc.Cb_gen.generate ~seed:item_seed profile in
  { name = Printf.sprintf "sc%04d-%s.zbf" index (class_name cls); binary }

let corpus ?(seed = 1) ~count () = List.init count (generate_one ~seed)
