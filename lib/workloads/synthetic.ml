type spec = {
  name : string;
  binary : Zelf.Binary.t;
  meta : Cgc.Cb_gen.meta;
  test_suite : Cgc.Poller.script list;
}

let build ~name ~seed ~tests profile =
  let binary, meta = Cgc.Cb_gen.generate ~seed profile in
  let test_suite = Cgc.Poller.generate meta ~seed:(seed * 31) ~count:tests in
  { name; binary; meta; test_suite }

let libc_like ?(seed = 101) ?(tests = 120) () =
  build ~name:"libc-like" ~seed ~tests
    {
      Cgc.Cb_gen.n_handlers = 9;
      n_helpers = 60;
      body_ops = 160;
      loop_iters = 120;
      use_jump_table = true;
      n_fptrs = 12;
      (* The "handwritten assembly" share: frequent islands and hidden
         computed-jump regions. *)
      data_islands = 6;
      hidden_funcs = 3;
      dense_pair = true;
      vuln = true;
      vuln_fptr = false;
      pathological = false;
      mem_span = 2048;
      pic = false;
    }

let jvm_like ?(seed = 202) ?(tests = 60) () =
  build ~name:"jvm-like" ~seed ~tests
    {
      Cgc.Cb_gen.n_handlers = 10;
      n_helpers = 220;
      body_ops = 700;
      loop_iters = 200;
      use_jump_table = true;
      (* Interpreter-style dispatch: a wide pointer table. *)
      n_fptrs = 64;
      data_islands = 4;
      hidden_funcs = 2;
      dense_pair = false;
      vuln = true;
      vuln_fptr = false;
      pathological = false;
      mem_span = 8192;
      pic = false;
    }

let apache_like ?(pic = false) ?(seed = 303) ?(tests = 80) () =
  build
    ~name:(if pic then "apache-like-pic" else "apache-like")
    ~seed ~tests
    {
      Cgc.Cb_gen.n_handlers = 8;
      n_helpers = 40;
      body_ops = 120;
      loop_iters = 150;
      use_jump_table = true;
      n_fptrs = 8;
      data_islands = 2;
      hidden_funcs = 1;
      dense_pair = false;
      vuln = true;
      vuln_fptr = false;
      pathological = false;
      mem_span = 4096;
      pic;
    }

let frag_like ?(seed = 404) ?(tests = 40) () =
  build ~name:"frag-like" ~seed ~tests
    {
      Cgc.Cb_gen.n_handlers = 10;
      n_helpers = 16;
      body_ops = 420;
      loop_iters = 100;
      use_jump_table = true;
      n_fptrs = 16;
      (* Maximal fragmentation: many data islands and hidden regions carve
         the text span into small fragments, and long handler bodies make
         dollops larger than most fragments — the colocation drain then
         splits dollops to fill fragments and revisits the split
         remainders, exercising the drain-cache. *)
      data_islands = 16;
      hidden_funcs = 5;
      dense_pair = true;
      vuln = true;
      vuln_fptr = false;
      pathological = false;
      mem_span = 2048;
      pic = false;
    }

let all () =
  [ libc_like (); jvm_like (); apache_like (); apache_like ~pic:true (); frag_like () ]
