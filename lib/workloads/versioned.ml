(* A corpus of successive versions of "the same" binary, built so that
   version-to-version byte churn is *local*: the delta rewriter should
   hit on every routine a version did not touch.

   Three layout rules buy that locality (see DESIGN.md §12):

   - No direct cross-routine control flow.  Calls go through an
     absolute-addressed pointer table in rodata ([Movi_lab slot; Load;
     Callr]), so a routine's encoded bytes never embed another
     routine's address and are invariant under text-layout shifts.
   - The pointer table and the per-routine data pools have a fixed
     shape: one slot per potential routine, one pool per potential
     routine, whether or not it is live in a given version.  Absolute
     data references therefore never move between versions.
   - Each routine ends in [Ret] and is generated from an RNG keyed by
     [(seed, routine id, variant)] alone.  An unedited routine emits
     identical bytes in every version; an edit bumps only that
     routine's variant.

   The table words double as the reachability story: every live routine's
   slot holds its text address, so the recursive disassembler (which
   seeds from address-looking words in data sections) covers every
   routine even though all calls are indirect. *)

module Rng = Zipr_util.Rng
module Insn = Zvm.Insn
module Reg = Zvm.Reg
module B = Zasm.Builder

type edit =
  | Insn_edit of int
  | Data_move of int
  | Insert of int
  | Delete of int

type version = { name : string; binary : Zelf.Binary.t; edits : edit list }

let pp_edit ppf = function
  | Insn_edit r -> Format.fprintf ppf "edit r%d" r
  | Data_move r -> Format.fprintf ppf "move-data r%d" r
  | Insert r -> Format.fprintf ppf "insert r%d" r
  | Delete r -> Format.fprintf ppf "delete r%d" r

(* Per-version shape of the program.  [variant] and [data_slot] are
   per-routine edit counters: bumping one regenerates that routine's
   body (and only it). *)
type state = {
  live : bool array;
  variant : int array;
  data_slot : int array;
}

let pool_words = 16

let routine_rng ~seed ~id st =
  Rng.create
    (Rng.derive
       ~corpus_seed:(Rng.derive ~corpus_seed:seed ~index:(id + 1))
       ~index:st.variant.(id))

(* Constants kept below the text base (0x10000) so no immediate or pool
   word aliases a code address and perturbs the disassembler's seeding. *)
let small_const rng = Rng.int_in rng 1 0xffff

let slot_label id = Printf.sprintf "slot%d" id
let routine_label id = Printf.sprintf "r%d" id
let pool_label id = Printf.sprintf "dpool%d" id

(* An indirect call through routine [callee]'s table slot: three
   instructions whose bytes depend only on the (fixed) slot address. *)
let emit_table_call b callee =
  B.movi_lab b Reg.R6 (slot_label callee);
  B.insn b (Insn.Load { dst = Reg.R7; base = Reg.R6; disp = 0 });
  B.insn b (Insn.Callr Reg.R7)

let alu_ops = [| Insn.Add; Sub; Mul; And; Or; Xor; Shl; Shr |]
let alui_ops = [| Insn.Addi; Subi; Andi; Ori; Xori; Muli |]
let gp = [| Reg.R0; Reg.R1; Reg.R2; Reg.R3 |]

let emit_random_insn b rng =
  match Rng.int rng 6 with
  | 0 ->
      B.insn b
        (Insn.Alu (alu_ops.(Rng.int rng (Array.length alu_ops)), gp.(Rng.int rng 4), gp.(Rng.int rng 4)))
  | 1 ->
      B.insn b
        (Insn.Alui (alui_ops.(Rng.int rng (Array.length alui_ops)), gp.(Rng.int rng 4), small_const rng))
  | 2 -> B.insn b (Insn.Movi (gp.(Rng.int rng 4), small_const rng))
  | 3 -> B.insn b (Insn.Mov (gp.(Rng.int rng 4), gp.(Rng.int rng 4)))
  | 4 -> B.insn b (Insn.Not gp.(Rng.int rng 4))
  | _ -> B.insn b (Insn.Neg gp.(Rng.int rng 4))

let conds = [| Zvm.Cond.Eq; Ne; Lt; Ge; Gt; Le |]

(* One routine body.  Deterministic in (seed, id, variant, data_slot);
   sized to clear the chunker's minimum chunk so each routine gets its
   own cache entry. *)
let emit_routine b ~seed ~id ~body_ops ~n_core st =
  let rng = routine_rng ~seed ~id st in
  B.label b (routine_label id);
  B.insn b (Insn.Push Reg.R1);
  B.insn b (Insn.Push Reg.R2);
  (* Read this routine's word from its (fixed-address) data pool; a
     data-move edit changes only the slot displacement. *)
  B.movi_lab b Reg.R6 (pool_label id);
  B.insn b (Insn.Load { dst = Reg.R2; base = Reg.R6; disp = 4 * st.data_slot.(id) });
  let ops = body_ops + Rng.int rng (1 + (body_ops / 2)) in
  let skip = B.fresh b "skip" in
  for i = 1 to ops do
    emit_random_insn b rng;
    (* A forward conditional hop roughly every 12 ops keeps the CFG
       non-trivial without leaving the routine. *)
    if i mod 12 = 0 then begin
      B.insn b (Insn.Cmpi (Reg.R2, small_const rng));
      B.jcc b conds.(Rng.int rng (Array.length conds)) skip
    end
  done;
  B.label b skip;
  (* A short counted loop: a backward branch inside the routine. *)
  let top = B.fresh b "loop" in
  B.insn b (Insn.Movi (Reg.R1, 1 + Rng.int rng 7));
  B.label b top;
  B.insn b (Insn.Alui (Insn.Subi, Reg.R1, 1));
  B.insn b (Insn.Cmpi (Reg.R1, 0));
  B.jcc b Zvm.Cond.Ne top;
  (* Maybe call a core routine (core routines are live in every
     version, so the callee choice never dangles). *)
  if Rng.bool rng && id >= n_core then emit_table_call b (Rng.int rng n_core);
  B.insn b (Insn.Pop Reg.R2);
  B.insn b (Insn.Pop Reg.R1);
  B.insn b Insn.Ret

let emit_program ~seed ~n_core ~n_max ~body_ops st =
  let b = B.create ~entry:"main" () in
  (* Entry: call a handful of core routines through the table, halt. *)
  B.label b "main";
  B.insn b (Insn.Movi (Reg.R0, 0));
  for i = 0 to min 3 (n_core - 1) do
    emit_table_call b i
  done;
  B.insn b Insn.Halt;
  for id = 0 to n_max - 1 do
    if st.live.(id) then emit_routine b ~seed ~id ~body_ops ~n_core st
  done;
  (* The pointer table: fixed shape, one word per potential routine.
     Dead slots point at routine 0 so the table's size — and with it
     every slot's absolute address — is version-invariant. *)
  B.rodata_label b "rtab";
  for id = 0 to n_max - 1 do
    B.rodata_label b (slot_label id);
    B.rodata_word b
      (Zasm.Ast.Lab (routine_label (if st.live.(id) then id else 0)))
  done;
  (* Per-routine data pools, also fixed shape.  Word values depend only
     on (seed, id), never on the version. *)
  for id = 0 to n_max - 1 do
    let rng = Rng.create (Rng.derive ~corpus_seed:(seed lxor 0x5eed) ~index:id) in
    B.data_label b (pool_label id);
    for _ = 1 to pool_words do
      B.data_word b (Zasm.Ast.Abs (small_const rng))
    done
  done;
  let binary, _symbols = B.assemble_exn b in
  binary

(* -- version evolution -- *)

let apply_edit st edit =
  match edit with
  | Insn_edit id -> st.variant.(id) <- st.variant.(id) + 1
  | Data_move id -> st.data_slot.(id) <- (st.data_slot.(id) + 1) mod pool_words
  | Insert id ->
      st.live.(id) <- true;
      st.variant.(id) <- st.variant.(id) + 1
  | Delete id -> st.live.(id) <- false

let pick_live rng st ~lo ~hi =
  let live = ref [] in
  for id = hi - 1 downto lo do
    if st.live.(id) then live := id :: !live
  done;
  match !live with [] -> None | l -> Some (List.nth l (Rng.int rng (List.length l)))

let pick_dead rng st ~lo ~hi =
  let dead = ref [] in
  for id = hi - 1 downto lo do
    if not st.live.(id) then dead := id :: !dead
  done;
  match !dead with [] -> None | l -> Some (List.nth l (Rng.int rng (List.length l)))

let choose_edit rng st ~n_core ~n_max =
  let any_live () =
    match pick_live rng st ~lo:0 ~hi:n_max with
    | Some id -> Insn_edit id
    | None -> Insn_edit 0
  in
  match Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> any_live ()
  | 4 | 5 -> (
      match pick_live rng st ~lo:0 ~hi:n_max with
      | Some id -> Data_move id
      | None -> any_live ())
  | 6 | 7 -> (
      (* Insert an unused extra routine. *)
      match pick_dead rng st ~lo:n_core ~hi:n_max with
      | Some id -> Insert id
      | None -> any_live ())
  | _ -> (
      (* Delete an extra (never a core routine: cores anchor the call
         graph and the entry sequence). *)
      match pick_live rng st ~lo:n_core ~hi:n_max with
      | Some id -> Delete id
      | None -> any_live ())

let generate ?(n_routines = 24) ?(n_extras = 8) ?(body_ops = 36)
    ?(edits_per_version = 2) ~seed ~versions () =
  if versions < 1 then invalid_arg "Versioned.generate: versions < 1";
  let n_core = max 1 n_routines and n_extra = max 1 n_extras in
  let n_max = n_core + n_extra in
  let st =
    {
      live = Array.init n_max (fun id -> id < n_core + (n_extra / 2));
      variant = Array.make n_max 0;
      data_slot = Array.make n_max 0;
    }
  in
  let out = ref [] in
  for v = 0 to versions - 1 do
    let edits =
      if v = 0 then []
      else begin
        let rng = Rng.create (Rng.derive ~corpus_seed:(seed lxor 0xed17) ~index:v) in
        List.init edits_per_version (fun _ ->
            let e = choose_edit rng st ~n_core ~n_max in
            apply_edit st e;
            e)
      end
    in
    let binary = emit_program ~seed ~n_core ~n_max ~body_ops st in
    out := { name = Printf.sprintf "v%d" v; binary; edits } :: !out
  done;
  List.rev !out
