type spec = Synthetic.spec = {
  name : string;
  binary : Zelf.Binary.t;
  meta : Cgc.Cb_gen.meta;
  test_suite : Cgc.Poller.script list;
}

let build ~name ~seed ~tests profile =
  let binary, meta = Cgc.Cb_gen.generate ~seed profile in
  let test_suite = Cgc.Poller.generate meta ~seed:(seed * 31) ~count:tests in
  { name; binary; meta; test_suite }

(* Overlapping decode traps: the pathological pin scatter interleaves
   many 1-byte pinned sites between large dollops, and the dense pair
   adds adjacent pins whose superset decodes overlap at different
   lengths.  The refiner must report (never clamp) the mismatched
   ranges, and the differential gate checks the rewrite stays
   trace-equivalent. *)
let overlap_trap_profile =
  {
    Cgc.Cb_gen.n_handlers = 8;
    n_helpers = 24;
    body_ops = 140;
    loop_iters = 80;
    use_jump_table = true;
    n_fptrs = 8;
    data_islands = 8;
    hidden_funcs = 2;
    dense_pair = true;
    vuln = true;
    vuln_fptr = false;
    pathological = true;
    mem_span = 2048;
    pic = false;
  }

let overlap_trap ?(seed = 1201) ?(tests = 60) () =
  build ~name:"adv-overlap-trap" ~seed ~tests overlap_trap_profile

(* Flattened dispatch: every handler is reached through the jump table
   and a wide function-pointer surface, never by direct branch — the
   control-flow-flattening shape.  The table targets are primary-agreed
   code, so inference must keep them Code while still retiring the
   surrounding ambiguity. *)
let flattened_dispatch_profile =
  {
    Cgc.Cb_gen.n_handlers = 10;
    n_helpers = 48;
    body_ops = 260;
    loop_iters = 120;
    use_jump_table = true;
    n_fptrs = 96;
    data_islands = 2;
    hidden_funcs = 1;
    dense_pair = false;
    vuln = true;
    vuln_fptr = false;
    pathological = false;
    mem_span = 4096;
    pic = false;
  }

let flattened_dispatch ?(seed = 1302) ?(tests = 60) () =
  build ~name:"adv-flattened-dispatch" ~seed ~tests flattened_dispatch_profile

(* Resolvable masked dispatch: many hidden (computed-jump-only)
   functions whose entry addresses are materialized by a Loada/Xori
   chain.  The value analysis must resolve every chain, flip the hidden
   bodies to Code, and pin their entries — the class where the refiner
   earns its reduction. *)
let masked_dispatch_profile =
  {
    Cgc.Cb_gen.n_handlers = 9;
    n_helpers = 40;
    body_ops = 180;
    loop_iters = 100;
    use_jump_table = true;
    n_fptrs = 12;
    data_islands = 3;
    hidden_funcs = 6;
    dense_pair = true;
    vuln = true;
    vuln_fptr = false;
    pathological = false;
    mem_span = 2048;
    pic = false;
  }

let masked_dispatch ?(seed = 1403) ?(tests = 60) () =
  build ~name:"adv-masked-dispatch" ~seed ~tests masked_dispatch_profile

(* Opaque dispatch: the indirect call loads its target from a writable
   pointer table ([vuln_fptr]), so no sound static analysis can resolve
   it.  The refiner must fail the closed-world proof and keep every
   conservative pin — resolving anything here would be unsound, and the
   differential gate would catch the diverging trace. *)
let opaque_dispatch_profile =
  {
    Cgc.Cb_gen.n_handlers = 8;
    n_helpers = 32;
    body_ops = 160;
    loop_iters = 100;
    use_jump_table = true;
    n_fptrs = 16;
    data_islands = 4;
    hidden_funcs = 2;
    dense_pair = false;
    vuln = true;
    vuln_fptr = true;
    pathological = false;
    mem_span = 2048;
    pic = false;
  }

let opaque_dispatch ?(seed = 1504) ?(tests = 60) () =
  build ~name:"adv-opaque-dispatch" ~seed ~tests opaque_dispatch_profile

(* Dense decodable islands: the text span is saturated with data blobs
   that decode as plausible instruction streams.  Reachability facts
   must exclude them without ever flipping a byte an execution could
   reach. *)
let dense_islands_profile =
  {
    Cgc.Cb_gen.n_handlers = 8;
    n_helpers = 20;
    body_ops = 120;
    loop_iters = 80;
    use_jump_table = true;
    n_fptrs = 8;
    data_islands = 20;
    hidden_funcs = 3;
    dense_pair = true;
    vuln = true;
    vuln_fptr = false;
    pathological = false;
    mem_span = 2048;
    pic = false;
  }

let dense_islands ?(seed = 1605) ?(tests = 60) () =
  build ~name:"adv-dense-islands" ~seed ~tests dense_islands_profile

let all () =
  [
    overlap_trap ();
    flattened_dispatch ();
    masked_dispatch ();
    opaque_dispatch ();
    dense_islands ();
  ]

(* The classes as raw profiles, for harnesses (the differential fuzzer's
   spec mix) that need to vary the generator seed themselves. *)
let profiles =
  [
    ("adv-overlap-trap", overlap_trap_profile);
    ("adv-flattened-dispatch", flattened_dispatch_profile);
    ("adv-masked-dispatch", masked_dispatch_profile);
    ("adv-opaque-dispatch", opaque_dispatch_profile);
    ("adv-dense-islands", dense_islands_profile);
  ]
