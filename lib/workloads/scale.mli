(** Scale-out corpus generation for the 1k+ binary placement benches.

    Each index derives its own independent stream with
    {!Zipr_util.Rng.derive}, so binary [i]'s bytes depend only on
    [(seed, i)] — never on the corpus size, generation order or worker
    count.  The class mix is deliberately fragmentation-heavy (~40%
    shattered-text services, plus CGC-style challenge profiles, scaled
    down libc/apache stand-ins and pathological pin-scatter cases):
    smooth binaries place identically under every strategy, so a bench
    over them would measure nothing. *)

type item = { name : string; binary : Zelf.Binary.t }
(** [name] is unique per index and records the class, e.g.
    ["sc0042-frag.zbf"]. *)

val generate_one : seed:int -> int -> item
(** The corpus member at one index, without materializing the rest. *)

val corpus : ?seed:int -> count:int -> unit -> item list
(** The first [count] members, in index order.  Default seed 1. *)

val generate_large : seed:int -> int -> item
(** One member of the separate "large" class: libc-like-and-larger
    bodies with [>= 256 KiB] of text, for the intra-binary parallelism
    benches.  A distinct stream (names ["lg%03d-large.zbf"]) rather than
    a new {!corpus} class, so the pinned bytes of the existing corpus
    never shift. *)

val large_corpus : ?seed:int -> count:int -> unit -> item list
(** The first [count] large-class members, in index order.  Default
    seed 1. *)
