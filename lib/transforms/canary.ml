module Db = Irdb.Db
module Rng = Zipr_util.Rng
open Zvm

let violation_status = 141

(* Padding is only sound when control cannot leave the function except by
   its own returns (or by terminating): an intraprocedural edge into
   another function would run that function's returns against our
   adjusted frame. *)
let escapes_function db fid =
  let leaves link =
    match link with
    | None -> false
    | Some t -> (
        match Db.row db t with
        | exception Not_found -> true
        | tr -> tr.Db.func <> Some fid)
  in
  List.exists
    (fun id ->
      match Db.row db id with
      | exception Not_found -> false
      | r -> (
          match r.Db.insn with
          | Insn.Call _ | Insn.Callr _ -> leaves r.Db.fallthrough
          | _ -> leaves r.Db.fallthrough || leaves r.Db.target))
    (Db.func_insns db fid)


let apply ~seed db =
  let rng = Rng.create seed in
  let violation =
    Db.append_chain db [ Insn.Movi (Reg.R0, violation_status); Insn.Sys 0 ]
  in
  List.iter
    (fun (f : Db.func) ->
      match Db.row db f.Db.entry with
      | exception Not_found -> ()
      | entry_row ->
          let rets =
            List.filter
              (fun id ->
                match Db.row db id with
                | exception Not_found -> false
                | r -> (not r.Db.fixed) && r.Db.insn = Insn.Ret)
              (Db.func_insns db f.Db.fid)
          in
          let entry_is_loop_head =
            List.exists
              (fun id ->
                match Db.row db id with
                | exception Not_found -> false
                | r -> r.Db.target = Some f.Db.entry)
              (Db.func_insns db f.Db.fid)
          in
          let entry_is_fallthrough_target =
            let found = ref false in
            Db.iter db (fun r -> if r.Db.fallthrough = Some f.Db.entry then found := true);
            !found
          in
          (* A pinned row past the entry is a potential second entry: an
             indirect arrival there would skip the canary push but still
             run the check before ret.  Return sites (a call's
             fallthrough) are exempt — control only reaches them after
             the prologue has already pushed the cookie. *)
          let return_sites =
            let sites = Hashtbl.create 8 in
            Db.iter db (fun r ->
                match r.Db.insn with
                | Insn.Call _ | Insn.Callr _ -> (
                    match r.Db.fallthrough with
                    | Some t -> Hashtbl.replace sites t ()
                    | None -> ())
                | _ -> ());
            sites
          in
          let has_secondary_entry =
            List.exists
              (fun id ->
                id <> f.Db.entry
                && (not (Hashtbl.mem return_sites id))
                &&
                match Db.row db id with
                | exception Not_found -> false
                | r -> r.Db.pinned <> None)
              (Db.func_insns db f.Db.fid)
          in
          (* Only instrument functions that actually return: the canary
             must be popped on every exit path we can see. *)
          if
            (not entry_row.Db.fixed)
            && (not entry_is_loop_head)
            && (not entry_is_fallthrough_target)
            && (not has_secondary_entry)
            && (not (escapes_function db f.Db.fid))
            && rets <> []
          then begin
            let cookie = Int64.to_int (Int64.logand (Rng.bits64 rng) 0x7fffffffL) in
            (* Rets first, entry last: if the entry row is itself a ret
               (single-instruction function), insert_before steals its
               identity, and instrumenting the entry first would land the
               check sequence in front of the cookie push. *)
            List.iter
              (fun ret ->
                (* push r0; load r0,[sp+4]; cmpi; jne violation; pop r0;
                   addi sp,4 (drop canary); ret *)
                ignore (Db.insert_before db ret (Insn.Push Reg.R0));
                let cur = ref ret in
                let add insn = cur := Db.insert_after db !cur insn in
                add (Insn.Load { dst = Reg.R0; base = Reg.SP; disp = 4 });
                add (Insn.Cmpi (Reg.R0, cookie));
                add (Insn.Jcc (Cond.Ne, Insn.Near, 0));
                Db.set_target db !cur (Some violation);
                add (Insn.Pop Reg.R0);
                add (Insn.Alui (Insn.Addi, Reg.SP, 4)))
              rets;
            ignore (Db.insert_before db f.Db.entry (Insn.Pushi cookie))
          end)
    (Db.funcs db)

let make ~seed () =
  Zipr.Transform.make ~name:"canary"
    ~describe:"per-rewrite randomized stack canaries checked at every return"
    (apply ~seed)

let transform = make ~seed:11 ()
