(** The registry of shipped transforms.

    Every front end that accepts transform names — [ziprtool rewrite]
    and [batch], the [ziprtool serve] daemon resolving names arriving
    over the wire, the bench load generator — resolves them here, so the
    set of served transforms cannot drift between entry points. *)

val all : Zipr.Transform.t list

val by_name : string -> Zipr.Transform.t option

val names : string list
(** In registry order, for help/error messages. *)
