(* The shipped-transform registry: the one list every front end (CLI,
   serve daemon, bench, tests) resolves transform names against.  Order
   is presentation order in --help output; names are the transforms' own
   [Transform.name] fields. *)

let all =
  [
    Null.transform;
    Cfi.transform;
    Stack_pad.transform;
    Canary.transform;
    Stirring.transform;
    Jumptable_rewrite.transform;
    Shadow_stack.transform;
    Nop_pad.transform;
  ]

let by_name name = List.find_opt (fun t -> t.Zipr.Transform.name = name) all

let names = List.map (fun t -> t.Zipr.Transform.name) all
