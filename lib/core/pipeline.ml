type config = {
  placement : Placement.t;
  pin_config : Analysis.Ibt.config;
  seed : int;
  ir_jobs : int;
  infer : bool;
      (* run the inference refiner as a third disassembly source;
         off by default so every existing path is byte-identical *)
}

let default_config =
  {
    placement = Placement.optimized;
    pin_config = Analysis.Ibt.default_config;
    seed = 1;
    ir_jobs = 1;
    infer = false;
  }

(* 0 means "ask the runtime" — shared by --jobs and --ir-jobs so every
   knob resolves the same way and the resolved value can be surfaced. *)
let resolve_jobs j = if j = 0 then Domain.recommended_domain_count () else max 1 j

type timing = {
  ir_construction_s : float;
  transformation_s : float;
  reassembly_s : float;
}

type cache_stats = {
  ir_cache_hits : int;
  ir_cache_misses : int;
  routine_hits : int;
  routine_misses : int;
  delta_builds : int;
  par_builds : int;
  par_fallbacks : int;
}

type result = {
  rewritten : Zelf.Binary.t;
  ir : Ir_construction.t;
  stats : Reassemble.stats;
  timing : timing;
  cache : cache_stats;
}

let zero_timing = { ir_construction_s = 0.0; transformation_s = 0.0; reassembly_s = 0.0 }

let add_timing a b =
  {
    ir_construction_s = a.ir_construction_s +. b.ir_construction_s;
    transformation_s = a.transformation_s +. b.transformation_s;
    reassembly_s = a.reassembly_s +. b.reassembly_s;
  }

let zero_cache_stats =
  {
    ir_cache_hits = 0;
    ir_cache_misses = 0;
    routine_hits = 0;
    routine_misses = 0;
    delta_builds = 0;
    par_builds = 0;
    par_fallbacks = 0;
  }

let add_cache_stats a b =
  {
    ir_cache_hits = a.ir_cache_hits + b.ir_cache_hits;
    ir_cache_misses = a.ir_cache_misses + b.ir_cache_misses;
    routine_hits = a.routine_hits + b.routine_hits;
    routine_misses = a.routine_misses + b.routine_misses;
    delta_builds = a.delta_builds + b.delta_builds;
    par_builds = a.par_builds + b.par_builds;
    par_fallbacks = a.par_fallbacks + b.par_fallbacks;
  }

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let ir_cache_key ~pin_config ~infer binary =
  Irdb.Cache.key
    [
      Ir_construction.snapshot_version;
      Ir_construction.fingerprint ~infer pin_config;
      Bytes.to_string (Zelf.Binary.serialize binary);
    ]

(* IR acquisition: a cache hit restores the snapshot (skipping
   disassembly, pin analysis and IR build); a miss — or a payload the
   codec rejects — builds cold and (re)publishes the snapshot.  Either
   way [ir_construction_s] times whichever path actually ran.

   With [ir_jobs > 1], a cold build first tries the domain-parallel
   chunked construction ({!Par_ir}); when its stitch validation
   declines, the serial cold build runs instead and the fallback is
   counted — outputs are byte-identical on both paths, so the snapshot
   cache key does not depend on [ir_jobs]. *)
let obtain_snapshot_ir ?ir_cache ?(ir_jobs = 1) ?(infer = false) ~pin_config binary =
  let par_builds = ref 0 and par_fallbacks = ref 0 in
  let build_ir () =
    if ir_jobs > 1 then
      match Par_ir.build ~jobs:ir_jobs ~pin_config ~infer binary with
      | Some ir ->
          incr par_builds;
          Obs.count "pipeline.par_builds" 1;
          ir
      | None ->
          incr par_fallbacks;
          Obs.count "pipeline.par_fallbacks" 1;
          Ir_construction.build ~pin_config ~infer binary
    else Ir_construction.build ~pin_config ~infer binary
  in
  let build ~source () =
    timed (fun () -> Obs.span "ir" ~args:[ ("source", source) ] build_ir)
  in
  let par_stats s =
    { s with par_builds = !par_builds; par_fallbacks = !par_fallbacks }
  in
  match ir_cache with
  | None ->
      let ir, t = build ~source:"build" () in
      (ir, t, par_stats zero_cache_stats)
  | Some cache -> (
      let key = ir_cache_key ~pin_config ~infer binary in
      let build_and_store () =
        let ir, t = build ~source:"build" () in
        Irdb.Cache.store cache ~key (Ir_construction.snapshot ir);
        Obs.count "pipeline.ir_cache_misses" 1;
        (ir, t, par_stats { zero_cache_stats with ir_cache_misses = 1 })
      in
      match Irdb.Cache.find cache key with
      | None -> build_and_store ()
      | Some payload -> (
          match
            timed (fun () ->
                Obs.span "ir" ~args:[ ("source", "cache") ] (fun () ->
                    Ir_construction.restore binary payload))
          with
          | Ok ir, t ->
              Obs.count "pipeline.ir_cache_hits" 1;
              (ir, t, { zero_cache_stats with ir_cache_hits = 1 })
          | Error _, _ -> build_and_store ()))

(* Full IR acquisition.  With a routine cache, the delta path goes first
   (memo hit, or a routine-granular stitch when enough fragments hit and
   the composition validates); when it declines, the snapshot cache and
   cold build take over as before, and the result is harvested back into
   the routine cache — before any transform can touch it. *)
let obtain_ir ?ir_cache ?routine_cache ?ir_jobs ?(infer = false) ~pin_config binary =
  match routine_cache with
  | None -> obtain_snapshot_ir ?ir_cache ?ir_jobs ~infer ~pin_config binary
  | Some dc -> (
      let outcome, t0 =
        timed (fun () ->
            Obs.span "ir" ~args:[ ("source", "delta") ] (fun () ->
                Delta.obtain dc ~pin_config ~infer binary))
      in
      let dstats =
        {
          zero_cache_stats with
          routine_hits = outcome.Delta.routine_hits;
          routine_misses = outcome.Delta.routine_misses;
          delta_builds = (if outcome.Delta.delta_built then 1 else 0);
        }
      in
      match outcome.Delta.ir with
      | Some ir -> (ir, t0, dstats)
      | None ->
          let ir, t1, cstats =
            obtain_snapshot_ir ?ir_cache ?ir_jobs ~infer ~pin_config binary
          in
          Delta.harvest dc outcome ir;
          (ir, t0 +. t1, add_cache_stats dstats cstats))

(* Per-transform spans want a computed name ("transform:cfi"); build the
   string only when a sink is installed so the default path keeps
   [Transform.apply_all] allocation-for-allocation unchanged. *)
let apply_transforms transforms db =
  if Obs.enabled () then
    Obs.span "transforms" (fun () ->
        List.iter
          (fun (t : Transform.t) ->
            Obs.span ("transform:" ^ t.Transform.name) (fun () ->
                Transform.apply_all [ t ] db))
          transforms)
  else Transform.apply_all transforms db

let rewrite ?(config = default_config) ?ir_cache ?routine_cache ~transforms binary =
  Obs.span "rewrite" (fun () ->
      let ir, ir_construction_s, cache =
        obtain_ir ?ir_cache ?routine_cache
          ~ir_jobs:(resolve_jobs config.ir_jobs)
          ~infer:config.infer ~pin_config:config.pin_config binary
      in
      let (), transformation_s =
        timed (fun () -> apply_transforms transforms ir.Ir_construction.db)
      in
      let (rewritten, stats), reassembly_s =
        timed (fun () ->
            Obs.span "reassemble" (fun () ->
                Reassemble.run ~strategy:config.placement ~seed:config.seed ir))
      in
      {
        rewritten;
        ir;
        stats;
        timing = { ir_construction_s; transformation_s; reassembly_s };
        cache;
      })

let try_rewrite ?config ?ir_cache ?routine_cache ~transforms binary =
  match rewrite ?config ?ir_cache ?routine_cache ~transforms binary with
  | r -> Ok r
  | exception Reassemble.Failure_ msg -> Error ("reassembly failed: " ^ msg)
  | exception Stdlib.Failure msg -> Error ("pipeline failure: " ^ msg)
  | exception Invalid_argument msg -> Error ("pipeline invalid argument: " ^ msg)
  | exception Not_found -> Error "pipeline failure: lookup failed (Not_found)"

let rewrite_bytes ?config ?ir_cache ?routine_cache ~transforms raw =
  match Zelf.Binary.parse raw with
  | Error e -> Error (Format.asprintf "parse error: %a" Zelf.Binary.pp_parse_error e)
  | Ok binary ->
      Result.map
        (fun r -> Zelf.Binary.serialize r.rewritten)
        (try_rewrite ?config ?ir_cache ?routine_cache ~transforms binary)
