type config = {
  placement : Placement.t;
  pin_config : Analysis.Ibt.config;
  seed : int;
}

let default_config =
  { placement = Placement.optimized; pin_config = Analysis.Ibt.default_config; seed = 1 }

type timing = {
  ir_construction_s : float;
  transformation_s : float;
  reassembly_s : float;
}

type result = {
  rewritten : Zelf.Binary.t;
  ir : Ir_construction.t;
  stats : Reassemble.stats;
  timing : timing;
}

let zero_timing = { ir_construction_s = 0.0; transformation_s = 0.0; reassembly_s = 0.0 }

let add_timing a b =
  {
    ir_construction_s = a.ir_construction_s +. b.ir_construction_s;
    transformation_s = a.transformation_s +. b.transformation_s;
    reassembly_s = a.reassembly_s +. b.reassembly_s;
  }

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let rewrite ?(config = default_config) ~transforms binary =
  let ir, ir_construction_s =
    timed (fun () -> Ir_construction.build ~pin_config:config.pin_config binary)
  in
  let (), transformation_s =
    timed (fun () -> Transform.apply_all transforms ir.Ir_construction.db)
  in
  let (rewritten, stats), reassembly_s =
    timed (fun () -> Reassemble.run ~strategy:config.placement ~seed:config.seed ir)
  in
  { rewritten; ir; stats; timing = { ir_construction_s; transformation_s; reassembly_s } }

let try_rewrite ?config ~transforms binary =
  match rewrite ?config ~transforms binary with
  | r -> Ok r
  | exception Reassemble.Failure_ msg -> Error ("reassembly failed: " ^ msg)
  | exception Stdlib.Failure msg -> Error ("pipeline failure: " ^ msg)
  | exception Invalid_argument msg -> Error ("pipeline invalid argument: " ^ msg)
  | exception Not_found -> Error "pipeline failure: lookup failed (Not_found)"

let rewrite_bytes ?config ~transforms raw =
  match Zelf.Binary.parse raw with
  | Error e -> Error (Format.asprintf "parse error: %a" Zelf.Binary.pp_parse_error e)
  | Ok binary ->
      Result.map
        (fun r -> Zelf.Binary.serialize r.rewritten)
        (try_rewrite ?config ~transforms binary)
