(* Explicit placement cost model.

   Every term is an integer count the reassembler already produces (or
   can produce cheaply from Memspace state); [eval] folds them into one
   scalar under a weight vector.  The same weights drive two things:

   - the search strategy's per-decision scoring (Placement.search ranks
     candidate addresses by the cost delta they would add), and
   - the end-of-run [placement_cost] stat, computed from the *final*
     stats record — so the number a search run reports is by
     construction the objective it optimized, measured on the layout it
     actually produced, not an estimate accumulated along the way. *)

type weights = {
  w_sled_bytes : float;
  w_chain_hops : float;
  w_relaxations : float;
  w_overflow_bytes : float;
  w_page_misses : float;
}

(* Byte-equivalents: an overflow byte is one byte of file-size overhead
   (the unit); a relaxation adds 3 bytes in text; a chain hop is a
   5-byte trampoline plus an executed indirection, charged 16; a page
   miss is a 4-KiB page made resident that pins did not already force,
   charged well below its raw size (residency is cheaper than file
   growth for the paper's workloads) but enough to steer ties. *)
let default_weights =
  {
    w_sled_bytes = 1.0;
    w_chain_hops = 16.0;
    w_relaxations = 3.0;
    w_overflow_bytes = 1.0;
    w_page_misses = 64.0;
  }

type terms = {
  sled_bytes : int;
  chain_hops : int;
  relaxations : int;
  overflow_bytes : int;
  page_misses : int;
}

let zero_terms =
  { sled_bytes = 0; chain_hops = 0; relaxations = 0; overflow_bytes = 0; page_misses = 0 }

let add_terms a b =
  {
    sled_bytes = a.sled_bytes + b.sled_bytes;
    chain_hops = a.chain_hops + b.chain_hops;
    relaxations = a.relaxations + b.relaxations;
    overflow_bytes = a.overflow_bytes + b.overflow_bytes;
    page_misses = a.page_misses + b.page_misses;
  }

let eval w t =
  (w.w_sled_bytes *. float_of_int t.sled_bytes)
  +. (w.w_chain_hops *. float_of_int t.chain_hops)
  +. (w.w_relaxations *. float_of_int t.relaxations)
  +. (w.w_overflow_bytes *. float_of_int t.overflow_bytes)
  +. (w.w_page_misses *. float_of_int t.page_misses)

(* Per-run search accounting, threaded to the strategy through
   [Placement.ctx].  A fresh record per reassembly run keeps the
   strategy values themselves immutable — the same [Placement.t] is
   shared across Domain workers in a corpus run, so any mutable search
   state must live in run-local storage, and this is it. *)
type tally = { mutable iterations : int; mutable accepted : int; mutable rejected : int }

let make_tally () = { iterations = 0; accepted = 0; rejected = 0 }

(* -- weight-spec parsing for the CLI/serve knobs -- *)

let spec_keys = [ "sled"; "chain"; "relax"; "overflow"; "page" ]

let to_spec w =
  Printf.sprintf "sled=%g,chain=%g,relax=%g,overflow=%g,page=%g" w.w_sled_bytes w.w_chain_hops
    w.w_relaxations w.w_overflow_bytes w.w_page_misses

let weights_of_spec s =
  let s = String.trim s in
  if s = "" then Ok default_weights
  else
    let parts = String.split_on_char ',' s in
    let rec apply w = function
      | [] -> Ok w
      | part :: rest -> (
          match String.index_opt part '=' with
          | None -> Error (Printf.sprintf "weight %S is not key=value" part)
          | Some i -> (
              let key = String.trim (String.sub part 0 i) in
              let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
              match float_of_string_opt v with
              | None -> Error (Printf.sprintf "weight %S: %S is not a number" key v)
              | Some f when f < 0.0 ->
                  Error (Printf.sprintf "weight %S must be >= 0, got %g" key f)
              | Some f -> (
                  match key with
                  | "sled" -> apply { w with w_sled_bytes = f } rest
                  | "chain" -> apply { w with w_chain_hops = f } rest
                  | "relax" -> apply { w with w_relaxations = f } rest
                  | "overflow" -> apply { w with w_overflow_bytes = f } rest
                  | "page" -> apply { w with w_page_misses = f } rest
                  | _ ->
                      Error
                        (Printf.sprintf "unknown weight %S (expected one of %s)" key
                           (String.concat ", " spec_keys)))))
    in
    apply default_weights parts
