(** The end-to-end Zipr pipeline (paper Figure 1):
    IR Construction -> Transformation -> Reassembly. *)

type config = {
  placement : Placement.t;
  pin_config : Analysis.Ibt.config;
  seed : int;  (** drives layout diversity under the random strategy *)
}

val default_config : config
(** Optimized placement, conservative pinning, seed 1. *)

type timing = {
  ir_construction_s : float;
  transformation_s : float;
  reassembly_s : float;
}

val zero_timing : timing
(** The identity of {!add_timing}. *)

val add_timing : timing -> timing -> timing
(** Per-phase sum; commutative, so a corpus aggregate is independent of
    completion order. *)

type result = {
  rewritten : Zelf.Binary.t;
  ir : Ir_construction.t;
  stats : Reassemble.stats;
  timing : timing;
}

val rewrite :
  ?config:config -> transforms:Transform.t list -> Zelf.Binary.t -> result
(** Rewrite a binary.  Raises {!Reassemble.Failure_} on unrecoverable
    reassembly problems. *)

val try_rewrite :
  ?config:config ->
  transforms:Transform.t list ->
  Zelf.Binary.t ->
  (result, string) Stdlib.result
(** Total variant of {!rewrite}: {!Reassemble.Failure_} and the pipeline's
    internal exception families ([Failure], [Invalid_argument],
    [Not_found]) are rendered into the [Error] branch, so one bad binary
    in a batch reports instead of aborting the corpus. *)

val rewrite_bytes :
  ?config:config ->
  transforms:Transform.t list ->
  bytes ->
  (bytes, string) Stdlib.result
(** File-level convenience: parse, rewrite, serialize.  Total like
    {!try_rewrite}: parse errors and pipeline exceptions are rendered
    into [Error], never raised. *)
