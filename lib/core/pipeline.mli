(** The end-to-end Zipr pipeline (paper Figure 1):
    IR Construction -> Transformation -> Reassembly. *)

type config = {
  placement : Placement.t;
  pin_config : Analysis.Ibt.config;
  seed : int;  (** drives layout diversity under the random strategy *)
  ir_jobs : int;
      (** worker domains for intra-binary IR construction ({!Par_ir}):
          1 = the exact serial cold build, [>= 2] = domain-parallel
          chunked construction with stitch-validated merge (byte-identical
          output, serial fallback on validation failure), 0 = auto-detect
          [Domain.recommended_domain_count].  Independent of any
          corpus-level [--jobs]. *)
  infer : bool;
      (** run the {!Disasm.Infer} fact-propagation pass as a third
          (refiner) disassembly source.  Off by default; when off every
          output and cache key is byte-identical to previous releases.
          When on, ambiguous bytes the inference closure proves
          unreachable or resolves are refined, resolved computed-jump
          targets are pinned, and all IR cache keys incorporate the
          inference codec version so refined and unrefined IR never
          cross-pollinate. *)
}

val default_config : config
(** Optimized placement, conservative pinning, seed 1, serial IR, no
    inference refiner. *)

val resolve_jobs : int -> int
(** The shared 0-means-auto rule for every jobs knob: [0] resolves to
    [Domain.recommended_domain_count ()], anything else clamps to at
    least 1.  Exposed so CLIs and benches can surface the resolved
    value. *)

type timing = {
  ir_construction_s : float;
  transformation_s : float;
  reassembly_s : float;
}

val zero_timing : timing
(** The identity of {!add_timing}. *)

val add_timing : timing -> timing -> timing
(** Per-phase sum; commutative, so a corpus aggregate is independent of
    completion order. *)

type cache_stats = {
  ir_cache_hits : int;
  ir_cache_misses : int;
  routine_hits : int;  (** routine chunks served from the delta cache *)
  routine_misses : int;  (** routine chunks rebuilt (or all, on fallback) *)
  delta_builds : int;  (** rewrites whose IR came from a partial stitch *)
  par_builds : int;  (** cold builds served by the parallel chunked path *)
  par_fallbacks : int;
      (** parallel builds whose stitch validation declined (the serial
          cold build ran instead — slower, byte-identical) *)
}
(** Per-rewrite cache outcome.  [ir_cache_*] report the snapshot cache
    (at most one of the two is 1, both 0 when no cache was supplied);
    the [routine_*] and [delta_builds] fields report the routine-granular
    delta cache; [par_*] report the {!config.ir_jobs} parallel IR path.
    Aggregated over a corpus with {!add_cache_stats}. *)

val zero_cache_stats : cache_stats
val add_cache_stats : cache_stats -> cache_stats -> cache_stats

type result = {
  rewritten : Zelf.Binary.t;
  ir : Ir_construction.t;
  stats : Reassemble.stats;
  timing : timing;
  cache : cache_stats;
}

val ir_cache_key :
  pin_config:Analysis.Ibt.config -> infer:bool -> Zelf.Binary.t -> string
(** The content address of a binary's IR: digest of the snapshot codec
    version, the configuration fingerprint (pin configuration plus the
    inference-refiner switch) and the serialized input bytes.  Any
    change to any of the three yields a different key, so stale cache
    entries are unreachable by construction. *)

val rewrite :
  ?config:config ->
  ?ir_cache:Irdb.Cache.t ->
  ?routine_cache:Delta.t ->
  transforms:Transform.t list ->
  Zelf.Binary.t ->
  result
(** Rewrite a binary.  Raises {!Reassemble.Failure_} on unrecoverable
    reassembly problems.

    With [ir_cache], IR construction is served from the cache when the
    {!ir_cache_key} hits: disassembly, pinned-address analysis and IR
    build are skipped and the snapshot is restored instead (the restored
    IR is bit-identical to a cold build, so the rewritten output is too).
    On a miss — or a payload {!Ir_construction.restore} rejects — the IR
    is built cold and its snapshot (re)stored.  [timing.ir_construction_s]
    covers whichever path ran; [result.cache] says which it was.  The
    cache may be shared across domains.

    With [routine_cache], the routine-granular delta path ({!Delta}) is
    consulted first: a whole-binary memo hit or a validated stitch of
    cached routine fragments replaces IR construction entirely, and any
    cold build is harvested back into the cache.  Outputs are
    byte-identical to the uncached pipeline either way. *)

val try_rewrite :
  ?config:config ->
  ?ir_cache:Irdb.Cache.t ->
  ?routine_cache:Delta.t ->
  transforms:Transform.t list ->
  Zelf.Binary.t ->
  (result, string) Stdlib.result
(** Total variant of {!rewrite}: {!Reassemble.Failure_} and the pipeline's
    internal exception families ([Failure], [Invalid_argument],
    [Not_found]) are rendered into the [Error] branch, so one bad binary
    in a batch reports instead of aborting the corpus. *)

val rewrite_bytes :
  ?config:config ->
  ?ir_cache:Irdb.Cache.t ->
  ?routine_cache:Delta.t ->
  transforms:Transform.t list ->
  bytes ->
  (bytes, string) Stdlib.result
(** File-level convenience: parse, rewrite, serialize.  Total like
    {!try_rewrite}: parse errors and pipeline exceptions are rendered
    into [Error], never raised. *)
