(** Post-rewrite structural validation.

    The paper stresses that a missed pin or a mislabelled byte range
    produces a silently broken binary; this module is the safety net a
    production rewriter ships with.  Given the inputs and outputs of a
    rewrite, it checks every invariant that can be checked without
    executing the program:

    - the output serializes and re-parses;
    - the entry point is preserved;
    - non-text sections of the original survive byte-for-byte (the data
      segment is "copied directly from the original program", §II-C1);
    - every fixed (ambiguous) range and every data-in-text range is
      byte-identical to the original;
    - every movable pinned address decodes to a control transfer (or a
      pin-prologue instruction reaching one), and following the reference
      stays within the program's code;
    - every sled entry walks (push-immediates over no-op filler) to the
      sled's dispatch jump, and that jump lands on decodable code;
    - chained/expanded references do not point outside the code regions.

    Optionally, a transcript check runs the supplied inputs through both
    binaries (the dynamic complement the paper's evaluation relies on). *)

type issue = { check : string; detail : string }

type report = { issues : issue list; checks_run : int }

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit

val structural :
  orig:Zelf.Binary.t ->
  ir:Ir_construction.t ->
  rewritten:Zelf.Binary.t ->
  report
(** All static checks. *)

type exec = {
  stop : Zvm.Vm.stop;
  output : string;
  syscalls : int list;  (** system-call numbers in execution order *)
  insns : int;  (** retired instructions *)
}
(** An execution profile: everything dynamic equivalence compares. *)

val execute : ?fuel:int -> Zelf.Binary.t -> input:string -> exec
(** Boot the binary on [input] and record its observable behaviour,
    including the ordered system-call trace (the differential-execution
    building block; the fuzz harness layers on this). *)

val transcripts :
  ?fuel:int -> orig:Zelf.Binary.t -> rewritten:Zelf.Binary.t -> string list -> report
(** Dynamic equivalence over the given inputs: output bytes, stop status
    and the ordered system-call trace must all agree. *)

val full :
  ?fuel:int ->
  ?inputs:string list ->
  orig:Zelf.Binary.t ->
  ir:Ir_construction.t ->
  rewritten:Zelf.Binary.t ->
  unit ->
  report
(** {!structural} plus {!transcripts} (default inputs: [ "" ]). *)
