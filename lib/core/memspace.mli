(** Free-space accounting for the rewritten program's address space.

    Initially the whole original text span plus the unbounded overflow
    area are free; IR construction reserves the ranges that must keep
    their original bytes (fixed ambiguous ranges, data-in-text), pin
    planning reserves reference slots and sleds, and dollop placement
    consumes the rest.  Placement strategies query this structure;
    reservations and releases keep it exact, which is what lets the
    optimized layout give back the 3 bytes of a pin slot that relaxation
    kept short (§III).

    Two augmented interval trees back the accounting: the full free map,
    and a mirror clipped to the original text span that is maintained
    incrementally on every reserve/release.  All placement queries are
    [O(log gaps)] (see {!Zipr_util.Interval_set}); none rebuild a gap
    list.  Every [alloc_*] call also bumps a query/hit counter pair so
    the reassembler can report allocator traffic ({!counters}). *)

type t

val create : ?overflow_cap:int -> text_lo:int -> text_hi:int -> overflow_base:int -> unit -> t
(** The overflow region is a free interval of [overflow_cap] bytes
    (default 256 MiB, effectively unbounded); its consumption is tracked
    by {!Codebuf} high-water, not here. *)

val text_lo : t -> int
val text_hi : t -> int
val overflow_base : t -> int

val reserve : t -> lo:int -> hi:int -> unit
(** Mark [\[lo, hi)] used.  Idempotent on already-used bytes. *)

val release : t -> lo:int -> hi:int -> unit

val is_free : t -> lo:int -> hi:int -> bool

val alloc_first : t -> size:int -> int
(** Lowest free block anywhere (text first, then overflow); reserves and
    returns its start.  Never fails — overflow is unbounded. *)

val alloc_text_first : t -> size:int -> int option
(** Lowest free block strictly inside the original text span. *)

val alloc_in_window : t -> lo:int -> hi:int -> size:int -> int option
(** Free block within a window (used for short-jump range and chaining);
    may land in overflow if the window covers it. *)

val alloc_near : t -> center:int -> size:int -> int option
(** Text-span block minimizing distance to [center]. *)

val alloc_random_text : t -> rng:Zipr_util.Rng.t -> size:int -> int option
(** Uniformly random text-span placement among candidate gaps (layout
    diversity). *)

val alloc_overflow : t -> size:int -> int
(** Force placement in the overflow area. *)

val largest_text_gap : t -> (int * int) option
(** Biggest free text-span interval, for dollop splitting decisions.
    [O(log gaps)]. *)

val text_free_bytes : t -> int
(** Free bytes inside the original text span.  [O(1)]. *)

val text_gap_count : t -> int
(** Number of free text-span intervals.  [O(1)]. *)

val text_gaps : t -> (int * int) list
(** Free intervals clipped to the text span, ascending.  [O(gaps)] —
    prefer {!find_text_gap} on hot paths. *)

val find_text_gap : t -> f:(int -> int -> 'a option) -> 'a option
(** First [Some] produced by [f lo hi] over the ascending text gaps,
    stopping early. *)

(** {2 Non-committing probes}

    Candidate enumeration for the search placement strategy: probes
    inspect the free map without reserving and without bumping the
    query/hit counters — a search weighs many candidates per decision
    and commits exactly one with {!take_at}, so allocator-traffic stats
    keep meaning "placements", not "candidates considered". *)

val probe_in_window : t -> lo:int -> hi:int -> size:int -> int option
(** Like {!alloc_in_window} but reserves nothing. *)

val probe_text_fits : t -> size:int -> budget:int -> (int * int) list
(** Up to [budget] ascending text gaps at least [size] bytes wide,
    with their bounds.  Stops scanning once [budget] are found. *)

val probe_random_text : t -> rng:Zipr_util.Rng.t -> size:int -> (int * int) option
(** A uniformly random text gap among those fitting [size] (the
    annealing proposal distribution); reserves nothing. *)

val probe_overflow : t -> size:int -> int
(** Where {!alloc_overflow} would place [size] bytes, without
    reserving. *)

val free_gap_at : t -> int -> (int * int) option
(** The free interval containing an address, if any — gives a probe
    candidate its surrounding gap bounds for fragmentation scoring. *)

val take_at : t -> addr:int -> size:int -> int
(** Commit a probed candidate: reserve [\[addr, addr+size)] (which must
    be entirely free — [Invalid_argument] otherwise) and return [addr].
    Counts as one allocator query and one hit. *)

type counters = { queries : int; hits : int }

val counters : t -> counters
(** Cumulative allocator traffic: one query per [alloc_*] call, one hit
    per call that found space. *)

val obs_counters : t -> Obs.Counters.t
(** The per-instance registry backing {!counters}, mergeable into a
    trace sink with [Obs.merge_counters]. *)
