(** Chunk-level stitching machinery shared by the delta cache
    ({!Delta}) and the domain-parallel IR builder ({!Par_ir}).

    A whole-text disassembly aggregate is rebuilt from per-chunk
    instruction framings and accepted only after bidirectional
    validation against a fresh recursive traversal — the exact condition
    under which the result provably coincides with
    {!Disasm.Aggregate.run}'s (see DESIGN.md §12 and §14).  Validation
    failure raises {!Fallback}; callers then rebuild cold, so
    unsupported binaries are slow, never wrong. *)

type fragment = { boundaries : (int * Zvm.Insn.t * int) array }
(** Per-chunk instruction framing: (chunk-relative start, instruction,
    encoded length), ascending and non-overlapping within the chunk. *)

exception Fallback

type scratch
(** Reusable per-domain working memory (claim buffer for
    {!local_linear}, expected-cover array for {!validate_chunk}): tight
    loops over thousands of chunks allocate once per domain instead of
    once per chunk.  Never share one scratch across domains. *)

val scratch : unit -> scratch

val local_linear :
  ?scratch:scratch -> Zelf.Binary.t -> text_end:int -> Disasm.Chunker.chunk -> fragment
(** Linear-framing decode of one chunk in isolation — a pure function of
    the chunk bytes and the decode lookahead, equal to the global
    sweep's framing inside the chunk.  Raises {!Fallback} if an
    instruction would cross the chunk's upper cut. *)

val validate_chunk :
  ?scratch:scratch -> Disasm.Recursive.t -> Disasm.Chunker.chunk -> fragment -> unit
(** Bidirectional check of one chunk's framing against the recursive
    traversal: every boundary a recursive instruction with identical
    decode, every recursive byte covered, every gap byte unreached.
    Raises {!Fallback} on any disagreement. *)

val validate_span :
  Zelf.Binary.t -> text_end:int -> Disasm.Recursive.t -> Disasm.Chunker.chunk -> unit
(** Fused, allocation-free equivalent of {!local_linear} followed by
    {!validate_chunk}: decodes the chunk's linear framing and compares
    it against the recursive cover in the same pass, keeping nothing.
    This is the parallel IR builder's chunk task — a pure validator.
    Raises {!Fallback} on any disagreement. *)

val assemble :
  ?infer:bool -> Zelf.Binary.t -> Disasm.Chunker.t -> fragment array -> Disasm.Aggregate.t
(** One merge pass over fully validated fragments, in chunk order:
    Code on boundary spans, Data on gaps, no warnings.  Equal to the
    cold aggregate under the validation invariant.  With [~infer:true]
    (default false) the aggregate also carries the pin hints the cold
    inference pass would derive: a validated tiling has no ambiguity, so
    the cold pass reduces to one computed-target resolution round over
    exactly these boundaries ({!Disasm.Infer.resolve_pins}). *)

val of_recursive :
  ?infer:bool -> Zelf.Binary.t -> Disasm.Recursive.t -> Disasm.Aggregate.t
(** The aggregate a fully validated tiling assembles, materialized
    directly from the traversal it was validated against (the validated
    claims coincide with the recursive cover, so copying the traversal
    is the same merge without re-walking any fragment).  [infer] as in
    {!assemble}. *)
