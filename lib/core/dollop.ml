module Db = Irdb.Db

type ending = Natural | Connect of Db.insn_id

type t = { rows : Db.insn_id list; ending : ending }

let normalized_insn insn =
  let open Zvm.Insn in
  match insn with
  | Jcc (c, Short, d) -> Jcc (c, Near, d)
  | Jmp (Short, d) -> Jmp (Near, d)
  | other -> other

let normalized_size insn = Zvm.Insn.size (normalized_insn insn)

let connector_size = 5

let build db ~has_home head =
  if has_home head then invalid_arg "Dollop.build: head already placed";
  let seen = Hashtbl.create 16 in
  let rec go id acc =
    Hashtbl.add seen id ();
    let r = Db.row db id in
    let acc = id :: acc in
    match r.Db.fallthrough with
    | None -> { rows = List.rev acc; ending = Natural }
    | Some ft ->
        if has_home ft then { rows = List.rev acc; ending = Connect ft }
        else if Hashtbl.mem seen ft then
          (* A fallthrough cycle (malformed IR); close with a connector so
             emission terminates and the jump re-enters the placed code. *)
          { rows = List.rev acc; ending = Connect ft }
        else go ft acc
  in
  go head []

let size db t =
  let body =
    List.fold_left (fun acc id -> acc + normalized_size (Db.row db id).Db.insn) 0 t.rows
  in
  match t.ending with Natural -> body | Connect _ -> body + connector_size

type placed_insn = { row : Db.insn_id; offset : int; form : Zvm.Insn.t; internal : bool }

let layout db t =
  let rows = Array.of_list t.rows in
  let n = Array.length rows in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i id -> Hashtbl.replace index_of id i) rows;
  (* Which direct branches can be resolved inside the dollop, and to which
     row index? *)
  let internal_target =
    Array.map
      (fun id ->
        let r = Db.row db id in
        match r.Db.insn with
        | Zvm.Insn.Jcc _ | Zvm.Insn.Jmp _ -> (
            match r.Db.target with
            | Some tid -> Hashtbl.find_opt index_of tid
            | None -> None)
        | _ -> None)
      rows
  in
  (* Relaxation: internal branches start short; grow out-of-range ones to
     a fixpoint (monotone, hence terminating). *)
  let near = Array.make n false in
  let offsets = Array.make n 0 in
  let size_of i =
    let r = Db.row db rows.(i) in
    match internal_target.(i) with
    | Some _ -> if near.(i) then 5 else 2
    | None -> normalized_size r.Db.insn
  in
  let compute_offsets () =
    let off = ref 0 in
    for i = 0 to n - 1 do
      offsets.(i) <- !off;
      off := !off + size_of i
    done;
    !off
  in
  let body = ref (compute_offsets ()) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      match internal_target.(i) with
      | Some j when not near.(i) ->
          let disp = offsets.(j) - (offsets.(i) + 2) in
          if disp < -128 || disp > 127 then begin
            near.(i) <- true;
            changed := true
          end
      | _ -> ()
    done;
    if !changed then body := compute_offsets ()
  done;
  let placed =
    List.init n (fun i ->
        let id = rows.(i) in
        let r = Db.row db id in
        match internal_target.(i) with
        | Some j ->
            let open Zvm.Insn in
            let width = if near.(i) then Near else Short in
            let disp = offsets.(j) - (offsets.(i) + size_of i) in
            let form =
              match r.Db.insn with
              | Jcc (c, _, _) -> Jcc (c, width, disp)
              | Jmp (_, _) -> Jmp (width, disp)
              | _ -> assert false
            in
            { row = id; offset = offsets.(i); form; internal = true }
        | None ->
            { row = id; offset = offsets.(i); form = normalized_insn r.Db.insn; internal = false })
  in
  let total = match t.ending with Natural -> !body | Connect _ -> !body + connector_size in
  (placed, total)

let split_to_fit db t ~capacity =
  match t.rows with
  | [] | [ _ ] -> None
  | _ ->
      (* Greedy prefix (kept reversed): add rows while prefix + connector
         fits. *)
      let rec take rows acc_size rev_prefix =
        match rows with
        | [] -> (rev_prefix, [])
        | id :: rest ->
            let s = normalized_size (Db.row db id).Db.insn in
            if acc_size + s + connector_size <= capacity then
              take rest (acc_size + s) (id :: rev_prefix)
            else (rev_prefix, rows)
      in
      let rev_prefix, rest = take t.rows 0 [] in
      (* A call must keep its successor adjacent: the pushed return
         address is the byte after the call, and landing on a connector
         jump instead of the real continuation breaks return-address
         invariants (and CFI return markers).  The prefix is still
         reversed here, so backing off over a run of trailing calls is one
         pass with no re-reversal or filtering per step. *)
      let rec trim rev_prefix rest =
        match rev_prefix with
        | last :: before
          when (match (Db.row db last).Db.insn with
               | Zvm.Insn.Call _ | Zvm.Insn.Callr _ -> true
               | _ -> false) ->
            trim before (last :: rest)
        | _ -> (rev_prefix, rest)
      in
      let rev_prefix, rest = trim rev_prefix rest in
      (match (List.rev rev_prefix, rest) with
      | [], _ | _, [] -> None  (* nothing fits, or nothing left to split off *)
      | prefix, rest_head :: _ ->
          Some ({ rows = prefix; ending = Connect rest_head }, rest_head))

let pp db ppf t =
  Format.fprintf ppf "@[<v>dollop (%d rows):@," (List.length t.rows);
  List.iter
    (fun id -> Format.fprintf ppf "  %d: %s@," id (Zvm.Insn.to_string (Db.row db id).Db.insn))
    t.rows;
  (match t.ending with
  | Natural -> Format.fprintf ppf "  (natural end)@,"
  | Connect id -> Format.fprintf ppf "  jmp -> row %d@," id);
  Format.fprintf ppf "@]"
