(** The IR Construction phase (paper §II-A): disassemble, disambiguate,
    build logical links, compute pinned addresses, and populate the IRDB.

    Output is the IRDB plus the byte ranges of the original text section
    that must keep their original contents in the rewritten program:

    - [fixed_ranges] — ambiguous ranges (disassembler disagreement,
      paper cases 2/3/4): bytes copied verbatim {e and} decoded rows kept
      for CFG purposes, marked [fixed];
    - [data_ranges] — ranges both disassemblers agree are data
      (read-only tables, string islands): bytes copied verbatim. *)

type t = {
  db : Irdb.Db.t;
  aggregate : Disasm.Aggregate.t;
  pins : Analysis.Ibt.t;
  fixed_ranges : (int * int) list;
  data_ranges : (int * int) list;
  warnings : string list;
}

val build : ?pin_config:Analysis.Ibt.config -> ?infer:bool -> Zelf.Binary.t -> t
(** Run the whole phase: aggregate disassembly (with the {!Disasm.Infer}
    refinement pass when [~infer:true]; default false), row/link
    construction,
    fixed-range marking, mandatory transformations, pinned-address
    assignment (including speculative decoding at pins that fall between
    known instruction boundaries), entry designation and function
    identification.

    Row ids are canonical: ascending original address for decoded
    boundaries, then insertion order for speculative and
    mandatory-transform rows.  Two builds of the same binary with the
    same configuration produce identical IRDBs — the property the IR
    cache's byte-identity guarantee rests on. *)

val build_from_aggregate :
  ?pin_config:Analysis.Ibt.config -> Zelf.Binary.t -> Disasm.Aggregate.t -> t
(** Everything downstream of disassembly, over a caller-supplied
    aggregate: pin analysis, row/link construction, mandatory
    transforms, pin assignment, entry designation, function
    identification.  [build] is [build_from_aggregate] over
    [Aggregate.run]; the delta path ({!Delta}) calls this over an
    aggregate stitched from cached routine fragments, so both paths run
    the identical downstream code — the foundation of the incremental
    path's byte-identity guarantee. *)

(** {1 Snapshot / restore}

    [build] dominates pipeline cost (disassembly, pin analysis, linking),
    yet is a pure function of the binary and the pin configuration.
    [snapshot]/[restore] serialize its {e result} so repeat rewrites of
    the same input (fuzzing, corpus runs, [ziprtool batch --cache]) skip
    the phase entirely; {!Irdb.Cache} stores the payloads, keyed by
    {!Irdb.Cache.key} over [snapshot_version], {!fingerprint} and the
    input bytes. *)

val snapshot_version : string
(** Participates in the cache key, so a codec change silently invalidates
    old entries rather than misparsing them. *)

val fingerprint : ?infer:bool -> Analysis.Ibt.config -> string
(** Stable digest input covering every configuration knob that affects
    [build]'s output.  The inference pass contributes its own codec
    version ({!infer_codec_version}) {e only} when [~infer:true], so all
    cache keys are unchanged whenever [--infer] is off. *)

val infer_codec_version : string

val snapshot : t -> string

val restore : Zelf.Binary.t -> string -> (t, string) result
(** Rebuild a [build] result from [snapshot] output over the same binary.
    [restore binary (snapshot (build binary))] is structurally identical
    to the original — same row ids, links, pins, marks, functions, entry,
    warnings — so downstream phases cannot distinguish a cache hit from a
    cold build. *)
