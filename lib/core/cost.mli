(** Explicit placement cost model (ROADMAP "search-based placement").

    A layout's cost is a weighted sum of five integer terms, each one a
    quantity the reassembler measures anyway:

    - {b sled bytes} — footprint of sleds reserved for dense pins;
    - {b chain hops} — 5-byte trampolines inserted when a constrained
      reference could not be expanded in place (§II-C3);
    - {b relaxations} — 2-byte reference slots grown to 5 bytes
      ([slot_expansions]);
    - {b overflow bytes} — code spilled past the original text span, the
      direct file-size overhead (§IV-B);
    - {b page misses} — 4-KiB pages the layout made resident that hold
      no pin (pinned pages are resident regardless, so filling them is
      free — the §III locality argument).

    {!Placement.search} scores candidate decisions with these weights;
    {!Reassemble.run} evaluates the same weights over the final stats so
    the reported [placement_cost] is the optimized objective measured on
    the layout actually produced. *)

type weights = {
  w_sled_bytes : float;
  w_chain_hops : float;
  w_relaxations : float;
  w_overflow_bytes : float;
  w_page_misses : float;
}

val default_weights : weights
(** Byte-equivalent weights: sled=1, chain=16, relax=3, overflow=1,
    page=64. *)

type terms = {
  sled_bytes : int;
  chain_hops : int;
  relaxations : int;
  overflow_bytes : int;
  page_misses : int;
}

val zero_terms : terms
val add_terms : terms -> terms -> terms

val eval : weights -> terms -> float
(** Weighted sum; linear, so [eval w] distributes over {!add_terms}. *)

type tally = { mutable iterations : int; mutable accepted : int; mutable rejected : int }
(** Per-run search accounting: candidate evaluations, and accepted vs
    rejected moves.  Allocated fresh per reassembly run
    ({!Reassemble.run}) and threaded to the strategy through
    [Placement.ctx], keeping the shared strategy record immutable across
    Domain workers. *)

val make_tally : unit -> tally

val weights_of_spec : string -> (weights, string) result
(** Parse a ["sled=1,chain=16,relax=3,overflow=1,page=64"] spec.  Keys
    may appear in any subset/order; omitted keys keep their default.
    The empty string yields {!default_weights}.  Weights must be
    non-negative numbers. *)

val to_spec : weights -> string
(** Inverse of {!weights_of_spec} (canonical key order). *)

val spec_keys : string list
