(* Domain-parallel IR construction for a single binary.

   The cold pipeline runs three whole-text disassembly sources (linear
   sweep, recursive traversal, and the expensive superset decode with
   its prune fixpoint) and aggregates them byte by byte.  This module
   instead runs one fresh recursive traversal, tiles the text into
   chunks whose cuts land on instruction starts or unreached bytes of
   that traversal, and fans the chunks out over worker domains: each
   chunk task re-frames its span linearly in isolation (a pure function
   of the bytes — no shared state, no RNG) and validates the framing
   bidirectionally against the traversal, exactly as the delta cache's
   stitch does.  When every chunk validates, the validated claims
   coincide with the traversal by construction, so the merged aggregate
   is materialized directly from it ({!Stitch.of_recursive}) and fed to
   the same sorted-boundary {!Ir_construction.build_from_aggregate} run
   as the cold path — provably the same result (see {!Stitch} and
   DESIGN.md §14).  The superset source is skipped entirely: under the
   validation invariant it is fully determined (abstain on recursive
   bytes, Data on gaps), which is where most of the single-binary
   speedup comes from; the worker fan-out covers the rest on multicore
   hosts.

   Any chunk that fails to validate abandons the whole parallel build
   ([None]); the caller falls back to the serial cold build, so
   unsupported binaries are slow, never wrong.

   Determinism: validation is a yes/no question per chunk and the
   accepted aggregate is a pure function of the traversal, so the
   output is independent of worker count and scheduling by
   construction.  [jobs] is a ceiling, not a partition: the effective
   worker count is clamped to the host's core count (extra domains past
   the cores are pure spawn/GC-sync overhead) and to the chunk count.
   [jobs = 1] still uses the chunked path, just inline; callers wanting
   the exact cold build simply do not call this module. *)

module Chunker = Disasm.Chunker

(* Cut the text into ~[target]-byte validation tasks directly from the
   recursive cover.  Every cut lands on an instruction start or an
   unreached byte, so each chunk's linear framing enters in sync with
   the traversal it is validated against and no traversal instruction
   crosses a cut.  O(len) with no decoding — the {!Chunker}'s
   content-defined scan (whose cuts also key the delta cache) is not
   needed here, and skipping it keeps the parallel path's serial rump
   small.  Soundness rests entirely on per-chunk validation, not on the
   cut choice. *)
let tile (rec_ : Disasm.Recursive.t) =
  let base = rec_.Disasm.Recursive.base and len = rec_.Disasm.Recursive.len in
  let cover = rec_.Disasm.Recursive.cover in
  let target = 8192 in
  let chunks = ref [] in
  let lo = ref 0 in
  while !lo < len do
    let p = ref (min len (!lo + target)) in
    while
      !p < len && not (cover.(!p) = -1 || cover.(!p) = base + !p)
    do
      incr p
    done;
    chunks :=
      { Chunker.lo = base + !lo; hi = base + !p; synced = true; inbound = [] }
      :: !chunks;
    lo := !p
  done;
  Array.of_list (List.rev !chunks)

let build ~jobs ~pin_config ?(infer = false) binary =
  Obs.span "ir_par" (fun () ->
      let rec_ =
        Obs.span "recursive" (fun () -> Disasm.Recursive.traverse binary)
      in
      let chunks = Obs.span "tile" (fun () -> tile rec_) in
      let n = Array.length chunks in
      if n = 0 then None
      else begin
        let text_end = rec_.Disasm.Recursive.base + rec_.Disasm.Recursive.len in
        let workers =
          max 1 (min (min jobs n) (Domain.recommended_domain_count ()))
        in
        let failed = Atomic.make false in
        (* Worker [w] owns the contiguous block [n*w/workers, n*(w+1)/workers):
           pure validation, no results to store, earliest-possible exit
           once any domain has hit a fallback. *)
        let run_block w =
          let lo = n * w / workers and hi = n * (w + 1) / workers in
          try
            for i = lo to hi - 1 do
              if not (Atomic.get failed) then
                Stitch.validate_span binary ~text_end rec_ chunks.(i)
            done
          with Stitch.Fallback -> Atomic.set failed true
        in
        let domains =
          Array.init (workers - 1) (fun k ->
              Domain.spawn (fun () -> run_block (k + 1)))
        in
        let main_exn = (try run_block 0; None with e -> Some e) in
        (* Join every domain before re-raising anything: an unjoined
           domain must not outlive this call. *)
        let worker_exn =
          Array.fold_left
            (fun acc d ->
              match Domain.join d with
              | () -> acc
              | exception e -> (match acc with None -> Some e | some -> some))
            None domains
        in
        (match main_exn with Some e -> raise e | None -> ());
        (match worker_exn with Some e -> raise e | None -> ());
        if Atomic.get failed then None
        else
          let agg =
            Obs.span "stitch_merge" (fun () -> Stitch.of_recursive ~infer binary rec_)
          in
          Some (Ir_construction.build_from_aggregate ~pin_config binary agg)
      end)
