module Iset = Zipr_util.Interval_set
module Rng = Zipr_util.Rng

(* Large enough to never be exhausted by a realistic rewrite; the output
   binary only pays for the high-water mark actually written. *)
let default_overflow_span = 1 lsl 28

type counters = { queries : int; hits : int }

type t = {
  text_lo : int;
  text_hi : int;
  overflow_base : int;
  mutable free : Iset.t;  (* the whole address space *)
  mutable text_free : Iset.t;  (* [free] clipped to the text span *)
  mutable overflow_cursor : int;
  (* Allocator traffic lives in a per-instance obs registry: atomic
     cells, readable through [counters] exactly as the old plain ints
     were, and mergeable into a trace sink without a second mechanism. *)
  ctrs : Obs.Counters.t;
  c_queries : Obs.Counters.cell;
  c_hits : Obs.Counters.cell;
}

let create ?(overflow_cap = default_overflow_span) ~text_lo ~text_hi ~overflow_base () =
  let free = Iset.add Iset.empty ~lo:text_lo ~hi:text_hi in
  let free = Iset.add free ~lo:overflow_base ~hi:(overflow_base + overflow_cap) in
  let ctrs = Obs.Counters.create () in
  {
    text_lo;
    text_hi;
    overflow_base;
    free;
    text_free = Iset.add Iset.empty ~lo:text_lo ~hi:text_hi;
    overflow_cursor = overflow_base;
    ctrs;
    c_queries = Obs.Counters.counter ctrs "memspace.alloc_queries";
    c_hits = Obs.Counters.counter ctrs "memspace.alloc_hits";
  }

let text_lo t = t.text_lo
let text_hi t = t.text_hi
let overflow_base t = t.overflow_base

(* The text-clipped mirror set is what keeps every text-gap query (near,
   random, largest, totals) from rescanning and re-clipping the whole
   free map: reservations and releases maintain it incrementally. *)
let reserve t ~lo ~hi =
  t.free <- Iset.remove t.free ~lo ~hi;
  let tlo = max lo t.text_lo and thi = min hi t.text_hi in
  if thi > tlo then t.text_free <- Iset.remove t.text_free ~lo:tlo ~hi:thi

let release t ~lo ~hi =
  t.free <- Iset.add t.free ~lo ~hi;
  let tlo = max lo t.text_lo and thi = min hi t.text_hi in
  if thi > tlo then t.text_free <- Iset.add t.text_free ~lo:tlo ~hi:thi

let is_free t ~lo ~hi = Iset.contains_range t.free ~lo ~hi

let counters t = { queries = Obs.Counters.get t.c_queries; hits = Obs.Counters.get t.c_hits }

let obs_counters t = t.ctrs

let query t = Obs.Counters.incr t.c_queries

let tally t = function
  | Some _ as r ->
      Obs.Counters.incr t.c_hits;
      r
  | None -> None

let take t addr size =
  reserve t ~lo:addr ~hi:(addr + size);
  if addr >= t.overflow_base then t.overflow_cursor <- max t.overflow_cursor (addr + size);
  addr

let alloc_first t ~size =
  query t;
  match Iset.first_fit t.free ~size with
  | Some a ->
      Obs.Counters.incr t.c_hits;
      take t a size
  | None -> invalid_arg "Memspace.alloc_first: overflow exhausted"

let alloc_text_first t ~size =
  query t;
  match tally t (Iset.first_fit t.text_free ~size) with
  | Some a -> Some (take t a size)
  | None -> None

let alloc_in_window t ~lo ~hi ~size =
  query t;
  match tally t (Iset.fit_in_window t.free ~lo ~hi ~size) with
  | Some a -> Some (take t a size)
  | None -> None

let text_gaps t = Iset.intervals t.text_free

let find_text_gap t ~f = Iset.find_map f t.text_free

let alloc_near t ~center ~size =
  query t;
  match tally t (Iset.best_fit_near t.text_free ~center ~size) with
  | Some a -> Some (take t a size)
  | None -> None

let alloc_random_text t ~rng ~size =
  query t;
  match Iset.fitting_count t.text_free ~size with
  | 0 -> None
  | n -> (
      match Iset.kth_fit t.text_free ~size ~k:(Rng.int rng n) with
      | None -> assert false
      | Some (lo, hi) ->
          Obs.Counters.incr t.c_hits;
          let slack = hi - lo - size in
          let a = lo + if slack = 0 then 0 else Rng.int rng (slack + 1) in
          Some (take t a size))

let alloc_overflow t ~size =
  query t;
  match Iset.first_fit_at_or_after t.free ~pos:t.overflow_cursor ~size with
  | Some a ->
      Obs.Counters.incr t.c_hits;
      take t a size
  | None -> invalid_arg "Memspace.alloc_overflow: overflow exhausted"

let largest_text_gap t = Iset.largest t.text_free

let text_free_bytes t = Iset.total t.text_free

let text_gap_count t = Iset.count t.text_free

(* -- non-committing probes (Placement.search candidate enumeration) --

   Probes inspect the free map without reserving and without touching
   the query/hit counters: a search strategy weighs many candidates per
   decision and commits exactly one with [take_at], so allocator-traffic
   stats keep meaning "placements", not "candidates considered". *)

let probe_in_window t ~lo ~hi ~size = Iset.fit_in_window t.free ~lo ~hi ~size

let probe_text_fits t ~size ~budget =
  if budget <= 0 then []
  else begin
    let acc = ref [] and n = ref 0 in
    ignore
      (Iset.find_map
         (fun glo ghi ->
           if ghi - glo >= size then begin
             acc := (glo, ghi) :: !acc;
             incr n
           end;
           if !n >= budget then Some () else None)
         t.text_free);
    List.rev !acc
  end

let probe_random_text t ~rng ~size =
  match Iset.fitting_count t.text_free ~size with
  | 0 -> None
  | n -> Iset.kth_fit t.text_free ~size ~k:(Rng.int rng n)

let probe_overflow t ~size =
  match Iset.first_fit_at_or_after t.free ~pos:t.overflow_cursor ~size with
  | Some a -> a
  | None -> invalid_arg "Memspace.probe_overflow: overflow exhausted"

let free_gap_at t addr = Iset.find_containing t.free addr

let take_at t ~addr ~size =
  query t;
  if not (is_free t ~lo:addr ~hi:(addr + size)) then
    invalid_arg "Memspace.take_at: range not free";
  Obs.Counters.incr t.c_hits;
  take t addr size
