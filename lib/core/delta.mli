(** Routine-granular incremental IR construction (the delta path).

    Caches IR at two granularities and composes the pieces into a full
    {!Ir_construction.t} without rerunning the expensive disassembly
    aggregation:

    - {e routine fragments}: per-{!Disasm.Chunker} chunk instruction
      boundaries, keyed by chunk bytes + decode lookahead + the
      chunk-relative inbound-reference fingerprint.  A changed caller
      whose references into an unchanged callee are unchanged does not
      touch the callee's key, so version-to-version rewrites reuse the
      IR of every untouched routine;
    - an {e assembled-IR memo}: the finished pristine IR of a whole
      binary, a hit paying only one {!Irdb.Db.copy}.

    The composed result is byte-identical to the cold path: the stitched
    aggregate is used only when a fresh recursive traversal proves it
    equal to what {!Disasm.Aggregate.run} would produce, and it then
    flows through the same {!Ir_construction.build_from_aggregate}.  Any
    doubt falls back to a cold build (reported as a miss) — unsupported
    binaries are slow, never wrong.  See DESIGN.md §12. *)

type t

val create :
  ?fragment_capacity:int ->
  ?fragment_bytes:int ->
  ?memo_capacity:int ->
  ?memo_bytes:int ->
  ?dir:string ->
  unit ->
  t
(** Defaults: 65536 fragment entries / 64 memo entries, no byte budgets,
    no disk layer.  [dir] persists fragments on disk (atomic framed
    writes; corruption reads back as a miss).  Safe to share across
    domains. *)

type key_set
(** Precomputed key material for one binary (chunking, per-chunk keys,
    memo key), carried from {!obtain} to {!harvest} so the scan is not
    repeated. *)

type outcome = {
  ir : Ir_construction.t option;
      (** the composed IR, or [None] when the caller must build cold
          (and should then {!harvest}) *)
  routine_hits : int;  (** chunks served from cache *)
  routine_misses : int;  (** chunks rebuilt, or all chunks on fallback *)
  delta_built : bool;  (** [ir] came from a partial stitch, not the memo *)
  keys : key_set;
}

val obtain :
  t -> pin_config:Analysis.Ibt.config -> ?infer:bool -> Zelf.Binary.t -> outcome
(** Try to serve IR construction from the cache: memo first, then a
    routine-granular stitch when at least one fragment hits and the
    whole composition validates.  [infer] (default false) enters the key
    fingerprint — caches populated with and without the inference
    refiner never cross-pollinate — and a stitched aggregate recomputes
    the refiner's pin hints over its validated boundaries. *)

val harvest : t -> outcome -> Ir_construction.t -> unit
(** Publish a cold (or snapshot-restored) build's results: fragments for
    every chunk the disassembly aggregation was conclusive about, plus
    the whole-binary memo.  Must be called on the pristine IR, before
    transforms mutate it (the memo keeps its own copy). *)

(* Introspection, for stats surfaces and tests. *)

val fragment_entries : t -> int
val fragment_bytes : t -> int
val fragment_evictions : t -> int
val memo_entries : t -> int
