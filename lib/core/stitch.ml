(* Chunk-level stitching machinery, shared by the routine-granular delta
   cache ({!Delta}) and the domain-parallel IR builder ({!Par_ir}).

   Both consumers rebuild a whole-text disassembly aggregate from
   per-chunk instruction framings and accept it only after the same
   bidirectional validation against a fresh recursive traversal: every
   boundary must be a recursive instruction with identical decode, every
   recursively reached byte must be covered by a boundary with that
   start, and every gap byte must be unreached.  Under those conditions
   the cold aggregation's three sources are fully determined (linear
   framing is a pure function of the bytes given the validated tiling,
   and the superset source abstains everywhere recursive traversal
   reached while claiming Data exactly on the undecodable gaps), so the
   assembled aggregate coincides with what {!Disasm.Aggregate.run} would
   produce — verdicts, boundaries, and (absence of) warnings.  Any doubt
   raises {!Fallback} and the caller rebuilds cold: unsupported binaries
   are slow, never wrong.

   The two hot helpers ([local_linear], [validate_chunk]) accept an
   optional {!scratch}: a reusable per-domain claim buffer and expected-
   cover array, so tight loops over thousands of chunks do not allocate
   per chunk.  A scratch must never be shared across domains. *)

module Agg = Disasm.Aggregate
module Chunker = Disasm.Chunker

type fragment = { boundaries : (int * Zvm.Insn.t * int) array }
(* (chunk-relative start, instruction, encoded length), ascending,
   non-overlapping, within the chunk. *)

exception Fallback

(* ---------- per-domain scratch ---------- *)

type claims = { mutable items : (int * Zvm.Insn.t * int) array; mutable n : int }

type scratch = { mutable expect : int array; claims : claims }

let scratch () = { expect = [||]; claims = { items = [||]; n = 0 } }

let push cl x =
  (if cl.n = Array.length cl.items then begin
     let grown = Array.make (max 64 (2 * cl.n)) x in
     Array.blit cl.items 0 grown 0 cl.n;
     cl.items <- grown
   end);
  cl.items.(cl.n) <- x;
  cl.n <- cl.n + 1

let take cl =
  let out = Array.sub cl.items 0 cl.n in
  cl.n <- 0;
  out

let expect_buf s n =
  if Array.length s.expect < n then s.expect <- Array.make n (-1)
  else Array.fill s.expect 0 n (-1);
  s.expect

(* ---------- per-chunk framing and validation ---------- *)

(* Linear-framing decode of one chunk in isolation.  Equal to the global
   sweep's framing inside the chunk because the sweep enters at [c.lo]
   (guaranteed by the caller's induction over previously validated
   chunks) and decode outcomes depend only on the bytes.  Raises
   {!Fallback} if an instruction would cross the chunk's upper cut. *)
let local_linear ?scratch binary ~text_end (c : Chunker.chunk) =
  let fetch a = Zelf.Binary.read8 binary a in
  let cl =
    match scratch with Some s -> s.claims | None -> { items = [||]; n = 0 }
  in
  let pos = ref c.Chunker.lo in
  (try
     while !pos < c.Chunker.hi do
       match Zvm.Decode.decode ~fetch !pos with
       | Ok (insn, ilen) when !pos + ilen <= text_end ->
           if !pos + ilen > c.Chunker.hi then raise Fallback;
           push cl (!pos - c.Chunker.lo, insn, ilen);
           pos := !pos + ilen
       | Ok _ | Error _ -> incr pos
     done
   with Fallback ->
     cl.n <- 0;
     raise Fallback);
  { boundaries = take cl }

(* The stitched framing of a chunk is usable iff it coincides exactly
   with recursive traversal inside the chunk: every boundary is a
   recursive instruction with identical decode, every recursively
   reached byte is covered by a boundary with that start, every gap
   byte is unreached.  Raises {!Fallback} otherwise. *)
let validate_chunk ?scratch (rec_ : Disasm.Recursive.t) (c : Chunker.chunk) f =
  let clen = c.Chunker.hi - c.Chunker.lo in
  let expect =
    match scratch with Some s -> expect_buf s clen | None -> Array.make clen (-1)
  in
  let prev_end = ref 0 in
  Array.iter
    (fun (rel, insn, ilen) ->
      if rel < !prev_end || rel + ilen > clen then raise Fallback;
      prev_end := rel + ilen;
      (match Hashtbl.find_opt rec_.Disasm.Recursive.insns (c.Chunker.lo + rel) with
      | Some (insn', ilen') when ilen' = ilen && insn' = insn -> ()
      | _ -> raise Fallback);
      for i = rel to rel + ilen - 1 do
        expect.(i) <- c.Chunker.lo + rel
      done)
    f.boundaries;
  let base = rec_.Disasm.Recursive.base in
  for off = 0 to clen - 1 do
    if rec_.Disasm.Recursive.cover.(c.Chunker.lo + off - base) <> expect.(off) then
      raise Fallback
  done

(* Fused framing + validation of one chunk, allocation-free: decode the
   chunk's linear framing and compare it against the recursive cover in
   the same pass instead of materializing a fragment and an expected-
   cover array.  Equivalent to [local_linear] followed by
   [validate_chunk] — every local boundary must be a recursive
   instruction with identical decode whose span the cover attributes to
   it, and every undecodable byte must be unreached — but with nothing
   to keep, which is what the domain-parallel builder wants: its chunk
   tasks are pure validators (the validated claims coincide with the
   traversal, so the merge materializes from the traversal directly).
   Raises {!Fallback} on any disagreement. *)
let validate_span binary ~text_end (rec_ : Disasm.Recursive.t) (c : Chunker.chunk) =
  let fetch a = Zelf.Binary.read8 binary a in
  let base = rec_.Disasm.Recursive.base in
  let cover = rec_.Disasm.Recursive.cover in
  let pos = ref c.Chunker.lo in
  while !pos < c.Chunker.hi do
    match Zvm.Decode.decode ~fetch !pos with
    | Ok (insn, ilen) when !pos + ilen <= text_end ->
        if !pos + ilen > c.Chunker.hi then raise Fallback;
        (match Hashtbl.find_opt rec_.Disasm.Recursive.insns !pos with
        | Some (insn', ilen') when ilen' = ilen && insn' = insn -> ()
        | _ -> raise Fallback);
        for i = !pos to !pos + ilen - 1 do
          if cover.(i - base) <> !pos then raise Fallback
        done;
        pos := !pos + ilen
    | Ok _ | Error _ ->
        if cover.(!pos - base) <> -1 then raise Fallback;
        incr pos
  done

(* ---------- aggregate assembly ---------- *)

(* One merge pass over all validated fragments, in chunk (= address)
   order: gap bytes stay Data, boundary spans become Code, and the
   boundary table is rebuilt.  Only called on fully validated tilings,
   so no warnings can arise.  With [~infer:true] the aggregate carries
   the same pin hints the cold inference pass derives: a validated
   tiling has no ambiguity, so the cold pass performs exactly one
   computed-target resolution round over exactly these boundaries
   ({!Disasm.Infer.resolve_pins}). *)
let assemble ?(infer = false) binary (scan : Chunker.t) (frags : fragment array) =
  let verdicts = Array.make scan.Chunker.len Agg.Data in
  let insn_at = Hashtbl.create 1024 in
  Array.iteri
    (fun i (c : Chunker.chunk) ->
      Array.iter
        (fun (rel, insn, ilen) ->
          let addr = c.Chunker.lo + rel in
          Hashtbl.replace insn_at addr (insn, ilen);
          for j = addr - scan.Chunker.base to addr - scan.Chunker.base + ilen - 1 do
            verdicts.(j) <- Agg.Code
          done)
        frags.(i).boundaries)
    scan.Chunker.chunks;
  {
    Agg.base = scan.Chunker.base;
    len = scan.Chunker.len;
    verdicts;
    insn_at;
    warnings = [];
    tally = Agg.tally_of_verdicts verdicts;
    refined = [];
    pin_hints = (if infer then Disasm.Infer.resolve_pins binary ~insns:insn_at else []);
  }

(* The aggregate a fully validated tiling assembles, materialized from
   the traversal it was validated against: under the validation
   invariant the per-chunk claims coincide with the recursive cover
   (boundaries are exactly the traversal's instructions, Code bytes are
   exactly the reached bytes, gaps stay Data), so copying the traversal
   is the same merge without re-walking any fragment. *)
let of_recursive ?(infer = false) binary (rec_ : Disasm.Recursive.t) =
  let len = rec_.Disasm.Recursive.len in
  let verdicts = Array.make len Agg.Data in
  let cover = rec_.Disasm.Recursive.cover in
  for i = 0 to len - 1 do
    if cover.(i) >= 0 then verdicts.(i) <- Agg.Code
  done;
  let insn_at = Hashtbl.copy rec_.Disasm.Recursive.insns in
  {
    Agg.base = rec_.Disasm.Recursive.base;
    len;
    verdicts;
    insn_at;
    warnings = [];
    tally = Agg.tally_of_verdicts verdicts;
    refined = [];
    pin_hints = (if infer then Disasm.Infer.resolve_pins binary ~insns:insn_at else []);
  }
