module Db = Irdb.Db
module Agg = Disasm.Aggregate
module Iset = Zipr_util.Interval_set

type t = {
  db : Db.t;
  aggregate : Agg.t;
  pins : Analysis.Ibt.t;
  fixed_ranges : (int * int) list;
  data_ranges : (int * int) list;
  warnings : string list;
}

let data_ranges_of agg =
  let ranges = ref [] in
  let start = ref (-1) in
  for off = 0 to agg.Agg.len - 1 do
    match (agg.Agg.verdicts.(off), !start) with
    | Agg.Data, -1 -> start := off
    | Agg.Data, _ -> ()
    | _, -1 -> ()
    | _, s ->
        ranges := (agg.Agg.base + s, agg.Agg.base + off) :: !ranges;
        start := -1
  done;
  if !start >= 0 then ranges := (agg.Agg.base + !start, agg.Agg.base + agg.Agg.len) :: !ranges;
  List.rev !ranges

(* [sys 0] is the terminate system call: its syscall number is an
   immediate, so it statically never falls through.  Cutting the edge here
   keeps dead code after exit paths from being glued onto live dollops and
   from confusing function-entry analyses. *)
let falls_through insn =
  Zvm.Insn.has_fallthrough insn && insn <> Zvm.Insn.Sys 0

(* Decode a short chain of rows starting at an address that has no known
   instruction boundary (a pin landed mid-instruction or on bytes the
   disassemblers never claimed).  New rows link into existing boundaries
   when the chain re-synchronizes — the overlapping-instruction case real
   x86 rewriters must also survive. *)
let speculative_decode db binary warnings addr =
  let fetch a = Zelf.Binary.read8 binary a in
  let rec go a budget prev =
    match Db.find_by_orig_addr db a with
    | Some existing ->
        (* Re-synchronized with known code. *)
        (match prev with Some p -> Db.set_fallthrough db p (Some existing) | None -> ());
        None
    | None ->
        if budget = 0 then begin
          warnings := Printf.sprintf "speculative decode at 0x%x exceeded budget" a :: !warnings;
          None
        end
        else
          match Zvm.Decode.decode ~fetch a with
          | Error e ->
              warnings :=
                Printf.sprintf "speculative decode failed at 0x%x: %s" a
                  (Zvm.Decode.error_to_string e)
                :: !warnings;
              None
          | Ok (decoded, len) ->
              let insn = Mandatory.rewrite_insn ~at:a decoded in
              (* orig_addr stays empty: the primary row at this range owns
                 the by-address index. *)
              let id = Db.add_insn db insn in
              (match prev with Some p -> Db.set_fallthrough db p (Some id) | None -> ());
              (* Direct branch targets resolve against known rows — from
                 the decoded displacement, not the stored instruction:
                 [rewrite_insn] zeroes direct-branch displacements (the
                 logical [target] link is the truth), so resolving after
                 the rewrite would aim every branch at [a + len]. *)
              (match Zvm.Insn.static_target ~at:a decoded with
              | Some tgt -> (
                  match Db.find_by_orig_addr db tgt with
                  | Some tid -> Db.set_target db id (Some tid)
                  | None ->
                      warnings :=
                        Printf.sprintf "speculative branch at 0x%x targets unknown 0x%x" a tgt
                        :: !warnings)
              | None -> ());
              if falls_through insn then ignore (go (a + len) (budget - 1) (Some id));
              Some id
  and first a = go a 32 None in
  first addr

(* Everything downstream of disassembly: pin analysis, row/link
   construction, mandatory transforms, pin assignment, entry, function
   identification.  Factored out of {!build} so the delta path
   ({!Delta}) can run the {e identical} code over an aggregate stitched
   from cached routine fragments — byte-identity of the incremental path
   rests on sharing this function, not reimplementing it. *)
let build_from_aggregate ?pin_config binary (aggregate : Agg.t) =
  let warnings = ref [] in
  List.iter (fun w -> warnings := w :: !warnings) aggregate.Agg.warnings;
  let pins =
    Obs.span "pins" (fun () -> Analysis.Ibt.compute ?config:pin_config binary aggregate)
  in
  Obs.span "irdb_build" (fun () ->
  let fixed_ranges = Agg.ambiguous_ranges aggregate in
  let data_ranges = data_ranges_of aggregate in
  (* Containment queries (fixed?/data?) run once per boundary and once per
     pin; interval sets make them O(log n) instead of a scan of the range
     list. *)
  let in_fixed = Iset.mem (Iset.of_ranges fixed_ranges) in
  let in_data = Iset.mem (Iset.of_ranges data_ranges) in
  let n_boundaries = Hashtbl.length aggregate.Agg.insn_at in
  let db = Db.create ~size_hint:n_boundaries ~orig:binary () in
  (* Bucket the decoded boundaries by text offset instead of sorting.
     Ascending address stays the canonical row order (ids independent of
     hash-table iteration order — the cache depends on cold builds being
     reproducible) at O(len) instead of O(n log n), and the offset-indexed
     id table hands the link pass its fallthrough successors and branch
     targets without by-address hash lookups. *)
  let base = aggregate.Agg.base and alen = aggregate.Agg.len in
  let slot = Array.make alen None in
  Hashtbl.iter (fun addr b -> slot.(addr - base) <- Some b) aggregate.Agg.insn_at;
  let ids = Array.make alen (-1) in
  for off = 0 to alen - 1 do
    match slot.(off) with
    | None -> ()
    | Some (insn, _len) ->
        let addr = base + off in
        let id = Db.add_insn ~orig_addr:addr db insn in
        ids.(off) <- id;
        (* Fixed rows keep original bytes; marking here folds the old
           whole-db sweep into row creation. *)
        if in_fixed addr then (Db.row db id).Db.fixed <- true
  done;
  (* Logical links, one pass over the same offset table. *)
  for off = 0 to alen - 1 do
    match slot.(off) with
    | None -> ()
    | Some (insn, len) ->
        let addr = base + off in
        let id = ids.(off) in
        (if falls_through insn then
           let nxt = off + len in
           match (if nxt < alen then ids.(nxt) else -1) with
           | -1 ->
               (* Falling into data or off the section: leave open. *)
               if not (in_data (addr + len)) then
                 warnings :=
                   Printf.sprintf "instruction at 0x%x falls through to unknown 0x%x" addr
                     (addr + len)
                   :: !warnings
           | ft -> Db.set_fallthrough db id (Some ft));
        (match Zvm.Insn.static_target ~at:addr insn with
        | Some tgt -> (
            let toff = tgt - base in
            match (if toff >= 0 && toff < alen then ids.(toff) else -1) with
            | -1 ->
                warnings :=
                  Printf.sprintf "branch at 0x%x targets unknown 0x%x" addr tgt :: !warnings
            | tid -> Db.set_target db id (Some tid))
        | None -> ())
  done;
  (* Mandatory transformations, before user transforms see the IR. *)
  Obs.span "mandatory" (fun () -> Mandatory.apply db);
  (* Pin assignment.  Pins that may be targeted by an indirect branch are
     marked (they receive the pin prologue, e.g. CFI landing bytes);
     conservative pins that only straight-line or direct control flow can
     reach are not. *)
  let indirect_reason = function
    | Analysis.Ibt.Data_scan | Analysis.Ibt.Code_immediate | Analysis.Ibt.Jump_table
    | Analysis.Ibt.Computed_target ->
        true
    | Analysis.Ibt.Entry | Analysis.Ibt.After_call | Analysis.Ibt.Fixed_target
    | Analysis.Ibt.Fixed_fallthrough ->
        false
  in
  Obs.span "pin_assign" (fun () ->
  List.iter
    (fun (addr, reasons) ->
      if List.exists indirect_reason reasons then Db.mark_pin db addr;
      if in_data addr then ()  (* data bytes are copied; nothing to pin *)
      else
        match Db.find_by_orig_addr db addr with
        | Some id -> Db.pin db id addr
        | None -> (
            if in_fixed addr then
              (* Inside fixed bytes but not on a decoded boundary: the
                 original bytes are preserved, so the address stays valid
                 without a reference. *)
              ()
            else
              match speculative_decode db binary warnings addr with
              | Some id -> Db.pin db id addr
              | None ->
                  warnings :=
                    Printf.sprintf "pin at 0x%x has no decodable instruction; dropped" addr
                    :: !warnings))
    (Analysis.Ibt.pins pins));
  (* Entry row. *)
  (match Db.find_by_orig_addr db binary.Zelf.Binary.entry with
  | Some id -> Db.set_entry db id
  | None -> warnings := "entry point is not a decoded instruction" :: !warnings);
  Obs.span "funcid" (fun () -> Analysis.Funcid.assign db);
  { db; aggregate; pins; fixed_ranges; data_ranges; warnings = List.rev !warnings })

let build ?pin_config ?(infer = false) binary =
  let aggregate = Obs.span "disasm" (fun () -> Agg.run ~infer binary) in
  build_from_aggregate ?pin_config binary aggregate

(* -- snapshot / restore: the payload behind Irdb.Cache -- *)

(* Bump whenever any serialized shape changes (including the embedded
   ZIRDB2 dump): the version participates in the cache key, so old
   entries become unreachable instead of misparsed. *)
let snapshot_version = "ZIRIR1"

(* The refinement pass's codec version.  It joins the fingerprint only
   when [--infer] is on, so every cache key (whole-binary snapshot,
   delta chunk, delta memo) gets a codec-version bump exactly then and
   stays byte-identical to previous releases otherwise. *)
let infer_codec_version = "ZIRINF1"

let fingerprint ?(infer = false) (config : Analysis.Ibt.config) =
  let base = Printf.sprintf "ibt:pin_after_calls=%b" config.Analysis.Ibt.pin_after_calls in
  if infer then Printf.sprintf "%s;infer=%s" base infer_codec_version else base

let reason_code = function
  | Analysis.Ibt.Entry -> 0
  | Analysis.Ibt.Data_scan -> 1
  | Analysis.Ibt.Code_immediate -> 2
  | Analysis.Ibt.Jump_table -> 3
  | Analysis.Ibt.After_call -> 4
  | Analysis.Ibt.Fixed_target -> 5
  | Analysis.Ibt.Fixed_fallthrough -> 6
  | Analysis.Ibt.Computed_target -> 7

let reason_of_code = function
  | 0 -> Some Analysis.Ibt.Entry
  | 1 -> Some Analysis.Ibt.Data_scan
  | 2 -> Some Analysis.Ibt.Code_immediate
  | 3 -> Some Analysis.Ibt.Jump_table
  | 4 -> Some Analysis.Ibt.After_call
  | 5 -> Some Analysis.Ibt.Fixed_target
  | 6 -> Some Analysis.Ibt.Fixed_fallthrough
  | 7 -> Some Analysis.Ibt.Computed_target
  | _ -> None

let verdict_char = function Agg.Code -> 'c' | Agg.Data -> 'd' | Agg.Ambiguous -> 'a'

let verdict_of_char = function
  | 'c' -> Some Agg.Code
  | 'd' -> Some Agg.Data
  | 'a' -> Some Agg.Ambiguous
  | _ -> None

let snapshot t =
  let agg = t.aggregate in
  let buf = Buffer.create (65536 + (Db.count t.db * 48)) in
  Buffer.add_string buf (snapshot_version ^ "\n");
  Buffer.add_string buf (Printf.sprintf "B %d %d\n" agg.Agg.base agg.Agg.len);
  (* Verdicts, run-length encoded: long uniform code/data stretches
     dominate real layouts. *)
  Buffer.add_string buf "V";
  let i = ref 0 in
  while !i < agg.Agg.len do
    let v = agg.Agg.verdicts.(!i) in
    let j = ref !i in
    while !j < agg.Agg.len && agg.Agg.verdicts.(!j) = v do incr j done;
    Buffer.add_string buf (Printf.sprintf " %c%d" (verdict_char v) (!j - !i));
    i := !j
  done;
  Buffer.add_char buf '\n';
  (* Decoded boundaries, ascending address (canonical, diff-friendly). *)
  let boundaries = Array.of_seq (Hashtbl.to_seq agg.Agg.insn_at) in
  Array.sort (fun (a, _) (b, _) -> compare a b) boundaries;
  Array.iter
    (fun (addr, (insn, len)) ->
      Buffer.add_string buf
        (Printf.sprintf "A %d %s %d\n" addr
           (Zipr_util.Hex.of_bytes (Zvm.Encode.to_bytes insn))
           len))
    boundaries;
  (* Aggregation tally (per-case byte counts) and refined-byte runs, so
     cache hits reproduce the same stats and refinement provenance as the
     cold build.  Absent in older payloads; restore then falls back to a
     verdict-derived tally. *)
  let ty = agg.Agg.tally in
  Buffer.add_string buf
    (Printf.sprintf "T %d %d %d %d %d %d %d %d\n" ty.Agg.case1_code ty.Agg.case1_data
       ty.Agg.case2_disagree ty.Agg.case3_contradict ty.Agg.case4_low_confidence
       ty.Agg.overlap_len_mismatch ty.Agg.refined_code ty.Agg.refined_data);
  List.iter
    (fun (fact, n) -> Buffer.add_string buf (Printf.sprintf "TF %s %d\n" fact n))
    ty.Agg.refined_by_fact;
  (* Refined offsets, run-length encoded per provenance tag. *)
  let rec emit_refined = function
    | [] -> ()
    | (off, tag) :: _ as entries ->
        let rec run n = function
          | (o, t) :: rest when o = off + n && t = tag -> run (n + 1) rest
          | rest -> (n, rest)
        in
        let n, rest = run 0 entries in
        Buffer.add_string buf (Printf.sprintf "R %d %d %s\n" off n tag);
        emit_refined rest
  in
  emit_refined agg.Agg.refined;
  (* Pin hints (resolved computed-jump targets); only present under
     [--infer], so older payloads and infer-off payloads never carry the
     record. *)
  (match agg.Agg.pin_hints with
  | [] -> ()
  | hints ->
      Buffer.add_string buf
        (Printf.sprintf "H %s\n" (String.concat "," (List.map string_of_int hints))));
  List.iter
    (fun w -> Buffer.add_string buf (Printf.sprintf "GW %s\n" (String.escaped w)))
    agg.Agg.warnings;
  List.iter
    (fun w -> Buffer.add_string buf (Printf.sprintf "W %s\n" (String.escaped w)))
    t.warnings;
  List.iter
    (fun (addr, reasons) ->
      Buffer.add_string buf
        (Printf.sprintf "P %d %s\n" addr
           (String.concat "," (List.map (fun r -> string_of_int (reason_code r)) reasons))))
    (Analysis.Ibt.pins t.pins);
  Buffer.add_string buf "DB\n";
  Buffer.add_string buf (Irdb.Dump.serialize_exact t.db);
  Buffer.contents buf

exception Restore of string

(* The "DB" line splits the snapshot: header records above, an embedded
   ZIRDB2 dump (parsed by its own codec) below. *)
let split_at_db_marker s =
  let n = String.length s in
  if n >= 3 && String.sub s 0 3 = "DB\n" then Some ("", String.sub s 3 (n - 3))
  else
    let rec go i =
      match String.index_from_opt s i '\n' with
      | None -> None
      | Some j ->
          if j + 3 < n && s.[j + 1] = 'D' && s.[j + 2] = 'B' && s.[j + 3] = '\n' then
            Some (String.sub s 0 (j + 1), String.sub s (j + 4) (n - j - 4))
          else go (j + 1)
    in
    go 0

let restore binary payload =
  try
    let header, dump =
      match split_at_db_marker payload with
      | Some parts -> parts
      | None -> raise (Restore "no DB section")
    in
    let base = ref 0 and len = ref (-1) in
    let verdicts = ref [||] in
    let insn_at = Hashtbl.create 1024 in
    let agg_warnings = ref [] in
    let ir_warnings = ref [] in
    let pin_list = ref [] in
    let tally = ref None in
    let fact_list = ref [] in
    let refined = ref [] in
    let pin_hints = ref [] in
    List.iteri
      (fun lineno line ->
        let fail msg = raise (Restore (Printf.sprintf "line %d: %s" (lineno + 1) msg)) in
        match String.split_on_char ' ' line with
        | [ "" ] | [] -> ()
        | [ v ] when v = snapshot_version -> if lineno <> 0 then fail "misplaced header"
        | [ v ] when String.length v >= 5 && String.sub v 0 5 = "ZIRIR" ->
            fail "snapshot version mismatch"
        | [ "B"; b; l ] ->
            base := int_of_string b;
            len := int_of_string l;
            verdicts := Array.make !len Agg.Data
        | "V" :: runs ->
            if !len < 0 then fail "V before B";
            let off = ref 0 in
            List.iter
              (fun tok ->
                if tok <> "" then begin
                  let v =
                    match verdict_of_char tok.[0] with
                    | Some v -> v
                    | None -> fail "bad verdict code"
                  in
                  let count = int_of_string (String.sub tok 1 (String.length tok - 1)) in
                  if !off + count > !len then fail "verdict run overflows section";
                  Array.fill !verdicts !off count v;
                  off := !off + count
                end)
              runs;
            if !off <> !len then fail "verdict runs do not cover section"
        | [ "A"; addr; hex; ilen ] -> (
            let bytes = Zipr_util.Hex.to_bytes hex in
            match Zvm.Decode.decode_bytes bytes ~pos:0 with
            | Error e ->
                fail
                  (Printf.sprintf "bad boundary instruction: %s"
                     (Zvm.Decode.error_to_string e))
            | Ok (insn, declen) ->
                if declen <> Bytes.length bytes then fail "trailing bytes in boundary";
                Hashtbl.replace insn_at (int_of_string addr) (insn, int_of_string ilen))
        | [ "T"; c1c; c1d; c2; c3; c4; ov; rc; rd ] ->
            tally :=
              Some
                {
                  Agg.case1_code = int_of_string c1c;
                  case1_data = int_of_string c1d;
                  case2_disagree = int_of_string c2;
                  case3_contradict = int_of_string c3;
                  case4_low_confidence = int_of_string c4;
                  overlap_len_mismatch = int_of_string ov;
                  refined_code = int_of_string rc;
                  refined_data = int_of_string rd;
                  refined_by_fact = [];
                }
        | [ "TF"; fact; n ] -> fact_list := (fact, int_of_string n) :: !fact_list
        | [ "H"; hints ] ->
            pin_hints := List.map int_of_string (String.split_on_char ',' hints)
        | [ "R"; off; n; tag ] ->
            let off = int_of_string off and n = int_of_string n in
            for i = n - 1 downto 0 do
              refined := (off + i, tag) :: !refined
            done
        | "GW" :: rest -> agg_warnings := Scanf.unescaped (String.concat " " rest) :: !agg_warnings
        | "W" :: rest -> ir_warnings := Scanf.unescaped (String.concat " " rest) :: !ir_warnings
        | [ "P"; addr; codes ] ->
            let reasons =
              List.map
                (fun c ->
                  match reason_of_code (int_of_string c) with
                  | Some r -> r
                  | None -> fail "bad pin reason code")
                (String.split_on_char ',' codes)
            in
            pin_list := (int_of_string addr, reasons) :: !pin_list
        | _ -> fail "unrecognized record")
      (String.split_on_char '\n' header);
    if !len < 0 then raise (Restore "missing B record");
    let aggregate =
      {
        Agg.base = !base;
        len = !len;
        verdicts = !verdicts;
        insn_at;
        warnings = List.rev !agg_warnings;
        tally =
          (match !tally with
          | Some t -> { t with Agg.refined_by_fact = List.rev !fact_list }
          (* Pre-tally payload: recover the agreement counts from the
             verdicts; the ambiguous-case split is unknowable. *)
          | None -> Agg.tally_of_verdicts !verdicts);
        refined = List.sort compare !refined;
        pin_hints = !pin_hints;
      }
    in
    match Irdb.Dump.deserialize_exact ~size_hint:(Hashtbl.length insn_at) ~orig:binary dump with
    | Error msg -> Error ("irdb: " ^ msg)
    | Ok db ->
        Ok
          {
            db;
            aggregate;
            pins = Analysis.Ibt.of_pins (List.rev !pin_list);
            (* Pure functions of the verdicts; cheaper to recompute than
               to persist and cross-check. *)
            fixed_ranges = Agg.ambiguous_ranges aggregate;
            data_ranges = data_ranges_of aggregate;
            warnings = List.rev !ir_warnings;
          }
  with
  | Restore msg -> Error msg
  | Scanf.Scan_failure msg -> Error msg
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg
