(** Domain-parallel IR construction for a single binary.

    Runs one fresh recursive traversal, tiles the text at that
    traversal's instruction starts and gap bytes, and fans the chunks
    out over worker domains as pure validation tasks (per-chunk linear
    framing checked bidirectionally against the traversal).  When every
    chunk validates, the merged claims provably coincide with the
    traversal, so the aggregate is materialized from it directly and
    fed to the same sorted-boundary IR build as the cold path — equal
    output by construction (DESIGN.md §14).  Returns [None] when any
    chunk fails to validate; the caller then falls back to
    {!Ir_construction.build}, so unsupported binaries are slow, never
    wrong. *)

val build :
  jobs:int ->
  pin_config:Analysis.Ibt.config ->
  ?infer:bool ->
  Zelf.Binary.t ->
  Ir_construction.t option
(** Build the IR with up to [jobs] worker domains ([jobs] is clamped to
    the host core count and the chunk count; [jobs <= 1] runs the
    chunked path inline).  The result — verdicts, pins, row order, and
    therefore the rewritten bytes — is independent of [jobs] and
    identical to the serial cold build.  With [~infer:true] (default
    false) the materialized aggregate carries the inference pass's pin
    hints, recomputed over the validated traversal
    ({!Stitch.of_recursive}); a validated tiling has no ambiguity, so
    this coincides with the cold build under [--infer]. *)
