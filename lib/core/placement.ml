type ctx = {
  space : Memspace.t;
  rng : Zipr_util.Rng.t;
  pinned_page : int -> bool;
}

type request = { size : int; referent : int option; min_prefix : int }

type decision = Place_at of int | Place_split of { addr : int; capacity : int }

type t = {
  name : string;
  decide : ctx -> request -> decision;
  colocate_at_pin : bool;
  prefer_short_pins : bool;
}

let naive =
  {
    name = "naive";
    decide = (fun ctx req -> Place_at (Memspace.alloc_first ctx.space ~size:req.size));
    colocate_at_pin = false;
    prefer_short_pins = false;
  }

let page_size = 4096

(* Smallest fragment the optimized layout will split a dollop into. *)
let min_split_capacity = 64

(* First free text gap whose leading pinned-page portion holds [size]
   bytes.  Scans gaps in ascending order and stops at the first match —
   no gap list is materialized. *)
let first_pinned_page_gap ctx ~size =
  Memspace.find_text_gap ctx.space ~f:(fun glo ghi ->
      (* Clip the gap to its pinned-page portions; take the first such
         portion big enough to be useful. *)
      let rec first_pinned_run a =
        if a >= ghi then None
        else
          let page = a / page_size in
          if ctx.pinned_page page then Some (a, min ghi ((page + 1) * page_size))
          else first_pinned_run ((page + 1) * page_size)
      in
      match first_pinned_run glo with
      | Some (lo, hi) when hi - lo >= size -> Some lo
      | _ -> None)

let optimized =
  let decide ctx req =
    (* 1. Within short-jump range of the referent, so the 2-byte reference
       survives relaxation. *)
    let near_referent () =
      match req.referent with
      | None -> None
      | Some site ->
          (* The short jump's displacement is relative to site+2. *)
          Memspace.alloc_in_window ctx.space ~lo:(site + 2 - 128) ~hi:(site + 2 + 127 + req.size)
            ~size:req.size
    in
    (* 2. A gap on a page that already contains pinned addresses. *)
    let on_pinned_page () =
      match first_pinned_page_gap ctx ~size:req.size with
      | Some lo -> Memspace.alloc_in_window ctx.space ~lo ~hi:(lo + req.size) ~size:req.size
      | None -> None
    in
    (* 3. Anywhere in the original text span. *)
    let in_text () = Memspace.alloc_text_first ctx.space ~size:req.size in
    (* 4. Split to fill the largest text fragment rather than spill whole.
       Fragments below [min_split_capacity] are not worth a 5-byte
       connector per piece and are left unused — which is exactly the
       pathological behaviour the paper reports when a CB's pinned
       addresses shatter the address space into small fragments under
       large dollops (§IV-B, the Figure-6 outlier). *)
    let split () =
      match Memspace.largest_text_gap ctx.space with
      | Some (lo, hi) when hi - lo >= max req.min_prefix min_split_capacity ->
          let capacity = hi - lo in
          (match Memspace.alloc_in_window ctx.space ~lo ~hi ~size:capacity with
          | Some addr -> Some (Place_split { addr; capacity })
          | None -> None)
      | _ -> None
    in
    (* Which tier won is the shape of the layout; tally it so a trace
       shows the near/pinned/text/split/overflow mix per run. *)
    match near_referent () with
    | Some a ->
        Obs.count "placement.near_referent" 1;
        Place_at a
    | None -> (
        match on_pinned_page () with
        | Some a ->
            Obs.count "placement.pinned_page" 1;
            Place_at a
        | None -> (
            match in_text () with
            | Some a ->
                Obs.count "placement.text" 1;
                Place_at a
            | None -> (
                match split () with
                | Some d ->
                    Obs.count "placement.split" 1;
                    d
                | None ->
                    Obs.count "placement.overflow" 1;
                    Place_at (Memspace.alloc_overflow ctx.space ~size:req.size))))
  in
  { name = "optimized"; decide; colocate_at_pin = true; prefer_short_pins = true }

let random =
  let decide ctx req =
    match Memspace.alloc_random_text ctx.space ~rng:ctx.rng ~size:req.size with
    | Some a -> Place_at a
    | None -> Place_at (Memspace.alloc_overflow ctx.space ~size:req.size)
  in
  { name = "random"; decide; colocate_at_pin = false; prefer_short_pins = false }

let all = [ naive; optimized; random ]

let by_name n = List.find_opt (fun t -> t.name = n) all

let names = List.map (fun t -> t.name) all
