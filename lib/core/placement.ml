type ctx = {
  space : Memspace.t;
  rng : Zipr_util.Rng.t;
  pinned_page : int -> bool;
  tally : Cost.tally;
}

type request = { size : int; referent : int option; min_prefix : int }

type decision = Place_at of int | Place_split of { addr : int; capacity : int }

type t = {
  name : string;
  decide : ctx -> request -> decision;
  colocate_at_pin : bool;
  prefer_short_pins : bool;
  weights : Cost.weights option;
}

let naive =
  {
    name = "naive";
    decide = (fun ctx req -> Place_at (Memspace.alloc_first ctx.space ~size:req.size));
    colocate_at_pin = false;
    prefer_short_pins = false;
    weights = None;
  }

let page_size = 4096

(* Smallest fragment the optimized layout will split a dollop into. *)
let min_split_capacity = 64

(* First free text gap whose leading pinned-page portion holds [size]
   bytes.  Scans gaps in ascending order and stops at the first match —
   no gap list is materialized. *)
let first_pinned_page_gap ctx ~size =
  Memspace.find_text_gap ctx.space ~f:(fun glo ghi ->
      (* Clip the gap to its pinned-page portions; take the first such
         portion big enough to be useful. *)
      let rec first_pinned_run a =
        if a >= ghi then None
        else
          let page = a / page_size in
          if ctx.pinned_page page then Some (a, min ghi ((page + 1) * page_size))
          else first_pinned_run ((page + 1) * page_size)
      in
      match first_pinned_run glo with
      | Some (lo, hi) when hi - lo >= size -> Some lo
      | _ -> None)

let optimized =
  let decide ctx req =
    (* 1. Within short-jump range of the referent, so the 2-byte reference
       survives relaxation. *)
    let near_referent () =
      match req.referent with
      | None -> None
      | Some site ->
          (* The short jump's displacement is relative to site+2. *)
          Memspace.alloc_in_window ctx.space ~lo:(site + 2 - 128) ~hi:(site + 2 + 127 + req.size)
            ~size:req.size
    in
    (* 2. A gap on a page that already contains pinned addresses. *)
    let on_pinned_page () =
      match first_pinned_page_gap ctx ~size:req.size with
      | Some lo -> Memspace.alloc_in_window ctx.space ~lo ~hi:(lo + req.size) ~size:req.size
      | None -> None
    in
    (* 3. Anywhere in the original text span. *)
    let in_text () = Memspace.alloc_text_first ctx.space ~size:req.size in
    (* 4. Split to fill the largest text fragment rather than spill whole.
       Fragments below [min_split_capacity] are not worth a 5-byte
       connector per piece and are left unused — which is exactly the
       pathological behaviour the paper reports when a CB's pinned
       addresses shatter the address space into small fragments under
       large dollops (§IV-B, the Figure-6 outlier). *)
    let split () =
      match Memspace.largest_text_gap ctx.space with
      | Some (lo, hi) when hi - lo >= max req.min_prefix min_split_capacity ->
          let capacity = hi - lo in
          (match Memspace.alloc_in_window ctx.space ~lo ~hi ~size:capacity with
          | Some addr -> Some (Place_split { addr; capacity })
          | None -> None)
      | _ -> None
    in
    (* Which tier won is the shape of the layout; tally it so a trace
       shows the near/pinned/text/split/overflow mix per run. *)
    match near_referent () with
    | Some a ->
        Obs.count "placement.near_referent" 1;
        Place_at a
    | None -> (
        match on_pinned_page () with
        | Some a ->
            Obs.count "placement.pinned_page" 1;
            Place_at a
        | None -> (
            match in_text () with
            | Some a ->
                Obs.count "placement.text" 1;
                Place_at a
            | None -> (
                match split () with
                | Some d ->
                    Obs.count "placement.split" 1;
                    d
                | None ->
                    Obs.count "placement.overflow" 1;
                    Place_at (Memspace.alloc_overflow ctx.space ~size:req.size))))
  in
  {
    name = "optimized";
    decide;
    colocate_at_pin = true;
    prefer_short_pins = true;
    weights = None;
  }

let random =
  let decide ctx req =
    match Memspace.alloc_random_text ctx.space ~rng:ctx.rng ~size:req.size with
    | Some a -> Place_at a
    | None -> Place_at (Memspace.alloc_overflow ctx.space ~size:req.size)
  in
  {
    name = "random";
    decide;
    colocate_at_pin = false;
    prefer_short_pins = false;
    weights = None;
  }

(* -- search: beam / simulated-annealing over an explicit cost model -- *)

type search_knobs = {
  weights : Cost.weights;
  budget : int;
  beam : int;
  anneal_gaps : int;
  epsilon : float;
}

let default_search_knobs =
  { weights = Cost.default_weights; budget = 16; beam = 4; anneal_gaps = 96; epsilon = 0.0 }

(* A candidate decision, not yet committed: [Whole] reserves [req.size]
   at [addr]; [Split] reserves the whole fragment.  [gap] carries the
   free interval the candidate sits in when the enumerator knows it
   (text-gap probes do), sparing the lookahead a containment query. *)
type cand = { addr : int; split_capacity : int option; gap : (int * int) option }

let whole ?gap addr = { addr; split_capacity = None; gap }

(* Immediate cost a candidate adds, from the decision alone: does the
   referent's 2-byte slot survive, does the dollop spill past text, does
   a split buy a connector hop, which touched pages hold no pin. *)
let immediate_cost (w : Cost.weights) ctx req ~overflow_base c =
  let size = match c.split_capacity with Some cap -> cap | None -> req.size in
  let relax =
    match req.referent with
    | Some site ->
        let disp = c.addr - (site + 2) in
        if disp >= -128 && disp <= 127 then 0.0 else w.Cost.w_relaxations
    | None -> 0.0
  in
  let overflow =
    if c.addr >= overflow_base then w.Cost.w_overflow_bytes *. float_of_int size else 0.0
  in
  let split = match c.split_capacity with Some _ -> w.Cost.w_chain_hops | None -> 0.0 in
  let pages =
    let p0 = c.addr / page_size and p1 = (c.addr + size - 1) / page_size in
    let misses = ref 0 in
    for p = p0 to p1 do
      if not (ctx.pinned_page p) then incr misses
    done;
    w.Cost.w_page_misses *. float_of_int !misses
  in
  relax +. overflow +. split +. pages

(* Lookahead: slivers a candidate would shave off its gap.  A leftover
   below [dead_sliver] on either side is dead space — too small to hold
   even a tiny dollop plus its connector — and dead text bytes push
   future code to overflow one-for-one, so they are charged at the
   overflow rate.  (Larger leftovers are NOT waste: they still admit
   whole placements of small dollops, which most dollops are.)  This is
   the term that turns first-fit into best-fit: among gaps that all
   fit, the one leaving no unusable sliver wins. *)
let dead_sliver = 8

(* The best-fit pressure: leftover bytes big enough to stay useful are
   still charged a whisper (half a byte per KiB), so among gaps that all
   fit, the tightest wins.  Kept strictly below [w_relaxations] for any
   plausible gap so tightness never outbids keeping a reference short —
   it only orders otherwise-tied choices, which is what stops a random
   walk from shaving medium pieces off the large gaps that later large
   dollops will need. *)
let tightness = 1.0 /. 2048.0

let waste_cost (w : Cost.weights) ctx ~overflow_base req c =
  match c.split_capacity with
  | Some _ -> 0.0 (* a split consumes its fragment exactly *)
  | None ->
      if c.addr >= overflow_base then 0.0
      else
        let gap =
          match c.gap with Some g -> Some g | None -> Memspace.free_gap_at ctx.space c.addr
        in
        (match gap with
        | None -> 0.0
        | Some (glo, ghi) ->
            let left = c.addr - glo and right = ghi - (c.addr + req.size) in
            let sliver x = if x > 0 && x < dead_sliver then x else 0 in
            let usable x = if x >= dead_sliver then x else 0 in
            (w.Cost.w_overflow_bytes *. float_of_int (sliver left + sliver right))
            +. (tightness *. float_of_int (usable left + usable right)))

let full_cost w ctx ~overflow_base req c =
  immediate_cost w ctx req ~overflow_base c +. waste_cost w ctx ~overflow_base req c

let commit ctx req c =
  match c.split_capacity with
  | None ->
      ignore (Memspace.take_at ctx.space ~addr:c.addr ~size:req.size);
      Place_at c.addr
  | Some capacity ->
      ignore (Memspace.take_at ctx.space ~addr:c.addr ~size:capacity);
      Place_split { addr = c.addr; capacity }

(* The split candidate: fill the largest text fragment instead of
   spilling whole.  Unlike the optimized tier's [min_split_capacity]
   floor, any fragment that can hold a useful prefix ([min_prefix]:
   first instruction + connector) is offered — the cost model already
   charges [w_chain_hops] per split, so small fragments are used exactly
   when the connector is cheaper than the overflow bytes it saves.
   This is where search beats the greedy allocator on shattered address
   spaces: the 8-63 byte fragments optimized writes off as unusable.
   Only meaningful when the fragment is genuinely smaller than the
   dollop (otherwise a whole candidate covers it). *)
let split_cand req space =
  match Memspace.largest_text_gap space with
  | Some (lo, hi) when hi - lo >= req.min_prefix && hi - lo < req.size ->
      Some { addr = lo; split_capacity = Some (hi - lo); gap = Some (lo, hi) }
  | _ -> None

(* Enumeration + two-stage beam: stage 1 ranks every candidate by its
   immediate cost (cheap, no extra tree queries); the [beam] survivors
   are re-scored with the fragmentation lookahead and the minimum wins.
   With [epsilon > 0] the final pick diversifies uniformly over the
   beam with that probability — the diversity-vs-overhead dial. *)
let search_beam knobs ctx req ~overflow_base =
  let w = knobs.weights in
  let space = ctx.space in
  let near =
    match req.referent with
    | None -> None
    | Some site ->
        Memspace.probe_in_window space ~lo:(site + 2 - 128) ~hi:(site + 2 + 127 + req.size)
          ~size:req.size
        |> Option.map (fun a -> whole a)
  in
  let pinned = Option.map (fun a -> whole a) (first_pinned_page_gap ctx ~size:req.size) in
  let text =
    List.map
      (fun (glo, ghi) -> whole ~gap:(glo, ghi) glo)
      (Memspace.probe_text_fits space ~size:req.size ~budget:knobs.budget)
  in
  let split = split_cand req space in
  let spill = whole (Memspace.probe_overflow space ~size:req.size) in
  let cands =
    List.filter_map Fun.id [ near; pinned ] @ text @ Option.to_list split @ [ spill ]
  in
  ctx.tally.Cost.iterations <- ctx.tally.Cost.iterations + List.length cands;
  (* Stage 1 is the free part of the score: immediate cost, plus the
     fragmentation lookahead for candidates that carry their gap (the
     text probes do — no tree query needed).  Stage 2 completes the
     beam's survivors with the lookahead that does cost a query
     ([free_gap_at] for near/pinned candidates). *)
  let scored =
    List.map
      (fun c ->
        let s = immediate_cost w ctx req ~overflow_base c in
        let s = if c.gap = None then s else s +. waste_cost w ctx ~overflow_base req c in
        (s, c))
      cands
    |> List.stable_sort (fun (sa, ca) (sb, cb) ->
           match Float.compare sa sb with 0 -> compare ca.addr cb.addr | n -> n)
  in
  let beam = List.filteri (fun i _ -> i < max 1 knobs.beam) scored in
  let rescored =
    List.map
      (fun (s, c) ->
        if c.gap = None then (s +. waste_cost w ctx ~overflow_base req c, c) else (s, c))
      beam
  in
  let best =
    List.fold_left
      (fun acc (s, c) ->
        match acc with
        | None -> Some (s, c)
        | Some (bs, bc) ->
            if s < bs || (s = bs && c.addr < bc.addr) then begin
              ctx.tally.Cost.accepted <- ctx.tally.Cost.accepted + 1;
              Some (s, c)
            end
            else begin
              ctx.tally.Cost.rejected <- ctx.tally.Cost.rejected + 1;
              Some (bs, bc)
            end)
      None rescored
  in
  let _, chosen = Option.get best in
  let chosen =
    if knobs.epsilon > 0.0 && Zipr_util.Rng.chance ctx.rng knobs.epsilon then
      snd (List.nth rescored (Zipr_util.Rng.int ctx.rng (List.length rescored)))
    else chosen
  in
  chosen

(* Annealing fallback for shattered address spaces: when the text span
   holds more gaps than enumeration should scan per decision, sample
   random fitting gaps from the deterministic per-run stream and walk
   them under a geometric temperature schedule.  The walk may move
   uphill (escaping first-fit-shaped local minima); the best candidate
   ever seen is what gets committed. *)
let anneal_t0 = 32.0
let anneal_decay = 0.85

let search_anneal knobs ctx req ~overflow_base =
  let w = knobs.weights in
  let space = ctx.space in
  let score c = full_cost w ctx ~overflow_base req c in
  let seeds =
    let near =
      match req.referent with
      | None -> None
      | Some site ->
          Memspace.probe_in_window space ~lo:(site + 2 - 128) ~hi:(site + 2 + 127 + req.size)
            ~size:req.size
          |> Option.map (fun a -> whole a)
    in
    let pinned = Option.map (fun a -> whole a) (first_pinned_page_gap ctx ~size:req.size) in
    let spill = whole (Memspace.probe_overflow space ~size:req.size) in
    List.filter_map Fun.id [ near; pinned ] @ [ spill ]
  in
  let scored_seeds = List.map (fun c -> (score c, c)) seeds in
  ctx.tally.Cost.iterations <- ctx.tally.Cost.iterations + List.length seeds;
  let best =
    List.fold_left (fun (bs, bc) (s, c) -> if s < bs then (s, c) else (bs, bc))
      (List.hd scored_seeds) (List.tl scored_seeds)
  in
  let cur = ref best and best = ref best in
  let temp = ref anneal_t0 in
  (for _ = 1 to max 0 knobs.budget do
     match Memspace.probe_random_text space ~rng:ctx.rng ~size:req.size with
     | None -> ()
     | Some (glo, ghi) ->
         let c = whole ~gap:(glo, ghi) glo in
         let s = score c in
         ctx.tally.Cost.iterations <- ctx.tally.Cost.iterations + 1;
         let delta = s -. fst !cur in
         let accept =
           delta < 0.0
           || (!temp > 0.0 && Zipr_util.Rng.chance ctx.rng (Float.exp (-.delta /. !temp)))
         in
         if accept then begin
           ctx.tally.Cost.accepted <- ctx.tally.Cost.accepted + 1;
           cur := (s, c);
           if s < fst !best then best := (s, c)
         end
         else ctx.tally.Cost.rejected <- ctx.tally.Cost.rejected + 1;
         temp := !temp *. anneal_decay
   done);
  (* A split can still beat the best whole candidate (typically when
     everything whole spills) — offer it the same way enumeration does. *)
  match split_cand req space with
  | Some c when score c < fst !best -> c
  | _ -> snd !best

let search ?(knobs = default_search_knobs) () =
  let decide ctx req =
    Obs.span "placement:search" (fun () ->
        let overflow_base = Memspace.overflow_base ctx.space in
        let it0 = ctx.tally.Cost.iterations
        and ac0 = ctx.tally.Cost.accepted
        and rj0 = ctx.tally.Cost.rejected in
        let chosen =
          if Memspace.text_gap_count ctx.space > knobs.anneal_gaps then
            search_anneal knobs ctx req ~overflow_base
          else search_beam knobs ctx req ~overflow_base
        in
        Obs.count "placement.search.iterations" (ctx.tally.Cost.iterations - it0);
        Obs.count "placement.search.accepted" (ctx.tally.Cost.accepted - ac0);
        Obs.count "placement.search.rejected" (ctx.tally.Cost.rejected - rj0);
        commit ctx req chosen)
  in
  {
    name = "search";
    decide;
    colocate_at_pin = true;
    prefer_short_pins = true;
    weights = Some knobs.weights;
  }

let all = [ naive; optimized; random; search () ]

let by_name n = List.find_opt (fun t -> t.name = n) all

let names = List.map (fun t -> t.name) all

let resolve ?budget ?epsilon ?weights_spec name =
  match by_name name with
  | None ->
      Error
        (Printf.sprintf "unknown placement strategy %S (expected one of: %s)" name
           (String.concat ", " names))
  | Some s when s.name <> "search" -> Ok s
  | Some _ -> (
      match Cost.weights_of_spec (Option.value weights_spec ~default:"") with
      | Error e -> Error (Printf.sprintf "bad placement weights: %s" e)
      | Ok weights ->
          let k = default_search_knobs in
          let budget = Option.value budget ~default:k.budget in
          if budget < 1 then Error "placement budget must be >= 1"
          else
            let epsilon = Option.value epsilon ~default:k.epsilon in
            if epsilon < 0.0 || epsilon > 1.0 then
              Error "placement epsilon must be in [0, 1]"
            else Ok (search ~knobs:{ k with weights; budget; epsilon } ()))
