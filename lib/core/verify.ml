module Db = Irdb.Db

type issue = { check : string; detail : string }

type report = { issues : issue list; checks_run : int }

let ok r = r.issues = []

let pp_report ppf r =
  if ok r then Format.fprintf ppf "verify: %d checks, all passed" r.checks_run
  else begin
    Format.fprintf ppf "verify: %d checks, %d issues:@." r.checks_run (List.length r.issues);
    List.iter (fun i -> Format.fprintf ppf "  [%s] %s@." i.check i.detail) r.issues
  end

type ctx = { mutable issues : issue list; mutable checks : int }

let check ctx name cond fmt =
  ctx.checks <- ctx.checks + 1;
  Format.kasprintf
    (fun detail -> if not cond then ctx.issues <- { check = name; detail } :: ctx.issues)
    fmt

let code_sections binary =
  List.filter Zelf.Section.is_code binary.Zelf.Binary.sections

let in_code binary addr =
  List.exists (fun s -> Zelf.Section.contains s addr) (code_sections binary)

let decodes binary addr =
  let fetch a = Zelf.Binary.read8 binary a in
  match Zvm.Decode.decode ~fetch addr with Ok (i, _) -> Some i | Error _ -> None

(* Follow a reference jump (with possible chaining) to its final
   destination; returns None on a malformed path. *)
let rec follow binary addr budget =
  if budget = 0 then None
  else
    match decodes binary addr with
    | Some (Zvm.Insn.Jmp (w, disp)) ->
        let next = addr + Zvm.Insn.size (Zvm.Insn.Jmp (w, disp)) + disp in
        if in_code binary next then
          match decodes binary next with
          | Some (Zvm.Insn.Jmp _) -> follow binary next (budget - 1)
          | Some _ -> Some next
          | None -> None
        else None
    | Some _ -> Some addr
    | None -> None

(* Walk a sled from one of its entries: a chain of push-immediates and
   no-op-equivalent filler must reach the 5-byte dispatch jump, and that
   jump must land on decodable code (§II-C2).  Returns an error message
   on any malformed step. *)
let sled_walk binary entry =
  let rec go addr budget =
    if budget = 0 then Error (Printf.sprintf "walk from 0x%x does not terminate" entry)
    else
      match decodes binary addr with
      | Some (Zvm.Insn.Jmp _) -> (
          match follow binary addr 32 with
          | Some final when in_code binary final -> Ok final
          | Some final -> Error (Printf.sprintf "dispatch lands outside code (0x%x)" final)
          | None -> Error (Printf.sprintf "dispatch jump at 0x%x lands on junk" addr))
      | Some ((Zvm.Insn.Pushi _ | Zvm.Insn.Nop | Zvm.Insn.Land | Zvm.Insn.Retland) as i) ->
          go (addr + Zvm.Insn.size i) (budget - 1)
      | Some i ->
          Error (Printf.sprintf "unexpected %s inside sled at 0x%x" (Zvm.Insn.to_string i) addr)
      | None -> Error (Printf.sprintf "undecodable sled byte at 0x%x" addr)
  in
  go entry 64

let structural ~orig ~(ir : Ir_construction.t) ~rewritten =
  let ctx = { issues = []; checks = 0 } in
  (* 1. Serialization roundtrip. *)
  (match Zelf.Binary.parse (Zelf.Binary.serialize rewritten) with
  | Ok _ -> check ctx "roundtrip" true ""
  | Error e ->
      check ctx "roundtrip" false "rewritten binary does not reparse: %a"
        Zelf.Binary.pp_parse_error e);
  (* 2. Entry point preserved. *)
  check ctx "entry" (rewritten.Zelf.Binary.entry = orig.Zelf.Binary.entry)
    "entry moved from 0x%x to 0x%x" orig.Zelf.Binary.entry rewritten.Zelf.Binary.entry;
  (* 3. Original non-text sections survive byte-for-byte. *)
  List.iter
    (fun (s : Zelf.Section.t) ->
      if not (Zelf.Section.is_code s) then
        match Zelf.Binary.find_section rewritten s.Zelf.Section.name with
        | None ->
            check ctx "data-segment" false "section %s missing from output" s.Zelf.Section.name
        | Some s' ->
            check ctx "data-segment"
              (s'.Zelf.Section.vaddr = s.Zelf.Section.vaddr
              && s'.Zelf.Section.data = s.Zelf.Section.data)
              "section %s was modified" s.Zelf.Section.name)
    orig.Zelf.Binary.sections;
  (* 4. Fixed and data-in-text ranges byte-identical. *)
  let byte_equal (lo, hi) =
    let rec go a = a >= hi || (Zelf.Binary.read8 orig a = Zelf.Binary.read8 rewritten a && go (a + 1)) in
    go lo
  in
  List.iter
    (fun range ->
      check ctx "fixed-range" (byte_equal range) "fixed range [0x%x,0x%x) changed" (fst range)
        (snd range))
    ir.Ir_construction.fixed_ranges;
  List.iter
    (fun range ->
      check ctx "data-in-text" (byte_equal range) "data range [0x%x,0x%x) changed" (fst range)
        (snd range))
    ir.Ir_construction.data_ranges;
  (* 5. Every movable pin decodes and its reference path stays in code. *)
  let db = ir.Ir_construction.db in
  let prologue_len =
    List.fold_left (fun acc i -> acc + Zvm.Insn.size i) 0 (Db.pin_prologue db)
  in
  List.iter
    (fun (addr, rid) ->
      let movable = match Db.row db rid with r -> not r.Db.fixed | exception Not_found -> false in
      if movable then begin
        (match decodes rewritten addr with
        | None -> check ctx "pin-decodes" false "pinned address 0x%x does not decode" addr
        | Some insn ->
            check ctx "pin-decodes" true "";
            (* Skip the prologue if the pin is marked and carries one. *)
            let ref_at =
              if Db.pin_is_marked db addr && prologue_len > 0 then addr + prologue_len else addr
            in
            let entry_insn = if ref_at = addr then Some insn else decodes rewritten ref_at in
            match entry_insn with
            | Some (Zvm.Insn.Jmp _) -> (
                match follow rewritten ref_at 32 with
                | Some final ->
                    check ctx "pin-reference" (in_code rewritten final)
                      "pin 0x%x resolves outside code (0x%x)" addr final
                | None ->
                    check ctx "pin-reference" false "pin 0x%x has an unfollowable reference" addr)
            | Some (Zvm.Insn.Pushi v) when
                (match (Db.row db rid).Db.insn with
                 | Zvm.Insn.Pushi v' -> v' <> v
                 | _ -> true) -> (
                (* Sled entry (the pinned row's own instruction is not this
                   push, so the push must be sled bytes): walk the sled to
                   its dispatch jump and check where dispatch lands. *)
                match sled_walk rewritten ref_at with
                | Ok _ -> check ctx "sled-dispatch" true ""
                | Error msg -> check ctx "sled-dispatch" false "pin 0x%x: %s" addr msg)
            | Some (Zvm.Insn.Pushi _) ->
                (* Colocated: the pinned push-immediate itself sits here. *)
                check ctx "pin-reference" true ""
            | Some _ ->
                (* Colocated: the pinned instruction itself sits here. *)
                check ctx "pin-reference" true ""
            | None -> check ctx "pin-reference" false "pin 0x%x prologue leads nowhere" addr)
      end)
    (Db.pinned_addresses db);
  (* 6. The rewritten entry decodes. *)
  check ctx "entry-decodes" (decodes rewritten rewritten.Zelf.Binary.entry <> None)
    "entry 0x%x does not decode" rewritten.Zelf.Binary.entry;
  { issues = List.rev ctx.issues; checks_run = ctx.checks }

type exec = {
  stop : Zvm.Vm.stop;
  output : string;
  syscalls : int list;
  insns : int;
}

let execute ?fuel binary ~input =
  let vm = Zelf.Image.vm_of binary ~input in
  let syscalls = ref [] in
  let on_step ~pc:_ insn =
    match insn with Zvm.Insn.Sys n -> syscalls := n :: !syscalls | _ -> ()
  in
  let r = Zvm.Vm.run ?fuel ~on_step vm in
  {
    stop = r.Zvm.Vm.stop;
    output = r.Zvm.Vm.output;
    syscalls = List.rev !syscalls;
    insns = r.Zvm.Vm.insns;
  }

let transcripts ?fuel ~orig ~rewritten inputs =
  let ctx = { issues = []; checks = 0 } in
  List.iter
    (fun input ->
      let a = execute ?fuel orig ~input in
      let b = execute ?fuel rewritten ~input in
      check ctx "transcript"
        (a.output = b.output && Zvm.Vm.equal_stop a.stop b.stop)
        "divergence on %S: %s %S vs %s %S" input
        (Zvm.Vm.stop_to_string a.stop)
        a.output
        (Zvm.Vm.stop_to_string b.stop)
        b.output;
      check ctx "syscall-trace"
        (a.syscalls = b.syscalls)
        "syscall sequences differ on %S: [%s] vs [%s]" input
        (String.concat ";" (List.map string_of_int a.syscalls))
        (String.concat ";" (List.map string_of_int b.syscalls)))
    inputs;
  { issues = List.rev ctx.issues; checks_run = ctx.checks }

let full ?fuel ?(inputs = [ "" ]) ~orig ~ir ~rewritten () =
  let s = structural ~orig ~ir ~rewritten in
  let t = transcripts ?fuel ~orig ~rewritten inputs in
  { issues = s.issues @ t.issues; checks_run = s.checks_run + t.checks_run }
