(* Routine-granular incremental IR construction (the "delta" path).

   The cold pipeline rebuilds the whole IR from scratch for every input,
   even when consecutive inputs are near-identical versions of one
   program.  This module caches IR at two granularities and composes the
   pieces into a full {!Ir_construction.t}:

   - {e Level 1 — routine fragments.}  {!Disasm.Chunker} cuts the text at
     routine boundaries; for each chunk whose disassembly aggregation was
     conclusive (no ambiguous byte, no instruction crossing a cut) we
     store its instruction boundaries, keyed by a digest of the chunk
     bytes, the 6-byte suffix, and the chunk-relative inbound-reference
     fingerprint.  A changed caller whose references into a callee are
     unchanged leaves the callee's key — and cached entry — intact.

   - {e Level 0 — assembled-IR memo.}  The finished pristine
     [Ir_construction.t] for a whole binary, keyed by everything.  A hit
     pays one {!Irdb.Db.copy}; this is what makes fully-warm repeat
     rewrites (fuzzing loops, corpus re-runs) nearly free.

   Byte-identity with the cold path is by construction, not by luck:

   - the stitched aggregate is only used when {e every} chunk passes a
     validation that makes it provably equal to what {!Disasm.Aggregate.run}
     would produce.  A fresh (cheap) recursive traversal is compared
     bidirectionally against the stitched boundaries: every boundary must
     be a recursive instruction with identical framing, every recursive
     byte must be covered by a boundary, every gap byte unreached.  Under
     those conditions the three cold sources are fully determined: linear
     framing inside each chunk is a pure function of the key material
     (the sweep enters each chunk at its base by induction over the
     validated tiling), and the superset source abstains everywhere
     recursive traversal reached and claims [Data] exactly on the
     undecodable gap bytes.  So verdicts, boundaries and (absence of)
     warnings coincide with the cold aggregate's.

   - the stitched aggregate then flows through the {e same}
     {!Ir_construction.build_from_aggregate} as a cold build.

   - any validation failure abandons the stitch and reports a miss; the
     caller falls back to the cold path (and harvests it), so a binary
     the scheme cannot prove clean is merely slow, never wrong. *)

module Db = Irdb.Db
module Agg = Disasm.Aggregate
module Chunker = Disasm.Chunker
module Rcache = Irdb.Rcache

let codec_version = "ZIRDL1"

type fragment = Stitch.fragment = { boundaries : (int * Zvm.Insn.t * int) array }
(* (chunk-relative start, instruction, encoded length), ascending,
   non-overlapping, within the chunk.  The framing/validation machinery
   lives in {!Stitch}, shared with the parallel IR builder. *)

type t = {
  fragments : fragment Rcache.t;
  memo : (Ir_construction.t * int) Rcache.t;
      (* pristine IR + its chunk count (so a memo hit can report
         routine-level hit counters without re-running the chunker) *)
}

type key_set = {
  binary : Zelf.Binary.t;
  memo_key : string;
  scan_keys : (Chunker.t * string array) Lazy.t;
      (* the chunker scan and per-chunk keys cost a full decode pass
         plus one digest per chunk — a whole-IR memo hit skips both *)
}

type outcome = {
  ir : Ir_construction.t option;
  routine_hits : int;
  routine_misses : int;
  delta_built : bool;
  keys : key_set;
}

(* ---------- fragment disk codec ---------- *)

let hex_of_bytes b =
  let n = Bytes.length b in
  let out = Buffer.create (2 * n) in
  for i = 0 to n - 1 do
    Buffer.add_string out (Printf.sprintf "%02x" (Char.code (Bytes.get b i)))
  done;
  Buffer.contents out

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    try
      Some
        (Bytes.init (n / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> None

let encode_fragment f =
  let b = Buffer.create (64 + (Array.length f.boundaries * 24)) in
  Buffer.add_string b
    (Printf.sprintf "%s %d\n" codec_version (Array.length f.boundaries));
  Array.iter
    (fun (rel, insn, len) ->
      Buffer.add_string b
        (Printf.sprintf "%d %d %s\n" rel len
           (hex_of_bytes (Zvm.Encode.to_bytes insn))))
    f.boundaries;
  Buffer.contents b

(* Total: any framing, count, hex, decode or length anomaly is a miss. *)
let decode_fragment s =
  match String.split_on_char '\n' s with
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | [ v; n ] when v = codec_version -> (
          match int_of_string_opt n with
          | None -> None
          | Some n when n < 0 || List.length rest < n -> None
          | Some n -> (
              let parse line =
                match String.split_on_char ' ' line with
                | [ rel; len; hex ] -> (
                    match
                      (int_of_string_opt rel, int_of_string_opt len, bytes_of_hex hex)
                    with
                    | Some rel, Some len, Some raw -> (
                        match Zvm.Decode.decode_bytes raw ~pos:0 with
                        | Ok (insn, ilen) when ilen = len && ilen = Bytes.length raw ->
                            Some (rel, insn, len)
                        | _ -> None)
                    | _ -> None)
                | _ -> None
              in
              let rec go i acc = function
                | _ when i = n -> Some (List.rev acc)
                | [] -> None
                | line :: tl -> (
                    match parse line with
                    | Some b -> go (i + 1) (b :: acc) tl
                    | None -> None)
              in
              match go 0 [] rest with
              | Some bs -> Some { boundaries = Array.of_list bs }
              | None -> None))
      | _ -> None)
  | [] -> None

let weigh_fragment f = 64 + (56 * Array.length f.boundaries)

(* A resident memo entry holds the whole IR: rows, links, the aggregate's
   per-byte verdict array and boundary table, the pin list.  A rough
   per-row and per-text-byte estimate is enough for the byte budget's
   purpose (bounding growth, not accounting to the byte). *)
let weigh_memo ((ir : Ir_construction.t), _) =
  1024 + (3 * ir.Ir_construction.aggregate.Agg.len) + (160 * Db.count ir.Ir_construction.db)

let create ?(fragment_capacity = 65536) ?fragment_bytes ?(memo_capacity = 64)
    ?memo_bytes ?dir () =
  let disk =
    Option.map
      (fun dir -> { Rcache.dir; encode = encode_fragment; decode = decode_fragment })
      dir
  in
  {
    fragments =
      Rcache.create ~capacity:fragment_capacity ?max_bytes:fragment_bytes ?disk
        ~name:"delta.frag" ~weigh:weigh_fragment ();
    memo =
      Rcache.create ~capacity:memo_capacity ?max_bytes:memo_bytes
        ~name:"delta.memo" ~weigh:weigh_memo ();
  }

(* ---------- keys ---------- *)

(* Everything that determines a chunk's fragment: codec version, pin
   fingerprint (pins are not stored per fragment, but the gate's notion
   of a conclusive build is downstream of the same configuration), the
   chunk bytes, the decode lookahead past the cut, the chunk-relative
   inbound references, and whether the chunk is flush with the text end
   (decode attempts near the end of the {e last} chunk are truncated by
   the section boundary, not by the next chunk's bytes). *)
let chunk_key ~fp binary (scan : Chunker.t) (c : Chunker.chunk) =
  let flags =
    Printf.sprintf "%c%c"
      (if c.Chunker.synced then 's' else 'u')
      (if c.Chunker.hi = scan.Chunker.base + scan.Chunker.len then 't' else 'm')
  in
  Irdb.Cache.key
    [
      codec_version;
      fp;
      flags;
      Chunker.chunk_bytes binary c;
      Chunker.chunk_suffix binary c;
      Chunker.inbound_string c;
    ]

(* The memo key covers the whole serialized binary (so data sections that
   feed jump tables and the address-constant scan are included), plus the
   configuration fingerprint. *)
let memo_key ~fp binary =
  Irdb.Cache.key
    [ codec_version ^ "/memo"; fp; Bytes.to_string (Zelf.Binary.serialize binary) ]

(* ---------- partial rebuild + validation ---------- *)

(* Framing and validation are {!Stitch}'s (shared with the parallel IR
   builder); this path runs them serially over the chunk array with one
   reusable scratch. *)

let stitch t ~pin_config ~infer binary ~memo_key ~(scan : Chunker.t) ~chunk_keys frags =
  let text_end = scan.Chunker.base + scan.Chunker.len in
  match
    Obs.span "delta_stitch" (fun () ->
        let rec_ =
          Obs.span "recursive" (fun () -> Disasm.Recursive.traverse binary)
        in
        let scratch = Stitch.scratch () in
        let resolved =
          Array.mapi
            (fun i c ->
              match frags.(i) with
              | Some f -> (f, false)
              | None -> (Stitch.local_linear ~scratch binary ~text_end c, true))
            scan.Chunker.chunks
        in
        Array.iteri
          (fun i c -> Stitch.validate_chunk ~scratch rec_ c (fst resolved.(i)))
          scan.Chunker.chunks;
        resolved)
  with
  | exception Stitch.Fallback -> None
  | resolved ->
      let agg = Stitch.assemble ~infer binary scan (Array.map fst resolved) in
      let ir = Ir_construction.build_from_aggregate ~pin_config binary agg in
      Array.iteri
        (fun i (f, rebuilt) ->
          if rebuilt then Rcache.store t.fragments ~key:chunk_keys.(i) f)
        resolved;
      Rcache.store t.memo ~key:memo_key
        ( { ir with Ir_construction.db = Db.copy ir.Ir_construction.db },
          Array.length scan.Chunker.chunks );
      Some ir

(* ---------- public entry points ---------- *)

let obtain t ~pin_config ?(infer = false) binary =
  let fp = Ir_construction.fingerprint ~infer pin_config in
  let memo_key = memo_key ~fp binary in
  let scan_keys =
    lazy
      (let scan = Obs.span "delta_scan" (fun () -> Chunker.scan binary) in
       (scan, Array.map (chunk_key ~fp binary scan) scan.Chunker.chunks))
  in
  let keys = { binary; memo_key; scan_keys } in
  match Rcache.find t.memo memo_key with
  | Some (ir, n) ->
      Obs.count "delta.memo_hits" 1;
      Obs.count "delta.routine_hits" n;
      let ir =
        { ir with Ir_construction.db = Db.copy ~orig:binary ir.Ir_construction.db }
      in
      { ir = Some ir; routine_hits = n; routine_misses = 0; delta_built = false; keys }
  | None -> (
      let scan, chunk_keys = Lazy.force scan_keys in
      let n = Array.length scan.Chunker.chunks in
      let frags = Array.map (Rcache.find t.fragments) chunk_keys in
      let n_hit = Array.fold_left (fun a f -> if f = None then a else a + 1) 0 frags in
      if n_hit = 0 then begin
        Obs.count "delta.routine_misses" n;
        { ir = None; routine_hits = 0; routine_misses = n; delta_built = false; keys }
      end
      else
        match stitch t ~pin_config ~infer binary ~memo_key ~scan ~chunk_keys frags with
        | Some ir ->
            Obs.count "delta.routine_hits" n_hit;
            Obs.count "delta.routine_misses" (n - n_hit);
            Obs.count "delta.delta_builds" 1;
            {
              ir = Some ir;
              routine_hits = n_hit;
              routine_misses = n - n_hit;
              delta_built = true;
              keys;
            }
        | None ->
            Obs.count "delta.fallbacks" 1;
            Obs.count "delta.routine_misses" n;
            { ir = None; routine_hits = 0; routine_misses = n; delta_built = false; keys })

(* Harvest gate: a chunk is cacheable iff, per the {e actual} cold
   aggregate, it contains no ambiguous byte and its boundaries tile its
   code bytes without crossing either cut.  Data bytes then necessarily
   failed isolated decode (linear sweep attempted each one), so the
   fragment's meaning is a pure function of its key material.

   Bytes the inference refiner flipped are excluded outright: their
   verdicts rest on whole-program facts (reachability closure, resolved
   computed targets), not on the chunk's bytes and inbound references,
   so a fragment covering them would not be a pure function of its key
   and could be wrongly reused after a distant edit. *)
let refined_overlaps (agg : Agg.t) (c : Chunker.chunk) =
  List.exists
    (fun (off, _) ->
      let a = agg.Agg.base + off in
      a >= c.Chunker.lo && a < c.Chunker.hi)
    agg.Agg.refined

let gate_chunk (agg : Agg.t) (c : Chunker.chunk) =
  let acc = ref [] in
  let ok = ref (not (refined_overlaps agg c)) in
  let off = ref c.Chunker.lo in
  while !ok && !off < c.Chunker.hi do
    match agg.Agg.verdicts.(!off - agg.Agg.base) with
    | Agg.Ambiguous -> ok := false
    | Agg.Data -> incr off
    | Agg.Code -> (
        match Hashtbl.find_opt agg.Agg.insn_at !off with
        | Some (insn, ilen) when !off + ilen <= c.Chunker.hi ->
            let all_code = ref true in
            for j = !off to !off + ilen - 1 do
              if agg.Agg.verdicts.(j - agg.Agg.base) <> Agg.Code then
                all_code := false
            done;
            if !all_code then begin
              acc := (!off - c.Chunker.lo, insn, ilen) :: !acc;
              off := !off + ilen
            end
            else ok := false
        | _ -> ok := false)
  done;
  if !ok then Some { boundaries = Array.of_list (List.rev !acc) } else None

let harvest t (o : outcome) (ir : Ir_construction.t) =
  let agg = ir.Ir_construction.aggregate in
  let scan, chunk_keys = Lazy.force o.keys.scan_keys in
  Array.iteri
    (fun i c ->
      match gate_chunk agg c with
      | Some f -> Rcache.store t.fragments ~key:chunk_keys.(i) f
      | None -> ())
    scan.Chunker.chunks;
  Rcache.store t.memo ~key:o.keys.memo_key
    ( { ir with Ir_construction.db = Db.copy ir.Ir_construction.db },
      Array.length scan.Chunker.chunks )

(* ---------- introspection ---------- *)

let fragment_entries t = Rcache.mem_entries t.fragments
let fragment_bytes t = Rcache.resident_bytes t.fragments
let fragment_evictions t = Rcache.evictions t.fragments
let memo_entries t = Rcache.mem_entries t.memo
