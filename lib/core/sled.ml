module Db = Irdb.Db

exception Infeasible of string

type entry = { pin_addr : int; row : Db.insn_id; words : int list }

let depth e = List.length e.words

type t = { start : int; body : bytes; jmp_at : int; entries : entry list }

let tail_len = 4
let jmp_len = 5

let reserved_end t = t.jmp_at + jmp_len

let footprint_end ~last_pin = last_pin + 1 + tail_len + jmp_len

let push_opcode = Zvm.Encode.op_pushi

(* Walkable filler bytes: 1-byte instructions with no architectural
   effect, so a walk through the sled reaches the dispatch jump. *)
let fillers = [| Zvm.Encode.op_nop; Zvm.Encode.op_land; Zvm.Encode.op_retland |]

let is_filler b = Array.exists (fun f -> f = b) fillers

(* Decode the sled from one entry offset.  [body] includes the tail;
   decoding past the body means reaching the dispatch jump.  Returns the
   pushed words (chronological) and the positions where pushes executed. *)
let simulate body entry_off =
  let n = Bytes.length body in
  let byte i = Char.code (Bytes.get body i) in
  let rec go off pushed push_sites steps =
    if steps > 64 then raise (Infeasible "sled simulation did not terminate")
    else if off >= n then (List.rev pushed, List.rev push_sites)
    else
      let b = byte off in
      if b = push_opcode then
        if off + 4 >= n then
          raise (Infeasible "sled push immediate overlaps dispatch jump")
        else
          let imm =
            byte (off + 1) lor (byte (off + 2) lsl 8) lor (byte (off + 3) lsl 16)
            lor (byte (off + 4) lsl 24)
          in
          go (off + 5) (imm :: pushed) (off :: push_sites) (steps + 1)
      else if is_filler b then go (off + 1) pushed push_sites (steps + 1)
      else
        raise
          (Infeasible (Printf.sprintf "sled byte 0x%02x at offset %d is not walkable" b off))
  in
  go entry_off [] [] 0

(* Break chain merges: when one pin's walk reaches another pin's push
   opcode, every word after the merge point is shared, so top words can
   never separate.  Planting an extra push opcode on a filler byte of the
   offending walk makes the path vault over the later pin (the pin byte is
   swallowed as immediate data), splitting the chains.  Iterate to a
   fixpoint; each iteration converts one filler to a push, so it
   terminates. *)
let break_merges body pin_offsets =
  let byte i = Char.code (Bytes.get body i) in
  let is_pin off = List.mem off pin_offsets in
  let n = Bytes.length body in
  let progress = ref true in
  let guard = ref 0 in
  while !progress do
    progress := false;
    incr guard;
    if !guard > 64 then raise (Infeasible "sled merge-breaking did not converge");
    List.iter
      (fun p ->
        if not !progress then begin
          (* Walk p's chain; find the first *other* pin it executes. *)
          let rec walk off last_filler =
            if off >= n then None
            else if byte off = push_opcode then
              if is_pin off && off <> p then Some (off, last_filler)
              else if off + 4 >= n then None
              else walk (off + 5) last_filler
            else walk (off + 1) (Some off)
          in
          match walk p None with
          | Some (_merge, Some f) when f + 4 < n ->
              Bytes.set body f (Char.chr push_opcode);
              progress := true
          | _ -> ()
        end)
      pin_offsets
  done

let build_body ~pin_offsets ~span ~filler_choice =
  let body = Bytes.create (span + tail_len) in
  let fi = ref 0 in
  for i = 0 to span + tail_len - 1 do
    if i < span && List.mem i pin_offsets then Bytes.set body i (Char.chr push_opcode)
    else begin
      let f = fillers.(filler_choice !fi mod Array.length fillers) in
      incr fi;
      Bytes.set body i (Char.chr f)
    end
  done;
  body

let plan ~pins =
  match pins with
  | [] | [ _ ] -> invalid_arg "Sled.plan: need at least two pins"
  | (start, _) :: _ ->
      let last_pin = fst (List.nth pins (List.length pins - 1)) in
      let span = last_pin - start + 1 in
      let pin_offsets = List.map (fun (a, _) -> a - start) pins in
      (* Permutation [k] assigns filler position [i] symbol
         [(k / 3^i) mod 3]; merge-breaking then plants extra pushes on top
         of the chosen fillers. *)
      let attempt k =
        let filler_choice i =
          let rec digit k i = if i = 0 then k mod 3 else digit (k / 3) (i - 1) in
          digit k (min i 12)
        in
        let body = build_body ~pin_offsets ~span ~filler_choice in
        break_merges body pin_offsets;
        let entries =
          List.map
            (fun (pin_addr, row) ->
              match simulate body (pin_addr - start) with
              | [], _ -> raise (Infeasible "sled entry pushes nothing")
              | pushed_chronological, _ ->
                  { pin_addr; row; words = List.rev pushed_chronological })
            pins
        in
        (* Dispatch discriminates on the top word, falling back to the
           second word within a top collision group.  Probing [sp+8] is
           only safe when every member of the colliding group pushed at
           least two words (a depth-1 arrival's [sp+8] may be unmapped
           caller stack), and the second words must then separate them. *)
        let ok =
          let groups = Hashtbl.create 8 in
          List.iter
            (fun e ->
              let top = List.hd e.words in
              Hashtbl.replace groups top (e :: Option.value ~default:[] (Hashtbl.find_opt groups top)))
            entries;
          Hashtbl.fold
            (fun _ members acc ->
              acc
              &&
              match members with
              | [ _ ] -> true
              | group ->
                  List.for_all (fun e -> depth e >= 2) group
                  &&
                  let seconds = List.map (fun e -> List.nth e.words 1) group in
                  List.length (List.sort_uniq compare seconds) = List.length seconds)
            groups true
        in
        if ok then Some (body, entries) else None
      in
      let rec search k =
        if k >= 729 then raise (Infeasible "no filler permutation separates sled signatures")
        else begin
          Obs.count "sled.permutations_tried" 1;
          match attempt k with Some r -> r | None -> search (k + 1)
        end
      in
      (try
         let body, entries = search 0 in
         Obs.count "sled.planned" 1;
         Obs.count "sled.span_bytes" span;
         { start; body; jmp_at = start + span + tail_len; entries }
       with Infeasible _ as e -> raise e)
