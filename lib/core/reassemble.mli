(** The Reassembly phase (paper §II-C): convert the transformed IRDB back
    into executable machine code.

    The engine follows the paper's algorithm and notation:

    + {b Initial reference placement} (§II-C1): reserve the byte ranges
      that must keep their original contents (data-in-text, ambiguous
      fixed ranges, whose rows are pre-placed in the mapping [M]); then
      walk the pinned addresses placing an unresolved reference at each —
      a 5-byte unconstrained jump where the gap to the next pin allows, a
      2-byte constrained jump otherwise.
    + {b Dense references} (§II-C2): pins too close together for any jump
      are covered by a {!Sled}, whose dispatch code is synthesized and
      placed like any other code.
    + {b Expansion and chaining} (§II-C3): when a constrained reference's
      target lands out of short-jump range, the engine first tries to
      expand the 2-byte slot in place to 5 bytes (the bytes after it may
      have been freed by placement), then falls back to chaining through
      intermediate jumps within range.
    + {b Reference resolution and instruction placement} (§II-C4): the
      worklist [uDR] of unresolved references drains by building the
      {!Dollop} containing each referenced instruction, asking the
      {!Placement} strategy for an address (possibly splitting the dollop
      to fill a fragment), emitting it, updating [M], and resolving every
      reference to rows it covered.

    Instructions the drained worklist never demanded are dead code and are
    simply not emitted. *)

type stats = {
  strategy : string;
      (** placement strategy name; merges keep agreeing names and render
          disagreement as ["mixed"] ([""] is the merge identity) *)
  pins_total : int;
  pin_slots_long : int;
  pin_slots_short : int;
  pins_colocated : int;  (** pins whose dollop was placed at the pin itself *)
  sleds : int;
  sled_entries : int;
  slot_expansions : int;  (** 2-byte slots relaxed in place to 5 bytes *)
  chain_hops : int;
  dollops_placed : int;
  dollops_split : int;
  layouts_computed : int;
      (** [Dollop.layout] fixpoints run; one per placed dollop plus one per
          split prefix — never one for sizing and another for emission.
          Each split also precomputes its remainder's layout into the
          drain cache; the remainder's later placement then reuses it
          instead of computing its own, so the identity
          [layouts_computed = dollops_placed + dollops_split] still holds
          unless a cached remainder goes stale (a row of it was placed
          first by another reference), which costs one extra layout *)
  layout_reuses : int;
      (** cached build+layout results served from the drain cache — split
          remainders revisited by their prefix's connector reference *)
  alloc_queries : int;  (** [Memspace.alloc_*] calls issued *)
  alloc_hits : int;  (** those that found space *)
  overflow_bytes : int;
  text_free_bytes : int;  (** free bytes left inside the original text span *)
  sled_bytes : int;  (** reserved sled footprint (bodies and entry slots) *)
  page_misses : int;
      (** text pages holding placed code but no pin, plus overflow pages —
          the {!Cost} locality term, measured from the final free map *)
  placement_cost : float;
      (** {!Cost.eval} of the strategy's weights (default weights for the
          greedy strategies) over {!cost_terms} of this record *)
  search_iterations : int;  (** candidates the search strategy evaluated *)
  search_accepted : int;  (** improving/annealing-accepted moves *)
  search_rejected : int;  (** candidates discarded *)
  warnings : string list;
}

val zero_stats : stats
(** The identity of {!merge_stats}: all counters zero, no warnings. *)

val merge_stats : stats -> stats -> stats
(** Pointwise sum.  [(stats, merge_stats, zero_stats)] is a monoid, and
    every counter merge is commutative, so a corpus-level aggregate is
    independent of the order per-binary results arrive in; only
    [warnings] concatenates left-to-right, which callers wanting a
    deterministic report get by folding in binary-index order. *)

val cost_terms : stats -> Cost.terms
(** The cost-model terms of a finished run, straight from the stats —
    [placement_cost = Cost.eval weights (cost_terms stats)] by
    construction. *)

exception Failure_ of string
(** Unrecoverable reassembly failure (pin slot collision, unchainable
    reference, infeasible sled). *)

val run :
  ?strategy:Placement.t ->
  ?seed:int ->
  Ir_construction.t ->
  Zelf.Binary.t * stats
(** Reassemble.  Defaults: {!Placement.optimized}, seed 1.  The result
    binary keeps the original section layout, with text contents replaced
    and, when needed, a [".ztext"] overflow section appended after the
    last section (plus any transform-added sections already registered in
    the IRDB). *)

val pp_stats : Format.formatter -> stats -> unit
