module Db = Irdb.Db
module Rng = Zipr_util.Rng

type stats = {
  strategy : string;
  pins_total : int;
  pin_slots_long : int;
  pin_slots_short : int;
  pins_colocated : int;
  sleds : int;
  sled_entries : int;
  slot_expansions : int;
  chain_hops : int;
  dollops_placed : int;
  dollops_split : int;
  layouts_computed : int;
  layout_reuses : int;
  alloc_queries : int;
  alloc_hits : int;
  overflow_bytes : int;
  text_free_bytes : int;
  sled_bytes : int;
  page_misses : int;
  placement_cost : float;
  search_iterations : int;
  search_accepted : int;
  search_rejected : int;
  warnings : string list;
}

let zero_stats =
  {
    strategy = "";
    pins_total = 0;
    pin_slots_long = 0;
    pin_slots_short = 0;
    pins_colocated = 0;
    sleds = 0;
    sled_entries = 0;
    slot_expansions = 0;
    chain_hops = 0;
    dollops_placed = 0;
    dollops_split = 0;
    layouts_computed = 0;
    layout_reuses = 0;
    alloc_queries = 0;
    alloc_hits = 0;
    overflow_bytes = 0;
    text_free_bytes = 0;
    sled_bytes = 0;
    page_misses = 0;
    placement_cost = 0.0;
    search_iterations = 0;
    search_accepted = 0;
    search_rejected = 0;
    warnings = [];
  }

let merge_stats a b =
  {
    (* [""] (the merge identity) disappears; agreeing names survive a
       merge, so a homogeneous corpus aggregate still says which
       strategy produced it; anything else is honestly "mixed". *)
    strategy =
      (if a.strategy = "" then b.strategy
       else if b.strategy = "" || a.strategy = b.strategy then a.strategy
       else "mixed");
    pins_total = a.pins_total + b.pins_total;
    pin_slots_long = a.pin_slots_long + b.pin_slots_long;
    pin_slots_short = a.pin_slots_short + b.pin_slots_short;
    pins_colocated = a.pins_colocated + b.pins_colocated;
    sleds = a.sleds + b.sleds;
    sled_entries = a.sled_entries + b.sled_entries;
    slot_expansions = a.slot_expansions + b.slot_expansions;
    chain_hops = a.chain_hops + b.chain_hops;
    dollops_placed = a.dollops_placed + b.dollops_placed;
    dollops_split = a.dollops_split + b.dollops_split;
    layouts_computed = a.layouts_computed + b.layouts_computed;
    layout_reuses = a.layout_reuses + b.layout_reuses;
    alloc_queries = a.alloc_queries + b.alloc_queries;
    alloc_hits = a.alloc_hits + b.alloc_hits;
    overflow_bytes = a.overflow_bytes + b.overflow_bytes;
    text_free_bytes = a.text_free_bytes + b.text_free_bytes;
    sled_bytes = a.sled_bytes + b.sled_bytes;
    page_misses = a.page_misses + b.page_misses;
    placement_cost = a.placement_cost +. b.placement_cost;
    search_iterations = a.search_iterations + b.search_iterations;
    search_accepted = a.search_accepted + b.search_accepted;
    search_rejected = a.search_rejected + b.search_rejected;
    warnings = a.warnings @ b.warnings;
  }

(* The cost-model view of a finished run: the terms {!Cost.eval} folds
   are exactly these stats fields, so [placement_cost] is always the
   objective measured on the layout actually produced. *)
let cost_terms s =
  {
    Cost.sled_bytes = s.sled_bytes;
    chain_hops = s.chain_hops;
    relaxations = s.slot_expansions;
    overflow_bytes = s.overflow_bytes;
    page_misses = s.page_misses;
  }

exception Failure_ of string

let fail fmt = Format.kasprintf (fun s -> raise (Failure_ s)) fmt

(* A reference site: the address of an emitted jump opcode whose
   displacement still needs (or needed) resolution. *)
type site = {
  opcode_at : int;
  short : bool;  (* emission preference: try the 2-byte form first *)
  expandable : bool;  (* may grow 2 -> 5 bytes in place if room appears *)
  reserved_long : bool;  (* 5 bytes are reserved, so growing always works *)
  is_pin : bool;
  pin_addr : int;  (* the pinned address this slot serves; -1 otherwise *)
}

(* Per-run counter cells: one obs registry owns every reassembly counter
   (the [stats] record is read back out of it at the end of [run], and a
   trace sink absorbs it whole).  Atomic cells cost the same as the old
   plain mutable ints on this single-domain path and make the counters
   safe to aggregate across Domain workers. *)
type run_counters = {
  ctrs : Obs.Counters.t;
  c_pin_slots_long : Obs.Counters.cell;
  c_pin_slots_short : Obs.Counters.cell;
  c_pins_colocated : Obs.Counters.cell;
  c_sleds : Obs.Counters.cell;
  c_sled_entries : Obs.Counters.cell;
  c_slot_expansions : Obs.Counters.cell;
  c_chain_hops : Obs.Counters.cell;
  c_dollops_placed : Obs.Counters.cell;
  c_dollops_split : Obs.Counters.cell;
  c_layouts_computed : Obs.Counters.cell;
  c_layout_reuses : Obs.Counters.cell;
  c_placements : Obs.Counters.cell;  (* placement-strategy decisions taken *)
  c_sled_bytes : Obs.Counters.cell;  (* reserved sled footprint, bodies + slots *)
}

let make_run_counters () =
  let ctrs = Obs.Counters.create () in
  let c name = Obs.Counters.counter ctrs ("reassemble." ^ name) in
  {
    ctrs;
    c_pin_slots_long = c "pin_slots_long";
    c_pin_slots_short = c "pin_slots_short";
    c_pins_colocated = c "pins_colocated";
    c_sleds = c "sleds";
    c_sled_entries = c "sled_entries";
    c_slot_expansions = c "slot_expansions";
    c_chain_hops = c "chain_hops";
    c_dollops_placed = c "dollops_placed";
    c_dollops_split = c "dollops_split";
    c_layouts_computed = c "layouts_computed";
    c_layout_reuses = c "layout_reuses";
    c_placements = c "placement_decisions";
    c_sled_bytes = c "sled_bytes";
  }

type state = {
  db : Db.t;
  buf : Codebuf.t;
  space : Memspace.t;
  m : (Db.insn_id, int) Hashtbl.t;
  udr : (site * Db.insn_id) Queue.t;
  pin_sites : (int, site) Hashtbl.t;  (* pin address -> its reference slot *)
  cancelled : (int, unit) Hashtbl.t;  (* opcode_at of sites resolved natively *)
  dcache : (Db.insn_id, Dollop.t * Dollop.placed_insn list * int) Hashtbl.t;
      (* head row -> built dollop and its layout, reusable while every
         row in it is still homeless *)
  rng : Rng.t;
  strategy : Placement.t;
  pinned_page : int -> bool;
  tally : Cost.tally;  (* per-run search accounting, surfaced in stats *)
  k : run_counters;
  mutable warnings : string list;
}

let warn st fmt = Format.kasprintf (fun s -> st.warnings <- s :: st.warnings) fmt

let short_jmp_opcode = Zvm.Encode.op_jmp_short
let near_jmp_opcode = Zvm.Encode.op_jmp_near

let has_home st id = Hashtbl.mem st.m id

(* -- reference patching: expansion and chaining (paper II-C3) -- *)

let write_long_jump st ~at ~target =
  Codebuf.write8 st.buf at near_jmp_opcode;
  Codebuf.write32 st.buf (at + 1) ((target - (at + 5)) land 0xffffffff)

let rec patch st site target ~depth =
  if not site.short then
    Codebuf.write32 st.buf (site.opcode_at + 1)
      ((target - (site.opcode_at + 5)) land 0xffffffff)
  else begin
    let disp = target - (site.opcode_at + 2) in
    if disp >= -128 && disp <= 127 then begin
      Codebuf.write8 st.buf (site.opcode_at + 1) (disp land 0xff);
      (* Relaxation kept the reference short: give the 3 spare bytes of a
         long reservation back to the allocator (§III). *)
      if site.reserved_long then
        Memspace.release st.space ~lo:(site.opcode_at + 2) ~hi:(site.opcode_at + 5)
    end
    else if
      site.reserved_long
      || site.expandable
         && Memspace.is_free st.space ~lo:(site.opcode_at + 2) ~hi:(site.opcode_at + 5)
    then begin
      (* Expansion: the three bytes after the constrained slot are
         available, so relax it to an unconstrained 5-byte jump in
         place (§II-C3). *)
      if not site.reserved_long then
        Memspace.reserve st.space ~lo:(site.opcode_at + 2) ~hi:(site.opcode_at + 5);
      write_long_jump st ~at:site.opcode_at ~target;
      Obs.Counters.incr st.k.c_slot_expansions
    end
    else chain st site target ~depth
  end

and chain st site target ~depth =
  if depth <= 0 then
    fail "chaining depth exhausted resolving reference at 0x%x to 0x%x" site.opcode_at target;
  (* A hop must sit within short-branch range of the constrained site. *)
  let lo = site.opcode_at + 2 - 128 and hi = site.opcode_at + 2 + 127 + 5 in
  match Memspace.alloc_in_window st.space ~lo ~hi ~size:5 with
  | Some h ->
      write_long_jump st ~at:h ~target;
      Obs.Counters.incr st.k.c_chain_hops;
      patch st site h ~depth:(depth - 1)
  | None -> (
      match Memspace.alloc_in_window st.space ~lo ~hi:(hi - 3) ~size:2 with
      | Some h ->
          Codebuf.write8 st.buf h short_jmp_opcode;
          Obs.Counters.incr st.k.c_chain_hops;
          patch st site h ~depth:(depth - 1);
          (* The new short hop must itself reach the target. *)
          patch st
            { opcode_at = h; short = true; expandable = true; reserved_long = false; is_pin = false; pin_addr = -1 }
            target ~depth:(depth - 1)
      | None ->
          fail "no chain hop available near constrained reference at 0x%x" site.opcode_at)

let patch_or_enqueue st site tgt =
  match Hashtbl.find_opt st.m tgt with
  | Some addr -> patch st site addr ~depth:16
  | None -> Queue.add (site, tgt) st.udr

(* -- dollop emission -- *)

let layout_counted st d =
  Obs.Counters.incr st.k.c_layouts_computed;
  Dollop.layout st.db d

(* Build the dollop headed at [rid] and lay it out, once: the result is
   threaded from the placement decision through emission, and cached so a
   row revisited across the drain loop (e.g. a failed colocation attempt
   followed by ordinary placement) does not pay for a second relaxation
   fixpoint.  A cached entry is valid only while every row in it is still
   homeless — homes only ever accrue, so a stale entry is simply rebuilt. *)
let build_and_layout st rid =
  match Hashtbl.find_opt st.dcache rid with
  | Some ((d, _, _) as entry)
    when List.for_all (fun id -> not (has_home st id)) d.Dollop.rows ->
      Obs.Counters.incr st.k.c_layout_reuses;
      entry
  | _ ->
      let d = Dollop.build st.db ~has_home:(has_home st) rid in
      let placed, total = layout_counted st d in
      let entry = (d, placed, total) in
      Hashtbl.replace st.dcache rid entry;
      entry

(* Emit a dollop at [start] from its precomputed layout; returns one past
   its last byte. *)
let emit_dollop st (d : Dollop.t) ~placed ~total start =
  let body_end = ref start in
  List.iter
    (fun (p : Dollop.placed_insn) ->
      let at = start + p.Dollop.offset in
      let r = Db.row st.db p.Dollop.row in
      Hashtbl.replace st.m p.Dollop.row at;
      let size = Zvm.Insn.size p.Dollop.form in
      (if p.Dollop.internal then
         (* Displacement already concrete within the dollop. *)
         ignore (Codebuf.write_insn st.buf at p.Dollop.form)
       else
         match p.Dollop.form with
         | Zvm.Insn.Jcc _ | Zvm.Insn.Jmp _ | Zvm.Insn.Call _ -> (
             match r.Db.target with
             | Some tgt ->
                 ignore (Codebuf.write_insn st.buf at p.Dollop.form);
                 patch_or_enqueue st
                   { opcode_at = at; short = false; expandable = false; reserved_long = false; is_pin = false; pin_addr = -1 }
                   tgt
             | None ->
                 (* A direct branch with no logical target is either dead
                    or malformed; emit a halt so failure is loud, not
                    silent. *)
                 warn st "row %d: direct branch without target link" p.Dollop.row;
                 Codebuf.write8 st.buf at 0xf4;
                 for i = 1 to size - 1 do
                   Codebuf.write8 st.buf (at + i) 0x90
                 done)
         | form -> ignore (Codebuf.write_insn st.buf at form));
      body_end := at + size)
    placed;
  (match d.Dollop.ending with
  | Dollop.Natural -> ()
  | Dollop.Connect tgt ->
      Codebuf.write8 st.buf !body_end near_jmp_opcode;
      patch_or_enqueue st
        { opcode_at = !body_end; short = false; expandable = false; reserved_long = false; is_pin = false; pin_addr = -1 }
        tgt);
  Obs.Counters.incr st.k.c_dollops_placed;
  start + total

(* Place the dollop [(d, placed, dsize)] containing [rid] somewhere, per
   the strategy, and return nothing: [st.m] gains homes for every row
   emitted.  The layout computed for the sizing decision is the one
   emitted — no second [Dollop.layout] pass. *)
let place_dollop st ~referent (d, placed, dsize) =
  let min_prefix =
    match d.Dollop.rows with
    | [] -> Dollop.connector_size
    | first :: _ ->
        Dollop.normalized_size (Db.row st.db first).Db.insn + Dollop.connector_size
  in
  let ctx =
    { Placement.space = st.space; rng = st.rng; pinned_page = st.pinned_page; tally = st.tally }
  in
  let emit_releasing d ~placed ~total addr reserved =
    let endp = emit_dollop st d ~placed ~total addr in
    if endp < addr + reserved then Memspace.release st.space ~lo:endp ~hi:(addr + reserved)
  in
  Obs.Counters.incr st.k.c_placements;
  match st.strategy.Placement.decide ctx { Placement.size = dsize; referent; min_prefix } with
  | Placement.Place_at addr -> emit_releasing d ~placed ~total:dsize addr dsize
  | Placement.Place_split { addr; capacity } -> (
      if capacity >= dsize then
        (* The fragment turned out big enough after all. *)
        emit_releasing d ~placed ~total:dsize addr capacity
      else
        match Dollop.split_to_fit st.db d ~capacity with
        | Some (prefix, rest_head) ->
            let pplaced, ptotal = layout_counted st prefix in
            emit_releasing prefix ~placed:pplaced ~total:ptotal addr capacity;
            Obs.Counters.incr st.k.c_dollops_split;
            (* The prefix's connector is about to demand the remainder, and
               we already know its shape: the split point cuts [d]'s
               fallthrough chain, so the rest is the suffix of [d.rows]
               with [d]'s original ending — rebuilding it from the IRDB
               would walk the same chain to the same stopping point (homes
               only accrue, and the drain-cache validity check rebuilds if
               any suffix row gains one first).  Cache it laid-out so the
               revisit is a [layout_reuses] hit instead of a second
               build-and-relax pass. *)
            let rec suffix_from = function
              | id :: _ as rows when id = rest_head -> rows
              | _ :: tl -> suffix_from tl
              | [] -> []
            in
            (match suffix_from d.Dollop.rows with
            | [] -> ()
            | rows ->
                let rest = { Dollop.rows; ending = d.Dollop.ending } in
                let rplaced, rtotal = layout_counted st rest in
                Hashtbl.replace st.dcache rest_head (rest, rplaced, rtotal))
        | None ->
            (* Could not split usefully; give the fragment back and spill. *)
            Memspace.release st.space ~lo:addr ~hi:(addr + capacity);
            let a = Memspace.alloc_overflow st.space ~size:dsize in
            emit_releasing d ~placed ~total:dsize a dsize)

(* -- sled dispatch synthesis (paper II-C2) -- *)

(* Dispatch discriminates entries on the top pushed word, falling back to
   the second word for top-collision groups (the planner guarantees such
   groups only contain entries of depth >= 2, so probing [sp+8] is safe).
   Stack layout on arrival: the sled's pushed words, topmost at [sp];
   dispatch saves r0, so the top word is at [sp+4].

   The code is generated through a tiny two-pass local assembler: items
   first, then label resolution, then emission.  Arrivals matching no pin
   halt loudly — only possible if the original program jumped somewhere
   the pin analysis never promised. *)
let synth_dispatch st (sled : Sled.t) =
  let open Zvm in
  let entries = sled.Sled.entries in
  (* Group by top word, preserving entry order.  Hashtbl-keyed reversed
     accumulators keep this linear in the entry count; the old
     assoc-list-with-rebuild version was quadratic and dominated sled
     synthesis on dense pin clusters. *)
  let groups =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun e ->
        match e.Sled.words with
        | [] -> fail "sled entry at 0x%x pushes no words" e.Sled.pin_addr
        | top :: _ -> (
            match Hashtbl.find_opt tbl top with
            | Some cell -> cell := e :: !cell
            | None ->
                let cell = ref [ e ] in
                Hashtbl.add tbl top cell;
                order := top :: !order))
      entries;
    List.rev_map (fun top -> (top, List.rev !(Hashtbl.find tbl top))) !order
  in
  let handler_lbl e = Printf.sprintf "h%x" e.Sled.pin_addr in
  let sub_lbl top = Printf.sprintf "g%x" (top land 0xffffff) in
  (* Local assembly items. *)
  let items = ref [] in
  let emit_item it = items := it :: !items in
  let ins i = emit_item (`I i) in
  let jcc_to c l = emit_item (`Jcc (c, l)) in
  let lab l = emit_item (`Lab l) in
  let jmp_row r = emit_item (`Jmp_row r) in
  ins (Insn.Push Reg.R0);
  ins (Insn.Load { dst = Reg.R0; base = Reg.SP; disp = 4 });
  List.iter
    (fun (top, members) ->
      ins (Insn.Cmpi (Reg.R0, top));
      match members with
      | [ e ] -> jcc_to Cond.Eq (handler_lbl e)
      | _ -> jcc_to Cond.Eq (sub_lbl top))
    groups;
  ins Insn.Halt;
  List.iter
    (fun (top, members) ->
      match members with
      | [ _ ] -> ()
      | _ ->
          lab (sub_lbl top);
          ins (Insn.Load { dst = Reg.R0; base = Reg.SP; disp = 8 });
          List.iter
            (fun e ->
              (match e.Sled.words with
              | _ :: second :: _ -> ins (Insn.Cmpi (Reg.R0, second))
              | _ ->
                  fail "sled entry at 0x%x lacks a second discriminating word"
                    e.Sled.pin_addr);
              jcc_to Cond.Eq (handler_lbl e))
            members;
          ins Insn.Halt)
    groups;
  List.iter
    (fun e ->
      lab (handler_lbl e);
      ins (Insn.Pop Reg.R0);
      ins (Insn.Alui (Insn.Addi, Reg.SP, 4 * Sled.depth e));
      jmp_row e.Sled.row)
    entries;
  let items = List.rev !items in
  (* Pass 1: sizes and label offsets. *)
  let size_of = function
    | `I i -> Insn.size i
    | `Jcc _ -> 5
    | `Jmp_row _ -> 5
    | `Lab _ -> 0
  in
  let total = List.fold_left (fun acc it -> acc + size_of it) 0 items in
  let offsets = Hashtbl.create 16 in
  let () =
    let off = ref 0 in
    List.iter
      (fun it ->
        (match it with `Lab l -> Hashtbl.replace offsets l !off | _ -> ());
        off := !off + size_of it)
      items
  in
  (* Place and emit. *)
  let ctx =
    { Placement.space = st.space; rng = st.rng; pinned_page = st.pinned_page; tally = st.tally }
  in
  Obs.Counters.incr st.k.c_placements;
  let base =
    match
      st.strategy.Placement.decide ctx
        { Placement.size = total; referent = None; min_prefix = total }
    with
    | Placement.Place_at a -> a
    | Placement.Place_split { addr; capacity } ->
        if capacity >= total then begin
          Memspace.release st.space ~lo:(addr + total) ~hi:(addr + capacity);
          addr
        end
        else begin
          Memspace.release st.space ~lo:addr ~hi:(addr + capacity);
          Memspace.alloc_overflow st.space ~size:total
        end
  in
  let cur = ref base in
  List.iter
    (fun it ->
      (match it with
      | `I i -> ignore (Codebuf.write_insn st.buf !cur i)
      | `Lab _ -> ()
      | `Jcc (c, l) ->
          let target = base + Hashtbl.find offsets l in
          ignore (Codebuf.write_insn st.buf !cur (Insn.Jcc (c, Insn.Near, target - (!cur + 5))))
      | `Jmp_row r ->
          Codebuf.write8 st.buf !cur near_jmp_opcode;
          patch_or_enqueue st
            {
              opcode_at = !cur;
              short = false;
              expandable = false;
              reserved_long = false;
              is_pin = false;
              pin_addr = -1;
            }
            r);
      cur := !cur + size_of it)
    items;
  base

(* -- pin planning (paper II-C1/C2) -- *)

type plan_item = Slot of site * Db.insn_id | Sled_group of Sled.t

(* The pin prologue (CFI landing markers and the like) applies only to
   marked pins — addresses an indirect branch may actually target.
   Conservative pins (after-call sites and the like) keep bare slots. *)
let prologue_len_at st addr =
  if Db.pin_is_marked st.db addr then
    List.fold_left (fun acc i -> acc + Zvm.Insn.size i) 0 (Db.pin_prologue st.db)
  else 0

(* Emit the pin prologue at an address; returns the address just past it. *)
let emit_prologue st addr =
  if Db.pin_is_marked st.db addr then
    List.fold_left
      (fun at insn -> at + Codebuf.write_insn st.buf at insn)
      addr
      (Db.pin_prologue st.db)
  else addr

let plan_pins st pins text_hi =
  (* [pins]: ascending (addr, row), none fixed. *)
  let arr = Array.of_list pins in
  let n = Array.length arr in
  let items = ref [] in
  let i = ref 0 in
  while !i < n do
    let addr, row = arr.(!i) in
    let plen = prologue_len_at st addr in
    let next_gap = if !i + 1 < n then fst arr.(!i + 1) - addr else max_int in
    let gap = min next_gap (text_hi - addr) in
    (* A pin cramped only by the end of text (not by a neighbouring pin)
       may run its slot past [text_hi] when the bytes there are free:
       with contiguous overflow the text grows in place (the free map
       coalesces across the boundary), and with a detached overflow
       section the range is simply not free, so this never fires.
       Without the extension such a pin formed a one-pin "dense" group,
       which no sled can serve. *)
    let gap =
      if gap >= plen + 2 || next_gap < plen + 2 then gap
      else if
        next_gap >= plen + 5 && Memspace.is_free st.space ~lo:addr ~hi:(addr + plen + 5)
      then plen + 5
      else if Memspace.is_free st.space ~lo:addr ~hi:(addr + plen + 2) then plen + 2
      else gap
    in
    if gap >= plen + 2 then begin
      (* Reserve the unconstrained 5-byte form whenever the pin gap and
         free space allow; relaxation gives the spare bytes back if the
         reference stays short.  Only truly cramped pins get a bare 2-byte
         reservation (and may need chaining). *)
      let free w = Memspace.is_free st.space ~lo:addr ~hi:(addr + plen + w) in
      let width =
        if gap >= plen + 5 && free 5 then 5
        else if free 2 then 2
        else fail "pin slot at 0x%x collides with reserved bytes" addr
      in
      Memspace.reserve st.space ~lo:addr ~hi:(addr + plen + width);
      let jump_at = emit_prologue st addr in
      let prefer_short = st.strategy.Placement.prefer_short_pins || width = 2 in
      Codebuf.write8 st.buf jump_at (if prefer_short then short_jmp_opcode else near_jmp_opcode);
      if width = 5 then Obs.Counters.incr st.k.c_pin_slots_long
      else Obs.Counters.incr st.k.c_pin_slots_short;
      let site =
        {
          opcode_at = jump_at;
          short = prefer_short;
          expandable = true;
          reserved_long = width = 5;
          is_pin = true;
          pin_addr = addr;
        }
      in
      Hashtbl.replace st.pin_sites addr site;
      items := Slot (site, row) :: !items;
      incr i
    end
    else begin
      (* Dense: gather the sled group.  A later pin inside the sled's
         footprint must join it. *)
      let group = ref [ arr.(!i) ] in
      incr i;
      let continue = ref true in
      while !continue && !i < n do
        let last_pin = fst (List.hd !group) in
        if fst arr.(!i) < Sled.footprint_end ~last_pin then begin
          group := arr.(!i) :: !group;
          incr i
        end
        else continue := false
      done;
      let group = List.rev !group in
      (match group with
      | [ (a, _) ] ->
          (* Degenerate: a lone cramped pin (the extension above found no
             free bytes either).  No sled serves one pin; fail loudly
             rather than let [Sled.plan] raise [Invalid_argument]. *)
          fail "pin at 0x%x has no room for a reference slot" a
      | _ -> ());
      let sled =
        try Sled.plan ~pins:group
        with Sled.Infeasible msg -> fail "sled planning failed: %s" msg
      in
      let send = Sled.reserved_end sled in
      if send > text_hi then fail "sled at 0x%x runs past end of text" sled.Sled.start;
      if not (Memspace.is_free st.space ~lo:sled.Sled.start ~hi:send) then
        fail "sled at 0x%x collides with reserved bytes" sled.Sled.start;
      Memspace.reserve st.space ~lo:sled.Sled.start ~hi:send;
      Codebuf.write_bytes st.buf sled.Sled.start sled.Sled.body;
      Obs.Counters.bump st.k.c_sled_bytes (send - sled.Sled.start);
      Obs.Counters.incr st.k.c_sleds;
      Obs.Counters.bump st.k.c_sled_entries (List.length sled.Sled.entries);
      items := Sled_group sled :: !items
    end
  done;
  List.rev !items

(* -- main -- *)

(* Colocation: place the pinned row's dollop at the pin itself, making the
   reference free.  When the pin prologue is empty, the dollop may even
   span {e other} pins, provided each covered pin's row lands at exactly
   its pinned address — the reference then resolves natively and its slot
   is cancelled.  This is how a Null-transformed, unfragmented function
   reassembles back onto its original bytes with zero overhead (the
   [B = P] ideal of §II-A2). *)
let try_colocate st site (d : Dollop.t) ~placed ~dsize =
  let pin_addr = site.pin_addr in
  let plen = site.opcode_at - pin_addr in
  let slot_extent (s : site) = (s.opcode_at - s.pin_addr) + if s.reserved_long then 5 else 2 in
  let lo = pin_addr and hi = pin_addr + plen + dsize in
  let body_lo = pin_addr + plen in
  let covered =
    Hashtbl.fold
      (fun q s acc ->
        if q > pin_addr && q < hi && not (Hashtbl.mem st.cancelled s.opcode_at) then
          (q, s) :: acc
        else acc)
      st.pin_sites []
  in
  (* A covered pin resolves natively only if its row lands at exactly its
     pinned address and it needs no prologue of its own. *)
  let aligned =
    List.for_all
      (fun (q, (s : site)) ->
        s.opcode_at = q
        && List.exists
             (fun (p : Dollop.placed_insn) ->
               (Db.row st.db p.Dollop.row).Db.pinned = Some q && body_lo + p.Dollop.offset = q)
             placed)
      covered
  in
  if not aligned then false
  else begin
    (* Give back every slot inside the candidate region, then test it. *)
    Memspace.release st.space ~lo:pin_addr ~hi:(pin_addr + slot_extent site);
    List.iter (fun (q, s) -> Memspace.release st.space ~lo:q ~hi:(q + slot_extent s)) covered;
    if Memspace.is_free st.space ~lo ~hi then begin
      Memspace.reserve st.space ~lo ~hi;
      let body_at = emit_prologue st pin_addr in
      assert (body_at = body_lo);
      ignore (emit_dollop st d ~placed ~total:dsize body_at);
      List.iter (fun (_, s) -> Hashtbl.replace st.cancelled s.opcode_at ()) covered;
      Obs.Counters.bump st.k.c_pins_colocated (1 + List.length covered);
      true
    end
    else begin
      Memspace.reserve st.space ~lo:pin_addr ~hi:(pin_addr + slot_extent site);
      List.iter (fun (q, s) -> Memspace.reserve st.space ~lo:q ~hi:(q + slot_extent s)) covered;
      false
    end
  end

let drain st =
  while not (Queue.is_empty st.udr) do
    let site, rid = Queue.pop st.udr in
    if not (Hashtbl.mem st.cancelled site.opcode_at) then
      match Hashtbl.find_opt st.m rid with
      | Some addr -> patch st site addr ~depth:16
      | None ->
          let d, placed, dsize = build_and_layout st rid in
          let colocated =
            st.strategy.Placement.colocate_at_pin && site.is_pin
            && try_colocate st site d ~placed ~dsize
          in
          if not colocated then begin
            let referent = if site.short then Some site.opcode_at else None in
            place_dollop st ~referent (d, placed, dsize);
            match Hashtbl.find_opt st.m rid with
            | Some addr -> patch st site addr ~depth:16
            | None -> fail "dollop placement failed to give row %d a home" rid
          end
  done

let run ?(strategy = Placement.optimized) ?(seed = 1) (ir : Ir_construction.t) =
  let db = ir.Ir_construction.db in
  let binary = Db.orig db in
  let text = Zelf.Binary.text binary in
  let text_lo = text.Zelf.Section.vaddr in
  let text_hi = Zelf.Section.vend text in
  (* Prefer growing the text section in place: overflow goes directly
     after the original text when the gap to the next section allows,
     producing a single (larger) text section; otherwise a detached
     ".ztext" section is appended past everything. *)
  let next_section_start =
    List.fold_left
      (fun acc (s : Zelf.Section.t) ->
        if s.Zelf.Section.vaddr >= text_hi then
          Some (match acc with Some a -> min a s.Zelf.Section.vaddr | None -> s.Zelf.Section.vaddr)
        else acc)
      None binary.Zelf.Binary.sections
  in
  let overflow_base, overflow_cap, contiguous =
    match next_section_start with
    | Some ns when ns - text_hi >= 8192 -> (text_hi, ns - text_hi - 4096, true)
    | None -> (text_hi, 1 lsl 28, true)
    | Some _ -> (Db.next_free_vaddr db + 4096, 1 lsl 28, false)
  in
  let buf = Codebuf.create ~text_lo ~text_hi ~overflow_base in
  let space = Memspace.create ~overflow_cap ~text_lo ~text_hi ~overflow_base () in
  let pins_all = Db.pinned_addresses db in
  let pinned_pages = Hashtbl.create 16 in
  List.iter (fun (a, _) -> Hashtbl.replace pinned_pages (a / 4096) ()) pins_all;
  let st =
    {
      db;
      buf;
      space;
      m = Hashtbl.create 1024;
      udr = Queue.create ();
      pin_sites = Hashtbl.create 64;
      cancelled = Hashtbl.create 16;
      dcache = Hashtbl.create 64;
      rng = Rng.create seed;
      strategy;
      pinned_page = (fun p -> Hashtbl.mem pinned_pages p);
      tally = Cost.make_tally ();
      k = make_run_counters ();
      warnings = [];
    }
  in
  (* 1. Ranges that keep their original bytes. *)
  let copy_range (lo, hi) =
    (match Zelf.Binary.read8 binary lo with
    | Some _ ->
        let data = Bytes.init (hi - lo) (fun i ->
            Char.chr (Option.value ~default:0 (Zelf.Binary.read8 binary (lo + i))))
        in
        Codebuf.write_bytes buf lo data
    | None -> ());
    Memspace.reserve space ~lo ~hi
  in
  Obs.span "copy_fixed" (fun () ->
      List.iter copy_range ir.Ir_construction.data_ranges;
      List.iter copy_range ir.Ir_construction.fixed_ranges;
      (* Fixed rows are pre-placed at their original addresses. *)
      Db.iter db (fun r ->
          if r.Db.fixed then
            match r.Db.orig_addr with Some a -> Hashtbl.replace st.m r.Db.id a | None -> ()));
  (* 2. Pin plan: slots and sleds. *)
  let movable_pins =
    List.filter (fun (_, id) -> not (Db.row db id).Db.fixed) pins_all
  in
  let items = Obs.span "pin_plan" (fun () -> plan_pins st movable_pins text_hi) in
  (* 3. Sled dispatch code, then seed the worklist with pin references. *)
  Obs.span "sled_dispatch" (fun () ->
      List.iter
        (function
          | Sled_group sled ->
              let dispatch = synth_dispatch st sled in
              Codebuf.write8 buf sled.Sled.jmp_at near_jmp_opcode;
              Codebuf.write32 buf (sled.Sled.jmp_at + 1)
                ((dispatch - (sled.Sled.jmp_at + 5)) land 0xffffffff)
          | Slot _ -> ())
        items);
  List.iter (function Slot (site, row) -> Queue.add (site, row) st.udr | Sled_group _ -> ()) items;
  (* 4. Drain uDR (paper II-C4). *)
  Obs.span "drain" (fun () -> drain st);
  (* 4b. Relocations in transform-added data: place any still-homeless
     targets, then patch the 32-bit cells with final addresses. *)
  let relocs = Db.relocs db in
  Obs.span "relocs" (fun () ->
      List.iter
        (fun (r : Db.reloc) ->
          if not (Hashtbl.mem st.m r.Db.reloc_target) then begin
            place_dollop st ~referent:None (build_and_layout st r.Db.reloc_target);
            drain st
          end)
        relocs);
  let patched_sections : (string, bytes) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (r : Db.reloc) ->
      let data =
        match Hashtbl.find_opt patched_sections r.Db.reloc_section with
        | Some d -> d
        | None -> (
            match
              List.find_opt
                (fun (s : Zelf.Section.t) -> s.Zelf.Section.name = r.Db.reloc_section)
                (Db.added_sections db)
            with
            | Some s ->
                let d = Bytes.copy s.Zelf.Section.data in
                Hashtbl.replace patched_sections r.Db.reloc_section d;
                d
            | None -> fail "reloc against unknown added section %S" r.Db.reloc_section)
      in
      match Hashtbl.find_opt st.m r.Db.reloc_target with
      | Some addr ->
          if r.Db.reloc_offset + 4 > Bytes.length data then
            fail "reloc offset %d outside section %S" r.Db.reloc_offset r.Db.reloc_section;
          Bytes.set data r.Db.reloc_offset (Char.chr (addr land 0xff));
          Bytes.set data (r.Db.reloc_offset + 1) (Char.chr ((addr lsr 8) land 0xff));
          Bytes.set data (r.Db.reloc_offset + 2) (Char.chr ((addr lsr 16) land 0xff));
          Bytes.set data (r.Db.reloc_offset + 3) (Char.chr ((addr lsr 24) land 0xff))
      | None -> fail "reloc target row %d was never placed" r.Db.reloc_target)
    relocs;
  let finalize_added (s : Zelf.Section.t) =
    match Hashtbl.find_opt patched_sections s.Zelf.Section.name with
    | Some data ->
        Zelf.Section.make ~name:s.Zelf.Section.name ~kind:s.Zelf.Section.kind
          ~vaddr:s.Zelf.Section.vaddr data
    | None -> s
  in
  (* 5. Assemble the output binary. *)
  let out =
    Obs.span "finalize" (fun () ->
        let new_text_data =
          if contiguous && Codebuf.overflow_used buf > 0 then
            Bytes.cat (Codebuf.text_image buf) (Codebuf.overflow_image buf)
          else Codebuf.text_image buf
        in
        let sections =
          List.map
            (fun (s : Zelf.Section.t) ->
              if s == text then
                Zelf.Section.make ~name:s.Zelf.Section.name ~kind:Zelf.Section.Text
                  ~vaddr:text_lo new_text_data
              else s)
            binary.Zelf.Binary.sections
        in
        let overflow_sections =
          if (not contiguous) && Codebuf.overflow_used buf > 0 then
            [ Zelf.Section.make ~name:".ztext" ~kind:Zelf.Section.Text ~vaddr:overflow_base
                (Codebuf.overflow_image buf) ]
          else []
        in
        Zelf.Binary.create ~entry:binary.Zelf.Binary.entry
          (sections @ overflow_sections @ List.map finalize_added (Db.added_sections db)))
  in
  let alloc = Memspace.counters space in
  let g n = Obs.Counters.get n in
  (* Page-locality term: text pages the layout put code on that hold no
     pin (pinned pages are resident regardless — §III), plus the pages
     the overflow spill occupies.  Measured from the final free map, not
     accumulated per decision, so it is exact whatever the strategy did. *)
  let page_misses =
    let misses = ref 0 in
    for p = text_lo / 4096 to (text_hi - 1) / 4096 do
      let lo = max text_lo (p * 4096) and hi = min text_hi ((p + 1) * 4096) in
      if (not (st.pinned_page p)) && not (Memspace.is_free space ~lo ~hi) then incr misses
    done;
    !misses + ((Codebuf.overflow_used buf + 4095) / 4096)
  in
  let stats =
    {
      strategy = strategy.Placement.name;
      pins_total = List.length pins_all;
      pin_slots_long = g st.k.c_pin_slots_long;
      pin_slots_short = g st.k.c_pin_slots_short;
      pins_colocated = g st.k.c_pins_colocated;
      sleds = g st.k.c_sleds;
      sled_entries = g st.k.c_sled_entries;
      slot_expansions = g st.k.c_slot_expansions;
      chain_hops = g st.k.c_chain_hops;
      dollops_placed = g st.k.c_dollops_placed;
      dollops_split = g st.k.c_dollops_split;
      layouts_computed = g st.k.c_layouts_computed;
      layout_reuses = g st.k.c_layout_reuses;
      alloc_queries = alloc.Memspace.queries;
      alloc_hits = alloc.Memspace.hits;
      overflow_bytes = Codebuf.overflow_used buf;
      text_free_bytes = Memspace.text_free_bytes space;
      sled_bytes = g st.k.c_sled_bytes;
      page_misses;
      placement_cost = 0.0;
      search_iterations = st.tally.Cost.iterations;
      search_accepted = st.tally.Cost.accepted;
      search_rejected = st.tally.Cost.rejected;
      warnings = List.rev st.warnings;
    }
  in
  (* Evaluate the strategy's own objective (default weights for the
     greedy strategies) over the finished layout's terms. *)
  let weights =
    Option.value strategy.Placement.weights ~default:Cost.default_weights
  in
  let stats = { stats with placement_cost = Cost.eval weights (cost_terms stats) } in
  if Obs.enabled () then begin
    Obs.merge_counters st.k.ctrs;
    Obs.merge_counters (Memspace.obs_counters space)
  end;
  (out, stats)

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "@[<v>placement=%s cost=%.1f@,pins=%d (long=%d short=%d colocated=%d)@,sleds=%d \
     entries=%d (%d bytes)@,expansions=%d chain-hops=%d@,dollops placed=%d split=%d@,\
     layouts=%d (reused %d)@,alloc queries=%d hits=%d@,overflow=%d bytes, text free=%d \
     bytes, page misses=%d@,search iterations=%d accepted=%d rejected=%d@,%d warnings@]"
    s.strategy s.placement_cost s.pins_total s.pin_slots_long s.pin_slots_short
    s.pins_colocated s.sleds s.sled_entries s.sled_bytes s.slot_expansions s.chain_hops
    s.dollops_placed s.dollops_split s.layouts_computed s.layout_reuses s.alloc_queries
    s.alloc_hits s.overflow_bytes s.text_free_bytes s.page_misses s.search_iterations
    s.search_accepted s.search_rejected (List.length s.warnings)
