(** Dollop-placement strategies.

    §III of the paper: layout algorithms are plugins; changing them does
    not require modifying Zipr.  A strategy receives the free-space state
    and a placement request and decides where a dollop goes — possibly
    splitting it to fill a fragment.

    Four strategies ship, mirroring the paper's design space:

    - {!naive}: first-fit at the lowest free address (§II-C's unoptimized
      algorithm);
    - {!optimized}: the §III allocator — place dollops within short-jump
      range of their referent so the 2-byte reference form survives,
      prefer pages that already contain pinned addresses (they will be
      resident anyway, so filling them adds no MaxRSS), split large
      dollops into fragments, spill to overflow only as a last resort;
    - {!random}: uniformly random placement over the free text gaps —
      the maximum-flexibility layout-diversity configuration the paper
      describes as the default's natural by-product;
    - {!search}: per-decision optimization over the explicit {!Cost}
      model — candidates from every tier the optimized allocator knows
      (near-referent, pinned-page, whole text gaps, split, overflow) are
      scored and the cheapest wins, with a fragmentation lookahead that
      turns first-fit into best-fit; on heavily shattered address spaces
      a simulated-annealing walk over randomly sampled gaps (driven by
      the deterministic per-run {!Zipr_util.Rng}) replaces exhaustive
      enumeration. *)

type ctx = {
  space : Memspace.t;
  rng : Zipr_util.Rng.t;
  pinned_page : int -> bool;  (** does this 4-KiB page number contain a pin? *)
  tally : Cost.tally;
      (** per-run search accounting (iterations, accepted/rejected
          moves); strategies that do not search leave it untouched *)
}

type request = {
  size : int;  (** encoded dollop size, connector included *)
  referent : int option;
      (** address of the (short) reference that wants this dollop, when
          placement can still keep that reference 2 bytes *)
  min_prefix : int;  (** smallest useful split: first insn + connector *)
}

type decision =
  | Place_at of int  (** whole dollop at this (reserved) address *)
  | Place_split of { addr : int; capacity : int }
      (** put the largest prefix fitting [capacity] at [addr] (reserved),
          re-queue the rest *)

type t = {
  name : string;
  decide : ctx -> request -> decision;
  colocate_at_pin : bool;
      (** try placing a pinned row's dollop {e at} its pinned address,
          eliminating the reference jump entirely (an optimized-layout
          refinement of "place dollops as close to their referents as
          possible") *)
  prefer_short_pins : bool;
      (** reserve 2-byte reference slots at pins and relax to 5 bytes only
          when the target lands out of range (§III); [false] reserves
          5-byte slots whenever the pin gap allows (§II-C3 expansion) *)
  weights : Cost.weights option;
      (** the cost model this strategy optimizes, when it has one; the
          reassembler evaluates it over the final stats to report
          [placement_cost] (greedy strategies report under
          {!Cost.default_weights}) *)
}

val naive : t
val optimized : t
val random : t

type search_knobs = {
  weights : Cost.weights;  (** objective; see {!Cost.default_weights} *)
  budget : int;
      (** max candidates evaluated per decision: enumeration scans at
          most this many whole text gaps; annealing draws this many
          random proposals *)
  beam : int;  (** survivors re-ranked with the fragmentation lookahead *)
  anneal_gaps : int;
      (** text-gap count above which annealing replaces enumeration *)
  epsilon : float;
      (** probability of diversifying uniformly over the beam instead of
          taking the argmin — the diversity-vs-overhead dial; [0.] is
          fully greedy and draws nothing from the rng *)
}

val default_search_knobs : search_knobs
(** budget 16, beam 4, anneal threshold 96 gaps, epsilon 0. *)

val search : ?knobs:search_knobs -> unit -> t
(** The cost-model search strategy (name ["search"]).  Deterministic for
    a fixed seed: every rng draw comes from the per-run stream in
    {!ctx}, so corpus runs stay byte-identical at any [--jobs]. *)

val by_name : string -> t option
(** ["search"] resolves to {!search} with {!default_search_knobs}. *)

val names : string list

val resolve :
  ?budget:int -> ?epsilon:float -> ?weights_spec:string -> string -> (t, string) result
(** Total strategy construction for CLI/serve surfaces: unknown names,
    malformed weight specs (see {!Cost.weights_of_spec}), non-positive
    budgets and out-of-range epsilons come back as [Error] with a
    printable message.  The knobs only affect ["search"]; other
    strategies ignore them. *)
