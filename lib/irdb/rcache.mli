(** Byte-budgeted LRU over structured in-memory payloads — the storage
    layer behind the routine-granular (delta) IR cache.

    Unlike {!Cache}, which stores serialized strings, payloads here stay
    structured and are shared by reference: a hit costs a hashtable
    probe, not a codec parse.  Thread-safe (one mutex per cache, like
    {!Cache}); the optional disk layer writes framed entries atomically
    through a caller-supplied codec. *)

type 'a disk = {
  dir : string;
  encode : 'a -> string;
  decode : string -> 'a option;  (** total: garbage decodes to [None] *)
}

type 'a t

val create :
  ?capacity:int ->
  ?max_bytes:int ->
  ?disk:'a disk ->
  name:string ->
  weigh:('a -> int) ->
  unit ->
  'a t
(** [name] prefixes the obs counters ([<name>.evictions],
    [<name>.resident_bytes], [<name>.oversize_skips]); [weigh] estimates
    a payload's resident bytes for the [max_bytes] budget.  Defaults:
    capacity 4096 entries, no byte budget, no disk layer.  A payload
    weighing more than the whole budget is refused outright. *)

val find : 'a t -> string -> 'a option
val store : 'a t -> key:string -> 'a -> unit

val mem_entries : 'a t -> int
val resident_bytes : 'a t -> int
val evictions : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val stores : 'a t -> int
