let row_to_string (r : Db.row) =
  let opt_id = function Some i -> string_of_int i | None -> "-" in
  let opt_addr = function Some a -> Printf.sprintf "0x%x" a | None -> "-" in
  Printf.sprintf "%5d: %-28s ft=%-5s tgt=%-5s pin=%-10s orig=%-10s%s%s" r.Db.id
    (Zvm.Insn.to_string r.Db.insn)
    (opt_id r.Db.fallthrough) (opt_id r.Db.target) (opt_addr r.Db.pinned)
    (opt_addr r.Db.orig_addr)
    (if r.Db.fixed then " fixed" else "")
    (match r.Db.func with Some f -> Printf.sprintf " f%d" f | None -> "")

let to_string db =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "entry: %d\n" (Db.entry db));
  List.iter
    (fun id -> Buffer.add_string buf (row_to_string (Db.row db id) ^ "\n"))
    (Db.ids db);
  Buffer.add_string buf "pins:\n";
  List.iter
    (fun (addr, id) -> Buffer.add_string buf (Printf.sprintf "  0x%x -> %d\n" addr id))
    (Db.pinned_addresses db);
  Buffer.add_string buf "funcs:\n";
  List.iter
    (fun (f : Db.func) ->
      Buffer.add_string buf (Printf.sprintf "  f%d %s entry=%d\n" f.Db.fid f.Db.fname f.Db.entry))
    (Db.funcs db);
  List.iter
    (fun s -> Buffer.add_string buf (Format.asprintf "added: %a\n" Zelf.Section.pp s))
    (Db.added_sections db);
  Buffer.contents buf

let pp ppf db = Format.pp_print_string ppf (to_string db)

(* -- machine-readable persistence -- *)

let opt_int = function Some v -> string_of_int v | None -> "-"

let serialize db =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "ZIRDB1\n";
  Buffer.add_string buf (Printf.sprintf "E %d\n" (Db.entry db));
  List.iter
    (fun id ->
      let r = Db.row db id in
      Buffer.add_string buf
        (Printf.sprintf "R %d %s %s %s %s %s %d %s\n" r.Db.id
           (Zipr_util.Hex.of_bytes (Zvm.Encode.to_bytes r.Db.insn))
           (opt_int r.Db.fallthrough) (opt_int r.Db.target) (opt_int r.Db.pinned)
           (opt_int r.Db.orig_addr)
           (if r.Db.fixed then 1 else 0)
           (opt_int r.Db.func)))
    (Db.ids db);
  List.iter
    (fun (f : Db.func) ->
      Buffer.add_string buf (Printf.sprintf "F %d %s %d\n" f.Db.fid f.Db.fname f.Db.entry))
    (Db.funcs db);
  List.iter
    (fun (addr, _) ->
      if Db.pin_is_marked db addr then Buffer.add_string buf (Printf.sprintf "M %d\n" addr))
    (Db.pinned_addresses db);
  Buffer.contents buf

(* -- exact (v2) codec: id-preserving round trip -- *)

let row_record (r : Db.row) =
  Printf.sprintf "R %d %s %s %s %s %s %d %s\n" r.Db.id
    (Zipr_util.Hex.of_bytes (Zvm.Encode.to_bytes r.Db.insn))
    (opt_int r.Db.fallthrough) (opt_int r.Db.target) (opt_int r.Db.pinned)
    (opt_int r.Db.orig_addr)
    (if r.Db.fixed then 1 else 0)
    (opt_int r.Db.func)

let serialize_exact db =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "ZIRDB2\n";
  Buffer.add_string buf (Printf.sprintf "E %d\n" (Db.entry db));
  List.iter (fun id -> Buffer.add_string buf (row_record (Db.row db id))) (Db.ids db);
  List.iter
    (fun (f : Db.func) ->
      Buffer.add_string buf (Printf.sprintf "F %d %s %d\n" f.Db.fid f.Db.fname f.Db.entry))
    (Db.funcs db);
  List.iter
    (fun addr -> Buffer.add_string buf (Printf.sprintf "M %d\n" addr))
    (Db.marked_pins db);
  Buffer.contents buf

exception Parse of string

let deserialize ~orig text =
  let db = Db.create ~orig () in
  let id_map : (int, Db.insn_id) Hashtbl.t = Hashtbl.create 256 in
  (* Deferred work that needs the complete id map. *)
  let links = ref [] in
  let funcs = ref [] in
  let marks = ref [] in
  let entry = ref None in
  let parse_opt s = if s = "-" then None else Some (int_of_string s) in
  try
    List.iteri
      (fun lineno line ->
        let fail msg = raise (Parse (Printf.sprintf "line %d: %s" (lineno + 1) msg)) in
        match String.split_on_char ' ' (String.trim line) with
        | [ "" ] | [] -> ()
        | [ "ZIRDB1" ] -> ()
        | [ "E"; e ] -> entry := Some (int_of_string e)
        | [ "R"; id; hex; ft; tgt; pin; orig_addr; fixed; func ] -> (
            let bytes = Zipr_util.Hex.to_bytes hex in
            match Zvm.Decode.decode_bytes bytes ~pos:0 with
            | Error e -> fail (Printf.sprintf "bad instruction: %s" (Zvm.Decode.error_to_string e))
            | Ok (insn, len) ->
                if len <> Bytes.length bytes then fail "trailing bytes in instruction";
                let new_id = Db.add_insn ?orig_addr:(parse_opt orig_addr) db insn in
                Hashtbl.replace id_map (int_of_string id) new_id;
                links := (new_id, parse_opt ft, parse_opt tgt, parse_opt pin) :: !links;
                if fixed = "1" then (Db.row db new_id).Db.fixed <- true;
                match parse_opt func with
                | Some f -> funcs := (`Member (new_id, f)) :: !funcs
                | None -> ())
        | "F" :: fid :: fname :: [ fentry ] ->
            funcs := `Func (int_of_string fid, fname, int_of_string fentry) :: !funcs
        | [ "M"; addr ] -> marks := int_of_string addr :: !marks
        | _ -> fail "unrecognized record")
      (String.split_on_char '\n' text);
    let resolve old =
      match Hashtbl.find_opt id_map old with
      | Some id -> id
      | None -> raise (Parse (Printf.sprintf "dangling row id %d" old))
    in
    List.iter
      (fun (id, ft, tgt, pin) ->
        Db.set_fallthrough db id (Option.map resolve ft);
        Db.set_target db id (Option.map resolve tgt);
        match pin with Some addr -> Db.pin db id addr | None -> ())
      !links;
    (* Functions: declare in ascending fid order so ids are stable, then
       stamp members. *)
    let decls =
      List.filter_map (function `Func (fid, name, e) -> Some (fid, name, e) | _ -> None) !funcs
      |> List.sort compare
    in
    List.iter
      (fun (expected_fid, name, fentry) ->
        let fid = Db.add_func db ~fname:name ~entry:(resolve fentry) in
        if fid <> expected_fid then raise (Parse "function ids not dense"))
      decls;
    List.iter
      (function `Member (id, fid) -> Db.set_func db id fid | `Func _ -> ())
      !funcs;
    List.iter (Db.mark_pin db) !marks;
    (match !entry with Some e -> Db.set_entry db (resolve e) | None -> ());
    Ok db
  with
  | Parse msg -> Error msg
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg

let deserialize_exact ?size_hint ~orig text =
  let db = Db.create ?size_hint ~orig () in
  let entry = ref (-1) in
  let next_fid = ref 0 in
  let parse_opt s = if s = "-" then None else Some (int_of_string s) in
  try
    List.iteri
      (fun lineno line ->
        let fail msg = raise (Parse (Printf.sprintf "line %d: %s" (lineno + 1) msg)) in
        match String.split_on_char ' ' (String.trim line) with
        | [ "" ] | [] -> ()
        | [ "ZIRDB2" ] -> if lineno <> 0 then fail "misplaced ZIRDB2 header"
        | [ "ZIRDB1" ] -> fail "version 1 dump; use deserialize"
        | [ "E"; e ] -> entry := int_of_string e
        | [ "R"; id; hex; ft; tgt; pin; orig_addr; fixed; func ] -> (
            let bytes = Zipr_util.Hex.to_bytes hex in
            match Zvm.Decode.decode_bytes bytes ~pos:0 with
            | Error e -> fail (Printf.sprintf "bad instruction: %s" (Zvm.Decode.error_to_string e))
            | Ok (insn, len) ->
                if len <> Bytes.length bytes then fail "trailing bytes in instruction";
                let new_id = Db.add_insn ?orig_addr:(parse_opt orig_addr) db insn in
                (* The exact codec promises id preservation: records are
                   written ascending and dense, so replaying them through
                   [add_insn] must reproduce every id bit-for-bit. *)
                if new_id <> int_of_string id then
                  fail (Printf.sprintf "non-dense row id %s (got %d)" id new_id);
                Db.set_fallthrough db new_id (parse_opt ft);
                Db.set_target db new_id (parse_opt tgt);
                (match parse_opt pin with Some a -> Db.pin db new_id a | None -> ());
                if fixed = "1" then (Db.row db new_id).Db.fixed <- true;
                match parse_opt func with
                | Some f -> Db.set_func db new_id f
                | None -> ())
        | "F" :: fid :: fname :: [ fentry ] ->
            let fid = int_of_string fid in
            if fid <> !next_fid then fail "function ids not dense";
            incr next_fid;
            ignore (Db.add_func db ~fname ~entry:(int_of_string fentry))
        | [ "M"; addr ] -> Db.mark_pin db (int_of_string addr)
        | _ -> fail "unrecognized record")
      (String.split_on_char '\n' text);
    if !entry >= 0 then Db.set_entry db !entry;
    (* Links were stored as raw ids; confirm they all landed on live rows
       (and the other structural invariants) before handing the db out. *)
    (match Db.validate db with
    | [] -> ()
    | issues -> raise (Parse (String.concat "; " issues)));
    Ok db
  with
  | Parse msg -> Error msg
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg
