let version = "ZIRCACHE1"

type t = {
  capacity : int;
  max_bytes : int option;
  dir : string option;
  max_disk_entries : int option;
  max_disk_bytes : int option;
  lock : Mutex.t;
  entries : (string, string) Hashtbl.t;
  last_use : (string, int) Hashtbl.t;
  mutable tick : int;
  mutable resident : int;  (* sum of entry_bytes over [entries] *)
  mutable evicted : int;
  mutable oversize : int;
  mutable disk_evicted : int;
}

let create ?(capacity = 64) ?max_bytes ?dir ?max_disk_entries ?max_disk_bytes () =
  (match dir with
  | Some d -> ( try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | None -> ());
  {
    capacity = max 1 capacity;
    max_bytes = Option.map (max 1) max_bytes;
    dir;
    max_disk_entries = Option.map (max 1) max_disk_entries;
    max_disk_bytes = Option.map (max 1) max_disk_bytes;
    lock = Mutex.create ();
    entries = Hashtbl.create 64;
    last_use = Hashtbl.create 64;
    tick = 0;
    resident = 0;
    evicted = 0;
    oversize = 0;
    disk_evicted = 0;
  }

let dir t = t.dir

(* Length-prefix every part so ["ab"; "c"] and ["a"; "bc"] hash apart. *)
let key parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let touch t k =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.last_use k t.tick

(* What an entry charges against the byte budget: its key and payload,
   the two strings the memory layer actually retains. *)
let entry_bytes k payload = String.length k + String.length payload

let evict_one t =
  let age k = Option.value (Hashtbl.find_opt t.last_use k) ~default:0 in
  let victim =
    Hashtbl.fold
      (fun k _ acc -> match acc with Some k' when age k' <= age k -> acc | _ -> Some k)
      t.entries None
  in
  match victim with
  | Some k ->
      (match Hashtbl.find_opt t.entries k with
      | Some payload -> t.resident <- t.resident - entry_bytes k payload
      | None -> ());
      Hashtbl.remove t.entries k;
      Hashtbl.remove t.last_use k;
      t.evicted <- t.evicted + 1;
      Obs.count "irdb.cache.evictions" 1
  | None ->
      Hashtbl.reset t.entries;
      t.resident <- 0

(* Insert under both bounds: at most [capacity] entries, and — when a
   byte budget is set — at most [max_bytes] resident bytes.  Eviction is
   strictly least-recently-used for both triggers.  A payload that alone
   exceeds the budget is not admitted at all (evicting the whole cache
   for one entry that still would not fit buys nothing). *)
let insert t k payload =
  (match Hashtbl.find_opt t.entries k with
  | Some old ->
      t.resident <- t.resident - entry_bytes k old;
      Hashtbl.remove t.entries k;
      Hashtbl.remove t.last_use k
  | None -> ());
  let sz = entry_bytes k payload in
  match t.max_bytes with
  | Some budget when sz > budget ->
      t.oversize <- t.oversize + 1;
      Obs.count "irdb.cache.oversize_skips" 1
  | _ ->
      let over_budget () =
        match t.max_bytes with Some budget -> t.resident + sz > budget | None -> false
      in
      while
        Hashtbl.length t.entries > 0
        && (Hashtbl.length t.entries >= t.capacity || over_budget ())
      do
        evict_one t
      done;
      Hashtbl.replace t.entries k payload;
      t.resident <- t.resident + sz;
      touch t k;
      Obs.gauge_max "irdb.cache.resident_bytes" t.resident

(* -- disk layer -- *)

let frame k payload = version ^ " " ^ k ^ "\n" ^ payload

(* The key is embedded in the file so a renamed, truncated or corrupted
   entry reads as a miss, never as a wrong payload. *)
let unframe k s =
  let header = version ^ " " ^ k ^ "\n" in
  let hl = String.length header in
  if String.length s >= hl && String.sub s 0 hl = header then
    Some (String.sub s hl (String.length s - hl))
  else None

let entry_path d k = Filename.concat d (k ^ ".zirc")

let read_file p =
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try Some (really_input_string ic (in_channel_length ic))
          with Sys_error _ | End_of_file -> None)

let disk_find t k =
  match t.dir with
  | None -> None
  | Some d -> Option.bind (read_file (entry_path d k)) (unframe k)

(* Bound the directory after a write.  The scan is O(entries) per store,
   which is fine at cache scale, and — unlike an in-memory shadow count —
   stays correct when several processes share the directory.  Oldest
   mtime goes first: a coarse LRU (reads do not touch files), but
   eviction order only affects future hit rates, never correctness. *)
let prune_disk t d =
  match (t.max_disk_entries, t.max_disk_bytes) with
  | None, None -> ()
  | _ -> (
      try
        let files =
          Sys.readdir d |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".zirc")
          |> List.filter_map (fun f ->
                 let p = Filename.concat d f in
                 match Unix.stat p with
                 | { Unix.st_mtime; st_size; _ } -> Some (st_mtime, st_size, p)
                 | exception Unix.Unix_error _ -> None)
          |> List.sort compare
        in
        let count = ref (List.length files) in
        let bytes = ref (List.fold_left (fun a (_, sz, _) -> a + sz) 0 files) in
        let over () =
          (match t.max_disk_entries with Some n -> !count > n | None -> false)
          || match t.max_disk_bytes with Some b -> !bytes > b | None -> false
        in
        List.iter
          (fun (_, sz, p) ->
            if over () then begin
              (try Sys.remove p with Sys_error _ -> ());
              decr count;
              bytes := !bytes - sz;
              t.disk_evicted <- t.disk_evicted + 1;
              Obs.count "irdb.cache.disk_evictions" 1
            end)
          files
      with Sys_error _ -> ())

let disk_store t k payload =
  match t.dir with
  | None -> ()
  | Some d -> (
      (* Write-to-temp + rename keeps concurrent readers (and workers on
         other domains writing the same key) from ever observing a partial
         entry; the domain id keeps temp names from colliding. *)
      let tmp =
        Filename.concat d (Printf.sprintf ".tmp.%s.%d" k (Domain.self () :> int))
      in
      try
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (frame k payload));
        Sys.rename tmp (entry_path d k);
        prune_disk t d
      with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ()))

(* -- lookup / store -- *)

let find t k =
  Obs.count "irdb.cache.lookups" 1;
  with_lock t (fun () ->
      match Hashtbl.find_opt t.entries k with
      | Some payload ->
          touch t k;
          Obs.count "irdb.cache.mem_hits" 1;
          Some payload
      | None -> (
          match disk_find t k with
          | Some payload ->
              insert t k payload;
              Obs.count "irdb.cache.disk_hits" 1;
              Some payload
          | None ->
              Obs.count "irdb.cache.misses" 1;
              None))

let store t ~key:k payload =
  Obs.count "irdb.cache.stores" 1;
  with_lock t (fun () ->
      insert t k payload;
      disk_store t k payload)

let mem_entries t = with_lock t (fun () -> Hashtbl.length t.entries)
let resident_bytes t = with_lock t (fun () -> t.resident)
let evictions t = with_lock t (fun () -> t.evicted)
let oversize_skips t = with_lock t (fun () -> t.oversize)
let disk_evictions t = with_lock t (fun () -> t.disk_evicted)
