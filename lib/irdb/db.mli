(** The IR database (IRDB).

    The IRDB mediates communication between the pipeline phases exactly as
    in the paper: IR construction populates it, transformations edit it,
    and reassembly reads it back out.  (The paper's IRDB is SQL-backed;
    this one is in-memory with a textual dump — see DESIGN.md for the
    substitution note.)

    The central entities are {e instruction rows}.  A row holds a logical
    instruction plus the two logical links the paper's §II-A calls out:

    - [fallthrough]: the row executed next in straight-line order, [None]
      for instructions without fallthrough ([jmp], [ret], ...);
    - [target]: the row a {e direct} control-flow instruction transfers to.
      Direct branches in the IRDB never carry meaningful encoded
      displacements — the logical [target] link is the truth, and
      displacements are recomputed from placement at reassembly time.

    A row may carry a {e pinned address}: the original-program address at
    which something may arrive indirectly at run time.  Reassembly
    guarantees that when the rewritten program's PC reaches a pinned
    address, the pinned row's (possibly transformed) instruction executes
    (paper §II-A2, Figure 2).

    Rows whose [fixed] flag is set belong to byte ranges the disassembler
    aggregation could not prove to be pure code (paper §II-A1 cases 2/3);
    they are kept at their original addresses with their original bytes. *)

type insn_id = int

type row = {
  id : insn_id;
  mutable insn : Zvm.Insn.t;
  mutable fallthrough : insn_id option;
  mutable target : insn_id option;
  mutable pinned : int option;
  mutable fixed : bool;
  orig_addr : int option;  (** provenance; [None] for transform-inserted code *)
  mutable func : int option;  (** owning function, once {!set_func} assigns one *)
}

type func = { fid : int; fname : string; entry : insn_id }

type t

val create : ?size_hint:int -> orig:Zelf.Binary.t -> unit -> t
(** An empty IRDB for rewriting the given binary.  [size_hint] presizes
    the row and original-address indexes (IR construction passes the
    aggregate's decoded-boundary count so the tables never rehash during
    the build). *)

val orig : t -> Zelf.Binary.t

(* Row creation and access *)

val add_insn : ?orig_addr:int -> t -> Zvm.Insn.t -> insn_id
(** Add an isolated row (no links). *)

val row : t -> insn_id -> row
(** Raises [Not_found] for a dead or unknown id. *)

val find_by_orig_addr : t -> int -> insn_id option
(** The row whose [orig_addr] is the given original-program address. *)

val set_fallthrough : t -> insn_id -> insn_id option -> unit
val set_target : t -> insn_id -> insn_id option -> unit

val pin : t -> insn_id -> int -> unit
(** Pin a row to an original address.  At most one row per address; raises
    [Invalid_argument] if the address is already pinned to another row. *)

val pinned_addresses : t -> (int * insn_id) list
(** All (address, row) pins, sorted by address. *)

val count : t -> int
(** Live instruction rows. *)

val iter : t -> (row -> unit) -> unit
(** Iterate rows in unspecified order. *)

val ids : t -> insn_id list
(** Live ids, ascending — a stable iteration order for transforms. *)

(* Structural editing (the user-transform API's foundation) *)

val insert_before : t -> insn_id -> Zvm.Insn.t -> insn_id
(** Insert an instruction in front of a row, {e stealing its identity}:
    every incoming link (fallthrough, target, pinned address) that led to
    the old instruction now executes the new instruction first.  Returns
    the id now holding the {e original} instruction.  This is how security
    checks are interposed before a protected instruction. *)

val insert_after : t -> insn_id -> Zvm.Insn.t -> insn_id
(** Insert on the fallthrough edge after a row.  Raises
    [Invalid_argument] on rows with no fallthrough. *)

val append_chain : t -> Zvm.Insn.t list -> insn_id
(** Create a fresh fallthrough-linked chain (e.g. a violation handler) and
    return its head.  The list must be non-empty, and its last instruction
    should not fall through (the chain's tail fallthrough is [None]). *)

val splice_out : t -> insn_id -> unit
(** Remove a row, redirecting incoming links to its fallthrough.  Raises
    [Invalid_argument] if the row has no fallthrough or is pinned-fixed. *)

val replace : t -> insn_id -> Zvm.Insn.t -> unit
(** Overwrite a row's instruction in place, keeping all links. *)

(* Entry point *)

val set_entry : t -> insn_id -> unit
val entry : t -> insn_id

(* Functions *)

val add_func : t -> fname:string -> entry:insn_id -> int
val funcs : t -> func list
val set_func : t -> insn_id -> int -> unit
val func_insns : t -> int -> insn_id list
(** Rows assigned to the function, ascending id. *)

(* Transform-added data *)

val add_section : t -> Zelf.Section.t -> unit
(** Record a new data section the transform wants in the output binary. *)

val added_sections : t -> Zelf.Section.t list

val next_free_vaddr : t -> int
(** A page-aligned address beyond the original binary and all added
    sections, where a transform may place new data. *)

(* Pin prologue *)

val set_pin_prologue : t -> Zvm.Insn.t list -> unit
(** Instructions the reassembler must emit at every pinned address, in
    front of the reference jump (and in front of a colocated dollop).
    Used by CFI to put a landing marker at every legitimate
    indirect-branch target.  Only fallthrough-only instructions are
    allowed; raises [Invalid_argument] otherwise. *)

val pin_prologue : t -> Zvm.Insn.t list

(* Relocations in transform-added data *)

type reloc = { reloc_section : string; reloc_offset : int; reloc_target : insn_id }

val add_reloc : t -> section:string -> offset:int -> target:insn_id -> unit
(** Ask reassembly to patch a 32-bit little-endian cell of a
    transform-added section with the {e final} address of an instruction
    row.  This is how statically modelled indirect-branch targets (e.g. a
    rewritten jump table) follow their instructions to wherever placement
    puts them.  The reloc also {e demands} the target: reassembly places
    it even if no code reference does. *)

val relocs : t -> reloc list

val mark_pin : t -> int -> unit
(** Mark a pinned address as a potential {e indirect-branch target} (as
    opposed to, e.g., a conservatively pinned after-call site).  The pin
    prologue is emitted only at marked pins; unmarked pins keep bare
    reference slots and stay eligible for native resolution when a dollop
    reassembles over them. *)

val pin_is_marked : t -> int -> bool

val marked_pins : t -> int list
(** Every address passed to {!mark_pin}, ascending — including marks on
    addresses whose pin was later dropped.  Needed by the exact
    persistence codec ({!Dump.serialize_exact}). *)

(* Copy *)

val copy : ?orig:Zelf.Binary.t -> t -> t
(** Structural deep copy: fresh row records and index tables, so edits to
    the copy never reach the original.  [?orig] rebinds the copy to a
    different original binary (used by the assembled-IR memo, whose key
    guarantees the text bytes are identical; data sections may differ and
    must come from the {e current} binary at reassembly).  Immutable
    payloads (instructions, section records, function list) are shared. *)

(* Consistency *)

val validate : t -> string list
(** Structural invariant check, for tests and post-transform sanity:
    every fallthrough/target link lands on a live row; no fallthrough out
    of a non-falling instruction; the pin table and row pin fields agree;
    the entry (when set) is live; function entries are live.  Returns a
    list of violations (empty = consistent). *)
