type insn_id = int

type row = {
  id : insn_id;
  mutable insn : Zvm.Insn.t;
  mutable fallthrough : insn_id option;
  mutable target : insn_id option;
  mutable pinned : int option;
  mutable fixed : bool;
  orig_addr : int option;
  mutable func : int option;
}

type func = { fid : int; fname : string; entry : insn_id }

type reloc = { reloc_section : string; reloc_offset : int; reloc_target : insn_id }

type t = {
  orig_binary : Zelf.Binary.t;
  (* Dense id-indexed store: ids are allocated sequentially, so an array
     beats a hashtable on every row access (the IR build and the
     transforms touch every row several times).  [None] marks a row
     spliced out. *)
  mutable rows : row option array;
  mutable live : int;
  by_orig : (int, insn_id) Hashtbl.t;
  by_pin : (int, insn_id) Hashtbl.t;
  mutable next_id : int;
  mutable entry_id : insn_id;
  mutable functions : func list;  (* reversed *)
  mutable next_fid : int;
  mutable extra_sections : Zelf.Section.t list;  (* reversed *)
  mutable pin_prologue_insns : Zvm.Insn.t list;
  marked_pins : (int, unit) Hashtbl.t;
  mutable reloc_list : reloc list;  (* reversed *)
}

let create ?(size_hint = 1024) ~orig () =
  let size_hint = max 16 size_hint in
  {
    orig_binary = orig;
    rows = Array.make size_hint None;
    live = 0;
    by_orig = Hashtbl.create size_hint;
    by_pin = Hashtbl.create (max 64 (size_hint / 8));
    next_id = 0;
    entry_id = -1;
    functions = [];
    next_fid = 0;
    extra_sections = [];
    pin_prologue_insns = [];
    marked_pins = Hashtbl.create 32;
    reloc_list = [];
  }

let orig t = t.orig_binary

let set_row t id r =
  (if id >= Array.length t.rows then begin
     let grown = Array.make (max (2 * Array.length t.rows) (id + 1)) None in
     Array.blit t.rows 0 grown 0 (Array.length t.rows);
     t.rows <- grown
   end);
  t.rows.(id) <- Some r;
  t.live <- t.live + 1

let add_insn ?orig_addr t insn =
  let id = t.next_id in
  t.next_id <- id + 1;
  let r =
    { id; insn; fallthrough = None; target = None; pinned = None; fixed = false; orig_addr; func = None }
  in
  set_row t id r;
  (match orig_addr with Some a -> Hashtbl.replace t.by_orig a id | None -> ());
  id

let row t id =
  if id < 0 || id >= t.next_id then raise Not_found
  else match t.rows.(id) with Some r -> r | None -> raise Not_found

let find_by_orig_addr t addr = Hashtbl.find_opt t.by_orig addr

let set_fallthrough t id ft = (row t id).fallthrough <- ft
let set_target t id tgt = (row t id).target <- tgt

let pin t id addr =
  (match Hashtbl.find_opt t.by_pin addr with
  | Some other when other <> id ->
      invalid_arg (Printf.sprintf "Db.pin: address 0x%x already pinned to row %d" addr other)
  | _ -> ());
  Hashtbl.replace t.by_pin addr id;
  (row t id).pinned <- Some addr

let pinned_addresses t =
  Hashtbl.fold (fun addr id acc -> (addr, id) :: acc) t.by_pin []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let count t = t.live

let iter t f =
  for id = 0 to t.next_id - 1 do
    match t.rows.(id) with Some r -> f r | None -> ()
  done

let ids t =
  let acc = ref [] in
  for id = t.next_id - 1 downto 0 do
    if t.rows.(id) <> None then acc := id :: !acc
  done;
  !acc

(* Identity-stealing insertion: the existing row keeps its id (so all
   incoming fallthrough/target/pin references still reach it) but now holds
   the inserted instruction; the displaced instruction moves to a fresh row
   that the modified row falls through to. *)
let insert_before t id insn =
  let r = row t id in
  (* A fixed row's bytes cannot change; stealing its identity would break
     the fixed-range guarantee. *)
  if r.fixed then invalid_arg "Db.insert_before: cannot insert before a fixed row";
  let moved_id = t.next_id in
  t.next_id <- moved_id + 1;
  let moved =
    {
      id = moved_id;
      insn = r.insn;
      fallthrough = r.fallthrough;
      target = r.target;
      pinned = None;
      fixed = false;
      orig_addr = None;
      func = r.func;
    }
  in
  set_row t moved_id moved;
  r.insn <- insn;
  r.fallthrough <- Some moved_id;
  r.target <- None;
  moved_id

let insert_after t id insn =
  let r = row t id in
  match r.fallthrough with
  | None -> invalid_arg "Db.insert_after: row has no fallthrough"
  | Some ft ->
      let nid = add_insn t insn in
      let n = row t nid in
      n.fallthrough <- Some ft;
      n.func <- r.func;
      r.fallthrough <- Some nid;
      nid

let append_chain t insns =
  match insns with
  | [] -> invalid_arg "Db.append_chain: empty chain"
  | _ ->
      let ids = List.map (fun i -> add_insn t i) insns in
      let rec link = function
        | a :: (b :: _ as rest) ->
            set_fallthrough t a (Some b);
            link rest
        | _ -> ()
      in
      link ids;
      List.hd ids

let splice_out t id =
  let r = row t id in
  if r.fixed then invalid_arg "Db.splice_out: cannot remove a fixed row";
  match r.fallthrough with
  | None -> invalid_arg "Db.splice_out: row has no fallthrough"
  | Some ft ->
      (* Redirect every incoming link to the successor. *)
      iter t (fun r2 ->
          if r2.fallthrough = Some id then r2.fallthrough <- Some ft;
          if r2.target = Some id then r2.target <- Some ft);
      if t.entry_id = id then t.entry_id <- ft;
      (match r.pinned with
      | Some a ->
          let ftr = row t ft in
          (match ftr.pinned with
          | Some other when other <> a ->
              invalid_arg
                (Printf.sprintf
                   "Db.splice_out: successor already pinned (0x%x vs 0x%x)" other a)
          | _ -> ());
          Hashtbl.replace t.by_pin a ft;
          ftr.pinned <- Some a
      | None -> ());
      (match r.orig_addr with
      | Some a when Hashtbl.find_opt t.by_orig a = Some id -> Hashtbl.remove t.by_orig a
      | _ -> ());
      t.rows.(id) <- None;
      t.live <- t.live - 1

let replace t id insn = (row t id).insn <- insn

let set_entry t id = t.entry_id <- id
let entry t = t.entry_id

let add_func t ~fname ~entry =
  let fid = t.next_fid in
  t.next_fid <- fid + 1;
  t.functions <- { fid; fname; entry } :: t.functions;
  fid

let funcs t = List.rev t.functions

let set_func t id fid = (row t id).func <- Some fid

let func_insns t fid =
  let acc = ref [] in
  for id = t.next_id - 1 downto 0 do
    match t.rows.(id) with
    | Some r when r.func = Some fid -> acc := id :: !acc
    | _ -> ()
  done;
  !acc

let add_section t s = t.extra_sections <- s :: t.extra_sections

let added_sections t = List.rev t.extra_sections

let set_pin_prologue t insns =
  List.iter
    (fun i ->
      if not (Zvm.Insn.has_fallthrough i) || Zvm.Insn.is_control_flow i then
        invalid_arg "Db.set_pin_prologue: prologue must be fallthrough-only")
    insns;
  t.pin_prologue_insns <- insns

let pin_prologue t = t.pin_prologue_insns

let add_reloc t ~section ~offset ~target =
  t.reloc_list <- { reloc_section = section; reloc_offset = offset; reloc_target = target } :: t.reloc_list

let relocs t = List.rev t.reloc_list

let mark_pin t addr = Hashtbl.replace t.marked_pins addr ()

let pin_is_marked t addr = Hashtbl.mem t.marked_pins addr

let marked_pins t =
  Hashtbl.fold (fun addr () acc -> addr :: acc) t.marked_pins [] |> List.sort compare

(* Structural deep copy: fresh row records and index tables, optionally
   rebound to a different (byte-identical-in-text) original binary.  This
   is what makes an assembled-IR cache hit cheap — the memoized pristine
   Db is never handed out directly (transforms mutate rows in place);
   each hit pays only the copy, a fraction of rebuilding rows and links
   from an aggregate. *)
let copy ?orig t =
  let rows = Array.map (Option.map (fun r -> { r with id = r.id })) t.rows in
  {
    orig_binary = (match orig with Some b -> b | None -> t.orig_binary);
    rows;
    live = t.live;
    by_orig = Hashtbl.copy t.by_orig;
    by_pin = Hashtbl.copy t.by_pin;
    next_id = t.next_id;
    entry_id = t.entry_id;
    functions = t.functions;
    next_fid = t.next_fid;
    extra_sections = t.extra_sections;
    pin_prologue_insns = t.pin_prologue_insns;
    marked_pins = Hashtbl.copy t.marked_pins;
    reloc_list = t.reloc_list;
  }

let validate t =
  let issues = ref [] in
  let issue fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  let live id = id >= 0 && id < t.next_id && t.rows.(id) <> None in
  iter t (fun r ->
      let id = r.id in
      (match r.fallthrough with
      | Some ft when not (live ft) -> issue "row %d: dead fallthrough %d" id ft
      | Some _ when not (Zvm.Insn.has_fallthrough r.insn) ->
          issue "row %d: fallthrough out of %s" id (Zvm.Insn.to_string r.insn)
      | _ -> ());
      (match r.target with
      | Some tgt when not (live tgt) -> issue "row %d: dead target %d" id tgt
      | _ -> ());
      match r.pinned with
      | Some addr when Hashtbl.find_opt t.by_pin addr <> Some id ->
          issue "row %d: pin 0x%x not in the pin table" id addr
      | _ -> ())
    ;
  Hashtbl.iter
    (fun addr id ->
      if not (live id) then issue "pin 0x%x: dead row %d" addr id
      else if (row t id).pinned <> Some addr then issue "pin 0x%x: row %d disagrees" addr id)
    t.by_pin;
  if t.entry_id >= 0 && not (live t.entry_id) then issue "entry row %d is dead" t.entry_id;
  List.iter
    (fun f -> if not (live f.entry) then issue "function %s: dead entry %d" f.fname f.entry)
    t.functions;
  List.rev !issues

let next_free_vaddr t =
  let page = 4096 in
  let top =
    List.fold_left
      (fun acc (s : Zelf.Section.t) -> max acc (Zelf.Section.vend s))
      (Zelf.Binary.max_vend t.orig_binary)
      t.extra_sections
  in
  (top + page - 1) / page * page
