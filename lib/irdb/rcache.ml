(* A mutex-protected, byte-budgeted LRU over structured (in-memory)
   payloads — the storage layer behind the routine-granular IR cache.

   {!Cache} stores serialized strings; restoring a whole-binary snapshot
   through a codec costs a large fraction of a cold build (string parse +
   IRDB deserialize).  The delta path instead caches {e structured}
   fragments and assembled IR and shares them by reference, so a hit
   costs a hashtable probe, not a parse.  Payload type is a parameter;
   the caller supplies a [weigh] function (approximate resident bytes)
   for the byte budget, and optionally a serializer pair to enable a disk
   layer (atomic temp-file + rename, self-keyed framing, same discipline
   as {!Cache}). *)

type 'a disk = {
  dir : string;
  encode : 'a -> string;
  decode : string -> 'a option;
}

type 'a t = {
  name : string;  (* obs counter prefix, e.g. "delta.frag" *)
  capacity : int;
  max_bytes : int option;
  weigh : 'a -> int;
  disk : 'a disk option;
  lock : Mutex.t;
  entries : (string, 'a) Hashtbl.t;
  last_use : (string, int) Hashtbl.t;
  mutable tick : int;
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;
  mutable stores : int;
}

let version = "ZIRRC1"

let create ?(capacity = 4096) ?max_bytes ?disk ~name ~weigh () =
  (match disk with
  | Some d -> (
      try Unix.mkdir d.dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | None -> ());
  {
    name;
    capacity = max 1 capacity;
    max_bytes = Option.map (max 1) max_bytes;
    weigh;
    disk;
    lock = Mutex.create ();
    entries = Hashtbl.create 256;
    last_use = Hashtbl.create 256;
    tick = 0;
    resident = 0;
    hits = 0;
    misses = 0;
    evicted = 0;
    stores = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let touch t k =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.last_use k t.tick

let entry_bytes t k v = String.length k + t.weigh v

let evict_one t =
  let age k = Option.value (Hashtbl.find_opt t.last_use k) ~default:0 in
  let victim =
    Hashtbl.fold
      (fun k _ acc -> match acc with Some k' when age k' <= age k -> acc | _ -> Some k)
      t.entries None
  in
  match victim with
  | Some k ->
      (match Hashtbl.find_opt t.entries k with
      | Some v -> t.resident <- t.resident - entry_bytes t k v
      | None -> ());
      Hashtbl.remove t.entries k;
      Hashtbl.remove t.last_use k;
      t.evicted <- t.evicted + 1;
      Obs.count (t.name ^ ".evictions") 1
  | None ->
      Hashtbl.reset t.entries;
      t.resident <- 0

let insert t k v =
  (match Hashtbl.find_opt t.entries k with
  | Some old ->
      t.resident <- t.resident - entry_bytes t k old;
      Hashtbl.remove t.entries k;
      Hashtbl.remove t.last_use k
  | None -> ());
  let sz = entry_bytes t k v in
  match t.max_bytes with
  | Some budget when sz > budget -> Obs.count (t.name ^ ".oversize_skips") 1
  | _ ->
      let over_budget () =
        match t.max_bytes with Some budget -> t.resident + sz > budget | None -> false
      in
      while
        Hashtbl.length t.entries > 0
        && (Hashtbl.length t.entries >= t.capacity || over_budget ())
      do
        evict_one t
      done;
      Hashtbl.replace t.entries k v;
      t.resident <- t.resident + sz;
      touch t k;
      Obs.gauge_max (t.name ^ ".resident_bytes") t.resident

(* -- disk layer (optional; structured payloads go through the caller's
   codec, framed and written atomically exactly like {!Cache}) -- *)

let entry_path dir k = Filename.concat dir (k ^ ".zirr")

let frame k payload = version ^ " " ^ k ^ "\n" ^ payload

let unframe k s =
  let header = version ^ " " ^ k ^ "\n" in
  let hl = String.length header in
  if String.length s >= hl && String.sub s 0 hl = header then
    Some (String.sub s hl (String.length s - hl))
  else None

let read_file p =
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try Some (really_input_string ic (in_channel_length ic))
          with Sys_error _ | End_of_file -> None)

let disk_find t k =
  match t.disk with
  | None -> None
  | Some d ->
      Option.bind (read_file (entry_path d.dir k)) (fun s ->
          Option.bind (unframe k s) d.decode)

let disk_store t k v =
  match t.disk with
  | None -> ()
  | Some d -> (
      let tmp =
        Filename.concat d.dir (Printf.sprintf ".tmp.%s.%d" k (Domain.self () :> int))
      in
      try
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (frame k (d.encode v)));
        Sys.rename tmp (entry_path d.dir k)
      with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ()))

(* -- lookup / store -- *)

let find t k =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.entries k with
      | Some v ->
          touch t k;
          t.hits <- t.hits + 1;
          Some v
      | None -> (
          match disk_find t k with
          | Some v ->
              insert t k v;
              t.hits <- t.hits + 1;
              Some v
          | None ->
              t.misses <- t.misses + 1;
              None))

let store t ~key:k v =
  with_lock t (fun () ->
      t.stores <- t.stores + 1;
      insert t k v;
      disk_store t k v)

let mem_entries t = with_lock t (fun () -> Hashtbl.length t.entries)
let resident_bytes t = with_lock t (fun () -> t.resident)
let evictions t = with_lock t (fun () -> t.evicted)
let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let stores t = with_lock t (fun () -> t.stores)
