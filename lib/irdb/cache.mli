(** Content-addressed store for IR snapshots.

    IR construction is the dominant pipeline phase (see DESIGN.md's phase
    cost table), yet for a fixed input binary and pin configuration it is
    a pure function — so the fuzz harness and [Corpus.rewrite_all], which
    revisit the same binaries many times, can skip it entirely.  This
    module is the store: payloads (serialized IR snapshots, opaque
    strings here) are addressed by a digest of everything that determines
    them, so a stale entry is structurally unreachable rather than merely
    invalidated.

    The store is a mutex-protected in-memory LRU with an optional on-disk
    layer ([ziprtool batch --cache DIR]).  Disk entries embed their own
    key, so corruption or renaming reads back as a miss, never as a wrong
    payload; writes go through a temp file + atomic rename, so concurrent
    domains racing on one key each publish a complete entry.  All
    operations are safe to call from multiple domains sharing one [t]. *)

type t

val create :
  ?capacity:int ->
  ?max_bytes:int ->
  ?dir:string ->
  ?max_disk_entries:int ->
  ?max_disk_bytes:int ->
  unit ->
  t
(** [capacity] bounds the in-memory entry count (default 64; least
    recently used entries are evicted).  [max_bytes] additionally bounds
    the total resident bytes (key + payload per entry): inserting past
    the budget evicts least-recently-used entries until the newcomer
    fits, and a single entry larger than the whole budget is not
    admitted at all ({!oversize_skips} counts those).  With no
    [max_bytes] the store is entry-count bounded only.  [dir] enables
    the disk layer; the directory is created if missing.

    [max_disk_entries] / [max_disk_bytes] bound the disk layer: after
    each store the directory is pruned oldest-mtime-first until both
    bounds hold ({!disk_evictions} counts removals).  The scan-based
    prune stays correct when several processes share the directory.
    Unbounded by default (the pre-existing behaviour). *)

val key : string list -> string
(** Digest of the given parts (length-prefixed, so part boundaries are
    unambiguous).  Callers include every input that determines the
    payload: codec version, input bytes, configuration fingerprint. *)

val find : t -> string -> string option
(** Memory first, then disk (a disk hit is promoted into memory). *)

val store : t -> key:string -> string -> unit

val dir : t -> string option

val mem_entries : t -> int
(** In-memory entry count, for tests of the eviction policy. *)

val resident_bytes : t -> int
(** Total bytes the in-memory layer currently holds (sum over entries of
    key + payload length).  Always [<= max_bytes] when a budget is set. *)

val evictions : t -> int
(** Entries evicted so far (capacity- or budget-triggered). *)

val oversize_skips : t -> int
(** Payloads refused because they alone exceed [max_bytes]. *)

val disk_evictions : t -> int
(** Disk entries this [t] pruned to keep the directory within
    [max_disk_entries] / [max_disk_bytes]. *)
