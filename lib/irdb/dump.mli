(** Human-readable IRDB dumps.

    The paper's IRDB is persisted in SQL so that pipeline stages can run
    as separate processes; here a deterministic textual dump serves the
    debugging half of that role (golden-file tests, [ziprtool disasm]
    output, postmortems on failed rewrites). *)

val to_string : Db.t -> string
(** One line per row, ascending id, followed by pin, function and section
    summaries.  Deterministic for a given IRDB state. *)

val pp : Format.formatter -> Db.t -> unit

val row_to_string : Db.row -> string

(** {1 Machine-readable persistence}

    The paper's IRDB is a database precisely so pipeline phases can run
    as separate processes; [serialize]/[deserialize] provide that
    capability here.  The format is line-based: one [R] record per row
    (instruction bytes hex-encoded, so the roundtrip is exact), plus
    entry/function/pin/mark records. *)

val serialize : Db.t -> string

val deserialize : orig:Zelf.Binary.t -> string -> (Db.t, string) result
(** Rebuild an IRDB over the original binary it was constructed from.
    Row ids are preserved.  Transform-added sections and relocations are
    {e not} persisted (persist before transformation, as the pipeline
    does between its phases). *)

(** {2 Exact (version 2) codec}

    The IR cache needs a {e bit-exact} round trip: a db restored from a
    snapshot must reassemble to the same bytes as the db that produced
    it, which means row ids (placement iterates them in order), every
    pin mark (including marks whose pin was later dropped) and the entry
    sentinel must all survive.  [serialize_exact]/[deserialize_exact]
    are that codec; the [ZIRDB2] header keeps the two formats from being
    confused.  [deserialize_exact] re-validates the structural invariants
    and errors (rather than degrading) on ids it cannot reproduce. *)

val serialize_exact : Db.t -> string

val deserialize_exact :
  ?size_hint:int -> orig:Zelf.Binary.t -> string -> (Db.t, string) result
