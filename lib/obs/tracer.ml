(* The span sink: completed spans plus an aggregate counter registry.

   Spans are recorded on completion under a single mutex; the clock is
   [Unix.gettimeofday] hardened into a monotonic one by a CAS-max clamp
   ([now] never goes backwards), so every recorded span satisfies

     ts >= 0, dur >= 0, and child [ts, ts+dur] within its parent's

   — the invariants the Chrome exporter and the CI schema check rely on.

   Timestamps are integer microseconds relative to sink creation; the
   [path] is the slash-joined nesting chain maintained by [Obs.span]
   (e.g. "rewrite/reassemble/drain"), which gives the aggregated report
   stable keys and lets a consumer compare child-span sums against their
   parent without reconstructing nesting from timestamps. *)

type event = {
  path : string;  (* slash-joined nesting chain; the aggregation key *)
  name : string;  (* leaf name, shown by Chrome *)
  tid : int;  (* domain id: one lane per worker in chrome://tracing *)
  ts_us : int;
  dur_us : int;
  args : (string * string) list;
}

type t = {
  lock : Mutex.t;
  last_us : int Atomic.t;  (* monotonic clamp over gettimeofday *)
  origin_us : int;
  mutable events : event list;  (* completion order, newest first *)
  counters : Counters.t;
}

let wall_us () = int_of_float (Unix.gettimeofday () *. 1e6)

let create () =
  let o = wall_us () in
  {
    lock = Mutex.create ();
    last_us = Atomic.make o;
    origin_us = o;
    events = [];
    counters = Counters.create ();
  }

(* Monotonic read: a backwards wall-clock step (NTP slew, VM migration)
   reads as "no time passed", never as negative time. *)
let now t =
  let rec go () =
    let cur = Atomic.get t.last_us in
    let w = wall_us () in
    if w <= cur then cur
    else if Atomic.compare_and_set t.last_us cur w then w
    else go ()
  in
  go () - t.origin_us

let record t ev =
  Mutex.lock t.lock;
  t.events <- ev :: t.events;
  Mutex.unlock t.lock

(* Completion order (a child always precedes its parent). *)
let events t =
  Mutex.lock t.lock;
  let es = t.events in
  Mutex.unlock t.lock;
  List.rev es

let counters t = t.counters

(* -- aggregation -- *)

type row = { row_path : string; count : int; total_us : int; min_us : int; max_us : int }

let aggregate t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let cur =
        match Hashtbl.find_opt tbl e.path with
        | Some r -> r
        | None -> { row_path = e.path; count = 0; total_us = 0; min_us = max_int; max_us = 0 }
      in
      Hashtbl.replace tbl e.path
        {
          cur with
          count = cur.count + 1;
          total_us = cur.total_us + e.dur_us;
          min_us = min cur.min_us e.dur_us;
          max_us = max cur.max_us e.dur_us;
        })
    (events t);
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b -> compare a.row_path b.row_path)

(* The schedule-independent projection: span paths with their counts and
   the Sum counters.  Durations, domain ids and Max gauges (queue depth)
   depend on timing and worker layout and are deliberately excluded, so
   two corpus runs over the same inputs produce the same summary at any
   [--jobs]. *)
let deterministic_summary t =
  let b = Buffer.create 256 in
  List.iter
    (fun r -> Buffer.add_string b (Printf.sprintf "span %s %d\n" r.row_path r.count))
    (aggregate t);
  List.iter
    (fun (n, kind, v) ->
      if kind = Counters.Sum then Buffer.add_string b (Printf.sprintf "counter %s %d\n" n v))
    (Counters.snapshot t.counters);
  Buffer.contents b

(* -- exporters -- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Chrome trace_event format: one complete ("ph":"X") event per span,
   loadable by chrome://tracing and Perfetto.  The nesting path rides in
   [args.path]; counters are mirrored in a top-level "counters" object
   (viewers ignore unknown keys, jq does not have to).  Events are sorted
   by (tid, ts, -dur, path) so the output is stable for a given run. *)
let chrome_json t =
  let es =
    List.sort
      (fun a b -> compare (a.tid, a.ts_us, -a.dur_us, a.path) (b.tid, b.ts_us, -b.dur_us, b.path))
      (events t)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n  {\"name\": \"%s\", \"cat\": \"zipr\", \"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"ts\": %d, \"dur\": %d, \"args\": {\"path\": \"%s\""
           (json_escape e.name) e.tid e.ts_us e.dur_us (json_escape e.path));
      List.iter
        (fun (k, v) ->
          Buffer.add_string b (Printf.sprintf ", \"%s\": \"%s\"" (json_escape k) (json_escape v)))
        e.args;
      Buffer.add_string b "}}")
    es;
  Buffer.add_string b "\n],\n\"counters\": {";
  List.iteri
    (fun i (n, _, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n  \"%s\": %d" (json_escape n) v))
    (Counters.snapshot t.counters);
  Buffer.add_string b "\n}}\n";
  Buffer.contents b

(* Flat aggregated report: per-path totals plus the full counter
   registry, as JSON (for CI/jq) or a text table (for humans). *)
let report_json t =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\"spans\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n  {\"path\": \"%s\", \"count\": %d, \"total_us\": %d, \"min_us\": %d, \"max_us\": %d}"
           (json_escape r.row_path) r.count r.total_us r.min_us r.max_us))
    (aggregate t);
  Buffer.add_string b "\n],\n\"counters\": [";
  List.iteri
    (fun i (n, kind, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n  {\"name\": \"%s\", \"kind\": \"%s\", \"value\": %d}" (json_escape n)
           (Counters.kind_to_string kind) v))
    (Counters.snapshot t.counters);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let render t =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "%-52s %7s %12s %10s %10s\n" "span" "count" "total(ms)" "min(ms)" "max(ms)");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-52s %7d %12.3f %10.3f %10.3f\n" r.row_path r.count
           (float_of_int r.total_us /. 1e3)
           (float_of_int r.min_us /. 1e3)
           (float_of_int r.max_us /. 1e3)))
    (aggregate t);
  let counters = Counters.snapshot t.counters in
  if counters <> [] then begin
    Buffer.add_string b (Printf.sprintf "%-52s %7s\n" "counter" "value");
    List.iter
      (fun (n, kind, v) ->
        Buffer.add_string b
          (Printf.sprintf "%-52s %7d%s\n" n v
             (match kind with Counters.Max -> "  (high-water)" | Counters.Sum -> "")))
      counters
  end;
  Buffer.contents b
