(* Zero-dependency observability: phase spans and atomic counters.

   One process-global sink, installed explicitly by an entry point
   (ziprtool --trace, bench --trace, a test) and shared by every domain.
   With no sink installed, every entry point is a single atomic load and
   a branch — no allocation, no clock read, no lock — so instrumented
   code pays nothing in the default configuration.  Instrumentation only
   ever reads clocks and bumps counters: it cannot influence placement,
   RNG streams or emitted bytes, which is what keeps rewritten outputs
   byte-identical with tracing on or off.

   Span nesting is tracked per domain through a DLS stack of names; a
   span's [path] is the slash-joined chain ("rewrite/reassemble/drain").
   [~root:true] detaches a span from whatever is open on the current
   domain — used for pool tasks, so a task traces identically whether it
   ran inline (jobs=1, inside the caller's spans) or on a worker domain
   (empty stack), keeping aggregated corpus reports jobs-independent. *)

module Counters = Counters
module Tracer = Tracer

let current : Tracer.t option Atomic.t = Atomic.make None

let install sink = Atomic.set current (Some sink)
let disable () = Atomic.set current None
let active () = Atomic.get current
let enabled () = Atomic.get current <> None

let stack : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let span ?(root = false) ?(args = []) name f =
  match Atomic.get current with
  | None -> f ()
  | Some sink ->
      let st = Domain.DLS.get stack in
      let saved = !st in
      let frames = name :: (if root then [] else saved) in
      st := frames;
      let path = String.concat "/" (List.rev frames) in
      let t0 = Tracer.now sink in
      Fun.protect
        ~finally:(fun () ->
          let t1 = Tracer.now sink in
          st := saved;
          Tracer.record sink
            {
              Tracer.path;
              name;
              tid = (Domain.self () :> int);
              ts_us = t0;
              dur_us = t1 - t0;
              args;
            })
        f

(* Global counter bumps.  [name] should be a literal (or otherwise
   precomputed) so the disabled path stays allocation-free. *)
let count name n =
  match Atomic.get current with
  | None -> ()
  | Some sink -> Counters.bump (Counters.counter (Tracer.counters sink) name) n

let gauge_max name v =
  match Atomic.get current with
  | None -> ()
  | Some sink -> Counters.bump (Counters.gauge (Tracer.counters sink) name) v

(* Fold a per-run registry (a Reassemble state's, a Memspace's) into the
   sink's aggregate.  Sum cells add and Max cells max, so the merged
   totals are independent of which domain merged first. *)
let merge_counters c =
  match Atomic.get current with
  | None -> ()
  | Some sink -> Counters.merge ~into:(Tracer.counters sink) c
