(* Atomic counter/gauge registry.

   A registry is a named collection of integer cells.  Cells are atomic
   so Domain workers can bump them race-free; the registry's own table is
   mutex-protected but only touched on registration and snapshot, never
   on the bump path.  Two kinds:

     [Sum] — ordinary counters; [bump] adds, merges add.
     [Max] — high-water gauges (queue depth and the like); [bump] takes
             the maximum, merges take the maximum.

   Both operations are commutative and associative, so merging registries
   from several domains yields the same totals in any order — the
   property that keeps aggregated corpus reports independent of the
   worker schedule. *)

type kind = Sum | Max

type cell = { name : string; kind : kind; v : int Atomic.t }

type t = { lock : Mutex.t; tbl : (string, cell) Hashtbl.t }

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 32 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Registration is idempotent; re-registering under a different kind is a
   programming error, not a data race, so it raises. *)
let cell ~kind t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some c ->
          if c.kind <> kind then
            invalid_arg (Printf.sprintf "Counters.cell: %S registered with another kind" name);
          c
      | None ->
          let c = { name; kind; v = Atomic.make 0 } in
          Hashtbl.add t.tbl name c;
          c)

let counter t name = cell ~kind:Sum t name
let gauge t name = cell ~kind:Max t name

let bump c n =
  match c.kind with
  | Sum -> ignore (Atomic.fetch_and_add c.v n)
  | Max ->
      let rec go () =
        let cur = Atomic.get c.v in
        if n > cur && not (Atomic.compare_and_set c.v cur n) then go ()
      in
      go ()

let incr c = bump c 1
let get c = Atomic.get c.v
let name c = c.name
let kind c = c.kind

let kind_to_string = function Sum -> "sum" | Max -> "max"

(* Sorted by name: a deterministic projection of the registry. *)
let snapshot t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ c acc -> (c.name, c.kind, Atomic.get c.v) :: acc) t.tbl [])
  |> List.sort compare

let merge ~into t =
  List.iter (fun (n, kind, v) -> bump (cell ~kind into n) v) (snapshot t)
