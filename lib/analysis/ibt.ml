type reason =
  | Entry
  | Data_scan
  | Code_immediate
  | Jump_table
  | After_call
  | Fixed_target
  | Fixed_fallthrough
  | Computed_target

type config = { pin_after_calls : bool }

let default_config = { pin_after_calls = true }

type t = { table : (int, reason list) Hashtbl.t }

let reason_to_string = function
  | Entry -> "entry"
  | Data_scan -> "data-scan"
  | Code_immediate -> "code-immediate"
  | Jump_table -> "jump-table"
  | After_call -> "after-call"
  | Fixed_target -> "fixed-range-target"
  | Fixed_fallthrough -> "fixed-range-fallthrough"
  | Computed_target -> "computed-target"

let add t addr reason =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.table addr) in
  if not (List.mem reason existing) then Hashtbl.replace t.table addr (reason :: existing)

let immediate_refs ~lo ~hi insn =
  let open Zvm.Insn in
  let candidates =
    match insn with
    | Movi (_, v) | Pushi v | Leaa (_, v) | Cmpi (_, v) -> [ v ]
    | _ -> []
  in
  List.filter (fun v -> v >= lo && v < hi) candidates

let compute ?(config = default_config) binary (agg : Disasm.Aggregate.t) =
  let text = Zelf.Binary.text binary in
  let lo = text.Zelf.Section.vaddr and hi = Zelf.Section.vend text in
  let t = { table = Hashtbl.create 64 } in
  add t binary.Zelf.Binary.entry Entry;
  (* Address constants in data sections. *)
  List.iter (fun a -> add t a Data_scan) (Disasm.Recursive.scan_for_text_addresses binary);
  (* Jump-table entries (also covers PC-relative tables living in text,
     which the data scan does not see). *)
  let tables = Jumptable.find binary agg in
  List.iter (fun a -> add t a Jump_table) (Jumptable.all_entries tables);
  (* Computed-jump targets the inference pass resolved by constant
     folding: the run-time computation produces these original
     addresses, so they are indirect branch targets the scans above
     cannot see (masked pointers).  Empty unless [--infer] ran. *)
  List.iter (fun a -> add t a Computed_target) agg.Disasm.Aggregate.pin_hints;
  (* Immediates and after-call sites in decoded code; branch targets of
     fixed ranges. *)
  let ambiguous = Zipr_util.Interval_set.of_ranges (Disasm.Aggregate.ambiguous_ranges agg) in
  let in_ambiguous addr = Zipr_util.Interval_set.mem ambiguous addr in
  Hashtbl.iter
    (fun addr (insn, len) ->
      List.iter (fun a -> add t a Code_immediate) (immediate_refs ~lo ~hi insn);
      (match insn with
      | Zvm.Insn.Call _ | Zvm.Insn.Callr _ when config.pin_after_calls ->
          if addr + len < hi then add t (addr + len) After_call
      | _ -> ());
      if in_ambiguous addr then begin
        (* The fixed range keeps its original branch bytes: their targets
           must remain valid at original addresses. *)
        (match Zvm.Insn.static_target ~at:addr insn with
        | Some tgt when tgt >= lo && tgt < hi && not (in_ambiguous tgt) -> add t tgt Fixed_target
        | _ -> ());
        (* Fallthrough escaping the range's end. *)
        if Zvm.Insn.has_fallthrough insn && (not (in_ambiguous (addr + len))) && addr + len < hi
        then add t (addr + len) Fixed_fallthrough
      end)
    agg.Disasm.Aggregate.insn_at;
  t

let pins t =
  Hashtbl.fold (fun addr reasons acc -> (addr, List.rev reasons) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Inverse of [pins] (which reverses the per-address reason lists), so
   [of_pins (pins t)] round-trips exactly. *)
let of_pins entries =
  let t = { table = Hashtbl.create (max 64 (List.length entries)) } in
  List.iter (fun (addr, reasons) -> Hashtbl.replace t.table addr (List.rev reasons)) entries;
  t

let addresses t = List.map fst (pins t)

let is_pinned t addr = Hashtbl.mem t.table addr

let count t = Hashtbl.length t.table
