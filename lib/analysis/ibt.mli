(** Pinned-address analysis: computing the set [P] of the paper's §II-A2.

    Correctness requires [B ⊆ P], where [B] is the set of every
    indirect-branch-target address of the original program; efficiency
    wants [P] as close to [B] as possible, since every spurious pin
    fragments the rewritten text and costs space (§II-A2, §III, and the
    pathological CB of §IV-B).  The heuristics, in the lineage of ILR
    (Hiser et al.) and PSI (Zhang et al.):

    - the program entry point is pinned;
    - every text-range 32-bit constant found anywhere in data sections is
      pinned (function-pointer tables, vtables, jump tables);
    - every text-range immediate in decoded code is pinned (address
      materialization the analysis cannot model);
    - each jump-table entry is pinned;
    - the address after every call is pinned when [pin_after_calls] is
      set (the conservative default: return addresses escape through the
      stack, and code is free to compute on them);
    - ambiguous (fixed) ranges keep their original bytes, so any address
      such bytes can transfer control to — static branch targets of their
      decoded instructions, and the fallthrough address just past the
      range — must also be pinned;
    - every computed-jump target the inference pass resolved by constant
      folding ({!Disasm.Aggregate.t.pin_hints}, populated only under
      [--infer]) is pinned: the run-time computation produces the
      original address, which no scan above can see when the pointer is
      stored masked. *)

type reason =
  | Entry
  | Data_scan
  | Code_immediate
  | Jump_table
  | After_call
  | Fixed_target
  | Fixed_fallthrough
  | Computed_target

type config = {
  pin_after_calls : bool;
      (** default [true]; turning it off shrinks [P] at the cost of
          assuming no code computes on return addresses *)
}

val default_config : config

type t

val compute : ?config:config -> Zelf.Binary.t -> Disasm.Aggregate.t -> t

val pins : t -> (int * reason list) list
(** Pinned addresses ascending, each with every reason that pinned it. *)

val of_pins : (int * reason list) list -> t
(** Rebuild a pin set from [pins] output — the IR cache restores the
    analysis result instead of re-running the analysis. *)

val addresses : t -> int list

val is_pinned : t -> int -> bool

val count : t -> int

val reason_to_string : reason -> string
