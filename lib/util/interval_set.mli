(** Sets of disjoint half-open integer intervals.

    The reassembler tracks the free regions of the rewritten program's
    address space with one of these: placing a dollop removes an interval,
    giving bytes back (e.g. relaxing a 5-byte reservation down to a 2-byte
    jump) re-inserts one.  Intervals are [\[lo, hi)]; adjacent and
    overlapping intervals are coalesced on insertion.

    The representation is an AVL tree keyed on interval start, augmented
    per subtree with the member count, total bytes, and maximum member
    width, so the placement queries ({!first_fit}, {!fit_in_window},
    {!best_fit_near}, ...) run in [O(log n)] by pruning any subtree whose
    widest member is below the requested size; {!total} and {!count} are
    [O(1)].  Fit queries treat a non-positive [size] as 1. *)

type t

val empty : t

val is_empty : t -> bool

val add : t -> lo:int -> hi:int -> t
(** Insert [\[lo, hi)], merging with any overlapping or adjacent members.
    Empty or negative ranges are ignored. *)

val remove : t -> lo:int -> hi:int -> t
(** Remove every point of [\[lo, hi)] from the set, splitting members as
    needed. *)

val mem : t -> int -> bool
(** Is the point inside some interval?  [O(log n)]. *)

val find_containing : t -> int -> (int * int) option
(** The member interval containing the point, if any.  [O(log n)] — this
    is the containment query IR construction and IBT analysis issue per
    address against the data/fixed/ambiguous range sets. *)

val of_ranges : (int * int) list -> t
(** Build a set from arbitrary [(lo, hi)] pairs (overlap and adjacency
    are coalesced, empty ranges ignored), e.g. the range lists the
    disassembler aggregation emits. *)

val contains_range : t -> lo:int -> hi:int -> bool
(** Is the whole of [\[lo, hi)] inside a single member interval? *)

val total : t -> int
(** Sum of member lengths.  [O(1)]. *)

val count : t -> int
(** Number of member intervals.  [O(1)]. *)

val intervals : t -> (int * int) list
(** Members in increasing order. *)

val first_fit : t -> size:int -> int option
(** Lowest address [a] such that [\[a, a+size)] is free. *)

val first_fit_at_or_after : t -> pos:int -> size:int -> int option
(** Lowest [a >= pos] such that [\[a, a+size)] is free. *)

val best_fit_near : t -> center:int -> size:int -> int option
(** Free start address for a [size]-byte block minimizing distance to
    [center]; ties resolve to the lower address. *)

val fit_in_window : t -> lo:int -> hi:int -> size:int -> int option
(** Free start address [a] with [lo <= a] and [a + size <= hi], preferring
    the lowest such [a]. *)

val largest : t -> (int * int) option
(** The member with the most bytes (lowest-addressed on ties), if any. *)

val fitting_count : t -> size:int -> int
(** How many members are at least [size] bytes wide.  [O(matches + log n)]. *)

val kth_fit : t -> size:int -> k:int -> (int * int) option
(** The [k]-th (0-based, ascending) member at least [size] bytes wide.
    Subtrees without a fit are pruned, so selection visits only fitting
    regions of the tree. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f t acc] folds [f lo hi] over members in increasing order. *)

val find_map : (int -> int -> 'a option) -> t -> 'a option
(** First [Some] produced by [f lo hi] over members in increasing order,
    stopping early. *)

val pp : Format.formatter -> t -> unit

val invariants : t -> string list
(** Structural self-check (balance, augmentation, ordering); empty when
    healthy.  For the property tests. *)
