(** Deterministic pseudo-random number generation.

    Every randomized component of the system (workload generators, pollers,
    layout diversity) draws from an explicit generator state so that a given
    seed always reproduces the same corpus, the same inputs and the same
    layouts.  The implementation is splitmix64, which is small, fast and has
    good statistical quality for simulation purposes. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a fresh generator from a 63-bit seed. *)

val copy : t -> t
(** [copy t] snapshots the generator; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t].  Use this to give sub-components their own stream. *)

val derive : corpus_seed:int -> index:int -> int
(** [derive ~corpus_seed ~index] is a stateless splitmix-style mixer that
    maps a corpus seed and a shard index to an independent, non-negative
    63-bit seed.  Unlike {!split} it needs no shared generator state, so a
    parallel corpus run can hand binary [index] its own stream without any
    cross-worker coordination — the seed depends only on the pair, never on
    scheduling or worker count. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val choose : t -> 'a array -> 'a
(** Uniformly pick an element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniformly pick an element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniformly random bytes. *)
