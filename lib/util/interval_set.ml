(* Sets of disjoint half-open integer intervals, stored as an AVL tree
   keyed on interval start and augmented per subtree with the member
   count, total byte count and maximum member width.  The augmentation is
   what makes the allocator queries (first_fit, fit_in_window,
   best_fit_near, ...) logarithmic: a subtree whose max width is below
   the requested size cannot contain a fit and is pruned wholesale.

   Invariant: intervals are non-empty, disjoint, and non-adjacent (gaps
   of at least one byte), so every mutation can reason locally about at
   most a few neighbours. *)

type t =
  | Leaf
  | Node of {
      l : t;
      lo : int;
      hi : int;
      r : t;
      h : int;  (* AVL height *)
      n : int;  (* members in this subtree *)
      bytes : int;  (* sum of member widths in this subtree *)
      maxw : int;  (* widest member in this subtree *)
    }

let empty = Leaf

let is_empty t = t = Leaf

let height = function Leaf -> 0 | Node nd -> nd.h
let count = function Leaf -> 0 | Node nd -> nd.n
let total = function Leaf -> 0 | Node nd -> nd.bytes
let max_width = function Leaf -> 0 | Node nd -> nd.maxw

let mk l lo hi r =
  Node
    {
      l;
      lo;
      hi;
      r;
      h = 1 + max (height l) (height r);
      n = 1 + count l + count r;
      bytes = hi - lo + total l + total r;
      maxw = max (hi - lo) (max (max_width l) (max_width r));
    }

(* Rebalancing in the style of the stdlib Map: tolerate a height skew of
   2, rotate beyond that. *)
let bal l lo hi r =
  let hl = height l and hr = height r in
  if hl > hr + 2 then
    match l with
    | Leaf -> assert false
    | Node ln ->
        if height ln.l >= height ln.r then mk ln.l ln.lo ln.hi (mk ln.r lo hi r)
        else (
          match ln.r with
          | Leaf -> assert false
          | Node lrn -> mk (mk ln.l ln.lo ln.hi lrn.l) lrn.lo lrn.hi (mk lrn.r lo hi r))
  else if hr > hl + 2 then
    match r with
    | Leaf -> assert false
    | Node rn ->
        if height rn.r >= height rn.l then mk (mk l lo hi rn.l) rn.lo rn.hi rn.r
        else (
          match rn.l with
          | Leaf -> assert false
          | Node rln -> mk (mk l lo hi rln.l) rln.lo rln.hi (mk rln.r rn.lo rn.hi rn.r))
  else mk l lo hi r

(* Insert a member known to be disjoint from (and non-adjacent to) every
   existing member, except that an exact key match replaces. *)
let rec insert t lo hi =
  match t with
  | Leaf -> mk Leaf lo hi Leaf
  | Node nd ->
      if lo < nd.lo then bal (insert nd.l lo hi) nd.lo nd.hi nd.r
      else if lo > nd.lo then bal nd.l nd.lo nd.hi (insert nd.r lo hi)
      else mk nd.l lo hi nd.r

let rec min_member = function
  | Leaf -> invalid_arg "Interval_set.min_member"
  | Node { l = Leaf; lo; hi; _ } -> (lo, hi)
  | Node nd -> min_member nd.l

let rec remove_min = function
  | Leaf -> assert false
  | Node { l = Leaf; r; _ } -> r
  | Node nd -> bal (remove_min nd.l) nd.lo nd.hi nd.r

let glue l r =
  match (l, r) with
  | Leaf, t | t, Leaf -> t
  | _ ->
      let lo, hi = min_member r in
      bal l lo hi (remove_min r)

(* Delete the member whose start is exactly [key] (no-op otherwise). *)
let rec delete t key =
  match t with
  | Leaf -> Leaf
  | Node nd ->
      if key < nd.lo then bal (delete nd.l key) nd.lo nd.hi nd.r
      else if key > nd.lo then bal nd.l nd.lo nd.hi (delete nd.r key)
      else glue nd.l nd.r

(* Find the member starting at or immediately before [p]. *)
let rec pred_member t p =
  match t with
  | Leaf -> None
  | Node nd ->
      if p < nd.lo then pred_member nd.l p
      else (match pred_member nd.r p with Some _ as m -> m | None -> Some (nd.lo, nd.hi))

(* Find the member starting at or immediately after [p]. *)
let rec succ_member t p =
  match t with
  | Leaf -> None
  | Node nd ->
      if p > nd.lo then succ_member nd.r p
      else (match succ_member nd.l p with Some _ as m -> m | None -> Some (nd.lo, nd.hi))

let mem t p =
  match pred_member t p with Some (_, hi) -> p < hi | None -> false

let find_containing t p =
  match pred_member t p with
  | Some (lo, hi) when p < hi -> Some (lo, hi)
  | _ -> None

let contains_range t ~lo ~hi =
  if hi <= lo then true
  else match pred_member t lo with Some (_, mhi) -> hi <= mhi | None -> false

let add t ~lo ~hi =
  if hi <= lo then t
  else begin
    (* Absorb every member overlapping or adjacent to [lo, hi). *)
    let lo = ref lo and hi = ref hi in
    let t = ref t in
    (match pred_member !t !lo with
    | Some (mlo, mhi) when mhi >= !lo ->
        lo := min !lo mlo;
        hi := max !hi mhi;
        t := delete !t mlo
    | _ -> ());
    let continue = ref true in
    while !continue do
      match succ_member !t !lo with
      | Some (mlo, mhi) when mlo <= !hi ->
          hi := max !hi mhi;
          t := delete !t mlo
      | _ -> continue := false
    done;
    insert !t !lo !hi
  end

let of_ranges ranges =
  List.fold_left (fun t (lo, hi) -> add t ~lo ~hi) empty ranges

let remove t ~lo ~hi =
  if hi <= lo then t
  else begin
    let t = ref t in
    (* Trim the member that starts before [lo] but reaches into the range. *)
    (match pred_member !t lo with
    | Some (mlo, mhi) when mhi > lo ->
        t := delete !t mlo;
        if mlo < lo then t := insert !t mlo lo;
        if mhi > hi then t := insert !t hi mhi
    | _ -> ());
    (* Drop or trim members starting inside the range. *)
    let continue = ref true in
    while !continue do
      match succ_member !t lo with
      | Some (mlo, mhi) when mlo < hi ->
          t := delete !t mlo;
          if mhi > hi then t := insert !t hi mhi
      | _ -> continue := false
    done;
    !t
  end

(* -- fit queries -- *)

(* Every query treats a non-positive size as 1: the set holds no empty
   members, so "any free byte" and "a 1-byte block" coincide, and the
   normalization keeps the max-width pruning argument watertight. *)

let rec leftmost_fit t size =
  match t with
  | Leaf -> None
  | Node nd ->
      if max_width nd.l >= size then leftmost_fit nd.l size
      else if nd.hi - nd.lo >= size then Some (nd.lo, nd.hi)
      else if max_width nd.r >= size then leftmost_fit nd.r size
      else None

let rec rightmost_fit t size =
  match t with
  | Leaf -> None
  | Node nd ->
      if max_width nd.r >= size then rightmost_fit nd.r size
      else if nd.hi - nd.lo >= size then Some (nd.lo, nd.hi)
      else if max_width nd.l >= size then rightmost_fit nd.l size
      else None

(* Members with start >= [pos], decomposed along the search path into an
   ascending list of (lo, hi, right-subtree) pieces; O(log n) of them,
   ordered so that each piece's member precedes its subtree, which
   precedes the next piece. *)
let rec pieces_at_or_after t pos acc =
  match t with
  | Leaf -> acc
  | Node nd ->
      if nd.lo < pos then pieces_at_or_after nd.r pos acc
      else pieces_at_or_after nd.l pos ((nd.lo, nd.hi, nd.r) :: acc)

(* Mirror image: members with start <= [pos], descending. *)
let rec pieces_at_or_before t pos acc =
  match t with
  | Leaf -> acc
  | Node nd ->
      if nd.lo > pos then pieces_at_or_before nd.l pos acc
      else pieces_at_or_before nd.r pos ((nd.lo, nd.hi, nd.l) :: acc)

let first_fit t ~size =
  let size = max 1 size in
  match leftmost_fit t size with Some (lo, _) -> Some lo | None -> None

let first_fit_at_or_after t ~pos ~size =
  let size = max 1 size in
  (* The member containing [pos] offers the lowest conceivable start. *)
  match pred_member t pos with
  | Some (_, mhi) when mhi - pos >= size -> Some pos
  | _ ->
      let rec scan = function
        | [] -> None
        | (mlo, mhi, right) :: rest ->
            if mhi - mlo >= size then Some mlo
            else (
              match leftmost_fit right size with
              | Some (a, _) -> Some a
              | None -> scan rest)
      in
      scan (pieces_at_or_after t (pos + 1) [])

let fit_in_window t ~lo ~hi ~size =
  let size = max 1 size in
  if hi - lo < size then None
  else
    match pred_member t lo with
    | Some (_, mhi) when min mhi hi - lo >= size -> Some lo
    | _ ->
        (* Leftmost member with min(mhi, hi) - mlo >= size.  Clipping at
           [hi] only shrinks a member, so max-width pruning stays sound;
           members starting past [hi - size] cannot fit, which prunes
           every right subtree beyond the window. *)
        let rec fit_clipped t =
          match t with
          | Leaf -> None
          | Node nd -> (
              match (if max_width nd.l >= size then fit_clipped nd.l else None) with
              | Some _ as a -> a
              | None ->
                  if nd.lo + size > hi then None
                  else if min nd.hi hi - nd.lo >= size then Some nd.lo
                  else if max_width nd.r >= size then fit_clipped nd.r
                  else None)
        in
        let rec scan = function
          | [] -> None
          | (mlo, mhi, right) :: rest ->
              if mlo + size > hi then None
              else if min mhi hi - mlo >= size then Some mlo
              else (match fit_clipped right with Some _ as a -> a | None -> scan rest)
        in
        scan (pieces_at_or_after t (lo + 1) [])

let best_fit_near t ~center ~size =
  let size = max 1 size in
  (* Among members starting at or left of [center], the rightmost fitting
     one yields the closest start: candidates there are clamped to
     [hi - size] (or to [center] inside the member containing it), and
     disjointness makes both the starts and ends increase together. *)
  let left =
    let rec scan = function
      | [] -> None
      | (mlo, mhi, lsub) :: rest ->
          if mhi - mlo >= size then Some (mlo, mhi)
          else (match rightmost_fit lsub size with Some _ as m -> m | None -> scan rest)
    in
    scan (pieces_at_or_before t center [])
  in
  (* Among members strictly right of [center], the leftmost fitting one
     minimizes [lo - center]. *)
  let right =
    let rec scan = function
      | [] -> None
      | (mlo, mhi, rsub) :: rest ->
          if mhi - mlo >= size then Some (mlo, mhi)
          else (match leftmost_fit rsub size with Some _ as m -> m | None -> scan rest)
    in
    scan (pieces_at_or_after t (center + 1) [])
  in
  let cand (mlo, mhi) =
    let a = max mlo (min center (mhi - size)) in
    (a, abs (a - center))
  in
  match (Option.map cand left, Option.map cand right) with
  | None, None -> None
  | Some (a, _), None | None, Some (a, _) -> Some a
  | Some (a1, d1), Some (a2, d2) -> Some (if d1 <= d2 then a1 else a2)

let largest t =
  match t with
  | Leaf -> None
  | Node root ->
      (* Descend toward the lowest-addressed member attaining the max. *)
      let rec go t w =
        match t with
        | Leaf -> None
        | Node nd ->
            if max_width nd.l = w then go nd.l w
            else if nd.hi - nd.lo = w then Some (nd.lo, nd.hi)
            else go nd.r w
      in
      go t root.maxw

(* -- fitting-member enumeration (diversity placement) -- *)

let fitting_count t ~size =
  let size = max 1 size in
  let rec go t =
    match t with
    | Leaf -> 0
    | Node nd ->
        if nd.maxw < size then 0
        else
          go nd.l + (if nd.hi - nd.lo >= size then 1 else 0) + go nd.r
  in
  go t

let kth_fit t ~size ~k =
  let size = max 1 size in
  let rec go t k =
    match t with
    | Leaf -> Error k
    | Node nd ->
        if nd.maxw < size then Error k
        else (
          match go nd.l k with
          | Ok _ as m -> m
          | Error k ->
              if nd.hi - nd.lo >= size && k = 0 then Ok (nd.lo, nd.hi)
              else go nd.r (if nd.hi - nd.lo >= size then k - 1 else k))
  in
  match go t k with Ok m -> Some m | Error _ -> None

(* -- traversal -- *)

let rec fold f t acc =
  match t with
  | Leaf -> acc
  | Node nd -> fold f nd.r (f nd.lo nd.hi (fold f nd.l acc))

let intervals t = List.rev (fold (fun lo hi acc -> (lo, hi) :: acc) t [])

let rec find_map f t =
  match t with
  | Leaf -> None
  | Node nd -> (
      match find_map f nd.l with
      | Some _ as m -> m
      | None -> (
          match f nd.lo nd.hi with Some _ as m -> m | None -> find_map f nd.r))

let pp ppf t =
  Format.fprintf ppf "@[<h>";
  ignore (fold (fun lo hi () -> Format.fprintf ppf "[0x%x,0x%x) " lo hi) t ());
  Format.fprintf ppf "@]"

(* -- self check (for the property tests) -- *)

let invariants t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let rec go = function
    | Leaf -> (0, 0, 0, 0)
    | Node nd ->
        let hl, nl, bl, wl = go nd.l and hr, nr, br, wr = go nd.r in
        if nd.hi <= nd.lo then err "empty member [0x%x,0x%x)" nd.lo nd.hi;
        if abs (hl - hr) > 2 then err "imbalance at 0x%x (%d vs %d)" nd.lo hl hr;
        if nd.h <> 1 + max hl hr then err "stale height at 0x%x" nd.lo;
        if nd.n <> 1 + nl + nr then err "stale count at 0x%x" nd.lo;
        if nd.bytes <> nd.hi - nd.lo + bl + br then err "stale byte total at 0x%x" nd.lo;
        if nd.maxw <> max (nd.hi - nd.lo) (max wl wr) then err "stale max width at 0x%x" nd.lo;
        (nd.h, nd.n, nd.bytes, nd.maxw)
  in
  ignore (go t);
  let rec ordered = function
    | (_, h1) :: ((l2, _) :: _ as rest) ->
        if l2 <= h1 then err "members overlap or touch at 0x%x" l2;
        ordered rest
    | _ -> ()
  in
  ordered (intervals t);
  List.rev !errs
