type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: advance the counter and scramble it. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

(* Stateless splitmix64 finalizer, for seed derivation without a
   generator value. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let derive ~corpus_seed ~index =
  (* One gamma step per index keeps streams for consecutive indices as far
     apart as consecutive [split]s, then a double finalize decorrelates
     seeds whose (corpus_seed, index) pairs differ in few bits. *)
  let z =
    Int64.add (Int64.of_int corpus_seed)
      (Int64.mul golden_gamma (Int64.of_int (index + 1)))
  in
  (* Keep 62 bits so the seed fits OCaml's 63-bit int non-negatively. *)
  Int64.to_int (Int64.shift_right_logical (mix64 (mix64 z)) 2)

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, scaled to [0,1). *)
  r /. 9007199254740992.0 *. x

let chance t p = float t 1.0 < p

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b
