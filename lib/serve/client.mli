(** Client library for the rewriting service.

    Connection-per-request: each call connects, exchanges exactly one
    frame pair and closes.  Total — connection failures, I/O errors and
    protocol-level garbage are all rendered into [Error string].

    Note that an [Ok response] still carries the {e server's} verdict in
    [response.status]; only transport/protocol failure is [Error]. *)

val request :
  ?max_response_bytes:int ->
  Protocol.addr ->
  Protocol.Request.t ->
  (Protocol.Response.t, string) result
(** Also checks that the echoed response id matches the request id. *)

val rewrite :
  ?deadline_us:int ->
  ?placement:string ->
  ?placement_budget:int ->
  ?placement_epsilon:float ->
  ?placement_weights:string ->
  ?ir_jobs:int ->
  ?infer:bool ->
  ?seed:int ->
  ?id:int64 ->
  ?max_response_bytes:int ->
  transforms:string list ->
  Protocol.addr ->
  string ->
  (Protocol.Response.t, string) result
(** Defaults mirror [ziprtool rewrite]: optimized placement, seed 1 —
    so a served rewrite with the defaults is byte-comparable to the
    offline CLI.  The search knobs travel in the request config and are
    validated server-side ([Bad_request] on a malformed spec).
    [ir_jobs] overrides the server's intra-binary IR worker default for
    this request (0 = auto-detect on the server); it changes timing
    only, never the output bytes.  [infer] overrides the server's
    inference-refiner default; unset, the key is not even encoded, so
    the config stays byte-identical to v1. *)

val ping :
  ?sleep_us:int ->
  ?deadline_us:int ->
  ?id:int64 ->
  ?payload:string ->
  Protocol.addr ->
  (Protocol.Response.t, string) result
