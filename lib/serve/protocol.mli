(** Wire protocol of the rewriting service (version 1).

    A versioned, length-prefixed binary framing: every frame is a fixed
    26-byte header (magic, version, opcode/status, request id, section
    lengths) followed by length-prefixed variable sections, so a reader
    always knows how many bytes it owes the stream.  See DESIGN.md §11
    for the byte-level layout and versioning rules.

    The reader is total over adversarial input: garbage, truncation,
    oversized length fields and malformed config strings all come back
    as [Error]s, never as exceptions — the property the protocol fuzz
    tests pin. *)

val request_magic : string
val response_magic : string
val version : int

val header_bytes : int
(** Fixed header size shared by both frame directions. *)

val default_max_payload : int

type rewrite_config = {
  transforms : string list;
  placement : string;
  seed : int;
  placement_budget : int option;
      (** search-strategy candidate budget; [None] = server default *)
  placement_epsilon : float option;
      (** search-strategy diversity dial in [0,1]; [None] = server default *)
  placement_weights : string;
      (** cost-model weight spec ({!Zipr.Cost.weights_of_spec} syntax);
          [""] = server default.  May contain [','] and ['='] but never
          [';'] — pairs split at the first ['='] so it round-trips. *)
  ir_jobs : int option;
      (** intra-binary IR construction workers ([0] = auto-detect);
          [None] = server default.  Output bytes never depend on it. *)
  infer : bool option;
      (** run the inference refiner ({!Disasm.Infer}) for this request;
          [None] = server default.  Encoded (as [infer=0|1]) only when
          set, so configs that never mention it stay byte-identical to
          v1 frames. *)
}
(** Transform names must not contain [','], [';'] or ['=']; registry
    names never do.  Unknown names are rejected by the server with
    [Bad_request], not at codec level.  The optional search knobs are
    encoded only when set, so v1 configs are unchanged byte-for-byte and
    older servers ignore the new keys. *)

val default_rewrite_config : rewrite_config

type op = Rewrite of rewrite_config | Ping of { sleep_us : int }
(** [Ping] echoes its payload after an optional server-side sleep — the
    health check, and the load/overload instrument of the test battery
    (a sleeping ping occupies a worker deterministically). *)

module Request : sig
  type t = {
    id : int64;  (** echoed verbatim in the response *)
    deadline_us : int;  (** per-request budget from admission; 0 = none *)
    op : op;
    payload : string;
  }

  val equal : t -> t -> bool
end

type status =
  | Ok_
  | Bad_request
  | Too_large
  | Overloaded
  | Deadline_exceeded
  | Rewrite_error
  | Shutting_down

val status_to_byte : status -> int
val status_of_byte : int -> status option
val status_to_string : status -> string

module Response : sig
  type t = {
    id : int64;
    status : status;
    message : string;  (** human-readable error text, empty on [Ok_] *)
    stats : string;
        (** key=value lines; lines prefixed ["det."] form the
            deterministic per-request summary, identical for a given
            (input, config) whatever the server's concurrency *)
    payload : string;
  }

  val equal : t -> t -> bool
end

(** {2 Addresses} *)

type addr = Unix_path of string | Tcp of { host : string; port : int }

val addr_to_string : addr -> string
val sockaddr_of_addr : addr -> Unix.sockaddr
val domain_of_addr : addr -> Unix.socket_domain

(** {2 Errors} *)

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_op of int
  | Bad_status of int
  | Frame_too_large of { limit : int; got : int }
  | Truncated
  | Malformed of string
  | Io of string

val error_to_string : error -> string

type failure = { error : error; id : int64 option }
(** [id] is populated when the header parsed far enough to recover the
    request id, so a protocol-level reject can still echo it. *)

(** {2 Reading} *)

type input = bytes -> int -> int -> int
(** A [read]-shaped byte source: fill at most [len] bytes at [off],
    return the count, 0 at end of stream.  Short reads are expected —
    the reader loops — which is what makes split-read delivery (one byte
    at a time, if the network insists) transparent. *)

val input_of_string : ?chunk:int -> string -> input
(** [chunk] caps each read (default unlimited): the split-read test
    harness. *)

val input_of_fd : Unix.file_descr -> input

val read_request : ?max_payload:int -> input -> (Request.t, failure) result
(** Never raises: [Unix_error], EOF mid-frame, garbage and length fields
    beyond [max_payload] (default {!default_max_payload}) all map into
    [Error]. *)

val read_response : ?max_payload:int -> input -> (Response.t, failure) result
(** As {!read_request}; the default cap is larger because rewritten
    binaries outgrow their inputs. *)

(** {2 Writing} *)

val encode_request : Request.t -> string
val encode_response : Response.t -> string

val write_all : Unix.file_descr -> string -> unit
(** Loops over partial writes.  Raises [Unix_error] (e.g. [EPIPE]) —
    callers own the error policy for dead peers. *)

val send_request : Unix.file_descr -> Request.t -> unit
val send_response : Unix.file_descr -> Response.t -> unit
