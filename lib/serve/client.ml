(* Client side of the rewriting service.

   Connection-per-request, mirroring the server's one-frame contract:
   connect, send one request frame, read one response frame, close.
   Every failure mode — refused connection, dead peer, protocol garbage
   from a confused server — comes back as [Error string]; nothing here
   raises, so callers (the CLI, the bench load generator, the tests) can
   treat a request as a total function. *)

let connect addr =
  let fd = Unix.socket (Protocol.domain_of_addr addr) Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Protocol.sockaddr_of_addr addr);
    Ok fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "connect %s: %s" (Protocol.addr_to_string addr) (Unix.error_message e))

let request ?max_response_bytes addr (req : Protocol.Request.t) :
    (Protocol.Response.t, string) result =
  match connect addr with
  | Error _ as e -> e
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Protocol.send_request fd req with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Printf.sprintf "send: %s" (Unix.error_message e))
          | () -> (
              (* Half-close the write side so a server that reads to EOF
                 is not kept waiting; ignore failures (not all socket
                 types support it, and the frame is self-delimiting). *)
              (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
              match Protocol.read_response ?max_payload:max_response_bytes (Protocol.input_of_fd fd) with
              | Ok resp ->
                  if resp.Protocol.Response.id <> req.id then
                    Error
                      (Printf.sprintf "response id mismatch: sent %Ld, got %Ld" req.id
                         resp.Protocol.Response.id)
                  else Ok resp
              | Error f -> Error (Protocol.error_to_string f.Protocol.error)))

let rewrite ?(deadline_us = 0) ?(placement = "optimized") ?placement_budget
    ?placement_epsilon ?(placement_weights = "") ?ir_jobs ?infer ?(seed = 1) ?(id = 1L)
    ?max_response_bytes ~transforms addr data =
  request ?max_response_bytes addr
    {
      Protocol.Request.id;
      deadline_us;
      op =
        Protocol.Rewrite
          {
            Protocol.transforms;
            placement;
            seed;
            placement_budget;
            placement_epsilon;
            placement_weights;
            ir_jobs;
            infer;
          };
      payload = data;
    }

let ping ?(sleep_us = 0) ?(deadline_us = 0) ?(id = 1L) ?(payload = "ping") addr =
  request addr { Protocol.Request.id; deadline_us; op = Protocol.Ping { sleep_us }; payload }
