(* The long-running rewriting daemon.

   One accept loop (the domain that calls [serve]) reads each request
   frame, then hands {request, connection} to the shared [Parallel.Pool]
   — the worker rewrites, writes the response frame and closes the
   connection.  Three layers keep overload graceful:

     - the framing reader bounds every section it reads (max_request_bytes),
       so a hostile length field cannot allocate unbounded memory;
     - [Admission] bounds the number of admitted-but-unstarted requests,
       so a flood gets fast [Overloaded] responses while queue memory
       stays constant;
     - per-request deadlines reject work that waited too long instead of
       burning a worker on a response nobody is waiting for.

   The IR cache is shared across every request (multi-tenant, LRU, byte
   budget): clients rewriting the same binary under different transform
   configs — the fleet/CI scenario — pay for IR construction once.

   Protocol: one request per connection.  The client connects, sends one
   frame, reads one frame; the server closes.  v1 keeps connection state
   trivially per-request; a keep-alive loop is a compatible v2 change
   (the framing already self-delimits). *)

type config = {
  jobs : int;
  queue_bound : int;
  max_request_bytes : int;
  cache_entries : int;
  cache_max_bytes : int;
  cache_dir : string option;
  cache_disk_entries : int option;
  cache_disk_bytes : int option;
  delta : bool;
  read_timeout_s : float;
  max_ping_sleep_us : int;
  (* Server-side defaults for the search placement strategy; a request
     that sets its own knobs wins. *)
  placement_budget : int option;
  placement_epsilon : float option;
  placement_weights : string;
  ir_jobs : int;  (* intra-binary IR workers per request; 0 = auto *)
  infer : bool;  (* inference-refiner default; a request's infer= wins *)
}

let default_config =
  {
    jobs = 2;
    queue_bound = 32;
    max_request_bytes = 64 * 1024 * 1024;
    cache_entries = 256;
    cache_max_bytes = 64 * 1024 * 1024;
    cache_dir = None;
    cache_disk_entries = None;
    cache_disk_bytes = None;
    delta = false;
    read_timeout_s = 10.0;
    max_ping_sleep_us = 30_000_000;
    placement_budget = None;
    placement_epsilon = None;
    placement_weights = "";
    ir_jobs = 1;
    infer = false;
  }

type stats = {
  accepted : int;  (* request frames that decoded *)
  ok : int;
  bad_request : int;
  too_large : int;
  overloaded : int;
  deadline_exceeded : int;
  rewrite_errors : int;
  shutting_down : int;
  pings : int;
  cache_hits : int;
  cache_misses : int;
  routine_hits : int;
  routine_misses : int;
  delta_builds : int;
  queue_high_water : int;
  queue_bound : int;
  cache_resident_bytes : int;
  cache_evictions : int;
  routine_fragments : int;
  routine_fragment_bytes : int;
}

type cells = {
  c_accepted : int Atomic.t;
  c_ok : int Atomic.t;
  c_bad_request : int Atomic.t;
  c_too_large : int Atomic.t;
  c_overloaded : int Atomic.t;
  c_deadline : int Atomic.t;
  c_rewrite_errors : int Atomic.t;
  c_shutting_down : int Atomic.t;
  c_pings : int Atomic.t;
  c_cache_hits : int Atomic.t;
  c_cache_misses : int Atomic.t;
  c_routine_hits : int Atomic.t;
  c_routine_misses : int Atomic.t;
  c_delta_builds : int Atomic.t;
}

type t = {
  cfg : config;
  resolve : string -> Zipr.Transform.t option;
  sock : Unix.file_descr;
  address : Protocol.addr;
  unlink_on_close : string option;
  pool : Parallel.Pool.t;
  adm : Admission.t;
  cache : Irdb.Cache.t;
  routine_cache : Zipr.Delta.t option;
  stop_flag : bool Atomic.t;
  c : cells;
}

let now () = Unix.gettimeofday ()

let listen_socket addr =
  let sock = Unix.socket (Protocol.domain_of_addr addr) Unix.SOCK_STREAM 0 in
  (match addr with
  | Protocol.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true);
  Unix.bind sock (Protocol.sockaddr_of_addr addr);
  Unix.listen sock 128;
  (* A TCP bind to port 0 gets a kernel-chosen port; report the real one. *)
  let address =
    match (addr, Unix.getsockname sock) with
    | Protocol.Tcp { host; _ }, Unix.ADDR_INET (_, port) -> Protocol.Tcp { host; port }
    | _ -> addr
  in
  (sock, address)

let create ?(config = default_config) ~resolve_transform addr =
  (* A client that vanished mid-response must surface as EPIPE, not kill
     the daemon. *)
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock, address = listen_socket addr in
  {
    cfg = config;
    resolve = resolve_transform;
    sock;
    address;
    unlink_on_close = (match addr with Protocol.Unix_path p -> Some p | Tcp _ -> None);
    pool = Parallel.Pool.create ~capacity:(max 1 config.queue_bound) ~jobs:(max 1 config.jobs) ();
    adm = Admission.create ~bound:config.queue_bound;
    cache =
      Irdb.Cache.create ~capacity:(max 1 config.cache_entries)
        ~max_bytes:(max 1 config.cache_max_bytes) ?dir:config.cache_dir
        ?max_disk_entries:config.cache_disk_entries
        ?max_disk_bytes:config.cache_disk_bytes ();
    routine_cache =
      (if config.delta then
         (* The fragment store shares the snapshot cache's disk directory
            (entries use a distinct extension) and inherits its byte
            budget; the memo is entry-bounded like the snapshot LRU. *)
         Some
           (Zipr.Delta.create
              ~fragment_bytes:(max 1 config.cache_max_bytes)
              ~memo_capacity:(max 1 config.cache_entries)
              ?dir:config.cache_dir ())
       else None);
    stop_flag = Atomic.make false;
    c =
      {
        c_accepted = Atomic.make 0;
        c_ok = Atomic.make 0;
        c_bad_request = Atomic.make 0;
        c_too_large = Atomic.make 0;
        c_overloaded = Atomic.make 0;
        c_deadline = Atomic.make 0;
        c_rewrite_errors = Atomic.make 0;
        c_shutting_down = Atomic.make 0;
        c_pings = Atomic.make 0;
        c_cache_hits = Atomic.make 0;
        c_cache_misses = Atomic.make 0;
        c_routine_hits = Atomic.make 0;
        c_routine_misses = Atomic.make 0;
        c_delta_builds = Atomic.make 0;
      };
  }

let address t = t.address
let cache t = t.cache
let admission t = t.adm

let stats t =
  {
    accepted = Atomic.get t.c.c_accepted;
    ok = Atomic.get t.c.c_ok;
    bad_request = Atomic.get t.c.c_bad_request;
    too_large = Atomic.get t.c.c_too_large;
    overloaded = Atomic.get t.c.c_overloaded;
    deadline_exceeded = Atomic.get t.c.c_deadline;
    rewrite_errors = Atomic.get t.c.c_rewrite_errors;
    shutting_down = Atomic.get t.c.c_shutting_down;
    pings = Atomic.get t.c.c_pings;
    cache_hits = Atomic.get t.c.c_cache_hits;
    cache_misses = Atomic.get t.c.c_cache_misses;
    routine_hits = Atomic.get t.c.c_routine_hits;
    routine_misses = Atomic.get t.c.c_routine_misses;
    delta_builds = Atomic.get t.c.c_delta_builds;
    queue_high_water = Admission.high_water t.adm;
    queue_bound = Admission.bound t.adm;
    cache_resident_bytes = Irdb.Cache.resident_bytes t.cache;
    cache_evictions = Irdb.Cache.evictions t.cache;
    routine_fragments =
      (match t.routine_cache with
      | Some d -> Zipr.Delta.fragment_entries d
      | None -> 0);
    routine_fragment_bytes =
      (match t.routine_cache with
      | Some d -> Zipr.Delta.fragment_bytes d
      | None -> 0);
  }

let stop t = Atomic.set t.stop_flag true

(* -- responses -- *)

let count_status t (status : Protocol.status) =
  let cell =
    match status with
    | Protocol.Ok_ -> t.c.c_ok
    | Bad_request -> t.c.c_bad_request
    | Too_large -> t.c.c_too_large
    | Overloaded -> t.c.c_overloaded
    | Deadline_exceeded -> t.c.c_deadline
    | Rewrite_error -> t.c.c_rewrite_errors
    | Shutting_down -> t.c.c_shutting_down
  in
  Atomic.incr cell

let response ?(message = "") ?(stats = "") ?(payload = "") ~id status =
  { Protocol.Response.id; status; message; stats; payload }

(* Best-effort write: the peer may be gone, which is its problem. *)
let respond t fd (r : Protocol.Response.t) =
  count_status t r.status;
  (match r.status with
  | Protocol.Ok_ -> ()
  | s -> Obs.count "serve.rejects" 1 |> fun () -> ignore s);
  try Protocol.send_response fd r with Unix.Unix_error _ | Sys_error _ -> ()

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* -- request execution (worker side) -- *)

(* The deterministic per-request summary: every line is a pure function
   of (input bytes, config), so N clients asking concurrently — at any
   worker count — read identical ["det."] lines.  Wall-clock facts live
   in the unprefixed lines below. *)
let stats_text ~(rc : Protocol.rewrite_config) ~ir_jobs ~infer ~input_bytes ~output_bytes
    ~(rs : Zipr.Reassemble.stats) ~(tally : Disasm.Aggregate.tally) ~cache_outcome
    ~(cache : Zipr.Pipeline.cache_stats) ~elapsed_us ~queue_wait_us =
  String.concat ""
    [
      (* Aggregator per-case byte accounting, one det.agg.* line per
         canonical tally field — deterministic like every det.* line. *)
      String.concat ""
        (List.map
           (fun (k, v) -> Printf.sprintf "det.agg.%s=%d\n" k v)
           (Disasm.Aggregate.tally_fields tally));
      Printf.sprintf "det.chain_hops=%d\n" rs.Zipr.Reassemble.chain_hops;
      Printf.sprintf "det.dollops_placed=%d\n" rs.Zipr.Reassemble.dollops_placed;
      Printf.sprintf "det.dollops_split=%d\n" rs.Zipr.Reassemble.dollops_split;
      Printf.sprintf "det.infer=%d\n" (if infer then 1 else 0);
      Printf.sprintf "det.input_bytes=%d\n" input_bytes;
      Printf.sprintf "det.ir_jobs=%d\n" ir_jobs;
      Printf.sprintf "det.output_bytes=%d\n" output_bytes;
      Printf.sprintf "det.page_misses=%d\n" rs.Zipr.Reassemble.page_misses;
      Printf.sprintf "det.pins_colocated=%d\n" rs.Zipr.Reassemble.pins_colocated;
      Printf.sprintf "det.pins_total=%d\n" rs.Zipr.Reassemble.pins_total;
      Printf.sprintf "det.placement=%s\n" rc.placement;
      Printf.sprintf "det.placement_cost=%.3f\n" rs.Zipr.Reassemble.placement_cost;
      Printf.sprintf "det.search_accepted=%d\n" rs.Zipr.Reassemble.search_accepted;
      Printf.sprintf "det.search_iterations=%d\n" rs.Zipr.Reassemble.search_iterations;
      Printf.sprintf "det.search_rejected=%d\n" rs.Zipr.Reassemble.search_rejected;
      Printf.sprintf "det.seed=%d\n" rc.seed;
      Printf.sprintf "det.sled_bytes=%d\n" rs.Zipr.Reassemble.sled_bytes;
      Printf.sprintf "det.sled_entries=%d\n" rs.Zipr.Reassemble.sled_entries;
      Printf.sprintf "det.sleds=%d\n" rs.Zipr.Reassemble.sleds;
      Printf.sprintf "det.transforms=%s\n" (String.concat "," rc.transforms);
      Printf.sprintf "delta_builds=%d\n" cache.Zipr.Pipeline.delta_builds;
      Printf.sprintf "elapsed_us=%d\n" elapsed_us;
      Printf.sprintf "ir_cache=%s\n" cache_outcome;
      Printf.sprintf "queue_wait_us=%d\n" queue_wait_us;
      Printf.sprintf "routine_hits=%d\n" cache.Zipr.Pipeline.routine_hits;
      Printf.sprintf "routine_misses=%d\n" cache.Zipr.Pipeline.routine_misses;
    ]

let exec_rewrite t ~id ~queue_wait_us (rc : Protocol.rewrite_config) payload =
  let unknown = List.filter (fun n -> t.resolve n = None) rc.transforms in
  if unknown <> [] then
    response ~id Protocol.Bad_request
      ~message:("unknown transforms: " ^ String.concat ", " unknown)
  else
    let first_some a b = match a with Some _ -> a | None -> b in
    match
      Zipr.Placement.resolve
        ?budget:(first_some rc.placement_budget t.cfg.placement_budget)
        ?epsilon:(first_some rc.placement_epsilon t.cfg.placement_epsilon)
        ~weights_spec:
          (if rc.placement_weights <> "" then rc.placement_weights
           else t.cfg.placement_weights)
        rc.placement
    with
    | Error msg -> response ~id Protocol.Bad_request ~message:msg
    | Ok placement -> (
        match Zelf.Binary.parse (Bytes.of_string payload) with
        | Error e ->
            response ~id Protocol.Bad_request
              ~message:(Format.asprintf "input does not parse: %a" Zelf.Binary.pp_parse_error e)
        | Ok binary -> (
            let transforms = List.filter_map t.resolve rc.transforms in
            (* The per-request override wins over the daemon default; the
               resolved worker count is echoed in det.ir_jobs so clients
               can confirm what the server actually ran with. *)
            let ir_jobs =
              Zipr.Pipeline.resolve_jobs
                (Option.value rc.ir_jobs ~default:t.cfg.ir_jobs)
            in
            let infer = Option.value rc.infer ~default:t.cfg.infer in
            let config =
              {
                Zipr.Pipeline.default_config with
                Zipr.Pipeline.placement;
                seed = rc.seed;
                ir_jobs;
                infer;
              }
            in
            let t0 = now () in
            match
              Zipr.Pipeline.try_rewrite ~config ~ir_cache:t.cache
                ?routine_cache:t.routine_cache ~transforms binary
            with
            | Error msg -> response ~id Protocol.Rewrite_error ~message:msg
            | Ok r ->
                let elapsed_us = int_of_float ((now () -. t0) *. 1e6) in
                let cache = r.Zipr.Pipeline.cache in
                Atomic.fetch_and_add t.c.c_cache_hits cache.Zipr.Pipeline.ir_cache_hits
                |> ignore;
                Atomic.fetch_and_add t.c.c_cache_misses cache.Zipr.Pipeline.ir_cache_misses
                |> ignore;
                Atomic.fetch_and_add t.c.c_routine_hits cache.Zipr.Pipeline.routine_hits
                |> ignore;
                Atomic.fetch_and_add t.c.c_routine_misses cache.Zipr.Pipeline.routine_misses
                |> ignore;
                Atomic.fetch_and_add t.c.c_delta_builds cache.Zipr.Pipeline.delta_builds
                |> ignore;
                let out = Zelf.Binary.serialize r.Zipr.Pipeline.rewritten in
                let stats =
                  stats_text ~rc ~ir_jobs ~infer ~input_bytes:(String.length payload)
                    ~output_bytes:(Bytes.length out) ~rs:r.Zipr.Pipeline.stats
                    ~tally:
                      r.Zipr.Pipeline.ir.Zipr.Ir_construction.aggregate
                        .Disasm.Aggregate.tally
                    ~cache_outcome:
                      (if
                         cache.Zipr.Pipeline.ir_cache_hits > 0
                         || cache.Zipr.Pipeline.routine_hits > 0
                       then "hit"
                       else "miss")
                    ~cache ~elapsed_us ~queue_wait_us
                in
                response ~id Protocol.Ok_ ~stats ~payload:(Bytes.unsafe_to_string out)))

let run_request t fd (req : Protocol.Request.t) ~admitted_at ~worker:_ =
  Admission.started t.adm;
  Fun.protect
    ~finally:(fun () ->
      close_quietly fd;
      Admission.finished t.adm)
    (fun () ->
      Obs.span ~root:true "serve.request" (fun () ->
          let queue_wait_us = int_of_float ((now () -. admitted_at) *. 1e6) in
          let id = req.id in
          if req.deadline_us > 0 && queue_wait_us > req.deadline_us then begin
            Obs.count "serve.deadline_exceeded" 1;
            respond t fd
              (response ~id Protocol.Deadline_exceeded
                 ~message:
                   (Printf.sprintf "deadline of %d us exceeded: %d us in queue" req.deadline_us
                      queue_wait_us))
          end
          else
            match req.op with
            | Protocol.Ping { sleep_us } ->
                Atomic.incr t.c.c_pings;
                let sleep_us = min (max 0 sleep_us) t.cfg.max_ping_sleep_us in
                if sleep_us > 0 then Unix.sleepf (float_of_int sleep_us /. 1e6);
                respond t fd
                  (response ~id Protocol.Ok_
                     ~stats:(Printf.sprintf "queue_wait_us=%d\n" queue_wait_us)
                     ~payload:req.payload)
            | Protocol.Rewrite rc ->
                respond t fd (exec_rewrite t ~id ~queue_wait_us rc req.payload)))

(* -- accept loop -- *)

let handle_conn t fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.read_timeout_s
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  match
    Protocol.read_request ~max_payload:t.cfg.max_request_bytes (Protocol.input_of_fd fd)
  with
  | Error { error; id } ->
      let id = Option.value id ~default:0L in
      let status =
        match error with
        | Protocol.Frame_too_large _ -> Protocol.Too_large
        | _ -> Protocol.Bad_request
      in
      respond t fd (response ~id status ~message:(Protocol.error_to_string error));
      close_quietly fd
  | Ok req ->
      Atomic.incr t.c.c_accepted;
      Obs.count "serve.requests" 1;
      let overloaded ~status message =
        respond t fd (response ~id:req.id status ~message);
        close_quietly fd
      in
      if not (Admission.try_admit t.adm) then
        overloaded ~status:Protocol.Overloaded
          (Printf.sprintf "admission queue full (bound %d)" (Admission.bound t.adm))
      else begin
        let admitted_at = now () in
        match
          Parallel.Pool.try_submit t.pool (fun ~worker ~wait_s:_ ->
              run_request t fd req ~admitted_at ~worker)
        with
        | Parallel.Pool.Submitted -> ()
        | Parallel.Pool.Queue_full ->
            Admission.cancel t.adm;
            overloaded ~status:Protocol.Overloaded
              (Printf.sprintf "worker queue full (bound %d)" (Admission.bound t.adm))
        | Parallel.Pool.Closed ->
            Admission.cancel t.adm;
            overloaded ~status:Protocol.Shutting_down "server is shutting down"
      end

let serve t =
  let rec loop () =
    if Atomic.get t.stop_flag then ()
    else begin
      (match Unix.select [ t.sock ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.sock with
          | fd, _ -> handle_conn t fd
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (* Drain: tasks already admitted to the pool still run to completion —
     accepted requests get real responses, not resets. *)
  (try ignore (Parallel.Pool.shutdown t.pool) with _ -> ());
  close_quietly t.sock;
  Option.iter (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ()) t.unlink_on_close
