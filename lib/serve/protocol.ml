(* The wire protocol of the rewriting service: version 1.

   Both directions use one fixed 26-byte header followed by
   length-prefixed variable sections, so a reader always knows exactly
   how many bytes to expect next — no sentinels, no scanning.  All
   integers are little-endian.

   Request frame:

     offset  size  field
          0     4  magic "ZSRQ"
          4     2  protocol version (u16, = 1)
          6     1  opcode (1 = rewrite, 2 = ping)
          7     1  reserved (0)
          8     8  request id (u64, echoed verbatim in the response)
         16     4  deadline_us (u32, 0 = no deadline)
         20     2  config length C (u16)
         22     4  payload length P (u32)
         26     C  config: ';'-separated key=value pairs
        26+C    P  payload (input binary for rewrite; echoed for ping)

   Response frame:

     offset  size  field
          0     4  magic "ZSRP"
          4     2  protocol version (u16, = 1)
          6     1  status code
          7     1  reserved (0)
          8     8  request id (echo; 0 when the request id never parsed)
         16     2  message length M (u16)
         18     4  stats length S (u32)
         22     4  payload length P (u32)
         26     M  message (human-readable error text, empty on ok)
        26+M    S  stats (key=value lines; "det."-prefixed lines form the
                   deterministic per-request summary)
        26+M+S  P  payload (rewritten binary, or the ping echo)

   Versioning rules: the magic never changes; bumping [version] is a
   breaking change and a reader must reject versions it does not speak
   (status [Bad_request] with a [Bad_version] message).  Unknown config
   keys are ignored, so new optional request knobs do not need a version
   bump; new opcodes and any header-layout change do. *)

let request_magic = "ZSRQ"
let response_magic = "ZSRP"
let version = 1
let header_bytes = 26

let default_max_payload = 64 * 1024 * 1024

type rewrite_config = {
  transforms : string list;
  placement : string;
  seed : int;
  placement_budget : int option;
  placement_epsilon : float option;
  placement_weights : string;  (* Cost.weights_of_spec syntax; "" means defaults *)
  ir_jobs : int option;  (* intra-binary IR workers; None = server default *)
  infer : bool option;  (* inference refiner; None = server default *)
}

let default_rewrite_config =
  {
    transforms = [ "null" ];
    placement = "optimized";
    seed = 1;
    placement_budget = None;
    placement_epsilon = None;
    placement_weights = "";
    ir_jobs = None;
    infer = None;
  }

type op = Rewrite of rewrite_config | Ping of { sleep_us : int }

module Request = struct
  type t = { id : int64; deadline_us : int; op : op; payload : string }

  let equal a b =
    a.id = b.id && a.deadline_us = b.deadline_us && a.op = b.op && a.payload = b.payload
end

type status =
  | Ok_
  | Bad_request
  | Too_large
  | Overloaded
  | Deadline_exceeded
  | Rewrite_error
  | Shutting_down

let status_to_byte = function
  | Ok_ -> 0
  | Bad_request -> 1
  | Too_large -> 2
  | Overloaded -> 3
  | Deadline_exceeded -> 4
  | Rewrite_error -> 5
  | Shutting_down -> 6

let status_of_byte = function
  | 0 -> Some Ok_
  | 1 -> Some Bad_request
  | 2 -> Some Too_large
  | 3 -> Some Overloaded
  | 4 -> Some Deadline_exceeded
  | 5 -> Some Rewrite_error
  | 6 -> Some Shutting_down
  | _ -> None

let status_to_string = function
  | Ok_ -> "ok"
  | Bad_request -> "bad_request"
  | Too_large -> "too_large"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Rewrite_error -> "rewrite_error"
  | Shutting_down -> "shutting_down"

module Response = struct
  type t = { id : int64; status : status; message : string; stats : string; payload : string }

  let equal a b =
    a.id = b.id && a.status = b.status && a.message = b.message && a.stats = b.stats
    && a.payload = b.payload
end

(* -- addresses -- *)

type addr = Unix_path of string | Tcp of { host : string; port : int }

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

let sockaddr_of_addr = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp { host; port } -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let domain_of_addr = function Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

(* -- config strings -- *)

let op_byte = function Rewrite _ -> 1 | Ping _ -> 2

(* Optional search knobs only appear when set, so configs from older
   clients and to older servers stay byte-identical to v1; weight specs
   contain ',' and '=' but no ';', and the parser splits each pair at
   the FIRST '=', so the value round-trips unescaped. *)
let config_of_op = function
  | Rewrite c ->
      String.concat ""
        [
          Printf.sprintf "transforms=%s;placement=%s;seed=%d"
            (String.concat "," c.transforms)
            c.placement c.seed;
          (match c.placement_budget with
          | None -> ""
          | Some b -> Printf.sprintf ";placement_budget=%d" b);
          (match c.placement_epsilon with
          | None -> ""
          | Some e -> Printf.sprintf ";placement_epsilon=%.17g" e);
          (if c.placement_weights = "" then ""
           else ";placement_weights=" ^ c.placement_weights);
          (match c.ir_jobs with
          | None -> ""
          | Some j -> Printf.sprintf ";ir_jobs=%d" j);
          (match c.infer with
          | None -> ""
          | Some b -> Printf.sprintf ";infer=%d" (if b then 1 else 0));
        ]
  | Ping { sleep_us } -> Printf.sprintf "sleep_us=%d" sleep_us

let split_pairs s =
  String.split_on_char ';' s
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           match String.index_opt kv '=' with
           | None -> Some (kv, "")
           | Some i ->
               Some (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1)))

let int_field ~what v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "config: %s is not an integer: %S" what v)

(* Unknown keys are ignored (forward compatibility); known keys with
   unparseable values are malformed. *)
let op_of_config opb config =
  match opb with
  | 1 ->
      List.fold_left
        (fun acc (k, v) ->
          Result.bind acc (fun c ->
              match k with
              | "transforms" ->
                  Ok
                    {
                      c with
                      transforms =
                        String.split_on_char ',' v |> List.filter (fun s -> s <> "");
                    }
              | "placement" -> Ok { c with placement = v }
              | "seed" -> Result.map (fun seed -> { c with seed }) (int_field ~what:"seed" v)
              | "placement_budget" ->
                  Result.map
                    (fun b -> { c with placement_budget = Some b })
                    (int_field ~what:"placement_budget" v)
              | "placement_epsilon" -> (
                  match float_of_string_opt v with
                  | Some e -> Ok { c with placement_epsilon = Some e }
                  | None ->
                      Error
                        (Printf.sprintf "config: placement_epsilon is not a number: %S" v))
              | "placement_weights" -> Ok { c with placement_weights = v }
              | "ir_jobs" ->
                  Result.map
                    (fun j -> { c with ir_jobs = Some j })
                    (int_field ~what:"ir_jobs" v)
              | "infer" ->
                  Result.map
                    (fun b -> { c with infer = Some (b <> 0) })
                    (int_field ~what:"infer" v)
              | _ -> Ok c))
        (Ok default_rewrite_config) (split_pairs config)
      |> Result.map (fun c -> Rewrite c)
  | 2 ->
      List.fold_left
        (fun acc (k, v) ->
          Result.bind acc (fun sleep_us ->
              match k with
              | "sleep_us" -> int_field ~what:"sleep_us" v
              | _ -> Ok sleep_us))
        (Ok 0) (split_pairs config)
      |> Result.map (fun sleep_us -> Ping { sleep_us })
  | n -> Error (Printf.sprintf "unknown opcode %d" n)

(* -- errors -- *)

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_op of int
  | Bad_status of int
  | Frame_too_large of { limit : int; got : int }
  | Truncated
  | Malformed of string
  | Io of string

let error_to_string = function
  | Bad_magic -> "bad magic: not a ZSRQ/ZSRP frame"
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d (speaking %d)" v version
  | Bad_op n -> Printf.sprintf "unknown opcode %d" n
  | Bad_status n -> Printf.sprintf "unknown status code %d" n
  | Frame_too_large { limit; got } ->
      Printf.sprintf "frame too large: %d bytes exceeds the %d-byte limit" got limit
  | Truncated -> "truncated frame: connection closed mid-frame"
  | Malformed msg -> "malformed frame: " ^ msg
  | Io msg -> "i/o error: " ^ msg

type failure = { error : error; id : int64 option }
(* [id] is the request id when the header parsed far enough to know it —
   so a reject response can still echo it. *)

(* -- the framing reader -- *)

(* An input is a [read]-shaped function: fill at most [len] bytes at
   [off], return how many were filled, 0 at end of stream.  Sockets,
   strings and deliberately-fragmented test harnesses all fit. *)
type input = bytes -> int -> int -> int

let input_of_string ?(chunk = max_int) s : input =
  let chunk = max 1 chunk in
  let pos = ref 0 in
  fun buf off len ->
    let n = min (min len chunk) (String.length s - !pos) in
    if n <= 0 then 0
    else begin
      Bytes.blit_string s !pos buf off n;
      pos := !pos + n;
      n
    end

let input_of_fd fd : input = fun buf off len -> Unix.read fd buf off len

(* Read exactly [len] bytes; every OS-level surprise — short reads, EOF,
   socket errors, receive timeouts — comes back as an [Error], never as
   an exception.  This is the property the garbage/fuzz tests pin. *)
let read_exact (input : input) buf off len =
  let rec go off len =
    if len = 0 then Ok ()
    else
      match input buf off len with
      | 0 -> Error Truncated
      | n when n > 0 -> go (off + n) (len - n)
      | _ -> Error (Io "input returned a negative count")
      | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
      | exception Sys_error m -> Error (Io m)
      | exception End_of_file -> Error Truncated
  in
  go off len

let read_u32 h off = Int32.to_int (Bytes.get_int32_le h off) land 0xFFFFFFFF

let read_section input ~limit ~what:_ len k =
  if len > limit then Error (Frame_too_large { limit; got = len })
  else
    let buf = Bytes.create len in
    match read_exact input buf 0 len with
    | Error e -> Error e
    | Ok () -> k (Bytes.unsafe_to_string buf)

let read_request ?(max_payload = default_max_payload) (input : input) :
    (Request.t, failure) result =
  let h = Bytes.create header_bytes in
  let anon error = Error { error; id = None } in
  match read_exact input h 0 header_bytes with
  | Error e -> anon e
  | Ok () ->
      if Bytes.sub_string h 0 4 <> request_magic then anon Bad_magic
      else
        let v = Bytes.get_uint16_le h 4 in
        if v <> version then anon (Bad_version v)
        else
          let opb = Bytes.get_uint8 h 6 in
          let id = Bytes.get_int64_le h 8 in
          let deadline_us = read_u32 h 16 in
          let clen = Bytes.get_uint16_le h 20 in
          let plen = read_u32 h 22 in
          let fail error = Error { error; id = Some id } in
          let section ~limit ~what len k =
            Result.map_error (fun error -> { error; id = Some id })
              (read_section input ~limit ~what len k)
          in
          if opb <> 1 && opb <> 2 then fail (Bad_op opb)
          else
            section ~limit:65535 ~what:"config" clen (fun config ->
                read_section input ~limit:max_payload ~what:"payload" plen (fun payload ->
                    match op_of_config opb config with
                    | Error msg -> Error (Malformed msg)
                    | Ok op -> Ok { Request.id; deadline_us; op; payload }))

let read_response ?(max_payload = 4 * default_max_payload) (input : input) :
    (Response.t, failure) result =
  let h = Bytes.create header_bytes in
  let anon error = Error { error; id = None } in
  match read_exact input h 0 header_bytes with
  | Error e -> anon e
  | Ok () ->
      if Bytes.sub_string h 0 4 <> response_magic then anon Bad_magic
      else
        let v = Bytes.get_uint16_le h 4 in
        if v <> version then anon (Bad_version v)
        else
          let sb = Bytes.get_uint8 h 6 in
          let id = Bytes.get_int64_le h 8 in
          let mlen = Bytes.get_uint16_le h 16 in
          let slen = read_u32 h 18 in
          let plen = read_u32 h 22 in
          let wrap r = Result.map_error (fun error -> { error; id = Some id }) r in
          match status_of_byte sb with
          | None -> Error { error = Bad_status sb; id = Some id }
          | Some status ->
              wrap
                (read_section input ~limit:65535 ~what:"message" mlen (fun message ->
                     read_section input ~limit:max_payload ~what:"stats" slen (fun stats ->
                         read_section input ~limit:max_payload ~what:"payload" plen
                           (fun payload ->
                             Ok { Response.id; status; message; stats; payload }))))

(* -- encoders -- *)

let encode_request (r : Request.t) =
  let config = config_of_op r.op in
  let h = Bytes.create header_bytes in
  Bytes.blit_string request_magic 0 h 0 4;
  Bytes.set_uint16_le h 4 version;
  Bytes.set_uint8 h 6 (op_byte r.op);
  Bytes.set_uint8 h 7 0;
  Bytes.set_int64_le h 8 r.id;
  Bytes.set_int32_le h 16 (Int32.of_int (r.deadline_us land 0xFFFFFFFF));
  Bytes.set_uint16_le h 20 (String.length config);
  Bytes.set_int32_le h 22 (Int32.of_int (String.length r.payload));
  Bytes.unsafe_to_string h ^ config ^ r.payload

let encode_response (r : Response.t) =
  let h = Bytes.create header_bytes in
  Bytes.blit_string response_magic 0 h 0 4;
  Bytes.set_uint16_le h 4 version;
  Bytes.set_uint8 h 6 (status_to_byte r.status);
  Bytes.set_uint8 h 7 0;
  Bytes.set_int64_le h 8 r.id;
  Bytes.set_uint16_le h 16 (String.length r.message);
  Bytes.set_int32_le h 18 (Int32.of_int (String.length r.stats));
  Bytes.set_int32_le h 22 (Int32.of_int (String.length r.payload));
  Bytes.unsafe_to_string h ^ r.message ^ r.stats ^ r.payload

(* -- socket writes -- *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let send_request fd r = write_all fd (encode_request r)
let send_response fd r = write_all fd (encode_response r)
