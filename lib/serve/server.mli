(** The rewriting daemon: accept loop, worker pool, shared IR cache.

    Lifecycle: {!create} binds and listens (a TCP port 0 is resolved to
    the kernel-chosen port — read it back with {!address}); {!serve}
    blocks running the accept loop until {!stop} is called (from a
    signal handler or another domain — it only flips an atomic);
    [serve] then drains the worker pool, so every request already
    admitted gets a real response, closes the socket and unlinks a Unix
    socket path.

    Overload policy: at most [queue_bound] requests may be admitted and
    not yet started; requests past the bound receive an immediate
    [Overloaded] response.  A request carrying a deadline that expires
    while queued receives [Deadline_exceeded] instead of being run.

    The IR cache ({!cache}) is shared by all requests across all worker
    domains: concurrent clients rewriting the same input pay for IR
    construction once, bounded by [cache_entries] entries and
    [cache_max_bytes] resident bytes (LRU eviction). *)

type config = {
  jobs : int;  (** worker domains *)
  queue_bound : int;  (** admission bound = pool queue capacity *)
  max_request_bytes : int;  (** reject larger request payloads with [Too_large] *)
  cache_entries : int;
  cache_max_bytes : int;
  cache_dir : string option;  (** optional disk spill for the IR cache *)
  cache_disk_entries : int option;
      (** bound [cache_dir] to this many entry files (oldest pruned) *)
  cache_disk_bytes : int option;  (** bound [cache_dir]'s total size *)
  delta : bool;
      (** enable the shared routine-granular cache: requests are served
          through {!Zipr.Delta} (whole-IR memo + routine-fragment
          stitching) before falling back to the snapshot IR cache *)
  read_timeout_s : float;  (** per-connection socket read timeout *)
  max_ping_sleep_us : int;  (** cap on client-requested ping sleeps *)
  placement_budget : int option;
      (** default search-strategy candidate budget for requests that do
          not set their own *)
  placement_epsilon : float option;
      (** default search-strategy diversity dial; a request's own knob
          wins *)
  placement_weights : string;
      (** default cost-model weight spec ([""] = {!Zipr.Cost.default_weights}) *)
  ir_jobs : int;
      (** default intra-binary IR construction workers per request
          ([0] = auto-detect); a request's own [ir_jobs] knob wins.  The
          resolved value is echoed in the response's [det.ir_jobs] stats
          line; output bytes never depend on it. *)
  infer : bool;
      (** default inference-refiner switch per request; a request's own
          [infer] knob wins.  The effective value is echoed in
          [det.infer], and the aggregator's per-case byte accounting
          rides in the [det.agg.*] lines either way. *)
}

val default_config : config
(** jobs 2, queue bound 32, 64 MiB max request, 256-entry / 64 MiB
    memory-only cache (disk layer unbounded when enabled), delta off,
    10 s read timeout, 30 s ping-sleep cap, search knobs unset, serial
    IR construction ([ir_jobs = 1]), inference refiner off. *)

type stats = {
  accepted : int;  (** request frames that decoded successfully *)
  ok : int;
  bad_request : int;
  too_large : int;
  overloaded : int;
  deadline_exceeded : int;
  rewrite_errors : int;
  shutting_down : int;
  pings : int;
  cache_hits : int;
  cache_misses : int;
  routine_hits : int;  (** routine-fragment + memo hits (delta mode) *)
  routine_misses : int;
  delta_builds : int;  (** IRs assembled by stitching cached fragments *)
  queue_high_water : int;
  queue_bound : int;
  cache_resident_bytes : int;
  cache_evictions : int;
  routine_fragments : int;  (** resident routine-fragment entries *)
  routine_fragment_bytes : int;
}

type t

val create :
  ?config:config -> resolve_transform:(string -> Zipr.Transform.t option) -> Protocol.addr -> t
(** Bind and listen.  [resolve_transform] maps wire-level transform
    names to transforms ([None] → the request is answered with
    [Bad_request]).  Raises [Unix.Unix_error] if the address cannot be
    bound. *)

val serve : t -> unit
(** Run the accept loop on the calling domain until {!stop}; drains,
    closes and unlinks before returning. *)

val stop : t -> unit
(** Request shutdown.  Only sets an atomic flag — safe from a signal
    handler or any domain.  The accept loop notices within its 50 ms
    poll interval. *)

val address : t -> Protocol.addr
(** The bound address, with TCP port 0 resolved. *)

val stats : t -> stats
val admission : t -> Admission.t
val cache : t -> Irdb.Cache.t
