(** Queue-depth admission control for the serve daemon.

    Bounds the number of admitted-but-unstarted requests at [bound]; an
    admission attempt past the bound fails immediately (the server turns
    that into a fast [Overloaded] response).  Lifecycle per request:
    {!try_admit} [true] → {!started} (a worker dequeued it) →
    {!finished}.  All transitions are lock-free atomics, safe from the
    accept loop and every worker domain concurrently.

    Invariant the flood test pins: {!high_water} never exceeds
    {!bound}, so a 4×bound burst holds queue memory constant. *)

type t

val create : bound:int -> t
(** [bound] is clamped to at least 1. *)

val bound : t -> int

val try_admit : t -> bool
(** [true]: a queue slot was taken (caller must eventually call
    {!started}, or {!cancel} if the task never reaches the pool).
    [false]: over the bound; the rejection is counted. *)

val started : t -> unit
(** A worker dequeued the request: frees its queue slot. *)

val cancel : t -> unit
(** Undo an admission that never reached the pool queue. *)

val finished : t -> unit

(** {2 Accounting} *)

val queued : t -> int
val high_water : t -> int  (** max simultaneous queued ever observed *)

val admitted : t -> int
val rejected : t -> int
val completed : t -> int
