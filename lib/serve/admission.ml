(* Queue-depth admission control.

   The daemon's overload policy in one small state machine: a request is
   ADMITTED (it may wait in the pool queue), then STARTED (a worker
   picked it up), then FINISHED.  [try_admit] refuses once [bound]
   requests are admitted-but-unfinished, which bounds both queue memory
   and tail latency — the accept loop answers the refusal with a fast
   [Overloaded] response instead of blocking, so a flood degrades into
   rejections rather than an OOM or a frozen socket.

   All cells are atomics: the accept loop admits, worker domains start
   and finish, and tests read high-water marks, with no lock shared with
   the request path. *)

type t = {
  bound : int;
  queued : int Atomic.t;  (* admitted, not yet started *)
  high_water : int Atomic.t;  (* max queued ever observed *)
  admitted : int Atomic.t;
  rejected : int Atomic.t;
  completed : int Atomic.t;
}

let create ~bound =
  {
    bound = max 1 bound;
    queued = Atomic.make 0;
    high_water = Atomic.make 0;
    admitted = Atomic.make 0;
    rejected = Atomic.make 0;
    completed = Atomic.make 0;
  }

let bound t = t.bound

let rec bump_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then bump_max cell v

let rec try_admit t =
  let q = Atomic.get t.queued in
  if q >= t.bound then begin
    Atomic.incr t.rejected;
    Obs.count "serve.rejects.overloaded" 1;
    false
  end
  else if Atomic.compare_and_set t.queued q (q + 1) then begin
    bump_max t.high_water (q + 1);
    Atomic.incr t.admitted;
    Obs.gauge_max "serve.queue_depth" (q + 1);
    true
  end
  else try_admit t

let started t = Atomic.decr t.queued

(* Undo an admission whose task never reached the pool (e.g. the pool is
   closing): the slot frees without counting as completed. *)
let cancel t =
  Atomic.decr t.queued;
  Atomic.decr t.admitted

let finished t = Atomic.incr t.completed

let queued t = Atomic.get t.queued
let high_water t = Atomic.get t.high_water
let admitted t = Atomic.get t.admitted
let rejected t = Atomic.get t.rejected
let completed t = Atomic.get t.completed
