(** Superset (speculative) disassembly.

    The third aggregation source, in the lineage of superset and
    probabilistic disassembly: decode a candidate instruction at {e every}
    byte offset, then prune candidates that provably flow into garbage —
    a valid instruction cannot fall through to, or branch to, an
    undecodable byte inside the text — iterating to a fixpoint.  The
    surviving candidates are scored by how many other survivors reference
    them (branch targets accumulate evidence), and a maximal
    non-overlapping tiling is chosen greedily from the best-scored seeds.

    To stay regression-free in the aggregation it deliberately {e
    abstains} wherever recursive traversal already has an answer: its
    value is better instruction boundaries in the regions no
    high-confidence tool reaches (data islands, computed-jump-only code),
    which sharpen the fixed-range CFGs and the [Fixed_target] pin
    analysis. *)

val run : Zelf.Binary.t -> avoid:Recursive.t -> Source.t
(** Speculative source for the binary's text section, abstaining on bytes
    [avoid] covers. *)

val prune_fixpoint : Zelf.Binary.t -> bool array
(** Exposed for tests: per text byte, is there a {e surviving} candidate
    instruction starting at that offset after invalid-flow pruning? *)

val decode_all : Zelf.Binary.t -> (Zvm.Insn.t * int) option array
(** The raw candidate decode at every text offset ([None] where the bytes
    do not decode or the instruction would spill off the section); the
    input to the prune fixpoint and to {!Infer}'s fact propagation. *)
