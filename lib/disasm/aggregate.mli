(** Multi-disassembler aggregation with the paper's conservative four-case
    code/data disambiguation (§II-A1).

    For every byte range of the text section the primary disassemblers'
    verdicts are combined:

    + both conclusively agree the bytes are code with identical
      instruction boundaries, or agree they are data — the range is
      labelled accordingly ({e case 1});
    + a range is conclusively labelled data by linear sweep but reached as
      code by recursive traversal (or vice versa) — the disassemblers
      disagree, so the range is {b ambiguous} and is treated as {e both}
      code and data: its bytes stay fixed at their original addresses and
      its decoded instructions still participate in CFG construction
      ({e cases 2 and 3});
    + code claimed only by linear sweep, unreached by recursive traversal,
      is also treated as ambiguous — if there is {e any} chance a range
      labelled instructions actually contains data, the output is treated
      as inconclusive, and a warning is recorded to ease debugging
      ({e case 4}).

    {!Source.Refiner} sources (the {!Infer} pass) never participate in the
    case analysis; they may only {e refine} bytes it judged ambiguous, so
    a byte the primaries agreed on is never overturned (DESIGN.md §15). *)

type verdict = Code | Data | Ambiguous

(** Per-case byte accounting of one aggregation, plus refinement and
    overlap-mismatch counters.  [merge_stats] is an associative,
    commutative monoid with identity [tally_zero], so corpus totals are
    independent of job count and order. *)
type tally = {
  case1_code : int;  (** agreed code bytes *)
  case1_data : int;  (** agreed data bytes *)
  case2_disagree : int;  (** boundary-disagreement bytes *)
  case3_contradict : int;  (** data-vs-code contradiction bytes *)
  case4_low_confidence : int;  (** code claimed only by low-confidence tools *)
  overlap_len_mismatch : int;
      (** overlapping boundary pairs claiming different instruction
          lengths (reported, never silently clamped) *)
  refined_code : int;  (** ambiguous bytes a refiner flipped to code *)
  refined_data : int;  (** ambiguous bytes a refiner flipped to data *)
  refined_by_fact : (string * int) list;
      (** flipped bytes per inference fact, sorted by fact name *)
}

val tally_zero : tally
val merge_stats : tally -> tally -> tally
val tally_of_verdicts : verdict array -> tally
(** All-case-1 tally of a verdict array with no ambiguity (aggregates
    materialized from a validated traversal). *)

val tally_fields : tally -> (string * int) list
(** Canonical [(key, value)] rendering shared by [--stats], the server's
    [det.*] lines and bench JSON. *)

type t = {
  base : int;
  len : int;
  verdicts : verdict array;  (** per byte of text *)
  insn_at : (int, Zvm.Insn.t * int) Hashtbl.t;
      (** instruction boundaries for downstream IR construction: recursive
          traversal's where available, linear sweep's otherwise *)
  warnings : string list;
  tally : tally;
  refined : (int * string) list;
      (** text offsets a refiner flipped, ascending, with the provenance
          tag of the fact that justified each flip *)
  pin_hints : int list;
      (** resolved computed-jump targets (in-text, sorted, unique) the
          pin analysis must keep landings at ({!Infer.t.pin_hints});
          empty unless the inference refiner ran *)
}

val run : ?infer:bool -> Zelf.Binary.t -> t
(** Run all three disassemblers (linear sweep, recursive traversal,
    superset) and aggregate; with [~infer:true] (default false) the
    {!Infer} fact-propagation pass rides along as a refiner source. *)

val combine : Zelf.Binary.t -> Linear.t -> Recursive.t -> t
(** Two-way aggregation, for tests that want to inject disassembler
    results. *)

val combine_sources : Zelf.Binary.t -> Source.t list -> t
(** N-way aggregation over any set of {!Source}s covering the same text
    range (lowest boundary priority first).  A byte is [Code] iff a
    high-confidence primary claims it and every claiming primary agrees on
    the instruction start; [Data] iff no primary claims code; [Ambiguous]
    otherwise — then refiner sources may flip ambiguous bytes only.
    Raises [Invalid_argument] on an empty or mismatched source list, or
    when no primary source is present. *)

val verdict_at : t -> int -> verdict option

val ambiguous_ranges : t -> (int * int) list
(** Maximal [\[lo, hi)] runs of ambiguous bytes, ascending. *)

val code_starts : t -> int list
(** Instruction start addresses in [Code] or [Ambiguous] bytes,
    ascending. *)

val stats : t -> int * int * int
(** (code bytes, data bytes, ambiguous bytes). *)

val pp_verdict : Format.formatter -> verdict -> unit
