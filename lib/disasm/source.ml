type claim = Code of int | Data | Unknown

type confidence = High | Low

type kind = Primary | Refiner

type t = {
  name : string;
  base : int;
  len : int;
  claims : claim array;
  insns : (int, Zvm.Insn.t * int) Hashtbl.t;
  confidence : confidence;
  kind : kind;
  tags : string array;
}

let tag_at t off =
  if Array.length t.tags = 0 || off < 0 || off >= t.len then "" else t.tags.(off)

let of_linear (lin : Linear.t) =
  {
    name = "linear-sweep";
    base = lin.Linear.base;
    len = lin.Linear.len;
    claims = Array.map (fun c -> if c < 0 then Data else Code c) lin.Linear.cover;
    insns = lin.Linear.insns;
    confidence = Low;
    kind = Primary;
    tags = [||];
  }

let of_recursive (r : Recursive.t) =
  {
    name = "recursive-traversal";
    base = r.Recursive.base;
    len = r.Recursive.len;
    claims = Array.map (fun c -> if c < 0 then Unknown else Code c) r.Recursive.cover;
    insns = r.Recursive.insns;
    confidence = High;
    kind = Primary;
    tags = [||];
  }

let claim_at t addr =
  if addr < t.base || addr >= t.base + t.len then Unknown else t.claims.(addr - t.base)
