(** A uniform view of one disassembler's output, for N-way aggregation.

    The paper's methodology "can aggregate the output of multiple
    disassemblers" and keep "the flexibility to include the output of
    new disassemblers" (§II-A1); this is the interface a new tool plugs
    into.  A source reports, per text byte, either the start address of
    the instruction covering it, a conclusive data claim, or abstention;
    plus its instruction boundaries and a {e confidence} level.  High
    confidence means the tool only claims code it has strong evidence for
    (recursive traversal); low confidence means its code claims may be
    misdecoded data (linear sweep, speculative disassembly). *)

type claim =
  | Code of int  (** covered by the instruction starting at this address *)
  | Data
  | Unknown

type confidence = High | Low

type kind =
  | Primary
      (** participates in the conservative four-case verdict (the paper's
          aggregation) *)
  | Refiner
      (** evidence-only: may flip bytes the primaries left ambiguous, never
          a byte they agreed on (see {!Aggregate.combine_sources}) *)

type t = {
  name : string;
  base : int;
  len : int;
  claims : claim array;  (** per text byte *)
  insns : (int, Zvm.Insn.t * int) Hashtbl.t;
  confidence : confidence;
  kind : kind;
  tags : string array;
      (** per-byte provenance of each claim (the inference fact that
          produced it); [[||]] for sources that do not track provenance *)
}

val of_linear : Linear.t -> t
(** Low confidence; abstains nowhere (everything is code or data). *)

val of_recursive : Recursive.t -> t
(** High confidence; abstains on unreached bytes. *)

val claim_at : t -> int -> claim

val tag_at : t -> int -> string
(** Provenance tag at a text {e offset} (not address); [""] when the
    source tracks none. *)
