(* Routine-granular chunking of the text segment, for the incremental
   (delta) IR path.

   The chunker is a pure function of the binary's bytes: it performs one
   cheap linear-framing pass (the same sequential decode-or-resync
   discipline as {!Linear.sweep}, without the cover array or boundary
   table) and cuts the text into chunks

   - at {e routine boundaries}: directly after an instruction with no
     fallthrough (ret / jmp / jmpt / jmpr / hlt), once a minimum chunk
     size has accumulated — linear framing restarts cleanly at such a
     point, so re-decoding a chunk in isolation reproduces the global
     sweep's framing within it;
   - by {e content-defined chunking} over stretches the framing pass
     cannot attribute (long data runs, or pathological routines that
     exceed the maximum chunk size without a sync point): a rolling hash
     over the raw bytes picks the cut, so an insertion upstream does not
     shift every later cut point.

   Alongside the cuts, the same pass extracts every statically visible
   text-to-text reference (direct branch targets, address-sized
   immediates, jump-table entries) plus the data-section address scan and
   the program entry.  Grouped by target chunk and expressed relative to
   the chunk base, these form each chunk's {e inbound fingerprint}: the
   part of a routine's IR that depends on the rest of the program.  A
   caller that changes without changing its references to a routine
   leaves that routine's fingerprint — and therefore its cache key —
   untouched. *)

type ref_kind = Branch | Immediate | Table | Data_word | Entry_point

let ref_kind_code = function
  | Branch -> 'b'
  | Immediate -> 'i'
  | Table -> 't'
  | Data_word -> 'd'
  | Entry_point -> 'e'

type chunk = {
  lo : int;  (** first text address of the chunk *)
  hi : int;  (** one past the last address *)
  synced : bool;
      (** [true] when [lo] is a linear-framing restart point (start of
          text or directly after a no-fallthrough instruction); CDC cuts
          inside unattributed stretches are unsynced. *)
  inbound : (ref_kind * int) list;
      (** sorted, deduplicated (kind, target - lo) pairs: every
          statically visible reference into this chunk, from anywhere in
          the program (including itself), chunk-relative. *)
}

type t = { base : int; len : int; chunks : chunk array }

(* CDC parameters: ~1 KiB expected chunk inside unsynced stretches. *)
let min_chunk = 96
let max_chunk = 4096
let cdc_mask = 0x3ff

let jump_table_entries binary ~lo ~hi table =
  let rec go i acc =
    if i >= 256 then List.rev acc
    else
      match Zelf.Binary.read32 binary (table + (i * 4)) with
      | Some v when v >= lo && v < hi -> go (i + 1) (v :: acc)
      | _ -> List.rev acc
  in
  go 0 []

let immediate_code_refs ~lo ~hi insn =
  let open Zvm.Insn in
  let candidates =
    match insn with
    | Movi (_, v) | Pushi v | Leaa (_, v) | Cmpi (_, v) -> [ v ]
    | _ -> []
  in
  List.filter (fun v -> v >= lo && v < hi) candidates

let scan binary =
  let text = Zelf.Binary.text binary in
  let base = text.Zelf.Section.vaddr in
  let len = text.Zelf.Section.size in
  let lo = base and hi = base + len in
  let fetch a = Zelf.Binary.read8 binary a in
  (* One linear-framing pass: collect sync points (offsets directly after
     a no-fallthrough instruction) and outbound references. *)
  let refs = ref [] in
  let add_ref kind target = refs := (kind, target) :: !refs in
  let sync = Array.make (len + 1) false in
  sync.(0) <- true;
  sync.(len) <- true;
  (* Framing boundaries: every offset where the linear pass attempts a
     decode (instruction starts and gap bytes).  Cuts are restricted to
     these, so no cut ever lands inside an instruction — a mid-instruction
     cut would make the chunk's isolated re-decode diverge from the
     global sweep forever.  Boundaries occur at least every 7 bytes (the
     longest instruction), so restricting cuts costs at most that much
     slack past a desired cut point. *)
  let boundary = Array.make (len + 1) false in
  boundary.(len) <- true;
  let pos = ref base in
  while !pos < hi do
    boundary.(!pos - base) <- true;
    match Zvm.Decode.decode ~fetch !pos with
    | Ok (insn, ilen) when !pos + ilen <= hi ->
        (match Zvm.Insn.static_target ~at:!pos insn with
        | Some t when t >= lo && t < hi -> add_ref Branch t
        | _ -> ());
        List.iter (add_ref Immediate) (immediate_code_refs ~lo ~hi insn);
        (match insn with
        | Zvm.Insn.Jmpt (_, table) ->
            List.iter (add_ref Table) (jump_table_entries binary ~lo ~hi table)
        | _ -> ());
        if not (Zvm.Insn.has_fallthrough insn) then sync.(!pos + ilen - base) <- true;
        pos := !pos + ilen
    | Ok _ | Error _ -> incr pos
  done;
  List.iter (fun a -> add_ref Data_word a) (Recursive.scan_for_text_addresses binary);
  if binary.Zelf.Binary.entry >= lo && binary.Zelf.Binary.entry < hi then
    add_ref Entry_point binary.Zelf.Binary.entry;
  (* Cut points: prefer the first sync point once [min_chunk] bytes have
     accumulated; failing that for [max_chunk] bytes, fall back to a
     rolling-hash cut over the raw bytes (position-independent), and as a
     last resort cut hard at [max_chunk]. *)
  let cuts = ref [] (* descending offsets, excluding 0 and len *) in
  let start = ref 0 in
  let roll = ref 0 in
  let off = ref 0 in
  while !off < len do
    let b = match fetch (base + !off) with Some v -> v | None -> 0 in
    roll := ((!roll * 33) + b) land 0xffffff;
    incr off;
    let size = !off - !start in
    if !off < len then
      let cut_here =
        boundary.(!off)
        &&
        if sync.(!off) then size >= min_chunk
        else size >= max_chunk || (size >= min_chunk && !roll land cdc_mask = cdc_mask)
      in
      if cut_here then begin
        cuts := !off :: !cuts;
        start := !off;
        roll := 0
      end
  done;
  let bounds = Array.of_list (List.rev (len :: !cuts)) in
  let n = Array.length bounds in
  let chunks =
    Array.init n (fun i ->
        let clo = if i = 0 then 0 else bounds.(i - 1) in
        { lo = base + clo; hi = base + bounds.(i); synced = sync.(clo); inbound = [] })
  in
  (* Distribute references to their target chunks, chunk-relative. *)
  let chunk_of addr =
    (* binary search: greatest i with chunks.(i).lo <= addr *)
    let l = ref 0 and r = ref (n - 1) in
    while !l < !r do
      let m = (!l + !r + 1) / 2 in
      if chunks.(m).lo <= addr then l := m else r := m - 1
    done;
    !l
  in
  let per_chunk = Array.make n [] in
  List.iter
    (fun (kind, target) ->
      let i = chunk_of target in
      per_chunk.(i) <- (kind, target - chunks.(i).lo) :: per_chunk.(i))
    !refs;
  let chunks =
    Array.mapi
      (fun i c ->
        let inbound =
          List.sort_uniq
            (fun (k1, r1) (k2, r2) -> compare (r1, ref_kind_code k1) (r2, ref_kind_code k2))
            per_chunk.(i)
        in
        { c with inbound })
      chunks
  in
  { base; len; chunks }

let chunk_bytes binary (c : chunk) =
  let b = Buffer.create (c.hi - c.lo) in
  for a = c.lo to c.hi - 1 do
    Buffer.add_char b (Char.chr (Option.value ~default:0 (Zelf.Binary.read8 binary a)))
  done;
  Buffer.contents b

(* Up to 6 bytes past the chunk end (the longest instruction is 7 bytes,
   so a decode attempted at the last chunk byte can read 6 bytes beyond):
   including them in the key means a chunk's framing and failed-decode
   behaviour are a pure function of its key material. *)
let chunk_suffix binary (c : chunk) =
  let b = Buffer.create 6 in
  let stop = ref false in
  for i = 0 to 5 do
    if not !stop then
      match Zelf.Binary.read8 binary (c.hi + i) with
      | Some v -> Buffer.add_char b (Char.chr v)
      | None -> stop := true
  done;
  Buffer.contents b

let inbound_string (c : chunk) =
  let b = Buffer.create 64 in
  List.iter
    (fun (k, rel) ->
      Buffer.add_char b (ref_kind_code k);
      Buffer.add_string b (string_of_int rel);
      Buffer.add_char b ';')
    c.inbound;
  Buffer.contents b
