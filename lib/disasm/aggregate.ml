type verdict = Code | Data | Ambiguous

type tally = {
  case1_code : int;
  case1_data : int;
  case2_disagree : int;
  case3_contradict : int;
  case4_low_confidence : int;
  overlap_len_mismatch : int;
  refined_code : int;
  refined_data : int;
  refined_by_fact : (string * int) list;
}

let tally_zero =
  {
    case1_code = 0;
    case1_data = 0;
    case2_disagree = 0;
    case3_contradict = 0;
    case4_low_confidence = 0;
    overlap_len_mismatch = 0;
    refined_code = 0;
    refined_data = 0;
    refined_by_fact = [];
  }

(* Associative, commutative fact-count union: merged per name, sorted, so
   a batch total is independent of job order and count. *)
let merge_facts a b =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (k, v) -> Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    (a @ b);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let merge_stats a b =
  {
    case1_code = a.case1_code + b.case1_code;
    case1_data = a.case1_data + b.case1_data;
    case2_disagree = a.case2_disagree + b.case2_disagree;
    case3_contradict = a.case3_contradict + b.case3_contradict;
    case4_low_confidence = a.case4_low_confidence + b.case4_low_confidence;
    overlap_len_mismatch = a.overlap_len_mismatch + b.overlap_len_mismatch;
    refined_code = a.refined_code + b.refined_code;
    refined_data = a.refined_data + b.refined_data;
    refined_by_fact = merge_facts a.refined_by_fact b.refined_by_fact;
  }

(* Verdict-only tally for aggregates materialized from a validated
   traversal (stitch/parallel paths): no disagreement by construction, so
   every byte is case 1. *)
let tally_of_verdicts verdicts =
  let code = ref 0 and data = ref 0 in
  Array.iter (function Code -> incr code | Data -> incr data | Ambiguous -> ()) verdicts;
  { tally_zero with case1_code = !code; case1_data = !data }

let tally_fields t =
  [
    ("case1_code", t.case1_code);
    ("case1_data", t.case1_data);
    ("case2_disagree", t.case2_disagree);
    ("case3_contradict", t.case3_contradict);
    ("case4_low_confidence", t.case4_low_confidence);
    ("overlap_len_mismatch", t.overlap_len_mismatch);
    ("refined_code", t.refined_code);
    ("refined_data", t.refined_data);
  ]
  @ List.map (fun (k, v) -> ("refined." ^ k, v)) t.refined_by_fact

type t = {
  base : int;
  len : int;
  verdicts : verdict array;
  insn_at : (int, Zvm.Insn.t * int) Hashtbl.t;
  warnings : string list;
  tally : tally;
  refined : (int * string) list;
  pin_hints : int list;
}

let pp_verdict ppf = function
  | Code -> Format.pp_print_string ppf "code"
  | Data -> Format.pp_print_string ppf "data"
  | Ambiguous -> Format.pp_print_string ppf "ambiguous"

(* Satellite accounting: ranges where sources claim overlapping
   instructions of {e different lengths}.  The per-byte loop below folds
   these into cases 2/4 (correct but silent); here each overlapping
   boundary pair with mismatched lengths is reported and counted, without
   changing any verdict.  O(n log n) sweep; overlaps are at most one
   instruction long, so the active set stays tiny. *)
let overlap_mismatches (primaries : Source.t list) =
  let boundaries =
    List.concat_map
      (fun (s : Source.t) ->
        Hashtbl.fold (fun addr (_, ilen) acc -> (addr, ilen, s.Source.name) :: acc) s.Source.insns [])
      primaries
    |> List.sort compare
  in
  let count = ref 0 and warnings = ref [] in
  let active = ref [] in
  List.iter
    (fun (addr, ilen, name) ->
      active := List.filter (fun (a, l, _) -> a + l > addr) !active;
      List.iter
        (fun (a, l, n) ->
          if l <> ilen && not (a = addr && n = name) then begin
            incr count;
            warnings :=
              Printf.sprintf
                "overlapping instruction claims of different lengths: %s@0x%x+%d vs %s@0x%x+%d"
                n a l name addr ilen
              :: !warnings
          end)
        !active;
      active := (addr, ilen, name) :: !active)
    boundaries;
  (!count, List.rev !warnings)

(* N-way aggregation rule (generalizing the paper's case analysis to any
   number of tools):

   - a byte is [Code] iff at least one high-confidence primary source
     claims it as code and every primary that claims anything agrees on
     the covering instruction's start;
   - a byte is [Data] iff no primary claims it as code;
   - anything else — disagreement, or code claimed only by low-confidence
     sources (possibly misdecoded data, case 4) — is [Ambiguous].

   Refiner sources never participate in that verdict: afterwards they may
   flip bytes judged [Ambiguous] (to [Code] when consistent with every
   primary code claim, to [Data] when no high-confidence claim opposes),
   and nothing else.  A byte the primaries agreed on is never overturned,
   so with the refiners of {!Infer} the paper's conservatism is preserved
   and soundness reduces to the inference pass alone. *)
let combine_sources binary (sources : Source.t list) =
  (match sources with
  | [] -> invalid_arg "Aggregate.combine_sources: no sources"
  | _ -> ());
  let first = List.hd sources in
  let base = first.Source.base and len = first.Source.len in
  List.iter
    (fun (s : Source.t) ->
      if s.Source.base <> base || s.Source.len <> len then
        invalid_arg "Aggregate.combine_sources: sources cover different ranges")
    sources;
  let primaries = List.filter (fun (s : Source.t) -> s.Source.kind = Source.Primary) sources in
  let refiners = List.filter (fun (s : Source.t) -> s.Source.kind = Source.Refiner) sources in
  (match primaries with
  | [] -> invalid_arg "Aggregate.combine_sources: no primary source"
  | _ -> ());
  (* Preextract the per-source claim arrays and confidences once, then
     judge every byte in a single allocation-free inner loop: the verdict
     needs only the first claimed start, start agreement, whether any
     high-confidence tool claimed code, and whether any tool claimed data.
     Allocation happens only on the (rare) warning paths. *)
  let srcs = Array.of_list primaries in
  let n_sources = Array.length srcs in
  let claims = Array.map (fun (s : Source.t) -> s.Source.claims) srcs in
  let high = Array.map (fun (s : Source.t) -> s.Source.confidence = Source.High) srcs in
  let verdicts = Array.make len Data in
  let warnings = ref [] in
  let warn fmt = Format.kasprintf (fun s -> warnings := s :: !warnings) fmt in
  let c1_code = ref 0 and c1_data = ref 0 in
  let c2 = ref 0 and c3 = ref 0 and c4 = ref 0 in
  for off = 0 to len - 1 do
    let n_code = ref 0 and start0 = ref 0 and agree = ref true in
    let high_claim = ref false and data_claimed = ref false in
    for i = 0 to n_sources - 1 do
      match claims.(i).(off) with
      | Source.Code start ->
          if !n_code = 0 then start0 := start else if start <> !start0 then agree := false;
          incr n_code;
          if high.(i) then high_claim := true
      | Source.Data -> data_claimed := true
      | Source.Unknown -> ()
    done;
    verdicts.(off) <-
      (if !n_code = 0 then begin incr c1_data; Data end
       else if not !agree then begin
         warn "boundary disagreement at 0x%x (%s)" (base + off)
           (String.concat ", "
              (List.filter_map
                 (fun (s : Source.t) ->
                   match s.Source.claims.(off) with
                   | Source.Code st -> Some (Printf.sprintf "%s@0x%x" s.Source.name st)
                   | _ -> None)
                 primaries));
         incr c2;
         Ambiguous
       end
       else if !data_claimed then begin
         if !high_claim then
           warn "data claim at 0x%x contradicted by a high-confidence code claim" (base + off);
         incr c3;
         Ambiguous
       end
       else if !high_claim then begin incr c1_code; Code end
       else begin (* only low-confidence tools call it code: case 4 *) incr c4; Ambiguous end)
  done;
  let overlap_count, overlap_warnings = overlap_mismatches primaries in
  List.iter (fun w -> warnings := w :: !warnings) overlap_warnings;
  (* Refinement pass: each refiner may flip ambiguous bytes only.  A flip
     to [Code start] requires every primary code claim on the byte to
     agree with [start] (high-confidence data claims would keep it
     ambiguous, but no primary emits those); a flip to [Data] requires no
     high-confidence code claim.  Flips record the refiner's per-byte
     provenance tag, and the flipped instruction boundaries join the
     merge below so downstream IR construction sees the refined code. *)
  let refined = ref [] in
  let r_code = ref 0 and r_data = ref 0 in
  let fact_counts = Hashtbl.create 8 in
  let bump_fact tag =
    Hashtbl.replace fact_counts tag (1 + Option.value ~default:0 (Hashtbl.find_opt fact_counts tag))
  in
  let flipped_starts : (int, Zvm.Insn.t * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Source.t) ->
      for off = 0 to len - 1 do
        if verdicts.(off) = Ambiguous then
          match r.Source.claims.(off) with
          | Source.Unknown -> ()
          | Source.Code s ->
              let ok = ref true in
              for i = 0 to n_sources - 1 do
                match claims.(i).(off) with
                | Source.Code st -> if st <> s then ok := false
                | Source.Data | Source.Unknown -> ()
              done;
              if !ok then begin
                verdicts.(off) <- Code;
                incr r_code;
                let tag = Source.tag_at r off in
                bump_fact tag;
                refined := (off, tag) :: !refined;
                (match Hashtbl.find_opt r.Source.insns s with
                | Some boundary -> Hashtbl.replace flipped_starts s boundary
                | None -> ())
              end
          | Source.Data ->
              let high_code = ref false in
              for i = 0 to n_sources - 1 do
                match claims.(i).(off) with
                | Source.Code _ -> if high.(i) then high_code := true
                | _ -> ()
              done;
              if not !high_code then begin
                verdicts.(off) <- Data;
                incr r_data;
                let tag = Source.tag_at r off in
                bump_fact tag;
                refined := (off, tag) :: !refined
              end
      done)
    refiners;
  let boundary_estimate =
    Array.fold_left (fun acc (s : Source.t) -> max acc (Hashtbl.length s.Source.insns)) 16 srcs
  in
  let insn_at = Hashtbl.create boundary_estimate in
  (* Boundary preference: earlier sources are lower priority (later
     replace); order the list lowest-priority first. *)
  List.iter
    (fun (s : Source.t) -> Hashtbl.iter (fun addr v -> Hashtbl.replace insn_at addr v) s.Source.insns)
    primaries;
  (* Boundaries of instructions a refiner flipped to code, where no
     primary already supplied one. *)
  Hashtbl.iter
    (fun addr v -> if not (Hashtbl.mem insn_at addr) then Hashtbl.replace insn_at addr v)
    flipped_starts;
  (* Drop boundaries that start inside bytes judged pure data. *)
  let doomed =
    Hashtbl.fold
      (fun addr _ acc ->
        let off = addr - base in
        if off < 0 || off >= len || verdicts.(off) = Data then addr :: acc else acc)
      insn_at []
  in
  List.iter (Hashtbl.remove insn_at) doomed;
  ignore binary;
  let tally =
    {
      case1_code = !c1_code;
      case1_data = !c1_data;
      case2_disagree = !c2;
      case3_contradict = !c3;
      case4_low_confidence = !c4;
      overlap_len_mismatch = overlap_count;
      refined_code = !r_code;
      refined_data = !r_data;
      refined_by_fact =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) fact_counts [] |> List.sort compare;
    }
  in
  {
    base;
    len;
    verdicts;
    insn_at;
    warnings = List.rev !warnings;
    tally;
    refined = List.sort compare !refined;
    pin_hints = [];
  }

let combine binary (lin : Linear.t) (rec_ : Recursive.t) =
  combine_sources binary [ Source.of_linear lin; Source.of_recursive rec_ ]

let run ?(infer = false) binary =
  let lin = Obs.span "linear" (fun () -> Linear.sweep binary) in
  let rec_ = Obs.span "recursive" (fun () -> Recursive.traverse binary) in
  let spec = Obs.span "superset" (fun () -> Superset.run binary ~avoid:rec_) in
  (* Priority (lowest first): linear, superset, recursive — so recursive
     boundaries win, with superset refining the regions it never reached.
     The inference refiner, when enabled, rides along as evidence only. *)
  let sources = [ Source.of_linear lin; spec; Source.of_recursive rec_ ] in
  if infer then begin
    let inf = Obs.span "infer" (fun () -> Infer.run binary ~avoid:rec_) in
    let agg = combine_sources binary (sources @ [ inf.Infer.source ]) in
    { agg with pin_hints = inf.Infer.pin_hints }
  end
  else combine_sources binary sources

let verdict_at t addr =
  if addr < t.base || addr >= t.base + t.len then None else Some t.verdicts.(addr - t.base)

let ambiguous_ranges t =
  let ranges = ref [] in
  let start = ref (-1) in
  for off = 0 to t.len - 1 do
    match (t.verdicts.(off), !start) with
    | Ambiguous, -1 -> start := off
    | Ambiguous, _ -> ()
    | _, -1 -> ()
    | _, s ->
        ranges := (t.base + s, t.base + off) :: !ranges;
        start := -1
  done;
  if !start >= 0 then ranges := (t.base + !start, t.base + t.len) :: !ranges;
  List.rev !ranges

let code_starts t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.insn_at [] |> List.sort compare

let stats t =
  let code = ref 0 and data = ref 0 and amb = ref 0 in
  Array.iter
    (function Code -> incr code | Data -> incr data | Ambiguous -> incr amb)
    t.verdicts;
  (!code, !data, !amb)
