type verdict = Code | Data | Ambiguous

type t = {
  base : int;
  len : int;
  verdicts : verdict array;
  insn_at : (int, Zvm.Insn.t * int) Hashtbl.t;
  warnings : string list;
}

let pp_verdict ppf = function
  | Code -> Format.pp_print_string ppf "code"
  | Data -> Format.pp_print_string ppf "data"
  | Ambiguous -> Format.pp_print_string ppf "ambiguous"

(* N-way aggregation rule (generalizing the paper's case analysis to any
   number of tools):

   - a byte is [Code] iff at least one high-confidence source claims it as
     code and every source that claims anything agrees on the covering
     instruction's start;
   - a byte is [Data] iff no source claims it as code;
   - anything else — disagreement, or code claimed only by low-confidence
     sources (possibly misdecoded data, case 4) — is [Ambiguous]. *)
let combine_sources binary (sources : Source.t list) =
  let first = List.hd sources in
  let base = first.Source.base and len = first.Source.len in
  List.iter
    (fun (s : Source.t) ->
      if s.Source.base <> base || s.Source.len <> len then
        invalid_arg "Aggregate.combine_sources: sources cover different ranges")
    sources;
  (* Preextract the per-source claim arrays and confidences once, then
     judge every byte in a single allocation-free inner loop: the verdict
     needs only the first claimed start, start agreement, whether any
     high-confidence tool claimed code, and whether any tool claimed data.
     Allocation happens only on the (rare) warning paths. *)
  let srcs = Array.of_list sources in
  let n_sources = Array.length srcs in
  let claims = Array.map (fun (s : Source.t) -> s.Source.claims) srcs in
  let high = Array.map (fun (s : Source.t) -> s.Source.confidence = Source.High) srcs in
  let verdicts = Array.make len Data in
  let warnings = ref [] in
  let warn fmt = Format.kasprintf (fun s -> warnings := s :: !warnings) fmt in
  for off = 0 to len - 1 do
    let n_code = ref 0 and start0 = ref 0 and agree = ref true in
    let high_claim = ref false and data_claimed = ref false in
    for i = 0 to n_sources - 1 do
      match claims.(i).(off) with
      | Source.Code start ->
          if !n_code = 0 then start0 := start else if start <> !start0 then agree := false;
          incr n_code;
          if high.(i) then high_claim := true
      | Source.Data -> data_claimed := true
      | Source.Unknown -> ()
    done;
    verdicts.(off) <-
      (if !n_code = 0 then Data
       else if not !agree then begin
         warn "boundary disagreement at 0x%x (%s)" (base + off)
           (String.concat ", "
              (List.filter_map
                 (fun (s : Source.t) ->
                   match s.Source.claims.(off) with
                   | Source.Code st -> Some (Printf.sprintf "%s@0x%x" s.Source.name st)
                   | _ -> None)
                 sources));
         Ambiguous
       end
       else if !data_claimed then begin
         if !high_claim then
           warn "data claim at 0x%x contradicted by a high-confidence code claim" (base + off);
         Ambiguous
       end
       else if !high_claim then Code
       else (* only low-confidence tools call it code: case 4 *) Ambiguous)
  done;
  let boundary_estimate =
    Array.fold_left (fun acc (s : Source.t) -> max acc (Hashtbl.length s.Source.insns)) 16 srcs
  in
  let insn_at = Hashtbl.create boundary_estimate in
  (* Boundary preference: earlier sources are lower priority (later
     replace); order the list lowest-priority first. *)
  List.iter
    (fun (s : Source.t) -> Hashtbl.iter (fun addr v -> Hashtbl.replace insn_at addr v) s.Source.insns)
    sources;
  (* Drop boundaries that start inside bytes judged pure data. *)
  let doomed =
    Hashtbl.fold
      (fun addr _ acc ->
        let off = addr - base in
        if off < 0 || off >= len || verdicts.(off) = Data then addr :: acc else acc)
      insn_at []
  in
  List.iter (Hashtbl.remove insn_at) doomed;
  ignore binary;
  { base; len; verdicts; insn_at; warnings = List.rev !warnings }

let combine binary (lin : Linear.t) (rec_ : Recursive.t) =
  combine_sources binary [ Source.of_linear lin; Source.of_recursive rec_ ]

let run binary =
  let lin = Obs.span "linear" (fun () -> Linear.sweep binary) in
  let rec_ = Obs.span "recursive" (fun () -> Recursive.traverse binary) in
  let spec = Obs.span "superset" (fun () -> Superset.run binary ~avoid:rec_) in
  (* Priority (lowest first): linear, superset, recursive — so recursive
     boundaries win, with superset refining the regions it never reached. *)
  combine_sources binary [ Source.of_linear lin; spec; Source.of_recursive rec_ ]

let verdict_at t addr =
  if addr < t.base || addr >= t.base + t.len then None else Some t.verdicts.(addr - t.base)

let ambiguous_ranges t =
  let ranges = ref [] in
  let start = ref (-1) in
  for off = 0 to t.len - 1 do
    match (t.verdicts.(off), !start) with
    | Ambiguous, -1 -> start := off
    | Ambiguous, _ -> ()
    | _, -1 -> ()
    | _, s ->
        ranges := (t.base + s, t.base + off) :: !ranges;
        start := -1
  done;
  if !start >= 0 then ranges := (t.base + !start, t.base + t.len) :: !ranges;
  List.rev !ranges

let code_starts t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.insn_at [] |> List.sort compare

let stats t =
  let code = ref 0 and data = ref 0 and amb = ref 0 in
  Array.iter
    (function Code -> incr code | Data -> incr data | Ambiguous -> incr amb)
    t.verdicts;
  (!code, !data, !amb)
