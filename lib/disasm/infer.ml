(* Inference-based refiner source: a fact-propagation fixpoint over the
   superset decode, in the lineage of Datalog disassembly.

   The primary sources implement the paper's conservative case analysis,
   so every disagreement between linear sweep and recursive traversal
   becomes a pinned (fixed) range and, ultimately, file-size overhead.
   This pass produces additional per-byte evidence that the aggregation
   may use to {e refine} those ambiguous ranges — and only those: it
   abstains outright on every byte the recursive traversal reached, so
   by construction its verdicts can never contradict the one
   high-confidence primary, and the soundness of the whole [--infer]
   pipeline reduces to the soundness of the facts below (gated by the
   differential fuzzer over the adversarial corpus).

   Facts, each carried as a per-byte provenance tag:

   - [overlap-exclusion] — a byte covered by {e no} surviving candidate
     of the prune fixpoint cannot be executed without eventually running
     into undecodable bytes, so it is data.  This is what reclassifies
     dense data islands whose every speculative decode dies.
   - [data-word] — pointer-sized words the known code reads as data
     (jump-table storage, [Loada]/[Storea]/[Loadp]/[Storep] operands)
     that live inside the text section are data, not instructions.
   - [jump-table] — entries of a jump table dispatched by a {e known}
     (recursively reached) [Jmpt], scanned to the same 1024-entry bound
     the pin analysis uses, anchor code: the traversal only follows the
     first 256, so wide dispatch tables leave a reachable tail the
     primaries call ambiguous.  The pin analysis pins every entry, so
     relocating these bytes is sound.
   - [call-fallthrough] — a surviving candidate that is a direct call to
     a known function start is almost certainly real code, and execution
     returns to the byte after it: anchor the call and its fallthrough
     chain as code.
   - [computed-target] — the operand of a known [Jmpr]/[Callr] whose
     defining chain constant-folds from immediates and {e read-only}
     initialized memory (the classic xor-masked-pointer idiom) names its
     targets exactly.  Each resolved target is anchored as code and
     reported as a {e pin hint}: the run-time computation produces the
     original address, so the pin analysis must keep a landing there
     ([Ibt.Computed_target]) before the body may be relocated.
   - [unreachable-code] — when {e every} indirect site in the closed
     code set resolves (jump tables by bounded scan, returns by the
     after-call discipline the pin analysis already assumes,
     register-indirect branches by constant folding), reachability is
     closed under all control flow, so bytes outside the closure are
     provably never executed and are data.  This is the fact that
     reclassifies dead (never-referenced) functions; any unresolved site
     anywhere disables it for the whole binary.

   Code anchors are then propagated to a fixpoint: an anchored candidate
   claims its bytes, then extends along its fallthrough edge and its
   static branch target, stopping at claimed, avoided, or dead bytes.
   Newly claimed instructions are rescanned for jump tables, data words
   and indirect sites, so discovery iterates until no new code appears.
   Any conflict (a byte two facts disagree on) abstains rather than
   picking a side — and, when the conflicting anchor was one of the
   reachability-establishing facts (jump-table or computed-target),
   poisons the closure so [unreachable-code] never fires.  Every claim
   is monotone (Unknown -> Code/Data, never rewritten), so the worklist
   terminates within {!round_bound}. *)

type fact =
  | Call_fallthrough
  | Jump_table
  | Overlap_exclusion
  | Data_word
  | Computed_target
  | Unreachable

let fact_name = function
  | Call_fallthrough -> "call-fallthrough"
  | Jump_table -> "jump-table"
  | Overlap_exclusion -> "overlap-exclusion"
  | Data_word -> "data-word"
  | Computed_target -> "computed-target"
  | Unreachable -> "unreachable-code"

let all_facts =
  [ Call_fallthrough; Jump_table; Overlap_exclusion; Data_word; Computed_target; Unreachable ]

type t = {
  source : Source.t;
  rounds : int;
  fact_counts : (string * int) list;
  pin_hints : int list;
  closed : bool;
}

(* Worklist termination bound: the queue is deduplicated per
   (offset, fact), code-anchoring facts number three, and every
   successful claim enqueues at most two successors, so pops are bounded
   by 3*len (anchors) + 2*len (claim successors) plus slack.  Exposed so
   the test suite can pin the fixpoint's termination instead of trusting
   it. *)
let table_entry_bound = 1024

let round_bound binary =
  let text = Zelf.Binary.text binary in
  (6 * text.Zelf.Section.size) + table_entry_bound + 64

let falls_through insn = Zvm.Insn.has_fallthrough insn && insn <> Zvm.Insn.Sys 0

(* ---------- constant folding of indirect-branch operands ---------- *)

(* Abstract register values for the straight-line backward-chain
   evaluation.  [Bounded n] is a value in [0, n); [Scaled] is i*step for
   i in [0, count); [Ptr] adds a constant base (a table address);
   [Set] is an explicit small value set (the words of a bounded table
   read).  Everything else is [Top]. *)
type av =
  | Top
  | Const of int
  | Bounded of int
  | Scaled of int * int  (* count, step *)
  | Ptr of int * int * int  (* base, count, step *)
  | Set of int list

let max_fold_entries = table_entry_bound

let mask32 v = v land 0xffffffff

(* A 32-bit word that is guaranteed to hold its assembled value at run
   time: all four bytes inside one read-only initialized section.  Words
   in writable sections (or text, whose bytes the rewriter itself moves)
   never fold. *)
let readonly_word binary addr =
  match Zelf.Binary.section_at binary addr with
  | Some s
    when s.Zelf.Section.kind = Zelf.Section.Rodata && addr + 4 <= Zelf.Section.vend s ->
      Zelf.Binary.read32 binary addr
  | _ -> None

let eval_chain binary (chain : (int * (Zvm.Insn.t * int)) list) =
  let regs : (Zvm.Reg.t, av) Hashtbl.t = Hashtbl.create 8 in
  let get r = Option.value ~default:Top (Hashtbl.find_opt regs r) in
  let set r v = Hashtbl.replace regs r v in
  let open Zvm.Insn in
  List.iter
    (fun (addr, (insn, ilen)) ->
      match insn with
      | Movi (r, v) | Leaa (r, v) -> set r (Const (mask32 v))
      | Leap (r, disp) -> set r (Const (mask32 (addr + ilen + disp)))
      | Mov (rd, rs) -> set rd (get rs)
      | Loada (r, a) ->
          set r (match readonly_word binary a with Some v -> Const v | None -> Top)
      | Loadp (r, disp) ->
          set r
            (match readonly_word binary (addr + ilen + disp) with
            | Some v -> Const v
            | None -> Top)
      | Load8 { dst; _ } -> set dst (Bounded 256)
      | Load { dst; base; disp } ->
          set dst
            (match get base with
            | Const a -> (
                match readonly_word binary (a + disp) with Some v -> Const v | None -> Top)
            | Ptr (pbase, count, step) when count <= max_fold_entries ->
                let rec go i acc =
                  if i >= count then Some (List.rev acc)
                  else
                    match readonly_word binary (pbase + disp + (i * step)) with
                    | Some v -> go (i + 1) (v :: acc)
                    | None -> None
                in
                (match go 0 [] with
                | Some l -> Set (List.sort_uniq compare l)
                | None -> Top)
            | _ -> Top)
      | Alui (op, r, imm) ->
          let app v =
            match op with
            | Addi -> mask32 (v + imm)
            | Subi -> mask32 (v - imm)
            | Xori -> mask32 (v lxor imm)
            | Ori -> mask32 (v lor imm)
            | Andi -> v land imm
            | Muli -> mask32 (v * imm)
          in
          set r
            (match (get r, op) with
            | Const v, _ -> Const (app v)
            | Set l, _ -> Set (List.sort_uniq compare (List.map app l))
            | _, Andi when imm >= 0 && imm < max_fold_entries -> Bounded (imm + 1)
            | _ -> Top)
      | Shli (r, k) ->
          set r
            (match get r with
            | Const v -> Const (mask32 (v lsl k))
            | Bounded n when k <= 12 && n <= max_fold_entries -> Scaled (n, 1 lsl k)
            | _ -> Top)
      | Alu (op, rd, rs) ->
          set rd
            (match (op, get rd, get rs) with
            | Add, Const a, Const b -> Const (mask32 (a + b))
            | Sub, Const a, Const b -> Const (mask32 (a - b))
            | Xor, Const a, Const b -> Const (mask32 (a lxor b))
            | Or, Const a, Const b -> Const (a lor b)
            | And, Const a, Const b -> Const (a land b)
            | Add, Const b, Scaled (count, step) | Add, Scaled (count, step), Const b ->
                Ptr (b, count, step)
            | Mod, _, Const m when m > 0 && m <= max_fold_entries -> Bounded m
            | _ -> Top)
      | Shri (r, _) | Not r | Neg r | Pop r -> set r Top
      (* Calls and system calls may clobber anything. *)
      | Call _ | Callr _ | Jmpr _ | Jmpt _ | Sys _ -> Hashtbl.reset regs
      | Store _ | Store8 _ | Storea _ | Storep _ | Push _ | Pushi _ | Cmp _ | Cmpi _
      | Test _ | Jcc _ | Jmp _ | Ret | Halt | Nop | Land | Retland ->
          ())
    chain;
  get

let max_chain = 160

(* The straight-line defining chain of [site]: walk back through unique
   fallthrough predecessors in [insns], stopping at any join point
   (an address control flow can enter some other way), at a predecessor
   conflict, or at the cap.  Evaluation then starts from the chain head
   with every register Top, so any path that can actually reach the site
   is over-approximated. *)
let chain_for ~insns ~joins ~pred site =
  let rec back addr acc n =
    if n >= max_chain || Hashtbl.mem joins addr then acc
    else
      match Hashtbl.find_opt pred addr with
      | Some p when p >= 0 -> (
          match Hashtbl.find_opt insns p with
          | Some v -> back p ((p, v) :: acc) (n + 1)
          | None -> acc)
      | _ -> acc
  in
  back site [] 0

let scan_table binary ~lo ~hi table =
  let rec go i acc =
    if i >= table_entry_bound then List.rev acc
    else
      match Zelf.Binary.read32 binary (table + (i * 4)) with
      | Some v when v >= lo && v < hi -> go (i + 1) ((table + (i * 4), v) :: acc)
      | _ -> List.rev acc
  in
  go 0 []

(* Shared resolver state over a (possibly growing) instruction map:
   join points are targets the rest of the program can reach directly —
   static branch targets, bounded jump-table entries, the program entry,
   every address-constant the data scan sees, and (added as they are
   discovered) resolved computed targets. *)
let build_joins binary ~insns ~lo ~hi =
  let joins : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let add a = Hashtbl.replace joins a () in
  add binary.Zelf.Binary.entry;
  List.iter add (Recursive.scan_for_text_addresses binary);
  Hashtbl.iter
    (fun addr (insn, _) ->
      (match Zvm.Insn.static_target ~at:addr insn with Some t -> add t | None -> ());
      match insn with
      | Zvm.Insn.Jmpt (_, table) ->
          List.iter (fun (_, entry) -> add entry) (scan_table binary ~lo ~hi table)
      | _ -> ())
    insns;
  joins

let build_pred ~insns =
  let pred : (int, int) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun addr (insn, ilen) ->
      if falls_through insn then
        match Hashtbl.find_opt pred (addr + ilen) with
        | None -> Hashtbl.replace pred (addr + ilen) addr
        | Some p when p = addr -> ()
        | Some _ -> Hashtbl.replace pred (addr + ilen) (-1) (* ambiguous: stop there *))
    insns;
  pred

(* Resolve one register-indirect site.  Accepting a resolution requires
   every in-text target to be either a join already (so no defining
   chain, this one included, runs through it) or not yet a known
   instruction start (brand-new code, which is immediately added to the
   join set) — otherwise control could enter the middle of a chain the
   evaluation assumed straight-line, and the site stays unresolved. *)
let resolve_site binary ~insns ~joins ~pred ~lo ~hi site reg =
  let chain = chain_for ~insns ~joins ~pred site in
  let get = eval_chain binary chain in
  let accept targets =
    let in_text = List.filter (fun v -> v >= lo && v < hi) targets in
    if
      List.for_all
        (fun v -> Hashtbl.mem joins v || not (Hashtbl.mem insns v))
        in_text
    then begin
      List.iter (fun v -> Hashtbl.replace joins v ()) in_text;
      Some in_text
    end
    else None
  in
  match get reg with
  | Const v -> accept [ mask32 v ]
  | Set l -> accept (List.map mask32 l)
  | _ -> None

(* Resolved in-text targets of every register-indirect site in a
   {e validated} instruction map (no ambiguity anywhere), sorted: the
   stitched aggregation paths (Delta, Par_ir) use this to reproduce the
   pin hints the full inference pass derives on the cold path, which on
   validated binaries performs exactly this one resolution round. *)
let resolve_pins binary ~insns =
  let text = Zelf.Binary.text binary in
  let lo = text.Zelf.Section.vaddr and hi = Zelf.Section.vend text in
  let joins = build_joins binary ~insns ~lo ~hi in
  let pred = build_pred ~insns in
  let sites =
    Hashtbl.fold
      (fun addr (insn, _) acc ->
        match insn with
        | Zvm.Insn.Jmpr r | Zvm.Insn.Callr r -> (addr, r) :: acc
        | _ -> acc)
      insns []
    |> List.sort compare
  in
  List.concat_map
    (fun (site, reg) ->
      match resolve_site binary ~insns ~joins ~pred ~lo ~hi site reg with
      | Some targets -> targets
      | None -> [])
    sites
  |> List.sort_uniq compare

(* ---------- the inference pass ---------- *)

let run binary ~(avoid : Recursive.t) =
  let text = Zelf.Binary.text binary in
  let base = text.Zelf.Section.vaddr in
  let len = text.Zelf.Section.size in
  let lo = base and hi = base + len in
  let candidates = Superset.decode_all binary in
  let alive = Superset.prune_fixpoint binary in
  let claims = Array.make len Source.Unknown in
  let tags = Array.make len "" in
  let insns : (int, Zvm.Insn.t * int) Hashtbl.t = Hashtbl.create 64 in
  let counts = Hashtbl.create 8 in
  List.iter (fun f -> Hashtbl.replace counts (fact_name f) 0) all_facts;
  let bump fact n =
    let k = fact_name fact in
    Hashtbl.replace counts k (Hashtbl.find counts k + n)
  in
  let avoided off = Recursive.reached avoid (base + off) in
  (* Closure flag for [unreachable-code]: true while every indirect site
     resolves and every reachability-establishing claim lands cleanly. *)
  let closed = ref true in
  let pin_hints = ref [] in
  (* -- overlap-conflict exclusion: bytes no surviving candidate covers -- *)
  let covered = Array.make len false in
  for off = 0 to len - 1 do
    if alive.(off) then
      match candidates.(off) with
      | Some (_, ilen) ->
          for i = off to min (len - 1) (off + ilen - 1) do
            covered.(i) <- true
          done
      | None -> ()
  done;
  let claim_data off fact =
    if off >= 0 && off < len && (not (avoided off)) && claims.(off) = Source.Unknown
    then begin
      claims.(off) <- Source.Data;
      tags.(off) <- fact_name fact;
      bump fact 1
    end
  in
  for off = 0 to len - 1 do
    if not covered.(off) then claim_data off Overlap_exclusion
  done;
  (* -- worklist of code anchors, deduplicated per (offset, fact) -- *)
  let work = Queue.create () in
  let seen : (int * fact, unit) Hashtbl.t = Hashtbl.create 256 in
  let enqueue off fact =
    if not (Hashtbl.mem seen (off, fact)) then begin
      Hashtbl.replace seen (off, fact) ();
      Queue.add (off, fact) work
    end
  in
  let rounds = ref 0 in
  (* The growing known-code map: the traversal's instructions plus every
     instruction the propagation claims.  Fact scans and site resolution
     iterate over it to a fixpoint. *)
  let known : (int, Zvm.Insn.t * int) Hashtbl.t = Hashtbl.copy avoid.Recursive.insns in
  let newly_known = ref [] in
  let claim_word addr =
    if addr >= lo && addr + 4 <= hi then
      for i = addr - base to addr - base + 3 do
        claim_data i Data_word
      done
  in
  (* Scan a batch of known instructions for jump tables and data words. *)
  let scan_facts batch =
    List.iter
      (fun (addr, (insn, ilen)) ->
        match insn with
        | Zvm.Insn.Jmpt (_, table) ->
            List.iter
              (fun (word_addr, entry) ->
                claim_word word_addr;
                enqueue (entry - base) Jump_table)
              (scan_table binary ~lo ~hi table)
        | Zvm.Insn.Loada (_, a) | Zvm.Insn.Storea (a, _) -> claim_word a
        | Zvm.Insn.Loadp (_, disp) | Zvm.Insn.Storep (disp, _) ->
            claim_word (addr + ilen + disp)
        | _ -> ())
      batch
  in
  (* Drain the propagation worklist: claim anchored candidates and extend
     along fallthrough edges and static targets.  Reachability-
     establishing facts that fail to land poison the closure. *)
  let drain () =
    while not (Queue.is_empty work) do
      incr rounds;
      let off, fact = Queue.pop work in
      let reach = fact = Jump_table || fact = Computed_target in
      if off >= 0 && off < len then begin
        if avoided off then begin
          if reach && not (Hashtbl.mem avoid.Recursive.insns (base + off)) then
            closed := false
        end
        else
          match claims.(off) with
          | Source.Code s -> if reach && s <> base + off then closed := false
          | Source.Data -> if reach then closed := false
          | Source.Unknown -> (
              if not alive.(off) then begin if reach then closed := false end
              else
                match candidates.(off) with
                | None -> if reach then closed := false
                | Some (insn, ilen) ->
                    let clash = ref (off + ilen > len) in
                    for i = off to min (len - 1) (off + ilen - 1) do
                      if claims.(i) <> Source.Unknown || avoided i then clash := true
                    done;
                    if !clash then begin if reach then closed := false end
                    else begin
                      for i = off to off + ilen - 1 do
                        claims.(i) <- Source.Code (base + off);
                        tags.(i) <- fact_name fact
                      done;
                      bump fact ilen;
                      Hashtbl.replace insns (base + off) (insn, ilen);
                      Hashtbl.replace known (base + off) (insn, ilen);
                      newly_known := (base + off, (insn, ilen)) :: !newly_known;
                      if falls_through insn then enqueue (off + ilen) fact;
                      match Zvm.Insn.static_target ~at:(base + off) insn with
                      | Some tgt when tgt >= lo && tgt < hi -> enqueue (tgt - base) fact
                      | _ -> ()
                    end)
      end
    done
  in
  (* -- post-call fallthrough liveness: surviving calls to traversal-known
        function starts anchor themselves (and, via propagation, the
        return site after them) as code -- *)
  for off = 0 to len - 1 do
    if alive.(off) && not (avoided off) then
      match candidates.(off) with
      | Some ((Zvm.Insn.Call _ as insn), _) -> (
          match Zvm.Insn.static_target ~at:(base + off) insn with
          | Some tgt when Hashtbl.mem avoid.Recursive.insns tgt ->
              enqueue off Call_fallthrough
          | _ -> ())
      | _ -> ()
  done;
  (* -- discovery fixpoint: scan facts and resolve indirect sites over
        the growing known map until no new code appears -- *)
  let processed_sites : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let batch =
    ref
      (Hashtbl.fold (fun addr v acc -> (addr, v) :: acc) avoid.Recursive.insns []
      |> List.sort compare)
  in
  let iterations = ref 0 in
  while !batch <> [] && !iterations < 64 do
    incr iterations;
    scan_facts !batch;
    let joins = build_joins binary ~insns:known ~lo ~hi in
    List.iter (fun t -> Hashtbl.replace joins t ()) !pin_hints;
    let pred = build_pred ~insns:known in
    let sites =
      List.filter_map
        (fun (addr, (insn, _)) ->
          match insn with
          | Zvm.Insn.Jmpr r | Zvm.Insn.Callr r
            when not (Hashtbl.mem processed_sites addr) ->
              Some (addr, r)
          | _ -> None)
        !batch
      |> List.sort compare
    in
    List.iter
      (fun (site, reg) ->
        Hashtbl.replace processed_sites site ();
        match resolve_site binary ~insns:known ~joins ~pred ~lo ~hi site reg with
        | Some targets ->
            pin_hints := targets @ !pin_hints;
            List.iter (fun t -> enqueue (t - base) Computed_target) targets
        | None -> closed := false)
      sites;
    newly_known := [];
    drain ();
    batch := List.sort compare !newly_known
  done;
  if !batch <> [] then closed := false;
  (* -- unreachable-code exclusion: with the closure intact, every byte
        outside it is provably never executed -- *)
  if !closed then
    for off = 0 to len - 1 do
      if (not (avoided off)) && claims.(off) = Source.Unknown then begin
        claims.(off) <- Source.Data;
        tags.(off) <- fact_name Unreachable;
        bump Unreachable 1
      end
    done;
  let source =
    {
      Source.name = "infer";
      base;
      len;
      claims;
      insns;
      confidence = Source.High;
      kind = Source.Refiner;
      tags;
    }
  in
  let fact_counts =
    List.map (fun f -> (fact_name f, Hashtbl.find counts (fact_name f))) all_facts
  in
  {
    source;
    rounds = !rounds;
    fact_counts;
    pin_hints = List.sort_uniq compare !pin_hints;
    closed = !closed;
  }
