(** Inference-based third disassembly source (a {!Source.Refiner}).

    Runs a fact-propagation fixpoint over the superset decode — post-call
    fallthrough liveness, jump-table bound anchors, overlap-conflict
    exclusion, data-word/pointer-reference anchors, constant-folded
    computed-target resolution, and (when every indirect site resolves)
    closed-world unreachable-code exclusion — producing per-byte
    code/data/unknown verdicts, each carrying the provenance tag of the
    fact that derived it.  The pass {e abstains on every byte the
    recursive traversal reached}, so its claims can refine only the
    ranges the primary sources left ambiguous and can never contradict
    the high-confidence traversal (the QCheck soundness property holds by
    construction; behavioural soundness of the facts themselves is gated
    by the differential fuzzer).  See DESIGN.md §15. *)

type fact =
  | Call_fallthrough
  | Jump_table
  | Overlap_exclusion
  | Data_word
  | Computed_target
  | Unreachable

val fact_name : fact -> string
val all_facts : fact list

type t = {
  source : Source.t;  (** kind [Refiner], name ["infer"] *)
  rounds : int;  (** worklist pops performed by the propagation fixpoint *)
  fact_counts : (string * int) list;
      (** bytes claimed per fact, every fact present, generator order *)
  pin_hints : int list;
      (** resolved computed-jump targets (in-text, sorted, unique): the
          run-time computation produces these {e original} addresses, so
          the pin analysis must keep landings there before any flipped
          body may be relocated *)
  closed : bool;
      (** every indirect site resolved — the precondition of the
          [unreachable-code] fact *)
}

val run : Zelf.Binary.t -> avoid:Recursive.t -> t
(** Infer over the binary's text section, abstaining on bytes [avoid]
    reached. *)

val resolve_pins : Zelf.Binary.t -> insns:(int, Zvm.Insn.t * int) Hashtbl.t -> int list
(** Resolved in-text computed-jump targets over a {e validated}
    instruction map (sorted, unique).  On a binary whose aggregation has
    no ambiguity the full inference pass performs exactly one resolution
    round over exactly this map, so the stitched aggregation paths
    ({!Delta}, [Par_ir]) use this to reproduce [run]'s [pin_hints]
    without re-running discovery. *)

val round_bound : Zelf.Binary.t -> int
(** Static bound on [rounds] for the termination property: the worklist
    is deduplicated per (offset, fact) and every claim is monotone, so it
    drains within [6 * text_len + 1024 + 64] pops. *)

val table_entry_bound : int
(** Jump-table scan bound (matches {!Analysis.Jumptable}; deliberately
    wider than the traversal's 256-entry seed bound). *)
