(* Candidate instructions at every offset, pruned by flow validity. *)

let decode_all binary =
  let text = Zelf.Binary.text binary in
  let base = text.Zelf.Section.vaddr in
  let len = text.Zelf.Section.size in
  let fetch a = Zelf.Binary.read8 binary a in
  Array.init len (fun off ->
      match Zvm.Decode.decode ~fetch (base + off) with
      | Ok (insn, ilen) when off + ilen <= len -> Some (insn, ilen)
      | _ -> None)

let prune_fixpoint binary =
  let text = Zelf.Binary.text binary in
  let base = text.Zelf.Section.vaddr in
  let len = text.Zelf.Section.size in
  let candidates = decode_all binary in
  let alive = Array.map Option.is_some candidates in
  let changed = ref true in
  while !changed do
    changed := false;
    for off = 0 to len - 1 do
      if alive.(off) then begin
        let insn, ilen = Option.get candidates.(off) in
        let addr = base + off in
        let dead_flow target =
          (* Flow into the text at a dead offset kills the candidate;
             flow outside the text is left to other evidence. *)
          target >= base && target < base + len && not (alive.(target - base))
        in
        let kills =
          (Zvm.Insn.has_fallthrough insn && insn <> Zvm.Insn.Sys 0 && dead_flow (addr + ilen))
          ||
          match Zvm.Insn.static_target ~at:addr insn with
          | Some t -> dead_flow t
          | None -> false
        in
        if kills then begin
          alive.(off) <- false;
          changed := true
        end
      end
    done
  done;
  alive

let run binary ~avoid =
  let text = Zelf.Binary.text binary in
  let base = text.Zelf.Section.vaddr in
  let len = text.Zelf.Section.size in
  let candidates = decode_all binary in
  let alive = prune_fixpoint binary in
  (* Score surviving candidates: references from other survivors are
     evidence (probabilistic-disassembly flavour). *)
  let score = Array.make len 0 in
  for off = 0 to len - 1 do
    if alive.(off) then begin
      let insn, _ = Option.get candidates.(off) in
      match Zvm.Insn.static_target ~at:(base + off) insn with
      | Some t when t >= base && t < base + len && alive.(t - base) ->
          score.(t - base) <- score.(t - base) + 1
      | _ -> ()
    end
  done;
  (* Greedy tiling: walk fallthrough chains from the best-scored seeds,
     claiming bytes not already claimed and not covered by [avoid]. *)
  let claims = Array.make len Source.Unknown in
  let insns : (int, Zvm.Insn.t * int) Hashtbl.t = Hashtbl.create 256 in
  let avoided off = Recursive.reached avoid (base + off) in
  let free lo ilen =
    let ok = ref (lo + ilen <= len) in
    for i = lo to min (len - 1) (lo + ilen - 1) do
      if claims.(i) <> Source.Unknown || avoided i then ok := false
    done;
    !ok
  in
  let claim_chain start =
    let rec go off =
      if off < len && alive.(off) && not (avoided off) then
        match candidates.(off) with
        | Some (insn, ilen) when free off ilen ->
            for i = off to off + ilen - 1 do
              claims.(i) <- Source.Code (base + off)
            done;
            Hashtbl.replace insns (base + off) (insn, ilen);
            if Zvm.Insn.has_fallthrough insn && insn <> Zvm.Insn.Sys 0 then go (off + ilen)
        | _ -> ()
    in
    go start
  in
  let seeds =
    List.init len Fun.id
    |> List.filter (fun off -> alive.(off))
    |> List.sort (fun a b -> compare (score.(b), a) (score.(a), b))
  in
  List.iter claim_chain seeds;
  (* Undecodable bytes are conclusive data; everything else we did not
     tile stays unknown (we are a low-confidence, best-effort source). *)
  for off = 0 to len - 1 do
    if claims.(off) = Source.Unknown && candidates.(off) = None && not (avoided off) then
      claims.(off) <- Source.Data
  done;
  {
    Source.name = "superset";
    base;
    len;
    claims;
    insns;
    confidence = Source.Low;
    kind = Source.Primary;
    tags = [||];
  }
