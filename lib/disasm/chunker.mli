(** Routine-granular chunking of the text segment (delta-rewriting
    support).

    [scan] makes one cheap linear-framing pass over the text and cuts it
    into chunks at routine boundaries — directly after no-fallthrough
    instructions, where linear framing restarts cleanly — falling back to
    content-defined (rolling-hash) cuts over stretches with no sync point.
    The same pass collects every statically visible reference into each
    chunk (direct branches, address-sized immediates, jump-table entries,
    data-section address words, the program entry), expressed relative to
    the chunk base, forming the chunk's {e inbound fingerprint}.

    Everything here is a pure function of the binary's bytes: two
    binaries that agree on a chunk's bytes, its 6-byte suffix and its
    inbound fingerprint get the same cache key for it, even at different
    load addresses (all fingerprint components are chunk-relative). *)

type ref_kind = Branch | Immediate | Table | Data_word | Entry_point

val ref_kind_code : ref_kind -> char

type chunk = {
  lo : int;
  hi : int;
  synced : bool;
      (** [lo] is a linear-framing restart point (CDC cuts are unsynced) *)
  inbound : (ref_kind * int) list;  (** sorted (kind, target - lo) pairs *)
}

type t = { base : int; len : int; chunks : chunk array }

val scan : Zelf.Binary.t -> t

val chunk_bytes : Zelf.Binary.t -> chunk -> string
(** The chunk's raw text bytes. *)

val chunk_suffix : Zelf.Binary.t -> chunk -> string
(** Up to 6 bytes directly after the chunk (decode attempts near the end
    of a chunk can read this far); part of the key material. *)

val inbound_string : chunk -> string
(** Canonical rendering of [inbound] for key derivation. *)
