(** A fixed-size [Domain] worker pool with a bounded work queue.

    The pool is the mechanical half of the corpus engine: it runs opaque
    tasks on [jobs] OCaml 5 domains, applying backpressure to the
    submitting thread once the queue holds [2 * jobs] pending tasks (so a
    million-binary corpus never materializes a million closures).  All
    determinism lives {e above} the pool — tasks must be pure functions
    of their own inputs; the pool only promises that every submitted task
    runs exactly once and that per-task results land in submission-order
    slots.  Wall-clock accounting (per-worker busy time, per-task queue
    wait) is measured for reporting and is, of course, not deterministic. *)

type worker_stat = {
  worker : int;  (** worker index in [0, jobs) *)
  tasks_run : int;
  busy_s : float;  (** wall-clock seconds spent inside task bodies *)
}

type queue_stats = {
  wait_total_s : float;  (** sum over tasks of (dequeue - submit) time *)
  wait_max_s : float;
}

type t

val create : ?capacity:int -> jobs:int -> unit -> t
(** Spawn [max 1 jobs] worker domains sharing one bounded queue.
    [capacity] sets the queue bound (default [2 * jobs]); {!submit}
    blocks and {!try_submit} rejects once that many tasks are pending.
    A serve daemon sets it to its admission-queue bound so the pool
    itself never blocks the accept loop. *)

val submit : t -> (worker:int -> wait_s:float -> unit) -> unit
(** Enqueue a task; blocks while the queue is at capacity.  The task
    receives the id of the worker running it and the seconds it spent
    queued.  Tasks must not raise: a raising task is recorded and the
    exception is re-raised by {!shutdown}, but intervening tasks still
    run.  Raises [Invalid_argument] after {!shutdown} — including when
    the pool is shut down while the call is blocked waiting for room
    (the task is then {e not} enqueued). *)

type submit_outcome = Submitted | Queue_full | Closed

val try_submit : t -> (worker:int -> wait_s:float -> unit) -> submit_outcome
(** Non-blocking {!submit}: [Queue_full] when the queue is at capacity,
    [Closed] after {!shutdown}; the task runs only on [Submitted].  This
    is the admission-control entry point — an overloaded server answers
    [Queue_full] with a fast reject instead of stalling its accept
    loop. *)

val shutdown : t -> worker_stat array * queue_stats
(** Drain the queue (already-accepted tasks still run), stop and join
    every worker, and return per-worker and queue accounting.  Re-raises
    the first task exception, if any task raised — once: the error is
    consumed, so calling {!shutdown} again is harmless and returns the
    same accounting (idempotent close). *)

type 'b timed = {
  value : 'b;
  elapsed_s : float;  (** wall-clock seconds inside [f] *)
  queue_wait_s : float;
  worker : int;
}

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b timed array * worker_stat array * queue_stats
(** [map ~jobs f arr] applies [f] to every element on the pool and
    returns results in input order regardless of scheduling.  [jobs <= 1]
    runs inline on the calling thread (no domains), which is the serial
    baseline the parallel paths are tested for byte-equality against. *)

val map_on : t -> ('a -> 'b) -> 'a array -> 'b timed array * worker_stat array * queue_stats
(** Like {!map}, on a pool the caller already {!create}d; the pool is
    {!shutdown} before returning (it cannot be reused).  Splitting spawn
    from mapping lets callers keep domain startup — milliseconds per
    domain, easily dwarfing small workloads — out of their timed region;
    {!map} conflates the two. *)
