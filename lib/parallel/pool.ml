type worker_stat = { worker : int; tasks_run : int; busy_s : float }

type queue_stats = { wait_total_s : float; wait_max_s : float }

type job = { run : worker:int -> wait_s:float -> unit; submitted_at : float }

type t = {
  jobs : int;
  capacity : int;
  queue : job Queue.t;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
  mutable wait_total_s : float;
  mutable wait_max_s : float;
  mutable first_error : exn option;
  stats : worker_stat array;  (* slot [w] written only by worker [w] *)
  mutable domains : unit Domain.t list;
}

type submit_outcome = Submitted | Queue_full | Closed

let now () = Unix.gettimeofday ()

let worker_loop t w =
  let tasks = ref 0 and busy = ref 0.0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.not_empty t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closed and drained *)
    else begin
      let job = Queue.pop t.queue in
      let wait_s = now () -. job.submitted_at in
      t.wait_total_s <- t.wait_total_s +. wait_s;
      if wait_s > t.wait_max_s then t.wait_max_s <- wait_s;
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      let t0 = now () in
      (try job.run ~worker:w ~wait_s
       with e ->
         (* Record and keep going: one poisoned task must not wedge the
            feeder (blocked on [not_full]) or starve later tasks. *)
         Mutex.lock t.mutex;
         if t.first_error = None then t.first_error <- Some e;
         Mutex.unlock t.mutex);
      busy := !busy +. (now () -. t0);
      incr tasks;
      loop ()
    end
  in
  loop ();
  t.stats.(w) <- { worker = w; tasks_run = !tasks; busy_s = !busy }

let create ?capacity ~jobs () =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      capacity = (match capacity with Some c -> max 1 c | None -> 2 * jobs);
      queue = Queue.create ();
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      closed = false;
      wait_total_s = 0.0;
      wait_max_s = 0.0;
      first_error = None;
      stats = Array.init jobs (fun worker -> { worker; tasks_run = 0; busy_s = 0.0 });
      domains = [];
    }
  in
  t.domains <- List.init jobs (fun w -> Domain.spawn (fun () -> worker_loop t w));
  t

let enqueue_locked t run =
  Queue.add { run; submitted_at = now () } t.queue;
  Obs.gauge_max "pool.queue_depth" (Queue.length t.queue);
  Condition.signal t.not_empty

let submit t run =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  while Queue.length t.queue >= t.capacity && not t.closed do
    Condition.wait t.not_full t.mutex
  done;
  (* Re-check after the wait: a concurrent [shutdown] may have closed the
     pool while we were blocked, and a task enqueued now would be drained
     by workers that are already exiting — or never run at all. *)
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  enqueue_locked t run;
  Mutex.unlock t.mutex

let try_submit t run =
  Mutex.lock t.mutex;
  let outcome =
    if t.closed then Closed
    else if Queue.length t.queue >= t.capacity then Queue_full
    else begin
      enqueue_locked t run;
      Submitted
    end
  in
  Mutex.unlock t.mutex;
  outcome

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- [];
  (* Consume the error so a second (idempotent) shutdown reports stats
     instead of re-raising a failure the caller already saw. *)
  (match t.first_error with
  | Some e ->
      t.first_error <- None;
      raise e
  | None -> ());
  (Array.copy t.stats, { wait_total_s = t.wait_total_s; wait_max_s = t.wait_max_s })

type 'b timed = { value : 'b; elapsed_s : float; queue_wait_s : float; worker : int }

let map_on t f arr =
  let n = Array.length arr in
  let results = Array.make n None in
  Array.iteri
    (fun i x ->
      submit t (fun ~worker ~wait_s ->
          let t0 = now () in
          (* [~root] detaches the span from whatever the worker domain has
             open, so task paths match the inline serial path below. *)
          let value = Obs.span ~root:true "task" (fun () -> f x) in
          let elapsed_s = now () -. t0 in
          (* Distinct slots, one writer each; publication happens-before
             the reads below via [Domain.join] inside [shutdown]. *)
          results.(i) <- Some { value; elapsed_s; queue_wait_s = wait_s; worker }))
    arr;
  let stats, qstats = shutdown t in
  let out =
    Array.mapi
      (fun i r ->
        match r with
        | Some v -> v
        | None -> invalid_arg (Printf.sprintf "Pool.map: task %d produced no result" i))
      results
  in
  (out, stats, qstats)

let map ~jobs f arr =
  let n = Array.length arr in
  if jobs <= 1 || n <= 1 then begin
    (* Inline serial path: same results, worker 0, no queueing. *)
    let busy = ref 0.0 in
    let out =
      Array.map
        (fun x ->
          let t0 = now () in
          let value = Obs.span ~root:true "task" (fun () -> f x) in
          let elapsed_s = now () -. t0 in
          busy := !busy +. elapsed_s;
          { value; elapsed_s; queue_wait_s = 0.0; worker = 0 })
        arr
    in
    ( out,
      [| { worker = 0; tasks_run = n; busy_s = !busy } |],
      { wait_total_s = 0.0; wait_max_s = 0.0 } )
  end
  else map_on (create ~jobs:(min jobs n) ()) f arr
