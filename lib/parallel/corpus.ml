module Rng = Zipr_util.Rng

type item = { name : string; data : bytes }

type outcome = {
  rewritten : bytes;
  stats : Zipr.Reassemble.stats;
  tally : Disasm.Aggregate.tally;
  timing : Zipr.Pipeline.timing;
  cache : Zipr.Pipeline.cache_stats;
}

type entry = {
  index : int;
  name : string;
  seed : int;
  result : (outcome, string) Stdlib.result;
  elapsed_s : float;
  queue_wait_s : float;
  worker : int;
}

type report = {
  jobs : int;
  corpus_seed : int;
  entries : entry list;
  ok : int;
  failed : int;
  merged_stats : Zipr.Reassemble.stats;
  merged_tally : Disasm.Aggregate.tally;
  merged_timing : Zipr.Pipeline.timing;
  merged_cache : Zipr.Pipeline.cache_stats;
  rewrite_total_s : float;
  wall_clock_s : float;
  queue_wait_total_s : float;
  queue_wait_max_s : float;
  pool_spawn_s : float;
  shards : Pool.worker_stat list;
}

(* The per-item task: total by construction.  [Pipeline.try_rewrite]
   renders pipeline exceptions; parse errors are rendered here; both
   leave the worker alive for the next item. *)
let rewrite_one ?ir_cache ?routine_cache ~config ~transforms ~corpus_seed (index, it) =
  let seed = Rng.derive ~corpus_seed ~index in
  let config = { config with Zipr.Pipeline.seed } in
  let result =
    match Zelf.Binary.parse it.data with
    | Error e ->
        Error (Format.asprintf "parse error: %a" Zelf.Binary.pp_parse_error e)
    | Ok binary ->
        Result.map
          (fun (r : Zipr.Pipeline.result) ->
            {
              rewritten = Zelf.Binary.serialize r.Zipr.Pipeline.rewritten;
              stats = r.Zipr.Pipeline.stats;
              tally =
                r.Zipr.Pipeline.ir.Zipr.Ir_construction.aggregate
                  .Disasm.Aggregate.tally;
              timing = r.Zipr.Pipeline.timing;
              cache = r.Zipr.Pipeline.cache;
            })
          (Zipr.Pipeline.try_rewrite ~config ?ir_cache ?routine_cache ~transforms binary)
  in
  (seed, result)

let rewrite_all ?(jobs = 1) ?(config = Zipr.Pipeline.default_config) ?(transforms = [])
    ?ir_cache ?routine_cache ~corpus_seed items =
  Obs.span "corpus" (fun () ->
  (* 0 means auto-detect, same rule as every other jobs knob; the report
     carries the resolved value so runs are self-describing. *)
  let jobs = Zipr.Pipeline.resolve_jobs jobs in
  let arr = Array.of_list items in
  Obs.count "corpus.binaries" (Array.length arr);
  let n = Array.length arr in
  let tagged = Array.mapi (fun i it -> (i, it)) arr in
  let task = rewrite_one ?ir_cache ?routine_cache ~config ~transforms ~corpus_seed in
  (* Domain spawn is pool overhead, not rewriting: keep it out of
     [wall_clock_s] (and report it separately) so the speedup numbers
     compare work against work, not work against work-plus-startup. *)
  let spawn0 = Unix.gettimeofday () in
  let pool = if jobs > 1 && n > 1 then Some (Pool.create ~jobs:(min jobs n) ()) else None in
  let pool_spawn_s = Unix.gettimeofday () -. spawn0 in
  let t0 = Unix.gettimeofday () in
  let timed, shards, qstats =
    match pool with
    | Some p -> Pool.map_on p task tagged
    | None -> Pool.map ~jobs task tagged
  in
  let wall_clock_s = Unix.gettimeofday () -. t0 in
  let entries =
    List.init (Array.length arr) (fun index ->
        let t = timed.(index) in
        let seed, result = t.Pool.value in
        {
          index;
          name = arr.(index).name;
          seed;
          result;
          elapsed_s = t.Pool.elapsed_s;
          queue_wait_s = t.Pool.queue_wait_s;
          worker = t.Pool.worker;
        })
  in
  (* Fold in index order: the stats/timing merges are commutative, but
     warning lists concatenate, and index order makes the report a pure
     function of the inputs. *)
  let ok, failed, merged_stats, merged_tally, merged_timing, merged_cache, rewrite_total_s
      =
    List.fold_left
      (fun (ok, failed, ms, mg, mt, mc, tot) e ->
        match e.result with
        | Ok o ->
            ( ok + 1,
              failed,
              Zipr.Reassemble.merge_stats ms o.stats,
              Disasm.Aggregate.merge_stats mg o.tally,
              Zipr.Pipeline.add_timing mt o.timing,
              Zipr.Pipeline.add_cache_stats mc o.cache,
              tot +. e.elapsed_s )
        | Error _ -> (ok, failed + 1, ms, mg, mt, mc, tot +. e.elapsed_s))
      ( 0,
        0,
        Zipr.Reassemble.zero_stats,
        Disasm.Aggregate.tally_zero,
        Zipr.Pipeline.zero_timing,
        Zipr.Pipeline.zero_cache_stats,
        0.0 )
      entries
  in
  {
    jobs;
    corpus_seed;
    entries;
    ok;
    failed;
    merged_stats;
    merged_tally;
    merged_timing;
    merged_cache;
    rewrite_total_s;
    wall_clock_s;
    pool_spawn_s;
    queue_wait_total_s = qstats.Pool.wait_total_s;
    queue_wait_max_s = qstats.Pool.wait_max_s;
    shards = Array.to_list shards;
  })

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>corpus: %d binaries, %d ok, %d failed (jobs=%d, corpus-seed=%d)@,\
     wall %.3fs (+%.3fs pool spawn), serial-equivalent %.3fs, queue wait total %.3fs max \
     %.3fs@,\
     merged: %a@,\
     merged timing: ir %.3fs transform %.3fs reassembly %.3fs@,\
     ir-cache: %d hits, %d misses@,\
     routine-cache: %d hits, %d misses, %d delta builds@,\
     par-ir: %d parallel builds, %d fallbacks@,"
    (r.ok + r.failed) r.ok r.failed r.jobs r.corpus_seed r.wall_clock_s r.pool_spawn_s
    r.rewrite_total_s r.queue_wait_total_s r.queue_wait_max_s Zipr.Reassemble.pp_stats
    r.merged_stats r.merged_timing.Zipr.Pipeline.ir_construction_s
    r.merged_timing.Zipr.Pipeline.transformation_s
    r.merged_timing.Zipr.Pipeline.reassembly_s r.merged_cache.Zipr.Pipeline.ir_cache_hits
    r.merged_cache.Zipr.Pipeline.ir_cache_misses
    r.merged_cache.Zipr.Pipeline.routine_hits r.merged_cache.Zipr.Pipeline.routine_misses
    r.merged_cache.Zipr.Pipeline.delta_builds r.merged_cache.Zipr.Pipeline.par_builds
    r.merged_cache.Zipr.Pipeline.par_fallbacks;
  (* Aggregator byte accounting, merged over the corpus with the tally
     monoid — independent of job count and completion order. *)
  Format.fprintf ppf "merged aggregation:%s@,"
    (String.concat ""
       (List.map
          (fun (k, v) -> Printf.sprintf " %s=%d" k v)
          (Disasm.Aggregate.tally_fields r.merged_tally)));
  List.iter
    (fun (s : Pool.worker_stat) ->
      Format.fprintf ppf "shard %d: %d binaries, busy %.3fs@," s.Pool.worker s.Pool.tasks_run
        s.Pool.busy_s)
    r.shards;
  List.iter
    (fun e ->
      match e.result with
      | Error msg -> Format.fprintf ppf "FAILED %s (index %d): %s@," e.name e.index msg
      | Ok _ -> ())
    r.entries;
  Format.fprintf ppf "@]"
