(** Domain-parallel corpus rewriting (the throughput story of §IV-A at
    corpus scale).

    The per-binary pipeline is pure after IR construction, so a corpus
    fans out across a {!Pool} of domains.  Two properties make the fan-out
    safe to rely on:

    - {b Deterministic RNG sharding}: binary [i] rewrites under layout
      seed [Rng.derive ~corpus_seed ~index:i].  The seed depends only on
      the pair, never on worker count or scheduling, so outputs are
      byte-identical for [~jobs:1] and [~jobs:64].
    - {b Order-independent merging}: per-binary {!Zipr.Reassemble.stats}
      and {!Zipr.Pipeline.timing} are folded with their monoid merges in
      binary-index order, whatever order workers finish in, so the merged
      report is identical too.

    Failures are isolated per binary: a file that does not parse or a
    rewrite that raises reports an [Error] entry and the corpus
    continues.  Wall-clock, per-shard busy and queue-wait numbers are
    measurements, not part of the deterministic surface. *)

type item = { name : string; data : bytes }
(** One corpus member: a serialized (unparsed) binary.  Parsing happens
    on the worker, inside the per-item error boundary. *)

type outcome = {
  rewritten : bytes;  (** serialized rewritten binary *)
  stats : Zipr.Reassemble.stats;
  tally : Disasm.Aggregate.tally;
      (** the binary's aggregator per-case byte accounting *)
  timing : Zipr.Pipeline.timing;
  cache : Zipr.Pipeline.cache_stats;
}

type entry = {
  index : int;
  name : string;
  seed : int;  (** the layout seed this binary rewrote under *)
  result : (outcome, string) Stdlib.result;
  elapsed_s : float;
  queue_wait_s : float;
  worker : int;
}

type report = {
  jobs : int;  (** resolved worker count ([?jobs:0] auto-detects) *)
  corpus_seed : int;
  entries : entry list;  (** in binary-index order *)
  ok : int;
  failed : int;
  merged_stats : Zipr.Reassemble.stats;  (** over successful entries *)
  merged_tally : Disasm.Aggregate.tally;
      (** aggregator byte accounting folded over successful entries with
          {!Disasm.Aggregate.merge_stats} — the monoid merge makes the
          total independent of job count and completion order *)
  merged_timing : Zipr.Pipeline.timing;
  merged_cache : Zipr.Pipeline.cache_stats;
      (** IR-cache hits/misses summed over successful entries; zeros when
          no [ir_cache] was supplied *)
  rewrite_total_s : float;
      (** sum of per-entry elapsed time: the serial-equivalent work *)
  wall_clock_s : float;
      (** submit-to-join time for the rewriting itself; excludes domain
          startup (see [pool_spawn_s]) *)
  queue_wait_total_s : float;
  queue_wait_max_s : float;
  pool_spawn_s : float;
      (** seconds spent spawning worker domains before any task ran; 0
          on the inline serial path *)
  shards : Pool.worker_stat list;
}

val rewrite_all :
  ?jobs:int ->
  ?config:Zipr.Pipeline.config ->
  ?transforms:Zipr.Transform.t list ->
  ?ir_cache:Irdb.Cache.t ->
  ?routine_cache:Zipr.Delta.t ->
  corpus_seed:int ->
  item list ->
  report
(** Rewrite every item.  Defaults: [jobs = 1], default pipeline config
    (whose [seed] field is overridden per binary by the derived shard
    seed), no transforms.  [jobs = 0] auto-detects
    [Domain.recommended_domain_count]; the resolved value lands in
    [report.jobs].  [config.ir_jobs] additionally parallelizes IR
    construction {e inside} each binary (see {!Zipr.Par_ir}) — outputs
    are byte-identical at any combination of the two knobs.  [entries],
    [merged_stats] and [merged_timing] are a pure function of
    [(items, config, transforms, corpus_seed)] — the timing floats
    excepted.

    [ir_cache] is shared by every worker domain (the cache is
    mutex-protected): repeat rewrites of a binary already in the cache
    restore its IR instead of rebuilding it.  Because a restored IR is
    identical to a cold build, outputs stay byte-identical whatever mix
    of hits and misses — and whatever [jobs] value — the run sees.

    [routine_cache] is likewise shared across workers: the delta path
    serves whole IRs from its memo and stitches partially changed
    binaries from cached routine fragments, with the same byte-identity
    guarantee (see {!Zipr.Delta}). *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable corpus summary (counts, merged stats, shard and queue
    metrics). *)
