(* ziprtool: the command-line face of the rewriter.

     ziprtool asm prog.zasm prog.zbf        assemble a textual program
     ziprtool gen --seed 3 cb.zbf           generate a challenge binary
     ziprtool rewrite cb.zbf out.zbf -t cfi rewrite with transforms
     ziprtool run out.zbf --input 012q      execute and report metrics
     ziprtool disasm cb.zbf                 aggregate disassembly + pins  *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc data)

(* create the directory and any missing parents *)
let rec ensure_dir d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    Sys.mkdir d 0o755
  end

(* -- tracing --

   Install a global sink for the duration of [f], then export.  The sink
   is torn down in a [finally] so a failing rewrite still leaves a trace
   behind — usually the run you most want to look at. *)

let with_trace_file path f =
  match path with
  | None -> f ()
  | Some file ->
      let sink = Obs.Tracer.create () in
      Obs.install sink;
      Fun.protect
        ~finally:(fun () ->
          Obs.disable ();
          write_file file (Bytes.of_string (Obs.Tracer.chrome_json sink));
          Printf.eprintf "trace: wrote %s (load in chrome://tracing or Perfetto)\n" file)
        f

let with_trace_dir dir f =
  match dir with
  | None -> f ()
  | Some d ->
      let sink = Obs.Tracer.create () in
      Obs.install sink;
      Fun.protect
        ~finally:(fun () ->
          Obs.disable ();
          ensure_dir d;
          let trace = Filename.concat d "trace.json" in
          let report = Filename.concat d "report.json" in
          write_file trace (Bytes.of_string (Obs.Tracer.chrome_json sink));
          write_file report (Bytes.of_string (Obs.Tracer.report_json sink));
          Printf.eprintf "trace: wrote %s and %s\n" trace report)
        f

let load_binary path =
  match Zelf.Binary.parse (Bytes.of_string (read_file path)) with
  | Ok b -> Ok b
  | Error e -> Error (Format.asprintf "%s: %a" path Zelf.Binary.pp_parse_error e)

let transform_of_name = Transforms.Registry.by_name
let transform_names = Transforms.Registry.names

(* -- common args -- *)

let input_file = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT")

let output_file ~pos:p = Arg.(required & pos p (some string) None & info [] ~docv:"OUTPUT")

(* -- placement args --

   Shared by rewrite/batch/serve/client: the strategy name plus the
   search knobs.  Names are validated through [Placement.resolve] rather
   than a cmdliner enum so the error message always lists the live
   strategy set and knob diagnostics read the same on every surface. *)

let placement_name_arg =
  Arg.(
    value
    & opt string "optimized"
    & info [ "placement" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Dollop placement strategy: %s."
             (String.concat ", " Zipr.Placement.names)))

let placement_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "placement-budget" ] ~docv:"N"
        ~doc:
          "Candidates the search strategy evaluates per decision (enumeration \
           width / annealing proposals). Only meaningful with --placement search.")

let placement_epsilon_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "placement-epsilon" ] ~docv:"P"
        ~doc:
          "Probability in [0,1] that the search strategy diversifies uniformly \
           over its beam instead of taking the cheapest candidate — the \
           layout-diversity vs. overhead dial. Only meaningful with --placement \
           search.")

let placement_weights_arg =
  Arg.(
    value
    & opt string ""
    & info [ "placement-weights" ] ~docv:"SPEC"
        ~doc:
          "Cost-model weights for the search strategy as comma-separated \
           key=value pairs, e.g. sled=1,chain=16,relax=3,overflow=1,page=64. \
           Omitted keys keep their defaults.")

(* [Error] already carries a printable message; callers print and exit 1. *)
let resolve_placement name budget epsilon weights_spec =
  Zipr.Placement.resolve ?budget ?epsilon ~weights_spec name

(* Shared by rewrite/batch/serve: intra-binary IR construction workers.
   Output bytes are identical at any value, so this is purely a
   throughput knob. *)
let ir_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "ir-jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for intra-binary IR construction: the text is chunked, \
           chunks are framed in parallel and the merge is accepted only after \
           stitch validation (disagreement falls back to the serial build). \
           0 auto-detects the core count. Output bytes are identical at any \
           value.")

(* Shared by rewrite/batch/serve/fuzz: the inference-refiner switch.
   Off by default — with it off every output is byte-identical to
   previous releases. *)
let infer_arg =
  Arg.(
    value
    & vflag false
        [
          ( true,
            info [ "infer" ]
              ~doc:
                "Run the inference-based third disassembly source: a fact-propagation \
                 fixpoint over the superset decode that resolves computed jump targets \
                 by constant folding and proves dead bytes unreachable, shrinking the \
                 pinned ambiguous ranges. Refinement-only: bytes the primary \
                 disassemblers agree on are never overturned. Off by default \
                 (byte-identical output to previous releases)." );
          ( false,
            info [ "no-infer" ]
              ~doc:"Disable the inference refiner explicitly (the default)." );
        ])

(* -- asm -- *)

let asm_cmd =
  let run src out =
    match Zasm.Parser.assemble_string (read_file src) with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok (binary, symbols) ->
        write_file out (Zelf.Binary.serialize binary);
        Printf.printf "%s: %d bytes, %d symbols\n" out (Zelf.Binary.file_size binary)
          (List.length symbols);
        0
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble a textual ZVM program into a ZBF binary.")
    Term.(const run $ input_file $ output_file ~pos:1)

(* -- gen -- *)

let gen_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.") in
  let kind =
    Arg.(
      value
      & opt (enum [ ("default", `Default); ("pathological", `Pathological); ("libc", `Libc); ("jvm", `Jvm); ("apache", `Apache) ]) `Default
      & info [ "profile" ] ~doc:"Profile: default, pathological, libc, jvm or apache.")
  in
  let run seed kind out =
    let binary =
      match kind with
      | `Default -> fst (Cgc.Cb_gen.generate ~seed Cgc.Cb_gen.default_profile)
      | `Pathological ->
          fst (Cgc.Cb_gen.generate ~seed (Cgc.Corpus.profile_for 47 ~master_seed:seed))
      | `Libc -> (Workloads.Synthetic.libc_like ~seed ()).Workloads.Synthetic.binary
      | `Jvm -> (Workloads.Synthetic.jvm_like ~seed ()).Workloads.Synthetic.binary
      | `Apache -> (Workloads.Synthetic.apache_like ~seed ()).Workloads.Synthetic.binary
    in
    write_file out (Zelf.Binary.serialize binary);
    Printf.printf "%s: %d bytes (text %d)\n" out (Zelf.Binary.file_size binary)
      (Zelf.Binary.text binary).Zelf.Section.size;
    0
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a deterministic challenge binary or workload.")
    Term.(const run $ seed $ kind $ output_file ~pos:0)

(* -- rewrite -- *)

let rewrite_cmd =
  let transforms =
    Arg.(
      value
      & opt (list string) [ "null" ]
      & info [ "t"; "transform" ] ~docv:"NAMES"
          ~doc:
            (Printf.sprintf "Comma-separated transforms, applied in order. Available: %s."
               (String.concat ", " transform_names)))
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Layout seed (random placement).") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print reassembly statistics.") in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Run the structural post-rewrite verifier.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record per-phase spans and counters; write a Chrome trace_event JSON file \
             loadable in chrome://tracing. The rewritten output is byte-identical with \
             or without tracing.")
  in
  let run tnames placement budget epsilon weights ir_jobs infer seed stats verify trace inp out =
    with_trace_file trace @@ fun () ->
    match resolve_placement placement budget epsilon weights with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok strategy -> (
    match load_binary inp with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok binary -> (
        let unknown = List.filter (fun n -> transform_of_name n = None) tnames in
        if unknown <> [] then begin
          Printf.eprintf "error: unknown transforms: %s\n" (String.concat ", " unknown);
          1
        end
        else
          let transforms = List.filter_map transform_of_name tnames in
          let config =
            {
              Zipr.Pipeline.default_config with
              Zipr.Pipeline.placement = strategy;
              seed;
              ir_jobs;
              infer;
            }
          in
          match Zipr.Pipeline.rewrite ~config ~transforms binary with
          | r ->
              write_file out (Zelf.Binary.serialize r.Zipr.Pipeline.rewritten);
              let osize = Zelf.Binary.file_size binary in
              let nsize = Zelf.Binary.file_size r.Zipr.Pipeline.rewritten in
              Printf.printf "%s: %d -> %d bytes (%+.1f%%)\n" out osize nsize
                (float_of_int (nsize - osize) /. float_of_int osize *. 100.0);
              if stats then begin
                Format.printf "%a@." Zipr.Reassemble.pp_stats r.Zipr.Pipeline.stats;
                Printf.printf "ir-jobs: %d resolved, %d parallel builds, %d fallbacks\n"
                  (Zipr.Pipeline.resolve_jobs ir_jobs)
                  r.Zipr.Pipeline.cache.Zipr.Pipeline.par_builds
                  r.Zipr.Pipeline.cache.Zipr.Pipeline.par_fallbacks;
                (* Aggregator per-case byte accounting (one line per
                   canonical tally field). *)
                List.iter
                  (fun (k, v) -> Printf.printf "agg.%s: %d\n" k v)
                  (Disasm.Aggregate.tally_fields
                     r.Zipr.Pipeline.ir.Zipr.Ir_construction.aggregate
                       .Disasm.Aggregate.tally)
              end;
              List.iter
                (fun w -> Printf.printf "warning: %s\n" w)
                r.Zipr.Pipeline.ir.Zipr.Ir_construction.warnings;
              if verify then begin
                let report =
                  Zipr.Verify.structural ~orig:binary ~ir:r.Zipr.Pipeline.ir
                    ~rewritten:r.Zipr.Pipeline.rewritten
                in
                Format.printf "%a@." Zipr.Verify.pp_report report;
                if Zipr.Verify.ok report then 0 else 1
              end
              else 0
          | exception Zipr.Reassemble.Failure_ msg ->
              Printf.eprintf "reassembly failed: %s\n" msg;
              1))
  in
  Cmd.v
    (Cmd.info "rewrite" ~doc:"Rewrite a binary through the Zipr pipeline.")
    Term.(
      const run $ transforms $ placement_name_arg $ placement_budget_arg
      $ placement_epsilon_arg $ placement_weights_arg $ ir_jobs_arg $ infer_arg $ seed
      $ stats $ verify $ trace $ input_file $ output_file ~pos:1)

(* -- run -- *)

let run_cmd =
  let input = Arg.(value & opt string "" & info [ "input" ] ~doc:"Bytes fed to receive().") in
  let input_from =
    Arg.(value & opt (some file) None & info [ "input-file" ] ~doc:"Read input bytes from a file.")
  in
  let fuel = Arg.(value & opt int 20_000_000 & info [ "fuel" ] ~doc:"Instruction budget.") in
  let run input input_from fuel path =
    match load_binary path with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok binary ->
        let input = match input_from with Some f -> read_file f | None -> input in
        let result = Zelf.Image.boot ~fuel binary ~input in
        print_string result.Zvm.Vm.output;
        Printf.printf "\n-- %s | %d instructions | %d cycles | %d pages resident\n"
          (Zvm.Vm.stop_to_string result.Zvm.Vm.stop)
          result.Zvm.Vm.insns result.Zvm.Vm.cycles result.Zvm.Vm.max_rss_pages;
        (match result.Zvm.Vm.stop with Zvm.Vm.Exited 0 | Zvm.Vm.Halted -> 0 | _ -> 2)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a ZBF binary in the ZVM and report metrics.")
    Term.(const run $ input $ input_from $ fuel $ input_file)

(* -- disasm -- *)

let disasm_cmd =
  let as_asm =
    Arg.(value & flag & info [ "asm" ] ~doc:"Emit a reparseable assembly listing instead.")
  in
  let run as_asm path =
    match load_binary path with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok binary when as_asm ->
        print_string (Zasm.Printer.program_listing binary);
        0
    | Ok binary ->
        let ir = Zipr.Ir_construction.build binary in
        let agg = ir.Zipr.Ir_construction.aggregate in
        let text = Zelf.Binary.text binary in
        let pins = ir.Zipr.Ir_construction.pins in
        let addr = ref text.Zelf.Section.vaddr in
        let vend = Zelf.Section.vend text in
        while !addr < vend do
          let verdict = Disasm.Aggregate.verdict_at agg !addr in
          (match verdict with
          | Some Disasm.Aggregate.Data ->
              (* advance over the data run *)
              let start = !addr in
              while
                !addr < vend && Disasm.Aggregate.verdict_at agg !addr = Some Disasm.Aggregate.Data
              do
                incr addr
              done;
              Printf.printf "%08x  <data: %d bytes>\n" start (!addr - start)
          | _ -> (
              match Hashtbl.find_opt agg.Disasm.Aggregate.insn_at !addr with
              | Some (insn, len) ->
                  Printf.printf "%08x  %-28s%s%s\n" !addr (Zvm.Insn.to_string insn)
                    (if Analysis.Ibt.is_pinned pins !addr then "  [pinned]" else "")
                    (match verdict with
                    | Some Disasm.Aggregate.Ambiguous -> "  [ambiguous]"
                    | _ -> "");
                  addr := !addr + len
              | None -> incr addr))
        done;
        Printf.printf "\n%d pinned addresses, %d fixed ranges, %d warnings\n"
          (Analysis.Ibt.count pins)
          (List.length ir.Zipr.Ir_construction.fixed_ranges)
          (List.length ir.Zipr.Ir_construction.warnings);
        0
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble with code/data verdicts and pinned addresses.")
    Term.(const run $ as_asm $ input_file)

(* -- ir -- *)

let ir_cmd =
  let machine =
    Arg.(value & flag & info [ "machine" ] ~doc:"Machine-readable IRDB records (restorable).")
  in
  let run machine path =
    match load_binary path with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok binary ->
        let ir = Zipr.Ir_construction.build binary in
        print_string
          (if machine then Irdb.Dump.serialize ir.Zipr.Ir_construction.db
           else Irdb.Dump.to_string ir.Zipr.Ir_construction.db);
        0
  in
  Cmd.v
    (Cmd.info "ir" ~doc:"Dump the intermediate representation of a binary.")
    Term.(const run $ machine $ input_file)

(* -- audit -- *)

let audit_cmd =
  let inputs =
    Arg.(
      value & opt_all string []
      & info [ "input" ] ~docv:"BYTES" ~doc:"An input to drive the binary with (repeatable).")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "gen-seed" ] ~doc:"Treat the binary as a generated CB with this seed and derive pollers.")
  in
  let run inputs seed path =
    match load_binary path with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok binary ->
        let inputs =
          match seed with
          | Some s ->
              let _, meta = Cgc.Cb_gen.generate ~seed:s Cgc.Cb_gen.default_profile in
              List.map
                (fun p -> p.Cgc.Poller.input)
                (Cgc.Poller.generate meta ~seed:(s * 17) ~count:16)
          | None -> if inputs = [] then [ "" ] else inputs
        in
        let agg = Disasm.Aggregate.run binary in
        let pins = Analysis.Ibt.compute binary agg in
        let report = Analysis.Pin_audit.audit binary pins ~inputs in
        Format.printf "%a@." Analysis.Pin_audit.pp report;
        if Analysis.Pin_audit.ok report then 0 else 1
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Check B \xe2\x8a\x86 P dynamically: run the binary and verify every observed indirect target is pinned.")
    Term.(const run $ inputs $ seed $ input_file)

(* -- fuzz -- *)

let fuzz_cmd =
  let cases =
    Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N" ~doc:"Number of fuzz cases.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Master seed.") in
  let max_steps =
    Arg.(
      value
      & opt int 2_000_000
      & info [ "max-steps" ] ~docv:"K"
          ~doc:"Instruction budget per execution of the original binary.")
  in
  let structural =
    Arg.(
      value & flag
      & info [ "structural" ] ~doc:"Also run the structural verifier on every rewrite.")
  in
  let inject =
    Arg.(
      value & flag
      & info [ "inject-skip-pin" ]
          ~doc:
            "Harness self-test: deliberately skip one pin per rewrite; the fuzzer must \
             report failures.")
  in
  let repro_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:"Write each minimized reproducer as a zasm file into this directory.")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress output.") in
  let fuzz_jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for case execution. The summary, reproducers and failure \
             ordering are identical for every value.")
  in
  let run cases seed max_steps structural inject repro_dir quiet jobs infer =
    let opts =
      {
        Fuzz.Driver.default_options with
        Fuzz.Driver.cases = max 0 cases;
        seed;
        max_steps;
        structural;
        fault = (if inject then Some Fuzz.Driver.Skip_pin else None);
        jobs = max 1 jobs;
        infer;
      }
    in
    let log = if quiet then fun _ -> () else fun msg -> Printf.eprintf "%s\n%!" msg in
    let summary = Fuzz.Driver.run ~log opts in
    print_string (Fuzz.Driver.render_summary summary);
    (match repro_dir with
    | Some dir when summary.Fuzz.Driver.failures <> [] ->
        ensure_dir dir;
        List.iter
          (fun (f : Fuzz.Driver.failure) ->
            let path = Filename.concat dir (Printf.sprintf "case-%d.zasm" f.Fuzz.Driver.case) in
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc f.Fuzz.Driver.repro_zasm);
            Printf.printf "reproducer: %s\n" path)
          summary.Fuzz.Driver.failures
    | _ -> ());
    if summary.Fuzz.Driver.failures = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential-execution fuzzing: generate programs, rewrite under random \
          configurations, and demand semantic equivalence.")
    Term.(
      const run $ cases $ seed $ max_steps $ structural $ inject $ repro_dir $ quiet
      $ fuzz_jobs $ infer_arg)

(* -- batch -- *)

let batch_cmd =
  let indir = Arg.(required & pos 0 (some dir) None & info [] ~docv:"INDIR") in
  let outdir = Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTDIR") in
  let transforms =
    Arg.(
      value
      & opt (list string) [ "null" ]
      & info [ "t"; "transform" ] ~docv:"NAMES"
          ~doc:
            (Printf.sprintf "Comma-separated transforms, applied in order. Available: %s."
               (String.concat ", " transform_names)))
  in
  let corpus_seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Corpus seed. Each binary's layout seed derives from (seed, index); outputs \
             do not depend on $(b,--jobs).")
  in
  let batch_jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains (0 = auto-detect the core count).")
  in
  let ext =
    Arg.(
      value
      & opt (some string) None
      & info [ "ext" ] ~docv:"EXT" ~doc:"Only process files with this extension (e.g. .zbf).")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Content-addressed IR cache directory (created if missing). A re-run over the \
             same inputs restores each binary's IR from the cache instead of rebuilding \
             it; outputs are byte-identical either way.")
  in
  let delta =
    Arg.(
      value & flag
      & info [ "delta" ]
          ~doc:
            "Enable the routine-granular delta cache: binaries that share routines with \
             earlier (or cached) inputs reuse per-routine IR fragments and whole-IR \
             memo entries instead of rebuilding. With $(b,--cache) DIR the fragment \
             store persists under DIR/delta. Outputs are byte-identical either way.")
  in
  let cache_disk_entries =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-disk-entries" ] ~docv:"N"
          ~doc:
            "Bound the $(b,--cache) directory to N entry files; after each store the \
             oldest entries are pruned. Unbounded by default.")
  in
  let cache_disk_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-disk-bytes" ] ~docv:"BYTES"
          ~doc:
            "Bound the $(b,--cache) directory's total size; after each store the oldest \
             entries are pruned until it fits. Unbounded by default.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"DIR"
          ~doc:
            "Record spans and counters for the whole batch; write DIR/trace.json (Chrome \
             trace_event) and DIR/report.json (aggregated per-phase totals). Outputs are \
             byte-identical with or without tracing, at any $(b,--jobs).")
  in
  let run tnames placement budget epsilon weights ir_jobs infer corpus_seed jobs ext
      cache_dir delta disk_entries disk_bytes trace indir outdir =
    with_trace_dir trace @@ fun () ->
    match resolve_placement placement budget epsilon weights with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok strategy -> (
    let unknown = List.filter (fun n -> transform_of_name n = None) tnames in
    if unknown <> [] then begin
      Printf.eprintf "error: unknown transforms: %s\n" (String.concat ", " unknown);
      1
    end
    else begin
      let files =
        Sys.readdir indir |> Array.to_list
        |> List.filter (fun f ->
               (not (Sys.is_directory (Filename.concat indir f)))
               && match ext with Some e -> Filename.check_suffix f e | None -> true)
        |> List.sort compare
      in
      if files = [] then begin
        Printf.eprintf "error: no input files in %s\n" indir;
        1
      end
      else begin
        let items =
          List.map
            (fun f ->
              {
                Parallel.Corpus.name = f;
                data = Bytes.of_string (read_file (Filename.concat indir f));
              })
            files
        in
        let config =
          {
            Zipr.Pipeline.default_config with
            Zipr.Pipeline.placement = strategy;
            ir_jobs;
            infer;
          }
        in
        let transforms = List.filter_map transform_of_name tnames in
        let ir_cache =
          Option.map
            (fun dir ->
              Irdb.Cache.create ~dir ?max_disk_entries:disk_entries
                ?max_disk_bytes:disk_bytes ())
            cache_dir
        in
        let routine_cache =
          if delta then
            Some
              (Zipr.Delta.create
                 ?dir:(Option.map (fun d -> Filename.concat d "delta") cache_dir)
                 ())
          else None
        in
        let report =
          Parallel.Corpus.rewrite_all ~jobs ~config ~transforms ?ir_cache
            ?routine_cache ~corpus_seed items
        in
        ensure_dir outdir;
        List.iter
          (fun (e : Parallel.Corpus.entry) ->
            match e.Parallel.Corpus.result with
            | Ok o ->
                write_file (Filename.concat outdir e.Parallel.Corpus.name)
                  o.Parallel.Corpus.rewritten
            | Error msg -> Printf.eprintf "%s: FAILED: %s\n" e.Parallel.Corpus.name msg)
          report.Parallel.Corpus.entries;
        Format.printf "%a@." Parallel.Corpus.pp_report report;
        if report.Parallel.Corpus.failed = 0 then 0 else 1
      end
    end)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Rewrite every binary in a directory in parallel. Failures are isolated per \
          file: a binary that does not parse or fails to rewrite is reported and the \
          batch continues (exit 1 if any failed).")
    Term.(
      const run $ transforms $ placement_name_arg $ placement_budget_arg
      $ placement_epsilon_arg $ placement_weights_arg $ ir_jobs_arg $ infer_arg
      $ corpus_seed $ batch_jobs $ ext $ cache_dir $ delta $ cache_disk_entries
      $ cache_disk_bytes $ trace $ indir $ outdir)

(* -- serve / client -- *)

let addr_term =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on (or connect to) a Unix socket.")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"TCP host.")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"N"
          ~doc:"Listen on (or connect to) a TCP port; 0 picks a free port when serving.")
  in
  let pick socket host port =
    match (socket, port) with
    | Some p, None -> Ok (Serve.Protocol.Unix_path p)
    | None, Some n -> Ok (Serve.Protocol.Tcp { host; port = n })
    | Some _, Some _ -> Error "--socket and --port are mutually exclusive"
    | None, None -> Error "one of --socket PATH or --port N is required"
  in
  Term.(const pick $ socket $ host $ port)

let serve_cmd =
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains (0 = auto-detect the core count).")
  in
  let queue_bound =
    Arg.(
      value & opt int 32
      & info [ "queue-bound" ] ~docv:"Q"
          ~doc:
            "Admission bound: at most Q requests may be queued awaiting a worker; \
             requests past the bound get an immediate overloaded response.")
  in
  let max_request =
    Arg.(
      value
      & opt int (64 * 1024 * 1024)
      & info [ "max-request-bytes" ] ~docv:"B" ~doc:"Reject larger request payloads.")
  in
  let cache_entries =
    Arg.(value & opt int 256 & info [ "cache-entries" ] ~docv:"N" ~doc:"IR cache entry cap.")
  in
  let cache_bytes =
    Arg.(
      value
      & opt int (64 * 1024 * 1024)
      & info [ "cache-bytes" ] ~docv:"B" ~doc:"IR cache resident-byte budget (LRU eviction).")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR" ~doc:"Spill the shared IR cache to this directory.")
  in
  let cache_disk_entries =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-disk-entries" ] ~docv:"N"
          ~doc:"Bound the $(b,--cache) directory to N entry files (oldest pruned).")
  in
  let cache_disk_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-disk-bytes" ] ~docv:"BYTES"
          ~doc:"Bound the $(b,--cache) directory's total size (oldest entries pruned).")
  in
  let delta =
    Arg.(
      value & flag
      & info [ "delta" ]
          ~doc:
            "Enable the shared routine-granular delta cache: requests whose binaries \
             share routines with earlier requests stitch cached per-routine IR \
             fragments instead of rebuilding from scratch.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace of all served requests on shutdown.")
  in
  let run addr jobs ir_jobs infer queue_bound max_request cache_entries cache_bytes
      cache_dir cache_disk_entries cache_disk_bytes delta budget epsilon weights trace =
    match addr with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        2
    | Ok addr -> (
        (* Fail fast on bad default knobs instead of per-request. *)
        match resolve_placement "search" budget epsilon weights with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            2
        | Ok _ -> (
        with_trace_file trace @@ fun () ->
        let config =
          {
            Serve.Server.default_config with
            Serve.Server.jobs = Zipr.Pipeline.resolve_jobs jobs;
            ir_jobs;
            infer;
            queue_bound = max 1 queue_bound;
            max_request_bytes = max 1024 max_request;
            cache_entries = max 1 cache_entries;
            cache_max_bytes = max 1024 cache_bytes;
            cache_dir;
            cache_disk_entries;
            cache_disk_bytes;
            delta;
            placement_budget = budget;
            placement_epsilon = epsilon;
            placement_weights = weights;
          }
        in
        match Serve.Server.create ~config ~resolve_transform:transform_of_name addr with
        | exception Unix.Unix_error (e, _, arg) ->
            Printf.eprintf "error: cannot listen on %s: %s %s\n"
              (Serve.Protocol.addr_to_string addr)
              (Unix.error_message e) arg;
            1
        | server ->
            let stop _ = Serve.Server.stop server in
            Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
            Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
            Printf.eprintf "ziprtool serve: listening on %s (%d jobs, queue bound %d)\n%!"
              (Serve.Protocol.addr_to_string (Serve.Server.address server))
              config.Serve.Server.jobs config.Serve.Server.queue_bound;
            Serve.Server.serve server;
            let s = Serve.Server.stats server in
            Printf.eprintf
              "ziprtool serve: shut down cleanly: %d requests (%d ok, %d overloaded, %d \
               errors), cache %d hits / %d misses, routines %d hits / %d misses (%d \
               delta builds)\n"
              s.Serve.Server.accepted s.Serve.Server.ok s.Serve.Server.overloaded
              (s.Serve.Server.bad_request + s.Serve.Server.too_large
             + s.Serve.Server.rewrite_errors)
              s.Serve.Server.cache_hits s.Serve.Server.cache_misses
              s.Serve.Server.routine_hits s.Serve.Server.routine_misses
              s.Serve.Server.delta_builds;
            0))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the rewriting daemon: a long-lived server that accepts rewrite requests \
          over a Unix or TCP socket, shares one IR cache across all clients, and sheds \
          load with fast overloaded responses once its queue bound is reached. SIGTERM \
          or SIGINT shuts it down cleanly (in-flight requests complete).")
    Term.(
      const run $ addr_term $ jobs $ ir_jobs_arg $ infer_arg $ queue_bound $ max_request
      $ cache_entries $ cache_bytes $ cache_dir $ cache_disk_entries $ cache_disk_bytes
      $ delta $ placement_budget_arg $ placement_epsilon_arg $ placement_weights_arg
      $ trace)

(* -- gencorpus -- *)

let gencorpus_cmd =
  let outdir = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUTDIR") in
  let versions =
    Arg.(
      value & opt int 3
      & info [ "versions" ] ~docv:"N" ~doc:"Number of successive versions to emit.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.") in
  let routines =
    Arg.(
      value & opt int 24
      & info [ "routines" ] ~docv:"N" ~doc:"Core routines (live in every version).")
  in
  let body_ops =
    Arg.(
      value & opt int 36
      & info [ "body-ops" ] ~docv:"N" ~doc:"Approximate straight-line ops per routine body.")
  in
  let edits =
    Arg.(
      value & opt int 2
      & info [ "edits" ] ~docv:"N" ~doc:"Edits applied between consecutive versions.")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Scale-out mode: instead of a versioned corpus, emit N independent varied \
             binaries (fragmentation-heavy mix; see $(b,bench placement)). Each binary \
             depends only on (--seed, index), so growing N extends the corpus without \
             changing existing files.")
  in
  let run versions seed routines body_ops edits count outdir =
    if count > 0 then begin
      ensure_dir outdir;
      for i = 0 to count - 1 do
        let item = Workloads.Scale.generate_one ~seed i in
        write_file
          (Filename.concat outdir item.Workloads.Scale.name)
          (Zelf.Binary.serialize item.Workloads.Scale.binary)
      done;
      Printf.printf "%s: %d scale-out binaries (seed %d)\n" outdir count seed;
      0
    end
    else if versions < 1 then begin
      Printf.eprintf "error: --versions must be >= 1\n";
      2
    end
    else begin
      ensure_dir outdir;
      let vs =
        Workloads.Versioned.generate ~n_routines:(max 1 routines) ~body_ops:(max 4 body_ops)
          ~edits_per_version:(max 1 edits) ~seed ~versions ()
      in
      List.iter
        (fun (v : Workloads.Versioned.version) ->
          let data = Zelf.Binary.serialize v.Workloads.Versioned.binary in
          let path = Filename.concat outdir (v.Workloads.Versioned.name ^ ".zbf") in
          write_file path data;
          Printf.printf "%s: %d bytes%s\n" path (Bytes.length data)
            (match v.Workloads.Versioned.edits with
            | [] -> ""
            | es ->
                Format.asprintf " (%a)"
                  (Format.pp_print_list
                     ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                     Workloads.Versioned.pp_edit)
                  es))
        vs;
      0
    end
  in
  Cmd.v
    (Cmd.info "gencorpus"
       ~doc:
         "Generate a versioned corpus: N successive versions of one synthetic binary \
          differing by a few local edits each (instruction edits, routine \
          insertions/deletions, data moves) — the workload the delta cache \
          ($(b,batch --delta), $(b,serve --delta), $(b,bench delta)) is built for. \
          Writes OUTDIR/v0.zbf .. OUTDIR/v<N-1>.zbf, deterministically in --seed. \
          With $(b,--count) N it instead emits N independent varied binaries for \
          scale-out placement experiments.")
    Term.(const run $ versions $ seed $ routines $ body_ops $ edits $ count $ outdir)

let client_cmd =
  let transforms =
    Arg.(
      value
      & opt (list string) [ "null" ]
      & info [ "t"; "transform" ] ~docv:"NAMES"
          ~doc:
            (Printf.sprintf "Comma-separated transforms, applied in order. Available: %s."
               (String.concat ", " transform_names)))
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Layout seed (random placement).") in
  let deadline_ms =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline; 0 means none. Expired requests return an error.")
  in
  let do_ping =
    Arg.(value & flag & info [ "ping" ] ~doc:"Health check: echo a payload instead of rewriting.")
  in
  let sleep_ms =
    Arg.(
      value & opt int 0
      & info [ "sleep-ms" ] ~docv:"MS" ~doc:"With --ping: ask the server to sleep first.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print the server's per-request stats.") in
  let client_ir_jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "ir-jobs" ] ~docv:"N"
          ~doc:
            "Override the server's intra-binary IR worker default for this request \
             (0 = auto-detect on the server). The resolved value comes back in the \
             det.ir_jobs stats line; output bytes are identical at any value.")
  in
  let client_infer =
    Arg.(
      value
      & opt (some bool) None
      & info [ "infer" ] ~docv:"BOOL"
          ~doc:
            "Override the server's inference-refiner default for this request \
             (--infer=true or --infer=false). Unset, the knob is not encoded at \
             all, so the request config stays byte-identical to v1 frames and the \
             server default applies. The effective value comes back in det.infer.")
  in
  let files = Arg.(value & pos_all string [] & info [] ~docv:"INPUT OUTPUT") in
  let run addr tnames placement budget epsilon weights ir_jobs infer seed deadline_ms
      do_ping sleep_ms stats files =
    match addr with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        2
    | Ok addr -> (
        (* Validate locally before paying for a round-trip; the server
           re-validates (it may know different strategies). *)
        match resolve_placement placement budget epsilon weights with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | Ok _ -> (
        let deadline_us = max 0 deadline_ms * 1000 in
        let finish (resp : Serve.Protocol.Response.t) on_ok =
          if stats && resp.Serve.Protocol.Response.stats <> "" then
            prerr_string resp.Serve.Protocol.Response.stats;
          match resp.Serve.Protocol.Response.status with
          | Serve.Protocol.Ok_ -> on_ok ()
          | st ->
              Printf.eprintf "error: server answered %s: %s\n"
                (Serve.Protocol.status_to_string st)
                resp.Serve.Protocol.Response.message;
              1
        in
        if do_ping then
          match Serve.Client.ping ~sleep_us:(max 0 sleep_ms * 1000) ~deadline_us addr with
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              1
          | Ok resp ->
              finish resp (fun () ->
                  Printf.printf "pong: %s\n" resp.Serve.Protocol.Response.payload;
                  0)
        else
          match files with
          | [ inp; out ] -> (
              match
                Serve.Client.rewrite ~deadline_us ~placement ?placement_budget:budget
                  ?placement_epsilon:epsilon ~placement_weights:weights ?ir_jobs ?infer
                  ~seed ~transforms:tnames addr (read_file inp)
              with
              | Error msg ->
                  Printf.eprintf "error: %s\n" msg;
                  1
              | Ok resp ->
                  finish resp (fun () ->
                      write_file out
                        (Bytes.of_string resp.Serve.Protocol.Response.payload);
                      Printf.printf "%s: %d -> %d bytes (served)\n" out
                        (String.length (read_file inp))
                        (String.length resp.Serve.Protocol.Response.payload);
                      0))
          | _ ->
              Printf.eprintf "error: expected INPUT and OUTPUT arguments (or --ping)\n";
              2))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running ziprtool serve daemon: rewrite INPUT into OUTPUT \
          remotely, or health-check it with --ping.")
    Term.(
      const run $ addr_term $ transforms $ placement_name_arg $ placement_budget_arg
      $ placement_epsilon_arg $ placement_weights_arg $ client_ir_jobs $ client_infer
      $ seed $ deadline_ms $ do_ping $ sleep_ms $ stats $ files)

let () =
  let doc = "static binary rewriting for the ZVM (a Zipr reproduction)" in
  let info = Cmd.info "ziprtool" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            asm_cmd; gen_cmd; gencorpus_cmd; rewrite_cmd; run_cmd; disasm_cmd; ir_cmd;
            audit_cmd; fuzz_cmd; batch_cmd; serve_cmd; client_cmd;
          ]))
