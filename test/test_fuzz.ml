(* Bounded deterministic smoke tests for the differential fuzzing
   harness.  Small case counts keep the suite fast; the heavier runs live
   in CI (`ziprtool fuzz --cases 100`) and in the acceptance sweep. *)

module Driver = Fuzz.Driver
module Gen = Fuzz.Gen
module Shrink = Fuzz.Shrink

let opts cases seed = { Driver.default_options with Driver.cases; seed }

(* The seed pipeline must survive a bounded random sweep with zero
   divergences. *)
let test_clean_run_green () =
  let s = Driver.run (opts 40 1) in
  Alcotest.(check int) "cases" 40 s.Driver.cases_run;
  Alcotest.(check int) "no failures" 0 (List.length s.Driver.failures);
  Alcotest.(check bool) "executed inputs" true (s.Driver.inputs_compared > 0)

(* Same options => byte-identical summary. *)
let test_deterministic () =
  let a = Driver.run (opts 25 42) and b = Driver.run (opts 25 42) in
  Alcotest.(check string) "same summary" (Driver.render_summary a)
    (Driver.render_summary b)

let test_seed_matters () =
  (* Different seeds explore different specs (the summary alone can
     coincide on green runs, so compare the sampled case streams). *)
  let stream seed =
    let rng = Zipr_util.Rng.create seed in
    List.init 25 (fun _ -> Gen.describe (Gen.random_spec (Zipr_util.Rng.split rng)))
  in
  Alcotest.(check bool) "different cases" true (stream 1 <> stream 2)

(* Injecting a skipped pin must be caught, minimized, and dumped as a
   reproducer that reparses. *)
let test_catches_injected_fault () =
  let o = { (opts 10 9) with Driver.fault = Some Driver.Skip_pin } in
  let s = Driver.run o in
  Alcotest.(check bool) "failures reported" true (List.length s.Driver.failures > 0);
  List.iter
    (fun (f : Driver.failure) ->
      Alcotest.(check bool) "reason non-empty" true (String.length f.Driver.reason > 0);
      Alcotest.(check bool) "reproducer reparses" true
        (match Zasm.Parser.assemble_string f.Driver.repro_zasm with
        | Ok _ -> true
        | Error _ -> false))
    s.Driver.failures

(* The structural verifier adds checks but no false alarms on the seed
   pipeline. *)
let test_structural_clean () =
  let o = { (opts 15 5) with Driver.structural = true } in
  let s = Driver.run o in
  Alcotest.(check int) "no failures" 0 (List.length s.Driver.failures)

(* Gen.build is referentially transparent: same spec => same binary and
   inputs.  This is the property the shrinker and reproducers rely on. *)
let test_build_pure () =
  let rng = Zipr_util.Rng.create 77 in
  for _ = 1 to 10 do
    let spec = Gen.random_spec rng in
    let b1, i1 = Gen.build spec and b2, i2 = Gen.build spec in
    Alcotest.(check bool) "same binary" true
      ((Zelf.Binary.text b1).Zelf.Section.data = (Zelf.Binary.text b2).Zelf.Section.data);
    Alcotest.(check bool) "same inputs" true (i1 = i2)
  done

(* Shrink candidates must be strictly smaller in at least one dimension,
   and greedy shrinking terminates within budget. *)
let test_shrink_terminates () =
  let check n = n > 10 in
  let candidates n = if n > 0 then [ n / 2; n - 1 ] else [] in
  let minimized, used = Shrink.greedy ~budget:100 ~check ~candidates 1000 in
  Alcotest.(check int) "fixpoint" 11 minimized;
  Alcotest.(check bool) "budget respected" true (used <= 100);
  Alcotest.(check bool) "counted tests" true (used > 0)

let test_shrink_string_shrinks () =
  List.iter
    (fun s ->
      List.iter
        (fun c ->
          Alcotest.(check bool) "strictly shorter" true
            (String.length c < String.length s))
        (Shrink.shrink_string s))
    [ "a"; "ab"; "hello world"; String.make 100 'x' ]

let suite =
  [
    Alcotest.test_case "clean run green" `Slow test_clean_run_green;
    Alcotest.test_case "deterministic" `Slow test_deterministic;
    Alcotest.test_case "seed matters" `Slow test_seed_matters;
    Alcotest.test_case "catches injected fault" `Slow test_catches_injected_fault;
    Alcotest.test_case "structural clean" `Slow test_structural_clean;
    Alcotest.test_case "build is pure" `Quick test_build_pure;
    Alcotest.test_case "shrink terminates" `Quick test_shrink_terminates;
    Alcotest.test_case "shrink_string shrinks" `Quick test_shrink_string_shrinks;
  ]
