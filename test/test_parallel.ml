(* The domain-parallel corpus engine: pool mechanics, deterministic RNG
   sharding, order-independent stats merging, and the end-to-end
   jobs-independence property the whole subsystem exists to provide. *)

module Pool = Parallel.Pool
module Corpus = Parallel.Corpus
module Rng = Zipr_util.Rng

(* -- Rng.derive: the sharded seed function is part of the output format
      (rewritten bytes depend on it), so its values are pinned. -- *)

let test_derive_pinned () =
  let check s i expected =
    Alcotest.(check int)
      (Printf.sprintf "derive %d %d" s i)
      expected
      (Rng.derive ~corpus_seed:s ~index:i)
  in
  check 0 0 1299394637241201967;
  check 0 1 3701113985490053897;
  check 7 0 2102454193392332656;
  check 7 5 1336422713366693928;
  check 123456789 41 2709742889758532527

let test_derive_properties () =
  (* Non-negative, and injective-in-practice over a small grid. *)
  let seen = Hashtbl.create 512 in
  for s = 0 to 15 do
    for i = 0 to 15 do
      let d = Rng.derive ~corpus_seed:s ~index:i in
      Alcotest.(check bool) "non-negative" true (d >= 0);
      Alcotest.(check bool) "no collision" false (Hashtbl.mem seen d);
      Hashtbl.replace seen d ()
    done
  done

(* -- Pool: results land in submission order, every task runs once,
      per-worker accounting adds up. -- *)

let test_pool_map_order () =
  let input = Array.init 37 (fun i -> i) in
  List.iter
    (fun jobs ->
      let timed, stats, _q = Pool.map ~jobs (fun i -> (2 * i) + 1) input in
      Array.iteri
        (fun i t -> Alcotest.(check int) "value in slot" ((2 * i) + 1) t.Pool.value)
        timed;
      let total = Array.fold_left (fun acc w -> acc + w.Pool.tasks_run) 0 stats in
      Alcotest.(check int) "every task ran once" 37 total)
    [ 1; 2; 4 ]

let test_pool_inline_when_serial () =
  (* jobs <= 1 must not spawn domains: everything runs on worker 0. *)
  let timed, stats, _ = Pool.map ~jobs:1 (fun i -> i) (Array.init 5 (fun i -> i)) in
  Array.iter (fun t -> Alcotest.(check int) "worker 0" 0 t.Pool.worker) timed;
  Alcotest.(check int) "one worker stat" 1 (Array.length stats)

let test_pool_task_exception_propagates () =
  match Pool.map ~jobs:2 (fun i -> if i = 3 then failwith "boom" else i) (Array.init 8 Fun.id) with
  | _ -> Alcotest.fail "expected the task exception to re-raise at shutdown"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg

(* -- Pool shutdown paths: the serve daemon leans on these — drain must
      complete in-flight work, close must be idempotent, and submission
      after close must fail fast instead of hanging. -- *)

let test_pool_shutdown_drains_inflight () =
  let pool = Pool.create ~capacity:16 ~jobs:2 () in
  let done_ = Atomic.make 0 in
  for _ = 1 to 10 do
    Pool.submit pool (fun ~worker:_ ~wait_s:_ ->
        Unix.sleepf 0.01;
        Atomic.incr done_)
  done;
  let stats, _q = Pool.shutdown pool in
  Alcotest.(check int) "every accepted task completed" 10 (Atomic.get done_);
  let total = Array.fold_left (fun acc w -> acc + w.Pool.tasks_run) 0 stats in
  Alcotest.(check int) "worker accounting matches" 10 total

let test_pool_double_shutdown_idempotent () =
  let pool = Pool.create ~jobs:2 () in
  Pool.submit pool (fun ~worker:_ ~wait_s:_ -> ());
  let a, _ = Pool.shutdown pool in
  let b, _ = Pool.shutdown pool in
  Alcotest.(check int) "same worker count both times" (Array.length a) (Array.length b)

let test_pool_double_shutdown_error_once () =
  (* A task exception re-raises at the first shutdown only: the second
     close is a clean no-op (the serve daemon's signal path may race a
     normal exit into two closes). *)
  let pool = Pool.create ~jobs:1 () in
  Pool.submit pool (fun ~worker:_ ~wait_s:_ -> failwith "task-boom");
  (match Pool.shutdown pool with
  | _ -> Alcotest.fail "first shutdown must re-raise the task exception"
  | exception Failure msg -> Alcotest.(check string) "original error" "task-boom" msg);
  match Pool.shutdown pool with
  | _ -> ()
  | exception e -> Alcotest.failf "second shutdown must not raise: %s" (Printexc.to_string e)

let test_pool_submit_after_shutdown_rejects () =
  let pool = Pool.create ~jobs:1 () in
  ignore (Pool.shutdown pool);
  (match Pool.submit pool (fun ~worker:_ ~wait_s:_ -> ()) with
  | () -> Alcotest.fail "submit after shutdown must raise"
  | exception Invalid_argument _ -> ());
  match Pool.try_submit pool (fun ~worker:_ ~wait_s:_ -> ()) with
  | Pool.Closed -> ()
  | Pool.Submitted | Pool.Queue_full -> Alcotest.fail "try_submit after shutdown must be Closed"

let test_pool_try_submit_queue_full () =
  (* One worker, capacity 1: a blocker occupies the worker, one queued
     task fills the queue; the next try_submit must reject, not block. *)
  let pool = Pool.create ~capacity:1 ~jobs:1 () in
  let release = Atomic.make false in
  let ran = Atomic.make 0 in
  Pool.submit pool (fun ~worker:_ ~wait_s:_ ->
      while not (Atomic.get release) do
        Unix.sleepf 0.002
      done);
  (* Wait for the worker to pick the blocker up so the queue is empty. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let queued () =
    match Pool.try_submit pool (fun ~worker:_ ~wait_s:_ -> Atomic.incr ran) with
    | Pool.Submitted -> true
    | Pool.Queue_full -> false
    | Pool.Closed -> Alcotest.fail "pool closed unexpectedly"
  in
  while (not (queued ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  (* Queue now holds one task; the bound must hold. *)
  (match Pool.try_submit pool (fun ~worker:_ ~wait_s:_ -> Atomic.incr ran) with
  | Pool.Queue_full -> ()
  | Pool.Submitted -> Alcotest.fail "queue bound not enforced"
  | Pool.Closed -> Alcotest.fail "pool closed unexpectedly");
  Atomic.set release true;
  ignore (Pool.shutdown pool);
  Alcotest.(check int) "the queued task still ran" 1 (Atomic.get ran)

(* -- stats merge: a commutative monoid (warnings excepted, which
      concatenate). -- *)

let sample_stats () =
  let w = Workloads.Synthetic.apache_like ~tests:0 () in
  let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] w.binary in
  r.Zipr.Pipeline.stats

let test_stats_monoid () =
  let a = sample_stats () in
  let b = { a with Zipr.Reassemble.dollops_placed = 3; warnings = [ "w1" ] } in
  Alcotest.(check bool) "left identity" true (Zipr.Reassemble.merge_stats Zipr.Reassemble.zero_stats a = a);
  Alcotest.(check bool) "right identity" true (Zipr.Reassemble.merge_stats a Zipr.Reassemble.zero_stats = a);
  let ab = Zipr.Reassemble.merge_stats a b and ba = Zipr.Reassemble.merge_stats b a in
  Alcotest.(check bool)
    "counters commute" true
    ({ ab with Zipr.Reassemble.warnings = [] } = { ba with Zipr.Reassemble.warnings = [] });
  Alcotest.(check (list string))
    "warnings concatenate in fold order" [ "w1" ]
    ab.Zipr.Reassemble.warnings

(* -- Corpus: the ISSUE's property — jobs must not be observable in the
      deterministic output surface. -- *)

let corpus_items () =
  (* Varied binaries, including the fragmentation-heavy one that splits
     dollops, so the merged stats have every counter live. *)
  List.map
    (fun (w : Workloads.Synthetic.spec) ->
      { Corpus.name = w.name; data = Zelf.Binary.serialize w.binary })
    [
      Workloads.Synthetic.apache_like ~tests:0 ();
      Workloads.Synthetic.apache_like ~seed:904 ~tests:0 ();
      Workloads.Synthetic.libc_like ~tests:0 ();
      Workloads.Synthetic.frag_like ~tests:0 ();
      Workloads.Synthetic.apache_like ~seed:905 ~tests:0 ();
      Workloads.Synthetic.libc_like ~seed:906 ~tests:0 ();
    ]

let random_config =
  { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = Zipr.Placement.random }

let test_jobs_independence () =
  let items = corpus_items () in
  List.iter
    (fun corpus_seed ->
      let a =
        Corpus.rewrite_all ~jobs:1 ~config:random_config
          ~transforms:[ Transforms.Null.transform ] ~corpus_seed items
      in
      let b =
        Corpus.rewrite_all ~jobs:4 ~config:random_config
          ~transforms:[ Transforms.Null.transform ] ~corpus_seed items
      in
      List.iter2
        (fun (x : Corpus.entry) (y : Corpus.entry) ->
          Alcotest.(check int) "same index" x.index y.index;
          Alcotest.(check int) "same derived seed" x.seed y.seed;
          match (x.result, y.result) with
          | Ok ox, Ok oy ->
              Alcotest.(check bool)
                (Printf.sprintf "byte-identical output (%s, corpus seed %d)" x.name corpus_seed)
                true
                (Bytes.equal ox.Corpus.rewritten oy.Corpus.rewritten);
              Alcotest.(check bool) "same per-binary stats" true (ox.Corpus.stats = oy.Corpus.stats)
          | Error ex, Error ey -> Alcotest.(check string) "same error" ex ey
          | _ -> Alcotest.fail "ok/error verdict differs between jobs 1 and 4")
        a.Corpus.entries b.Corpus.entries;
      Alcotest.(check bool) "identical merged stats" true
        (a.Corpus.merged_stats = b.Corpus.merged_stats);
      Alcotest.(check int) "same ok count" a.Corpus.ok b.Corpus.ok;
      Alcotest.(check int) "same failed count" a.Corpus.failed b.Corpus.failed;
      Alcotest.(check bool) "merged counters live" true
        (a.Corpus.merged_stats.Zipr.Reassemble.dollops_placed > 0))
    [ 3; 1177 ]

let test_corpus_error_isolation () =
  let items =
    [
      { Corpus.name = "garbage"; data = Bytes.of_string "not an elf at all" };
      List.nth (corpus_items ()) 0;
      { Corpus.name = "empty"; data = Bytes.create 0 };
    ]
  in
  let r = Corpus.rewrite_all ~jobs:2 ~corpus_seed:1 items in
  Alcotest.(check int) "one ok" 1 r.Corpus.ok;
  Alcotest.(check int) "two failed" 2 r.Corpus.failed;
  Alcotest.(check int) "all entries reported" 3 (List.length r.Corpus.entries);
  (match (List.nth r.Corpus.entries 0).Corpus.result with
  | Error msg -> Alcotest.(check bool) "parse error surfaced" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "garbage item must fail");
  match (List.nth r.Corpus.entries 1).Corpus.result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "good item failed: %s" e

let test_corpus_seed_matters () =
  let items = corpus_items () in
  let outputs corpus_seed =
    let r = Corpus.rewrite_all ~jobs:1 ~config:random_config ~corpus_seed items in
    List.filter_map
      (fun (e : Corpus.entry) ->
        match e.Corpus.result with Ok o -> Some o.Corpus.rewritten | Error _ -> None)
      r.Corpus.entries
  in
  Alcotest.(check bool) "different corpus seeds shuffle layouts" true
    (outputs 3 <> outputs 4)

(* -- fuzz driver: same property at the next layer up — the summary
      (reproducers and failure order included) must not depend on jobs.
      The injected fault makes every case fail, exercising minimization
      on the workers. -- *)

let test_fuzz_jobs_independence () =
  let opts jobs =
    {
      Fuzz.Driver.default_options with
      Fuzz.Driver.cases = 8;
      seed = 9;
      fault = Some Fuzz.Driver.Skip_pin;
      shrink_budget = 40;
      jobs;
    }
  in
  let a = Fuzz.Driver.run (opts 1) and b = Fuzz.Driver.run (opts 3) in
  Alcotest.(check string) "identical summary" (Fuzz.Driver.render_summary a)
    (Fuzz.Driver.render_summary b);
  Alcotest.(check int) "identical rewrite counters" a.Fuzz.Driver.rewrites b.Fuzz.Driver.rewrites;
  Alcotest.(check int) "identical input counters" a.Fuzz.Driver.inputs_compared
    b.Fuzz.Driver.inputs_compared;
  List.iter2
    (fun (x : Fuzz.Driver.failure) (y : Fuzz.Driver.failure) ->
      Alcotest.(check int) "failure case order" x.Fuzz.Driver.case y.Fuzz.Driver.case;
      Alcotest.(check string) "identical reproducer" x.Fuzz.Driver.repro_zasm
        y.Fuzz.Driver.repro_zasm)
    a.Fuzz.Driver.failures b.Fuzz.Driver.failures

let suite =
  [
    Alcotest.test_case "Rng.derive pinned values" `Quick test_derive_pinned;
    Alcotest.test_case "Rng.derive non-negative, collision-free" `Quick test_derive_properties;
    Alcotest.test_case "pool map preserves order (jobs 1/2/4)" `Quick test_pool_map_order;
    Alcotest.test_case "pool serial path stays inline" `Quick test_pool_inline_when_serial;
    Alcotest.test_case "pool re-raises task exceptions" `Quick test_pool_task_exception_propagates;
    Alcotest.test_case "pool shutdown drains in-flight tasks" `Quick
      test_pool_shutdown_drains_inflight;
    Alcotest.test_case "pool double shutdown is idempotent" `Quick
      test_pool_double_shutdown_idempotent;
    Alcotest.test_case "pool shutdown re-raises a task error once" `Quick
      test_pool_double_shutdown_error_once;
    Alcotest.test_case "pool submit after shutdown fails fast" `Quick
      test_pool_submit_after_shutdown_rejects;
    Alcotest.test_case "pool try_submit enforces the queue bound" `Quick
      test_pool_try_submit_queue_full;
    Alcotest.test_case "stats merge is a monoid" `Quick test_stats_monoid;
    Alcotest.test_case "corpus jobs 1 vs 4: byte-identical, same merged stats" `Slow
      test_jobs_independence;
    Alcotest.test_case "corpus isolates per-file failures" `Quick test_corpus_error_isolation;
    Alcotest.test_case "corpus seed changes layouts" `Quick test_corpus_seed_matters;
    Alcotest.test_case "fuzz jobs 1 vs 3: identical summary" `Slow test_fuzz_jobs_independence;
  ]
