(* The domain-parallel corpus engine: pool mechanics, deterministic RNG
   sharding, order-independent stats merging, and the end-to-end
   jobs-independence property the whole subsystem exists to provide. *)

module Pool = Parallel.Pool
module Corpus = Parallel.Corpus
module Rng = Zipr_util.Rng

(* -- Rng.derive: the sharded seed function is part of the output format
      (rewritten bytes depend on it), so its values are pinned. -- *)

let test_derive_pinned () =
  let check s i expected =
    Alcotest.(check int)
      (Printf.sprintf "derive %d %d" s i)
      expected
      (Rng.derive ~corpus_seed:s ~index:i)
  in
  check 0 0 1299394637241201967;
  check 0 1 3701113985490053897;
  check 7 0 2102454193392332656;
  check 7 5 1336422713366693928;
  check 123456789 41 2709742889758532527

let test_derive_properties () =
  (* Non-negative, and injective-in-practice over a small grid. *)
  let seen = Hashtbl.create 512 in
  for s = 0 to 15 do
    for i = 0 to 15 do
      let d = Rng.derive ~corpus_seed:s ~index:i in
      Alcotest.(check bool) "non-negative" true (d >= 0);
      Alcotest.(check bool) "no collision" false (Hashtbl.mem seen d);
      Hashtbl.replace seen d ()
    done
  done

(* -- Pool: results land in submission order, every task runs once,
      per-worker accounting adds up. -- *)

let test_pool_map_order () =
  let input = Array.init 37 (fun i -> i) in
  List.iter
    (fun jobs ->
      let timed, stats, _q = Pool.map ~jobs (fun i -> (2 * i) + 1) input in
      Array.iteri
        (fun i t -> Alcotest.(check int) "value in slot" ((2 * i) + 1) t.Pool.value)
        timed;
      let total = Array.fold_left (fun acc w -> acc + w.Pool.tasks_run) 0 stats in
      Alcotest.(check int) "every task ran once" 37 total)
    [ 1; 2; 4 ]

let test_pool_inline_when_serial () =
  (* jobs <= 1 must not spawn domains: everything runs on worker 0. *)
  let timed, stats, _ = Pool.map ~jobs:1 (fun i -> i) (Array.init 5 (fun i -> i)) in
  Array.iter (fun t -> Alcotest.(check int) "worker 0" 0 t.Pool.worker) timed;
  Alcotest.(check int) "one worker stat" 1 (Array.length stats)

let test_pool_task_exception_propagates () =
  match Pool.map ~jobs:2 (fun i -> if i = 3 then failwith "boom" else i) (Array.init 8 Fun.id) with
  | _ -> Alcotest.fail "expected the task exception to re-raise at shutdown"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg

(* -- stats merge: a commutative monoid (warnings excepted, which
      concatenate). -- *)

let sample_stats () =
  let w = Workloads.Synthetic.apache_like ~tests:0 () in
  let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] w.binary in
  r.Zipr.Pipeline.stats

let test_stats_monoid () =
  let a = sample_stats () in
  let b = { a with Zipr.Reassemble.dollops_placed = 3; warnings = [ "w1" ] } in
  Alcotest.(check bool) "left identity" true (Zipr.Reassemble.merge_stats Zipr.Reassemble.zero_stats a = a);
  Alcotest.(check bool) "right identity" true (Zipr.Reassemble.merge_stats a Zipr.Reassemble.zero_stats = a);
  let ab = Zipr.Reassemble.merge_stats a b and ba = Zipr.Reassemble.merge_stats b a in
  Alcotest.(check bool)
    "counters commute" true
    ({ ab with Zipr.Reassemble.warnings = [] } = { ba with Zipr.Reassemble.warnings = [] });
  Alcotest.(check (list string))
    "warnings concatenate in fold order" [ "w1" ]
    ab.Zipr.Reassemble.warnings

(* -- Corpus: the ISSUE's property — jobs must not be observable in the
      deterministic output surface. -- *)

let corpus_items () =
  (* Varied binaries, including the fragmentation-heavy one that splits
     dollops, so the merged stats have every counter live. *)
  List.map
    (fun (w : Workloads.Synthetic.spec) ->
      { Corpus.name = w.name; data = Zelf.Binary.serialize w.binary })
    [
      Workloads.Synthetic.apache_like ~tests:0 ();
      Workloads.Synthetic.apache_like ~seed:904 ~tests:0 ();
      Workloads.Synthetic.libc_like ~tests:0 ();
      Workloads.Synthetic.frag_like ~tests:0 ();
      Workloads.Synthetic.apache_like ~seed:905 ~tests:0 ();
      Workloads.Synthetic.libc_like ~seed:906 ~tests:0 ();
    ]

let random_config =
  { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = Zipr.Placement.random }

let test_jobs_independence () =
  let items = corpus_items () in
  List.iter
    (fun corpus_seed ->
      let a =
        Corpus.rewrite_all ~jobs:1 ~config:random_config
          ~transforms:[ Transforms.Null.transform ] ~corpus_seed items
      in
      let b =
        Corpus.rewrite_all ~jobs:4 ~config:random_config
          ~transforms:[ Transforms.Null.transform ] ~corpus_seed items
      in
      List.iter2
        (fun (x : Corpus.entry) (y : Corpus.entry) ->
          Alcotest.(check int) "same index" x.index y.index;
          Alcotest.(check int) "same derived seed" x.seed y.seed;
          match (x.result, y.result) with
          | Ok ox, Ok oy ->
              Alcotest.(check bool)
                (Printf.sprintf "byte-identical output (%s, corpus seed %d)" x.name corpus_seed)
                true
                (Bytes.equal ox.Corpus.rewritten oy.Corpus.rewritten);
              Alcotest.(check bool) "same per-binary stats" true (ox.Corpus.stats = oy.Corpus.stats)
          | Error ex, Error ey -> Alcotest.(check string) "same error" ex ey
          | _ -> Alcotest.fail "ok/error verdict differs between jobs 1 and 4")
        a.Corpus.entries b.Corpus.entries;
      Alcotest.(check bool) "identical merged stats" true
        (a.Corpus.merged_stats = b.Corpus.merged_stats);
      Alcotest.(check int) "same ok count" a.Corpus.ok b.Corpus.ok;
      Alcotest.(check int) "same failed count" a.Corpus.failed b.Corpus.failed;
      Alcotest.(check bool) "merged counters live" true
        (a.Corpus.merged_stats.Zipr.Reassemble.dollops_placed > 0))
    [ 3; 1177 ]

let test_corpus_error_isolation () =
  let items =
    [
      { Corpus.name = "garbage"; data = Bytes.of_string "not an elf at all" };
      List.nth (corpus_items ()) 0;
      { Corpus.name = "empty"; data = Bytes.create 0 };
    ]
  in
  let r = Corpus.rewrite_all ~jobs:2 ~corpus_seed:1 items in
  Alcotest.(check int) "one ok" 1 r.Corpus.ok;
  Alcotest.(check int) "two failed" 2 r.Corpus.failed;
  Alcotest.(check int) "all entries reported" 3 (List.length r.Corpus.entries);
  (match (List.nth r.Corpus.entries 0).Corpus.result with
  | Error msg -> Alcotest.(check bool) "parse error surfaced" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "garbage item must fail");
  match (List.nth r.Corpus.entries 1).Corpus.result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "good item failed: %s" e

let test_corpus_seed_matters () =
  let items = corpus_items () in
  let outputs corpus_seed =
    let r = Corpus.rewrite_all ~jobs:1 ~config:random_config ~corpus_seed items in
    List.filter_map
      (fun (e : Corpus.entry) ->
        match e.Corpus.result with Ok o -> Some o.Corpus.rewritten | Error _ -> None)
      r.Corpus.entries
  in
  Alcotest.(check bool) "different corpus seeds shuffle layouts" true
    (outputs 3 <> outputs 4)

(* -- fuzz driver: same property at the next layer up — the summary
      (reproducers and failure order included) must not depend on jobs.
      The injected fault makes every case fail, exercising minimization
      on the workers. -- *)

let test_fuzz_jobs_independence () =
  let opts jobs =
    {
      Fuzz.Driver.default_options with
      Fuzz.Driver.cases = 8;
      seed = 9;
      fault = Some Fuzz.Driver.Skip_pin;
      shrink_budget = 40;
      jobs;
    }
  in
  let a = Fuzz.Driver.run (opts 1) and b = Fuzz.Driver.run (opts 3) in
  Alcotest.(check string) "identical summary" (Fuzz.Driver.render_summary a)
    (Fuzz.Driver.render_summary b);
  Alcotest.(check int) "identical rewrite counters" a.Fuzz.Driver.rewrites b.Fuzz.Driver.rewrites;
  Alcotest.(check int) "identical input counters" a.Fuzz.Driver.inputs_compared
    b.Fuzz.Driver.inputs_compared;
  List.iter2
    (fun (x : Fuzz.Driver.failure) (y : Fuzz.Driver.failure) ->
      Alcotest.(check int) "failure case order" x.Fuzz.Driver.case y.Fuzz.Driver.case;
      Alcotest.(check string) "identical reproducer" x.Fuzz.Driver.repro_zasm
        y.Fuzz.Driver.repro_zasm)
    a.Fuzz.Driver.failures b.Fuzz.Driver.failures

let suite =
  [
    Alcotest.test_case "Rng.derive pinned values" `Quick test_derive_pinned;
    Alcotest.test_case "Rng.derive non-negative, collision-free" `Quick test_derive_properties;
    Alcotest.test_case "pool map preserves order (jobs 1/2/4)" `Quick test_pool_map_order;
    Alcotest.test_case "pool serial path stays inline" `Quick test_pool_inline_when_serial;
    Alcotest.test_case "pool re-raises task exceptions" `Quick test_pool_task_exception_propagates;
    Alcotest.test_case "stats merge is a monoid" `Quick test_stats_monoid;
    Alcotest.test_case "corpus jobs 1 vs 4: byte-identical, same merged stats" `Slow
      test_jobs_independence;
    Alcotest.test_case "corpus isolates per-file failures" `Quick test_corpus_error_isolation;
    Alcotest.test_case "corpus seed changes layouts" `Quick test_corpus_seed_matters;
    Alcotest.test_case "fuzz jobs 1 vs 3: identical summary" `Slow test_fuzz_jobs_independence;
  ]
