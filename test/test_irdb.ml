(* Tests for the IRDB: row bookkeeping, logical links, structural edits. *)

module Db = Irdb.Db
module Insn = Zvm.Insn
module Reg = Zvm.Reg

let dummy_binary () =
  Zelf.Binary.create ~entry:0x1000
    [ Zelf.Section.make ~name:".text" ~kind:Zelf.Section.Text ~vaddr:0x1000 (Bytes.make 64 '\x90') ]

let fresh () = Db.create ~orig:(dummy_binary ()) ()

let test_add_and_row () =
  let db = fresh () in
  let id = Db.add_insn ~orig_addr:0x1000 db Insn.Nop in
  let r = Db.row db id in
  Alcotest.(check bool) "insn" true (r.Db.insn = Insn.Nop);
  Alcotest.(check (option int)) "orig addr" (Some 0x1000) r.Db.orig_addr;
  Alcotest.(check (option int)) "find by addr" (Some id) (Db.find_by_orig_addr db 0x1000);
  Alcotest.(check int) "count" 1 (Db.count db)

let test_links () =
  let db = fresh () in
  let a = Db.add_insn db (Insn.Cmpi (Reg.R0, 1)) in
  let b = Db.add_insn db (Insn.Jcc (Zvm.Cond.Eq, Insn.Near, 0)) in
  let c = Db.add_insn db Insn.Ret in
  Db.set_fallthrough db a (Some b);
  Db.set_target db b (Some c);
  Alcotest.(check (option int)) "ft" (Some b) (Db.row db a).Db.fallthrough;
  Alcotest.(check (option int)) "tgt" (Some c) (Db.row db b).Db.target

let test_pin_unique () =
  let db = fresh () in
  let a = Db.add_insn db Insn.Nop in
  let b = Db.add_insn db Insn.Ret in
  Db.pin db a 0x1000;
  Alcotest.(check bool) "repin same row ok" true
    (try
       Db.pin db a 0x1000;
       true
     with Invalid_argument _ -> false);
  Alcotest.(check bool) "pin clash rejected" true
    (try
       Db.pin db b 0x1000;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check (list (pair int int))) "pin listing" [ (0x1000, a) ] (Db.pinned_addresses db)

let test_insert_before_steals_identity () =
  let db = fresh () in
  let target = Db.add_insn db Insn.Ret in
  let jumper = Db.add_insn db (Insn.Jmp (Insn.Near, 0)) in
  Db.set_target db jumper (Some target);
  Db.pin db target 0x1010;
  let moved = Db.insert_before db target (Insn.Push Reg.R0) in
  (* The old id now holds the inserted instruction and still receives the
     jump and the pin; the displaced ret lives in the new row. *)
  Alcotest.(check bool) "old id holds check" true ((Db.row db target).Db.insn = Insn.Push Reg.R0);
  Alcotest.(check bool) "moved holds ret" true ((Db.row db moved).Db.insn = Insn.Ret);
  Alcotest.(check (option int)) "jump still points at old id" (Some target)
    (Db.row db jumper).Db.target;
  Alcotest.(check (option int)) "pin kept" (Some 0x1010) (Db.row db target).Db.pinned;
  Alcotest.(check (option int)) "fallthrough chains" (Some moved)
    (Db.row db target).Db.fallthrough

let test_insert_after () =
  let db = fresh () in
  let a = Db.add_insn db (Insn.Call 0) in
  let b = Db.add_insn db Insn.Ret in
  Db.set_fallthrough db a (Some b);
  let mid = Db.insert_after db a Insn.Retland in
  Alcotest.(check (option int)) "a -> mid" (Some mid) (Db.row db a).Db.fallthrough;
  Alcotest.(check (option int)) "mid -> b" (Some b) (Db.row db mid).Db.fallthrough;
  Alcotest.check_raises "no fallthrough"
    (Invalid_argument "Db.insert_after: row has no fallthrough") (fun () ->
      ignore (Db.insert_after db b Insn.Nop))

let test_append_chain () =
  let db = fresh () in
  let head = Db.append_chain db [ Insn.Movi (Reg.R0, 139); Insn.Sys 0 ] in
  let r = Db.row db head in
  Alcotest.(check bool) "head insn" true (r.Db.insn = Insn.Movi (Reg.R0, 139));
  match r.Db.fallthrough with
  | Some next ->
      Alcotest.(check bool) "tail insn" true ((Db.row db next).Db.insn = Insn.Sys 0);
      Alcotest.(check (option int)) "tail open" None (Db.row db next).Db.fallthrough
  | None -> Alcotest.fail "chain not linked"

let test_splice_out () =
  let db = fresh () in
  let a = Db.add_insn db Insn.Nop in
  let b = Db.add_insn db (Insn.Movi (Reg.R1, 1)) in
  let c = Db.add_insn db Insn.Ret in
  Db.set_fallthrough db a (Some b);
  Db.set_fallthrough db b (Some c);
  let j = Db.add_insn db (Insn.Jmp (Insn.Near, 0)) in
  Db.set_target db j (Some b);
  Db.splice_out db b;
  Alcotest.(check (option int)) "a skips to c" (Some c) (Db.row db a).Db.fallthrough;
  Alcotest.(check (option int)) "jump redirected" (Some c) (Db.row db j).Db.target;
  Alcotest.(check bool) "b gone" true (match Db.row db b with exception Not_found -> true | _ -> false)

let test_replace () =
  let db = fresh () in
  let a = Db.add_insn db Insn.Nop in
  Db.replace db a Insn.Halt;
  Alcotest.(check bool) "replaced" true ((Db.row db a).Db.insn = Insn.Halt)

let test_funcs () =
  let db = fresh () in
  let e = Db.add_insn db Insn.Nop in
  let fid = Db.add_func db ~fname:"f" ~entry:e in
  Db.set_func db e fid;
  Alcotest.(check int) "one function" 1 (List.length (Db.funcs db));
  Alcotest.(check (list int)) "membership" [ e ] (Db.func_insns db fid)

let test_added_sections_and_vaddr () =
  let db = fresh () in
  let v1 = Db.next_free_vaddr db in
  Alcotest.(check int) "page aligned" 0 (v1 mod 4096);
  Db.add_section db (Zelf.Section.make ~name:".z" ~kind:Zelf.Section.Data ~vaddr:v1 (Bytes.make 100 'x'));
  let v2 = Db.next_free_vaddr db in
  Alcotest.(check bool) "moves past added" true (v2 >= v1 + 100);
  Alcotest.(check int) "listed" 1 (List.length (Db.added_sections db))

let test_pin_prologue_validation () =
  let db = fresh () in
  Db.set_pin_prologue db [ Insn.Land ];
  Alcotest.(check bool) "accepted" true (Db.pin_prologue db = [ Insn.Land ]);
  Alcotest.(check bool) "control flow rejected" true
    (try
       Db.set_pin_prologue db [ Insn.Jmp (Insn.Near, 0) ];
       false
     with Invalid_argument _ -> true)

let test_marked_pins () =
  let db = fresh () in
  Alcotest.(check bool) "unmarked" false (Db.pin_is_marked db 0x1000);
  Db.mark_pin db 0x1000;
  Alcotest.(check bool) "marked" true (Db.pin_is_marked db 0x1000)

let test_dump_contains_rows () =
  let db = fresh () in
  let a = Db.add_insn ~orig_addr:0x1000 db (Insn.Movi (Reg.R0, 7)) in
  Db.pin db a 0x1000;
  Db.set_entry db a;
  let s = Irdb.Dump.to_string db in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions insn" true (contains s "movi r0, 0x7");
  Alcotest.(check bool) "mentions pin" true (contains s "0x1000");
  Alcotest.(check bool) "mentions entry" true (contains s "entry: 0")

let suite =
  [
    Alcotest.test_case "add/row" `Quick test_add_and_row;
    Alcotest.test_case "links" `Quick test_links;
    Alcotest.test_case "pin uniqueness" `Quick test_pin_unique;
    Alcotest.test_case "insert_before steals identity" `Quick test_insert_before_steals_identity;
    Alcotest.test_case "insert_after" `Quick test_insert_after;
    Alcotest.test_case "append_chain" `Quick test_append_chain;
    Alcotest.test_case "splice_out" `Quick test_splice_out;
    Alcotest.test_case "replace" `Quick test_replace;
    Alcotest.test_case "funcs" `Quick test_funcs;
    Alcotest.test_case "added sections" `Quick test_added_sections_and_vaddr;
    Alcotest.test_case "pin prologue validation" `Quick test_pin_prologue_validation;
    Alcotest.test_case "marked pins" `Quick test_marked_pins;
    Alcotest.test_case "dump" `Quick test_dump_contains_rows;
  ]

let test_validate_clean_pipeline_and_transforms () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let check_transform name transforms =
    let ir = Zipr.Ir_construction.build binary in
    Zipr.Transform.apply_all transforms ir.Zipr.Ir_construction.db;
    match Db.validate ir.Zipr.Ir_construction.db with
    | [] -> ()
    | issues -> Alcotest.failf "%s: %s" name (String.concat "; " issues)
  in
  check_transform "null" [ Transforms.Null.transform ];
  check_transform "cfi" [ Transforms.Cfi.transform ];
  check_transform "canary" [ Transforms.Canary.transform ];
  check_transform "stack-pad" [ Transforms.Stack_pad.transform ];
  check_transform "shadow-stack" [ Transforms.Shadow_stack.transform ];
  check_transform "stirring" [ Transforms.Stirring.transform ];
  check_transform "nop-pad" [ Transforms.Nop_pad.transform ];
  check_transform "jumptable-rewrite" [ Transforms.Jumptable_rewrite.transform ]

let test_validate_detects_breakage () =
  let db = fresh () in
  let a = Db.add_insn db (Insn.Movi (Reg.R0, 1)) in
  Db.set_fallthrough db a (Some 999);
  Alcotest.(check bool) "dead link flagged" true (Db.validate db <> [])

let suite =
  suite
  @ [
      Alcotest.test_case "validate pipeline+transforms" `Quick
        test_validate_clean_pipeline_and_transforms;
      Alcotest.test_case "validate detects breakage" `Quick test_validate_detects_breakage;
    ]
