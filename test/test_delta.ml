(* The incremental (delta) IR path: chunking, routine-fragment caching,
   stitching, and the byte-identity contract against the cold pipeline. *)

module Chunker = Disasm.Chunker
module Versioned = Workloads.Versioned

let serialize b = Zelf.Binary.serialize b

let transforms = [ Transforms.Cfi.transform; Transforms.Stack_pad.transform ]

let rewrite ?routine_cache binary =
  match Zipr.Pipeline.try_rewrite ?routine_cache ~transforms binary with
  | Ok r -> r
  | Error m -> Alcotest.failf "rewrite failed: %s" m

let out (r : Zipr.Pipeline.result) = serialize r.Zipr.Pipeline.rewritten

(* -- versioned workload -- *)

let test_versioned_deterministic () =
  let a = Versioned.generate ~seed:5 ~versions:3 () in
  let b = Versioned.generate ~seed:5 ~versions:3 () in
  List.iter2
    (fun (x : Versioned.version) (y : Versioned.version) ->
      Alcotest.(check bool)
        ("version " ^ x.Versioned.name ^ " reproducible")
        true
        (Bytes.equal (serialize x.Versioned.binary) (serialize y.Versioned.binary)))
    a b;
  let c = Versioned.generate ~seed:6 ~versions:3 () in
  Alcotest.(check bool) "seed changes bytes" false
    (Bytes.equal
       (serialize (List.hd a).Versioned.binary)
       (serialize (List.hd c).Versioned.binary));
  List.iteri
    (fun i (v : Versioned.version) ->
      Alcotest.(check bool)
        (Printf.sprintf "v%d edit list %s" i (if i = 0 then "empty" else "non-empty"))
        (i = 0)
        (v.Versioned.edits = []))
    a

(* -- chunker invariants -- *)

let test_chunker_tiles () =
  List.iter
    (fun (v : Versioned.version) ->
      let scan = Chunker.scan v.Versioned.binary in
      let pos = ref scan.Chunker.base in
      Array.iter
        (fun (c : Chunker.chunk) ->
          Alcotest.(check int) "chunks tile without gaps" !pos c.Chunker.lo;
          Alcotest.(check bool) "chunk is non-empty" true (c.Chunker.hi > c.Chunker.lo);
          pos := c.Chunker.hi)
        scan.Chunker.chunks;
      Alcotest.(check int) "tiling ends at text end"
        (scan.Chunker.base + scan.Chunker.len)
        !pos)
    (Versioned.generate ~seed:9 ~versions:2 ())

(* Cuts must never land inside an instruction of the linear framing:
   a mid-instruction cut would make every stitch over the chunk pair
   fall back, permanently. *)
let test_chunker_cuts_on_framing () =
  let v = List.hd (Versioned.generate ~seed:9 ~versions:1 ()) in
  let binary = v.Versioned.binary in
  let scan = Chunker.scan binary in
  let fetch a = Zelf.Binary.read8 binary a in
  let hi = scan.Chunker.base + scan.Chunker.len in
  let cuts =
    Array.to_list scan.Chunker.chunks |> List.map (fun (c : Chunker.chunk) -> c.Chunker.lo)
  in
  (* Replay the framing pass, recording every decode-attempt offset. *)
  let attempts = Hashtbl.create 1024 in
  let pos = ref scan.Chunker.base in
  while !pos < hi do
    Hashtbl.replace attempts !pos ();
    match Zvm.Decode.decode ~fetch !pos with
    | Ok (_, ilen) when !pos + ilen <= hi -> pos := !pos + ilen
    | Ok _ | Error _ -> incr pos
  done;
  List.iter
    (fun cut ->
      Alcotest.(check bool)
        (Printf.sprintf "cut %#x is a framing boundary" cut)
        true
        (Hashtbl.mem attempts cut))
    cuts

(* -- delta pipeline: identity, hits, no poisoning -- *)

let test_delta_byte_identity_and_hits () =
  let vs = Versioned.generate ~seed:3 ~versions:4 () in
  let dc = Zipr.Delta.create () in
  List.iteri
    (fun i (v : Versioned.version) ->
      let plain = rewrite v.Versioned.binary in
      let cached = rewrite ~routine_cache:dc v.Versioned.binary in
      Alcotest.(check bool)
        (Printf.sprintf "v%d cached output byte-identical" i)
        true
        (Bytes.equal (out plain) (out cached));
      let c = cached.Zipr.Pipeline.cache in
      if i = 0 then
        Alcotest.(check int) "v0 has no hits" 0 c.Zipr.Pipeline.routine_hits
      else begin
        Alcotest.(check bool)
          (Printf.sprintf "v%d hits the routine cache" i)
          true
          (c.Zipr.Pipeline.routine_hits > 0);
        Alcotest.(check int)
          (Printf.sprintf "v%d is a delta build" i)
          1 c.Zipr.Pipeline.delta_builds
      end)
    vs

(* A single edited routine must not poison its unedited neighbours: the
   misses on the next version are bounded by a small constant (the edited
   chunk, plus the chunk whose decode lookahead straddles the cut),
   not proportional to the routine count. *)
let test_edit_locality () =
  let vs = Versioned.generate ~seed:13 ~versions:2 ~edits_per_version:1 () in
  let v0 = List.nth vs 0 and v1 = List.nth vs 1 in
  let dc = Zipr.Delta.create () in
  ignore (rewrite ~routine_cache:dc v0.Versioned.binary);
  let r1 = rewrite ~routine_cache:dc v1.Versioned.binary in
  let c = r1.Zipr.Pipeline.cache in
  let n1 = Array.length (Chunker.scan v1.Versioned.binary).Chunker.chunks in
  Alcotest.(check int) "one lookup per chunk" n1
    (c.Zipr.Pipeline.routine_hits + c.Zipr.Pipeline.routine_misses);
  Alcotest.(check bool)
    (Printf.sprintf "misses bounded (%d misses over %d chunks)"
       c.Zipr.Pipeline.routine_misses n1)
    true
    (c.Zipr.Pipeline.routine_misses <= 4 && c.Zipr.Pipeline.routine_hits >= n1 - 4)

let test_memo_warm () =
  let v = List.hd (Versioned.generate ~seed:3 ~versions:1 ()) in
  let dc = Zipr.Delta.create () in
  let cold = rewrite ~routine_cache:dc v.Versioned.binary in
  let warm = rewrite ~routine_cache:dc v.Versioned.binary in
  Alcotest.(check bool) "warm output byte-identical" true
    (Bytes.equal (out cold) (out warm));
  let c = warm.Zipr.Pipeline.cache in
  Alcotest.(check int) "warm run misses nothing" 0 c.Zipr.Pipeline.routine_misses;
  Alcotest.(check bool) "warm run hits the memo" true (c.Zipr.Pipeline.routine_hits > 0);
  Alcotest.(check int) "memo entry resident" 1 (Zipr.Delta.memo_entries dc)

(* Fragments survive a process boundary: a fresh delta cache sharing only
   the disk directory (the memo is memory-only) stitches the next version
   from on-disk fragments. *)
let test_disk_fragments () =
  let dir = Filename.temp_file "zipr_delta" "" in
  Sys.remove dir;
  let vs = Versioned.generate ~seed:21 ~versions:2 () in
  let v0 = List.nth vs 0 and v1 = List.nth vs 1 in
  let dc1 = Zipr.Delta.create ~dir () in
  ignore (rewrite ~routine_cache:dc1 v0.Versioned.binary);
  let dc2 = Zipr.Delta.create ~dir () in
  let plain = rewrite v1.Versioned.binary in
  let cached = rewrite ~routine_cache:dc2 v1.Versioned.binary in
  Alcotest.(check bool) "disk-stitched output byte-identical" true
    (Bytes.equal (out plain) (out cached));
  let c = cached.Zipr.Pipeline.cache in
  Alcotest.(check bool) "fresh cache hits via disk" true
    (c.Zipr.Pipeline.routine_hits > 0);
  Alcotest.(check int) "stitched, not rebuilt" 1 c.Zipr.Pipeline.delta_builds

(* A corrupted disk fragment must read as a miss, never poison a stitch:
   outputs stay identical to the cold path. *)
let test_disk_corruption_is_miss () =
  let dir = Filename.temp_file "zipr_delta" "" in
  Sys.remove dir;
  let vs = Versioned.generate ~seed:22 ~versions:2 () in
  let v0 = List.nth vs 0 and v1 = List.nth vs 1 in
  let dc1 = Zipr.Delta.create ~dir () in
  ignore (rewrite ~routine_cache:dc1 v0.Versioned.binary);
  Sys.readdir dir |> Array.to_list
  |> List.iter (fun f ->
         let p = Filename.concat dir f in
         let oc = open_out_bin p in
         output_string oc "garbage";
         close_out oc);
  let dc2 = Zipr.Delta.create ~dir () in
  let plain = rewrite v1.Versioned.binary in
  let cached = rewrite ~routine_cache:dc2 v1.Versioned.binary in
  Alcotest.(check bool) "corrupt fragments: output still identical" true
    (Bytes.equal (out plain) (out cached));
  Alcotest.(check int) "corrupt fragments: all misses" 0
    cached.Zipr.Pipeline.cache.Zipr.Pipeline.routine_hits

(* Irregular binaries (data islands, hidden computed-jump regions) must
   round-trip the delta path unchanged: ambiguous chunks are never
   cached, near-matches fall back, outputs never diverge. *)
let test_dirty_binary_falls_back_identically () =
  let a = (Workloads.Synthetic.frag_like ~seed:404 ~tests:0 ()).Workloads.Synthetic.binary in
  let b = (Workloads.Synthetic.frag_like ~seed:405 ~tests:0 ()).Workloads.Synthetic.binary in
  let dc = Zipr.Delta.create () in
  List.iter
    (fun binary ->
      let plain = rewrite binary in
      let cached = rewrite ~routine_cache:dc binary in
      Alcotest.(check bool) "dirty binary byte-identical" true
        (Bytes.equal (out plain) (out cached)))
    [ a; b; a ]

(* Shared cache across 4 workers: outputs must not depend on scheduling
   or on which worker seeds the cache. *)
let test_jobs_shared_cache () =
  let vs = Versioned.generate ~seed:17 ~versions:3 () in
  let items =
    List.map
      (fun (v : Versioned.version) ->
        { Parallel.Corpus.name = v.Versioned.name; data = serialize v.Versioned.binary })
      vs
  in
  let plain = Parallel.Corpus.rewrite_all ~jobs:1 ~transforms ~corpus_seed:1 items in
  let dc = Zipr.Delta.create () in
  let first =
    Parallel.Corpus.rewrite_all ~jobs:4 ~transforms ~routine_cache:dc ~corpus_seed:1 items
  in
  let second =
    Parallel.Corpus.rewrite_all ~jobs:4 ~transforms ~routine_cache:dc ~corpus_seed:1 items
  in
  let outputs (r : Parallel.Corpus.report) =
    List.map
      (fun (e : Parallel.Corpus.entry) ->
        match e.Parallel.Corpus.result with
        | Ok o -> o.Parallel.Corpus.rewritten
        | Error m -> Alcotest.failf "corpus rewrite failed: %s" m)
      r.Parallel.Corpus.entries
  in
  List.iter2
    (fun a b -> Alcotest.(check bool) "jobs=4 cached output identical" true (Bytes.equal a b))
    (outputs plain) (outputs first);
  List.iter2
    (fun a b -> Alcotest.(check bool) "jobs=4 warm output identical" true (Bytes.equal a b))
    (outputs plain) (outputs second);
  Alcotest.(check int) "warm corpus run misses nothing" 0
    second.Parallel.Corpus.merged_cache.Zipr.Pipeline.routine_misses

let suite =
  [
    Alcotest.test_case "versioned corpus is deterministic" `Quick test_versioned_deterministic;
    Alcotest.test_case "chunker tiles the text exactly" `Quick test_chunker_tiles;
    Alcotest.test_case "chunker cuts only at framing boundaries" `Quick
      test_chunker_cuts_on_framing;
    Alcotest.test_case "delta outputs byte-identical, versions hit" `Quick
      test_delta_byte_identity_and_hits;
    Alcotest.test_case "an edit does not poison unedited routines" `Quick test_edit_locality;
    Alcotest.test_case "second rewrite hits the whole-IR memo" `Quick test_memo_warm;
    Alcotest.test_case "fragments persist to disk and stitch back" `Quick test_disk_fragments;
    Alcotest.test_case "corrupted disk fragments read as misses" `Quick
      test_disk_corruption_is_miss;
    Alcotest.test_case "irregular binaries fall back byte-identically" `Quick
      test_dirty_binary_falls_back_identically;
    Alcotest.test_case "shared cache at jobs=4 stays deterministic" `Slow
      test_jobs_shared_cache;
  ]
