(* Tests for speculative decoding at pins that land between known
   instruction boundaries (paper §II-A2: a pinned address with no decoded
   boundary still needs an IR row).  Covers each way the decode chain can
   end: re-synchronization with a known boundary, budget exhaustion, and
   a decoded direct branch — to both unknown and known targets. *)

module Insn = Zvm.Insn
module Builder = Zasm.Builder
module Ast = Zasm.Ast
module Db = Irdb.Db
module Ir = Zipr.Ir_construction

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let warned ir needle = List.exists (fun w -> contains w needle) ir.Ir.warnings

(* Each program pins [text_base + 1] — one byte into the entry
   instruction — via a data word, giving it a data-scan IBT reason.  The
   entry instruction's immediate bytes then become the bytes the
   speculative chain decodes. *)
let build_with_mid_pin body =
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  body b;
  Builder.data_word b (Ast.Abs 0x10001);
  let binary, symbols = Builder.assemble_exn b in
  Alcotest.(check int) "entry at the default text base" 0x10000 (List.assoc "main" symbols);
  (Ir.build binary, symbols)

let pinned_row db addr =
  match List.assoc_opt addr (Db.pinned_addresses db) with
  | Some id -> id
  | None -> Alcotest.failf "no row pinned at 0x%x" addr

let test_resync_fallthrough () =
  let ir, symbols =
    build_with_mid_pin (fun b ->
        (* Immediate bytes 90 90 90 90: four nops from 0x10001, after
           which the chain meets the real boundary at [after]. *)
        Builder.insn b (Insn.Pushi 0x90909090);
        Builder.label b "after";
        Builder.insn b Insn.Nop;
        Builder.insn b (Insn.Sys 0))
  in
  let db = ir.Ir.db in
  let after =
    match Db.find_by_orig_addr db (List.assoc "after" symbols) with
    | Some id -> id
    | None -> Alcotest.fail "no row at the re-sync boundary"
  in
  let rec follow id hops =
    if id = after then hops
    else begin
      let r = Db.row db id in
      Alcotest.(check bool) "speculative row is a nop" true (r.Db.insn = Insn.Nop);
      Alcotest.(check bool) "speculative row has no orig_addr" true (r.Db.orig_addr = None);
      match r.Db.fallthrough with
      | Some next -> follow next (hops + 1)
      | None -> Alcotest.fail "chain broke before re-synchronizing"
    end
  in
  Alcotest.(check int) "four speculative rows before the known boundary" 4
    (follow (pinned_row db 0x10001) 0);
  Alcotest.(check bool) "no speculative warnings" false (warned ir "speculative")

let test_budget_exhausted () =
  let ir, _ =
    build_with_mid_pin (fun b ->
        (* A run of 0x68 bytes: every [Pushi 0x68686868] is five 0x68s,
           so real boundaries sit at multiples of 5 while the speculative
           chain from offset 1 stays at 1 mod 5 forever — it can only end
           by running out of budget (32 rows, so the warning lands at
           0x10001 + 32 * 5 = 0x100a1). *)
        for _ = 1 to 34 do
          Builder.insn b (Insn.Pushi 0x68686868)
        done;
        Builder.insn b (Insn.Sys 0))
  in
  Alcotest.(check bool) "budget warning emitted" true
    (warned ir "speculative decode at 0x100a1 exceeded budget");
  Alcotest.(check bool) "pin survives on the partial chain" true
    (List.mem_assoc 0x10001 (Db.pinned_addresses ir.Ir.db))

let test_branch_to_unknown () =
  let ir, _ =
    build_with_mid_pin (fun b ->
        (* Immediate bytes eb 20 90 90: a short jump at 0x10001 whose
           decoded displacement (0x20) aims at 0x10023, past the text end
           — no row exists there. *)
        Builder.insn b (Insn.Pushi 0x909020eb);
        Builder.insn b Insn.Nop;
        Builder.insn b (Insn.Sys 0))
  in
  Alcotest.(check bool) "warning names the decoded target" true
    (warned ir "speculative branch at 0x10001 targets unknown 0x10023");
  let r = Db.row ir.Ir.db (pinned_row ir.Ir.db 0x10001) in
  Alcotest.(check bool) "displacement zeroed by the mandatory rewrite" true
    (r.Db.insn = Insn.Jmp (Insn.Short, 0));
  Alcotest.(check bool) "no target link" true (r.Db.target = None)

let test_branch_to_known () =
  let ir, symbols =
    build_with_mid_pin (fun b ->
        (* Immediate bytes eb 02 90 90: a short jump at 0x10001 targeting
           0x10005 — the real boundary right after the entry Pushi.  The
           logical target link must resolve from the decoded
           displacement, not the zeroed stored one. *)
        Builder.insn b (Insn.Pushi 0x909002eb);
        Builder.label b "after";
        Builder.insn b Insn.Nop;
        Builder.insn b (Insn.Sys 0))
  in
  let db = ir.Ir.db in
  let r = Db.row db (pinned_row db 0x10001) in
  Alcotest.(check bool) "target link resolves to the known row" true
    (r.Db.target = Db.find_by_orig_addr db (List.assoc "after" symbols));
  Alcotest.(check bool) "no speculative warnings" false (warned ir "speculative")

let suite =
  [
    Alcotest.test_case "chain re-syncs with a fallthrough link" `Quick test_resync_fallthrough;
    Alcotest.test_case "decode budget exhaustion warns" `Quick test_budget_exhausted;
    Alcotest.test_case "branch to unknown target warns" `Quick test_branch_to_unknown;
    Alcotest.test_case "branch to known boundary links" `Quick test_branch_to_known;
  ]
