(* Seeded model-based property tests for the two structures the
   reassembler's space accounting stands on: Util.Interval_set and
   Core.Memspace.  Each test replays a long random operation sequence
   (driven by Zipr_util.Rng, so failures are reproducible from the seed
   in the test name) against a boolean-array reference model. *)

module Iset = Zipr_util.Interval_set
module Rng = Zipr_util.Rng

let universe = 512

(* -- Interval_set vs. boolean-array model -- *)

let model_total model = Array.fold_left (fun n b -> if b then n + 1 else n) 0 model

let model_intervals model =
  let acc = ref [] and start = ref None in
  for i = 0 to Array.length model do
    let on = i < Array.length model && model.(i) in
    match (!start, on) with
    | None, true -> start := Some i
    | Some s, false ->
        acc := (s, i) :: !acc;
        start := None
    | _ -> ()
  done;
  List.rev !acc

let random_range rng =
  let lo = Rng.int rng universe in
  let hi = lo + Rng.int rng (universe - lo + 1) in
  (lo, hi)

(* Naive references for the positional queries, computed by linear scan
   over the ascending interval list — the semantics the O(log n) tree
   queries must reproduce exactly, tie-breaking included. *)

let naive_first_fit ivs ~size =
  List.find_map (fun (lo, hi) -> if hi - lo >= size then Some lo else None) ivs

let naive_first_fit_at_or_after ivs ~pos ~size =
  List.find_map
    (fun (lo, hi) ->
      let a = max lo pos in
      if hi - a >= size then Some a else None)
    ivs

let naive_fit_in_window ivs ~lo ~hi ~size =
  List.find_map
    (fun (glo, ghi) ->
      let a = max glo lo and b = min ghi hi in
      if b - a >= size then Some a else None)
    ivs

(* Lowest-addressed candidate among those minimizing distance to
   [center]: candidates ascend with the interval list, so keeping the
   first strict improvement reproduces the tree's d1 <= d2 tie-break. *)
let naive_best_fit_near ivs ~center ~size =
  List.fold_left
    (fun best (glo, ghi) ->
      if ghi - glo < size then best
      else
        let a = max glo (min center (ghi - size)) in
        let d = abs (a - center) in
        match best with Some (_, bd) when bd <= d -> best | _ -> Some (a, d))
    None ivs
  |> Option.map fst

let naive_largest ivs =
  List.fold_left
    (fun best (lo, hi) ->
      match best with Some (blo, bhi) when bhi - blo >= hi - lo -> Some (blo, bhi) | _ -> Some (lo, hi))
    None ivs

let check_queries seed step rng set ivs =
  let chk name expected got =
    Alcotest.(check (option int)) (Printf.sprintf "seed %d step %d %s" seed step name) expected got
  in
  let size = Rng.int_in rng 1 32 in
  let pos = Rng.int rng universe in
  let wlo = Rng.int rng universe in
  let whi = wlo + Rng.int rng (universe - wlo + 1) in
  let center = Rng.int rng universe in
  chk "first_fit" (naive_first_fit ivs ~size) (Iset.first_fit set ~size);
  chk "first_fit_at_or_after"
    (naive_first_fit_at_or_after ivs ~pos ~size)
    (Iset.first_fit_at_or_after set ~pos ~size);
  chk "fit_in_window"
    (naive_fit_in_window ivs ~lo:wlo ~hi:whi ~size)
    (Iset.fit_in_window set ~lo:wlo ~hi:whi ~size);
  chk "best_fit_near"
    (naive_best_fit_near ivs ~center ~size)
    (Iset.best_fit_near set ~center ~size);
  Alcotest.(check (option (pair int int)))
    (Printf.sprintf "seed %d step %d largest" seed step)
    (naive_largest ivs) (Iset.largest set)

let run_interval_set_ops seed ops =
  let rng = Rng.create seed in
  let model = Array.make universe false in
  let set = ref Iset.empty in
  for step = 1 to ops do
    let lo, hi = random_range rng in
    if Rng.bool rng then begin
      set := Iset.add !set ~lo ~hi;
      for i = lo to hi - 1 do
        model.(i) <- true
      done
    end
    else begin
      set := Iset.remove !set ~lo ~hi;
      for i = lo to hi - 1 do
        model.(i) <- false
      done
    end;
    (* Invariant: membership and containment agree pointwise with the
       naive list model (spot-check 16 points). *)
    let naive_containing ivs p =
      List.find_opt (fun (lo, hi) -> p >= lo && p < hi) ivs
    in
    for _ = 1 to 16 do
      let p = Rng.int rng universe in
      if Iset.mem !set p <> model.(p) then
        Alcotest.failf "seed %d step %d: mem %d disagrees" seed step p;
      let expected = naive_containing (model_intervals model) p in
      if Iset.find_containing !set p <> expected then
        Alcotest.failf "seed %d step %d: find_containing %d disagrees" seed step p
    done;
    (* Invariant: total equals the model's population count. *)
    if Iset.total !set <> model_total model then
      Alcotest.failf "seed %d step %d: total %d, model %d" seed step (Iset.total !set)
        (model_total model);
    (* Invariant: members are exactly the model's maximal runs — this is
       both correctness and the coalesced/disjoint representation
       invariant (sorted, non-overlapping, non-adjacent). *)
    let ivs = model_intervals model in
    if Iset.intervals !set <> ivs then
      Alcotest.failf "seed %d step %d: interval lists disagree" seed step;
    (* Invariant: the tree's structural self-checks (balance, ordering,
       augmented count/bytes/max-width) hold after every operation. *)
    (match Iset.invariants !set with
    | [] -> ()
    | vs -> Alcotest.failf "seed %d step %d: %s" seed step (String.concat "; " vs));
    (* The positional fit queries agree with the naive linear-scan
       references, tie-breaking included. *)
    check_queries seed step rng !set ivs
  done;
  (* Round-trip: rebuild from the member list; must be identical. *)
  let rebuilt =
    List.fold_left (fun s (lo, hi) -> Iset.add s ~lo ~hi) Iset.empty (Iset.intervals !set)
  in
  Alcotest.(check (list (pair int int)))
    "round-trip through intervals" (Iset.intervals !set) (Iset.intervals rebuilt)

let test_interval_set_model () =
  List.iter (fun seed -> run_interval_set_ops seed 200) [ 11; 22; 33 ]

(* union/subtract algebra on random operand pairs *)
let test_interval_set_algebra () =
  let rng = Rng.create 44 in
  for _ = 1 to 200 do
    let lo1, hi1 = random_range rng and lo2, hi2 = random_range rng in
    let a = Iset.add Iset.empty ~lo:lo1 ~hi:hi1 in
    let ab = Iset.add a ~lo:lo2 ~hi:hi2 in
    (* adding is monotone and bounded by the sum of lengths *)
    Alcotest.(check bool) "union grows" true (Iset.total ab >= Iset.total a);
    Alcotest.(check bool) "union bounded" true
      (Iset.total ab <= Iset.total a + max 0 (hi2 - lo2));
    (* subtracting what was added of the second operand restores the
       first minus any overlap: total is the inclusion-exclusion value *)
    let diff = Iset.remove ab ~lo:lo2 ~hi:hi2 in
    let expected = Iset.total a - (let l = max lo1 lo2 and h = min hi1 hi2 in max 0 (h - l)) in
    Alcotest.(check int) "subtract = inclusion-exclusion" expected (Iset.total diff);
    (* removing everything empties the set *)
    Alcotest.(check bool) "remove all" true
      (Iset.is_empty (Iset.remove ab ~lo:0 ~hi:universe))
  done

(* Adjacency coalescing: the representation keeps maximal runs, so adds
   that touch (but do not overlap) existing members must merge, removes
   must split, and the fit queries must see the merged extents — these
   are exactly the shapes that stress the tree's delete/reinsert path. *)
let test_interval_set_adjacency () =
  let ivs = Iset.intervals in
  let inv name s =
    match Iset.invariants s with
    | [] -> ()
    | vs -> Alcotest.failf "%s: %s" name (String.concat "; " vs)
  in
  let s = Iset.add Iset.empty ~lo:0 ~hi:10 in
  let s = Iset.add s ~lo:10 ~hi:20 in
  inv "right-adjacent" s;
  Alcotest.(check (list (pair int int))) "right-adjacent coalesces" [ (0, 20) ] (ivs s);
  let s = Iset.add s ~lo:30 ~hi:40 in
  let s = Iset.add s ~lo:20 ~hi:30 in
  inv "bridge" s;
  Alcotest.(check (list (pair int int))) "bridging add coalesces all three" [ (0, 40) ] (ivs s);
  (* A fit spanning what used to be three members only exists because
     the seams coalesced. *)
  Alcotest.(check (option int)) "fit across seams" (Some 5)
    (Iset.first_fit_at_or_after s ~pos:5 ~size:30);
  Alcotest.(check (option int)) "window across seams" (Some 8)
    (Iset.fit_in_window s ~lo:8 ~hi:40 ~size:30);
  Alcotest.(check (option int)) "near clamps into merged run" (Some 10)
    (Iset.best_fit_near s ~center:25 ~size:30);
  let s = Iset.remove s ~lo:15 ~hi:25 in
  inv "split" s;
  Alcotest.(check (list (pair int int))) "interior remove splits" [ (0, 15); (25, 40) ] (ivs s);
  Alcotest.(check (option int)) "no fit across the hole" None
    (Iset.fit_in_window s ~lo:0 ~hi:40 ~size:16);
  let s = Iset.add s ~lo:15 ~hi:25 in
  inv "rejoin" s;
  Alcotest.(check (list (pair int int))) "re-add rejoins" [ (0, 40) ] (ivs s);
  let s' = Iset.add s ~lo:7 ~hi:7 in
  Alcotest.(check (list (pair int int))) "empty add is a no-op" (ivs s) (ivs s');
  let s' = Iset.add s ~lo:5 ~hi:35 in
  Alcotest.(check (list (pair int int))) "covered add is idempotent" (ivs s) (ivs s');
  (* Containment respects half-open bounds on a coalesced member. *)
  Alcotest.(check (option (pair int int))) "find_containing at lo" (Some (0, 40))
    (Iset.find_containing s 0);
  Alcotest.(check (option (pair int int))) "find_containing mid" (Some (0, 40))
    (Iset.find_containing s 25);
  Alcotest.(check (option (pair int int))) "find_containing at hi is out" None
    (Iset.find_containing s 40);
  (* of_ranges coalesces overlap and adjacency and drops empties. *)
  let built = Iset.of_ranges [ (10, 20); (0, 10); (25, 25); (15, 22) ] in
  Alcotest.(check (list (pair int int))) "of_ranges coalesces" [ (0, 22) ] (ivs built)

(* -- Memspace vs. allocation model -- *)

let test_memspace_model () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let text_lo = 0x1000 and text_hi = 0x1000 + universe in
      let ms =
        Zipr.Memspace.create ~overflow_cap:4096 ~text_lo ~text_hi
          ~overflow_base:0x100000 ()
      in
      (* model: one flag per text byte, true = free *)
      let free = Array.make universe true in
      let model_free_bytes () = Array.fold_left (fun n b -> if b then n + 1 else n) 0 free in
      let allocated = ref [] in
      for step = 1 to 300 do
        let size = Rng.int_in rng 1 24 in
        match Rng.int rng 3 with
        | 0 -> (
            (* allocate: must return a block that the model says is free,
               and must not overlap any outstanding allocation *)
            match Zipr.Memspace.alloc_text_first ms ~size with
            | None ->
                (* the model must agree there is no run of [size] free bytes *)
                let rec has_run i run =
                  if run >= size then true
                  else if i >= universe then false
                  else if free.(i) then has_run (i + 1) (run + 1)
                  else has_run (i + 1) 0
                in
                if has_run 0 0 then
                  Alcotest.failf "seed %d step %d: alloc failed with %d free run" seed step size
            | Some addr ->
                let off = addr - text_lo in
                if off < 0 || off + size > universe then
                  Alcotest.failf "seed %d step %d: alloc outside text" seed step;
                for i = off to off + size - 1 do
                  if not free.(i) then
                    Alcotest.failf "seed %d step %d: alloc overlaps at %d" seed step i;
                  free.(i) <- false
                done;
                List.iter
                  (fun (lo, hi) ->
                    if addr < hi && addr + size > lo then
                      Alcotest.failf "seed %d step %d: overlapping allocations" seed step)
                  !allocated;
                allocated := (addr, addr + size) :: !allocated)
        | 1 -> (
            (* free a previously allocated block *)
            match !allocated with
            | [] -> ()
            | l ->
                let n = Rng.int rng (List.length l) in
                let lo, hi = List.nth l n in
                Zipr.Memspace.release ms ~lo ~hi;
                for i = lo - text_lo to hi - text_lo - 1 do
                  free.(i) <- true
                done;
                allocated := List.filteri (fun i _ -> i <> n) l)
        | _ ->
            (* conservation + agreement probes *)
            Alcotest.(check int)
              (Printf.sprintf "seed %d step %d free bytes" seed step)
              (model_free_bytes ())
              (Zipr.Memspace.text_free_bytes ms);
            let lo = text_lo + Rng.int rng universe in
            let hi = min text_hi (lo + Rng.int_in rng 1 16) in
            let model_is_free =
              let rec go i = i >= hi - text_lo || (free.(i) && go (i + 1)) in
              go (lo - text_lo)
            in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d step %d is_free [0x%x,0x%x)" seed step lo hi)
              model_is_free
              (Zipr.Memspace.is_free ms ~lo ~hi)
      done;
      (* conservation at the end: allocated + free covers the text span *)
      let outstanding = List.fold_left (fun n (lo, hi) -> n + (hi - lo)) 0 !allocated in
      Alcotest.(check int) "free + allocated = span"
        (universe - outstanding)
        (Zipr.Memspace.text_free_bytes ms))
    [ 5; 6; 7 ]

let suite =
  [
    Alcotest.test_case "interval_set vs model" `Quick test_interval_set_model;
    Alcotest.test_case "interval_set algebra" `Quick test_interval_set_algebra;
    Alcotest.test_case "interval_set adjacency" `Quick test_interval_set_adjacency;
    Alcotest.test_case "memspace vs model" `Quick test_memspace_model;
  ]
