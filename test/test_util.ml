(* Tests for the zipr_util support library. *)

module Rng = Zipr_util.Rng
module Bytebuf = Zipr_util.Bytebuf
module Iset = Zipr_util.Interval_set
module Hex = Zipr_util.Hex
module Histogram = Zipr_util.Histogram
module Stats = Zipr_util.Stats

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    let w = Rng.int_in r 5 9 in
    Alcotest.(check bool) "in closed range" true (w >= 5 && w <= 9)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let test_rng_shuffle_permutation () =
  let r = Rng.create 3 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_bytebuf_roundtrip () =
  let b = Bytebuf.create () in
  Bytebuf.u8 b 0xab;
  Bytebuf.u16 b 0x1234;
  Bytebuf.u32 b 0xdeadbeef;
  Alcotest.(check int) "length" 7 (Bytebuf.length b);
  Alcotest.(check int) "u8" 0xab (Bytebuf.get_u8 b 0);
  Alcotest.(check int) "u32" 0xdeadbeef (Bytebuf.get_u32 b 3)

let test_bytebuf_patch () =
  let b = Bytebuf.create () in
  Bytebuf.u32 b 0;
  Bytebuf.u32 b 0;
  Bytebuf.patch_u32 b 4 0xcafebabe;
  Alcotest.(check int) "patched" 0xcafebabe (Bytebuf.get_u32 b 4);
  Alcotest.(check int) "untouched" 0 (Bytebuf.get_u32 b 0)

let test_bytebuf_patch_out_of_range () =
  let b = Bytebuf.create () in
  Bytebuf.u8 b 1;
  Alcotest.check_raises "patch past end" (Invalid_argument "Bytebuf: position 0+4 out of range [0,1)")
    (fun () -> Bytebuf.patch_u32 b 0 5)

let test_bytebuf_i32_negative () =
  let b = Bytebuf.create () in
  Bytebuf.i32 b (-2);
  Alcotest.(check int) "two's complement" 0xfffffffe (Bytebuf.get_u32 b 0)

let test_iset_add_coalesce () =
  let s = Iset.empty in
  let s = Iset.add s ~lo:10 ~hi:20 in
  let s = Iset.add s ~lo:20 ~hi:30 in
  Alcotest.(check (list (pair int int))) "coalesced" [ (10, 30) ] (Iset.intervals s);
  let s = Iset.add s ~lo:5 ~hi:12 in
  Alcotest.(check (list (pair int int))) "extended" [ (5, 30) ] (Iset.intervals s)

let test_iset_remove_split () =
  let s = Iset.add Iset.empty ~lo:0 ~hi:100 in
  let s = Iset.remove s ~lo:40 ~hi:60 in
  Alcotest.(check (list (pair int int))) "split" [ (0, 40); (60, 100) ] (Iset.intervals s);
  Alcotest.(check int) "total" 80 (Iset.total s)

let test_iset_mem () =
  let s = Iset.add (Iset.add Iset.empty ~lo:0 ~hi:10) ~lo:20 ~hi:30 in
  Alcotest.(check bool) "in first" true (Iset.mem s 5);
  Alcotest.(check bool) "gap" false (Iset.mem s 15);
  Alcotest.(check bool) "boundary lo" true (Iset.mem s 20);
  Alcotest.(check bool) "boundary hi" false (Iset.mem s 30)

let test_iset_contains_range () =
  let s = Iset.add Iset.empty ~lo:10 ~hi:20 in
  Alcotest.(check bool) "inside" true (Iset.contains_range s ~lo:12 ~hi:18);
  Alcotest.(check bool) "exact" true (Iset.contains_range s ~lo:10 ~hi:20);
  Alcotest.(check bool) "spills" false (Iset.contains_range s ~lo:15 ~hi:25)

let test_iset_first_fit () =
  let s = Iset.add (Iset.add Iset.empty ~lo:0 ~hi:4) ~lo:10 ~hi:100 in
  Alcotest.(check (option int)) "skips small gap" (Some 10) (Iset.first_fit s ~size:8);
  Alcotest.(check (option int)) "uses small gap" (Some 0) (Iset.first_fit s ~size:3);
  Alcotest.(check (option int)) "none" None (Iset.first_fit s ~size:1000)

let test_iset_fit_in_window () =
  let s = Iset.add Iset.empty ~lo:50 ~hi:200 in
  Alcotest.(check (option int)) "window hit" (Some 60) (Iset.fit_in_window s ~lo:60 ~hi:80 ~size:10);
  Alcotest.(check (option int)) "window too small" None
    (Iset.fit_in_window s ~lo:60 ~hi:65 ~size:10);
  Alcotest.(check (option int)) "clamped to member" (Some 50)
    (Iset.fit_in_window s ~lo:0 ~hi:100 ~size:10)

let test_iset_best_fit_near () =
  let s = Iset.add (Iset.add Iset.empty ~lo:0 ~hi:20) ~lo:1000 ~hi:1020 in
  Alcotest.(check (option int)) "near low" (Some 10) (Iset.best_fit_near s ~center:10 ~size:5);
  Alcotest.(check (option int)) "near high" (Some 1000) (Iset.best_fit_near s ~center:990 ~size:5)

let test_iset_qcheck_total =
  QCheck.Test.make ~name:"interval add/remove preserves point membership" ~count:500
    QCheck.(
      pair (small_list (pair (int_bound 200) (int_bound 50))) (small_list (pair (int_bound 200) (int_bound 50))))
    (fun (adds, removes) ->
      let model = Array.make 300 false in
      let s = ref Zipr_util.Interval_set.empty in
      List.iter
        (fun (lo, len) ->
          s := Zipr_util.Interval_set.add !s ~lo ~hi:(lo + len);
          for i = lo to lo + len - 1 do
            model.(i) <- true
          done)
        adds;
      List.iter
        (fun (lo, len) ->
          s := Zipr_util.Interval_set.remove !s ~lo ~hi:(lo + len);
          for i = lo to lo + len - 1 do
            model.(i) <- false
          done)
        removes;
      let ok = ref true in
      for i = 0 to 299 do
        if Zipr_util.Interval_set.mem !s i <> model.(i) then ok := false
      done;
      !ok)

let test_hex_roundtrip () =
  let b = Bytes.of_string "\x00\x01\xfe\xff" in
  Alcotest.(check string) "encode" "0001feff" (Hex.of_bytes b);
  Alcotest.(check bytes) "decode" b (Hex.to_bytes "0001feff")

let test_histogram_bins () =
  let h = Histogram.paper_bins () in
  List.iter (Histogram.add h) [ -1.0; 2.0; 3.0; 7.0; 15.0; 30.0; 80.0 ];
  Alcotest.(check (array int)) "bin counts" [| 1; 2; 1; 1; 1; 1 |] (Histogram.counts h);
  Alcotest.(check int) "total" 7 (Histogram.count h)

let test_histogram_labels () =
  let h = Histogram.paper_bins () in
  Alcotest.(check (list string)) "labels"
    [ "< 0%"; "0-5%"; "5-10%"; "10-20%"; "20-50%"; ">= 50%" ]
    (Histogram.labels h)

let test_stats_basics () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "overhead" 50.0 (Stats.overhead_pct ~baseline:2.0 ~measured:3.0);
  Alcotest.(check (float 1e-9)) "overhead zero base" 0.0 (Stats.overhead_pct ~baseline:0.0 ~measured:3.0)

let test_stats_edge_cases () =
  (* Empty inputs never divide by zero. *)
  Alcotest.(check (float 1e-9)) "mean []" 0.0 (Stats.mean []);
  Alcotest.(check (float 1e-9)) "stddev []" 0.0 (Stats.stddev []);
  Alcotest.(check (float 1e-9)) "stddev [x]" 0.0 (Stats.stddev [ 3.0 ]);
  Alcotest.(check (float 1e-9)) "median []" 0.0 (Stats.median []);
  Alcotest.(check (float 1e-9)) "percentile []" 0.0 (Stats.percentile [] 50.0);
  (* Nearest-rank percentile: p=0 clamps to the minimum, p=100 is the
     maximum, and a single element answers every p. *)
  let xs = [ 5.0; 1.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p50 = median elem" 3.0 (Stats.percentile xs 50.0);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "singleton p%g" p)
        7.0
        (Stats.percentile [ 7.0 ] p))
    [ 0.0; 37.5; 100.0 ];
  (* geomean_ratio ignores non-positive pairs instead of poisoning the
     log; all-nonpositive input answers the neutral ratio 1.0. *)
  Alcotest.(check (float 1e-9)) "geomean neutral" 1.0 (Stats.geomean_ratio []);
  Alcotest.(check (float 1e-9)) "geomean skips nonpositive" 2.0
    (Stats.geomean_ratio [ (1.0, 2.0); (0.0, 5.0); (-3.0, 4.0); (2.0, 0.0) ]);
  Alcotest.(check (float 1e-9)) "geomean all nonpositive" 1.0
    (Stats.geomean_ratio [ (0.0, 0.0); (-1.0, -2.0) ])

let test_percentile_qcheck =
  QCheck.Test.make ~name:"percentile is monotone in p and a list member" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 20) (float_bound_inclusive 100.0))
              (list_of_size Gen.(2 -- 6) (float_bound_inclusive 100.0)))
    (fun (xs, ps) ->
      let ps = List.sort compare ps in
      let vals = List.map (Stats.percentile xs) ps in
      let rec monotone = function
        | a :: (b :: _ as tl) -> a <= b && monotone tl
        | _ -> true
      in
      monotone vals && List.for_all (fun v -> List.mem v xs) vals)

let test_histogram_paper_bin_boundaries () =
  (* Boundary samples land in the bin whose label contains them: edges
     are half-open [lo, hi), negatives fall below the first edge. *)
  let h = Histogram.paper_bins () in
  List.iter (Histogram.add h)
    [ -0.0001; 0.0; 4.999; 5.0; 10.0; 20.0; 50.0; 1e9 ];
  Alcotest.(check (array int)) "boundary samples" [| 1; 2; 1; 1; 1; 2 |] (Histogram.counts h);
  Alcotest.(check int) "total" 8 (Histogram.count h)

let test_histogram_bin_qcheck =
  QCheck.Test.make ~name:"histogram bins partition the line" ~count:300
    QCheck.(float_range (-100.0) 200.0)
    (fun x ->
      let h = Histogram.paper_bins () in
      Histogram.add h x;
      let counts = Histogram.counts h in
      let hits = Array.fold_left ( + ) 0 counts in
      (* Exactly one bin, and the right one given the edges. *)
      let edges = [| 0.0; 5.0; 10.0; 20.0; 50.0 |] in
      let expected =
        let rec go i =
          if i >= Array.length edges then i else if x < edges.(i) then i else go (i + 1)
        in
        go 0
      in
      hits = 1 && counts.(expected) = 1)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "bytebuf roundtrip" `Quick test_bytebuf_roundtrip;
    Alcotest.test_case "bytebuf patch" `Quick test_bytebuf_patch;
    Alcotest.test_case "bytebuf patch range" `Quick test_bytebuf_patch_out_of_range;
    Alcotest.test_case "bytebuf i32" `Quick test_bytebuf_i32_negative;
    Alcotest.test_case "interval coalesce" `Quick test_iset_add_coalesce;
    Alcotest.test_case "interval remove" `Quick test_iset_remove_split;
    Alcotest.test_case "interval mem" `Quick test_iset_mem;
    Alcotest.test_case "interval contains_range" `Quick test_iset_contains_range;
    Alcotest.test_case "interval first_fit" `Quick test_iset_first_fit;
    Alcotest.test_case "interval window fit" `Quick test_iset_fit_in_window;
    Alcotest.test_case "interval best_fit_near" `Quick test_iset_best_fit_near;
    QCheck_alcotest.to_alcotest test_iset_qcheck_total;
    Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
    Alcotest.test_case "histogram bins" `Quick test_histogram_bins;
    Alcotest.test_case "histogram labels" `Quick test_histogram_labels;
    Alcotest.test_case "histogram boundaries" `Quick test_histogram_paper_bin_boundaries;
    QCheck_alcotest.to_alcotest test_histogram_bin_qcheck;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "stats edge cases" `Quick test_stats_edge_cases;
    QCheck_alcotest.to_alcotest test_percentile_qcheck;
  ]
