(* Tests for the IR-cache stack: the exact IRDB codec, IR snapshot /
   restore, the content-addressed store (memory LRU + disk layer), and
   cache-served pipeline/corpus rewrites (counted, byte-identical). *)

module Cache = Irdb.Cache
module Db = Irdb.Db
module Ir = Zipr.Ir_construction
module Corpus = Parallel.Corpus

let transforms = [ Transforms.Null.transform ]

let named_binaries () =
  [
    ("fib", fst (Testprogs.assemble (Testprogs.fib_program ())));
    ("dispatch", fst (Testprogs.assemble (Testprogs.dispatch_program ())));
    ("island", fst (Testprogs.island_binary ()));
    ("dense-pins", fst (Testprogs.assemble (Testprogs.dense_pins_program ())));
  ]

(* -- exact IRDB codec -- *)

let test_exact_dump_roundtrip () =
  List.iter
    (fun (name, binary) ->
      let ir = Ir.build binary in
      let dump = Irdb.Dump.serialize_exact ir.Ir.db in
      match Irdb.Dump.deserialize_exact ~orig:binary dump with
      | Error e -> Alcotest.failf "%s: deserialize_exact: %s" name e
      | Ok db2 ->
          Alcotest.(check (list string)) (name ^ ": restored db validates") [] (Db.validate db2);
          Alcotest.(check int) (name ^ ": row count") (Db.count ir.Ir.db) (Db.count db2);
          Alcotest.(check string) (name ^ ": codec is a fixed point") dump
            (Irdb.Dump.serialize_exact db2))
    (named_binaries ())

(* -- IR snapshot / restore -- *)

let test_snapshot_roundtrip () =
  List.iter
    (fun (name, binary) ->
      let ir = Ir.build binary in
      let snap = Ir.snapshot ir in
      match Ir.restore binary snap with
      | Error e -> Alcotest.failf "%s: restore: %s" name e
      | Ok ir2 ->
          Alcotest.(check string) (name ^ ": snapshot fixed point") snap (Ir.snapshot ir2);
          Alcotest.(check (list string)) (name ^ ": restored db validates") []
            (Db.validate ir2.Ir.db);
          Alcotest.(check bool) (name ^ ": fixed ranges") true
            (ir2.Ir.fixed_ranges = ir.Ir.fixed_ranges);
          Alcotest.(check bool) (name ^ ": data ranges") true
            (ir2.Ir.data_ranges = ir.Ir.data_ranges);
          Alcotest.(check bool) (name ^ ": warnings") true (ir2.Ir.warnings = ir.Ir.warnings);
          Alcotest.(check bool) (name ^ ": pins") true
            (Db.pinned_addresses ir2.Ir.db = Db.pinned_addresses ir.Ir.db))
    (named_binaries ())

let test_restore_rejects_garbage () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let reject name payload =
    match Ir.restore binary payload with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s unexpectedly restored" name
  in
  reject "empty" "";
  reject "wrong version" "ZIRIR0\nB 0 0\n";
  let snap = Ir.snapshot (Ir.build binary) in
  reject "truncated" (String.sub snap 0 (String.length snap / 2))

(* -- the content-addressed store itself -- *)

let test_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.store c ~key:"k1" "v1";
  Cache.store c ~key:"k2" "v2";
  Alcotest.(check (option string)) "k1 present" (Some "v1") (Cache.find c "k1");
  (* k1 was just used, so a third entry evicts k2. *)
  Cache.store c ~key:"k3" "v3";
  Alcotest.(check int) "capacity respected" 2 (Cache.mem_entries c);
  Alcotest.(check (option string)) "k1 survives (recently used)" (Some "v1") (Cache.find c "k1");
  Alcotest.(check (option string)) "k2 evicted" None (Cache.find c "k2");
  Alcotest.(check (option string)) "k3 present" (Some "v3") (Cache.find c "k3")

let test_disk_layer () =
  let dir =
    let f = Filename.temp_file "zipr_cache" "" in
    Sys.remove f;
    f
  in
  let key = Cache.key [ "disk"; "layer" ] in
  let c1 = Cache.create ~dir () in
  Alcotest.(check (option string)) "miss before store" None (Cache.find c1 key);
  Cache.store c1 ~key "payload-bytes";
  (* A fresh store over the same directory sees the entry: memory is
     empty, the disk layer hits. *)
  let c2 = Cache.create ~dir () in
  Alcotest.(check (option string)) "disk hit" (Some "payload-bytes") (Cache.find c2 key);
  (* Corrupt every entry file: the framed key no longer matches, so the
     entry reads back as a miss, never as a wrong payload. *)
  Array.iter
    (fun f ->
      let oc = open_out_bin (Filename.concat dir f) in
      output_string oc "ZIRCACHE1 not-the-key\ngarbage";
      close_out oc)
    (Sys.readdir dir);
  let c3 = Cache.create ~dir () in
  Alcotest.(check (option string)) "corrupt entry is a miss" None (Cache.find c3 key)

let test_key_sensitivity () =
  let fib, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let disp, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let conservative = { Analysis.Ibt.pin_after_calls = true } in
  let lax = { Analysis.Ibt.pin_after_calls = false } in
  let k = Zipr.Pipeline.ir_cache_key ~infer:false in
  Alcotest.(check string) "key is deterministic"
    (k ~pin_config:conservative fib)
    (k ~pin_config:conservative fib);
  Alcotest.(check bool) "pin config changes the key" true
    (k ~pin_config:conservative fib <> k ~pin_config:lax fib);
  Alcotest.(check bool) "input bytes change the key" true
    (k ~pin_config:conservative fib <> k ~pin_config:conservative disp);
  Alcotest.(check bool) "inference switch changes the key" true
    (k ~pin_config:conservative fib
    <> Zipr.Pipeline.ir_cache_key ~infer:true ~pin_config:conservative fib)

(* -- cache-served rewrites -- *)

let test_pipeline_cache_counts () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let baseline = Zipr.Pipeline.rewrite ~transforms binary in
  let cache = Cache.create () in
  let cold = Zipr.Pipeline.rewrite ~ir_cache:cache ~transforms binary in
  let warm = Zipr.Pipeline.rewrite ~ir_cache:cache ~transforms binary in
  Alcotest.(check bool) "no cache means no counts" true
    (baseline.Zipr.Pipeline.cache = Zipr.Pipeline.zero_cache_stats);
  Alcotest.(check bool) "cold run is a miss" true
    (cold.Zipr.Pipeline.cache
    = { Zipr.Pipeline.zero_cache_stats with Zipr.Pipeline.ir_cache_misses = 1 });
  Alcotest.(check bool) "warm run is a hit" true
    (warm.Zipr.Pipeline.cache
    = { Zipr.Pipeline.zero_cache_stats with Zipr.Pipeline.ir_cache_hits = 1 });
  let bytes_of (r : Zipr.Pipeline.result) = Zelf.Binary.serialize r.Zipr.Pipeline.rewritten in
  Alcotest.(check bool) "miss output byte-identical to uncached" true
    (Bytes.equal (bytes_of baseline) (bytes_of cold));
  Alcotest.(check bool) "hit output byte-identical to uncached" true
    (Bytes.equal (bytes_of baseline) (bytes_of warm))

let test_corpus_warm_hits () =
  let items =
    List.filter_map
      (fun (name, b) ->
        if name = "dense-pins" then None
        else Some { Corpus.name; data = Zelf.Binary.serialize b })
      (named_binaries ())
  in
  let n = List.length items in
  let outputs (r : Corpus.report) =
    List.map
      (fun (e : Corpus.entry) ->
        match e.Corpus.result with
        | Ok o -> o.Corpus.rewritten
        | Error e -> Alcotest.failf "rewrite failed: %s" e)
      r.Corpus.entries
  in
  let baseline = Corpus.rewrite_all ~jobs:1 ~transforms ~corpus_seed:5 items in
  let cache = Cache.create () in
  let cold = Corpus.rewrite_all ~jobs:1 ~transforms ~ir_cache:cache ~corpus_seed:5 items in
  Alcotest.(check int) "cold run misses every item" n
    cold.Corpus.merged_cache.Zipr.Pipeline.ir_cache_misses;
  Alcotest.(check bool) "cold outputs byte-identical to uncached" true
    (List.for_all2 Bytes.equal (outputs baseline) (outputs cold));
  List.iter
    (fun jobs ->
      let warm = Corpus.rewrite_all ~jobs ~transforms ~ir_cache:cache ~corpus_seed:5 items in
      Alcotest.(check int)
        (Printf.sprintf "jobs %d: every item served from cache" jobs)
        n warm.Corpus.merged_cache.Zipr.Pipeline.ir_cache_hits;
      Alcotest.(check int) (Printf.sprintf "jobs %d: no misses" jobs) 0
        warm.Corpus.merged_cache.Zipr.Pipeline.ir_cache_misses;
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d: warm outputs byte-identical to uncached" jobs)
        true
        (List.for_all2 Bytes.equal (outputs baseline) (outputs warm)))
    [ 1; 4 ]

(* -- byte-budget LRU: the serve daemon's multi-tenant cache bound.
      Entry cost is key + payload bytes; the invariants pinned here are
      (a) resident_bytes never exceeds the budget, (b) eviction follows
      recency, (c) replacement does not double-count, (d) an entry
      larger than the whole budget is refused outright. -- *)

let k8 c = String.make 8 c
let pay n = String.make n 'p'

let test_budget_invariant () =
  (* Entries cost 8 (key) + 92 (payload) = 100 bytes; a 250-byte budget
     holds two. *)
  let c = Cache.create ~capacity:64 ~max_bytes:250 () in
  Cache.store c ~key:(k8 'a') (pay 92);
  Cache.store c ~key:(k8 'b') (pay 92);
  Alcotest.(check int) "two resident" 2 (Cache.mem_entries c);
  Alcotest.(check int) "200 bytes resident" 200 (Cache.resident_bytes c);
  Cache.store c ~key:(k8 'c') (pay 92);
  Alcotest.(check int) "still two resident" 2 (Cache.mem_entries c);
  Alcotest.(check bool) "budget holds" true (Cache.resident_bytes c <= 250);
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  Alcotest.(check bool) "oldest (a) evicted" true (Cache.find c (k8 'a') = None);
  Alcotest.(check bool) "b survives" true (Cache.find c (k8 'b') <> None);
  Alcotest.(check bool) "newcomer resident" true (Cache.find c (k8 'c') <> None)

let test_budget_eviction_order () =
  let c = Cache.create ~capacity:64 ~max_bytes:250 () in
  Cache.store c ~key:(k8 'a') (pay 92);
  Cache.store c ~key:(k8 'b') (pay 92);
  (* Touch [a]: now [b] is least recently used and must be the victim. *)
  ignore (Cache.find c (k8 'a'));
  Cache.store c ~key:(k8 'c') (pay 92);
  Alcotest.(check bool) "recently-used a survives" true (Cache.find c (k8 'a') <> None);
  Alcotest.(check bool) "lru b evicted" true (Cache.find c (k8 'b') = None)

let test_budget_replacement_accounting () =
  let c = Cache.create ~capacity:64 ~max_bytes:1000 () in
  Cache.store c ~key:(k8 'a') (pay 492);
  Alcotest.(check int) "500 resident" 500 (Cache.resident_bytes c);
  Cache.store c ~key:(k8 'a') (pay 92);
  Alcotest.(check int) "replacement, not accumulation" 100 (Cache.resident_bytes c);
  Alcotest.(check int) "one entry" 1 (Cache.mem_entries c);
  Cache.store c ~key:(k8 'a') (pay 492);
  Alcotest.(check int) "grown back in place" 500 (Cache.resident_bytes c);
  Alcotest.(check int) "no evictions for self-replacement" 0 (Cache.evictions c)

let test_budget_oversize_refused () =
  let c = Cache.create ~capacity:64 ~max_bytes:250 () in
  Cache.store c ~key:(k8 'a') (pay 92);
  (* 8 + 400 > 250: refusing it must not evict the resident entry. *)
  Cache.store c ~key:(k8 'z') (pay 400);
  Alcotest.(check bool) "oversize entry absent" true (Cache.find c (k8 'z') = None);
  Alcotest.(check int) "oversize counted" 1 (Cache.oversize_skips c);
  Alcotest.(check int) "no eviction" 0 (Cache.evictions c);
  Alcotest.(check bool) "resident entry untouched" true (Cache.find c (k8 'a') <> None)

let test_budget_many_inserts_hold_invariant () =
  let c = Cache.create ~capacity:1000 ~max_bytes:1024 () in
  for i = 0 to 199 do
    let key = Cache.key [ string_of_int i ] in
    Cache.store c ~key (pay (17 + (i * 13 mod 100)));
    Alcotest.(check bool)
      (Printf.sprintf "budget holds after insert %d" i)
      true
      (Cache.resident_bytes c <= 1024)
  done;
  Alcotest.(check bool) "evictions happened" true (Cache.evictions c > 0);
  Alcotest.(check bool) "still serving hits" true
    (Cache.find c (Cache.key [ "199" ]) <> None)

(* Hammer the byte-budget LRU from 4 domains through the worker pool:
   each worker stores and reads back many varied-size entries against one
   shared cache, sampling [resident_bytes] as it goes.  The budget must
   hold at every sample and after the join — the mutex makes
   evict-then-insert atomic, so no interleaving can overshoot. *)
let test_budget_concurrent_hammer () =
  let budget = 4096 in
  let c = Cache.create ~capacity:10_000 ~max_bytes:budget () in
  let work w =
    let violations = ref 0 in
    for i = 0 to 299 do
      let key = Cache.key [ string_of_int w; string_of_int i ] in
      Cache.store c ~key (pay (33 + ((w * 977) + (i * 131)) mod 700));
      ignore (Cache.find c key);
      if Cache.resident_bytes c > budget then incr violations
    done;
    !violations
  in
  let timed, _, _ = Parallel.Pool.map ~jobs:4 work [| 0; 1; 2; 3 |] in
  let violations = Array.fold_left (fun acc t -> acc + t.Parallel.Pool.value) 0 timed in
  Alcotest.(check int) "no budget violation observed by any domain" 0 violations;
  Alcotest.(check bool) "budget holds after join" true (Cache.resident_bytes c <= budget);
  Alcotest.(check bool) "churn forced evictions" true (Cache.evictions c > 0)

(* -- disk-layer bounds (serve's shared --cache-dir must not grow without
      limit across daemon restarts) -- *)

let fresh_dir () =
  let f = Filename.temp_file "zipr_cache" "" in
  Sys.remove f;
  f

let zirc_files dir =
  Sys.readdir dir |> Array.to_list |> List.filter (fun f -> Filename.check_suffix f ".zirc")

let test_disk_entry_bound () =
  let dir = fresh_dir () in
  let c = Cache.create ~dir ~max_disk_entries:5 () in
  for i = 0 to 19 do
    Cache.store c ~key:(Cache.key [ "de"; string_of_int i ]) (pay 50)
  done;
  Alcotest.(check int) "at most 5 entry files" 5 (List.length (zirc_files dir));
  Alcotest.(check int) "15 pruned" 15 (Cache.disk_evictions c);
  Alcotest.(check bool) "newest entry still served from disk" true
    (Cache.find (Cache.create ~dir ()) (Cache.key [ "de"; "19" ]) <> None)

let test_disk_byte_bound () =
  let dir = fresh_dir () in
  (* Entry files carry framing overhead beyond the 100-byte payload, so
     bound by a generous per-entry estimate and assert the real total. *)
  let c = Cache.create ~dir ~max_disk_bytes:1024 () in
  for i = 0 to 19 do
    Cache.store c ~key:(Cache.key [ "db"; string_of_int i ]) (pay 100)
  done;
  let total =
    List.fold_left
      (fun acc f -> acc + (Unix.stat (Filename.concat dir f)).Unix.st_size)
      0 (zirc_files dir)
  in
  Alcotest.(check bool)
    (Printf.sprintf "disk bytes bounded (%d <= 1024)" total)
    true (total <= 1024);
  Alcotest.(check bool) "pruning happened" true (Cache.disk_evictions c > 0)

let suite =
  [
    Alcotest.test_case "exact IRDB codec round-trips" `Quick test_exact_dump_roundtrip;
    Alcotest.test_case "IR snapshot/restore round-trips" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "restore rejects malformed payloads" `Quick test_restore_rejects_garbage;
    Alcotest.test_case "LRU eviction respects capacity and recency" `Quick test_lru_eviction;
    Alcotest.test_case "byte budget: eviction keeps resident <= budget" `Quick
      test_budget_invariant;
    Alcotest.test_case "byte budget: eviction follows recency" `Quick test_budget_eviction_order;
    Alcotest.test_case "byte budget: replacement does not double-count" `Quick
      test_budget_replacement_accounting;
    Alcotest.test_case "byte budget: oversize payloads are refused" `Quick
      test_budget_oversize_refused;
    Alcotest.test_case "byte budget: invariant holds under churn" `Quick
      test_budget_many_inserts_hold_invariant;
    Alcotest.test_case "byte budget: holds under 4-domain hammer" `Slow
      test_budget_concurrent_hammer;
    Alcotest.test_case "disk layer: entry-count bound prunes oldest" `Quick
      test_disk_entry_bound;
    Alcotest.test_case "disk layer: byte bound prunes oldest" `Quick test_disk_byte_bound;
    Alcotest.test_case "disk layer round-trips; corruption is a miss" `Quick test_disk_layer;
    Alcotest.test_case "cache key tracks version, config, input" `Quick test_key_sensitivity;
    Alcotest.test_case "pipeline counts hits/misses, outputs identical" `Quick
      test_pipeline_cache_counts;
    Alcotest.test_case "corpus warm runs hit for every item (jobs 1/4)" `Slow
      test_corpus_warm_hits;
  ]
