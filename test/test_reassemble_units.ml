(* Unit tests for the reassembly building blocks: memspace, dollops,
   sleds. *)

module Insn = Zvm.Insn
module Reg = Zvm.Reg
module Db = Irdb.Db

(* -- Memspace -- *)

let mk_space () = Zipr.Memspace.create ~text_lo:0x1000 ~text_hi:0x2000 ~overflow_base:0x10000 ()

let test_memspace_reserve_release () =
  let sp = mk_space () in
  Alcotest.(check bool) "initially free" true (Zipr.Memspace.is_free sp ~lo:0x1000 ~hi:0x1100);
  Zipr.Memspace.reserve sp ~lo:0x1000 ~hi:0x1100;
  Alcotest.(check bool) "reserved" false (Zipr.Memspace.is_free sp ~lo:0x1000 ~hi:0x1004);
  Zipr.Memspace.release sp ~lo:0x1000 ~hi:0x1100;
  Alcotest.(check bool) "released" true (Zipr.Memspace.is_free sp ~lo:0x1000 ~hi:0x1100)

let test_memspace_text_first_and_overflow () =
  let sp = mk_space () in
  (match Zipr.Memspace.alloc_text_first sp ~size:0x800 with
  | Some a -> Alcotest.(check int) "low text" 0x1000 a
  | None -> Alcotest.fail "alloc failed");
  (* Fill the rest of text. *)
  (match Zipr.Memspace.alloc_text_first sp ~size:0x800 with
  | Some a -> Alcotest.(check int) "rest" 0x1800 a
  | None -> Alcotest.fail "alloc failed");
  Alcotest.(check (option int)) "text exhausted" None (Zipr.Memspace.alloc_text_first sp ~size:16);
  (* first-fit falls through to the overflow region *)
  let a = Zipr.Memspace.alloc_first sp ~size:16 in
  Alcotest.(check bool) "overflow used" true (a >= 0x10000)

let test_memspace_window_and_near () =
  let sp = mk_space () in
  Zipr.Memspace.reserve sp ~lo:0x1000 ~hi:0x1800;
  (match Zipr.Memspace.alloc_in_window sp ~lo:0x1700 ~hi:0x1900 ~size:8 with
  | Some a -> Alcotest.(check bool) "window respected" true (a >= 0x1800 && a + 8 <= 0x1900)
  | None -> Alcotest.fail "window alloc failed");
  match Zipr.Memspace.alloc_near sp ~center:0x1810 ~size:8 with
  | Some a -> Alcotest.(check bool) "near center" true (abs (a - 0x1810) < 64)
  | None -> Alcotest.fail "near alloc failed"

let test_memspace_gaps_accounting () =
  let sp = mk_space () in
  Zipr.Memspace.reserve sp ~lo:0x1100 ~hi:0x1200;
  Alcotest.(check int) "free bytes" (0x1000 - 0x100) (Zipr.Memspace.text_free_bytes sp);
  Alcotest.(check (list (pair int int))) "gaps"
    [ (0x1000, 0x1100); (0x1200, 0x2000) ]
    (Zipr.Memspace.text_gaps sp)

(* -- Dollop -- *)

let db_with_chain insns =
  let binary =
    Zelf.Binary.create ~entry:0x1000
      [ Zelf.Section.make ~name:".text" ~kind:Zelf.Section.Text ~vaddr:0x1000 (Bytes.make 16 '\x90') ]
  in
  let db = Db.create ~orig:binary () in
  let head = Db.append_chain db insns in
  (db, head)

let test_dollop_natural_end () =
  let db, head = db_with_chain Insn.[ Movi (Reg.R0, 1); Nop; Ret ] in
  let d = Zipr.Dollop.build db ~has_home:(fun _ -> false) head in
  Alcotest.(check int) "rows" 3 (List.length d.Zipr.Dollop.rows);
  Alcotest.(check bool) "natural" true (d.Zipr.Dollop.ending = Zipr.Dollop.Natural);
  Alcotest.(check int) "size" (6 + 1 + 1) (Zipr.Dollop.size db d)

let test_dollop_connector_to_placed () =
  let db, head = db_with_chain Insn.[ Movi (Reg.R0, 1); Nop; Ret ] in
  (* Pretend the second row is already placed. *)
  let second =
    match (Db.row db head).Db.fallthrough with Some s -> s | None -> Alcotest.fail "chain"
  in
  let d = Zipr.Dollop.build db ~has_home:(fun id -> id = second) head in
  Alcotest.(check int) "one row" 1 (List.length d.Zipr.Dollop.rows);
  Alcotest.(check bool) "connector" true (d.Zipr.Dollop.ending = Zipr.Dollop.Connect second);
  Alcotest.(check int) "size includes connector" (6 + 5) (Zipr.Dollop.size db d)

let test_dollop_layout_keeps_short_loop () =
  (* cmp; jne -2ish backward loop: the branch targets inside the dollop,
     so relaxation must keep it short. *)
  let db, head = db_with_chain Insn.[ Cmpi (Reg.R0, 0); Jcc (Zvm.Cond.Ne, Insn.Near, 0); Ret ] in
  let jcc =
    match (Db.row db head).Db.fallthrough with Some s -> s | None -> Alcotest.fail "chain"
  in
  Db.set_target db jcc (Some head);
  let d = Zipr.Dollop.build db ~has_home:(fun _ -> false) head in
  let placed, total = Zipr.Dollop.layout db d in
  let jcc_placed = List.find (fun p -> p.Zipr.Dollop.row = jcc) placed in
  Alcotest.(check bool) "short form chosen" true
    (match jcc_placed.Zipr.Dollop.form with
    | Insn.Jcc (_, Insn.Short, _) -> true
    | _ -> false);
  Alcotest.(check bool) "internal" true jcc_placed.Zipr.Dollop.internal;
  Alcotest.(check int) "total size" (6 + 2 + 1) total

let test_dollop_layout_widens_far_branches () =
  (* A backward branch over > 127 bytes of body must become near form. *)
  let body = List.init 30 (fun _ -> Insn.Movi (Reg.R7, 0)) in
  let db, head = db_with_chain ((Insn.Cmpi (Reg.R0, 0) :: body) @ Insn.[ Jcc (Zvm.Cond.Ne, Insn.Near, 0); Ret ]) in
  (* find the jcc row: walk the chain *)
  let rec walk id =
    let r = Db.row db id in
    match r.Db.insn with
    | Insn.Jcc _ -> id
    | _ -> ( match r.Db.fallthrough with Some n -> walk n | None -> Alcotest.fail "no jcc")
  in
  let jcc = walk head in
  Db.set_target db jcc (Some head);
  let d = Zipr.Dollop.build db ~has_home:(fun _ -> false) head in
  let placed, _ = Zipr.Dollop.layout db d in
  let jcc_placed = List.find (fun p -> p.Zipr.Dollop.row = jcc) placed in
  Alcotest.(check bool) "near form chosen" true
    (match jcc_placed.Zipr.Dollop.form with
    | Insn.Jcc (_, Insn.Near, _) -> true
    | _ -> false)

let test_dollop_split_fits_capacity () =
  let db, head = db_with_chain (List.init 10 (fun i -> Insn.Movi (Reg.R0, i)) @ [ Insn.Ret ]) in
  let d = Zipr.Dollop.build db ~has_home:(fun _ -> false) head in
  match Zipr.Dollop.split_to_fit db d ~capacity:20 with
  | Some (prefix, rest_head) ->
      Alcotest.(check bool) "prefix fits" true (Zipr.Dollop.size db prefix <= 20);
      Alcotest.(check bool) "prefix connects to rest" true
        (prefix.Zipr.Dollop.ending = Zipr.Dollop.Connect rest_head)
  | None -> Alcotest.fail "split failed"

let test_dollop_split_never_after_call () =
  (* capacity chosen so the greedy split point lands right after the call;
     the splitter must back off. *)
  let db, head =
    db_with_chain Insn.[ Movi (Reg.R0, 1); Call 0; Retland; Movi (Reg.R1, 2); Ret ]
  in
  let d = Zipr.Dollop.build db ~has_home:(fun _ -> false) head in
  (* movi(6) + call(5) + connector(5) = 16: greedy prefix would be
     [movi; call]. *)
  match Zipr.Dollop.split_to_fit db d ~capacity:16 with
  | Some (prefix, _) ->
      let last = List.nth prefix.Zipr.Dollop.rows (List.length prefix.Zipr.Dollop.rows - 1) in
      Alcotest.(check bool) "last row is not a call" true
        (match (Db.row db last).Db.insn with Insn.Call _ | Insn.Callr _ -> false | _ -> true)
  | None -> ()  (* refusing to split at all is also sound *)

(* -- Sled -- *)

let test_sled_pair () =
  let db, _ = db_with_chain [ Insn.Ret ] in
  let r0 = Db.add_insn db Insn.Nop and r1 = Db.add_insn db Insn.Ret in
  let sled = Zipr.Sled.plan ~pins:[ (0x1000, r0); (0x1001, r1) ] in
  Alcotest.(check int) "starts at first pin" 0x1000 sled.Zipr.Sled.start;
  Alcotest.(check int) "two entries" 2 (List.length sled.Zipr.Sled.entries);
  (* Both pin bytes are the push opcode. *)
  Alcotest.(check int) "byte 0" 0x68 (Char.code (Bytes.get sled.Zipr.Sled.body 0));
  Alcotest.(check int) "byte 1" 0x68 (Char.code (Bytes.get sled.Zipr.Sled.body 1));
  (* Entries' top words must be distinct. *)
  let tops = List.map (fun e -> List.hd e.Zipr.Sled.words) sled.Zipr.Sled.entries in
  Alcotest.(check int) "distinct tops" 2 (List.length (List.sort_uniq compare tops));
  Alcotest.(check bool) "footprint sane" true
    (Zipr.Sled.reserved_end sled = sled.Zipr.Sled.jmp_at + 5)

let test_sled_triple_with_gap () =
  (* pins at +0, +1, +8: the third is absorbed because it sits inside the
     pair's footprint; its chain initially merges and the planner must
     still separate signatures. *)
  let db, _ = db_with_chain [ Insn.Ret ] in
  let r0 = Db.add_insn db Insn.Nop in
  let r1 = Db.add_insn db Insn.Nop in
  let r2 = Db.add_insn db Insn.Ret in
  let sled = Zipr.Sled.plan ~pins:[ (0x1000, r0); (0x1001, r1); (0x1008, r2) ] in
  Alcotest.(check int) "three entries" 3 (List.length sled.Zipr.Sled.entries);
  (* Discriminability invariant: within any top-collision group, all
     depths >= 2 and second words distinct. *)
  let tops = List.map (fun e -> List.hd e.Zipr.Sled.words) sled.Zipr.Sled.entries in
  List.iter
    (fun top ->
      let group = List.filter (fun e -> List.hd e.Zipr.Sled.words = top) sled.Zipr.Sled.entries in
      if List.length group > 1 then begin
        List.iter
          (fun e -> Alcotest.(check bool) "depth >= 2" true (Zipr.Sled.depth e >= 2))
          group;
        let seconds = List.map (fun e -> List.nth e.Zipr.Sled.words 1) group in
        Alcotest.(check int) "distinct seconds" (List.length group)
          (List.length (List.sort_uniq compare seconds))
      end)
    (List.sort_uniq compare tops)

let test_sled_single_pin_rejected () =
  let db, _ = db_with_chain [ Insn.Ret ] in
  let r0 = Db.add_insn db Insn.Nop in
  Alcotest.(check bool) "invalid" true
    (try
       ignore (Zipr.Sled.plan ~pins:[ (0x1000, r0) ]);
       false
     with Invalid_argument _ -> true)

let test_sled_body_simulates_everywhere () =
  (* Every entry's simulated path must terminate with at least one pushed
     word — re-verified here through the public entry data. *)
  let db, _ = db_with_chain [ Insn.Ret ] in
  let rows = List.init 3 (fun _ -> Db.add_insn db Insn.Nop) in
  let pins = List.mapi (fun i r -> (0x2000 + i, r)) rows in
  let sled = Zipr.Sled.plan ~pins in
  List.iter
    (fun e -> Alcotest.(check bool) "pushes" true (Zipr.Sled.depth e >= 1))
    sled.Zipr.Sled.entries

(* -- Reassembly layout and allocator accounting -- *)

(* The single-pass layout contract: sizing and emission share one
   [Dollop.layout] result, so the count of layouts run is exactly one per
   placed dollop plus one per split prefix — under every strategy.  Also
   pins down determinism: two rewrites of the same workload with the same
   seed are byte-identical, which is what licenses swapping the allocator
   implementation underneath. *)
let test_one_layout_per_dollop_and_determinism () =
  let w = Workloads.Synthetic.libc_like ~tests:1 () in
  List.iter
    (fun (strategy : Zipr.Placement.t) ->
      let config = { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = strategy } in
      let run () =
        Zipr.Pipeline.rewrite ~config ~transforms:[ Transforms.Null.transform ]
          w.Workloads.Synthetic.binary
      in
      let r1 = run () and r2 = run () in
      let s = r1.Zipr.Pipeline.stats in
      let name = strategy.Zipr.Placement.name in
      Alcotest.(check int)
        (name ^ ": one layout per placed or split dollop")
        (s.Zipr.Reassemble.dollops_placed + s.Zipr.Reassemble.dollops_split)
        s.Zipr.Reassemble.layouts_computed;
      Alcotest.(check bool) (name ^ ": allocator was queried") true
        (s.Zipr.Reassemble.alloc_queries > 0);
      Alcotest.(check bool) (name ^ ": hits bounded by queries") true
        (s.Zipr.Reassemble.alloc_hits <= s.Zipr.Reassemble.alloc_queries);
      Alcotest.(check string) (name ^ ": rewrite is deterministic")
        (Digest.to_hex (Digest.bytes (Zelf.Binary.serialize r1.Zipr.Pipeline.rewritten)))
        (Digest.to_hex (Digest.bytes (Zelf.Binary.serialize r2.Zipr.Pipeline.rewritten))))
    [
      Zipr.Placement.naive;
      Zipr.Placement.optimized;
      Zipr.Placement.random;
      Zipr.Placement.search ();
    ]

(* The drain-cache must be live, not vestigial: on the fragmentation-heavy
   workload the optimized strategy splits dollops to fill fragments, and
   every split precomputes its remainder's layout — which the prefix's
   connector reference then demands, hitting the cache.  A stale cached
   remainder (a row placed first by another reference) costs one extra
   layout, so the identity is bounded rather than exact here. *)
let test_split_remainders_reuse_layouts () =
  let w = Workloads.Synthetic.frag_like ~tests:1 () in
  let r =
    Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ]
      w.Workloads.Synthetic.binary
  in
  let s = r.Zipr.Pipeline.stats in
  Alcotest.(check bool) "workload splits dollops" true (s.Zipr.Reassemble.dollops_split > 0);
  Alcotest.(check bool) "drain cache served reuses" true (s.Zipr.Reassemble.layout_reuses > 0);
  Alcotest.(check bool) "reuses bounded by splits" true
    (s.Zipr.Reassemble.layout_reuses <= s.Zipr.Reassemble.dollops_split);
  Alcotest.(check bool) "layouts within stale bound" true
    (s.Zipr.Reassemble.layouts_computed >= s.Zipr.Reassemble.dollops_placed
    && s.Zipr.Reassemble.layouts_computed
       <= s.Zipr.Reassemble.dollops_placed + (2 * s.Zipr.Reassemble.dollops_split))

let suite =
  [
    Alcotest.test_case "memspace reserve/release" `Quick test_memspace_reserve_release;
    Alcotest.test_case "memspace text/overflow" `Quick test_memspace_text_first_and_overflow;
    Alcotest.test_case "memspace window/near" `Quick test_memspace_window_and_near;
    Alcotest.test_case "memspace gaps" `Quick test_memspace_gaps_accounting;
    Alcotest.test_case "dollop natural" `Quick test_dollop_natural_end;
    Alcotest.test_case "dollop connector" `Quick test_dollop_connector_to_placed;
    Alcotest.test_case "dollop short loop" `Quick test_dollop_layout_keeps_short_loop;
    Alcotest.test_case "dollop far branch" `Quick test_dollop_layout_widens_far_branches;
    Alcotest.test_case "dollop split" `Quick test_dollop_split_fits_capacity;
    Alcotest.test_case "dollop split avoids call" `Quick test_dollop_split_never_after_call;
    Alcotest.test_case "sled pair" `Quick test_sled_pair;
    Alcotest.test_case "sled triple merge" `Quick test_sled_triple_with_gap;
    Alcotest.test_case "sled single rejected" `Quick test_sled_single_pin_rejected;
    Alcotest.test_case "sled simulation" `Quick test_sled_body_simulates_everywhere;
    Alcotest.test_case "one layout per dollop, deterministic" `Quick
      test_one_layout_per_dollop_and_determinism;
    Alcotest.test_case "split remainders reuse cached layouts" `Quick
      test_split_remainders_reuse_layouts;
  ]
