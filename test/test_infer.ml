(* The inference refiner (Disasm.Infer): soundness against the primary
   sources, refinement monotonicity, the static termination bound,
   byte-identity with the refiner off, composition with the delta cache
   and the parallel IR builder, and the differential soundness gate over
   the adversarial corpus. *)

module Agg = Disasm.Aggregate
module Infer = Disasm.Infer
module Adv = Workloads.Adversarial

let transforms = [ Transforms.Null.transform ]

let rewrite ?routine_cache ?(infer = false) ?(ir_jobs = 1) binary =
  let config = { Zipr.Pipeline.default_config with Zipr.Pipeline.infer; ir_jobs } in
  match Zipr.Pipeline.try_rewrite ?routine_cache ~config ~transforms binary with
  | Ok r -> r
  | Error m -> Alcotest.failf "rewrite failed: %s" m

let out (r : Zipr.Pipeline.result) = Zelf.Binary.serialize r.Zipr.Pipeline.rewritten

(* The corpus a property samples from: every adversarial class plus the
   libc-like stand-in, each at a handful of seeds. *)
let classes =
  [|
    (fun seed -> Workloads.Synthetic.libc_like ~seed ~tests:0 ());
    (fun seed -> Adv.overlap_trap ~seed ~tests:0 ());
    (fun seed -> Adv.flattened_dispatch ~seed ~tests:0 ());
    (fun seed -> Adv.masked_dispatch ~seed ~tests:0 ());
    (fun seed -> Adv.opaque_dispatch ~seed ~tests:0 ());
    (fun seed -> Adv.dense_islands ~seed ~tests:0 ());
  |]

let spec_of (cls, seed) = classes.(cls mod Array.length classes) (101 + seed)

let gen_case =
  QCheck.(
    make
      ~print:(fun (c, s) -> Printf.sprintf "class %d seed %d" c s)
      Gen.(pair (0 -- 5) (0 -- 4)))

(* -- soundness: the refiner never overturns a primary verdict -- *)

let prop_soundness =
  QCheck.Test.make ~count:12 ~name:"refiner flips ambiguous bytes only" gen_case
    (fun case ->
      let b = (spec_of case).Workloads.Synthetic.binary in
      let base = Agg.run b and refined = Agg.run ~infer:true b in
      Array.iteri
        (fun i v ->
          if v <> Agg.Ambiguous then
            Alcotest.(check bool)
              (Printf.sprintf "primary verdict at +%d preserved" i)
              true
              (refined.Agg.verdicts.(i) = v))
        base.Agg.verdicts;
      List.for_all
        (fun (off, _) -> base.Agg.verdicts.(off) = Agg.Ambiguous)
        refined.Agg.refined)

(* -- monotonicity: refinement only shrinks the ambiguous set, and the
      tally accounts for every flipped byte -- *)

let prop_monotone =
  QCheck.Test.make ~count:12 ~name:"refinement is monotone and accounted" gen_case
    (fun case ->
      let b = (spec_of case).Workloads.Synthetic.binary in
      let base = Agg.run b and refined = Agg.run ~infer:true b in
      let amb a =
        let _, _, x = Agg.stats a in
        x
      in
      Alcotest.(check bool) "ambiguous shrinks" true (amb refined <= amb base);
      Alcotest.(check int) "tally accounts every flip"
        (amb base - amb refined)
        (refined.Agg.tally.Agg.refined_code + refined.Agg.tally.Agg.refined_data);
      Alcotest.(check int) "provenance covers every flip"
        (List.length refined.Agg.refined)
        (List.fold_left (fun a (_, n) -> a + n) 0 refined.Agg.tally.Agg.refined_by_fact);
      true)

(* -- termination: the fixpoint drains within the static bound -- *)

let prop_terminates =
  QCheck.Test.make ~count:12 ~name:"fixpoint rounds within round_bound" gen_case
    (fun case ->
      let b = (spec_of case).Workloads.Synthetic.binary in
      let inf = Infer.run b ~avoid:(Disasm.Recursive.traverse b) in
      inf.Infer.rounds <= Infer.round_bound b)

(* -- byte-identity with the refiner off -- *)

let test_identity_off () =
  List.iter
    (fun (spec : Workloads.Synthetic.spec) ->
      let b = spec.Workloads.Synthetic.binary in
      let base = Agg.run b in
      Alcotest.(check (list int)) "no pin hints without the refiner" [] base.Agg.pin_hints;
      Alcotest.(check int) "no refined bytes without the refiner" 0
        (base.Agg.tally.Agg.refined_code + base.Agg.tally.Agg.refined_data);
      let dflt =
        match Zipr.Pipeline.try_rewrite ~transforms b with
        | Ok r -> r
        | Error m -> Alcotest.failf "default rewrite failed: %s" m
      in
      Alcotest.(check bool)
        (spec.Workloads.Synthetic.name ^ ": explicit infer=false is the default")
        true
        (Bytes.equal (out dflt) (out (rewrite ~infer:false b))))
    [ Workloads.Synthetic.libc_like ~tests:0 (); Adv.masked_dispatch ~tests:0 () ]

(* -- the adversarial corpus behaves as designed -- *)

let test_adversarial_closure () =
  let closed spec =
    let b = spec.Workloads.Synthetic.binary in
    (Infer.run b ~avoid:(Disasm.Recursive.traverse b)).Infer.closed
  in
  Alcotest.(check bool) "masked dispatch closes" true (closed (Adv.masked_dispatch ~tests:0 ()));
  Alcotest.(check bool) "dense islands close" true (closed (Adv.dense_islands ~tests:0 ()));
  (* The opaque class loads its target from a writable table: resolving
     it would be unsound, so the closed-world proof must fail and the
     unreachable fact must stay off. *)
  let b = (Adv.opaque_dispatch ~tests:0 ()).Workloads.Synthetic.binary in
  let inf = Infer.run b ~avoid:(Disasm.Recursive.traverse b) in
  Alcotest.(check bool) "opaque dispatch must not close" false inf.Infer.closed;
  Alcotest.(check int) "no unreachable claims without closure" 0
    (List.assoc (Infer.fact_name Infer.Unreachable) inf.Infer.fact_counts)

let test_overlap_reported_not_clamped () =
  (* Whether the generator's decode phases actually collide is
     seed-dependent; 102 is a seed where they do. *)
  let b = (Adv.overlap_trap ~seed:102 ~tests:0 ()).Workloads.Synthetic.binary in
  let refined = Agg.run ~infer:true b in
  Alcotest.(check bool) "length-mismatched overlaps are reported" true
    (refined.Agg.tally.Agg.overlap_len_mismatch > 0);
  (* Reported, not clamped: the mismatch never flips a byte by itself —
     every flip still carries a fact tag. *)
  List.iter
    (fun (_, tag) ->
      Alcotest.(check bool) "flip carries a fact tag" true
        (List.mem tag (List.map Infer.fact_name Infer.all_facts)))
    refined.Agg.refined

let test_pin_hints_reach_ibt () =
  let b = (Adv.masked_dispatch ~tests:0 ()).Workloads.Synthetic.binary in
  let r = rewrite ~infer:true b in
  let agg = r.Zipr.Pipeline.ir.Zipr.Ir_construction.aggregate in
  Alcotest.(check bool) "masked dispatch yields pin hints" true
    (agg.Agg.pin_hints <> []);
  let pins = Analysis.Ibt.pins r.Zipr.Pipeline.ir.Zipr.Ir_construction.pins in
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "hint 0x%x is pinned" a)
        true
        (List.mem_assoc a pins))
    agg.Agg.pin_hints

(* -- composition: delta cache and parallel IR builder reproduce the
      cold [--infer] build byte for byte -- *)

let test_composes_with_par_ir () =
  List.iter
    (fun (spec : Workloads.Synthetic.spec) ->
      let b = spec.Workloads.Synthetic.binary in
      let a = rewrite ~infer:true ~ir_jobs:1 b and p = rewrite ~infer:true ~ir_jobs:4 b in
      Alcotest.(check bool)
        (spec.Workloads.Synthetic.name ^ ": ir-jobs 1 = ir-jobs 4 under --infer")
        true
        (Bytes.equal (out a) (out p)))
    [ Adv.masked_dispatch ~tests:0 (); Adv.dense_islands ~tests:0 () ]

let test_composes_with_delta () =
  let b = (Adv.masked_dispatch ~tests:0 ()).Workloads.Synthetic.binary in
  let plain = rewrite ~infer:true b in
  let dc = Zipr.Delta.create () in
  let cold = rewrite ~routine_cache:dc ~infer:true b in
  Alcotest.(check bool) "delta cold = plain under --infer" true
    (Bytes.equal (out plain) (out cold));
  let warm = rewrite ~routine_cache:dc ~infer:true b in
  Alcotest.(check bool) "delta warm = plain under --infer" true
    (Bytes.equal (out plain) (out warm));
  Alcotest.(check bool) "warm served by the memo" true
    (warm.Zipr.Pipeline.cache.Zipr.Pipeline.routine_hits > 0);
  (* The same cache must keep serving the refiner-off variant from a
     distinct key: bytes differ from the --infer build, never mix. *)
  let off = rewrite ~routine_cache:dc ~infer:false b in
  Alcotest.(check bool) "off variant keyed separately" true
    (Bytes.equal (out off) (out (rewrite ~infer:false b)))

(* -- the differential soundness gate -- *)

let take n xs =
  let rec go i = function x :: tl when i < n -> x :: go (i + 1) tl | _ -> [] in
  go 0 xs

let test_differential_adversarial () =
  List.iter
    (fun (spec : Workloads.Synthetic.spec) ->
      let b = spec.Workloads.Synthetic.binary in
      let r = rewrite ~infer:true b in
      let check =
        Cgc.Poller.functional_check ~orig:b ~rewritten:r.Zipr.Pipeline.rewritten
          (take 8 spec.Workloads.Synthetic.test_suite)
      in
      Alcotest.(check int)
        (spec.Workloads.Synthetic.name ^ ": zero divergences under --infer")
        check.Cgc.Poller.total check.Cgc.Poller.passed)
    (Adv.all ())

let test_fuzz_driver_with_infer () =
  let o = { Fuzz.Driver.default_options with Fuzz.Driver.cases = 20; seed = 7; infer = true } in
  let s = Fuzz.Driver.run o in
  Alcotest.(check int) "cases" 20 s.Fuzz.Driver.cases_run;
  Alcotest.(check int) "no failures under --infer" 0 (List.length s.Fuzz.Driver.failures)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_soundness;
    QCheck_alcotest.to_alcotest prop_monotone;
    QCheck_alcotest.to_alcotest prop_terminates;
    Alcotest.test_case "byte-identity with the refiner off" `Quick test_identity_off;
    Alcotest.test_case "adversarial closure verdicts" `Quick test_adversarial_closure;
    Alcotest.test_case "overlap mismatches reported, not clamped" `Quick
      test_overlap_reported_not_clamped;
    Alcotest.test_case "pin hints reach the pin analysis" `Quick test_pin_hints_reach_ibt;
    Alcotest.test_case "composes with parallel IR builder" `Slow test_composes_with_par_ir;
    Alcotest.test_case "composes with the delta cache" `Slow test_composes_with_delta;
    Alcotest.test_case "differential gate over the adversarial corpus" `Slow
      test_differential_adversarial;
    Alcotest.test_case "fuzz driver runs with inference on" `Slow test_fuzz_driver_with_infer;
  ]
