(* The rewriting-service battery: wire-codec round-trips (split reads
   included), garbage/truncation fuzz over the framing reader, admission
   control unit tests, and in-process end-to-end tests of the daemon —
   byte-identity of served rewrites against the offline pipeline at 1
   and 8 concurrent clients, shared-cache hits, deadlines, floods and
   clean shutdown. *)

module P = Serve.Protocol
module Server = Serve.Server
module Client = Serve.Client
module Admission = Serve.Admission

(* -- codec: hand-picked round trips at several read granularities -- *)

let sample_requests : P.Request.t list =
  [
    {
      P.Request.id = 1L;
      deadline_us = 0;
      op = P.Rewrite { P.default_rewrite_config with P.transforms = [ "null" ] };
      payload = "hello";
    };
    {
      P.Request.id = -7L;
      deadline_us = 250_000;
      op =
        P.Rewrite
          {
            P.transforms = [ "cfi"; "stack-pad" ];
            placement = "random";
            seed = 42;
            placement_budget = Some 8;
            placement_epsilon = Some 0.25;
            placement_weights = "sled=2,chain=8";
            ir_jobs = Some 4;
            infer = Some true;
          };
      payload = String.init 257 (fun i -> Char.chr (i mod 256));
    };
    { P.Request.id = Int64.max_int; deadline_us = 1; op = P.Ping { sleep_us = 0 }; payload = "" };
    {
      P.Request.id = 0L;
      deadline_us = 0;
      op = P.Rewrite { P.default_rewrite_config with P.transforms = []; placement = "naive"; seed = 0 };
      payload = "\x00\x00\xff";
    };
  ]

let sample_responses : P.Response.t list =
  [
    { P.Response.id = 9L; status = P.Ok_; message = ""; stats = "det.x=1\n"; payload = "out" };
    {
      P.Response.id = -1L;
      status = P.Overloaded;
      message = "queue full";
      stats = "";
      payload = "";
    };
    {
      P.Response.id = 3L;
      status = P.Rewrite_error;
      message = "reassembly failed";
      stats = "elapsed_us=12\n";
      payload = String.make 300 '\xfe';
    };
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let wire = P.encode_request req in
      List.iter
        (fun chunk ->
          match P.read_request (P.input_of_string ~chunk wire) with
          | Ok got ->
              Alcotest.(check bool)
                (Printf.sprintf "request round-trips (chunk %d)" chunk)
                true (P.Request.equal req got)
          | Error f -> Alcotest.failf "decode failed: %s" (P.error_to_string f.P.error))
        [ 1; 3; 7; max_int ])
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      let wire = P.encode_response resp in
      List.iter
        (fun chunk ->
          match P.read_response (P.input_of_string ~chunk wire) with
          | Ok got ->
              Alcotest.(check bool)
                (Printf.sprintf "response round-trips (chunk %d)" chunk)
                true (P.Response.equal resp got)
          | Error f -> Alcotest.failf "decode failed: %s" (P.error_to_string f.P.error))
        [ 1; 5; max_int ])
    sample_responses

(* -- codec: QCheck round-trip and never-raise fuzz -- *)

let gen_request =
  let open QCheck.Gen in
  let name = oneofl [ "null"; "cfi"; "canary"; "stack-pad"; "shadow-stack"; "x" ] in
  let knobs =
    pair
      (triple
         (oneofl [ None; Some 1; Some 16; Some 4096 ])
         (oneofl [ None; Some 0.0; Some 0.25; Some 0.125; Some 1.0 ])
         (oneofl [ ""; "sled=2"; "sled=1,chain=16,relax=3,overflow=1,page=64" ]))
      (pair
         (oneofl [ None; Some 0; Some 1; Some 4; Some 64 ])
         (oneofl [ None; Some false; Some true ]))
  in
  let rc =
    map3
      (fun transforms placement
           (seed, ((placement_budget, placement_epsilon, placement_weights), (ir_jobs, infer))) ->
        {
          P.transforms;
          placement;
          seed;
          placement_budget;
          placement_epsilon;
          placement_weights;
          ir_jobs;
          infer;
        })
      (list_size (0 -- 4) name)
      (oneofl [ "optimized"; "naive"; "random"; "search"; "p0" ])
      (pair (0 -- 100_000) knobs)
  in
  let op =
    oneof
      [ map (fun c -> P.Rewrite c) rc; map (fun s -> P.Ping { sleep_us = s }) (0 -- 500_000) ]
  in
  map3
    (fun id (deadline_us, op) payload -> { P.Request.id; deadline_us; op; payload })
    (map Int64.of_int int)
    (pair (0 -- 1_000_000) op)
    (string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 600))

let print_request (r : P.Request.t) =
  Printf.sprintf "{id=%Ld; deadline=%d; op=%s; payload=%S}" r.id r.deadline_us
    (match r.op with
    | P.Rewrite c ->
        Printf.sprintf "rewrite[%s/%s/%d]" (String.concat "," c.transforms) c.placement c.seed
    | P.Ping { sleep_us } -> Printf.sprintf "ping[%d]" sleep_us)
    r.payload

let prop_request_roundtrip =
  QCheck.Test.make ~count:300 ~name:"encode |> read = id, at any read granularity"
    (QCheck.make ~print:print_request gen_request)
    (fun req ->
      let wire = P.encode_request req in
      let chunk = 1 + (String.length req.P.Request.payload mod 13) in
      match P.read_request (P.input_of_string ~chunk wire) with
      | Ok got -> P.Request.equal req got
      | Error f -> QCheck.Test.fail_reportf "decode failed: %s" (P.error_to_string f.P.error))

let prop_reader_never_raises =
  (* Garbage in, [Error] (or a miraculous parse) out — never an
     exception.  Half the inputs lead with the real magic so the fuzz
     reaches the deeper header fields. *)
  let gen =
    QCheck.Gen.(
      map2
        (fun lead body -> if lead then P.request_magic ^ body else body)
        bool
        (string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 200)))
  in
  QCheck.Test.make ~count:500 ~name:"framing reader is total on garbage"
    (QCheck.make ~print:(Printf.sprintf "%S") gen)
    (fun s ->
      match P.read_request ~max_payload:4096 (P.input_of_string ~chunk:3 s) with
      | Ok _ | Error _ -> true)

let test_truncation_every_prefix () =
  let wire = P.encode_request (List.nth sample_requests 1) in
  for len = 0 to String.length wire - 1 do
    match P.read_request (P.input_of_string (String.sub wire 0 len)) with
    | Ok _ -> Alcotest.failf "prefix of %d bytes parsed as a full frame" len
    | Error _ -> ()
  done

let test_header_rejects () =
  let base = P.encode_request (List.hd sample_requests) in
  let mutate off c =
    let b = Bytes.of_string base in
    Bytes.set b off c;
    Bytes.to_string b
  in
  let err s =
    match P.read_request ~max_payload:1024 (P.input_of_string s) with
    | Ok _ -> Alcotest.fail "mutated frame accepted"
    | Error f -> f
  in
  (match (err (mutate 0 'X')).P.error with
  | P.Bad_magic -> ()
  | e -> Alcotest.failf "expected Bad_magic, got %s" (P.error_to_string e));
  (match (err (mutate 4 '\x09')).P.error with
  | P.Bad_version 9 -> ()
  | e -> Alcotest.failf "expected Bad_version 9, got %s" (P.error_to_string e));
  (match (err (mutate 6 '\x07')).P.error with
  | P.Bad_op 7 -> ()
  | e -> Alcotest.failf "expected Bad_op 7, got %s" (P.error_to_string e))

let test_too_large_recovers_id () =
  (* A length field past the cap must reject before allocating, and the
     failure still carries the id parsed from the header. *)
  let b = Bytes.of_string (P.encode_request (List.hd sample_requests)) in
  Bytes.set_int64_le b 8 77L;
  Bytes.set_int32_le b 22 0x00FFFFFFl;
  match P.read_request ~max_payload:4096 (P.input_of_string (Bytes.to_string b)) with
  | Ok _ -> Alcotest.fail "oversized frame accepted"
  | Error { error = P.Frame_too_large { limit = 4096; _ }; id = Some 77L } -> ()
  | Error f -> Alcotest.failf "wrong failure: %s" (P.error_to_string f.P.error)

let test_config_forward_compat () =
  (* Unknown config keys are ignored; bad values for known keys are not. *)
  let b = Bytes.of_string "ZSRQ" in
  let frame ~config =
    let h = Bytes.create P.header_bytes in
    Bytes.blit b 0 h 0 4;
    Bytes.set_uint16_le h 4 P.version;
    Bytes.set_uint8 h 6 1;
    Bytes.set_uint8 h 7 0;
    Bytes.set_int64_le h 8 5L;
    Bytes.set_int32_le h 16 0l;
    Bytes.set_uint16_le h 20 (String.length config);
    Bytes.set_int32_le h 22 0l;
    Bytes.to_string h ^ config
  in
  (match
     P.read_request (P.input_of_string (frame ~config:"transforms=cfi;future_knob=7;seed=3"))
   with
  | Ok { P.Request.op = P.Rewrite { P.transforms = [ "cfi" ]; seed = 3; _ }; _ } -> ()
  | Ok _ -> Alcotest.fail "known keys mis-parsed"
  | Error f -> Alcotest.failf "unknown key rejected: %s" (P.error_to_string f.P.error));
  match P.read_request (P.input_of_string (frame ~config:"seed=banana")) with
  | Ok _ -> Alcotest.fail "unparseable seed accepted"
  | Error { error = P.Malformed _; _ } -> ()
  | Error f -> Alcotest.failf "expected Malformed, got %s" (P.error_to_string f.P.error)

(* -- admission control -- *)

let test_admission_bound () =
  let a = Admission.create ~bound:2 in
  Alcotest.(check bool) "admit 1" true (Admission.try_admit a);
  Alcotest.(check bool) "admit 2" true (Admission.try_admit a);
  Alcotest.(check bool) "reject at bound" false (Admission.try_admit a);
  Alcotest.(check int) "rejection counted" 1 (Admission.rejected a);
  Admission.started a;
  Alcotest.(check bool) "slot freed by start" true (Admission.try_admit a);
  Alcotest.(check int) "high water capped at bound" 2 (Admission.high_water a);
  Alcotest.(check int) "admitted counted" 3 (Admission.admitted a)

let test_admission_cancel () =
  let a = Admission.create ~bound:1 in
  Alcotest.(check bool) "admit" true (Admission.try_admit a);
  Admission.cancel a;
  Alcotest.(check int) "cancel frees the slot" 0 (Admission.queued a);
  Alcotest.(check int) "cancel retracts the admission" 0 (Admission.admitted a);
  Alcotest.(check bool) "slot reusable" true (Admission.try_admit a)

let test_admission_clamps_bound () =
  let a = Admission.create ~bound:0 in
  Alcotest.(check int) "bound clamped to 1" 1 (Admission.bound a)

(* -- end-to-end: an in-process daemon -- *)

let fresh_sock =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "zipr-ts-%d-%d.sock" (Unix.getpid ()) !ctr)

let with_server ?config f =
  let path = fresh_sock () in
  let server =
    Server.create ?config ~resolve_transform:Transforms.Registry.by_name (P.Unix_path path)
  in
  let d = Domain.spawn (fun () -> Server.serve server) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join d;
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () -> f server (Server.address server))

let workload_bytes (spec : Workloads.Synthetic.spec) =
  Bytes.unsafe_to_string (Zelf.Binary.serialize spec.Workloads.Synthetic.binary)

let expect_ok what = function
  | Ok ({ P.Response.status = P.Ok_; _ } as r) -> r
  | Ok r ->
      Alcotest.failf "%s: server answered %s: %s" what
        (P.status_to_string r.P.Response.status)
        r.P.Response.message
  | Error msg -> Alcotest.failf "%s: transport error: %s" what msg

let det_lines stats =
  String.split_on_char '\n' stats
  |> List.filter (fun l -> String.length l >= 4 && String.sub l 0 4 = "det.")

(* The tentpole acceptance test: a served rewrite is byte-identical to
   [Pipeline.rewrite_bytes] for the libc-like and frag-like workloads,
   whether 1 client or 8 ask concurrently — and the det.* summary lines
   are identical for every client. *)
let test_served_byte_identity () =
  let cases =
    [
      ( "libc-like",
        workload_bytes (Workloads.Synthetic.libc_like ~seed:11 ~tests:0 ()),
        [ "cfi" ] );
      ( "frag-like",
        workload_bytes (Workloads.Synthetic.frag_like ~seed:11 ~tests:0 ()),
        [ "null" ] );
    ]
  in
  let offline =
    List.map
      (fun (name, data, tnames) ->
        let transforms = List.filter_map Transforms.Registry.by_name tnames in
        match Zipr.Pipeline.rewrite_bytes ~transforms (Bytes.of_string data) with
        | Ok out -> (name, Bytes.to_string out)
        | Error e -> Alcotest.failf "%s: offline rewrite failed: %s" name e)
      cases
  in
  with_server (fun _server addr ->
      List.iter
        (fun clients ->
          let ask c =
            List.map
              (fun (name, data, tnames) ->
                let r =
                  expect_ok
                    (Printf.sprintf "%s (client %d)" name c)
                    (Client.rewrite ~id:(Int64.of_int c) ~transforms:tnames addr data)
                in
                (name, r))
              cases
          in
          let per_client =
            if clients = 1 then [ ask 0 ]
            else
              List.init clients (fun c -> Domain.spawn (fun () -> ask c))
              |> List.map Domain.join
          in
          List.iter
            (fun responses ->
              List.iter2
                (fun (name, expected) (name', (r : P.Response.t)) ->
                  Alcotest.(check string) "case order" name name';
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: served output byte-identical (%d clients)" name clients)
                    true
                    (String.equal expected r.P.Response.payload))
                offline responses)
            per_client;
          (* Every client saw the same deterministic summary. *)
          match per_client with
          | first :: rest ->
              List.iter
                (fun responses ->
                  List.iter2
                    (fun (_, (a : P.Response.t)) (_, (b : P.Response.t)) ->
                      Alcotest.(check (list string))
                        "det.* lines identical across clients"
                        (det_lines a.P.Response.stats) (det_lines b.P.Response.stats))
                    first responses)
                rest
          | [] -> ())
        [ 1; 8 ])

let test_shared_cache_hits () =
  let data = workload_bytes (Workloads.Synthetic.frag_like ~seed:12 ~tests:0 ()) in
  with_server (fun server addr ->
      let r1 = expect_ok "first" (Client.rewrite ~transforms:[ "null" ] addr data) in
      let r2 = expect_ok "second" (Client.rewrite ~transforms:[ "cfi" ] addr data) in
      let has_line needle stats =
        List.exists (String.equal needle) (String.split_on_char '\n' stats)
      in
      Alcotest.(check bool) "first request misses" true
        (has_line "ir_cache=miss" r1.P.Response.stats);
      Alcotest.(check bool) "second request hits (different transform, same IR)" true
        (has_line "ir_cache=hit" r2.P.Response.stats);
      let s = Server.stats server in
      Alcotest.(check int) "server counted the hit" 1 s.Server.cache_hits;
      Alcotest.(check int) "server counted the miss" 1 s.Server.cache_misses;
      Alcotest.(check bool) "cache resident bytes visible" true
        (s.Server.cache_resident_bytes > 0))

(* A per-request --ir-jobs override against a serial-default daemon:
   the response's det.ir_jobs echoes the override, and the output stays
   byte-identical to the offline pipeline (parallel IR construction
   changes timing, never bytes). *)
let test_ir_jobs_override () =
  let data = workload_bytes (Workloads.Synthetic.libc_like ~seed:13 ~tests:0 ()) in
  let transforms = List.filter_map Transforms.Registry.by_name [ "cfi" ] in
  let offline =
    match Zipr.Pipeline.rewrite_bytes ~transforms (Bytes.of_string data) with
    | Ok out -> Bytes.to_string out
    | Error e -> Alcotest.failf "offline rewrite failed: %s" e
  in
  let has_line needle stats =
    List.exists (String.equal needle) (String.split_on_char '\n' stats)
  in
  with_server (fun _server addr ->
      let par =
        expect_ok "override" (Client.rewrite ~ir_jobs:4 ~transforms:[ "cfi" ] addr data)
      in
      Alcotest.(check bool) "det.ir_jobs echoes the override" true
        (has_line "det.ir_jobs=4" par.P.Response.stats);
      Alcotest.(check bool) "override output byte-identical to offline" true
        (String.equal offline par.P.Response.payload);
      let default =
        expect_ok "server default" (Client.rewrite ~transforms:[ "cfi" ] addr data)
      in
      Alcotest.(check bool) "no override: server default (serial)" true
        (has_line "det.ir_jobs=1" default.P.Response.stats);
      Alcotest.(check bool) "default output byte-identical" true
        (String.equal offline default.P.Response.payload))

let test_ping_echoes () =
  with_server (fun _ addr ->
      let r = expect_ok "ping" (Client.ping ~payload:"\x00abc\xff" addr) in
      Alcotest.(check string) "payload echoed" "\x00abc\xff" r.P.Response.payload)

let test_server_rejects_nonsense () =
  with_server (fun _ addr ->
      (match Client.rewrite ~transforms:[ "no-such-pass" ] addr "x" with
      | Ok { P.Response.status = P.Bad_request; message; _ } ->
          Alcotest.(check bool) "names the unknown transform" true
            (String.length message > 0)
      | Ok r -> Alcotest.failf "expected bad_request, got %s" (P.status_to_string r.P.Response.status)
      | Error e -> Alcotest.failf "transport error: %s" e);
      (match Client.rewrite ~transforms:[ "null" ] addr "this is not a binary" with
      | Ok { P.Response.status = P.Bad_request; _ } -> ()
      | Ok r -> Alcotest.failf "expected bad_request, got %s" (P.status_to_string r.P.Response.status)
      | Error e -> Alcotest.failf "transport error: %s" e);
      (* A raw-garbage frame still gets a well-formed error response. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (P.sockaddr_of_addr addr);
          P.write_all fd (String.make 64 'Z');
          (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
          match P.read_response (P.input_of_fd fd) with
          | Ok { P.Response.status = P.Bad_request; _ } -> ()
          | Ok r ->
              Alcotest.failf "expected bad_request, got %s"
                (P.status_to_string r.P.Response.status)
          | Error f -> Alcotest.failf "no response to garbage: %s" (P.error_to_string f.P.error)))

let test_server_too_large () =
  let config = { Server.default_config with Server.max_request_bytes = 2048 } in
  with_server ~config (fun _ addr ->
      match
        Client.rewrite ~id:31L ~transforms:[ "null" ] addr (String.make 8192 'b')
      with
      | Ok { P.Response.status = P.Too_large; id = 31L; _ } -> ()
      | Ok r -> Alcotest.failf "expected too_large, got %s" (P.status_to_string r.P.Response.status)
      | Error e -> Alcotest.failf "transport error: %s" e)

let test_deadline_exceeded () =
  let config = { Server.default_config with Server.jobs = 1; queue_bound = 8 } in
  with_server ~config (fun server addr ->
      (* Occupy the only worker, then queue a request whose deadline
         expires long before the worker frees. *)
      let blocker = Domain.spawn (fun () -> Client.ping ~sleep_us:400_000 addr) in
      Unix.sleepf 0.08;
      (match Client.ping ~deadline_us:10_000 addr with
      | Ok { P.Response.status = P.Deadline_exceeded; _ } -> ()
      | Ok r ->
          Alcotest.failf "expected deadline_exceeded, got %s"
            (P.status_to_string r.P.Response.status)
      | Error e -> Alcotest.failf "transport error: %s" e);
      ignore (expect_ok "blocker" (Domain.join blocker));
      Alcotest.(check bool) "deadline counted" true
        ((Server.stats server).Server.deadline_exceeded >= 1))

(* The flood: burst 4x the queue bound at a single-worker server.  Every
   request must get an answer (fast [Overloaded] or a real completion),
   the admission queue must never exceed its bound, and the server must
   keep serving afterwards. *)
let test_flood_sheds_load () =
  let bound = 3 in
  let config = { Server.default_config with Server.jobs = 1; queue_bound = bound } in
  with_server ~config (fun server addr ->
      let blocker = Domain.spawn (fun () -> Client.ping ~sleep_us:500_000 addr) in
      Unix.sleepf 0.08;
      let burst = 4 * bound in
      let clients =
        List.init burst (fun i ->
            Domain.spawn (fun () -> Client.ping ~id:(Int64.of_int i) addr))
      in
      let results = List.map Domain.join clients in
      ignore (expect_ok "blocker" (Domain.join blocker));
      let ok, overloaded =
        List.fold_left
          (fun (ok, ov) -> function
            | Ok { P.Response.status = P.Ok_; _ } -> (ok + 1, ov)
            | Ok { P.Response.status = P.Overloaded; _ } -> (ok, ov + 1)
            | Ok r ->
                Alcotest.failf "unexpected status %s" (P.status_to_string r.P.Response.status)
            | Error e -> Alcotest.failf "a flooded request got no answer: %s" e)
          (0, 0) results
      in
      Alcotest.(check int) "every request answered" burst (ok + overloaded);
      Alcotest.(check bool) "load was shed" true (overloaded >= 1);
      Alcotest.(check bool) "admitted requests completed" true (ok >= 1);
      Alcotest.(check bool) "queue bound held" true
        (Admission.high_water (Server.admission server) <= bound);
      Alcotest.(check bool) "server counted the rejects" true
        ((Server.stats server).Server.overloaded >= 1);
      (* Still alive after the burst. *)
      ignore (expect_ok "post-flood ping" (Client.ping addr)))

let test_clean_shutdown () =
  let path = fresh_sock () in
  let server =
    Server.create ~resolve_transform:Transforms.Registry.by_name (P.Unix_path path)
  in
  let d = Domain.spawn (fun () -> Server.serve server) in
  let addr = Server.address server in
  ignore (expect_ok "pre-shutdown ping" (Client.ping addr));
  Server.stop server;
  Domain.join d;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path);
  match Client.ping addr with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "connect succeeded after shutdown"

let suite =
  [
    Alcotest.test_case "request frames round-trip at every chunking" `Quick
      test_request_roundtrip;
    Alcotest.test_case "response frames round-trip at every chunking" `Quick
      test_response_roundtrip;
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_reader_never_raises;
    Alcotest.test_case "every truncation point reads as an error" `Quick
      test_truncation_every_prefix;
    Alcotest.test_case "header rejects: magic, version, opcode" `Quick test_header_rejects;
    Alcotest.test_case "oversized frame rejected, id recovered" `Quick
      test_too_large_recovers_id;
    Alcotest.test_case "unknown config keys ignored, bad values rejected" `Quick
      test_config_forward_compat;
    Alcotest.test_case "admission enforces its bound" `Quick test_admission_bound;
    Alcotest.test_case "admission cancel frees the slot" `Quick test_admission_cancel;
    Alcotest.test_case "admission clamps a nonsense bound" `Quick test_admission_clamps_bound;
    Alcotest.test_case "served rewrites byte-identical to pipeline (1 and 8 clients)" `Slow
      test_served_byte_identity;
    Alcotest.test_case "concurrent clients share one IR cache" `Quick test_shared_cache_hits;
    Alcotest.test_case "per-request ir-jobs override round-trips" `Quick
      test_ir_jobs_override;
    Alcotest.test_case "ping echoes its payload" `Quick test_ping_echoes;
    Alcotest.test_case "bad requests answered, not dropped" `Quick test_server_rejects_nonsense;
    Alcotest.test_case "oversized requests answered with too_large" `Quick test_server_too_large;
    Alcotest.test_case "queued past its deadline: deadline_exceeded" `Quick
      test_deadline_exceeded;
    Alcotest.test_case "flood at 4x queue bound sheds load, stays up" `Slow
      test_flood_sheds_load;
    Alcotest.test_case "shutdown drains, unlinks the socket" `Quick test_clean_shutdown;
  ]
