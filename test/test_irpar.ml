(* Intra-binary parallel IR construction: equality with the serial cold
   build (verdicts, pins, row order, bytes), fallback semantics on
   binaries the stitch validation cannot prove clean, the 0-means-auto
   jobs rule, and the large workload class the irpar bench runs on. *)

module Scale = Workloads.Scale
module Chunker = Disasm.Chunker

let transforms = [ Transforms.Cfi.transform; Transforms.Stack_pad.transform ]

let config ir_jobs = { Zipr.Pipeline.default_config with Zipr.Pipeline.ir_jobs }

let rewrite ?routine_cache ~ir_jobs binary =
  match
    Zipr.Pipeline.try_rewrite ?routine_cache ~config:(config ir_jobs) ~transforms binary
  with
  | Ok r -> r
  | Error m -> Alcotest.failf "rewrite failed: %s" m

let out (r : Zipr.Pipeline.result) = Zelf.Binary.serialize r.Zipr.Pipeline.rewritten

(* -- the large workload class -- *)

let test_large_class () =
  let a = Scale.generate_large ~seed:1 0 in
  let b = Scale.generate_large ~seed:1 0 in
  Alcotest.(check bool) "deterministic" true
    (Bytes.equal (Zelf.Binary.serialize a.Scale.binary) (Zelf.Binary.serialize b.Scale.binary));
  let scan = Chunker.scan a.Scale.binary in
  Alcotest.(check bool)
    (Printf.sprintf "text >= 256 KiB (got %d)" scan.Chunker.len)
    true
    (scan.Chunker.len >= 256 * 1024);
  Alcotest.(check string) "name records the class" "lg000-large.zbf" a.Scale.name

(* -- parallel build == serial cold build, at the IR level -- *)

let check_ir_equal ~what (serial : Zipr.Ir_construction.t) (par : Zipr.Ir_construction.t) =
  Alcotest.(check bool)
    (what ^ ": identical verdict array")
    true
    (serial.Zipr.Ir_construction.aggregate.Disasm.Aggregate.verdicts
    = par.Zipr.Ir_construction.aggregate.Disasm.Aggregate.verdicts);
  Alcotest.(check bool)
    (what ^ ": identical pins")
    true
    (Analysis.Ibt.pins serial.Zipr.Ir_construction.pins
    = Analysis.Ibt.pins par.Zipr.Ir_construction.pins);
  Alcotest.(check bool)
    (what ^ ": identical row ids in order")
    true
    (Irdb.Db.ids serial.Zipr.Ir_construction.db = Irdb.Db.ids par.Zipr.Ir_construction.db);
  Alcotest.(check bool)
    (what ^ ": identical snapshot")
    true
    (String.equal
       (Zipr.Ir_construction.snapshot serial)
       (Zipr.Ir_construction.snapshot par))

let prop_par_equals_serial =
  QCheck.Test.make ~count:10
    ~name:"parallel chunked IR = serial build on Scale members (ir-jobs 1 vs 4)"
    QCheck.(make ~print:string_of_int Gen.(0 -- 400))
    (fun index ->
      let binary = (Scale.generate_one ~seed:23 index).Scale.binary in
      let serial = Zipr.Ir_construction.build binary in
      (match Zipr.Par_ir.build ~jobs:4 ~pin_config:Analysis.Ibt.default_config binary with
      | Some par -> check_ir_equal ~what:(Printf.sprintf "index %d" index) serial par
      | None -> ());
      (* Bytes are identical whether the parallel path built or fell back. *)
      let a = rewrite ~ir_jobs:1 binary and b = rewrite ~ir_jobs:4 binary in
      Alcotest.(check int) "one cold build"
        1
        (b.Zipr.Pipeline.cache.Zipr.Pipeline.par_builds
        + b.Zipr.Pipeline.cache.Zipr.Pipeline.par_fallbacks);
      Bytes.equal (out a) (out b))

let test_large_par_build () =
  let binary = (Scale.generate_large ~seed:1 0).Scale.binary in
  let a = rewrite ~ir_jobs:1 binary and b = rewrite ~ir_jobs:4 binary in
  Alcotest.(check bool) "large member byte-identical" true (Bytes.equal (out a) (out b));
  Alcotest.(check int) "parallel path served the build" 1
    b.Zipr.Pipeline.cache.Zipr.Pipeline.par_builds;
  Alcotest.(check int) "no fallback" 0 b.Zipr.Pipeline.cache.Zipr.Pipeline.par_fallbacks;
  Alcotest.(check int) "serial path has no par counters" 0
    (a.Zipr.Pipeline.cache.Zipr.Pipeline.par_builds
    + a.Zipr.Pipeline.cache.Zipr.Pipeline.par_fallbacks)

(* -- fallback semantics -- *)

(* A fragment whose boundaries disagree with the recursive traversal —
   here literally shifted off the true framing — must be rejected, and a
   fragment straddling the chunk's upper cut must be rejected. *)
let test_adversarial_fragment_falls_back () =
  let binary = (Scale.generate_one ~seed:23 0).Scale.binary in
  let scan = Chunker.scan binary in
  let text_end = scan.Chunker.base + scan.Chunker.len in
  let rec_ = Disasm.Recursive.traverse binary in
  let c =
    match
      Array.find_opt
        (fun (c : Chunker.chunk) ->
          Array.length
            (Zipr.Stitch.local_linear binary ~text_end c).Zipr.Stitch.boundaries
          > 1)
        scan.Chunker.chunks
    with
    | Some c -> c
    | None -> Alcotest.fail "no chunk with two boundaries"
  in
  let f = Zipr.Stitch.local_linear binary ~text_end c in
  (* The honest framing validates. *)
  Zipr.Stitch.validate_chunk rec_ c f;
  let shifted =
    {
      Zipr.Stitch.boundaries =
        Array.map (fun (rel, insn, len) -> (rel + 1, insn, len)) f.Zipr.Stitch.boundaries;
    }
  in
  (match Zipr.Stitch.validate_chunk rec_ c shifted with
  | () -> Alcotest.fail "shifted framing must fall back"
  | exception Zipr.Stitch.Fallback -> ());
  let straddle =
    {
      Zipr.Stitch.boundaries =
        [| (c.Chunker.hi - c.Chunker.lo - 1, (let _, i, _ = f.Zipr.Stitch.boundaries.(0) in i), 4) |];
    }
  in
  match Zipr.Stitch.validate_chunk rec_ c straddle with
  | () -> Alcotest.fail "cut-straddling framing must fall back"
  | exception Zipr.Stitch.Fallback -> ()

(* Binaries the stitch cannot prove clean (hidden computed-jump regions,
   data islands that decode) must take the serial fallback and still
   produce byte-identical output. *)
let test_dirty_binary_fallback_identical () =
  List.iter
    (fun seed ->
      let binary =
        (Workloads.Synthetic.frag_like ~seed ~tests:0 ()).Workloads.Synthetic.binary
      in
      let a = rewrite ~ir_jobs:1 binary and b = rewrite ~ir_jobs:4 binary in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d byte-identical" seed)
        true
        (Bytes.equal (out a) (out b));
      Alcotest.(check int)
        (Printf.sprintf "seed %d: exactly one cold build" seed)
        1
        (b.Zipr.Pipeline.cache.Zipr.Pipeline.par_builds
        + b.Zipr.Pipeline.cache.Zipr.Pipeline.par_fallbacks))
    [ 404; 405 ]

(* -- 0 means auto -- *)

let test_jobs_auto () =
  Alcotest.(check bool) "resolve_jobs 0 >= 1" true (Zipr.Pipeline.resolve_jobs 0 >= 1);
  Alcotest.(check int) "resolve_jobs clamps" 1 (Zipr.Pipeline.resolve_jobs (-3));
  Alcotest.(check int) "resolve_jobs passes through" 4 (Zipr.Pipeline.resolve_jobs 4);
  let binary = (Scale.generate_one ~seed:23 7).Scale.binary in
  let a = rewrite ~ir_jobs:1 binary and b = rewrite ~ir_jobs:0 binary in
  Alcotest.(check bool) "auto ir-jobs byte-identical" true (Bytes.equal (out a) (out b))

(* -- composition with the delta cache: a parallel cold build feeds the
      fragment harvest, and the memo serves the repeat -- *)

let test_composes_with_delta () =
  let binary = (Scale.generate_one ~seed:23 3).Scale.binary in
  let plain = rewrite ~ir_jobs:1 binary in
  let dc = Zipr.Delta.create () in
  let cold = rewrite ~routine_cache:dc ~ir_jobs:4 binary in
  Alcotest.(check bool) "delta+par cold byte-identical" true
    (Bytes.equal (out plain) (out cold));
  Alcotest.(check int) "cold build went through the pipeline once" 1
    (cold.Zipr.Pipeline.cache.Zipr.Pipeline.par_builds
    + cold.Zipr.Pipeline.cache.Zipr.Pipeline.par_fallbacks);
  let warm = rewrite ~routine_cache:dc ~ir_jobs:4 binary in
  Alcotest.(check bool) "warm byte-identical" true (Bytes.equal (out plain) (out warm));
  Alcotest.(check int) "warm run is served by the memo, not the par path" 0
    (warm.Zipr.Pipeline.cache.Zipr.Pipeline.par_builds
    + warm.Zipr.Pipeline.cache.Zipr.Pipeline.par_fallbacks);
  Alcotest.(check bool) "memo hit" true
    (warm.Zipr.Pipeline.cache.Zipr.Pipeline.routine_hits > 0)

let suite =
  [
    Alcotest.test_case "large class: >= 256 KiB text, deterministic" `Quick test_large_class;
    QCheck_alcotest.to_alcotest ~long:true prop_par_equals_serial;
    Alcotest.test_case "large member: parallel build, byte-identical" `Slow
      test_large_par_build;
    Alcotest.test_case "adversarial fragments fall back" `Quick
      test_adversarial_fragment_falls_back;
    Alcotest.test_case "dirty binaries fall back byte-identically" `Quick
      test_dirty_binary_fallback_identical;
    Alcotest.test_case "jobs 0 auto-detects" `Quick test_jobs_auto;
    Alcotest.test_case "parallel cold build composes with delta cache" `Slow
      test_composes_with_delta;
  ]
