let () =
  Alcotest.run "zipr"
    [
      ("util", Test_util.suite);
      ("zvm", Test_zvm.suite);
      ("zelf", Test_zelf.suite);
      ("zasm", Test_zasm.suite);
      ("pipeline", Test_pipeline.suite);
      ("parser", Test_parser.suite);
      ("printer", Test_printer.suite);
      ("irdb", Test_irdb.suite);
      ("disasm", Test_disasm.suite);
      ("superset", Test_superset.suite);
      ("analysis", Test_analysis.suite);
      ("reassemble-units", Test_reassemble_units.suite);
      ("transforms", Test_transforms.suite);
      ("jumptable-rewrite", Test_jumptable_rewrite.suite);
      ("tools", Test_tools.suite);
      ("routine", Test_routine.suite);
      ("workloads", Test_workloads.suite);
      ("zvm-semantics", Test_zvm_semantics.suite);
      ("coverage", Test_coverage.suite);
      ("cgc", Test_cgc.suite);
      ("properties", Test_props.suite);
      ("struct-properties", Test_struct_props.suite);
      ("verify-regressions", Test_verify_regress.suite);
      ("fuzz", Test_fuzz.suite);
      ("parallel", Test_parallel.suite);
      ("speculative", Test_speculative.suite);
      ("ir-cache", Test_cache.suite);
      ("serve", Test_serve.suite);
      ("obs", Test_obs.suite);
      ("delta", Test_delta.suite);
      ("placement-search", Test_placement_search.suite);
      ("irpar", Test_irpar.suite);
      ("infer", Test_infer.suite);
    ]
