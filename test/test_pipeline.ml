(* End-to-end rewriting tests: for structurally rich programs, the
   Null-transformed binary must produce identical transcripts, and the
   security transforms must behave as advertised. *)

module Vm = Zvm.Vm

let run_binary ?(input = "") binary = Zelf.Image.boot binary ~input

let transcript (r : Vm.result) = (r.Vm.output, r.Vm.stop)

let rewrite ?(config = Zipr.Pipeline.default_config) ?(transforms = [ Transforms.Null.transform ])
    binary =
  Zipr.Pipeline.rewrite ~config ~transforms binary

let check_equivalent ?(inputs = [ "" ]) ~name binary rewritten =
  List.iter
    (fun input ->
      let orig = run_binary ~input binary in
      let rewr = run_binary ~input rewritten in
      Alcotest.(check string)
        (Printf.sprintf "%s output on %S" name input)
        orig.Vm.output rewr.Vm.output;
      Alcotest.(check string)
        (Printf.sprintf "%s status on %S" name input)
        (Vm.stop_to_string orig.Vm.stop) (Vm.stop_to_string rewr.Vm.stop))
    inputs

let strategies =
  [ ("naive", Zipr.Placement.naive); ("optimized", Zipr.Placement.optimized); ("random", Zipr.Placement.random) ]

let config_of strategy = { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = strategy }

(* -- null-transform equivalence across programs and strategies -- *)

let test_null_fib () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  List.iter
    (fun (sname, strategy) ->
      let r = rewrite ~config:(config_of strategy) binary in
      check_equivalent ~name:("fib/" ^ sname)
        ~inputs:[ "\x00"; "\x01"; "\x07"; "\x0b"; "\xff" ]
        binary r.Zipr.Pipeline.rewritten)
    strategies

let test_null_dispatch () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  List.iter
    (fun (sname, strategy) ->
      let r = rewrite ~config:(config_of strategy) binary in
      check_equivalent ~name:("dispatch/" ^ sname)
        ~inputs:[ "q"; "012q"; "f0f1q"; "210f1z9q"; "" ]
        binary r.Zipr.Pipeline.rewritten)
    strategies

let test_null_island () =
  let binary, _ = Testprogs.island_binary () in
  List.iter
    (fun (sname, strategy) ->
      let r = rewrite ~config:(config_of strategy) binary in
      check_equivalent ~name:("island/" ^ sname) binary r.Zipr.Pipeline.rewritten)
    strategies

let test_null_dense_pins () =
  let binary, _ = Testprogs.assemble (Testprogs.dense_pins_program ()) in
  List.iter
    (fun (sname, strategy) ->
      let r = rewrite ~config:(config_of strategy) binary in
      check_equivalent ~name:("dense/" ^ sname) binary r.Zipr.Pipeline.rewritten)
    strategies

let test_null_vuln_benign () =
  let binary, _ = Testprogs.assemble (Testprogs.vuln_program ()) in
  let r = rewrite binary in
  check_equivalent ~name:"vuln benign" ~inputs:[ "\x05hello" ] binary r.Zipr.Pipeline.rewritten

(* -- structural assertions -- *)

let test_island_has_fixed_ranges () =
  let binary, _ = Testprogs.island_binary () in
  let r = rewrite binary in
  Alcotest.(check bool)
    "ambiguous ranges found" true
    (List.length r.Zipr.Pipeline.ir.Zipr.Ir_construction.fixed_ranges > 0)

let test_dense_pins_use_sled () =
  let binary, _ = Testprogs.assemble (Testprogs.dense_pins_program ()) in
  let r = rewrite binary in
  Alcotest.(check bool) "sled built" true (r.Zipr.Pipeline.stats.Zipr.Reassemble.sleds >= 1);
  Alcotest.(check bool) "sled has 2 entries" true
    (r.Zipr.Pipeline.stats.Zipr.Reassemble.sled_entries >= 2)

let test_pins_exist () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let r = rewrite binary in
  let stats = r.Zipr.Pipeline.stats in
  (* entry + 3 jump-table cases + 2 function pointers at least *)
  Alcotest.(check bool) "pins found" true (stats.Zipr.Reassemble.pins_total >= 6)

let test_rewritten_binary_parses () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let r = rewrite binary in
  let bytes = Zelf.Binary.serialize r.Zipr.Pipeline.rewritten in
  match Zelf.Binary.parse bytes with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rewritten binary does not parse: %a" Zelf.Binary.pp_parse_error e

let test_double_rewrite () =
  (* Rewriting the rewritten binary must still work: the output is a
     well-formed input. *)
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let r1 = rewrite binary in
  let r2 = rewrite r1.Zipr.Pipeline.rewritten in
  check_equivalent ~name:"double rewrite" ~inputs:[ "\x07" ] binary r2.Zipr.Pipeline.rewritten

let test_file_size_overhead_reasonable () =
  (* On a compiler-shaped program of realistic density, the optimized
     layout must beat the CGC 20% file-size threshold. *)
  let binary, _ = Testprogs.assemble (Testprogs.big_program ~nfuncs:60 ()) in
  let r = rewrite binary in
  let orig = Zelf.Binary.file_size binary in
  let rewr = Zelf.Binary.file_size r.Zipr.Pipeline.rewritten in
  let overhead = float_of_int (rewr - orig) /. float_of_int orig *. 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.1f%% < 20%%" overhead)
    true (overhead < 20.0);
  check_equivalent ~name:"big program" binary r.Zipr.Pipeline.rewritten

let test_random_layouts_differ () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let cfg seed =
    { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = Zipr.Placement.random; seed }
  in
  let r1 = rewrite ~config:(cfg 1) binary in
  let r2 = rewrite ~config:(cfg 2) binary in
  let t1 = (Zelf.Binary.text r1.Zipr.Pipeline.rewritten).Zelf.Section.data in
  let t2 = (Zelf.Binary.text r2.Zipr.Pipeline.rewritten).Zelf.Section.data in
  Alcotest.(check bool) "diverse layouts" true (t1 <> t2);
  (* Both still behave identically to the original. *)
  check_equivalent ~name:"random seed 1" ~inputs:[ "012q" ] binary r1.Zipr.Pipeline.rewritten;
  check_equivalent ~name:"random seed 2" ~inputs:[ "012q" ] binary r2.Zipr.Pipeline.rewritten

let test_unreachable_code_kept_conservatively () =
  (* Code that only linear sweep can see (never reached by recursive
     traversal, never referenced) is paper case 4: it might be data that
     happens to decode, so it must be kept, fixed, at its original
     address — never relocated, never dropped. *)
  let b = Zasm.Builder.create ~entry:"main" () in
  Zasm.Builder.label b "main";
  Zasm.Builder.insn b (Zvm.Insn.Movi (Zvm.Reg.R0, 0));
  Zasm.Builder.insn b (Zvm.Insn.Sys 0);
  Zasm.Builder.insn b Zvm.Insn.Halt;
  Zasm.Builder.label b "dead";
  for _ = 1 to 50 do
    Zasm.Builder.insn b (Zvm.Insn.Movi (Zvm.Reg.R7, 0xdead))
  done;
  Zasm.Builder.insn b (Zvm.Insn.Ret);
  let binary, symbols = Zasm.Builder.assemble_exn b in
  let r = rewrite binary in
  let dead_addr = List.assoc "dead" symbols in
  let fixed = r.Zipr.Pipeline.ir.Zipr.Ir_construction.fixed_ranges in
  Alcotest.(check bool) "dead body inside a fixed range" true
    (List.exists (fun (lo, hi) -> dead_addr >= lo && dead_addr < hi) fixed);
  (* The bytes must be preserved verbatim in the output. *)
  let orig_text = Zelf.Binary.text binary in
  let new_text = Zelf.Binary.text r.Zipr.Pipeline.rewritten in
  let off = dead_addr - orig_text.Zelf.Section.vaddr in
  Alcotest.(check bytes) "dead bytes preserved"
    (Bytes.sub orig_text.Zelf.Section.data off 30)
    (Bytes.sub new_text.Zelf.Section.data off 30);
  check_equivalent ~name:"conservative keep" binary r.Zipr.Pipeline.rewritten

(* -- rewrite_bytes is total: bad input files report, never raise -- *)

let test_rewrite_bytes_total () =
  let reject name data =
    match Zipr.Pipeline.rewrite_bytes ~transforms:[ Transforms.Null.transform ] data with
    | Error msg ->
        Alcotest.(check bool) (name ^ " reports a reason") true (String.length msg > 0)
    | Ok _ -> Alcotest.failf "%s accepted" name
    | exception e -> Alcotest.failf "%s raised %s" name (Printexc.to_string e)
  in
  reject "empty file" (Bytes.create 0);
  reject "garbage" (Bytes.of_string "this is not a binary, it is a sentence");
  let good = Zelf.Binary.serialize (fst (Cgc.Cb_gen.generate ~seed:3 Cgc.Cb_gen.default_profile)) in
  (* Truncations at every coarse prefix: header-only, mid-section-table,
     mid-contents. *)
  List.iter
    (fun frac ->
      let len = Bytes.length good * frac / 10 in
      reject (Printf.sprintf "truncated to %d/10" frac) (Bytes.sub good 0 len))
    [ 1; 3; 5; 8 ];
  match Zipr.Pipeline.rewrite_bytes ~transforms:[ Transforms.Null.transform ] good with
  | Ok out -> Alcotest.(check bool) "intact file still rewrites" true (Bytes.length out > 0)
  | Error e -> Alcotest.failf "intact file rejected: %s" e

let suite =
  [
    Alcotest.test_case "null fib (3 strategies)" `Quick test_null_fib;
    Alcotest.test_case "null dispatch (3 strategies)" `Quick test_null_dispatch;
    Alcotest.test_case "null island (3 strategies)" `Quick test_null_island;
    Alcotest.test_case "null dense pins (3 strategies)" `Quick test_null_dense_pins;
    Alcotest.test_case "null vuln benign" `Quick test_null_vuln_benign;
    Alcotest.test_case "island fixed ranges" `Quick test_island_has_fixed_ranges;
    Alcotest.test_case "dense pins sled" `Quick test_dense_pins_use_sled;
    Alcotest.test_case "pins exist" `Quick test_pins_exist;
    Alcotest.test_case "rewritten parses" `Quick test_rewritten_binary_parses;
    Alcotest.test_case "double rewrite" `Quick test_double_rewrite;
    Alcotest.test_case "file size overhead" `Quick test_file_size_overhead_reasonable;
    Alcotest.test_case "random layouts differ" `Quick test_random_layouts_differ;
    Alcotest.test_case "unreachable code kept" `Quick test_unreachable_code_kept_conservatively;
    Alcotest.test_case "rewrite_bytes total on bad files" `Quick test_rewrite_bytes_total;
  ]
