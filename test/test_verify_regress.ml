(* Regression tests for Zipr.Verify.structural: one deliberate corruption
   per failure class, applied to an otherwise good rewrite.  Each test
   asserts both that verification fails AND that the failure is reported
   under the expected check name — a verifier that flags the corruption
   for the wrong reason is still a regression. *)

module Db = Irdb.Db
module Insn = Zvm.Insn

(* A profile with every shape the checks exercise: a dense pin pair (so a
   sled exists), data islands (data-in-text ranges), and function
   pointers (movable pins reached by reference jumps). *)
let rich_profile =
  {
    Cgc.Cb_gen.default_profile with
    Cgc.Cb_gen.n_fptrs = 3;
    data_islands = 2;
    dense_pair = true;
    vuln = false;
  }

let rewrite () =
  let binary, _ = Cgc.Cb_gen.generate ~seed:1234 rich_profile in
  let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] binary in
  (binary, r)

(* Rebuild [binary] with [bytes] written at [addr] in the text section. *)
let patch_text binary addr bytes =
  Zelf.Binary.create ~entry:binary.Zelf.Binary.entry
    (List.map
       (fun (s : Zelf.Section.t) ->
         if Zelf.Section.is_code s && Zelf.Section.contains s addr then begin
           let d = Bytes.copy s.Zelf.Section.data in
           List.iteri
             (fun i b ->
               let off = addr - s.Zelf.Section.vaddr + i in
               if off >= 0 && off < Bytes.length d then Bytes.set d off (Char.chr b))
             bytes;
           Zelf.Section.make ~name:s.Zelf.Section.name ~kind:s.Zelf.Section.kind
             ~vaddr:s.Zelf.Section.vaddr d
         end
         else s)
       binary.Zelf.Binary.sections)

let decode_at binary addr =
  match Zvm.Decode.decode ~fetch:(Zelf.Binary.read8 binary) addr with
  | Ok (i, len) -> Some (i, len)
  | Error _ -> None

let issues_named name report =
  List.filter (fun (i : Zipr.Verify.issue) -> i.Zipr.Verify.check = name)
    report.Zipr.Verify.issues

let verify ~orig ~(r : Zipr.Pipeline.result) rewritten =
  Zipr.Verify.structural ~orig ~ir:r.Zipr.Pipeline.ir ~rewritten

let check_flagged name report =
  Alcotest.(check bool) "verification fails" false (Zipr.Verify.ok report);
  Alcotest.(check bool)
    (Printf.sprintf "failure reported as %s" name)
    true
    (issues_named name report <> [])

(* Movable pins whose rewritten bytes are a reference jump. *)
let reference_pins (r : Zipr.Pipeline.result) =
  let db = r.Zipr.Pipeline.ir.Zipr.Ir_construction.db in
  List.filter_map
    (fun (addr, rid) ->
      let movable =
        match Db.row db rid with row -> not row.Db.fixed | exception Not_found -> false
      in
      if not movable then None
      else
        match decode_at r.Zipr.Pipeline.rewritten addr with
        | Some (Insn.Jmp (w, _), len) -> Some (addr, w, len)
        | _ -> None)
    (Db.pinned_addresses db)

(* 1. Missing pin: the rewriter "forgot" to emit a reference jump — the
   pinned address holds garbage that does not even decode. *)
let test_missing_pin () =
  let orig, r = rewrite () in
  let pins = reference_pins r in
  Alcotest.(check bool) "test premise: movable reference pins exist" true (pins <> []);
  let addr, _, _ = List.hd pins in
  let sane = verify ~orig ~r r.Zipr.Pipeline.rewritten in
  Alcotest.(check bool) "good rewrite verifies" true (Zipr.Verify.ok sane);
  (* 0x00 is an invalid opcode in the zvm encoding. *)
  let corrupted = patch_text r.Zipr.Pipeline.rewritten addr [ 0x00 ] in
  check_flagged "pin-decodes" (verify ~orig ~r corrupted)

(* 2. Clobbered data-in-text: a byte inside a data range changed. *)
let test_clobbered_data_in_text () =
  let orig, r = rewrite () in
  let ranges = r.Zipr.Pipeline.ir.Zipr.Ir_construction.data_ranges in
  Alcotest.(check bool) "test premise: data-in-text ranges exist" true (ranges <> []);
  let lo, _ = List.hd ranges in
  let old = Option.value (Zelf.Binary.read8 r.Zipr.Pipeline.rewritten lo) ~default:0 in
  let corrupted = patch_text r.Zipr.Pipeline.rewritten lo [ old lxor 0xff ] in
  check_flagged "data-in-text" (verify ~orig ~r corrupted)

(* Sled entries: movable pins whose rewritten bytes decode as a
   push-immediate that is NOT the pinned row's own instruction. *)
let sled_entries (r : Zipr.Pipeline.result) =
  let db = r.Zipr.Pipeline.ir.Zipr.Ir_construction.db in
  List.filter_map
    (fun (addr, rid) ->
      match Db.row db rid with
      | exception Not_found -> None
      | row ->
          if row.Db.fixed then None
          else (
            match decode_at r.Zipr.Pipeline.rewritten addr with
            | Some (Insn.Pushi v, _) -> (
                match row.Db.insn with
                | Insn.Pushi v' when v' = v -> None
                | _ -> Some addr)
            | _ -> None))
    (Db.pinned_addresses db)

(* Walk from a sled entry to its dispatch jump, as the verifier does. *)
let rec find_dispatch binary addr budget =
  if budget = 0 then None
  else
    match decode_at binary addr with
    | Some (Insn.Jmp _, len) -> Some (addr, len)
    | Some ((Insn.Pushi _ | Insn.Nop | Insn.Land | Insn.Retland), len) ->
        find_dispatch binary (addr + len) (budget - 1)
    | _ -> None

(* 3. Sled dispatch landing on junk: redirect the sled's dispatch jump
   into the middle of an instruction (or otherwise undecodable bytes). *)
let test_sled_dispatch_junk () =
  let orig, r = rewrite () in
  let entries = sled_entries r in
  Alcotest.(check bool) "test premise: sled entries exist (dense pair)" true (entries <> []);
  let entry = List.hd entries in
  match find_dispatch r.Zipr.Pipeline.rewritten entry 64 with
  | None -> Alcotest.fail "test premise: sled has a dispatch jump"
  | Some (jaddr, jlen) ->
      (* Scan forward from the jump for a displacement whose target does
         not decode; the original program always has one (e.g. inside a
         multi-byte immediate). *)
      let retarget disp =
        let next = jaddr + jlen + disp in
        match decode_at r.Zipr.Pipeline.rewritten next with
        | Some ((Insn.Jmp _ | Insn.Pushi _ | Insn.Nop | Insn.Land | Insn.Retland), _) ->
            (* Would still look like a sled step or a chain: not junk. *)
            None
        | Some _ -> None
        | None -> Some disp
      in
      let rec search d = if d > 200 then None else
        match retarget d with Some d -> Some d | None -> search (d + 1) in
      (match search 1 with
      | None -> Alcotest.fail "test premise: no undecodable target nearby"
      | Some disp ->
          (* 5-byte near jump: e9 + 32-bit LE displacement. *)
          let corrupted =
            patch_text r.Zipr.Pipeline.rewritten jaddr
              [
                0xe9;
                disp land 0xff;
                (disp lsr 8) land 0xff;
                (disp lsr 16) land 0xff;
                (disp lsr 24) land 0xff;
              ]
          in
          check_flagged "sled-dispatch" (verify ~orig ~r corrupted))

(* 4. Out-of-range chained reference: a pin's reference jump points far
   outside the text section. *)
let test_out_of_range_reference () =
  let orig, r = rewrite () in
  let pins = reference_pins r in
  Alcotest.(check bool) "test premise: movable reference pins exist" true (pins <> []);
  let addr, _, _ = List.hd pins in
  (* Jump 1 MiB past anything mapped: follow() must flag the escape. *)
  let disp = 0x100000 in
  let corrupted =
    patch_text r.Zipr.Pipeline.rewritten addr
      [
        0xe9;
        disp land 0xff;
        (disp lsr 8) land 0xff;
        (disp lsr 16) land 0xff;
        (disp lsr 24) land 0xff;
      ]
  in
  check_flagged "pin-reference" (verify ~orig ~r corrupted)

let suite =
  [
    Alcotest.test_case "missing pin" `Quick test_missing_pin;
    Alcotest.test_case "clobbered data-in-text" `Quick test_clobbered_data_in_text;
    Alcotest.test_case "sled dispatch junk" `Quick test_sled_dispatch_junk;
    Alcotest.test_case "out-of-range reference" `Quick test_out_of_range_reference;
  ]
