(* The search placement strategy: cost-model plumbing (weight specs,
   resolve validation), a QCheck property that search decisions always
   land in free space and respect the split floor on randomized
   free-map states, cost-accounting invariants (reported placement_cost
   is Cost.eval over cost_terms; search stats live only under search),
   a quality pin (search never costs more than optimized on the
   workloads it was built to win), and corpus byte-identity across
   worker counts. *)

module Placement = Zipr.Placement
module Cost = Zipr.Cost
module Memspace = Zipr.Memspace
module Rng = Zipr_util.Rng

(* -- weight specs -- *)

let test_weights_spec () =
  (match Cost.weights_of_spec "" with
  | Ok w -> Alcotest.(check bool) "empty spec is defaults" true (w = Cost.default_weights)
  | Error e -> Alcotest.failf "empty spec rejected: %s" e);
  (match Cost.weights_of_spec "chain=2.5,page=0" with
  | Ok w ->
      Alcotest.(check (float 0.0)) "chain set" 2.5 w.Cost.w_chain_hops;
      Alcotest.(check (float 0.0)) "page set" 0.0 w.Cost.w_page_misses;
      Alcotest.(check (float 0.0))
        "omitted keys keep defaults" Cost.default_weights.Cost.w_sled_bytes w.Cost.w_sled_bytes
  | Error e -> Alcotest.failf "partial spec rejected: %s" e);
  (match Cost.weights_of_spec (Cost.to_spec Cost.default_weights) with
  | Ok w -> Alcotest.(check bool) "to_spec round-trips" true (w = Cost.default_weights)
  | Error e -> Alcotest.failf "canonical spec rejected: %s" e);
  List.iter
    (fun bad ->
      match Cost.weights_of_spec bad with
      | Ok _ -> Alcotest.failf "bad spec %S accepted" bad
      | Error _ -> ())
    [ "sled=-1"; "sled=banana"; "warp=9"; "sled" ]

let test_resolve () =
  (match Placement.resolve "warp" with
  | Error msg ->
      Alcotest.(check bool) "unknown-name error names the offender" true
        (String.length msg > 0 && List.mem "search" Placement.names)
  | Ok _ -> Alcotest.fail "unknown strategy resolved");
  (match Placement.resolve ~budget:0 "search" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "budget 0 accepted");
  (match Placement.resolve ~epsilon:1.5 "search" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "epsilon 1.5 accepted");
  (match Placement.resolve ~weights_spec:"sled=x" "search" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage weights accepted");
  (* Knobs are ignored (not rejected) for non-search strategies. *)
  (match Placement.resolve ~budget:0 ~epsilon:7.0 "optimized" with
  | Ok s -> Alcotest.(check string) "name" "optimized" s.Placement.name
  | Error e -> Alcotest.failf "optimized with junk knobs rejected: %s" e);
  match (Placement.by_name "search", Placement.resolve "search") with
  | Some s, Ok r ->
      Alcotest.(check string) "by_name" "search" s.Placement.name;
      Alcotest.(check string) "resolve" "search" r.Placement.name
  | _ -> Alcotest.fail "search not resolvable"

(* -- QCheck: decisions land in free space, splits respect min_prefix -- *)

(* A randomized free map: a text span shattered by random reservations,
   under a variable pinned-page predicate — the state space the search
   walks in real runs.  The property: whatever the search decides, the
   committed range was entirely free before the decision and is entirely
   reserved after it, and a split's capacity can hold the minimum
   prefix.  This is the safety half of the strategy contract (the
   quality half is benched, not proven). *)
let gen_case =
  QCheck.Gen.(
    let* seed = 0 -- 1_000_000 in
    let* span_pages = 1 -- 8 in
    let* n_holes = 0 -- 40 in
    let* size = 4 -- 300 in
    let* min_prefix = 5 -- 30 in
    let* with_referent = bool in
    return (seed, span_pages, n_holes, size, min min_prefix size, with_referent))

let arb_case =
  QCheck.make
    ~print:(fun (seed, pages, holes, size, mp, r) ->
      Printf.sprintf "{seed=%d pages=%d holes=%d size=%d min_prefix=%d referent=%b}" seed
        pages holes size mp r)
    gen_case

let prop_search_decisions_sound =
  QCheck.Test.make ~count:300 ~name:"search decisions land in free space, splits hold min_prefix"
    arb_case
    (fun (seed, span_pages, n_holes, size, min_prefix, with_referent) ->
      let text_lo = 0x10000 in
      let text_hi = text_lo + (span_pages * 4096) in
      let space =
        Memspace.create ~text_lo ~text_hi ~overflow_base:(text_hi + 8192) ()
      in
      let rng = Rng.create seed in
      for _ = 1 to n_holes do
        let lo = text_lo + Rng.int rng (text_hi - text_lo - 16) in
        let len = 1 + Rng.int rng 256 in
        Memspace.reserve space ~lo ~hi:(min text_hi (lo + len))
      done;
      let pin_mask = Rng.int rng 256 in
      let ctx =
        {
          Placement.space;
          rng;
          pinned_page = (fun p -> (p land 7) land pin_mask <> 0);
          tally = Cost.make_tally ();
        }
      in
      let referent =
        if with_referent then Some (text_lo + Rng.int rng (text_hi - text_lo)) else None
      in
      let req = { Placement.size; referent; min_prefix } in
      let strategy = Placement.search () in
      let check_commit addr len =
        (* take_at validated freeness; after the decision the range must
           be reserved. *)
        if Memspace.is_free space ~lo:addr ~hi:(addr + len) then
          QCheck.Test.fail_reportf "committed range [0x%x,+%d) still free" addr len;
        true
      in
      match strategy.Placement.decide ctx req with
      | Placement.Place_at addr -> check_commit addr size
      | Placement.Place_split { addr; capacity } ->
          if capacity < min_prefix then
            QCheck.Test.fail_reportf "split capacity %d below min_prefix %d" capacity
              min_prefix;
          if capacity >= size then
            QCheck.Test.fail_reportf "split capacity %d not smaller than size %d" capacity
              size;
          check_commit addr capacity)

(* -- cost accounting invariants -- *)

let rewrite strategy binary =
  let config = { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = strategy } in
  Zipr.Pipeline.rewrite ~config ~transforms:[ Transforms.Null.transform ] binary

let test_cost_matches_terms () =
  let w = Workloads.Synthetic.libc_like ~tests:1 () in
  List.iter
    (fun name ->
      let strategy = Option.get (Placement.by_name name) in
      let r = rewrite strategy w.Workloads.Synthetic.binary in
      let s = r.Zipr.Pipeline.stats in
      let weights =
        Option.value strategy.Placement.weights ~default:Cost.default_weights
      in
      Alcotest.(check (float 1e-6))
        (name ^ ": placement_cost = eval weights (cost_terms stats)")
        (Cost.eval weights (Zipr.Reassemble.cost_terms s))
        s.Zipr.Reassemble.placement_cost;
      Alcotest.(check string) (name ^ ": strategy recorded") name s.Zipr.Reassemble.strategy)
    [ "naive"; "optimized"; "random"; "search" ]

let test_search_stats_exclusive () =
  let w = Workloads.Synthetic.frag_like ~tests:1 () in
  let opt = (rewrite Placement.optimized w.Workloads.Synthetic.binary).Zipr.Pipeline.stats in
  let sea = (rewrite (Placement.search ()) w.Workloads.Synthetic.binary).Zipr.Pipeline.stats in
  Alcotest.(check int) "optimized: no search iterations" 0 opt.Zipr.Reassemble.search_iterations;
  Alcotest.(check int) "optimized: no accepted" 0 opt.Zipr.Reassemble.search_accepted;
  Alcotest.(check bool) "search: iterations counted" true
    (sea.Zipr.Reassemble.search_iterations > 0);
  Alcotest.(check bool) "search: accepted+rejected <= iterations" true
    (sea.Zipr.Reassemble.search_accepted + sea.Zipr.Reassemble.search_rejected
    <= sea.Zipr.Reassemble.search_iterations)

(* -- quality: search never loses to optimized where it matters -- *)

let test_search_beats_optimized () =
  List.iter
    (fun (label, (w : Workloads.Synthetic.spec)) ->
      let opt = rewrite Placement.optimized w.Workloads.Synthetic.binary in
      let sea = rewrite (Placement.search ()) w.Workloads.Synthetic.binary in
      let size r = Zelf.Binary.file_size r.Zipr.Pipeline.rewritten in
      Alcotest.(check bool)
        (label ^ ": search output no larger than optimized")
        true
        (size sea <= size opt);
      Alcotest.(check bool)
        (label ^ ": search cost no worse than optimized")
        true
        (sea.Zipr.Pipeline.stats.Zipr.Reassemble.placement_cost
        <= opt.Zipr.Pipeline.stats.Zipr.Reassemble.placement_cost))
    [
      ("libc-like", Workloads.Synthetic.libc_like ~tests:1 ());
      ("frag-like", Workloads.Synthetic.frag_like ~tests:1 ());
    ]

(* -- corpus determinism across worker counts -- *)

let test_jobs_identity () =
  let items =
    List.map
      (fun (it : Workloads.Scale.item) ->
        {
          Parallel.Corpus.name = it.Workloads.Scale.name;
          data = Zelf.Binary.serialize it.Workloads.Scale.binary;
        })
      (Workloads.Scale.corpus ~seed:9 ~count:12 ())
  in
  let config =
    { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = Placement.search () }
  in
  let outputs jobs =
    let r = Parallel.Corpus.rewrite_all ~jobs ~config ~corpus_seed:3 items in
    List.map
      (fun (e : Parallel.Corpus.entry) ->
        match e.Parallel.Corpus.result with
        | Ok o -> Digest.bytes o.Parallel.Corpus.rewritten
        | Error m -> failwith m)
      r.Parallel.Corpus.entries
  in
  Alcotest.(check bool) "search corpus byte-identical at jobs 1 vs 4" true
    (outputs 1 = outputs 4)

(* -- merge keeps the strategy label honest -- *)

let test_merge_strategy_label () =
  let a = { Zipr.Reassemble.zero_stats with Zipr.Reassemble.strategy = "search" } in
  let b = { Zipr.Reassemble.zero_stats with Zipr.Reassemble.strategy = "search" } in
  let c = { Zipr.Reassemble.zero_stats with Zipr.Reassemble.strategy = "optimized" } in
  Alcotest.(check string) "agreeing names survive" "search"
    (Zipr.Reassemble.merge_stats a b).Zipr.Reassemble.strategy;
  Alcotest.(check string) "identity on zero" "search"
    (Zipr.Reassemble.merge_stats Zipr.Reassemble.zero_stats a).Zipr.Reassemble.strategy;
  Alcotest.(check string) "disagreement is mixed" "mixed"
    (Zipr.Reassemble.merge_stats a c).Zipr.Reassemble.strategy

let suite =
  [
    Alcotest.test_case "weight specs parse, round-trip and reject garbage" `Quick
      test_weights_spec;
    Alcotest.test_case "resolve validates names and knobs" `Quick test_resolve;
    QCheck_alcotest.to_alcotest prop_search_decisions_sound;
    Alcotest.test_case "placement_cost is Cost.eval over cost_terms" `Quick
      test_cost_matches_terms;
    Alcotest.test_case "search counters live only under search" `Quick
      test_search_stats_exclusive;
    Alcotest.test_case "search never loses to optimized (libc, frag)" `Quick
      test_search_beats_optimized;
    Alcotest.test_case "corpus outputs byte-identical at jobs 1 vs 4" `Quick
      test_jobs_identity;
    Alcotest.test_case "merged stats keep the strategy label honest" `Quick
      test_merge_strategy_label;
  ]
