(* Tests for the Routine mini-assembler (the "link in new code" API). *)

module Db = Irdb.Db
module Insn = Zvm.Insn
module Reg = Zvm.Reg
module Cond = Zvm.Cond

let fresh_db () =
  Db.create
    ~orig:
      (Zelf.Binary.create ~entry:0x1000
         [ Zelf.Section.make ~name:".text" ~kind:Zelf.Section.Text ~vaddr:0x1000 (Bytes.make 8 '\x90') ])
    ()

let test_build_links_fallthrough () =
  let db = fresh_db () in
  let head = Zipr.Routine.(build db [ insn (Insn.Push Reg.R0); insn (Insn.Pop Reg.R0); insn Insn.Ret ]) in
  let r1 = Db.row db head in
  Alcotest.(check bool) "head insn" true (r1.Db.insn = Insn.Push Reg.R0);
  match r1.Db.fallthrough with
  | Some n2 -> (
      let r2 = Db.row db n2 in
      Alcotest.(check bool) "second" true (r2.Db.insn = Insn.Pop Reg.R0);
      match r2.Db.fallthrough with
      | Some n3 ->
          Alcotest.(check bool) "third" true ((Db.row db n3).Db.insn = Insn.Ret);
          Alcotest.(check (option int)) "chain ends" None (Db.row db n3).Db.fallthrough
      | None -> Alcotest.fail "chain broken")
  | None -> Alcotest.fail "chain broken"

let test_labels_and_branches () =
  let db = fresh_db () in
  let head, lbls =
    Zipr.Routine.(
      labels db
        [
          label "top";
          insn (Insn.Alui (Insn.Subi, Reg.R0, 1));
          insn (Insn.Cmpi (Reg.R0, 0));
          jcc_to Cond.Ne "top";
          insn Insn.Ret;
        ])
  in
  Alcotest.(check (option int)) "label bound to head" (Some head) (List.assoc_opt "top" lbls);
  (* find the jcc row and check its target *)
  let rec find id =
    let r = Db.row db id in
    match r.Db.insn with
    | Insn.Jcc _ -> r
    | _ -> ( match r.Db.fallthrough with Some n -> find n | None -> Alcotest.fail "no jcc")
  in
  Alcotest.(check (option int)) "back edge" (Some head) (find head).Db.target

let test_branch_to_existing_row () =
  let db = fresh_db () in
  let continuation = Db.add_insn db Insn.Halt in
  let head = Zipr.Routine.(build db [ insn Insn.Nop; jmp_row continuation ]) in
  let rec last id =
    match (Db.row db id).Db.fallthrough with Some n -> last n | None -> id
  in
  Alcotest.(check (option int)) "jumps to continuation" (Some continuation)
    (Db.row db (last head)).Db.target

let test_fallthrough_to_row () =
  let db = fresh_db () in
  let continuation = Db.add_insn db Insn.Halt in
  let head =
    Zipr.Routine.(build db [ insn (Insn.Movi (Reg.R0, 1)); fallthrough_to continuation ])
  in
  Alcotest.(check (option int)) "falls through" (Some continuation)
    (Db.row db head).Db.fallthrough

let test_rejects_direct_branch_insn () =
  let db = fresh_db () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Zipr.Routine.(build db [ insn (Insn.Jmp (Insn.Near, 5)) ]));
       false
     with Invalid_argument _ -> true)

let test_rejects_unknown_label () =
  let db = fresh_db () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Zipr.Routine.(build db [ jmp_to "nowhere" ]));
       false
     with Invalid_argument _ -> true)

let test_rejects_duplicate_label () =
  let db = fresh_db () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Zipr.Routine.(build db [ label "a"; insn Insn.Nop; label "a"; insn Insn.Ret ]));
       false
     with Invalid_argument _ -> true)

let test_routine_executes_after_rewrite () =
  (* End-to-end: a transform that links in a routine computing 3*r0+1 on
     entry and calls it, then rewrite and run. *)
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let tweak =
    Zipr.Transform.make ~name:"triple-mangle" ~describe:"test" (fun db ->
        let routine =
          Zipr.Routine.(
            build db
              [
                insn (Insn.Mov (Reg.R4, Reg.R0));
                insn (Insn.Alu (Insn.Add, Reg.R0, Reg.R4));
                insn (Insn.Alu (Insn.Add, Reg.R0, Reg.R4));
                insn (Insn.Alui (Insn.Addi, Reg.R0, 1));
                insn Insn.Ret;
              ])
        in
        (* Interpose a call to the routine at the program entry. *)
        let entry = Irdb.Db.entry db in
        ignore (Irdb.Db.insert_before db entry (Insn.Call 0));
        Irdb.Db.set_target db entry (Some routine))
  in
  let r = Zipr.Pipeline.rewrite ~transforms:[ tweak ] binary in
  let result = Zelf.Image.boot r.Zipr.Pipeline.rewritten ~input:"\x03" in
  (* The program still completes; the routine ran at entry (clobbering r0
     before the receive, which overwrites it — so behaviour is unchanged,
     proving the link-in is at least safely executable). *)
  Alcotest.(check bool) "exits cleanly" true (result.Zvm.Vm.stop = Zvm.Vm.Exited 0)

let suite =
  [
    Alcotest.test_case "fallthrough chain" `Quick test_build_links_fallthrough;
    Alcotest.test_case "labels/branches" `Quick test_labels_and_branches;
    Alcotest.test_case "branch to row" `Quick test_branch_to_existing_row;
    Alcotest.test_case "fallthrough to row" `Quick test_fallthrough_to_row;
    Alcotest.test_case "rejects direct branch" `Quick test_rejects_direct_branch_insn;
    Alcotest.test_case "rejects unknown label" `Quick test_rejects_unknown_label;
    Alcotest.test_case "rejects duplicate label" `Quick test_rejects_duplicate_label;
    Alcotest.test_case "routine executes" `Quick test_routine_executes_after_rewrite;
  ]
