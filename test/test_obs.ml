(* The observability layer: span nesting, counter merge semantics, the
   exporters, and the two hard promises instrumentation makes to the
   pipeline — a no-op disabled path, and byte-identical rewrites with
   tracing on or off at any job count. *)

module Counters = Obs.Counters
module Tracer = Obs.Tracer

(* Install a fresh sink for [f]; always tear it down, so a failing test
   cannot leak a global sink into later tests. *)
let with_sink f =
  let sink = Tracer.create () in
  Obs.install sink;
  Fun.protect ~finally:(fun () -> Obs.disable ()) (fun () -> f sink)

(* -- a minimal JSON validity checker (no JSON library in the tree) -- *)

exception Bad_json of string

let check_json s =
  let n = String.length s in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad_json m)) fmt in
  let rec skip_ws i =
    if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r') then
      skip_ws (i + 1)
    else i
  in
  let expect c i =
    if i < n && s.[i] = c then i + 1 else bad "expected %c at %d" c i
  in
  let rec value i =
    let i = skip_ws i in
    if i >= n then bad "eof wanting a value"
    else
      match s.[i] with
      | '{' -> obj (skip_ws (i + 1))
      | '[' -> arr (skip_ws (i + 1))
      | '"' -> string_lit (i + 1)
      | 't' -> lit "true" i
      | 'f' -> lit "false" i
      | 'n' -> lit "null" i
      | '-' | '0' .. '9' -> number i
      | c -> bad "unexpected %c at %d" c i
  and lit word i =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then i + l else bad "bad literal at %d" i
  and number i =
    let j = ref (if s.[i] = '-' then i + 1 else i) in
    let digits k =
      let st = !j in
      ignore k;
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      if !j = st then bad "expected digit at %d" st
    in
    digits ();
    if !j < n && s.[!j] = '.' then begin incr j; digits () end;
    if !j < n && (s.[!j] = 'e' || s.[!j] = 'E') then begin
      incr j;
      if !j < n && (s.[!j] = '+' || s.[!j] = '-') then incr j;
      digits ()
    end;
    !j
  and string_lit i =
    if i >= n then bad "eof in string"
    else
      match s.[i] with
      | '"' -> i + 1
      | '\\' ->
          if i + 1 >= n then bad "eof in escape"
          else (
            match s.[i + 1] with
            | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> string_lit (i + 2)
            | 'u' ->
                if i + 5 >= n then bad "eof in \\u escape"
                else string_lit (i + 6)
            | c -> bad "bad escape \\%c" c)
      | c when Char.code c < 0x20 -> bad "raw control byte in string at %d" i
      | _ -> string_lit (i + 1)
  and obj i =
    if i < n && s.[i] = '}' then i + 1
    else
      let rec members i =
        let i = skip_ws i in
        let i = expect '"' i in
        let i = string_lit i in
        let i = expect ':' (skip_ws i) in
        let i = skip_ws (value i) in
        if i < n && s.[i] = ',' then members (i + 1)
        else expect '}' i
      in
      members i
  and arr i =
    if i < n && s.[i] = ']' then i + 1
    else
      let rec elems i =
        let i = skip_ws (value i) in
        if i < n && s.[i] = ',' then elems (i + 1) else expect ']' i
      in
      elems i
  in
  let stop = skip_ws (value 0) in
  if stop <> n then bad "trailing bytes at %d" stop

let is_valid_json s =
  match check_json s with () -> true | exception Bad_json _ -> false

(* -- span core -- *)

let test_span_nesting () =
  with_sink (fun sink ->
      let r =
        Obs.span "outer" (fun () ->
            Obs.span "mid" (fun () -> Obs.span "leaf" (fun () -> 41)) + 1)
      in
      Alcotest.(check int) "span returns f's value" 42 r;
      let paths = List.map (fun e -> e.Tracer.path) (Tracer.events sink) in
      Alcotest.(check (list string))
        "children complete before parents"
        [ "outer/mid/leaf"; "outer/mid"; "outer" ] paths)

let test_span_containment () =
  with_sink (fun sink ->
      Obs.span "p" (fun () ->
          Obs.span "a" (fun () -> ());
          Obs.span "b" (fun () -> ()));
      let find p = List.find (fun e -> e.Tracer.path = p) (Tracer.events sink) in
      let p = find "p" and a = find "p/a" and b = find "p/b" in
      List.iter
        (fun (e : Tracer.event) ->
          Alcotest.(check bool) "ts >= 0" true (e.Tracer.ts_us >= 0);
          Alcotest.(check bool) "dur >= 0" true (e.Tracer.dur_us >= 0))
        [ p; a; b ];
      let within (c : Tracer.event) (par : Tracer.event) =
        c.Tracer.ts_us >= par.Tracer.ts_us
        && c.Tracer.ts_us + c.Tracer.dur_us <= par.Tracer.ts_us + par.Tracer.dur_us
      in
      Alcotest.(check bool) "a within p" true (within a p);
      Alcotest.(check bool) "b within p" true (within b p);
      Alcotest.(check bool) "siblings ordered" true
        (a.Tracer.ts_us + a.Tracer.dur_us <= b.Tracer.ts_us))

let test_span_exception_unwinds () =
  with_sink (fun sink ->
      (try Obs.span "top" (fun () -> Obs.span "boom" (fun () -> failwith "x"))
       with Failure _ -> ());
      let paths = List.map (fun e -> e.Tracer.path) (Tracer.events sink) in
      Alcotest.(check (list string))
        "both spans recorded despite the raise" [ "top/boom"; "top" ] paths;
      (* The DLS stack unwound: a fresh span is a root again. *)
      Obs.span "after" (fun () -> ());
      let last = List.nth (Tracer.events sink) 2 in
      Alcotest.(check string) "stack unwound" "after" last.Tracer.path)

let test_root_span_detaches () =
  with_sink (fun sink ->
      Obs.span "outer" (fun () -> Obs.span ~root:true "task" (fun () ->
          Obs.span "inner" (fun () -> ())));
      let paths = List.map (fun e -> e.Tracer.path) (Tracer.events sink) in
      Alcotest.(check (list string))
        "root span ignores the enclosing stack"
        [ "task/inner"; "task"; "outer" ] paths)

let test_now_monotonic () =
  let sink = Tracer.create () in
  let last = ref 0 in
  for _ = 1 to 10_000 do
    let t = Tracer.now sink in
    if t < !last then Alcotest.failf "clock went backwards: %d after %d" t !last;
    last := t
  done

(* -- disabled path -- *)

let test_null_sink_no_effect () =
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  Alcotest.(check int) "span passes value through" 7 (Obs.span "x" (fun () -> 7));
  Obs.count "nope" 5;
  Obs.gauge_max "nope" 5;
  Obs.merge_counters (Counters.create ());
  (* None of the above may leave residue in a sink installed later. *)
  with_sink (fun sink ->
      Alcotest.(check int) "no spans leak in" 0 (List.length (Tracer.events sink));
      Alcotest.(check int) "no counters leak in" 0
        (List.length (Counters.snapshot (Tracer.counters sink))));
  (* An exception raised under a disabled span propagates untouched. *)
  Alcotest.check_raises "raise passes through" (Failure "pp") (fun () ->
      Obs.span "x" (fun () -> failwith "pp"))

(* -- counters -- *)

let test_counter_kinds () =
  let c = Counters.create () in
  let s = Counters.counter c "s" and m = Counters.gauge c "m" in
  Counters.bump s 3;
  Counters.bump s 4;
  Counters.bump m 3;
  Counters.bump m 2;
  Counters.bump m 4;
  Alcotest.(check int) "sum adds" 7 (Counters.get s);
  Alcotest.(check int) "max keeps high-water" 4 (Counters.get m);
  Alcotest.(check bool) "idempotent registration" true (Counters.counter c "s" == s);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Counters.cell: \"s\" registered with another kind") (fun () ->
      ignore (Counters.gauge c "s"))

let test_counter_merge_commutes =
  QCheck.Test.make ~name:"counter merge is schedule-independent" ~count:50
    QCheck.(pair (list (int_bound 1000)) (int_bound 3))
    (fun (bumps, extra_domains) ->
      let domains = 1 + extra_domains in
      (* Shard the bump list round-robin across domains, each bumping a
         shared registry concurrently; also build per-domain registries
         and merge them in both orders. *)
      let shared = Counters.create () in
      let shard d =
        let local = Counters.create () in
        let sc = Counters.counter shared "s" and sm = Counters.gauge shared "m" in
        let lc = Counters.counter local "s" and lm = Counters.gauge local "m" in
        List.iteri
          (fun i v ->
            if i mod domains = d then begin
              Counters.bump sc v;
              Counters.bump sm v;
              Counters.bump lc v;
              Counters.bump lm v
            end)
          bumps;
        local
      in
      let locals =
        List.map Domain.join (List.init domains (fun d -> Domain.spawn (fun () -> shard d)))
      in
      let expected_sum = List.fold_left ( + ) 0 bumps in
      let expected_max = List.fold_left max 0 bumps in
      let into_fwd = Counters.create () and into_rev = Counters.create () in
      List.iter (fun l -> Counters.merge ~into:into_fwd l) locals;
      List.iter (fun l -> Counters.merge ~into:into_rev l) (List.rev locals);
      let get reg = (Counters.get (Counters.counter reg "s"), Counters.get (Counters.gauge reg "m")) in
      get shared = (expected_sum, expected_max)
      && get into_fwd = (expected_sum, expected_max)
      && get into_fwd = get into_rev)

(* -- exporters -- *)

let populated_sink () =
  with_sink (fun sink ->
      Obs.span "ph\"ase" ~args:[ ("k", "v\\w") ] (fun () ->
          Obs.span "inner" (fun () -> ()));
      Obs.count "c.one" 3;
      Obs.gauge_max "g.two" 9;
      sink)

let test_chrome_json_valid () =
  let sink = populated_sink () in
  let j = Tracer.chrome_json sink in
  Alcotest.(check bool) "chrome export parses as JSON" true (is_valid_json j);
  (* The escaped name must round-trip into the output. *)
  Alcotest.(check bool) "escapes quotes" true
    (let needle = "ph\\\"ase" in
     let rec find i =
       i + String.length needle <= String.length j
       && (String.sub j i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let test_report_json_valid () =
  let sink = populated_sink () in
  Alcotest.(check bool) "report export parses as JSON" true
    (is_valid_json (Tracer.report_json sink));
  let agg = Tracer.aggregate sink in
  Alcotest.(check (list string))
    "aggregate rows sorted by path"
    [ "ph\"ase"; "ph\"ase/inner" ]
    (List.map (fun r -> r.Tracer.row_path) agg);
  List.iter
    (fun r ->
      Alcotest.(check bool) "row totals sane" true
        (r.Tracer.count = 1 && r.Tracer.total_us >= 0
        && r.Tracer.min_us <= r.Tracer.max_us))
    agg

let test_empty_sink_exports () =
  let sink = Tracer.create () in
  Alcotest.(check bool) "empty chrome export valid" true (is_valid_json (Tracer.chrome_json sink));
  Alcotest.(check bool) "empty report valid" true (is_valid_json (Tracer.report_json sink))

(* -- determinism regressions -- *)

let rewrite_bytes binary =
  let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Cfi.transform ] binary in
  Zelf.Binary.serialize r.Zipr.Pipeline.rewritten

let test_traced_rewrite_identical () =
  List.iter
    (fun (name, (w : Workloads.Synthetic.spec)) ->
      let plain = rewrite_bytes w.Workloads.Synthetic.binary in
      let traced = with_sink (fun _ -> rewrite_bytes w.Workloads.Synthetic.binary) in
      Alcotest.(check bool)
        (name ^ ": traced rewrite is byte-identical")
        true (Bytes.equal plain traced))
    [
      ("libc-like", Workloads.Synthetic.libc_like ~seed:5 ~tests:0 ());
      ("frag-like", Workloads.Synthetic.frag_like ~seed:5 ~tests:0 ());
    ]

let corpus_items () =
  List.map
    (fun seed ->
      let b, _ = Cgc.Cb_gen.generate ~seed Cgc.Cb_gen.default_profile in
      {
        Parallel.Corpus.name = Printf.sprintf "cb%d" seed;
        data = Zelf.Binary.serialize b;
      })
    [ 1; 2; 3; 4; 5 ]

let test_corpus_trace_jobs_independent () =
  let items = corpus_items () in
  let run jobs =
    with_sink (fun sink ->
        let report = Parallel.Corpus.rewrite_all ~jobs ~corpus_seed:9 items in
        (Tracer.deterministic_summary sink, report))
  in
  let summary1, report1 = run 1 in
  let summary4, report4 = run 4 in
  Alcotest.(check string) "aggregated trace is --jobs independent" summary1 summary4;
  List.iter2
    (fun (a : Parallel.Corpus.entry) (b : Parallel.Corpus.entry) ->
      match (a.Parallel.Corpus.result, b.Parallel.Corpus.result) with
      | Ok x, Ok y ->
          Alcotest.(check bool)
            (a.Parallel.Corpus.name ^ ": jobs 1 vs 4 byte-identical under tracing")
            true
            (Bytes.equal x.Parallel.Corpus.rewritten y.Parallel.Corpus.rewritten)
      | _ -> Alcotest.fail "corpus rewrite failed")
    report1.Parallel.Corpus.entries report4.Parallel.Corpus.entries;
  (* And tracing itself never changed the bytes: compare against untraced. *)
  let untraced = Parallel.Corpus.rewrite_all ~jobs:1 ~corpus_seed:9 items in
  List.iter2
    (fun (a : Parallel.Corpus.entry) (b : Parallel.Corpus.entry) ->
      match (a.Parallel.Corpus.result, b.Parallel.Corpus.result) with
      | Ok x, Ok y ->
          Alcotest.(check bool) "traced vs untraced byte-identical" true
            (Bytes.equal x.Parallel.Corpus.rewritten y.Parallel.Corpus.rewritten)
      | _ -> Alcotest.fail "corpus rewrite failed")
    untraced.Parallel.Corpus.entries report1.Parallel.Corpus.entries

let test_pipeline_counters_populate () =
  with_sink (fun sink ->
      let w = Workloads.Synthetic.libc_like ~seed:5 ~tests:0 () in
      ignore (rewrite_bytes w.Workloads.Synthetic.binary);
      let snap = Counters.snapshot (Tracer.counters sink) in
      (* A tier that never won its race is simply unregistered — read 0. *)
      let get n =
        match List.find_opt (fun (n', _, _) -> n' = n) snap with
        | Some (_, _, v) -> v
        | None -> 0
      in
      Alcotest.(check bool) "placements recorded" true
        (get "reassemble.placement_decisions" > 0);
      Alcotest.(check bool) "dollops recorded" true (get "reassemble.dollops_placed" > 0);
      Alcotest.(check bool) "allocator traffic merged" true (get "memspace.alloc_queries" > 0);
      (* A placement decision resolves to exactly one tier. *)
      let tiers =
        get "placement.near_referent" + get "placement.pinned_page" + get "placement.text"
        + get "placement.split" + get "placement.overflow"
      in
      Alcotest.(check int) "tier outcomes sum to decisions"
        (get "reassemble.placement_decisions") tiers)

let suite =
  [
    Alcotest.test_case "span nesting order" `Quick test_span_nesting;
    Alcotest.test_case "span containment" `Quick test_span_containment;
    Alcotest.test_case "span exception unwind" `Quick test_span_exception_unwinds;
    Alcotest.test_case "root span detaches" `Quick test_root_span_detaches;
    Alcotest.test_case "clock monotonic" `Quick test_now_monotonic;
    Alcotest.test_case "null sink no effect" `Quick test_null_sink_no_effect;
    Alcotest.test_case "counter kinds" `Quick test_counter_kinds;
    QCheck_alcotest.to_alcotest test_counter_merge_commutes;
    Alcotest.test_case "chrome export valid json" `Quick test_chrome_json_valid;
    Alcotest.test_case "report export valid json" `Quick test_report_json_valid;
    Alcotest.test_case "empty sink exports" `Quick test_empty_sink_exports;
    Alcotest.test_case "traced rewrite byte-identical" `Slow test_traced_rewrite_identical;
    Alcotest.test_case "corpus trace jobs-independent" `Slow test_corpus_trace_jobs_independent;
    Alcotest.test_case "pipeline counters populate" `Slow test_pipeline_counters_populate;
  ]
