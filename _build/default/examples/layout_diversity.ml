(* Code-layout diversity: the same program rewritten under different
   seeds yields differently arranged — but behaviourally identical —
   binaries, the moving-target defense the paper describes as a natural
   by-product of unconstrained references.

   Run with:  dune exec examples/layout_diversity.exe *)

let () =
  let binary, meta = Cgc.Cb_gen.generate ~seed:7 Cgc.Cb_gen.default_profile in
  let pollers = Cgc.Poller.generate meta ~seed:3 ~count:5 in
  let variants =
    List.map
      (fun seed ->
        let config =
          { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = Zipr.Placement.random; seed }
        in
        let r =
          Zipr.Pipeline.rewrite ~config
            ~transforms:[ Transforms.Stirring.make ~p:0.8 ~seed () ]
            binary
        in
        (seed, r.Zipr.Pipeline.rewritten))
      [ 1; 2; 3; 4; 5 ]
  in
  (* All variants behave identically to the original... *)
  List.iter
    (fun (seed, v) ->
      let chk = Cgc.Poller.functional_check ~orig:binary ~rewritten:v pollers in
      Format.printf "variant %d: %d/%d pollers pass, %d bytes@." seed chk.Cgc.Poller.passed
        chk.Cgc.Poller.total (Zelf.Binary.file_size v))
    variants;
  (* ...yet no two share a text layout. *)
  let texts = List.map (fun (_, v) -> (Zelf.Binary.text v).Zelf.Section.data) variants in
  let distinct = List.length (List.sort_uniq compare texts) in
  Format.printf "distinct text layouts: %d of %d@." distinct (List.length variants);
  (* Show where the first instructions of each variant diverge. *)
  List.iteri
    (fun i t ->
      Format.printf "variant %d text[0..24] = %s@." (i + 1)
        (Zipr_util.Hex.of_bytes (Bytes.sub t 0 24)))
    texts
