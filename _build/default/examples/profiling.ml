(* A non-security use of the transformation API: basic-block execution
   profiling.  The transform inserts counter increments at block heads and
   a data section to hold them; after a run, the counters identify the
   hot path — no compiler, no source, no debug info.

   Run with:  dune exec examples/profiling.exe *)

let () =
  let binary, meta = Cgc.Cb_gen.generate ~seed:31 Cgc.Cb_gen.default_profile in
  let handle = Transforms.Profile_count.make () in
  let r =
    Zipr.Pipeline.rewrite ~transforms:[ handle.Transforms.Profile_count.transform ] binary
  in
  let rewritten = r.Zipr.Pipeline.rewritten in
  (* Drive the instrumented binary through a poller workload. *)
  let input =
    String.concat ""
      (List.map
         (fun s -> s.Cgc.Poller.input)
         (Cgc.Poller.generate meta ~seed:9 ~count:1))
  in
  let vm = Zelf.Image.vm_of rewritten ~input in
  let result = Zvm.Vm.run vm in
  Format.printf "instrumented run: %s, %d instructions@."
    (Zvm.Vm.stop_to_string result.Zvm.Vm.stop)
    result.Zvm.Vm.insns;
  (* Read the counters back out of the VM's memory. *)
  let slots = handle.Transforms.Profile_count.slots () in
  let counts =
    List.map
      (fun (row, addr) -> (row, Transforms.Profile_count.read_counter (Zvm.Vm.mem vm) ~addr))
      slots
  in
  let hot = List.sort (fun (_, a) (_, b) -> compare b a) counts in
  Format.printf "instrumented blocks: %d@." (List.length slots);
  Format.printf "hottest blocks (IR row id -> executions):@.";
  List.iteri
    (fun i (row, count) -> if i < 8 then Format.printf "  row %5d: %6d@." row count)
    hot;
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  Format.printf "total block executions: %d@." total
