(* The CGC story in one program: a vulnerable service, a working exploit,
   and a CFI rewrite that stops it without breaking the service.

   Run with:  dune exec examples/cfi_protection.exe *)

let () =
  (* A challenge binary with a stack-overflow vulnerability, straight from
     the corpus generator. *)
  let binary, meta = Cgc.Cb_gen.generate ~seed:2016 Cgc.Cb_gen.default_profile in
  Format.printf "challenge binary: %d bytes, commands %s@."
    (Zelf.Binary.file_size binary)
    (String.concat "" (List.map (String.make 1) meta.Cgc.Cb_gen.commands));
  (* Its pollers (functionality probes). *)
  let pollers = Cgc.Poller.generate meta ~seed:1 ~count:10 in
  (* 1. The proof of vulnerability hijacks control flow on the original. *)
  (match Cgc.Pov.attempt binary meta with
  | Some Cgc.Pov.Exploited -> Format.printf "PoV vs original: EXPLOITED (shellcode ran)@."
  | Some (Cgc.Pov.Blocked w) -> Format.printf "PoV vs original: blocked?! %s@." w
  | Some (Cgc.Pov.Inconclusive w) -> Format.printf "PoV vs original: inconclusive: %s@." w
  | None -> Format.printf "no PoV@.");
  (* 2. Rewriting alone is not a defense. *)
  let null = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] binary in
  (match Cgc.Pov.attempt null.Zipr.Pipeline.rewritten meta with
  | Some Cgc.Pov.Exploited -> Format.printf "PoV vs Null rewrite: still EXPLOITED@."
  | Some outcome ->
      Format.printf "PoV vs Null rewrite: %s@."
        (match outcome with Cgc.Pov.Blocked w -> w | Cgc.Pov.Inconclusive w -> w | _ -> "")
  | None -> ());
  (* 3. The CFI transform stops the hijack... *)
  let cfi = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Cfi.transform ] binary in
  (match Cgc.Pov.attempt cfi.Zipr.Pipeline.rewritten meta with
  | Some (Cgc.Pov.Blocked why) -> Format.printf "PoV vs Zipr+CFI: BLOCKED (%s)@." why
  | Some Cgc.Pov.Exploited -> Format.printf "PoV vs Zipr+CFI: exploited?!@."
  | _ -> ());
  (* 4. ...while preserving functionality and staying inside the CGC
     performance envelope. *)
  let eval =
    Cgc.Score.evaluate ~name:"demo" ~orig:binary ~rewritten:cfi.Zipr.Pipeline.rewritten ~meta
      ~pollers
  in
  Format.printf "with CFI: %a@." Cgc.Score.pp_eval eval;
  Format.printf "CFE-style score: %.3f (a blocked PoV doubles the availability score)@."
    (Cgc.Score.total eval)
