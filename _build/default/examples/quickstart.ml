(* Quickstart: author a program, rewrite it, prove nothing changed.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
; A tiny network service: reads bytes, replies with their doubled value,
; quits on 'q'.  Uses a jump table so the rewriter has indirect control
; flow to preserve.
.section rodata 0x200000
table:
    .word reply_double
    .word reply_triple
.section bss 0x400000
buf:
    .space 16
.section text 0x10000
main:
loop:
    movi r0, 0
    movi r1, buf
    movi r2, 1
    sys 2                    ; receive one byte
    cmpi r0, 0
    jeq done
    movi r1, buf
    load8 r3, [r1]
    cmpi r3, 'q'
    jeq done
    mov r4, r3
    andi r4, 1               ; odd bytes triple, even bytes double
    jmpt r4, table
reply_double:
    add r3, r3
    jmp reply
reply_triple:
    mov r5, r3
    add r3, r3
    add r3, r5
reply:
    movi r1, buf
    store8 [r1], r3
    movi r0, 1
    movi r2, 1
    sys 1                    ; transmit the result byte
    jmp loop
done:
    movi r0, 0
    sys 0
|}

let () =
  (* 1. Assemble. *)
  let binary, _symbols =
    match Zasm.Parser.assemble_string source with
    | Ok r -> r
    | Error e -> failwith e
  in
  Format.printf "original binary: %d bytes on disk@." (Zelf.Binary.file_size binary);
  (* 2. Rewrite with the Null transformation: pure rewriting overhead. *)
  let result = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] binary in
  let rewritten = result.Zipr.Pipeline.rewritten in
  Format.printf "rewritten binary: %d bytes on disk@." (Zelf.Binary.file_size rewritten);
  Format.printf "reassembly: %a@." Zipr.Reassemble.pp_stats result.Zipr.Pipeline.stats;
  (* 3. Run both on the same input and compare transcripts. *)
  let input = "\x02\x03\x0aq" in
  let orig = Zelf.Image.boot binary ~input in
  let rewr = Zelf.Image.boot rewritten ~input in
  Format.printf "original output:  %S (%s)@." orig.Zvm.Vm.output
    (Zvm.Vm.stop_to_string orig.Zvm.Vm.stop);
  Format.printf "rewritten output: %S (%s)@." rewr.Zvm.Vm.output
    (Zvm.Vm.stop_to_string rewr.Zvm.Vm.stop);
  assert (orig.Zvm.Vm.output = rewr.Zvm.Vm.output);
  assert (orig.Zvm.Vm.stop = rewr.Zvm.Vm.stop);
  Format.printf "transcripts identical: the rewrite is semantics-preserving.@."
