(* The paper's robustness experiment (§IV-A) as a runnable demo: rewrite
   the large synthetic stand-ins for libc / libjvm / Apache with the Null
   transformation, replay their test suites, and validate the outputs
   structurally — semantic equivalence end to end.

   Run with:  dune exec examples/robustness_null.exe *)

let () =
  Format.printf "%-18s %9s %9s %12s %9s %8s@." "workload" "text(B)" "pins" "rewrite(ms)"
    "tests" "verify";
  List.iter
    (fun (w : Workloads.Synthetic.spec) ->
      let orig = w.Workloads.Synthetic.binary in
      let t0 = Unix.gettimeofday () in
      let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] orig in
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let chk =
        Cgc.Poller.functional_check ~orig ~rewritten:r.Zipr.Pipeline.rewritten
          w.Workloads.Synthetic.test_suite
      in
      let report =
        Zipr.Verify.structural ~orig ~ir:r.Zipr.Pipeline.ir
          ~rewritten:r.Zipr.Pipeline.rewritten
      in
      Format.printf "%-18s %9d %9d %12.1f %5d/%-3d %8s@." w.Workloads.Synthetic.name
        (Zelf.Binary.text orig).Zelf.Section.size
        r.Zipr.Pipeline.stats.Zipr.Reassemble.pins_total ms chk.Cgc.Poller.passed
        chk.Cgc.Poller.total
        (if Zipr.Verify.ok report then "ok" else "ISSUES");
      assert (chk.Cgc.Poller.passed = chk.Cgc.Poller.total))
    (Workloads.Synthetic.all ());
  Format.printf
    "every workload — including the libc-like binary full of data islands and hidden code —@.";
  Format.printf "passes its complete test suite after rewriting, the paper's §IV-A result.@."
