examples/profiling.ml: Cgc Format List String Transforms Zelf Zipr Zvm
