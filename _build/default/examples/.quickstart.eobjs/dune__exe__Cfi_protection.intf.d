examples/cfi_protection.mli:
