examples/layout_diversity.ml: Bytes Cgc Format List Transforms Zelf Zipr Zipr_util
