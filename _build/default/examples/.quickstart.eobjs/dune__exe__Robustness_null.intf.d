examples/robustness_null.mli:
