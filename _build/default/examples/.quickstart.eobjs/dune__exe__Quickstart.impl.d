examples/quickstart.ml: Format Transforms Zasm Zelf Zipr Zvm
