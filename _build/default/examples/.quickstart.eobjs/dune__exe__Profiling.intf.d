examples/profiling.mli:
