examples/cfi_protection.ml: Cgc Format List String Transforms Zelf Zipr
