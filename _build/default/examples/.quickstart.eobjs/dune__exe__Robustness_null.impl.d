examples/robustness_null.ml: Cgc Format List Transforms Unix Workloads Zelf Zipr
