examples/quickstart.mli:
