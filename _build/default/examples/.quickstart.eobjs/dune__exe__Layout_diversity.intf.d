examples/layout_diversity.mli:
