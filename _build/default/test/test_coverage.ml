(* Focused coverage for small APIs not exercised elsewhere. *)

module Insn = Zvm.Insn
module Reg = Zvm.Reg
module Cond = Zvm.Cond

(* -- Codebuf -- *)

let test_codebuf_regions () =
  let cb = Zipr.Codebuf.create ~text_lo:0x1000 ~text_hi:0x1100 ~overflow_base:0x8000 in
  Zipr.Codebuf.write32 cb 0x1000 0xdeadbeef;
  Alcotest.(check int) "text readback" 0xef (Zipr.Codebuf.read8 cb 0x1000);
  Zipr.Codebuf.write8 cb 0x8005 0x42;
  Alcotest.(check int) "overflow readback" 0x42 (Zipr.Codebuf.read8 cb 0x8005);
  Alcotest.(check int) "high-water" 6 (Zipr.Codebuf.overflow_used cb);
  Alcotest.(check int) "text image size" 0x100 (Bytes.length (Zipr.Codebuf.text_image cb));
  Alcotest.(check int) "overflow image" 6 (Bytes.length (Zipr.Codebuf.overflow_image cb));
  Alcotest.(check bool) "outside regions rejected" true
    (try
       Zipr.Codebuf.write8 cb 0x2000 1;
       false
     with Invalid_argument _ -> true)

let test_codebuf_write_insn () =
  let cb = Zipr.Codebuf.create ~text_lo:0 ~text_hi:64 ~overflow_base:0x1000 in
  let len = Zipr.Codebuf.write_insn cb 0 (Insn.Movi (Reg.R1, 0x1234)) in
  Alcotest.(check int) "length" 6 len;
  Alcotest.(check int) "opcode" 0x10 (Zipr.Codebuf.read8 cb 0)

(* -- Encode error paths -- *)

let test_encode_short_branch_range () =
  Alcotest.(check bool) "out-of-range short rejected" true
    (try
       ignore (Zvm.Encode.to_bytes (Insn.Jmp (Insn.Short, 1000)));
       false
     with Invalid_argument _ -> true)

(* -- Binary geometry -- *)

let test_binary_bounds () =
  let b =
    Zelf.Binary.create ~entry:0x1000
      [
        Zelf.Section.make ~name:".text" ~kind:Zelf.Section.Text ~vaddr:0x1000 (Bytes.make 16 'x');
        Zelf.Section.make_bss ~name:".bss" ~vaddr:0x4000 ~size:32;
      ]
  in
  Alcotest.(check int) "min vaddr" 0x1000 (Zelf.Binary.min_vaddr b);
  Alcotest.(check int) "max vend" 0x4020 (Zelf.Binary.max_vend b)

(* -- Cond algebra -- *)

let test_cond_negate_involution () =
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        (Cond.to_string c ^ " double negation")
        true
        (Cond.equal c (Cond.negate (Cond.negate c)));
      (* negation flips evaluation on every flag combination *)
      List.iter
        (fun (eq, lt, ult) ->
          Alcotest.(check bool) "opposite" true
            (Cond.eval c ~eq ~lt ~ult <> Cond.eval (Cond.negate c) ~eq ~lt ~ult))
        [ (false, false, false); (true, false, false); (false, true, true); (true, false, true) ])
    Cond.all

let test_reg_string_roundtrip () =
  Array.iter
    (fun r ->
      Alcotest.(check bool) (Reg.to_string r) true (Reg.of_string (Reg.to_string r) = Some r))
    Reg.all;
  Alcotest.(check bool) "bad name" true (Reg.of_string "r9" = None)

(* -- Interval set odds and ends -- *)

let test_interval_largest_and_fold () =
  let module I = Zipr_util.Interval_set in
  let s = I.add (I.add I.empty ~lo:0 ~hi:10) ~lo:100 ~hi:150 in
  Alcotest.(check (option (pair int int))) "largest" (Some (100, 150)) (I.largest s);
  let total = I.fold (fun lo hi acc -> acc + (hi - lo)) s 0 in
  Alcotest.(check int) "fold total" (I.total s) total

(* -- Histogram rendering -- *)

let test_histogram_render () =
  let h = Zipr_util.Histogram.paper_bins () in
  Zipr_util.Histogram.add h 3.0;
  let s = Zipr_util.Histogram.render h ~title:"t" in
  Alcotest.(check bool) "title present" true (String.length s > 10 && s.[0] = 't')

(* -- Insn misc -- *)

let test_with_displacement () =
  let j = Insn.with_displacement (Insn.Jmp (Insn.Near, 0)) 42 in
  Alcotest.(check bool) "set" true (j = Insn.Jmp (Insn.Near, 42));
  Alcotest.(check bool) "non-branch rejected" true
    (try
       ignore (Insn.with_displacement Insn.Nop 1);
       false
     with Invalid_argument _ -> true)

let test_reads_pc_classification () =
  Alcotest.(check bool) "leap" true (Insn.reads_pc (Insn.Leap (Reg.R0, 4)));
  Alcotest.(check bool) "loada not" false (Insn.reads_pc (Insn.Loada (Reg.R0, 4)))

(* -- Score corner -- *)

let test_score_no_pollers () =
  let binary, meta = Cgc.Cb_gen.generate ~seed:9 Cgc.Cb_gen.default_profile in
  let e = Cgc.Score.evaluate ~name:"x" ~orig:binary ~rewritten:binary ~meta ~pollers:[] in
  Alcotest.(check (float 1e-9)) "functionality defaults" 1.0 e.Cgc.Score.functionality

let suite =
  [
    Alcotest.test_case "codebuf regions" `Quick test_codebuf_regions;
    Alcotest.test_case "codebuf write_insn" `Quick test_codebuf_write_insn;
    Alcotest.test_case "encode range" `Quick test_encode_short_branch_range;
    Alcotest.test_case "binary bounds" `Quick test_binary_bounds;
    Alcotest.test_case "cond negate" `Quick test_cond_negate_involution;
    Alcotest.test_case "reg strings" `Quick test_reg_string_roundtrip;
    Alcotest.test_case "interval largest/fold" `Quick test_interval_largest_and_fold;
    Alcotest.test_case "histogram render" `Quick test_histogram_render;
    Alcotest.test_case "with_displacement" `Quick test_with_displacement;
    Alcotest.test_case "reads_pc" `Quick test_reads_pc_classification;
    Alcotest.test_case "score no pollers" `Quick test_score_no_pollers;
  ]
