(* Integration tests over the large synthetic workloads (the E1
   robustness experiment, §IV-A, as a regression suite). *)

let check_workload ?(transforms = [ Transforms.Null.transform ]) (w : Workloads.Synthetic.spec) =
  let orig = w.Workloads.Synthetic.binary in
  let r = Zipr.Pipeline.rewrite ~transforms orig in
  let chk =
    Cgc.Poller.functional_check ~orig ~rewritten:r.Zipr.Pipeline.rewritten
      w.Workloads.Synthetic.test_suite
  in
  Alcotest.(check int)
    (w.Workloads.Synthetic.name ^ " test suite")
    chk.Cgc.Poller.total chk.Cgc.Poller.passed;
  (* Structural validation on top of the dynamic one. *)
  let report =
    Zipr.Verify.structural ~orig ~ir:r.Zipr.Pipeline.ir ~rewritten:r.Zipr.Pipeline.rewritten
  in
  if not (Zipr.Verify.ok report) then
    Alcotest.failf "%s: %a" w.Workloads.Synthetic.name Zipr.Verify.pp_report report

let test_libc_like () = check_workload (Workloads.Synthetic.libc_like ~tests:40 ())
let test_jvm_like () = check_workload (Workloads.Synthetic.jvm_like ~tests:20 ())
let test_apache_like () = check_workload (Workloads.Synthetic.apache_like ~tests:30 ())

let test_apache_pic () =
  check_workload (Workloads.Synthetic.apache_like ~pic:true ~tests:30 ())

let test_apache_with_cfi () =
  check_workload
    ~transforms:[ Transforms.Cfi.transform ]
    (Workloads.Synthetic.apache_like ~tests:20 ())

let test_libc_pov_blocked_by_cfi () =
  let w = Workloads.Synthetic.libc_like () in
  let r =
    Zipr.Pipeline.rewrite ~transforms:[ Transforms.Cfi.transform ] w.Workloads.Synthetic.binary
  in
  match Cgc.Pov.attempt r.Zipr.Pipeline.rewritten w.Workloads.Synthetic.meta with
  | Some (Cgc.Pov.Blocked _) -> ()
  | Some Cgc.Pov.Exploited -> Alcotest.fail "libc-like PoV not blocked"
  | other ->
      Alcotest.failf "unexpected outcome: %s"
        (match other with
        | None -> "no vuln"
        | Some (Cgc.Pov.Inconclusive w) -> w
        | _ -> "?")

let test_jvm_size_ratio () =
  (* The paper's libjvm is ~5x libc; the synthetic stand-ins keep a
     similar ratio so the throughput scaling experiment is meaningful. *)
  let libc = Workloads.Synthetic.libc_like ~tests:1 () in
  let jvm = Workloads.Synthetic.jvm_like ~tests:1 () in
  let size w = (Zelf.Binary.text w.Workloads.Synthetic.binary).Zelf.Section.size in
  let ratio = float_of_int (size jvm) /. float_of_int (size libc) in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.1f in [2.5, 8]" ratio)
    true
    (ratio >= 2.5 && ratio <= 8.0)

let suite =
  [
    Alcotest.test_case "libc-like null" `Slow test_libc_like;
    Alcotest.test_case "jvm-like null" `Slow test_jvm_like;
    Alcotest.test_case "apache-like null" `Slow test_apache_like;
    Alcotest.test_case "apache-like pic" `Slow test_apache_pic;
    Alcotest.test_case "apache-like cfi" `Slow test_apache_with_cfi;
    Alcotest.test_case "libc-like pov vs cfi" `Slow test_libc_pov_blocked_by_cfi;
    Alcotest.test_case "jvm/libc size ratio" `Quick test_jvm_size_ratio;
  ]
