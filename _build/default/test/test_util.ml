(* Tests for the zipr_util support library. *)

module Rng = Zipr_util.Rng
module Bytebuf = Zipr_util.Bytebuf
module Iset = Zipr_util.Interval_set
module Hex = Zipr_util.Hex
module Histogram = Zipr_util.Histogram
module Stats = Zipr_util.Stats

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    let w = Rng.int_in r 5 9 in
    Alcotest.(check bool) "in closed range" true (w >= 5 && w <= 9)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let test_rng_shuffle_permutation () =
  let r = Rng.create 3 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_bytebuf_roundtrip () =
  let b = Bytebuf.create () in
  Bytebuf.u8 b 0xab;
  Bytebuf.u16 b 0x1234;
  Bytebuf.u32 b 0xdeadbeef;
  Alcotest.(check int) "length" 7 (Bytebuf.length b);
  Alcotest.(check int) "u8" 0xab (Bytebuf.get_u8 b 0);
  Alcotest.(check int) "u32" 0xdeadbeef (Bytebuf.get_u32 b 3)

let test_bytebuf_patch () =
  let b = Bytebuf.create () in
  Bytebuf.u32 b 0;
  Bytebuf.u32 b 0;
  Bytebuf.patch_u32 b 4 0xcafebabe;
  Alcotest.(check int) "patched" 0xcafebabe (Bytebuf.get_u32 b 4);
  Alcotest.(check int) "untouched" 0 (Bytebuf.get_u32 b 0)

let test_bytebuf_patch_out_of_range () =
  let b = Bytebuf.create () in
  Bytebuf.u8 b 1;
  Alcotest.check_raises "patch past end" (Invalid_argument "Bytebuf: position 0+4 out of range [0,1)")
    (fun () -> Bytebuf.patch_u32 b 0 5)

let test_bytebuf_i32_negative () =
  let b = Bytebuf.create () in
  Bytebuf.i32 b (-2);
  Alcotest.(check int) "two's complement" 0xfffffffe (Bytebuf.get_u32 b 0)

let test_iset_add_coalesce () =
  let s = Iset.empty in
  let s = Iset.add s ~lo:10 ~hi:20 in
  let s = Iset.add s ~lo:20 ~hi:30 in
  Alcotest.(check (list (pair int int))) "coalesced" [ (10, 30) ] (Iset.intervals s);
  let s = Iset.add s ~lo:5 ~hi:12 in
  Alcotest.(check (list (pair int int))) "extended" [ (5, 30) ] (Iset.intervals s)

let test_iset_remove_split () =
  let s = Iset.add Iset.empty ~lo:0 ~hi:100 in
  let s = Iset.remove s ~lo:40 ~hi:60 in
  Alcotest.(check (list (pair int int))) "split" [ (0, 40); (60, 100) ] (Iset.intervals s);
  Alcotest.(check int) "total" 80 (Iset.total s)

let test_iset_mem () =
  let s = Iset.add (Iset.add Iset.empty ~lo:0 ~hi:10) ~lo:20 ~hi:30 in
  Alcotest.(check bool) "in first" true (Iset.mem s 5);
  Alcotest.(check bool) "gap" false (Iset.mem s 15);
  Alcotest.(check bool) "boundary lo" true (Iset.mem s 20);
  Alcotest.(check bool) "boundary hi" false (Iset.mem s 30)

let test_iset_contains_range () =
  let s = Iset.add Iset.empty ~lo:10 ~hi:20 in
  Alcotest.(check bool) "inside" true (Iset.contains_range s ~lo:12 ~hi:18);
  Alcotest.(check bool) "exact" true (Iset.contains_range s ~lo:10 ~hi:20);
  Alcotest.(check bool) "spills" false (Iset.contains_range s ~lo:15 ~hi:25)

let test_iset_first_fit () =
  let s = Iset.add (Iset.add Iset.empty ~lo:0 ~hi:4) ~lo:10 ~hi:100 in
  Alcotest.(check (option int)) "skips small gap" (Some 10) (Iset.first_fit s ~size:8);
  Alcotest.(check (option int)) "uses small gap" (Some 0) (Iset.first_fit s ~size:3);
  Alcotest.(check (option int)) "none" None (Iset.first_fit s ~size:1000)

let test_iset_fit_in_window () =
  let s = Iset.add Iset.empty ~lo:50 ~hi:200 in
  Alcotest.(check (option int)) "window hit" (Some 60) (Iset.fit_in_window s ~lo:60 ~hi:80 ~size:10);
  Alcotest.(check (option int)) "window too small" None
    (Iset.fit_in_window s ~lo:60 ~hi:65 ~size:10);
  Alcotest.(check (option int)) "clamped to member" (Some 50)
    (Iset.fit_in_window s ~lo:0 ~hi:100 ~size:10)

let test_iset_best_fit_near () =
  let s = Iset.add (Iset.add Iset.empty ~lo:0 ~hi:20) ~lo:1000 ~hi:1020 in
  Alcotest.(check (option int)) "near low" (Some 10) (Iset.best_fit_near s ~center:10 ~size:5);
  Alcotest.(check (option int)) "near high" (Some 1000) (Iset.best_fit_near s ~center:990 ~size:5)

let test_iset_qcheck_total =
  QCheck.Test.make ~name:"interval add/remove preserves point membership" ~count:500
    QCheck.(
      pair (small_list (pair (int_bound 200) (int_bound 50))) (small_list (pair (int_bound 200) (int_bound 50))))
    (fun (adds, removes) ->
      let model = Array.make 300 false in
      let s = ref Zipr_util.Interval_set.empty in
      List.iter
        (fun (lo, len) ->
          s := Zipr_util.Interval_set.add !s ~lo ~hi:(lo + len);
          for i = lo to lo + len - 1 do
            model.(i) <- true
          done)
        adds;
      List.iter
        (fun (lo, len) ->
          s := Zipr_util.Interval_set.remove !s ~lo ~hi:(lo + len);
          for i = lo to lo + len - 1 do
            model.(i) <- false
          done)
        removes;
      let ok = ref true in
      for i = 0 to 299 do
        if Zipr_util.Interval_set.mem !s i <> model.(i) then ok := false
      done;
      !ok)

let test_hex_roundtrip () =
  let b = Bytes.of_string "\x00\x01\xfe\xff" in
  Alcotest.(check string) "encode" "0001feff" (Hex.of_bytes b);
  Alcotest.(check bytes) "decode" b (Hex.to_bytes "0001feff")

let test_histogram_bins () =
  let h = Histogram.paper_bins () in
  List.iter (Histogram.add h) [ -1.0; 2.0; 3.0; 7.0; 15.0; 30.0; 80.0 ];
  Alcotest.(check (array int)) "bin counts" [| 1; 2; 1; 1; 1; 1 |] (Histogram.counts h);
  Alcotest.(check int) "total" 7 (Histogram.count h)

let test_histogram_labels () =
  let h = Histogram.paper_bins () in
  Alcotest.(check (list string)) "labels"
    [ "< 0%"; "0-5%"; "5-10%"; "10-20%"; "20-50%"; ">= 50%" ]
    (Histogram.labels h)

let test_stats_basics () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "overhead" 50.0 (Stats.overhead_pct ~baseline:2.0 ~measured:3.0);
  Alcotest.(check (float 1e-9)) "overhead zero base" 0.0 (Stats.overhead_pct ~baseline:0.0 ~measured:3.0)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "bytebuf roundtrip" `Quick test_bytebuf_roundtrip;
    Alcotest.test_case "bytebuf patch" `Quick test_bytebuf_patch;
    Alcotest.test_case "bytebuf patch range" `Quick test_bytebuf_patch_out_of_range;
    Alcotest.test_case "bytebuf i32" `Quick test_bytebuf_i32_negative;
    Alcotest.test_case "interval coalesce" `Quick test_iset_add_coalesce;
    Alcotest.test_case "interval remove" `Quick test_iset_remove_split;
    Alcotest.test_case "interval mem" `Quick test_iset_mem;
    Alcotest.test_case "interval contains_range" `Quick test_iset_contains_range;
    Alcotest.test_case "interval first_fit" `Quick test_iset_first_fit;
    Alcotest.test_case "interval window fit" `Quick test_iset_fit_in_window;
    Alcotest.test_case "interval best_fit_near" `Quick test_iset_best_fit_near;
    QCheck_alcotest.to_alcotest test_iset_qcheck_total;
    Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
    Alcotest.test_case "histogram bins" `Quick test_histogram_bins;
    Alcotest.test_case "histogram labels" `Quick test_histogram_labels;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
  ]
