(* Property-based tests over the whole pipeline.

   The headline invariant is the paper's correctness claim: for any
   program the generator can produce and any input, the Null-transformed
   rewrite has an identical I/O transcript.  Random profiles exercise
   jump tables, function pointers, islands, hidden code, dense pins and
   PIC addressing in random combinations. *)

module Vm = Zvm.Vm

let profile_gen =
  QCheck.Gen.(
    let* n_handlers = int_range 1 6 in
    let* n_helpers = int_range 0 8 in
    let* body_ops = int_range 2 40 in
    let* loop_iters = int_range 1 60 in
    let* use_jump_table = bool in
    let* n_fptrs = oneofl [ 0; 2; 3 ] in
    let* data_islands = int_range 0 2 in
    let* hidden_funcs = int_range 0 1 in
    let* dense_pair = bool in
    let* vuln_fptr = bool in
    let* pic = bool in
    let* mem_span = oneofl [ 0; 64; 512 ] in
    return
      {
        Cgc.Cb_gen.n_handlers;
        n_helpers;
        body_ops;
        loop_iters;
        use_jump_table;
        n_fptrs;
        data_islands;
        hidden_funcs;
        dense_pair;
        vuln = true;
        vuln_fptr;
        pathological = false;
        mem_span;
        pic;
      })

let print_profile (p : Cgc.Cb_gen.profile) =
  Printf.sprintf
    "{handlers=%d helpers=%d ops=%d iters=%d jt=%b fptrs=%d islands=%d hidden=%d dense=%b vfp=%b pic=%b span=%d}"
    p.Cgc.Cb_gen.n_handlers p.Cgc.Cb_gen.n_helpers p.Cgc.Cb_gen.body_ops p.Cgc.Cb_gen.loop_iters
    p.Cgc.Cb_gen.use_jump_table p.Cgc.Cb_gen.n_fptrs p.Cgc.Cb_gen.data_islands
    p.Cgc.Cb_gen.hidden_funcs p.Cgc.Cb_gen.dense_pair p.Cgc.Cb_gen.vuln_fptr p.Cgc.Cb_gen.pic p.Cgc.Cb_gen.mem_span

let arb_case =
  QCheck.make
    ~print:(fun (seed, p, pseed) -> Printf.sprintf "seed=%d pollers=%d %s" seed pseed (print_profile p))
    QCheck.Gen.(
      let* seed = int_range 1 100000 in
      let* p = profile_gen in
      let* pseed = int_range 1 100000 in
      return (seed, p, pseed))

let transcripts_equal binary rewritten scripts =
  let chk = Cgc.Poller.functional_check ~orig:binary ~rewritten scripts in
  chk.Cgc.Poller.passed = chk.Cgc.Poller.total

let null_equivalence strategy (seed, profile, pseed) =
  let binary, meta = Cgc.Cb_gen.generate ~seed profile in
  let scripts = Cgc.Poller.generate meta ~seed:pseed ~count:3 in
  let config = { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = strategy } in
  let r = Zipr.Pipeline.rewrite ~config ~transforms:[ Transforms.Null.transform ] binary in
  transcripts_equal binary r.Zipr.Pipeline.rewritten scripts

let test_null_equiv_optimized =
  QCheck.Test.make ~name:"null rewrite preserves transcripts (optimized)" ~count:40 arb_case
    (null_equivalence Zipr.Placement.optimized)

let test_null_equiv_naive =
  QCheck.Test.make ~name:"null rewrite preserves transcripts (naive)" ~count:25 arb_case
    (null_equivalence Zipr.Placement.naive)

let test_null_equiv_random =
  QCheck.Test.make ~name:"null rewrite preserves transcripts (random)" ~count:25 arb_case
    (null_equivalence Zipr.Placement.random)

let test_cfi_equiv_and_blocks =
  QCheck.Test.make ~name:"CFI preserves transcripts and blocks the PoV" ~count:25 arb_case
    (fun (seed, profile, pseed) ->
      let binary, meta = Cgc.Cb_gen.generate ~seed profile in
      let scripts = Cgc.Poller.generate meta ~seed:pseed ~count:3 in
      let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Cfi.transform ] binary in
      transcripts_equal binary r.Zipr.Pipeline.rewritten scripts
      && Cgc.Pov.attempt r.Zipr.Pipeline.rewritten meta
         <> Some Cgc.Pov.Exploited)

let test_stack_pad_equiv =
  QCheck.Test.make ~name:"stack padding preserves transcripts" ~count:20 arb_case
    (fun (seed, profile, pseed) ->
      let binary, meta = Cgc.Cb_gen.generate ~seed profile in
      let scripts = Cgc.Poller.generate meta ~seed:pseed ~count:3 in
      let r =
        Zipr.Pipeline.rewrite
          ~transforms:[ Transforms.Stack_pad.make ~seed:(seed + 1) () ]
          binary
      in
      transcripts_equal binary r.Zipr.Pipeline.rewritten scripts)

let test_canary_equiv =
  QCheck.Test.make ~name:"canaries preserve transcripts" ~count:20 arb_case
    (fun (seed, profile, pseed) ->
      let binary, meta = Cgc.Cb_gen.generate ~seed profile in
      let scripts = Cgc.Poller.generate meta ~seed:pseed ~count:3 in
      let r =
        Zipr.Pipeline.rewrite ~transforms:[ Transforms.Canary.make ~seed:(seed + 2) () ] binary
      in
      transcripts_equal binary r.Zipr.Pipeline.rewritten scripts)

let test_file_size_bounded =
  QCheck.Test.make ~name:"null rewrite stays within the CGC size threshold" ~count:25 arb_case
    (fun (seed, profile, _) ->
      let binary, _ = Cgc.Cb_gen.generate ~seed profile in
      let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] binary in
      let orig = Zelf.Binary.file_size binary in
      let rewr = Zelf.Binary.file_size r.Zipr.Pipeline.rewritten in
      (* The 20%% CGC threshold is meaningful for realistically sized
         binaries; a tiny adversarial program's fixed costs (sled
         dispatch, islands) can exceed it, so allow an absolute floor. *)
      rewr - orig < max 600 (orig / 5))

let test_rewritten_reparses =
  QCheck.Test.make ~name:"rewritten binaries serialize and reparse" ~count:25 arb_case
    (fun (seed, profile, _) ->
      let binary, _ = Cgc.Cb_gen.generate ~seed profile in
      let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] binary in
      match Zelf.Binary.parse (Zelf.Binary.serialize r.Zipr.Pipeline.rewritten) with
      | Ok _ -> true
      | Error _ -> false)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      test_null_equiv_optimized;
      test_null_equiv_naive;
      test_null_equiv_random;
      test_cfi_equiv_and_blocks;
      test_stack_pad_equiv;
      test_canary_equiv;
      test_file_size_bounded;
      test_rewritten_reparses;
    ]

let test_shadow_stack_equiv =
  QCheck.Test.make ~name:"shadow stack preserves transcripts" ~count:15 arb_case
    (fun (seed, profile, pseed) ->
      let binary, meta = Cgc.Cb_gen.generate ~seed profile in
      let scripts = Cgc.Poller.generate meta ~seed:pseed ~count:3 in
      let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Shadow_stack.transform ] binary in
      transcripts_equal binary r.Zipr.Pipeline.rewritten scripts)

let test_jtrw_equiv =
  QCheck.Test.make ~name:"jump-table rewriting preserves transcripts" ~count:15 arb_case
    (fun (seed, profile, pseed) ->
      let binary, meta = Cgc.Cb_gen.generate ~seed profile in
      let scripts = Cgc.Poller.generate meta ~seed:pseed ~count:3 in
      let r =
        Zipr.Pipeline.rewrite ~transforms:[ Transforms.Jumptable_rewrite.transform ] binary
      in
      transcripts_equal binary r.Zipr.Pipeline.rewritten scripts)

let test_diversity_stack_equiv =
  QCheck.Test.make ~name:"stirring + nop-pad preserve transcripts under random placement"
    ~count:15 arb_case
    (fun (seed, profile, pseed) ->
      let binary, meta = Cgc.Cb_gen.generate ~seed profile in
      let scripts = Cgc.Poller.generate meta ~seed:pseed ~count:3 in
      let config =
        { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = Zipr.Placement.random; seed }
      in
      let r =
        Zipr.Pipeline.rewrite ~config
          ~transforms:
            [ Transforms.Stirring.make ~p:0.7 ~seed (); Transforms.Nop_pad.make ~seed () ]
          binary
      in
      transcripts_equal binary r.Zipr.Pipeline.rewritten scripts)

let test_irdb_stays_valid =
  QCheck.Test.make ~name:"IRDB invariants hold through IR construction + CFI" ~count:15 arb_case
    (fun (seed, profile, _) ->
      let binary, _ = Cgc.Cb_gen.generate ~seed profile in
      let ir = Zipr.Ir_construction.build binary in
      Zipr.Transform.apply_all [ Transforms.Cfi.transform ] ir.Zipr.Ir_construction.db;
      Irdb.Db.validate ir.Zipr.Ir_construction.db = [])

let test_decode_never_raises =
  QCheck.Test.make ~name:"decoder is total over random bytes" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 1 16))
    (fun s ->
      let b = Bytes.of_string s in
      match Zvm.Decode.decode_bytes b ~pos:0 with
      | Ok (insn, len) ->
          len >= 1 && len <= Bytes.length b
          && Bytes.equal (Zvm.Encode.to_bytes insn) (Bytes.sub b 0 len)
      | Error _ -> true)

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest
      [
        test_shadow_stack_equiv;
        test_jtrw_equiv;
        test_diversity_stack_equiv;
        test_irdb_stays_valid;
        test_decode_never_raises;
      ]
