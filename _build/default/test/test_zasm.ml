(* Tests for the assembler: label resolution, relaxation, data directives. *)

open Zasm
module Insn = Zvm.Insn
module Reg = Zvm.Reg
module Cond = Zvm.Cond

let exit_status = function
  | Zvm.Vm.Exited n -> n
  | s -> Alcotest.failf "expected exit, got %s" (Zvm.Vm.stop_to_string s)

let run_builder ?(input = "") b =
  let binary, _symbols = Builder.assemble_exn b in
  Zelf.Image.boot binary ~input

let test_simple_program () =
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  Builder.insn b (Insn.Movi (Reg.R0, 5));
  Builder.insn b (Insn.Alui (Insn.Addi, Reg.R0, 37));
  Builder.insn b (Insn.Sys 0);
  let result = run_builder b in
  Alcotest.(check int) "exit" 42 (exit_status result.Zvm.Vm.stop)

let test_forward_and_backward_branches () =
  let b = Builder.create ~entry:"main" () in
  (* Loop: r0 = 10 decremented to 0. *)
  Builder.label b "main";
  Builder.insn b (Insn.Movi (Reg.R0, 10));
  Builder.insn b (Insn.Movi (Reg.R1, 0));
  Builder.label b "loop";
  Builder.insn b (Insn.Cmpi (Reg.R0, 0));
  Builder.jcc b Cond.Eq "done";
  Builder.insn b (Insn.Alui (Insn.Addi, Reg.R1, 1));
  Builder.insn b (Insn.Alui (Insn.Subi, Reg.R0, 1));
  Builder.jmp b "loop";
  Builder.label b "done";
  Builder.insn b (Insn.Mov (Reg.R0, Reg.R1));
  Builder.insn b (Insn.Sys 0);
  let result = run_builder b in
  Alcotest.(check int) "ten iterations" 10 (exit_status result.Zvm.Vm.stop)

let test_relaxation_grows_long_branches () =
  (* A branch over >127 bytes of code must be emitted in near form; the
     assembled program must still run correctly. *)
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  Builder.jmp b "far";
  for _ = 1 to 60 do
    Builder.insn b (Insn.Movi (Reg.R7, 1))
  done;
  Builder.label b "far";
  Builder.insn b (Insn.Movi (Reg.R0, 1));
  Builder.insn b (Insn.Sys 0);
  let binary, symbols = Builder.assemble_exn b in
  let result = Zelf.Image.boot binary ~input:"" in
  Alcotest.(check int) "runs" 1 (exit_status result.Zvm.Vm.stop);
  (* The jump at "main" must be the 5-byte form: "far" is 360 bytes away. *)
  let main_addr = List.assoc "main" symbols in
  let text = Zelf.Binary.text binary in
  let opcode = Char.code (Bytes.get text.Zelf.Section.data (main_addr - text.Zelf.Section.vaddr)) in
  Alcotest.(check int) "near jmp opcode" 0xe9 opcode

let test_short_branch_stays_short () =
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  Builder.jmp b "next";
  Builder.label b "next";
  Builder.insn b (Insn.Sys 0);
  let binary, symbols = Builder.assemble_exn b in
  let main_addr = List.assoc "main" symbols in
  let text = Zelf.Binary.text binary in
  let opcode = Char.code (Bytes.get text.Zelf.Section.data (main_addr - text.Zelf.Section.vaddr)) in
  Alcotest.(check int) "short jmp opcode" 0xeb opcode

let test_force_short_out_of_range_errors () =
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  Builder.jmp b ~width:Ast.Force_short "far";
  for _ = 1 to 60 do
    Builder.insn b (Insn.Nop)
  done;
  (* pad well past 127 bytes *)
  for _ = 1 to 30 do
    Builder.insn b (Insn.Movi (Reg.R0, 0))
  done;
  Builder.label b "far";
  Builder.insn b (Insn.Sys 0);
  match Builder.assemble b with
  | Error (Assemble.Branch_out_of_range _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Assemble.error_to_string e)
  | Ok _ -> Alcotest.fail "expected out-of-range error"

let test_undefined_label () =
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  Builder.jmp b "nowhere";
  match Builder.assemble b with
  | Error (Assemble.Undefined_label "nowhere") -> ()
  | _ -> Alcotest.fail "expected undefined label"

let test_duplicate_label () =
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  Builder.label b "main";
  Builder.insn b (Insn.Halt);
  match Builder.assemble b with
  | Error (Assemble.Duplicate_label "main") -> ()
  | _ -> Alcotest.fail "expected duplicate label"

let test_call_and_function () =
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  Builder.call b "double";
  Builder.insn b (Insn.Sys 0);
  Builder.label b "double";
  Builder.insn b (Insn.Movi (Reg.R0, 21));
  Builder.insn b (Insn.Alu (Insn.Add, Reg.R0, Reg.R0));
  Builder.insn b (Insn.Ret);
  let result = run_builder b in
  Alcotest.(check int) "double 21" 42 (exit_status result.Zvm.Vm.stop)

let test_rodata_and_loada () =
  let b = Builder.create ~entry:"main" () in
  Builder.rodata_label b "value";
  Builder.rodata_word b (Ast.Abs 123);
  Builder.label b "main";
  Builder.loada_lab b Reg.R0 "value";
  Builder.insn b (Insn.Sys 0);
  let result = run_builder b in
  Alcotest.(check int) "loaded constant" 123 (exit_status result.Zvm.Vm.stop)

let test_jump_table_dispatch () =
  (* A switch over r0 in {0,1,2} via jmpt through a rodata table. *)
  let b = Builder.create ~entry:"main" () in
  Builder.rodata_label b "table";
  Builder.rodata_word b (Ast.Lab "case0");
  Builder.rodata_word b (Ast.Lab "case1");
  Builder.rodata_word b (Ast.Lab "case2");
  Builder.label b "main";
  Builder.insn b (Insn.Movi (Reg.R1, 1));
  Builder.jmpt_lab b Reg.R1 "table";
  Builder.label b "case0";
  Builder.insn b (Insn.Movi (Reg.R0, 100));
  Builder.insn b (Insn.Sys 0);
  Builder.label b "case1";
  Builder.insn b (Insn.Movi (Reg.R0, 101));
  Builder.insn b (Insn.Sys 0);
  Builder.label b "case2";
  Builder.insn b (Insn.Movi (Reg.R0, 102));
  Builder.insn b (Insn.Sys 0);
  let result = run_builder b in
  Alcotest.(check int) "case 1 taken" 101 (exit_status result.Zvm.Vm.stop)

let test_function_pointer_call () =
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  Builder.movi_lab b Reg.R4 "target";
  Builder.insn b (Insn.Callr Reg.R4);
  Builder.insn b (Insn.Sys 0);
  Builder.label b "target";
  Builder.insn b (Insn.Movi (Reg.R0, 77));
  Builder.insn b (Insn.Ret);
  let result = run_builder b in
  Alcotest.(check int) "indirect call" 77 (exit_status result.Zvm.Vm.stop)

let test_pc_relative_leap () =
  (* leap computes the address of a nearby label; jmpr lands there. *)
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  Builder.leap_lab b Reg.R3 "next";
  Builder.insn b (Insn.Jmpr Reg.R3);
  Builder.insn b (Insn.Halt);
  Builder.label b "next";
  Builder.insn b (Insn.Movi (Reg.R0, 9));
  Builder.insn b (Insn.Sys 0);
  let result = run_builder b in
  Alcotest.(check int) "leap target" 9 (exit_status result.Zvm.Vm.stop)

let test_pc_relative_loadp () =
  (* loadp reads a table embedded in the text section. *)
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  Builder.loadp_lab b Reg.R0 "embedded";
  Builder.insn b (Insn.Sys 0);
  Builder.label b "embedded";
  Builder.text_item b (Ast.Word (Ast.Abs 55));
  let result = run_builder b in
  Alcotest.(check int) "embedded constant" 55 (exit_status result.Zvm.Vm.stop)

let test_bss_reservation () =
  let b = Builder.create ~entry:"main" () in
  Builder.bss b "buffer" 256;
  Builder.label b "main";
  Builder.movi_lab b Reg.R1 "buffer";
  Builder.insn b (Insn.Movi (Reg.R2, 7));
  Builder.insn b (Insn.Store { base = Reg.R1; disp = 0; src = Reg.R2 });
  Builder.insn b (Insn.Load { dst = Reg.R0; base = Reg.R1; disp = 0 });
  Builder.insn b (Insn.Sys 0);
  let result = run_builder b in
  Alcotest.(check int) "bss read/write" 7 (exit_status result.Zvm.Vm.stop)

let test_align_directive () =
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  Builder.insn b Insn.Nop;
  Builder.text_item b (Ast.Align 16);
  Builder.label b "aligned";
  Builder.insn b (Insn.Sys 0);
  let _, symbols = Builder.assemble_exn b in
  Alcotest.(check int) "aligned" 0 (List.assoc "aligned" symbols mod 16)

let test_symbols_reported () =
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  Builder.insn b (Insn.Sys 0);
  let _, symbols = Builder.assemble_exn b in
  Alcotest.(check (option int)) "main at text base" (Some 0x10000)
    (List.assoc_opt "main" symbols)

let suite =
  [
    Alcotest.test_case "simple program" `Quick test_simple_program;
    Alcotest.test_case "branches" `Quick test_forward_and_backward_branches;
    Alcotest.test_case "relaxation grows" `Quick test_relaxation_grows_long_branches;
    Alcotest.test_case "short stays short" `Quick test_short_branch_stays_short;
    Alcotest.test_case "force short errors" `Quick test_force_short_out_of_range_errors;
    Alcotest.test_case "undefined label" `Quick test_undefined_label;
    Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
    Alcotest.test_case "call/function" `Quick test_call_and_function;
    Alcotest.test_case "rodata + loada" `Quick test_rodata_and_loada;
    Alcotest.test_case "jump table" `Quick test_jump_table_dispatch;
    Alcotest.test_case "function pointer" `Quick test_function_pointer_call;
    Alcotest.test_case "pc-relative leap" `Quick test_pc_relative_leap;
    Alcotest.test_case "pc-relative loadp" `Quick test_pc_relative_loadp;
    Alcotest.test_case "bss" `Quick test_bss_reservation;
    Alcotest.test_case "align" `Quick test_align_directive;
    Alcotest.test_case "symbols" `Quick test_symbols_reported;
  ]
