(* Tests for the assembly printer: listings must reparse and preserve
   behaviour (decoder -> printer -> parser -> assembler cross-check). *)

let roundtrip binary =
  let listing = Zasm.Printer.program_listing binary in
  match Zasm.Parser.assemble_string listing with
  | Error msg -> Alcotest.failf "listing did not reassemble: %s\n%s" msg listing
  | Ok (binary', _) -> binary'

let check_behaviour ~name ~inputs binary binary' =
  List.iter
    (fun input ->
      let a = Zelf.Image.boot binary ~input in
      let b = Zelf.Image.boot binary' ~input in
      Alcotest.(check string) (name ^ " output") a.Zvm.Vm.output b.Zvm.Vm.output;
      Alcotest.(check string) (name ^ " status")
        (Zvm.Vm.stop_to_string a.Zvm.Vm.stop)
        (Zvm.Vm.stop_to_string b.Zvm.Vm.stop))
    inputs

let test_roundtrip_fib () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let binary' = roundtrip binary in
  check_behaviour ~name:"fib" ~inputs:[ "\x05"; "\x0b" ] binary binary'

let test_roundtrip_dispatch () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let binary' = roundtrip binary in
  check_behaviour ~name:"dispatch" ~inputs:[ "012f0f1q"; "" ] binary binary'

let test_roundtrip_generated_cb () =
  let binary, meta = Cgc.Cb_gen.generate ~seed:21 Cgc.Cb_gen.default_profile in
  let binary' = roundtrip binary in
  let pollers = Cgc.Poller.generate meta ~seed:2 ~count:4 in
  let chk = Cgc.Poller.functional_check ~orig:binary ~rewritten:binary' pollers in
  Alcotest.(check int) "pollers agree" chk.Cgc.Poller.total chk.Cgc.Poller.passed

let test_roundtrip_preserves_entry_and_sizes () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let binary' = roundtrip binary in
  Alcotest.(check int) "entry" binary.Zelf.Binary.entry binary'.Zelf.Binary.entry;
  let t = Zelf.Binary.text binary and t' = Zelf.Binary.text binary' in
  Alcotest.(check int) "text size" t.Zelf.Section.size t'.Zelf.Section.size

let test_listing_is_labelled () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let listing = Zasm.Printer.section_listing binary in
  let contains needle =
    let nl = String.length needle and hl = String.length listing in
    let rec go i = i + nl <= hl && (String.sub listing i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has section header" true (contains ".section text");
  Alcotest.(check bool) "has labels" true (contains ":");
  Alcotest.(check bool) "has a call" true (contains "call L")

let suite =
  [
    Alcotest.test_case "roundtrip fib" `Quick test_roundtrip_fib;
    Alcotest.test_case "roundtrip dispatch" `Quick test_roundtrip_dispatch;
    Alcotest.test_case "roundtrip generated CB" `Quick test_roundtrip_generated_cb;
    Alcotest.test_case "entry/sizes preserved" `Quick test_roundtrip_preserves_entry_and_sizes;
    Alcotest.test_case "listing labelled" `Quick test_listing_is_labelled;
  ]
