(* Tests for the analyses: pinned addresses, jump tables, CFG, functions. *)

module Insn = Zvm.Insn
module Reg = Zvm.Reg
module Ibt = Analysis.Ibt

let build_and_aggregate b =
  let binary, symbols = Zasm.Builder.assemble_exn b in
  (binary, symbols, Disasm.Aggregate.run binary)

let reasons_at pins addr =
  match List.assoc_opt addr (Ibt.pins pins) with
  | Some rs -> List.map Ibt.reason_to_string rs
  | None -> []

let test_entry_pinned () =
  let b = Zasm.Builder.create ~entry:"main" () in
  Zasm.Builder.label b "main";
  Zasm.Builder.insn b Insn.Halt;
  let binary, symbols, agg = build_and_aggregate b in
  let pins = Ibt.compute binary agg in
  Alcotest.(check bool) "entry pinned" true (Ibt.is_pinned pins (List.assoc "main" symbols));
  Alcotest.(check bool) "entry reason" true
    (List.mem "entry" (reasons_at pins (List.assoc "main" symbols)))

let test_data_scan_pins () =
  let b = Zasm.Builder.create ~entry:"main" () in
  Zasm.Builder.rodata_label b "tbl";
  Zasm.Builder.rodata_word b (Zasm.Ast.Lab "fn");
  Zasm.Builder.label b "main";
  Zasm.Builder.insn b Insn.Halt;
  Zasm.Builder.label b "fn";
  Zasm.Builder.insn b Insn.Ret;
  let binary, symbols, agg = build_and_aggregate b in
  let pins = Ibt.compute binary agg in
  Alcotest.(check bool) "fn pinned via data" true
    (List.mem "data-scan" (reasons_at pins (List.assoc "fn" symbols)))

let test_code_immediate_pins () =
  let b = Zasm.Builder.create ~entry:"main" () in
  Zasm.Builder.label b "main";
  Zasm.Builder.movi_lab b Reg.R4 "fn";
  Zasm.Builder.insn b (Insn.Callr Reg.R4);
  Zasm.Builder.insn b Insn.Halt;
  Zasm.Builder.label b "fn";
  Zasm.Builder.insn b Insn.Ret;
  let binary, symbols, agg = build_and_aggregate b in
  let pins = Ibt.compute binary agg in
  Alcotest.(check bool) "fn pinned via immediate" true
    (List.mem "code-immediate" (reasons_at pins (List.assoc "fn" symbols)))

let test_after_call_pins_configurable () =
  let b = Zasm.Builder.create ~entry:"main" () in
  Zasm.Builder.label b "main";
  Zasm.Builder.call b "fn";
  Zasm.Builder.label b "after";
  Zasm.Builder.insn b Insn.Halt;
  Zasm.Builder.label b "fn";
  Zasm.Builder.insn b Insn.Ret;
  let binary, symbols, agg = build_and_aggregate b in
  let after = List.assoc "after" symbols in
  let conservative = Ibt.compute binary agg in
  Alcotest.(check bool) "after-call pinned by default" true
    (List.mem "after-call" (reasons_at conservative after));
  let relaxed = Ibt.compute ~config:{ Ibt.pin_after_calls = false } binary agg in
  Alcotest.(check bool) "not pinned when disabled" true
    (not (List.mem "after-call" (reasons_at relaxed after)))

let test_jump_table_discovery () =
  let b = Zasm.Builder.create ~entry:"main" () in
  Zasm.Builder.rodata_label b "jt";
  Zasm.Builder.rodata_word b (Zasm.Ast.Lab "c0");
  Zasm.Builder.rodata_word b (Zasm.Ast.Lab "c1");
  Zasm.Builder.label b "main";
  Zasm.Builder.insn b (Insn.Movi (Reg.R1, 0));
  Zasm.Builder.jmpt_lab b Reg.R1 "jt";
  Zasm.Builder.label b "c0";
  Zasm.Builder.insn b Insn.Halt;
  Zasm.Builder.label b "c1";
  Zasm.Builder.insn b Insn.Halt;
  let binary, symbols, agg = build_and_aggregate b in
  let tables = Analysis.Jumptable.find binary agg in
  Alcotest.(check int) "one table" 1 (List.length tables);
  let t = List.hd tables in
  Alcotest.(check int) "table addr" (List.assoc "jt" symbols) t.Analysis.Jumptable.table_addr;
  Alcotest.(check (list int)) "entries"
    [ List.assoc "c0" symbols; List.assoc "c1" symbols ]
    t.Analysis.Jumptable.entries;
  let pins = Ibt.compute binary agg in
  Alcotest.(check bool) "entries pinned" true
    (List.mem "jump-table" (reasons_at pins (List.assoc "c1" symbols)))

let test_pin_superset_property () =
  (* B subset-of P: every address actually reached indirectly at run time
     must be pinned.  Exercise the dispatch program and collect runtime
     indirect targets with a trace, then compare. *)
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let agg = Disasm.Aggregate.run binary in
  let pins = Ibt.compute binary agg in
  let runtime_ibts = ref [] in
  let mem = Zvm.Memory.create () in
  Zelf.Image.load mem binary;
  let vm = Zvm.Vm.create ~mem ~entry:binary.Zelf.Binary.entry ~input:"012f0f1q" () in
  let prev_indirect = ref false in
  let _ =
    Zvm.Vm.run
      ~on_step:(fun ~pc insn ->
        if !prev_indirect then runtime_ibts := pc :: !runtime_ibts;
        prev_indirect := (match insn with Insn.Jmpr _ | Insn.Callr _ | Insn.Jmpt _ -> true | _ -> false))
      vm
  in
  List.iter
    (fun tgt ->
      Alcotest.(check bool)
        (Printf.sprintf "runtime IBT 0x%x pinned" tgt)
        true (Ibt.is_pinned pins tgt))
    (List.sort_uniq compare !runtime_ibts)

let test_funcid_and_cfg () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let ir = Zipr.Ir_construction.build binary in
  let db = ir.Zipr.Ir_construction.db in
  (* fib program: main plus the fib function at least. *)
  Alcotest.(check bool) "at least two functions" true (List.length (Irdb.Db.funcs db) >= 2);
  let cfg = Analysis.Cfg.build db in
  let blocks = Analysis.Cfg.blocks cfg in
  Alcotest.(check bool) "several blocks" true (List.length blocks >= 4);
  (* every block body is non-empty and owned *)
  List.iter
    (fun (bl : Analysis.Cfg.block) ->
      Alcotest.(check bool) "non-empty" true (bl.Analysis.Cfg.body <> []);
      Alcotest.(check bool) "head in body" true (List.mem bl.Analysis.Cfg.head bl.Analysis.Cfg.body))
    blocks

let test_cfg_reachable () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let ir = Zipr.Ir_construction.build binary in
  let db = ir.Zipr.Ir_construction.db in
  let reach = Analysis.Cfg.reachable_from db (Irdb.Db.entry db) in
  Alcotest.(check bool) "reaches many rows" true (List.length reach > 10)

let suite =
  [
    Alcotest.test_case "entry pinned" `Quick test_entry_pinned;
    Alcotest.test_case "data-scan pins" `Quick test_data_scan_pins;
    Alcotest.test_case "code-immediate pins" `Quick test_code_immediate_pins;
    Alcotest.test_case "after-call config" `Quick test_after_call_pins_configurable;
    Alcotest.test_case "jump tables" `Quick test_jump_table_discovery;
    Alcotest.test_case "B subset P at runtime" `Quick test_pin_superset_property;
    Alcotest.test_case "funcid + cfg" `Quick test_funcid_and_cfg;
    Alcotest.test_case "cfg reachability" `Quick test_cfg_reachable;
  ]

let test_pin_audit_clean_and_dirty () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let agg = Disasm.Aggregate.run binary in
  let pins = Ibt.compute binary agg in
  let report = Analysis.Pin_audit.audit binary pins ~inputs:[ "012f0f1q"; "" ] in
  Alcotest.(check bool) "superset holds" true (Analysis.Pin_audit.ok report);
  Alcotest.(check bool) "targets observed" true (List.length report.Analysis.Pin_audit.observed >= 3);
  (* With an artificially empty pin set, every observed target is flagged. *)
  let empty = Ibt.compute ~config:{ Ibt.pin_after_calls = false } binary agg in
  ignore empty;
  let fake_pins =
    Ibt.compute
      (Zelf.Binary.create ~entry:binary.Zelf.Binary.entry
         [ Zelf.Section.make ~name:".text" ~kind:Zelf.Section.Text ~vaddr:0x10000 (Zvm.Encode.to_bytes Zvm.Insn.Halt) ])
      (Disasm.Aggregate.run
         (Zelf.Binary.create ~entry:0x10000
            [ Zelf.Section.make ~name:".text" ~kind:Zelf.Section.Text ~vaddr:0x10000 (Zvm.Encode.to_bytes Zvm.Insn.Halt) ]))
  in
  let dirty = Analysis.Pin_audit.audit binary fake_pins ~inputs:[ "012q" ] in
  Alcotest.(check bool) "misses flagged" false (Analysis.Pin_audit.ok dirty)

let suite = suite @ [ Alcotest.test_case "pin audit" `Quick test_pin_audit_clean_and_dirty ]
