(* Tests for jump-table rewriting: the statically-modelled-IBT
   optimization, including its relocation machinery. *)

module Vm = Zvm.Vm

let rewrite_with ?config transforms binary =
  (Zipr.Pipeline.rewrite ?config ~transforms binary).Zipr.Pipeline.rewritten

let check_same ~name ~inputs orig rewritten =
  List.iter
    (fun input ->
      let a = Zelf.Image.boot orig ~input in
      let b = Zelf.Image.boot rewritten ~input in
      Alcotest.(check string) (name ^ " output") a.Vm.output b.Vm.output;
      Alcotest.(check string) (name ^ " status") (Vm.stop_to_string a.Vm.stop)
        (Vm.stop_to_string b.Vm.stop))
    inputs

let test_preserves_dispatch_semantics () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let rw = rewrite_with [ Transforms.Jumptable_rewrite.transform ] binary in
  check_same ~name:"jt rewrite" ~inputs:[ "012q"; "201q"; "f0f1q"; "" ] binary rw

let test_adds_relocated_table_section () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let rw = rewrite_with [ Transforms.Jumptable_rewrite.transform ] binary in
  match Zelf.Binary.find_section rw (Transforms.Jumptable_rewrite.section_prefix ^ "0") with
  | Some s ->
      Alcotest.(check bool) "table has entries" true (s.Zelf.Section.size >= 12);
      (* Every entry must point at a valid instruction in the rewritten
         text (a land marker, in fact). *)
      let n = s.Zelf.Section.size / 4 in
      for i = 0 to n - 1 do
        match Zelf.Binary.read32 rw (s.Zelf.Section.vaddr + (4 * i)) with
        | Some target -> (
            match Zelf.Binary.read8 rw target with
            | Some byte ->
                Alcotest.(check int)
                  (Printf.sprintf "entry %d lands on a marker" i)
                  Zvm.Encode.op_land byte
            | None -> Alcotest.failf "entry %d points outside the binary" i)
        | None -> Alcotest.fail "table unreadable"
      done
  | None -> Alcotest.fail "no relocated table section"

let test_dispatch_skips_pin_indirection () =
  (* With the table rewritten, dispatch should land directly on moved
     code: fewer executed instructions than the pin-jump path. *)
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let plain = rewrite_with [ Transforms.Null.transform ] binary in
  let jtrw = rewrite_with [ Transforms.Jumptable_rewrite.transform ] binary in
  let input = "0120120120q" in
  let orig = Zelf.Image.boot binary ~input in
  let p = Zelf.Image.boot plain ~input in
  let j = Zelf.Image.boot jtrw ~input in
  Alcotest.(check string) "plain output" orig.Vm.output p.Vm.output;
  Alcotest.(check string) "jtrw output" orig.Vm.output j.Vm.output;
  (* The land markers cost 1 instruction per dispatch; the pin jump path
     costs a jump per dispatch.  Cycles must not regress. *)
  Alcotest.(check bool)
    (Printf.sprintf "no cycle regression (%d <= %d)" j.Vm.cycles p.Vm.cycles)
    true
    (j.Vm.cycles <= p.Vm.cycles)

let test_composes_with_cfi () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let rw =
    rewrite_with [ Transforms.Jumptable_rewrite.transform; Transforms.Cfi.transform ] binary
  in
  check_same ~name:"jt+cfi" ~inputs:[ "012q"; "f0f1q" ] binary rw

let test_composes_on_corpus_cb () =
  let e = Cgc.Corpus.entry 2 in
  let rw = rewrite_with [ Transforms.Jumptable_rewrite.transform ] e.Cgc.Corpus.binary in
  let chk =
    Cgc.Poller.functional_check ~orig:e.Cgc.Corpus.binary ~rewritten:rw e.Cgc.Corpus.pollers
  in
  Alcotest.(check int) "all pollers pass" chk.Cgc.Poller.total chk.Cgc.Poller.passed

let suite =
  [
    Alcotest.test_case "preserves dispatch" `Quick test_preserves_dispatch_semantics;
    Alcotest.test_case "relocated table section" `Quick test_adds_relocated_table_section;
    Alcotest.test_case "skips pin indirection" `Quick test_dispatch_skips_pin_indirection;
    Alcotest.test_case "composes with cfi" `Quick test_composes_with_cfi;
    Alcotest.test_case "works on corpus CB" `Quick test_composes_on_corpus_cb;
  ]
