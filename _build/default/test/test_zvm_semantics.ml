(* Exhaustive ZVM semantic coverage: every ALU operation, every condition
   code, and addressing modes, table-driven. *)

open Zvm

let run_insns ?(regs = []) insns =
  let code = Encode.encode_all (insns @ [ Insn.Halt ]) in
  let mem = Memory.create () in
  Memory.load_bytes mem ~addr:0x1000 code;
  Memory.map mem ~addr:0x300000 ~len:8192;
  let vm = Vm.create ~mem ~entry:0x1000 ~input:"" () in
  List.iter (fun (r, v) -> Vm.set_reg vm r v) regs;
  let result = Vm.run ~fuel:10_000 vm in
  (match result.Vm.stop with
  | Vm.Halted -> ()
  | s -> Alcotest.failf "program did not halt: %s" (Vm.stop_to_string s));
  vm

let test_alu_table () =
  let cases =
    [
      (Insn.Add, 7, 5, 12);
      (Insn.Add, 0xffffffff, 1, 0);
      (Insn.Sub, 5, 7, 0xfffffffe);
      (Insn.Mul, 0x10000, 0x10000, 0);
      (Insn.Mul, 6, 7, 42);
      (Insn.Div, 42, 5, 8);
      (Insn.Div, 0xffffffff, 2, 0x7fffffff);
      (Insn.Mod, 42, 5, 2);
      (Insn.And, 0xff00ff00, 0x0ff00ff0, 0x0f000f00);
      (Insn.Or, 0xf0f0f0f0, 0x0f0f0f0f, 0xffffffff);
      (Insn.Xor, 0xaaaaaaaa, 0xffffffff, 0x55555555);
      (Insn.Shl, 1, 31, 0x80000000);
      (Insn.Shl, 1, 33, 2);  (* count mod 32 *)
      (Insn.Shr, 0x80000000, 31, 1);
      (Insn.Shr, 0xffffffff, 4, 0x0fffffff);
    ]
  in
  List.iter
    (fun (op, a, b, expected) ->
      let vm =
        run_insns ~regs:[ (Reg.R1, a); (Reg.R2, b) ] [ Insn.Alu (op, Reg.R1, Reg.R2) ]
      in
      Alcotest.(check int)
        (Printf.sprintf "%s 0x%x 0x%x" (Insn.to_string (Insn.Alu (op, Reg.R1, Reg.R2))) a b)
        expected (Vm.reg vm Reg.R1))
    cases

let test_alui_table () =
  let cases =
    [
      (Insn.Addi, 10, 5, 15);
      (Insn.Subi, 10, 15, 0xfffffffb);
      (Insn.Andi, 0xdeadbeef, 0xffff, 0xbeef);
      (Insn.Ori, 0xf0, 0x0f, 0xff);
      (Insn.Xori, 0xff, 0x0f, 0xf0);
      (Insn.Muli, 100, 100, 10000);
    ]
  in
  List.iter
    (fun (op, a, imm, expected) ->
      let vm = run_insns ~regs:[ (Reg.R3, a) ] [ Insn.Alui (op, Reg.R3, imm) ] in
      Alcotest.(check int)
        (Printf.sprintf "%s" (Insn.to_string (Insn.Alui (op, Reg.R3, imm))))
        expected (Vm.reg vm Reg.R3))
    cases

let test_not_neg_shifts () =
  let vm = run_insns ~regs:[ (Reg.R1, 0x0f0f0f0f) ] [ Insn.Not Reg.R1 ] in
  Alcotest.(check int) "not" 0xf0f0f0f0 (Vm.reg vm Reg.R1);
  let vm = run_insns ~regs:[ (Reg.R1, 5) ] [ Insn.Neg Reg.R1 ] in
  Alcotest.(check int) "neg" 0xfffffffb (Vm.reg vm Reg.R1);
  let vm = run_insns ~regs:[ (Reg.R1, 3) ] [ Insn.Shli (Reg.R1, 4) ] in
  Alcotest.(check int) "shli" 48 (Vm.reg vm Reg.R1);
  let vm = run_insns ~regs:[ (Reg.R1, 48) ] [ Insn.Shri (Reg.R1, 4) ] in
  Alcotest.(check int) "shri" 3 (Vm.reg vm Reg.R1)

(* Condition codes: run cmp a b then a conditional near branch over a
   marker write; check whether it was taken. *)
let branch_taken cond a b =
  let vm =
    run_insns
      ~regs:[ (Reg.R1, a); (Reg.R2, b); (Reg.R7, 0) ]
      [
        Insn.Cmp (Reg.R1, Reg.R2);
        Insn.Jcc (cond, Insn.Near, 6);  (* skip the movi below *)
        Insn.Movi (Reg.R7, 1);
      ]
  in
  Vm.reg vm Reg.R7 = 0

let test_condition_codes () =
  let minus_one = 0xffffffff in
  let checks =
    [
      (Cond.Eq, 5, 5, true);
      (Cond.Eq, 5, 6, false);
      (Cond.Ne, 5, 6, true);
      (Cond.Lt, minus_one, 1, true);  (* signed: -1 < 1 *)
      (Cond.Lt, 1, minus_one, false);
      (Cond.Ge, 1, minus_one, true);
      (Cond.Gt, 7, 3, true);
      (Cond.Gt, 3, 3, false);
      (Cond.Le, 3, 3, true);
      (Cond.Ult, 1, minus_one, true);  (* unsigned: 1 < 0xffffffff *)
      (Cond.Ult, minus_one, 1, false);
      (Cond.Uge, minus_one, 1, true);
    ]
  in
  List.iter
    (fun (cond, a, b, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s 0x%x 0x%x" (Cond.to_string cond) a b)
        expected (branch_taken cond a b))
    checks

let test_test_instruction () =
  let vm =
    run_insns
      ~regs:[ (Reg.R1, 0xf0); (Reg.R2, 0x0f); (Reg.R7, 0) ]
      [
        Insn.Test (Reg.R1, Reg.R2);
        Insn.Jcc (Cond.Eq, Insn.Near, 6);
        Insn.Movi (Reg.R7, 1);
      ]
  in
  Alcotest.(check int) "disjoint masks -> zero -> taken" 0 (Vm.reg vm Reg.R7)

let test_memory_addressing () =
  let vm =
    run_insns
      ~regs:[ (Reg.R1, 0x300010); (Reg.R2, 0xcafe) ]
      [
        Insn.Store { base = Reg.R1; disp = 16; src = Reg.R2 };
        Insn.Load { dst = Reg.R3; base = Reg.R1; disp = 16 };
        Insn.Store8 { base = Reg.R1; disp = -4; src = Reg.R2 };
        Insn.Load8 { dst = Reg.R4; base = Reg.R1; disp = -4 };
      ]
  in
  Alcotest.(check int) "32-bit roundtrip" 0xcafe (Vm.reg vm Reg.R3);
  Alcotest.(check int) "8-bit truncates" 0xfe (Vm.reg vm Reg.R4)

let test_absolute_addressing () =
  let vm =
    run_insns ~regs:[ (Reg.R2, 0x1234) ]
      [
        Insn.Storea (0x300020, Reg.R2);
        Insn.Loada (Reg.R3, 0x300020);
        Insn.Leaa (Reg.R4, 0x300020);
      ]
  in
  Alcotest.(check int) "storea/loada" 0x1234 (Vm.reg vm Reg.R3);
  Alcotest.(check int) "leaa" 0x300020 (Vm.reg vm Reg.R4)

let test_pc_relative_execution () =
  (* leap/loadp/storep against a cell just after the code. *)
  let insns =
    [
      Insn.Leap (Reg.R1, 20);  (* some address after this instruction *)
      Insn.Storep (32, Reg.R1);  (* park a value PC-relatively too *)
    ]
  in
  let vm = run_insns insns in
  (* leap: r1 = pc_next + 20 where pc_next = 0x1000 + 6 *)
  Alcotest.(check int) "leap computes" (0x1000 + 6 + 20) (Vm.reg vm Reg.R1)

let test_sp_is_a_register () =
  let vm = run_insns [ Insn.Mov (Reg.R1, Reg.SP); Insn.Alui (Insn.Subi, Reg.SP, 16); Insn.Mov (Reg.R2, Reg.SP) ] in
  Alcotest.(check int) "sp arithmetic" 16 (Vm.reg vm Reg.R1 - Vm.reg vm Reg.R2)

let test_flags_from_alu_result () =
  (* sub to zero sets eq; a negative result sets lt. *)
  let vm =
    run_insns
      ~regs:[ (Reg.R1, 5); (Reg.R2, 5); (Reg.R7, 0) ]
      [
        Insn.Alu (Insn.Sub, Reg.R1, Reg.R2);
        Insn.Jcc (Cond.Eq, Insn.Near, 6);
        Insn.Movi (Reg.R7, 1);
      ]
  in
  Alcotest.(check int) "zero result -> eq" 0 (Vm.reg vm Reg.R7)

let suite =
  [
    Alcotest.test_case "alu table" `Quick test_alu_table;
    Alcotest.test_case "alui table" `Quick test_alui_table;
    Alcotest.test_case "not/neg/shifts" `Quick test_not_neg_shifts;
    Alcotest.test_case "condition codes" `Quick test_condition_codes;
    Alcotest.test_case "test instruction" `Quick test_test_instruction;
    Alcotest.test_case "memory addressing" `Quick test_memory_addressing;
    Alcotest.test_case "absolute addressing" `Quick test_absolute_addressing;
    Alcotest.test_case "pc-relative execution" `Quick test_pc_relative_execution;
    Alcotest.test_case "sp register" `Quick test_sp_is_a_register;
    Alcotest.test_case "alu flags" `Quick test_flags_from_alu_result;
  ]
