(* Tests for the tooling layer: execution tracing, post-rewrite
   verification, and IRDB persistence. *)

module Db = Irdb.Db
module Insn = Zvm.Insn
module Reg = Zvm.Reg

(* -- Trace -- *)

let test_trace_records_steps () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let vm = Zelf.Image.vm_of binary ~input:"\x05" in
  let result, trace = Zvm.Trace.run vm in
  Alcotest.(check bool) "completed" true (result.Zvm.Vm.stop = Zvm.Vm.Exited 0);
  Alcotest.(check int) "trace length = retired" result.Zvm.Vm.insns (Zvm.Trace.length trace);
  let steps = Zvm.Trace.steps trace in
  Alcotest.(check bool) "starts at entry" true
    (match steps with (pc, _) :: _ -> pc = binary.Zelf.Binary.entry | [] -> false)

let test_trace_ring_bounded () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let vm = Zelf.Image.vm_of binary ~input:"\x0b" in
  let result, trace = Zvm.Trace.run ~capacity:16 vm in
  Alcotest.(check bool) "observed more than kept" true (Zvm.Trace.length trace > 16);
  Alcotest.(check int) "kept capacity" 16 (List.length (Zvm.Trace.steps trace));
  ignore result

let test_trace_branch_targets () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let vm = Zelf.Image.vm_of binary ~input:"\x03" in
  let _, trace = Zvm.Trace.run vm in
  (* fib(3): the loop runs 3 times -> at least 3 non-sequential arrivals. *)
  Alcotest.(check bool) "taken branches seen" true (List.length (Zvm.Trace.branch_targets trace) >= 3)

let test_trace_divergence_same_and_different () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let run input =
    let vm = Zelf.Image.vm_of binary ~input in
    snd (Zvm.Trace.run vm)
  in
  let a = run "\x05" and b = run "\x05" in
  Alcotest.(check bool) "identical runs agree" true (Zvm.Trace.divergence a b = None);
  let c = run "\x06" in
  (* Different loop counts diverge somewhere (one trace extends the other
     or an instruction differs). *)
  Alcotest.(check bool) "different inputs diverge" true (Zvm.Trace.divergence a c <> None)

(* -- Verify -- *)

let test_verify_accepts_good_rewrite () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] binary in
  let report =
    Zipr.Verify.full ~orig:binary ~ir:r.Zipr.Pipeline.ir ~rewritten:r.Zipr.Pipeline.rewritten
      ~inputs:[ "012q"; "f0f1q"; "" ] ()
  in
  if not (Zipr.Verify.ok report) then
    Alcotest.failf "unexpected issues: %a" Zipr.Verify.pp_report report;
  Alcotest.(check bool) "many checks ran" true (report.Zipr.Verify.checks_run > 20)

let test_verify_accepts_cfi_rewrite () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Cfi.transform ] binary in
  let report =
    Zipr.Verify.full ~orig:binary ~ir:r.Zipr.Pipeline.ir ~rewritten:r.Zipr.Pipeline.rewritten
      ~inputs:[ "012q" ] ()
  in
  if not (Zipr.Verify.ok report) then
    Alcotest.failf "unexpected issues: %a" Zipr.Verify.pp_report report

let test_verify_catches_corruption () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] binary in
  let good = r.Zipr.Pipeline.rewritten in
  (* Corrupt a data section: the data-segment check must notice. *)
  let corrupted =
    Zelf.Binary.create ~entry:good.Zelf.Binary.entry
      (List.map
         (fun (s : Zelf.Section.t) ->
           if s.Zelf.Section.kind = Zelf.Section.Rodata then begin
             let d = Bytes.copy s.Zelf.Section.data in
             Bytes.set d 0 '\xff';
             Zelf.Section.make ~name:s.Zelf.Section.name ~kind:s.Zelf.Section.kind
               ~vaddr:s.Zelf.Section.vaddr d
           end
           else s)
         good.Zelf.Binary.sections)
  in
  let report = Zipr.Verify.structural ~orig:binary ~ir:r.Zipr.Pipeline.ir ~rewritten:corrupted in
  Alcotest.(check bool) "corruption flagged" false (Zipr.Verify.ok report)

let test_verify_catches_transcript_divergence () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let other, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let report = Zipr.Verify.transcripts ~orig:binary ~rewritten:other [ "\x05" ] in
  Alcotest.(check bool) "divergence flagged" false (Zipr.Verify.ok report)

(* -- IRDB persistence -- *)

let test_irdb_roundtrip () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let ir = Zipr.Ir_construction.build binary in
  let db = ir.Zipr.Ir_construction.db in
  let text = Irdb.Dump.serialize db in
  match Irdb.Dump.deserialize ~orig:binary text with
  | Error msg -> Alcotest.failf "deserialize failed: %s" msg
  | Ok db' ->
      Alcotest.(check int) "row count" (Db.count db) (Db.count db');
      Alcotest.(check int) "entry" (Db.entry db) (Db.entry db');
      Alcotest.(check int) "functions" (List.length (Db.funcs db)) (List.length (Db.funcs db'));
      Alcotest.(check (list (pair int int))) "pins" (Db.pinned_addresses db)
        (Db.pinned_addresses db');
      (* Marked pins survive. *)
      List.iter
        (fun (addr, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "mark at 0x%x" addr)
            (Db.pin_is_marked db addr) (Db.pin_is_marked db' addr))
        (Db.pinned_addresses db);
      (* Spot-check instructions and links row by row. *)
      List.iter
        (fun id ->
          let a = Db.row db id and b = Db.row db' id in
          Alcotest.(check bool) "insn" true (Zvm.Insn.equal a.Db.insn b.Db.insn);
          Alcotest.(check (option int)) "ft" a.Db.fallthrough b.Db.fallthrough;
          Alcotest.(check (option int)) "tgt" a.Db.target b.Db.target;
          Alcotest.(check bool) "fixed" a.Db.fixed b.Db.fixed)
        (Db.ids db)

let test_irdb_roundtrip_then_rewrite () =
  (* The real point of persistence: reassembling from a restored IRDB
     must produce a working binary. *)
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let ir = Zipr.Ir_construction.build binary in
  let text = Irdb.Dump.serialize ir.Zipr.Ir_construction.db in
  match Irdb.Dump.deserialize ~orig:binary text with
  | Error msg -> Alcotest.failf "deserialize failed: %s" msg
  | Ok db' ->
      let ir' = { ir with Zipr.Ir_construction.db = db' } in
      let rewritten, _stats = Zipr.Reassemble.run ir' in
      let input = "012f0f1q" in
      let a = Zelf.Image.boot binary ~input in
      let b = Zelf.Image.boot rewritten ~input in
      Alcotest.(check string) "same output" a.Zvm.Vm.output b.Zvm.Vm.output

let test_irdb_deserialize_rejects_garbage () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  (match Irdb.Dump.deserialize ~orig:binary "R 0 zz - - - - 0 -" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad hex accepted");
  match Irdb.Dump.deserialize ~orig:binary "R 0 90 7 - - - 0 -" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling link accepted"

let suite =
  [
    Alcotest.test_case "trace records" `Quick test_trace_records_steps;
    Alcotest.test_case "trace ring bounded" `Quick test_trace_ring_bounded;
    Alcotest.test_case "trace branch targets" `Quick test_trace_branch_targets;
    Alcotest.test_case "trace divergence" `Quick test_trace_divergence_same_and_different;
    Alcotest.test_case "verify good rewrite" `Quick test_verify_accepts_good_rewrite;
    Alcotest.test_case "verify cfi rewrite" `Quick test_verify_accepts_cfi_rewrite;
    Alcotest.test_case "verify catches corruption" `Quick test_verify_catches_corruption;
    Alcotest.test_case "verify catches divergence" `Quick test_verify_catches_transcript_divergence;
    Alcotest.test_case "irdb roundtrip" `Quick test_irdb_roundtrip;
    Alcotest.test_case "irdb restore+rewrite" `Quick test_irdb_roundtrip_then_rewrite;
    Alcotest.test_case "irdb rejects garbage" `Quick test_irdb_deserialize_rejects_garbage;
  ]
