(* Tests for the security transforms. *)

module Vm = Zvm.Vm
module Insn = Zvm.Insn

let rewrite_with transforms binary =
  (Zipr.Pipeline.rewrite ~transforms binary).Zipr.Pipeline.rewritten

let run ?(input = "") binary = Zelf.Image.boot binary ~input

let check_same ~name ~inputs orig rewritten =
  List.iter
    (fun input ->
      let a = run ~input orig and b = run ~input rewritten in
      Alcotest.(check string) (name ^ " output") a.Vm.output b.Vm.output;
      Alcotest.(check string) (name ^ " status") (Vm.stop_to_string a.Vm.stop)
        (Vm.stop_to_string b.Vm.stop))
    inputs

(* -- CFI -- *)

let test_cfi_preserves_functionality () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let rw = rewrite_with [ Transforms.Cfi.transform ] binary in
  check_same ~name:"cfi dispatch" ~inputs:[ "012f0f1q"; "z9q"; "" ] binary rw

let test_cfi_blocks_return_hijack () =
  let binary, _ = Testprogs.assemble (Testprogs.vuln_program ()) in
  let exploit = Testprogs.vuln_exploit () in
  (* The exploit must work on the original... *)
  let orig_result = run ~input:exploit binary in
  Alcotest.(check bool) "original exploited" true
    (orig_result.Vm.stop = Vm.Exited 42
    ||
    let s = orig_result.Vm.output in
    let rec scan i = i + 4 <= String.length s && (String.sub s i 4 = "PWN!" || scan (i + 1)) in
    scan 0);
  (* ...and on the Null-rewritten binary (rewriting alone is no defense)... *)
  let null_rw = rewrite_with [ Transforms.Null.transform ] binary in
  let null_result = run ~input:exploit null_rw in
  Alcotest.(check bool) "null-rewritten still exploited" true (null_result.Vm.stop = Vm.Exited 42);
  (* ...but be stopped by CFI with the safe-termination status. *)
  let cfi_rw = rewrite_with [ Transforms.Cfi.transform ] binary in
  let cfi_result = run ~input:exploit cfi_rw in
  Alcotest.(check bool) "CFI blocks" true
    (cfi_result.Vm.stop = Vm.Exited Transforms.Cfi.violation_status);
  Alcotest.(check bool) "no marker leaked" true
    (let s = cfi_result.Vm.output in
     let rec scan i = i + 4 <= String.length s && (String.sub s i 4 = "PWN!" || scan (i + 1)) in
     not (scan 0))

let test_cfi_benign_vuln_input_ok () =
  let binary, _ = Testprogs.assemble (Testprogs.vuln_program ()) in
  let cfi_rw = rewrite_with [ Transforms.Cfi.transform ] binary in
  check_same ~name:"cfi benign" ~inputs:[ "\x08payload!" ] binary cfi_rw

let test_cfi_hidden_code_still_runs () =
  (* Indirect jumps into fixed (ambiguous) regions must pass the range
     whitelist. *)
  let binary, _ = Testprogs.island_binary () in
  let cfi_rw = rewrite_with [ Transforms.Cfi.transform ] binary in
  check_same ~name:"cfi island" ~inputs:[ "" ] binary cfi_rw

(* -- Canary -- *)

let test_canary_preserves_functionality () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let rw = rewrite_with [ Transforms.Canary.transform ] binary in
  check_same ~name:"canary fib" ~inputs:[ "\x05"; "\x0b" ] binary rw

let test_canary_blocks_overflow () =
  let binary, _ = Testprogs.assemble (Testprogs.vuln_program ()) in
  let rw = rewrite_with [ Transforms.Canary.transform ] binary in
  let result = run ~input:(Testprogs.vuln_exploit ()) rw in
  Alcotest.(check bool) "canary trips" true
    (result.Vm.stop = Vm.Exited Transforms.Canary.violation_status)

let test_canary_seed_changes_cookie () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let rw1 = rewrite_with [ Transforms.Canary.make ~seed:1 () ] binary in
  let rw2 = rewrite_with [ Transforms.Canary.make ~seed:2 () ] binary in
  Alcotest.(check bool) "diversified binaries differ" true
    ((Zelf.Binary.text rw1).Zelf.Section.data <> (Zelf.Binary.text rw2).Zelf.Section.data)

(* -- Stack padding -- *)

let test_stack_pad_preserves_functionality () =
  let binary, _ = Testprogs.assemble (Testprogs.vuln_program ()) in
  let rw = rewrite_with [ Transforms.Stack_pad.transform ] binary in
  check_same ~name:"stack pad benign" ~inputs:[ "\x05hello" ] binary rw

let test_stack_pad_displaces_exploit () =
  (* The exploit's return-address offset was computed for the unpadded
     frame; after padding it must no longer take control. *)
  let binary, _ = Testprogs.assemble (Testprogs.vuln_program ()) in
  let rw = rewrite_with [ Transforms.Stack_pad.transform ] binary in
  let result = run ~input:(Testprogs.vuln_exploit ()) rw in
  Alcotest.(check bool) "exploit misses" true (result.Vm.stop <> Vm.Exited 42)

(* -- Stirring -- *)

let test_stirring_preserves_functionality () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let config =
    { Zipr.Pipeline.default_config with Zipr.Pipeline.placement = Zipr.Placement.random }
  in
  let r = Zipr.Pipeline.rewrite ~config ~transforms:[ Transforms.Stirring.transform ] binary in
  check_same ~name:"stirring" ~inputs:[ "012f0f1q" ] binary r.Zipr.Pipeline.rewritten

let test_stirring_fragments_dollops () =
  let binary, _ = Testprogs.assemble (Testprogs.big_program ~nfuncs:20 ()) in
  let count transforms =
    let r = Zipr.Pipeline.rewrite ~transforms binary in
    r.Zipr.Pipeline.stats.Zipr.Reassemble.dollops_placed
  in
  let plain = count [ Transforms.Null.transform ] in
  let stirred = count [ Transforms.Stirring.make ~p:1.0 ~seed:3 () ] in
  Alcotest.(check bool)
    (Printf.sprintf "more dollops when stirred (%d > %d)" stirred plain)
    true (stirred > plain)

(* -- Profile counting -- *)

let test_profile_count_counts () =
  let binary, _ = Testprogs.assemble (Testprogs.fib_program ()) in
  let handle = Transforms.Profile_count.make () in
  let r = Zipr.Pipeline.rewrite ~transforms:[ handle.Transforms.Profile_count.transform ] binary in
  let rewritten = r.Zipr.Pipeline.rewritten in
  (* fib(7): the loop body block must execute 7 times. *)
  let vm = Zelf.Image.vm_of rewritten ~input:"\x07" in
  let result = Zvm.Vm.run vm in
  Alcotest.(check bool) "still works" true (result.Vm.stop = Vm.Exited 0);
  let slots = handle.Transforms.Profile_count.slots () in
  Alcotest.(check bool) "instrumented blocks" true (List.length slots >= 3);
  let counts =
    List.map (fun (_, addr) -> Transforms.Profile_count.read_counter (Zvm.Vm.mem vm) ~addr) slots
  in
  Alcotest.(check bool) "some block ran 7 times" true (List.mem 7 counts);
  Alcotest.(check bool) "entry ran once" true (List.mem 1 counts)

(* -- Composition -- *)

let test_stack_pad_then_cfi_compose () =
  let binary, _ = Testprogs.assemble (Testprogs.vuln_program ()) in
  let rw = rewrite_with [ Transforms.Stack_pad.transform; Transforms.Cfi.transform ] binary in
  check_same ~name:"composed benign" ~inputs:[ "\x05hello" ] binary rw;
  let result = run ~input:(Testprogs.vuln_exploit ()) rw in
  Alcotest.(check bool) "composed blocks exploit" true (result.Vm.stop <> Vm.Exited 42)

let test_transform_registry () =
  (* Registration is first-come; the shipped transforms self-describe. *)
  Alcotest.(check bool) "null named" true (Transforms.Null.transform.Zipr.Transform.name = "null");
  Alcotest.(check bool) "cfi named" true (Transforms.Cfi.transform.Zipr.Transform.name = "cfi")

let suite =
  [
    Alcotest.test_case "cfi preserves" `Quick test_cfi_preserves_functionality;
    Alcotest.test_case "cfi blocks hijack" `Quick test_cfi_blocks_return_hijack;
    Alcotest.test_case "cfi benign vuln input" `Quick test_cfi_benign_vuln_input_ok;
    Alcotest.test_case "cfi hidden code" `Quick test_cfi_hidden_code_still_runs;
    Alcotest.test_case "canary preserves" `Quick test_canary_preserves_functionality;
    Alcotest.test_case "canary blocks" `Quick test_canary_blocks_overflow;
    Alcotest.test_case "canary diversity" `Quick test_canary_seed_changes_cookie;
    Alcotest.test_case "stack pad preserves" `Quick test_stack_pad_preserves_functionality;
    Alcotest.test_case "stack pad displaces" `Quick test_stack_pad_displaces_exploit;
    Alcotest.test_case "stirring preserves" `Quick test_stirring_preserves_functionality;
    Alcotest.test_case "stirring fragments" `Quick test_stirring_fragments_dollops;
    Alcotest.test_case "profile count" `Quick test_profile_count_counts;
    Alcotest.test_case "pad+cfi compose" `Quick test_stack_pad_then_cfi_compose;
    Alcotest.test_case "registry" `Quick test_transform_registry;
  ]

(* -- Shadow stack -- *)

let test_shadow_stack_preserves_functionality () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let rw = rewrite_with [ Transforms.Shadow_stack.transform ] binary in
  check_same ~name:"shadow dispatch" ~inputs:[ "012f0f1q"; "" ] binary rw

let test_shadow_stack_blocks_return_hijack () =
  let binary, _ = Testprogs.assemble (Testprogs.vuln_program ()) in
  let rw = rewrite_with [ Transforms.Shadow_stack.transform ] binary in
  let result = run ~input:(Testprogs.vuln_exploit ()) rw in
  Alcotest.(check bool) "shadow stack trips" true
    (result.Vm.stop = Vm.Exited Transforms.Shadow_stack.violation_status)

let test_shadow_stack_handles_recursion () =
  (* A self-recursive function exercises shadow push/pop depth. *)
  let b = Zasm.Builder.create ~entry:"main" () in
  Zasm.Builder.label b "main";
  Zasm.Builder.insn b (Insn.Movi (Zvm.Reg.R0, 9));
  Zasm.Builder.call b "count";
  Zasm.Builder.insn b (Insn.Sys 0);
  Zasm.Builder.label b "count";
  Zasm.Builder.insn b (Insn.Cmpi (Zvm.Reg.R0, 0));
  Zasm.Builder.jcc b Zvm.Cond.Eq "done";
  Zasm.Builder.insn b (Insn.Alui (Insn.Subi, Zvm.Reg.R0, 1));
  Zasm.Builder.call b "count";
  Zasm.Builder.insn b (Insn.Alui (Insn.Addi, Zvm.Reg.R0, 1));
  Zasm.Builder.label b "done";
  Zasm.Builder.insn b (Insn.Ret);
  let binary, _ = Zasm.Builder.assemble_exn b in
  let rw = rewrite_with [ Transforms.Shadow_stack.transform ] binary in
  check_same ~name:"shadow recursion" ~inputs:[ "" ] binary rw

(* -- Nop padding -- *)

let test_nop_pad_preserves_and_diversifies () =
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let rw1 = rewrite_with [ Transforms.Nop_pad.make ~seed:1 () ] binary in
  let rw2 = rewrite_with [ Transforms.Nop_pad.make ~seed:2 () ] binary in
  check_same ~name:"nop pad" ~inputs:[ "012f0f1q" ] binary rw1;
  Alcotest.(check bool) "layouts differ" true
    ((Zelf.Binary.text rw1).Zelf.Section.data <> (Zelf.Binary.text rw2).Zelf.Section.data)

let test_nop_pad_composes_with_cfi () =
  (* Padding first, CFI second: return points keep their markers. *)
  let binary, _ = Testprogs.assemble (Testprogs.vuln_program ()) in
  let rw =
    rewrite_with [ Transforms.Nop_pad.make ~seed:4 (); Transforms.Cfi.transform ] binary
  in
  check_same ~name:"pad+cfi benign" ~inputs:[ "\x05hello" ] binary rw;
  let result = run ~input:(Testprogs.vuln_exploit ()) rw in
  Alcotest.(check bool) "still blocks" true
    (result.Vm.stop = Vm.Exited Transforms.Cfi.violation_status)

let suite =
  suite
  @ [
      Alcotest.test_case "shadow stack preserves" `Quick test_shadow_stack_preserves_functionality;
      Alcotest.test_case "shadow stack blocks" `Quick test_shadow_stack_blocks_return_hijack;
      Alcotest.test_case "shadow stack recursion" `Quick test_shadow_stack_handles_recursion;
      Alcotest.test_case "nop pad diversity" `Quick test_nop_pad_preserves_and_diversifies;
      Alcotest.test_case "nop pad + cfi" `Quick test_nop_pad_composes_with_cfi;
    ]
