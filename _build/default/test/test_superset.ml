(* Tests for superset (speculative) disassembly and N-way aggregation. *)

module Insn = Zvm.Insn
module Reg = Zvm.Reg

let binary_of_text ?(entry = 0x1000) code =
  Zelf.Binary.create ~entry
    [ Zelf.Section.make ~name:".text" ~kind:Zelf.Section.Text ~vaddr:0x1000 code ]

let test_prune_kills_flow_into_garbage () =
  (* movi (6 bytes) then an undecodable byte: a candidate decoded at any
     offset that falls through into the bad byte must die; the movi
     itself, falling through into the bad byte, dies too. *)
  let buf = Buffer.create 8 in
  Buffer.add_bytes buf (Zvm.Encode.to_bytes (Insn.Movi (Reg.R0, 0x11111111)));
  Buffer.add_char buf '\x05';  (* not an opcode *)
  let binary = binary_of_text (Buffer.to_bytes buf) in
  let alive = Disasm.Superset.prune_fixpoint binary in
  Alcotest.(check bool) "movi flowing into garbage dies" false alive.(0);
  Alcotest.(check bool) "garbage byte has no candidate" false alive.(6)

let test_prune_keeps_terminated_chains () =
  let code = Zvm.Encode.encode_all Insn.[ Movi (Reg.R0, 1); Ret ] in
  let binary = binary_of_text code in
  let alive = Disasm.Superset.prune_fixpoint binary in
  Alcotest.(check bool) "movi alive" true alive.(0);
  Alcotest.(check bool) "ret alive" true alive.(6)

let test_superset_abstains_on_recursive_territory () =
  let code = Zvm.Encode.encode_all Insn.[ Movi (Reg.R0, 1); Ret ] in
  let binary = binary_of_text code in
  let rec_ = Disasm.Recursive.traverse binary in
  let src = Disasm.Superset.run binary ~avoid:rec_ in
  (* Recursive reaches everything here, so superset must claim nothing. *)
  Array.iter
    (fun c -> Alcotest.(check bool) "abstains" true (c = Disasm.Source.Unknown))
    src.Disasm.Source.claims

let test_superset_tiles_unreachable_code () =
  (* Code after a halt: recursive never reaches it; superset should
     produce clean boundaries for it. *)
  let code =
    Zvm.Encode.encode_all Insn.[ Halt; Movi (Reg.R7, 42); Alui (Addi, Reg.R7, 1); Ret ]
  in
  let binary = binary_of_text code in
  let rec_ = Disasm.Recursive.traverse binary in
  let src = Disasm.Superset.run binary ~avoid:rec_ in
  (* The movi at offset 1 must be claimed with the right boundary. *)
  (match src.Disasm.Source.claims.(1) with
  | Disasm.Source.Code start -> Alcotest.(check int) "boundary" 0x1001 start
  | _ -> Alcotest.fail "dead code not tiled");
  Alcotest.(check bool) "boundary recorded" true
    (Hashtbl.mem src.Disasm.Source.insns 0x1001)

let test_three_way_run_equivalent_verdicts () =
  (* Adding the superset source must not change byte verdicts relative to
     the classic two-way aggregation (it abstains from contested calls). *)
  let binary, _ = Testprogs.assemble (Testprogs.dispatch_program ()) in
  let lin = Disasm.Linear.sweep binary in
  let rec_ = Disasm.Recursive.traverse binary in
  let two = Disasm.Aggregate.combine binary lin rec_ in
  let three = Disasm.Aggregate.run binary in
  Alcotest.(check bool) "same verdicts" true
    (two.Disasm.Aggregate.verdicts = three.Disasm.Aggregate.verdicts)

let test_combine_sources_requires_high_confidence () =
  (* A lone low-confidence code claim must be ambiguous, not code. *)
  let code = Zvm.Encode.encode_all Insn.[ Nop; Ret ] in
  let binary = binary_of_text code in
  let lin = Disasm.Linear.sweep binary in
  let agg = Disasm.Aggregate.combine_sources binary [ Disasm.Source.of_linear lin ] in
  let _, _, amb = Disasm.Aggregate.stats agg in
  Alcotest.(check int) "all ambiguous" 2 amb

let test_combine_sources_mismatch_rejected () =
  let b1 = binary_of_text (Zvm.Encode.encode_all [ Insn.Ret ]) in
  let b2 = binary_of_text (Zvm.Encode.encode_all Insn.[ Nop; Ret ]) in
  let s1 = Disasm.Source.of_linear (Disasm.Linear.sweep b1) in
  let s2 = Disasm.Source.of_linear (Disasm.Linear.sweep b2) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Disasm.Aggregate.combine_sources b1 [ s1; s2 ]);
       false
     with Invalid_argument _ -> true)

let test_superset_improves_fixed_region_boundaries () =
  (* The island program's hidden code is recursive-unreachable; with the
     superset source in play the aggregate still classifies it ambiguous
     (conservative), and boundaries exist for its instructions. *)
  let binary, symbols = Testprogs.island_binary () in
  let agg = Disasm.Aggregate.run binary in
  let hidden = List.assoc "hidden" symbols in
  (match Disasm.Aggregate.verdict_at agg hidden with
  | Some Disasm.Aggregate.Ambiguous -> ()
  | v ->
      Alcotest.failf "hidden code verdict: %s"
        (match v with
        | Some x -> Format.asprintf "%a" Disasm.Aggregate.pp_verdict x
        | None -> "none"));
  Alcotest.(check bool) "hidden boundary known" true
    (Hashtbl.mem agg.Disasm.Aggregate.insn_at hidden)

let suite =
  [
    Alcotest.test_case "prune kills bad flow" `Quick test_prune_kills_flow_into_garbage;
    Alcotest.test_case "prune keeps chains" `Quick test_prune_keeps_terminated_chains;
    Alcotest.test_case "abstains where recursive reaches" `Quick
      test_superset_abstains_on_recursive_territory;
    Alcotest.test_case "tiles unreachable code" `Quick test_superset_tiles_unreachable_code;
    Alcotest.test_case "three-way verdicts stable" `Quick test_three_way_run_equivalent_verdicts;
    Alcotest.test_case "low confidence insufficient" `Quick
      test_combine_sources_requires_high_confidence;
    Alcotest.test_case "mismatched sources rejected" `Quick test_combine_sources_mismatch_rejected;
    Alcotest.test_case "fixed-region boundaries" `Quick test_superset_improves_fixed_region_boundaries;
  ]
