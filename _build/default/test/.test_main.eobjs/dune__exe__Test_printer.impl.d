test/test_printer.ml: Alcotest Cgc List String Testprogs Zasm Zelf Zvm
