test/test_zasm.ml: Alcotest Assemble Ast Builder Bytes Char List Zasm Zelf Zvm
