test/test_reassemble_units.ml: Alcotest Bytes Char Irdb List Zelf Zipr Zvm
