test/test_pipeline.ml: Alcotest Bytes List Printf Testprogs Transforms Zasm Zelf Zipr Zvm
