test/test_transforms.ml: Alcotest List Printf String Testprogs Transforms Zasm Zelf Zipr Zvm
