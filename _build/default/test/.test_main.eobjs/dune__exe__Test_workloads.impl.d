test/test_workloads.ml: Alcotest Cgc Printf Transforms Workloads Zelf Zipr
