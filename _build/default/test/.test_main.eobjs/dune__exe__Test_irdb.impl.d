test/test_irdb.ml: Alcotest Bytes Irdb List String Testprogs Transforms Zelf Zipr Zvm
