test/test_props.ml: Bytes Cgc Irdb List Printf QCheck QCheck_alcotest Transforms Zelf Zipr Zvm
