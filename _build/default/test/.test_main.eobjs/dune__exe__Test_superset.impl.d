test/test_superset.ml: Alcotest Array Buffer Disasm Format Hashtbl List Testprogs Zelf Zvm
