test/test_zvm.ml: Alcotest Array Bytes Cond Decode Encode Insn List Memory QCheck QCheck_alcotest Reg Vm Zipr_util Zvm
