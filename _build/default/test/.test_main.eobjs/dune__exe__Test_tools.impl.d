test/test_tools.ml: Alcotest Bytes Irdb List Printf Testprogs Transforms Zelf Zipr Zvm
