test/test_disasm.ml: Alcotest Buffer Bytes Disasm Format List Option Zasm Zelf Zvm
