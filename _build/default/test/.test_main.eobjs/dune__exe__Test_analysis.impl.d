test/test_analysis.ml: Alcotest Analysis Disasm Irdb List Printf Testprogs Zasm Zelf Zipr Zvm
