test/test_zvm_semantics.ml: Alcotest Cond Encode Insn List Memory Printf Reg Vm Zvm
