test/test_zelf.ml: Alcotest Binary Bytes Char Image List Section Zelf Zipr_util Zvm
