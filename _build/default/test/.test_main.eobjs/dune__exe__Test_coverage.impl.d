test/test_coverage.ml: Alcotest Array Bytes Cgc List String Zelf Zipr Zipr_util Zvm
