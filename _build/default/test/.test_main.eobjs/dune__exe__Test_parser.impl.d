test/test_parser.ml: Alcotest Char String Transforms Zasm Zelf Zipr Zvm
