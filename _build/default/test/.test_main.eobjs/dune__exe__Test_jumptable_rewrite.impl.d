test/test_jumptable_rewrite.ml: Alcotest Cgc List Printf Testprogs Transforms Zelf Zipr Zvm
