test/test_cgc.ml: Alcotest Bytes Cgc List Printf String Transforms Zelf Zipr Zvm
