test/test_routine.ml: Alcotest Bytes Irdb List Testprogs Zelf Zipr Zvm
