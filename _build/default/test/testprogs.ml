(* Shared test programs: small but structurally rich binaries used by the
   pipeline, transform and property tests.  Each returns a Builder; tests
   assemble and run them. *)

open Zasm
module Insn = Zvm.Insn
module Reg = Zvm.Reg
module Cond = Zvm.Cond

let assemble b = Builder.assemble_exn b

(* Reads one byte n, computes fib(n mod 12) iteratively, transmits the
   result byte, exits 0. *)
let fib_program () =
  let b = Builder.create ~entry:"main" () in
  Builder.bss b "buf" 16;
  Builder.label b "main";
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.movi_lab b Reg.R1 "buf";
  Builder.insn b (Insn.Movi (Reg.R2, 1));
  Builder.insn b (Insn.Sys 2);
  Builder.movi_lab b Reg.R1 "buf";
  Builder.insn b (Insn.Load8 { dst = Reg.R0; base = Reg.R1; disp = 0 });
  Builder.insn b (Insn.Movi (Reg.R1, 12));
  Builder.insn b (Insn.Alu (Insn.Mod, Reg.R0, Reg.R1));
  Builder.call b "fib";
  Builder.movi_lab b Reg.R1 "buf";
  Builder.insn b (Insn.Store8 { base = Reg.R1; disp = 0; src = Reg.R0 });
  Builder.insn b (Insn.Movi (Reg.R0, 1));
  Builder.insn b (Insn.Movi (Reg.R2, 1));
  Builder.insn b (Insn.Sys 1);
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.insn b (Insn.Sys 0);
  Builder.label b "fib";
  Builder.insn b (Insn.Movi (Reg.R4, 0));
  Builder.insn b (Insn.Movi (Reg.R5, 1));
  Builder.label b "fib_loop";
  Builder.insn b (Insn.Cmpi (Reg.R0, 0));
  Builder.jcc b Cond.Eq "fib_done";
  Builder.insn b (Insn.Mov (Reg.R6, Reg.R5));
  Builder.insn b (Insn.Alu (Insn.Add, Reg.R5, Reg.R4));
  Builder.insn b (Insn.Mov (Reg.R4, Reg.R6));
  Builder.insn b (Insn.Alui (Insn.Subi, Reg.R0, 1));
  Builder.jmp b "fib_loop";
  Builder.label b "fib_done";
  Builder.insn b (Insn.Mov (Reg.R0, Reg.R4));
  Builder.insn b (Insn.Ret);
  b

(* Emits the shared "print nul-terminated string at r1" routine. *)
let emit_print b =
  Builder.label b "print";
  Builder.insn b (Insn.Mov (Reg.R4, Reg.R1));
  Builder.label b "print_len";
  Builder.insn b (Insn.Load8 { dst = Reg.R5; base = Reg.R4; disp = 0 });
  Builder.insn b (Insn.Cmpi (Reg.R5, 0));
  Builder.jcc b Cond.Eq "print_go";
  Builder.insn b (Insn.Alui (Insn.Addi, Reg.R4, 1));
  Builder.jmp b "print_len";
  Builder.label b "print_go";
  Builder.insn b (Insn.Mov (Reg.R2, Reg.R4));
  Builder.insn b (Insn.Alu (Insn.Sub, Reg.R2, Reg.R1));
  Builder.insn b (Insn.Movi (Reg.R0, 1));
  Builder.insn b (Insn.Sys 1);
  Builder.insn b (Insn.Ret)

(* Command dispatcher: reads command bytes in a loop; '0'..'2' dispatch
   through a jump table, 'f' reads a second byte and calls through a
   function-pointer table, 'q' (or EOF) quits.  Handlers print distinct
   strings. *)
let dispatch_program () =
  let b = Builder.create ~entry:"main" () in
  Builder.bss b "buf" 64;
  Builder.rodata_label b "jt";
  Builder.rodata_word b (Ast.Lab "case_a");
  Builder.rodata_word b (Ast.Lab "case_b");
  Builder.rodata_word b (Ast.Lab "case_c");
  Builder.rodata_label b "fptrs";
  Builder.rodata_word b (Ast.Lab "fn_x");
  Builder.rodata_word b (Ast.Lab "fn_y");
  Builder.rodata_label b "msg_a";
  Builder.rodata_asciiz b "alpha\n";
  Builder.rodata_label b "msg_b";
  Builder.rodata_asciiz b "bravo\n";
  Builder.rodata_label b "msg_c";
  Builder.rodata_asciiz b "charlie\n";
  Builder.rodata_label b "msg_x";
  Builder.rodata_asciiz b "xray\n";
  Builder.rodata_label b "msg_y";
  Builder.rodata_asciiz b "yankee\n";
  Builder.rodata_label b "msg_q";
  Builder.rodata_asciiz b "bye\n";
  Builder.label b "main";
  Builder.label b "loop";
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.movi_lab b Reg.R1 "buf";
  Builder.insn b (Insn.Movi (Reg.R2, 1));
  Builder.insn b (Insn.Sys 2);
  Builder.insn b (Insn.Cmpi (Reg.R0, 0));
  Builder.jcc b Cond.Eq "quit";
  Builder.movi_lab b Reg.R1 "buf";
  Builder.insn b (Insn.Load8 { dst = Reg.R3; base = Reg.R1; disp = 0 });
  Builder.insn b (Insn.Cmpi (Reg.R3, Char.code 'q'));
  Builder.jcc b Cond.Eq "quit";
  Builder.insn b (Insn.Cmpi (Reg.R3, Char.code 'f'));
  Builder.jcc b Cond.Eq "fcall";
  Builder.insn b (Insn.Cmpi (Reg.R3, Char.code '0'));
  Builder.jcc b Cond.Lt "loop";
  Builder.insn b (Insn.Cmpi (Reg.R3, Char.code '2'));
  Builder.jcc b Cond.Gt "loop";
  Builder.insn b (Insn.Alui (Insn.Subi, Reg.R3, Char.code '0'));
  Builder.jmpt_lab b Reg.R3 "jt";
  Builder.label b "case_a";
  Builder.movi_lab b Reg.R1 "msg_a";
  Builder.call b "print";
  Builder.jmp b "loop";
  Builder.label b "case_b";
  Builder.movi_lab b Reg.R1 "msg_b";
  Builder.call b "print";
  Builder.jmp b "loop";
  Builder.label b "case_c";
  Builder.movi_lab b Reg.R1 "msg_c";
  Builder.call b "print";
  Builder.jmp b "loop";
  Builder.label b "fcall";
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.movi_lab b Reg.R1 "buf";
  Builder.insn b (Insn.Movi (Reg.R2, 1));
  Builder.insn b (Insn.Sys 2);
  Builder.movi_lab b Reg.R1 "buf";
  Builder.insn b (Insn.Load8 { dst = Reg.R3; base = Reg.R1; disp = 0 });
  Builder.insn b (Insn.Alui (Insn.Andi, Reg.R3, 1));
  Builder.insn b (Insn.Shli (Reg.R3, 2));
  Builder.movi_lab b Reg.R4 "fptrs";
  Builder.insn b (Insn.Alu (Insn.Add, Reg.R4, Reg.R3));
  Builder.insn b (Insn.Load { dst = Reg.R4; base = Reg.R4; disp = 0 });
  Builder.insn b (Insn.Callr Reg.R4);
  Builder.jmp b "loop";
  Builder.label b "fn_x";
  Builder.movi_lab b Reg.R1 "msg_x";
  Builder.call b "print";
  Builder.insn b (Insn.Ret);
  Builder.label b "fn_y";
  Builder.movi_lab b Reg.R1 "msg_y";
  Builder.call b "print";
  Builder.insn b (Insn.Ret);
  Builder.label b "quit";
  Builder.movi_lab b Reg.R1 "msg_q";
  Builder.call b "print";
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.insn b (Insn.Sys 0);
  emit_print b;
  b

(* Data embedded in the text section, plus a computed ("hidden") jump the
   recursive disassembler cannot follow: the target address is split into
   two immediates so no single constant is a text address.  The hidden
   region must survive as an ambiguous fixed range. *)
let island_program () =
  let b = Builder.create ~entry:"main" () in
  let split = 0x7000000 in
  Builder.label b "main";
  (* Print the embedded island string via PC-relative addressing. *)
  Builder.leap_lab b Reg.R1 "island";
  Builder.call b "print";
  (* Computed jump to the hidden code. *)
  Builder.movi_lab b Reg.R4 "hidden_minus";
  Builder.insn b (Insn.Alui (Insn.Addi, Reg.R4, split));
  Builder.insn b (Insn.Jmpr Reg.R4);
  (* Embedded data island (mostly non-decodable bytes). *)
  Builder.label b "island";
  Builder.text_item b (Ast.Asciiz "island!\n");
  Builder.text_item b (Ast.Raw_bytes (Bytes.of_string "\x00\x01\x02\x03\xfc\xfb"));
  (* Hidden code: linear sweep sees it, recursive traversal cannot. *)
  Builder.label b "hidden";
  Builder.leap_lab b Reg.R1 "hidden_msg";
  Builder.call b "print";
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.insn b (Insn.Sys 0);
  Builder.label b "hidden_msg";
  Builder.text_item b (Ast.Asciiz "hidden\n");
  emit_print b;
  (* hidden_minus = hidden - split, materialized via rodata arithmetic:
     we can't express label arithmetic in the assembler, so store the
     adjusted constant as data and load it. *)
  b, split

(* island_program needs label arithmetic (hidden - split); build it by
   assembling once to learn addresses, then substituting the constant. *)
let island_binary () =
  let b, split = island_program () in
  (* First pass: place a dummy constant to learn the layout. *)
  let b1 = b in
  let probe = Builder.to_program b1 in
  let patched =
    (* Replace the Movi_lab "hidden_minus" item with a concrete Movi of
       (addr(hidden) - split) once known. *)
    let _, symbols =
      Assemble.program_exn
        {
          probe with
          Ast.source_sections =
            List.map
              (fun (s : Ast.section_src) ->
                {
                  s with
                  Ast.items =
                    List.map
                      (function
                        | Ast.Movi_lab (r, Ast.Lab "hidden_minus") ->
                            Ast.Insn (Insn.Movi (r, 0))
                        | item -> item)
                      s.Ast.items;
                })
              probe.Ast.source_sections;
        }
    in
    let hidden = List.assoc "hidden" symbols in
    {
      probe with
      Ast.source_sections =
        List.map
          (fun (s : Ast.section_src) ->
            {
              s with
              Ast.items =
                List.map
                  (function
                    | Ast.Movi_lab (r, Ast.Lab "hidden_minus") ->
                        Ast.Insn (Insn.Movi (r, (hidden - split) land 0xffffffff))
                    | item -> item)
                  s.Ast.items;
            })
          probe.Ast.source_sections;
    }
  in
  Assemble.program_exn patched

(* Two 1-byte instructions at consecutive addresses, both address-taken
   through a function-pointer table: their pins are 1 byte apart, forcing
   a sled.  Calling through both pointers must behave identically before
   and after rewriting. *)
let dense_pins_program () =
  let b = Builder.create ~entry:"main" () in
  Builder.rodata_label b "targets";
  Builder.rodata_word b (Ast.Lab "t0");
  Builder.rodata_word b (Ast.Lab "t1");
  Builder.rodata_label b "msg0";
  Builder.rodata_asciiz b "t0!";
  Builder.rodata_label b "msg1";
  Builder.rodata_asciiz b "t1!";
  Builder.label b "main";
  (* call *targets[0] *)
  Builder.loada_lab b Reg.R4 "targets";
  Builder.insn b (Insn.Callr Reg.R4);
  Builder.movi_lab b Reg.R1 "msg0";
  Builder.call b "print";
  (* call *targets[1] *)
  Builder.movi_lab b Reg.R4 "targets";
  Builder.insn b (Insn.Load { dst = Reg.R4; base = Reg.R4; disp = 4 });
  Builder.insn b (Insn.Callr Reg.R4);
  Builder.movi_lab b Reg.R1 "msg1";
  Builder.call b "print";
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.insn b (Insn.Sys 0);
  (* Dense targets: t0 is a 1-byte nop directly followed by t1. *)
  Builder.label b "t0";
  Builder.insn b Insn.Nop;
  Builder.label b "t1";
  Builder.insn b (Insn.Movi (Reg.R7, 0x5151));
  Builder.insn b (Insn.Ret);
  emit_print b;
  b

(* A vulnerable challenge-binary-in-miniature: reads a length byte, then
   that many bytes into a 48-byte stack buffer with no bounds check.  A
   long enough input overwrites the return address. *)
let vuln_program () =
  let b = Builder.create ~entry:"main" () in
  Builder.bss b "nbuf" 4;
  Builder.rodata_label b "msg_ok";
  Builder.rodata_asciiz b "ok\n";
  Builder.label b "main";
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.movi_lab b Reg.R1 "nbuf";
  Builder.insn b (Insn.Movi (Reg.R2, 1));
  Builder.insn b (Insn.Sys 2);
  Builder.movi_lab b Reg.R1 "nbuf";
  Builder.insn b (Insn.Load8 { dst = Reg.R3; base = Reg.R1; disp = 0 });
  Builder.call b "handler";
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.insn b (Insn.Sys 0);
  Builder.label b "handler";
  Builder.insn b (Insn.Alui (Insn.Subi, Reg.SP, 48));
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.insn b (Insn.Mov (Reg.R1, Reg.SP));
  Builder.insn b (Insn.Mov (Reg.R2, Reg.R3));
  Builder.insn b (Insn.Sys 2);
  Builder.movi_lab b Reg.R1 "msg_ok";
  Builder.call b "print";
  Builder.insn b (Insn.Alui (Insn.Addi, Reg.SP, 48));
  Builder.insn b (Insn.Ret);
  emit_print b;
  b

(* A larger, compiler-shaped program: [nfuncs] small functions, each with
   a tight internal loop, all called in sequence from main.  Used for
   overhead measurements where a toy program's fixed costs would
   dominate. *)
let big_program ?(nfuncs = 40) () =
  let b = Builder.create ~entry:"main" () in
  Builder.label b "main";
  for i = 0 to nfuncs - 1 do
    Builder.insn b (Insn.Movi (Reg.R0, i));
    Builder.call b (Printf.sprintf "f%d" i)
  done;
  Builder.insn b (Insn.Movi (Reg.R0, 0));
  Builder.insn b (Insn.Sys 0);
  for i = 0 to nfuncs - 1 do
    Builder.label b (Printf.sprintf "f%d" i);
    Builder.insn b (Insn.Movi (Reg.R4, 3 + (i mod 5)));
    Builder.insn b (Insn.Movi (Reg.R5, 0));
    Builder.label b (Printf.sprintf "f%d_loop" i);
    Builder.insn b (Insn.Alu (Insn.Add, Reg.R5, Reg.R0));
    Builder.insn b (Insn.Alui (Insn.Xori, Reg.R5, i));
    Builder.insn b (Insn.Alui (Insn.Subi, Reg.R4, 1));
    Builder.insn b (Insn.Cmpi (Reg.R4, 0));
    Builder.jcc b Cond.Ne (Printf.sprintf "f%d_loop" i);
    Builder.insn b (Insn.Mov (Reg.R0, Reg.R5));
    Builder.insn b (Insn.Ret)
  done;
  b

(* Stack layout under the default VM: main's call pushes at
   stack_top - 4, handler's frame starts 48 below. *)
let vuln_buffer_addr = 0xbfff_f000 - 4 - 48

(* Exploit payload: shellcode at the buffer start, the string it
   transmits near the end, and the return-address overwrite in the last
   4 bytes.  The shellcode transmits "PWN!" and exits 42. *)
let vuln_exploit () =
  let open Zipr_util in
  let buf = Bytebuf.create () in
  let shell =
    Zvm.Encode.encode_all
      [
        Insn.Movi (Reg.R0, 1);
        Insn.Movi (Reg.R1, vuln_buffer_addr + 36);
        Insn.Movi (Reg.R2, 4);
        Insn.Sys 1;
        Insn.Movi (Reg.R0, 42);
        Insn.Sys 0;
      ]
  in
  Bytebuf.blit_bytes buf shell;
  Bytebuf.zeros buf (36 - Bytes.length shell);
  Bytebuf.string buf "PWN!";
  Bytebuf.zeros buf (48 - Bytebuf.length buf);
  Bytebuf.u32 buf vuln_buffer_addr;
  let payload = Bytebuf.to_string buf in
  (* length byte + payload *)
  String.make 1 (Char.chr (String.length payload)) ^ payload
