(* Tests for the disassemblers and the conservative aggregation. *)

module Insn = Zvm.Insn
module Reg = Zvm.Reg

let binary_of_text ?(extra = []) ?(entry = 0x1000) code =
  Zelf.Binary.create ~entry
    (Zelf.Section.make ~name:".text" ~kind:Zelf.Section.Text ~vaddr:0x1000 code :: extra)

let test_linear_covers_clean_code () =
  let code = Zvm.Encode.encode_all Insn.[ Movi (Reg.R0, 1); Nop; Ret ] in
  let lin = Disasm.Linear.sweep (binary_of_text code) in
  Alcotest.(check (option int)) "first insn" (Some 0x1000) (Disasm.Linear.covering_start lin 0x1000);
  Alcotest.(check (option int)) "mid insn covered" (Some 0x1000)
    (Disasm.Linear.covering_start lin 0x1003);
  Alcotest.(check (option int)) "nop" (Some 0x1006) (Disasm.Linear.covering_start lin 0x1006);
  Alcotest.(check bool) "no data" false (Disasm.Linear.is_data lin 0x1000)

let test_linear_resyncs_on_bad_byte () =
  (* 0x00 is not an opcode: linear marks it data and resumes next byte. *)
  let buf = Buffer.create 16 in
  Buffer.add_bytes buf (Zvm.Encode.to_bytes Insn.Nop);
  Buffer.add_char buf '\x00';
  Buffer.add_bytes buf (Zvm.Encode.to_bytes Insn.Ret);
  let lin = Disasm.Linear.sweep (binary_of_text (Buffer.to_bytes buf)) in
  Alcotest.(check bool) "bad byte is data" true (Disasm.Linear.is_data lin 0x1001);
  Alcotest.(check (option int)) "resynced" (Some 0x1002) (Disasm.Linear.covering_start lin 0x1002)

let test_recursive_stops_at_flow_end () =
  (* ret; then unreferenced junk that decodes fine. *)
  let code = Zvm.Encode.encode_all Insn.[ Ret; Movi (Reg.R7, 0xbad); Halt ] in
  let rec_ = Disasm.Recursive.traverse (binary_of_text code) in
  Alcotest.(check bool) "entry reached" true (Disasm.Recursive.reached rec_ 0x1000);
  Alcotest.(check bool) "dead not reached" false (Disasm.Recursive.reached rec_ 0x1001)

let test_recursive_follows_calls_and_branches () =
  let b = Zasm.Builder.create ~entry:"main" () in
  Zasm.Builder.label b "main";
  Zasm.Builder.call b "f";
  Zasm.Builder.jmp b "end";
  Zasm.Builder.label b "f";
  Zasm.Builder.insn b (Insn.Ret);
  Zasm.Builder.label b "end";
  Zasm.Builder.insn b (Insn.Halt);
  let binary, symbols = Zasm.Builder.assemble_exn b in
  let rec_ = Disasm.Recursive.traverse binary in
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " reached") true
        (Disasm.Recursive.reached rec_ (List.assoc l symbols)))
    [ "main"; "f"; "end" ]

let test_recursive_seeds_from_data_scan () =
  (* A function referenced only from a rodata pointer table. *)
  let b = Zasm.Builder.create ~entry:"main" () in
  Zasm.Builder.rodata_label b "tbl";
  Zasm.Builder.rodata_word b (Zasm.Ast.Lab "only_via_table");
  Zasm.Builder.label b "main";
  Zasm.Builder.insn b Insn.Halt;
  Zasm.Builder.label b "only_via_table";
  Zasm.Builder.insn b (Insn.Movi (Reg.R0, 3));
  Zasm.Builder.insn b (Insn.Ret);
  let binary, symbols = Zasm.Builder.assemble_exn b in
  let rec_ = Disasm.Recursive.traverse binary in
  Alcotest.(check bool) "table target reached" true
    (Disasm.Recursive.reached rec_ (List.assoc "only_via_table" symbols))

let test_scan_for_text_addresses () =
  let b = Zasm.Builder.create ~entry:"main" () in
  Zasm.Builder.rodata_label b "tbl";
  Zasm.Builder.rodata_word b (Zasm.Ast.Lab "main");
  Zasm.Builder.rodata_word b (Zasm.Ast.Abs 0xdeadbeef);
  Zasm.Builder.label b "main";
  Zasm.Builder.insn b Insn.Halt;
  let binary, symbols = Zasm.Builder.assemble_exn b in
  let hits = Disasm.Recursive.scan_for_text_addresses binary in
  Alcotest.(check bool) "finds main" true (List.mem (List.assoc "main" symbols) hits);
  Alcotest.(check bool) "ignores non-text" true (not (List.mem 0xdeadbeef hits))

let test_aggregate_case1_code () =
  let code = Zvm.Encode.encode_all Insn.[ Movi (Reg.R0, 1); Halt ] in
  let agg = Disasm.Aggregate.run (binary_of_text code) in
  Alcotest.(check (option Alcotest.string)) "all code" (Some "code")
    (Option.map
       (Format.asprintf "%a" Disasm.Aggregate.pp_verdict)
       (Disasm.Aggregate.verdict_at agg 0x1000));
  let codeb, datab, ambb = Disasm.Aggregate.stats agg in
  Alcotest.(check int) "code bytes" (Bytes.length code) codeb;
  Alcotest.(check int) "no data" 0 datab;
  Alcotest.(check int) "no ambiguity" 0 ambb

let test_aggregate_undecodable_is_data () =
  let buf = Buffer.create 8 in
  Buffer.add_bytes buf (Zvm.Encode.to_bytes Insn.Halt);
  Buffer.add_string buf "\x00\x01\x02";
  let agg = Disasm.Aggregate.run (binary_of_text (Buffer.to_bytes buf)) in
  Alcotest.(check (option Alcotest.string)) "junk is data" (Some "data")
    (Option.map
       (Format.asprintf "%a" Disasm.Aggregate.pp_verdict)
       (Disasm.Aggregate.verdict_at agg 0x1001))

let test_aggregate_linear_only_is_ambiguous () =
  (* Code after a halt: decodes under linear sweep, unreached by recursive
     traversal — paper case 4, conservatively ambiguous. *)
  let code = Zvm.Encode.encode_all Insn.[ Halt; Movi (Reg.R7, 1); Ret ] in
  let agg = Disasm.Aggregate.run (binary_of_text code) in
  Alcotest.(check (option Alcotest.string)) "dead code ambiguous" (Some "ambiguous")
    (Option.map
       (Format.asprintf "%a" Disasm.Aggregate.pp_verdict)
       (Disasm.Aggregate.verdict_at agg 0x1001));
  Alcotest.(check bool) "range extracted" true (Disasm.Aggregate.ambiguous_ranges agg <> [])

let test_aggregate_boundary_disagreement () =
  (* Force a misaligned decode: entry jumps into the middle of what linear
     sweep reads from the start.  Construct bytes so linear decodes a
     6-byte movi at 0x1000 while the program entry (0x1002) decodes
     something else inside it. *)
  let buf = Buffer.create 16 in
  (* movi r0, imm where imm bytes themselves decode as instructions *)
  Buffer.add_bytes buf (Zvm.Encode.to_bytes (Insn.Movi (Reg.R0, 0x90909090)));
  Buffer.add_bytes buf (Zvm.Encode.to_bytes Insn.Halt);
  let binary = binary_of_text ~entry:0x1002 (Buffer.to_bytes buf) in
  let agg = Disasm.Aggregate.run binary in
  (* The overlap region must not be called conclusive code for both. *)
  let _, _, ambb = Disasm.Aggregate.stats agg in
  Alcotest.(check bool) "some ambiguity" true (ambb > 0);
  Alcotest.(check bool) "warning recorded" true (agg.Disasm.Aggregate.warnings <> [])

let test_aggregate_code_starts_sorted () =
  let code = Zvm.Encode.encode_all Insn.[ Nop; Nop; Halt ] in
  let agg = Disasm.Aggregate.run (binary_of_text code) in
  let starts = Disasm.Aggregate.code_starts agg in
  Alcotest.(check (list int)) "starts" [ 0x1000; 0x1001; 0x1002 ] starts

let suite =
  [
    Alcotest.test_case "linear covers code" `Quick test_linear_covers_clean_code;
    Alcotest.test_case "linear resync" `Quick test_linear_resyncs_on_bad_byte;
    Alcotest.test_case "recursive stops" `Quick test_recursive_stops_at_flow_end;
    Alcotest.test_case "recursive follows flow" `Quick test_recursive_follows_calls_and_branches;
    Alcotest.test_case "recursive data-scan seeds" `Quick test_recursive_seeds_from_data_scan;
    Alcotest.test_case "text address scan" `Quick test_scan_for_text_addresses;
    Alcotest.test_case "aggregate case 1" `Quick test_aggregate_case1_code;
    Alcotest.test_case "aggregate data" `Quick test_aggregate_undecodable_is_data;
    Alcotest.test_case "aggregate case 4" `Quick test_aggregate_linear_only_is_ambiguous;
    Alcotest.test_case "aggregate disagreement" `Quick test_aggregate_boundary_disagreement;
    Alcotest.test_case "aggregate starts" `Quick test_aggregate_code_starts_sorted;
  ]
