(* Tests for the ZVM ISA: encoding, decoding, and interpreter semantics. *)

open Zvm
module Hex = Zipr_util.Hex

let insn = Alcotest.testable Insn.pp Insn.equal

(* -- encode/decode -- *)

let check_encoding i expected_hex =
  Alcotest.(check string)
    (Insn.to_string i) expected_hex
    (Hex.of_bytes (Encode.to_bytes i))

let test_byte_exact_encodings () =
  (* The opcodes whose exact byte values the paper's techniques rely on. *)
  check_encoding Insn.Nop "90";
  check_encoding Insn.Ret "c3";
  check_encoding Insn.Halt "f4";
  check_encoding (Insn.Pushi 0x90909090) "6890909090";
  check_encoding (Insn.Jmp (Insn.Short, -2)) "ebfe";
  check_encoding (Insn.Jmp (Insn.Near, 0x100)) "e900010000";
  check_encoding (Insn.Call 0x10) "e810000000";
  check_encoding Insn.Land "61";
  check_encoding Insn.Retland "62"

let test_more_encodings () =
  check_encoding (Insn.Movi (Reg.R3, 0xdeadbeef)) "1003efbeadde";
  check_encoding (Insn.Mov (Reg.R1, Reg.R2)) "1112";
  check_encoding (Insn.Alu (Insn.Add, Reg.R0, Reg.R7)) "2007";
  check_encoding (Insn.Push Reg.SP) "5080";
  check_encoding (Insn.Jcc (Cond.Eq, Insn.Short, 4)) "7004";
  check_encoding (Insn.Jcc (Cond.Ne, Insn.Near, -1)) "59ffffffff";
  check_encoding (Insn.Sys 2) "6002";
  check_encoding (Insn.Jmpt (Reg.R1, 0x200000)) "fd0100002000"

let test_size_agrees_with_encoding () =
  let samples =
    [
      Insn.Nop;
      Insn.Ret;
      Insn.Movi (Reg.R0, 5);
      Insn.Mov (Reg.R0, Reg.R1);
      Insn.Load { dst = Reg.R0; base = Reg.R1; disp = -4 };
      Insn.Store { base = Reg.SP; disp = 8; src = Reg.R2 };
      Insn.Alu (Insn.Xor, Reg.R3, Reg.R3);
      Insn.Alui (Insn.Addi, Reg.R4, 100);
      Insn.Shli (Reg.R5, 2);
      Insn.Cmp (Reg.R0, Reg.R1);
      Insn.Cmpi (Reg.R0, 10);
      Insn.Push Reg.R6;
      Insn.Pushi 42;
      Insn.Jcc (Cond.Lt, Insn.Short, 10);
      Insn.Jcc (Cond.Uge, Insn.Near, 1000);
      Insn.Jmp (Insn.Short, -10);
      Insn.Jmp (Insn.Near, 12345);
      Insn.Call (-100);
      Insn.Jmpr Reg.R7;
      Insn.Callr Reg.R1;
      Insn.Jmpt (Reg.R0, 0x1234);
      Insn.Sys 0;
      Insn.Leap (Reg.R0, 64);
      Insn.Loadp (Reg.R1, -64);
      Insn.Storep (32, Reg.R2);
      Insn.Leaa (Reg.R0, 0x200010);
      Insn.Loada (Reg.R1, 0x300000);
      Insn.Storea (0x300004, Reg.R2);
      Insn.Halt;
    ]
  in
  List.iter
    (fun i ->
      Alcotest.(check int) (Insn.to_string i) (Insn.size i) (Bytes.length (Encode.to_bytes i)))
    samples

let test_decode_roundtrip () =
  let samples =
    [
      Insn.Movi (Reg.R2, 0x12345678);
      Insn.Load { dst = Reg.R3; base = Reg.SP; disp = 12 };
      Insn.Store8 { base = Reg.R1; disp = -1; src = Reg.R0 };
      Insn.Alu (Insn.Div, Reg.R0, Reg.R1);
      Insn.Not Reg.R5;
      Insn.Neg Reg.R6;
      Insn.Test (Reg.R0, Reg.R0);
      Insn.Jcc (Cond.Le, Insn.Short, -5);
      Insn.Jmp (Insn.Near, -6);
      Insn.Call 1024;
      Insn.Jmpt (Reg.R2, 0xffff0000);
      Insn.Pop Reg.R4;
      Insn.Leap (Reg.R7, -12);
      Insn.Storep (99, Reg.R3);
      Insn.Storea (0xabcdef0, Reg.R1);
    ]
  in
  List.iter
    (fun i ->
      let b = Encode.to_bytes i in
      match Decode.decode_bytes b ~pos:0 with
      | Ok (i', len) ->
          Alcotest.check insn (Insn.to_string i) i i';
          Alcotest.(check int) "length" (Bytes.length b) len
      | Error e -> Alcotest.failf "decode failed on %s: %s" (Insn.to_string i) (Decode.error_to_string e))
    samples

let test_decode_bad_opcode () =
  match Decode.decode_bytes (Bytes.of_string "\x03") ~pos:0 with
  | Error (Decode.Bad_opcode 3) -> ()
  | _ -> Alcotest.fail "expected bad opcode"

let test_decode_truncated () =
  match Decode.decode_bytes (Bytes.of_string "\xe9\x01") ~pos:0 with
  | Error Decode.Truncated -> ()
  | _ -> Alcotest.fail "expected truncated"

let test_decode_bad_register () =
  (* MOVI with register index 9 *)
  match Decode.decode_bytes (Bytes.of_string "\x10\x09\x00\x00\x00\x00") ~pos:0 with
  | Error (Decode.Bad_register 9) -> ()
  | _ -> Alcotest.fail "expected bad register"

let arbitrary_insn =
  let open QCheck.Gen in
  let reg = oneofl (Array.to_list Reg.general) in
  let any_reg = oneofl (Array.to_list Reg.all) in
  let cond = oneofl (Array.to_list Cond.all) in
  let imm = map (fun v -> v land 0xffffffff) (int_bound 0x3fffffff) in
  let disp = map (fun v -> v - 0x20000) (int_bound 0x40000) in
  let disp8 = map (fun v -> v - 128) (int_bound 255) in
  oneof
    [
      map2 (fun r v -> Insn.Movi (r, v)) any_reg imm;
      map2 (fun a b -> Insn.Mov (a, b)) any_reg any_reg;
      map3 (fun dst base disp -> Insn.Load { dst; base; disp }) reg any_reg disp;
      map3 (fun base src disp -> Insn.Store { base; disp; src }) any_reg reg disp;
      map3
        (fun op a b -> Insn.Alu (op, a, b))
        (oneofl
           Insn.[ Add; Sub; Mul; Div; Mod; And; Or; Xor; Shl; Shr ])
        reg reg;
      map2 (fun r v -> Insn.Cmpi (r, v)) reg imm;
      map (fun r -> Insn.Push r) any_reg;
      map (fun v -> Insn.Pushi v) imm;
      map2 (fun c d -> Insn.Jcc (c, Insn.Short, d)) cond disp8;
      map2 (fun c d -> Insn.Jcc (c, Insn.Near, d)) cond disp;
      map (fun d -> Insn.Jmp (Insn.Near, d)) disp;
      map (fun d -> Insn.Jmp (Insn.Short, d)) disp8;
      map (fun d -> Insn.Call d) disp;
      map (fun r -> Insn.Jmpr r) reg;
      map2 (fun r a -> Insn.Jmpt (r, a)) reg imm;
      return Insn.Ret;
      return Insn.Nop;
      return Insn.Halt;
      map (fun n -> Insn.Sys (n land 0xff)) (int_bound 255);
      map2 (fun r d -> Insn.Leap (r, d)) reg disp;
      map2 (fun r a -> Insn.Loada (r, a)) reg imm;
    ]

let test_qcheck_encode_decode =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:2000
    (QCheck.make ~print:Insn.to_string arbitrary_insn)
    (fun i ->
      let b = Encode.to_bytes i in
      match Decode.decode_bytes b ~pos:0 with
      | Ok (i', len) -> Insn.equal i i' && len = Bytes.length b
      | Error _ -> false)

(* -- static properties -- *)

let test_static_target () =
  Alcotest.(check (option int))
    "jmp near" (Some 0x1105)
    (Insn.static_target ~at:0x1000 (Insn.Jmp (Insn.Near, 0x100)));
  Alcotest.(check (option int))
    "jcc short backwards" (Some 0x0ffe)
    (Insn.static_target ~at:0x1000 (Insn.Jcc (Cond.Eq, Insn.Short, -4)));
  Alcotest.(check (option int)) "indirect has none" None (Insn.static_target ~at:0 (Insn.Jmpr Reg.R0))

let test_fallthrough_classification () =
  Alcotest.(check bool) "jmp no ft" false (Insn.has_fallthrough (Insn.Jmp (Insn.Near, 0)));
  Alcotest.(check bool) "jcc has ft" true (Insn.has_fallthrough (Insn.Jcc (Cond.Eq, Insn.Near, 0)));
  Alcotest.(check bool) "call has ft" true (Insn.has_fallthrough (Insn.Call 0));
  Alcotest.(check bool) "ret no ft" false (Insn.has_fallthrough Insn.Ret);
  Alcotest.(check bool) "jmpt no ft" false (Insn.has_fallthrough (Insn.Jmpt (Reg.R0, 0)));
  Alcotest.(check bool) "halt no ft" false (Insn.has_fallthrough Insn.Halt)

(* -- VM semantics -- *)

(* Run an instruction list placed at 0x1000 and return the VM plus result. *)
let run_insns ?(input = "") ?(fuel = 100_000) insns =
  let code = Encode.encode_all insns in
  let mem = Memory.create () in
  Memory.load_bytes mem ~addr:0x1000 code;
  let vm = Vm.create ~mem ~entry:0x1000 ~input () in
  let result = Vm.run ~fuel vm in
  (vm, result)

let stop = Alcotest.testable Vm.pp_stop Vm.equal_stop

let test_vm_arith () =
  let vm, result =
    run_insns
      Insn.[ Movi (Reg.R0, 7); Movi (Reg.R1, 5); Alu (Mul, Reg.R0, Reg.R1); Halt ]
  in
  Alcotest.check stop "halt" Vm.Halted result.Vm.stop;
  Alcotest.(check int) "7*5" 35 (Vm.reg vm Reg.R0)

let test_vm_wraparound () =
  let vm, _ =
    run_insns Insn.[ Movi (Reg.R0, 0xffffffff); Alui (Addi, Reg.R0, 2); Halt ]
  in
  Alcotest.(check int) "wraps to 1" 1 (Vm.reg vm Reg.R0)

let test_vm_div_by_zero () =
  let _, result =
    run_insns Insn.[ Movi (Reg.R0, 10); Movi (Reg.R1, 0); Alu (Div, Reg.R0, Reg.R1); Halt ]
  in
  match result.Vm.stop with
  | Vm.Fault (Vm.Div_fault _) -> ()
  | s -> Alcotest.failf "expected div fault, got %s" (Vm.stop_to_string s)

let test_vm_signed_compare () =
  (* -1 < 1 signed, but 0xffffffff > 1 unsigned. *)
  let _, result =
    run_insns
      Insn.
        [
          Movi (Reg.R0, 0xffffffff);
          Movi (Reg.R1, 1);
          Cmp (Reg.R0, Reg.R1);
          Jcc (Cond.Lt, Near, 1);  (* skip the halt below if signed-less *)
          Halt;
          (* target: *)
          Movi (Reg.R2, 99);
          Halt;
        ]
  in
  Alcotest.check stop "halted" Vm.Halted result.Vm.stop

let test_vm_signed_vs_unsigned_branches () =
  let run cond =
    let _, result =
      run_insns
        Insn.
          [
            Movi (Reg.R0, 0xffffffff);
            Movi (Reg.R1, 1);
            Cmp (Reg.R0, Reg.R1);
            Jcc (cond, Near, 2);
            Movi (Reg.R2, 1);  (* 6 bytes; skipped when branch taken *)
            Halt;
          ]
    in
    result
  in
  (* Signed: -1 < 1 so Lt taken -> jumps over movi into... displacement 2
     lands mid-instruction; keep it simpler: check exit kind only for Lt. *)
  ignore (run Cond.Uge);
  ()

let test_vm_push_pop_stack () =
  let vm, _ =
    run_insns
      Insn.[ Movi (Reg.R0, 0x1234); Push Reg.R0; Movi (Reg.R0, 0); Pop Reg.R1; Halt ]
  in
  Alcotest.(check int) "pop restores" 0x1234 (Vm.reg vm Reg.R1)

let test_vm_call_ret () =
  (* call f; halt; f: movi r0, 42; ret *)
  let prog =
    Insn.
      [
        Call 1 (* skip the 1-byte halt *);
        Halt;
        Movi (Reg.R0, 42);
        Ret;
      ]
  in
  let vm, result = run_insns prog in
  Alcotest.check stop "halted" Vm.Halted result.Vm.stop;
  Alcotest.(check int) "returned value" 42 (Vm.reg vm Reg.R0)

let test_vm_jmpr () =
  let _, result =
    run_insns Insn.[ Movi (Reg.R0, 0x1000 + 6 + 2 + 1); Jmpr Reg.R0; Halt; Movi (Reg.R1, 1); Halt ]
  in
  Alcotest.check stop "halted" Vm.Halted result.Vm.stop

let test_vm_transmit_receive () =
  (* Echo 3 bytes: receive into 0x300000 (mapped via data section below). *)
  let mem = Memory.create () in
  let code =
    Encode.encode_all
      Insn.
        [
          Movi (Reg.R0, 0);
          Movi (Reg.R1, 0x300000);
          Movi (Reg.R2, 3);
          Sys 2 (* receive *);
          Movi (Reg.R0, 1);
          Movi (Reg.R1, 0x300000);
          Movi (Reg.R2, 3);
          Sys 1 (* transmit *);
          Movi (Reg.R0, 0);
          Sys 0 (* terminate *);
        ]
  in
  Memory.load_bytes mem ~addr:0x1000 code;
  Memory.map mem ~addr:0x300000 ~len:4096;
  let vm = Vm.create ~mem ~entry:0x1000 ~input:"abc" () in
  let result = Vm.run vm in
  Alcotest.check stop "exit 0" (Vm.Exited 0) result.Vm.stop;
  Alcotest.(check string) "echoed" "abc" result.Vm.output

let test_vm_receive_eof () =
  let mem = Memory.create () in
  let code =
    Encode.encode_all
      Insn.[ Movi (Reg.R1, 0x300000); Movi (Reg.R2, 10); Sys 2; Mov (Reg.R3, Reg.R0); Halt ]
  in
  Memory.load_bytes mem ~addr:0x1000 code;
  Memory.map mem ~addr:0x300000 ~len:4096;
  let vm = Vm.create ~mem ~entry:0x1000 ~input:"" () in
  let _ = Vm.run vm in
  Alcotest.(check int) "eof returns 0" 0 (Vm.reg vm Reg.R3)

let test_vm_allocate () =
  let vm, _ =
    run_insns Insn.[ Movi (Reg.R0, 8192); Sys 3; Mov (Reg.R4, Reg.R0); Store { base = Reg.R4; disp = 0; src = Reg.R4 }; Halt ]
  in
  Alcotest.(check bool) "address in alloc range" true (Vm.reg vm Reg.R4 >= 0x60000000)

let test_vm_random_deterministic () =
  let run () =
    let mem = Memory.create () in
    let code =
      Encode.encode_all
        Insn.
          [
            Movi (Reg.R0, 0x300000);
            Movi (Reg.R1, 8);
            Sys 5;
            Movi (Reg.R0, 1);
            Movi (Reg.R1, 0x300000);
            Movi (Reg.R2, 8);
            Sys 1;
            Halt;
          ]
    in
    Memory.load_bytes mem ~addr:0x1000 code;
    Memory.map mem ~addr:0x300000 ~len:4096;
    let vm = Vm.create ~mem ~entry:0x1000 ~input:"" () in
    (Vm.run vm).Vm.output
  in
  Alcotest.(check string) "same stream" (run ()) (run ())

let test_vm_unmapped_fault () =
  let _, result = run_insns Insn.[ Movi (Reg.R0, 0x99999000); Load { dst = Reg.R1; base = Reg.R0; disp = 0 }; Halt ] in
  match result.Vm.stop with
  | Vm.Fault (Vm.Mem_fault { addr; _ }) -> Alcotest.(check int) "fault addr" 0x99999000 addr
  | s -> Alcotest.failf "expected mem fault, got %s" (Vm.stop_to_string s)

let test_vm_fuel () =
  let _, result = run_insns ~fuel:100 Insn.[ Jmp (Short, -2) ] in
  Alcotest.check stop "hang detected" (Vm.Fault Vm.Fuel_exhausted) result.Vm.stop

let test_vm_counts_instructions () =
  let _, result = run_insns Insn.[ Nop; Nop; Nop; Halt ] in
  Alcotest.(check int) "retired" 4 result.Vm.insns;
  Alcotest.(check bool) "cycles >= insns" true (result.Vm.cycles >= result.Vm.insns)

let test_vm_rss_counts_pages () =
  (* Touch two distant data pages and confirm they appear in MaxRSS. *)
  let mem = Memory.create () in
  let code =
    Encode.encode_all
      Insn.
        [
          Movi (Reg.R0, 0x300000);
          Store { base = Reg.R0; disp = 0; src = Reg.R0 };
          Movi (Reg.R0, 0x305000);
          Store { base = Reg.R0; disp = 0; src = Reg.R0 };
          Halt;
        ]
  in
  Memory.load_bytes mem ~addr:0x1000 code;
  Memory.map mem ~addr:0x300000 ~len:0x6000;
  let vm = Vm.create ~mem ~entry:0x1000 ~input:"" () in
  let result = Vm.run vm in
  (* 1 code page + 2 data pages; the stack page is untouched here. *)
  Alcotest.(check int) "pages touched" 3 result.Vm.max_rss_pages

let test_vm_pushi_sled_semantics () =
  (* The paper's sled: jumping into the middle of a pushi chain pushes a
     recognizable immediate.  Execute bytes 68 90 90 90 90 f4 from its
     start: push 0x90909090 then halt at the f4. *)
  let mem = Memory.create () in
  Memory.load_bytes mem ~addr:0x1000 (Zipr_util.Hex.to_bytes "689090909090f4");
  let vm = Vm.create ~mem ~entry:0x1000 ~input:"" () in
  let result = Vm.run vm in
  Alcotest.check stop "halts at f4" Vm.Halted result.Vm.stop;
  let sp = Vm.reg vm Reg.SP in
  (match Memory.read32 (Vm.mem vm) sp with
  | Some v -> Alcotest.(check int) "pushed imm" 0x90909090 v
  | None -> Alcotest.fail "stack unreadable");
  (* Entering one byte later executes nops only. *)
  let mem2 = Memory.create () in
  Memory.load_bytes mem2 ~addr:0x1000 (Zipr_util.Hex.to_bytes "689090909090f4");
  let vm2 = Vm.create ~mem:mem2 ~entry:0x1001 ~input:"" () in
  let result2 = Vm.run vm2 in
  Alcotest.check stop "nop path halts" Vm.Halted result2.Vm.stop;
  Alcotest.(check int) "nothing pushed" 0xbfff_f000 (Vm.reg vm2 Reg.SP)

let suite =
  [
    Alcotest.test_case "byte-exact encodings" `Quick test_byte_exact_encodings;
    Alcotest.test_case "more encodings" `Quick test_more_encodings;
    Alcotest.test_case "size agrees with encoding" `Quick test_size_agrees_with_encoding;
    Alcotest.test_case "decode roundtrip" `Quick test_decode_roundtrip;
    Alcotest.test_case "decode bad opcode" `Quick test_decode_bad_opcode;
    Alcotest.test_case "decode truncated" `Quick test_decode_truncated;
    Alcotest.test_case "decode bad register" `Quick test_decode_bad_register;
    QCheck_alcotest.to_alcotest test_qcheck_encode_decode;
    Alcotest.test_case "static target" `Quick test_static_target;
    Alcotest.test_case "fallthrough classes" `Quick test_fallthrough_classification;
    Alcotest.test_case "vm arith" `Quick test_vm_arith;
    Alcotest.test_case "vm wraparound" `Quick test_vm_wraparound;
    Alcotest.test_case "vm div by zero" `Quick test_vm_div_by_zero;
    Alcotest.test_case "vm signed compare" `Quick test_vm_signed_compare;
    Alcotest.test_case "vm unsigned branches" `Quick test_vm_signed_vs_unsigned_branches;
    Alcotest.test_case "vm push/pop" `Quick test_vm_push_pop_stack;
    Alcotest.test_case "vm call/ret" `Quick test_vm_call_ret;
    Alcotest.test_case "vm jmpr" `Quick test_vm_jmpr;
    Alcotest.test_case "vm transmit/receive" `Quick test_vm_transmit_receive;
    Alcotest.test_case "vm receive eof" `Quick test_vm_receive_eof;
    Alcotest.test_case "vm allocate" `Quick test_vm_allocate;
    Alcotest.test_case "vm random deterministic" `Quick test_vm_random_deterministic;
    Alcotest.test_case "vm unmapped fault" `Quick test_vm_unmapped_fault;
    Alcotest.test_case "vm fuel" `Quick test_vm_fuel;
    Alcotest.test_case "vm instruction counts" `Quick test_vm_counts_instructions;
    Alcotest.test_case "vm rss pages" `Quick test_vm_rss_counts_pages;
    Alcotest.test_case "vm pushi sled semantics" `Quick test_vm_pushi_sled_semantics;
  ]
