(* Tests for the ZBF binary container. *)

open Zelf

let mk_text bytes_hex = Section.make ~name:".text" ~kind:Section.Text ~vaddr:0x1000 (Zipr_util.Hex.to_bytes bytes_hex)

let sample () =
  Binary.create ~entry:0x1000
    [
      mk_text "f4";
      Section.make ~name:".data" ~kind:Section.Data ~vaddr:0x300000 (Bytes.of_string "hello");
      Section.make_bss ~name:".bss" ~vaddr:0x400000 ~size:4096;
    ]

let test_serialize_parse_roundtrip () =
  let b = sample () in
  let bytes = Binary.serialize b in
  match Binary.parse bytes with
  | Error e -> Alcotest.failf "parse failed: %a" Binary.pp_parse_error e
  | Ok b' ->
      Alcotest.(check int) "entry" b.Binary.entry b'.Binary.entry;
      Alcotest.(check int) "section count" (List.length b.Binary.sections)
        (List.length b'.Binary.sections);
      let t = Binary.text b' in
      Alcotest.(check int) "text vaddr" 0x1000 t.Section.vaddr;
      Alcotest.(check bytes) "text contents" (Zipr_util.Hex.to_bytes "f4") t.Section.data

let test_parse_bad_magic () =
  match Binary.parse (Bytes.of_string "NOPE00000000") with
  | Error Binary.Bad_magic -> ()
  | _ -> Alcotest.fail "expected bad magic"

let test_parse_corrupted_checksum () =
  let bytes = Binary.serialize (sample ()) in
  (* Flip the text section's single content byte (offset 30: after magic,
     entry, count, and the ".text" section header), leaving the checksum
     stale. *)
  Bytes.set bytes 30 '\xff';
  match Binary.parse bytes with
  | Error Binary.Bad_checksum -> ()
  | Ok _ -> Alcotest.fail "corruption not detected"
  | Error e -> Alcotest.failf "unexpected error: %a" Binary.pp_parse_error e

let test_parse_truncated () =
  let bytes = Binary.serialize (sample ()) in
  match Binary.parse (Bytes.sub bytes 0 (Bytes.length bytes - 8)) with
  | Error (Binary.Truncated_file | Binary.Bad_checksum) -> ()
  | _ -> Alcotest.fail "expected truncation error"

let test_overlap_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Binary.create ~entry:0
            [
              Section.make ~name:"a" ~kind:Section.Text ~vaddr:0x1000 (Bytes.make 16 'x');
              Section.make ~name:"b" ~kind:Section.Data ~vaddr:0x1008 (Bytes.make 16 'y');
            ]);
       false
     with Invalid_argument _ -> true)

let test_read_through_sections () =
  let b = sample () in
  Alcotest.(check (option int)) "text byte" (Some 0xf4) (Binary.read8 b 0x1000);
  Alcotest.(check (option int)) "data byte" (Some (Char.code 'h')) (Binary.read8 b 0x300000);
  Alcotest.(check (option int)) "bss reads zero" (Some 0) (Binary.read8 b 0x400010);
  Alcotest.(check (option int)) "hole" None (Binary.read8 b 0x2000)

let test_file_size_counts_contents () =
  let small = Binary.create ~entry:0x1000 [ mk_text "f4" ] in
  let big =
    Binary.create ~entry:0x1000
      [ Section.make ~name:".text" ~kind:Section.Text ~vaddr:0x1000 (Bytes.make 10000 '\x90') ]
  in
  Alcotest.(check bool) "bigger text, bigger file" true
    (Binary.file_size big > Binary.file_size small + 9000)

let test_bss_costs_no_file_bytes () =
  let without = Binary.create ~entry:0x1000 [ mk_text "f4" ] in
  let with_bss =
    Binary.create ~entry:0x1000 [ mk_text "f4"; Section.make_bss ~name:".bss" ~vaddr:0x400000 ~size:1_000_000 ]
  in
  Alcotest.(check bool) "bss nearly free" true
    (Binary.file_size with_bss < Binary.file_size without + 64)

let test_image_boot_runs () =
  (* movi r0, 7; sys 0  => exit 7 *)
  let code = Zvm.Encode.encode_all Zvm.Insn.[ Movi (Zvm.Reg.R0, 7); Sys 0 ] in
  let b = Binary.create ~entry:0x1000 [ Section.make ~name:".text" ~kind:Section.Text ~vaddr:0x1000 code ] in
  let result = Image.boot b ~input:"" in
  Alcotest.(check bool) "exit 7" true (result.Zvm.Vm.stop = Zvm.Vm.Exited 7)

let test_image_loads_bss_zeroed () =
  let code =
    Zvm.Encode.encode_all
      Zvm.Insn.[ Loada (Zvm.Reg.R0, 0x400000); Sys 0 ]
  in
  let b =
    Binary.create ~entry:0x1000
      [
        Section.make ~name:".text" ~kind:Section.Text ~vaddr:0x1000 code;
        Section.make_bss ~name:".bss" ~vaddr:0x400000 ~size:4096;
      ]
  in
  let result = Image.boot b ~input:"" in
  Alcotest.(check bool) "bss zero" true (result.Zvm.Vm.stop = Zvm.Vm.Exited 0)

let suite =
  [
    Alcotest.test_case "serialize/parse roundtrip" `Quick test_serialize_parse_roundtrip;
    Alcotest.test_case "bad magic" `Quick test_parse_bad_magic;
    Alcotest.test_case "checksum detects corruption" `Quick test_parse_corrupted_checksum;
    Alcotest.test_case "truncated file" `Quick test_parse_truncated;
    Alcotest.test_case "overlap rejected" `Quick test_overlap_rejected;
    Alcotest.test_case "read through sections" `Quick test_read_through_sections;
    Alcotest.test_case "file size tracks contents" `Quick test_file_size_counts_contents;
    Alcotest.test_case "bss costs no file bytes" `Quick test_bss_costs_no_file_bytes;
    Alcotest.test_case "image boot" `Quick test_image_boot_runs;
    Alcotest.test_case "image bss zeroed" `Quick test_image_loads_bss_zeroed;
  ]
