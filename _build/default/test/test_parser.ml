(* Tests for the textual assembly parser. *)

let assemble_and_run ?(input = "") src =
  match Zasm.Parser.assemble_string src with
  | Error e -> Alcotest.failf "assembly failed: %s" e
  | Ok (binary, _) -> Zelf.Image.boot binary ~input

let exit_code (r : Zvm.Vm.result) =
  match r.Zvm.Vm.stop with
  | Zvm.Vm.Exited n -> n
  | s -> Alcotest.failf "expected exit, got %s" (Zvm.Vm.stop_to_string s)

let test_minimal () =
  let r = assemble_and_run {|
main:
    movi r0, 42
    sys 0
|} in
  Alcotest.(check int) "exit" 42 (exit_code r)

let test_arithmetic_and_branches () =
  let r =
    assemble_and_run
      {|
; sum 1..10 with a loop
.entry main
main:
    movi r0, 0
    movi r1, 10
loop:
    add r0, r1
    subi r1, 1
    cmpi r1, 0
    jne loop
    sys 0
|}
  in
  Alcotest.(check int) "sum" 55 (exit_code r)

let test_sections_and_data () =
  let r =
    assemble_and_run
      {|
.section rodata 0x200000
value:
    .word 1234
msg:
    .asciiz "hi\n"
.section text 0x10000
main:
    loada r0, value
    sys 0
|}
  in
  Alcotest.(check int) "constant" 1234 (exit_code r)

let test_io () =
  let r =
    assemble_and_run ~input:"A"
      {|
.section bss 0x400000
buf:
    .space 16
.section text 0x10000
main:
    movi r0, 0
    movi r1, buf
    movi r2, 1
    sys 2
    movi r0, 1
    movi r1, buf
    movi r2, 1
    sys 1
    movi r0, 0
    sys 0
|}
  in
  Alcotest.(check string) "echo" "A" r.Zvm.Vm.output

let test_call_and_mem () =
  let r =
    assemble_and_run
      {|
main:
    movi r4, 7
    call double
    mov r0, r4
    sys 0
double:
    add r4, r4
    ret
|}
  in
  Alcotest.(check int) "doubled" 14 (exit_code r)

let test_width_suffixes () =
  let r = assemble_and_run {|
main:
    jmp.n next
next:
    movi r0, 1
    sys 0
|} in
  Alcotest.(check int) "near jump" 1 (exit_code r)

let test_char_literals_and_mem_operands () =
  let r =
    assemble_and_run
      {|
.section data 0x300000
cell:
    .word 0
.section text 0x10000
main:
    movi r1, cell
    movi r2, 'z'
    store [r1+0], r2
    load r0, [r1]
    sys 0
|}
  in
  Alcotest.(check int) "char stored" (Char.code 'z') (exit_code r)

let test_parse_error_reported () =
  match Zasm.Parser.parse "main:\n    frobnicate r0\n" with
  | Error e -> Alcotest.(check int) "line number" 2 e.Zasm.Parser.line
  | Ok _ -> Alcotest.fail "expected parse error"

let test_undefined_label_reported () =
  match Zasm.Parser.assemble_string "main:\n    jmp nowhere\n" with
  | Error msg ->
      Alcotest.(check bool) "mentions label" true
        (let rec scan i =
           i + 7 <= String.length msg && (String.sub msg i 7 = "nowhere" || scan (i + 1))
         in
         scan 0)
  | Ok _ -> Alcotest.fail "expected error"

let test_parsed_program_survives_rewriting () =
  match
    Zasm.Parser.assemble_string
      {|
.section rodata 0x200000
table:
    .word case0
    .word case1
.section text 0x10000
main:
    movi r3, 1
    jmpt r3, table
case0:
    movi r0, 10
    sys 0
case1:
    movi r0, 11
    sys 0
|}
  with
  | Error e -> Alcotest.failf "assembly failed: %s" e
  | Ok (binary, _) ->
      let r = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] binary in
      let orig = Zelf.Image.boot binary ~input:"" in
      let rewr = Zelf.Image.boot r.Zipr.Pipeline.rewritten ~input:"" in
      Alcotest.(check string) "same status" (Zvm.Vm.stop_to_string orig.Zvm.Vm.stop)
        (Zvm.Vm.stop_to_string rewr.Zvm.Vm.stop)

let suite =
  [
    Alcotest.test_case "minimal" `Quick test_minimal;
    Alcotest.test_case "arithmetic/branches" `Quick test_arithmetic_and_branches;
    Alcotest.test_case "sections/data" `Quick test_sections_and_data;
    Alcotest.test_case "io" `Quick test_io;
    Alcotest.test_case "call/mem" `Quick test_call_and_mem;
    Alcotest.test_case "width suffixes" `Quick test_width_suffixes;
    Alcotest.test_case "char literals" `Quick test_char_literals_and_mem_operands;
    Alcotest.test_case "parse error line" `Quick test_parse_error_reported;
    Alcotest.test_case "undefined label" `Quick test_undefined_label_reported;
    Alcotest.test_case "parsed program rewrites" `Quick test_parsed_program_survives_rewriting;
  ]
