(* Tests for the CGC evaluation substrate: generator, pollers, PoVs,
   corpus, scoring. *)

module Vm = Zvm.Vm

let test_generator_deterministic () =
  let b1, _ = Cgc.Cb_gen.generate ~seed:9 Cgc.Cb_gen.default_profile in
  let b2, _ = Cgc.Cb_gen.generate ~seed:9 Cgc.Cb_gen.default_profile in
  Alcotest.(check bytes) "identical binaries" (Zelf.Binary.serialize b1) (Zelf.Binary.serialize b2)

let test_generator_seed_sensitivity () =
  let b1, _ = Cgc.Cb_gen.generate ~seed:9 Cgc.Cb_gen.default_profile in
  let b2, _ = Cgc.Cb_gen.generate ~seed:10 Cgc.Cb_gen.default_profile in
  Alcotest.(check bool) "different binaries" true
    (Zelf.Binary.serialize b1 <> Zelf.Binary.serialize b2)

let test_generated_cb_runs () =
  let binary, meta = Cgc.Cb_gen.generate ~seed:9 Cgc.Cb_gen.default_profile in
  Alcotest.(check bool) "has commands" true (meta.Cgc.Cb_gen.commands <> []);
  let r = Zelf.Image.boot binary ~input:"q" in
  Alcotest.(check bool) "clean quit" true (r.Vm.stop = Vm.Exited 0);
  let r2 = Zelf.Image.boot binary ~input:"" in
  Alcotest.(check bool) "EOF quits" true (r2.Vm.stop = Vm.Exited 0)

let test_every_command_responds () =
  let binary, meta = Cgc.Cb_gen.generate ~seed:9 Cgc.Cb_gen.default_profile in
  List.iter
    (fun c ->
      let input = (match c with 'p' | 'd' -> Printf.sprintf "%c\x01q" c | _ -> Printf.sprintf "%cq" c) in
      let r = Zelf.Image.boot binary ~input in
      Alcotest.(check bool)
        (Printf.sprintf "command %c exits cleanly" c)
        true
        (r.Vm.stop = Vm.Exited 0);
      Alcotest.(check bool)
        (Printf.sprintf "command %c produces output" c)
        true
        (String.length r.Vm.output > 0))
    meta.Cgc.Cb_gen.commands

let test_poller_determinism () =
  let _, meta = Cgc.Cb_gen.generate ~seed:9 Cgc.Cb_gen.default_profile in
  let p1 = Cgc.Poller.generate meta ~seed:5 ~count:6 in
  let p2 = Cgc.Poller.generate meta ~seed:5 ~count:6 in
  Alcotest.(check (list string)) "same scripts"
    (List.map (fun s -> s.Cgc.Poller.input) p1)
    (List.map (fun s -> s.Cgc.Poller.input) p2)

let test_pollers_do_not_crash_original () =
  let binary, meta = Cgc.Cb_gen.generate ~seed:9 Cgc.Cb_gen.default_profile in
  let pollers = Cgc.Poller.generate meta ~seed:5 ~count:20 in
  List.iter
    (fun s ->
      let r = Cgc.Poller.run binary s in
      match r.Vm.stop with
      | Vm.Exited 0 -> ()
      | stop ->
          Alcotest.failf "poller %S crashed the original: %s" s.Cgc.Poller.input
            (Vm.stop_to_string stop))
    pollers

let test_functional_check_catches_divergence () =
  let binary, meta = Cgc.Cb_gen.generate ~seed:9 Cgc.Cb_gen.default_profile in
  let pollers = Cgc.Poller.generate meta ~seed:5 ~count:6 in
  (* Self-comparison passes. *)
  let self = Cgc.Poller.functional_check ~orig:binary ~rewritten:binary pollers in
  Alcotest.(check int) "self passes" self.Cgc.Poller.total self.Cgc.Poller.passed;
  (* A corrupted clone diverges: halt at the entry point. *)
  let text = Zelf.Binary.text binary in
  let data = Bytes.copy text.Zelf.Section.data in
  Bytes.set data 0 '\xf4';
  let corrupted =
    Zelf.Binary.create ~entry:binary.Zelf.Binary.entry
      (List.map
         (fun (s : Zelf.Section.t) ->
           if Zelf.Section.is_code s then
             Zelf.Section.make ~name:s.Zelf.Section.name ~kind:Zelf.Section.Text
               ~vaddr:s.Zelf.Section.vaddr data
           else s)
         binary.Zelf.Binary.sections)
  in
  let diff = Cgc.Poller.functional_check ~orig:binary ~rewritten:corrupted pollers in
  Alcotest.(check bool) "divergence detected" true (diff.Cgc.Poller.passed < diff.Cgc.Poller.total)

let test_pov_exploits_original () =
  let binary, meta = Cgc.Cb_gen.generate ~seed:9 Cgc.Cb_gen.default_profile in
  match Cgc.Pov.attempt binary meta with
  | Some Cgc.Pov.Exploited -> ()
  | Some (Cgc.Pov.Blocked w) -> Alcotest.failf "unexpectedly blocked: %s" w
  | Some (Cgc.Pov.Inconclusive w) -> Alcotest.failf "inconclusive: %s" w
  | None -> Alcotest.fail "profile should be vulnerable"

let test_pov_none_without_vuln () =
  let profile = { Cgc.Cb_gen.default_profile with Cgc.Cb_gen.vuln = false } in
  let binary, meta = Cgc.Cb_gen.generate ~seed:9 profile in
  Alcotest.(check bool) "no pov" true (Cgc.Pov.attempt binary meta = None)

let test_corpus_properties () =
  Alcotest.(check int) "62 CBs" 62 Cgc.Corpus.size;
  let p47 = Cgc.Corpus.profile_for 47 ~master_seed:2016 in
  Alcotest.(check bool) "CB 47 pathological" true p47.Cgc.Cb_gen.pathological;
  let e = Cgc.Corpus.entry 7 in
  Alcotest.(check string) "names" "CB_07" e.Cgc.Corpus.name;
  Alcotest.(check bool) "pollers included" true (e.Cgc.Corpus.pollers <> [])

let test_corpus_deterministic () =
  let a = Cgc.Corpus.entry 12 and b = Cgc.Corpus.entry 12 in
  Alcotest.(check bytes) "same binary"
    (Zelf.Binary.serialize a.Cgc.Corpus.binary)
    (Zelf.Binary.serialize b.Cgc.Corpus.binary)

let test_score_formulas () =
  let ov = { Cgc.Score.size_pct = 10.0; exec_pct = 3.0; mem_pct = 2.0 } in
  let e = { Cgc.Score.name = "t"; ov; functionality = 1.0; pov_blocked = Some true } in
  (* Within every threshold: availability 1, security 2. *)
  Alcotest.(check (float 1e-9)) "availability" 1.0 (Cgc.Score.availability e);
  Alcotest.(check (float 1e-9)) "security" 2.0 (Cgc.Score.security e);
  Alcotest.(check (float 1e-9)) "total" 2.0 (Cgc.Score.total e);
  let bad =
    {
      e with
      Cgc.Score.ov = { Cgc.Score.size_pct = 40.0; exec_pct = 25.0; mem_pct = 5.0 };
      pov_blocked = Some false;
    }
  in
  Alcotest.(check bool) "overheads penalized" true (Cgc.Score.availability bad < 1.0);
  Alcotest.(check (float 1e-9)) "exploited security" 1.0 (Cgc.Score.security bad)

let test_pathological_cb_behaviour () =
  (* The Figure-6 outlier: under the optimized layout it must still be
     functional, but its CFI rewrite should show the worst relative
     resource behaviour (fragmentation -> overflow). *)
  let e = Cgc.Corpus.entry 47 in
  let r =
    Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] e.Cgc.Corpus.binary
  in
  let chk =
    Cgc.Poller.functional_check ~orig:e.Cgc.Corpus.binary
      ~rewritten:r.Zipr.Pipeline.rewritten e.Cgc.Corpus.pollers
  in
  Alcotest.(check int) "still functional" chk.Cgc.Poller.total chk.Cgc.Poller.passed;
  Alcotest.(check bool) "many pins" true (r.Zipr.Pipeline.stats.Zipr.Reassemble.pins_total > 30)

let suite =
  [
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator seed-sensitive" `Quick test_generator_seed_sensitivity;
    Alcotest.test_case "generated CB runs" `Quick test_generated_cb_runs;
    Alcotest.test_case "every command responds" `Quick test_every_command_responds;
    Alcotest.test_case "poller determinism" `Quick test_poller_determinism;
    Alcotest.test_case "pollers are benign" `Quick test_pollers_do_not_crash_original;
    Alcotest.test_case "functional check" `Quick test_functional_check_catches_divergence;
    Alcotest.test_case "pov exploits original" `Quick test_pov_exploits_original;
    Alcotest.test_case "pov absent without vuln" `Quick test_pov_none_without_vuln;
    Alcotest.test_case "corpus properties" `Quick test_corpus_properties;
    Alcotest.test_case "corpus deterministic" `Quick test_corpus_deterministic;
    Alcotest.test_case "score formulas" `Quick test_score_formulas;
    Alcotest.test_case "pathological CB" `Quick test_pathological_cb_behaviour;
  ]

let test_fptr_vuln_end_to_end () =
  let profile = { Cgc.Cb_gen.default_profile with Cgc.Cb_gen.vuln_fptr = true } in
  let binary, meta = Cgc.Cb_gen.generate ~seed:77 profile in
  Alcotest.(check int) "two PoVs" 2 (List.length (Cgc.Pov.povs meta));
  (* Both exploit the original... *)
  List.iter
    (fun (kind, o) ->
      Alcotest.(check bool) (kind ^ " exploits original") true (o = Cgc.Pov.Exploited))
    (Cgc.Pov.attempt_all binary meta);
  (* ...and CFI blocks both, through different checks (ret vs callr). *)
  let rc = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Cfi.transform ] binary in
  List.iter
    (fun (kind, o) ->
      Alcotest.(check bool)
        (kind ^ " blocked by CFI")
        true
        (match o with Cgc.Pov.Blocked _ -> true | _ -> false))
    (Cgc.Pov.attempt_all rc.Zipr.Pipeline.rewritten meta);
  (* Benign pollers (including 'b' uploads and 'x' dispatches) pass. *)
  let pollers = Cgc.Poller.generate meta ~seed:3 ~count:8 in
  let chk =
    Cgc.Poller.functional_check ~orig:binary ~rewritten:rc.Zipr.Pipeline.rewritten pollers
  in
  Alcotest.(check int) "cfi functionality" chk.Cgc.Poller.total chk.Cgc.Poller.passed

let suite = suite @ [ Alcotest.test_case "fptr vuln end-to-end" `Quick test_fptr_vuln_end_to_end ]

let test_corpus_regression_sweep () =
  (* The CGC experiment in miniature, as a regression gate: a slice of the
     corpus must rewrite cleanly under both configurations, preserve every
     poller transcript, leave the PoVs working under Null and blocked
     under CFI. *)
  List.iter
    (fun i ->
      let e = Cgc.Corpus.entry i in
      let orig = e.Cgc.Corpus.binary in
      let rn = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Null.transform ] orig in
      let rc = Zipr.Pipeline.rewrite ~transforms:[ Transforms.Cfi.transform ] orig in
      let cn =
        Cgc.Poller.functional_check ~orig ~rewritten:rn.Zipr.Pipeline.rewritten
          e.Cgc.Corpus.pollers
      in
      let cc =
        Cgc.Poller.functional_check ~orig ~rewritten:rc.Zipr.Pipeline.rewritten
          e.Cgc.Corpus.pollers
      in
      Alcotest.(check int) (e.Cgc.Corpus.name ^ " null pollers") cn.Cgc.Poller.total
        cn.Cgc.Poller.passed;
      Alcotest.(check int) (e.Cgc.Corpus.name ^ " cfi pollers") cc.Cgc.Poller.total
        cc.Cgc.Poller.passed;
      List.iter
        (fun (kind, o) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s still exploits null rewrite" e.Cgc.Corpus.name kind)
            true (o = Cgc.Pov.Exploited))
        (Cgc.Pov.attempt_all rn.Zipr.Pipeline.rewritten e.Cgc.Corpus.meta);
      List.iter
        (fun (kind, o) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s blocked by cfi" e.Cgc.Corpus.name kind)
            true
            (match o with Cgc.Pov.Blocked _ -> true | _ -> false))
        (Cgc.Pov.attempt_all rc.Zipr.Pipeline.rewritten e.Cgc.Corpus.meta))
    (* A deliberately tricky slice: jump tables off and on, islands,
       hidden code, dense pins, PIC, fptr vuln, and the pathological CB. *)
    [ 0; 1; 3; 5; 8; 13; 14; 21; 47 ]

let suite =
  suite @ [ Alcotest.test_case "corpus regression sweep" `Slow test_corpus_regression_sweep ]
