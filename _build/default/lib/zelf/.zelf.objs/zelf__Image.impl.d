lib/zelf/image.ml: Binary List Section Zvm
