lib/zelf/binary.ml: Bytes Char Format List Printf Section String Zipr_util
