lib/zelf/section.mli: Format
