lib/zelf/image.mli: Binary Zvm
