lib/zelf/binary.mli: Format Section
