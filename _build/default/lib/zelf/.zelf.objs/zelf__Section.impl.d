lib/zelf/section.ml: Bytes Format
