type kind = Text | Rodata | Data | Bss

type t = { name : string; kind : kind; vaddr : int; data : bytes; size : int }

let make ~name ~kind ~vaddr data =
  if kind = Bss then invalid_arg "Section.make: use make_bss for bss sections";
  { name; kind; vaddr; data; size = Bytes.length data }

let make_bss ~name ~vaddr ~size = { name; kind = Bss; vaddr; data = Bytes.empty; size }

let vend t = t.vaddr + t.size

let contains t addr = addr >= t.vaddr && addr < vend t

let is_code t = t.kind = Text

let kind_code = function Text -> 0 | Rodata -> 1 | Data -> 2 | Bss -> 3

let kind_of_code = function
  | 0 -> Some Text
  | 1 -> Some Rodata
  | 2 -> Some Data
  | 3 -> Some Bss
  | _ -> None

let kind_to_string = function
  | Text -> "text"
  | Rodata -> "rodata"
  | Data -> "data"
  | Bss -> "bss"

let pp ppf t =
  Format.fprintf ppf "%s(%s) [0x%x,0x%x) %d bytes" t.name (kind_to_string t.kind) t.vaddr
    (vend t) t.size
