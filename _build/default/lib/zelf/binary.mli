(** The ZBF ("ZVM binary format") executable container.

    ZBF plays the role ELF plays for real Zipr: it is what the rewriter
    parses, what it emits, and what the on-disk file-size metric of the
    CGC evaluation is measured on.  The format is deliberately simple —
    magic, entry point, a section table, section contents, and a trailing
    checksum — but like ELF it stores full section images, so address-space
    fragmentation produced by a careless rewriter directly costs file
    bytes.

    Wire format (all integers little-endian 32-bit):
    {v
      "ZBF1"  entry  nsections
      per section: name_len name kind vaddr size [contents unless bss]
      checksum (Adler-32 of everything preceding)
    v} *)

type t = { entry : int; sections : Section.t list }

val create : entry:int -> Section.t list -> t
(** Validates that sections do not overlap; raises [Invalid_argument] if
    they do. *)

type parse_error =
  | Bad_magic
  | Bad_checksum
  | Bad_section of string
  | Truncated_file

val pp_parse_error : Format.formatter -> parse_error -> unit

val serialize : t -> bytes

val parse : bytes -> (t, parse_error) result

val file_size : t -> int
(** On-disk size: [Bytes.length (serialize t)]. *)

val find_section : t -> string -> Section.t option

val text : t -> Section.t
(** The first [Text] section.  Raises [Not_found] if there is none. *)

val section_at : t -> int -> Section.t option
(** The section containing an address. *)

val read8 : t -> int -> int option
(** Read a byte through the section map (bss reads as 0). *)

val read32 : t -> int -> int option

val min_vaddr : t -> int
val max_vend : t -> int

val pp : Format.formatter -> t -> unit
