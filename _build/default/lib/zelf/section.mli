(** Sections of a ZBF binary.

    A section is a named, typed range of the program's address space.
    [Text] holds machine code, [Rodata] read-only data (string literals,
    jump tables, function-pointer tables), [Data] initialized writable
    data, and [Bss] zero-initialized writable data that occupies no file
    bytes. *)

type kind = Text | Rodata | Data | Bss

type t = {
  name : string;
  kind : kind;
  vaddr : int;  (** load address *)
  data : bytes;  (** contents; empty for [Bss] *)
  size : int;  (** in-memory size; equals [Bytes.length data] except for [Bss] *)
}

val make : name:string -> kind:kind -> vaddr:int -> bytes -> t
(** A progbits section whose memory size is its content length. *)

val make_bss : name:string -> vaddr:int -> size:int -> t

val vend : t -> int
(** One past the last address of the section. *)

val contains : t -> int -> bool
(** Is the address inside [\[vaddr, vend)]? *)

val is_code : t -> bool

val kind_code : kind -> int
val kind_of_code : int -> kind option
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
