module B = Zipr_util.Bytebuf

type t = { entry : int; sections : Section.t list }

type parse_error = Bad_magic | Bad_checksum | Bad_section of string | Truncated_file

let pp_parse_error ppf = function
  | Bad_magic -> Format.fprintf ppf "bad magic"
  | Bad_checksum -> Format.fprintf ppf "bad checksum"
  | Bad_section s -> Format.fprintf ppf "bad section: %s" s
  | Truncated_file -> Format.fprintf ppf "truncated file"

let magic = "ZBF1"

let create ~entry sections =
  let sorted = List.sort (fun a b -> compare a.Section.vaddr b.Section.vaddr) sections in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if Section.vend a > b.Section.vaddr then
          invalid_arg
            (Format.asprintf "Binary.create: sections overlap: %a and %a" Section.pp a
               Section.pp b);
        check rest
    | _ -> ()
  in
  check sorted;
  { entry; sections = sorted }

(* Adler-32, enough integrity checking to catch corrupted emission. *)
let adler32 b =
  let a = ref 1 and bsum = ref 0 in
  Bytes.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      bsum := (!bsum + !a) mod 65521)
    b;
  (!bsum lsl 16) lor !a

let serialize t =
  let buf = B.create ~capacity:4096 () in
  B.string buf magic;
  B.u32 buf t.entry;
  B.u32 buf (List.length t.sections);
  List.iter
    (fun (s : Section.t) ->
      B.u32 buf (String.length s.name);
      B.string buf s.name;
      B.u8 buf (Section.kind_code s.kind);
      B.u32 buf s.vaddr;
      B.u32 buf s.size;
      if s.kind <> Section.Bss then B.blit_bytes buf s.data)
    t.sections;
  let body = B.contents buf in
  B.u32 buf (adler32 body);
  B.contents buf

let parse b =
  let pos = ref 0 in
  let len = Bytes.length b in
  let need n = !pos + n <= len in
  let u8 () =
    let v = Char.code (Bytes.get b !pos) in
    incr pos;
    v
  in
  let u32 () =
    let v0 = u8 () and v1 = u8 () and v2 = u8 () and v3 = u8 () in
    v0 lor (v1 lsl 8) lor (v2 lsl 16) lor (v3 lsl 24)
  in
  let str n =
    let s = Bytes.sub_string b !pos n in
    pos := !pos + n;
    s
  in
  try
    if not (need 12) then Error Truncated_file
    else if str 4 <> magic then Error Bad_magic
    else begin
      let entry = u32 () in
      let nsections = u32 () in
      if nsections > 1024 then Error (Bad_section "unreasonable section count")
      else begin
        let sections = ref [] in
        let err = ref None in
        (try
           for _ = 1 to nsections do
             if not (need 4) then raise Exit;
             let name_len = u32 () in
             if name_len > 4096 || not (need (name_len + 9)) then raise Exit;
             let name = str name_len in
             let kind_code = u8 () in
             let vaddr = u32 () in
             let size = u32 () in
             match Section.kind_of_code kind_code with
             | None ->
                 err := Some (Bad_section (Printf.sprintf "%s: bad kind %d" name kind_code));
                 raise Exit
             | Some Section.Bss -> sections := Section.make_bss ~name ~vaddr ~size :: !sections
             | Some kind ->
                 if not (need size) then raise Exit;
                 let data = Bytes.sub b !pos size in
                 pos := !pos + size;
                 sections := Section.make ~name ~kind ~vaddr data :: !sections
           done
         with Exit -> if !err = None then err := Some Truncated_file);
        match !err with
        | Some e -> Error e
        | None ->
            if not (need 4) then Error Truncated_file
            else begin
              let body = Bytes.sub b 0 !pos in
              let checksum = u32 () in
              if checksum <> adler32 body then Error Bad_checksum
              else
                match create ~entry (List.rev !sections) with
                | t -> Ok t
                | exception Invalid_argument msg -> Error (Bad_section msg)
            end
      end
    end
  with Invalid_argument _ -> Error Truncated_file

let file_size t = Bytes.length (serialize t)

let find_section t name = List.find_opt (fun (s : Section.t) -> s.name = name) t.sections

let text t =
  match List.find_opt Section.is_code t.sections with
  | Some s -> s
  | None -> raise Not_found

let section_at t addr = List.find_opt (fun s -> Section.contains s addr) t.sections

let read8 t addr =
  match section_at t addr with
  | None -> None
  | Some s ->
      if s.kind = Section.Bss then Some 0
      else Some (Char.code (Bytes.get s.data (addr - s.vaddr)))

let read32 t addr =
  match (read8 t addr, read8 t (addr + 1), read8 t (addr + 2), read8 t (addr + 3)) with
  | Some a, Some b, Some c, Some d -> Some (a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24))
  | _ -> None

let min_vaddr t =
  List.fold_left (fun acc (s : Section.t) -> min acc s.vaddr) max_int t.sections

let max_vend t = List.fold_left (fun acc s -> max acc (Section.vend s)) 0 t.sections

let pp ppf t =
  Format.fprintf ppf "@[<v>entry=0x%x@,%a@]" t.entry
    (Format.pp_print_list Section.pp)
    t.sections
