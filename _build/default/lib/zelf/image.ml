let load mem (b : Binary.t) =
  List.iter
    (fun (s : Section.t) ->
      match s.kind with
      | Section.Bss -> Zvm.Memory.map mem ~addr:s.vaddr ~len:s.size
      | _ -> Zvm.Memory.load_bytes mem ~addr:s.vaddr s.data)
    b.sections

let vm_of ?random_seed (b : Binary.t) ~input =
  let mem = Zvm.Memory.create () in
  load mem b;
  Zvm.Vm.create ?random_seed ~mem ~entry:b.entry ~input ()

let boot ?stack_top ?stack_pages ?random_seed ?fuel (b : Binary.t) ~input =
  let mem = Zvm.Memory.create () in
  load mem b;
  let vm = Zvm.Vm.create ?stack_top ?stack_pages ?random_seed ~mem ~entry:b.entry ~input () in
  Zvm.Vm.run ?fuel vm
