(** Loading ZBF binaries into VM memory. *)

val load : Zvm.Memory.t -> Binary.t -> unit
(** Map and initialize every section at its load address.  [Bss] sections
    map zero-filled pages. *)

val boot :
  ?stack_top:int ->
  ?stack_pages:int ->
  ?random_seed:int ->
  ?fuel:int ->
  Binary.t ->
  input:string ->
  Zvm.Vm.result
(** Convenience one-shot: load the binary into a fresh memory, run it on
    [input], and return the transcript. *)

val vm_of : ?random_seed:int -> Binary.t -> input:string -> Zvm.Vm.t
(** Load into fresh memory and return the ready-to-run VM (for callers
    that want stepping or post-mortem inspection). *)
