(** CFE-style scoring of a replacement challenge binary.

    The CGC final event scored each replacement binary on availability
    (functionality preserved, performance within 5% CPU / 5% memory /
    20% file-size envelopes) and security (proofs of vulnerability
    stopped).  The exact CFE formula had competition-specific constants;
    this module implements a documented simplification that preserves its
    structure: overhead beyond a threshold divides availability, and
    stopping the PoV doubles the score.

    - [availability = functionality / (1 + excess)] where [excess] sums
      [max 0 (exec% - 5)], [max 0 (mem% - 5)] and [max 0 (size% - 20)]
      (as fractions);
    - [security] is 2 when every PoV is blocked, else 1;
    - [total = availability * security]. *)

type overheads = { size_pct : float; exec_pct : float; mem_pct : float }

val overheads :
  orig:Zelf.Binary.t -> rewritten:Zelf.Binary.t -> Poller.script list -> overheads
(** File-size from serialization, execution from summed poller cycles,
    memory from peak poller RSS pages. *)

type eval = {
  name : string;
  ov : overheads;
  functionality : float;  (** fraction of pollers with matching transcripts *)
  pov_blocked : bool option;  (** [None] when the CB has no PoV *)
}

val evaluate :
  name:string ->
  orig:Zelf.Binary.t ->
  rewritten:Zelf.Binary.t ->
  meta:Cb_gen.meta ->
  pollers:Poller.script list ->
  eval

val availability : eval -> float
val security : eval -> float
val total : eval -> float

val pp_eval : Format.formatter -> eval -> unit
