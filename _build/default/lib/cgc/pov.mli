(** Proofs of vulnerability: control-flow-hijack exploits for the
    generated challenge binaries.

    Each vulnerable CB's overflow is triggered with a payload that places
    ZVM shellcode in the stack buffer and overwrites the saved return
    address with the buffer's (deterministic) address.  The shellcode
    transmits {!marker} and terminates with {!exploit_status} — the
    observable "flag capture".  The PoV demonstrably works on the
    original and Null-rewritten binaries; a CFI-rewritten binary must
    stop it (safe termination), which is the competition's definition of
    a fielded defense. *)

val marker : string
(** ["PWN!"] *)

val exploit_status : int
(** 42 *)

val povs : Cb_gen.meta -> (string * string) list
(** Every exploit the profile admits, as (kind, input) pairs: the stack
    overflow ("stack-overflow", return hijack through [ret]) and, when
    the profile has the writable dispatch table, the pointer overwrite
    ("fptr-overwrite", hijack through [callr]).  The two exercise both
    halves of a CFI defense. *)

val build : Cb_gen.meta -> string option
(** The first exploit input, or [None] for an invulnerable profile. *)

type outcome =
  | Exploited  (** shellcode ran: marker transmitted or exploit status *)
  | Blocked of string  (** stopped before the shellcode (reason rendered) *)
  | Inconclusive of string

val classify : Zvm.Vm.result -> outcome

val attempt_all : ?fuel:int -> Zelf.Binary.t -> Cb_gen.meta -> (string * outcome) list
(** Run every PoV against a binary. *)

val attempt : ?fuel:int -> Zelf.Binary.t -> Cb_gen.meta -> outcome option
(** Run the first PoV against a binary; [None] if the profile has no
    vulnerability. *)
