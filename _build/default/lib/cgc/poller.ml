module Rng = Zipr_util.Rng

type script = { input : string }

let random_payload rng n =
  String.init n (fun _ -> Char.chr (32 + Rng.int rng 95))

(* Append one command plus any argument bytes it consumes ('d' and 'p'
   read one extra byte). *)
let add_command rng buf c =
  Buffer.add_char buf c;
  match c with
  | 'd' | 'p' | 'x' -> Buffer.add_char buf (Char.chr (Rng.int rng 256))
  | 'b' ->
      (* benign upload: bounded length plus payload *)
      let n = 1 + Rng.int rng 48 in
      Buffer.add_char buf (Char.chr n);
      Buffer.add_string buf (random_payload rng n)
  | _ -> ()

(* One random command with its argument bytes. *)
let random_command (meta : Cb_gen.meta) rng buf =
  match Rng.int rng 10 with
  | 0 | 1 | 2 | 3 | 4 ->
      (* dispatchable command *)
      if meta.Cb_gen.commands <> [] then
        add_command rng buf (Rng.choose_list rng meta.Cb_gen.commands)
  | 5 | 6 ->
      if meta.Cb_gen.fptr_count > 0 then begin
        Buffer.add_char buf 'p';
        Buffer.add_char buf (Char.chr (Rng.int rng 256))
      end
      else if meta.Cb_gen.commands <> [] then
        add_command rng buf (Rng.choose_list rng meta.Cb_gen.commands)
  | 7 ->
      (* unknown command: exercises the error path *)
      Buffer.add_char buf (Rng.choose rng [| '!'; '@'; 'z'; '~' |])
  | _ -> (
      (* benign use of the vulnerable handler: in-bounds write *)
      match meta.Cb_gen.vuln_frame with
      | Some frame when frame > 16 ->
          let n = 1 + Rng.int rng (frame - 16) in
          Buffer.add_char buf 'v';
          Buffer.add_char buf (Char.chr n);
          Buffer.add_string buf (random_payload rng n)
      | _ ->
          if meta.Cb_gen.commands <> [] then
            add_command rng buf (Rng.choose_list rng meta.Cb_gen.commands))

let generate meta ~seed ~count =
  let rng = Rng.create seed in
  List.init count (fun i ->
      let buf = Buffer.create 64 in
      (* The first scripts deterministically cover each command once. *)
      (match (i, meta.Cb_gen.commands) with
      | 0, cmds -> List.iter (add_command rng buf) cmds
      | _ ->
          let n = 2 + Rng.int rng 12 in
          for _ = 1 to n do
            random_command meta rng buf
          done);
      (* Half the scripts end with an explicit quit, half with EOF. *)
      if Rng.bool rng then Buffer.add_char buf 'q';
      { input = Buffer.contents buf })

let run ?(fuel = 5_000_000) binary script = Zelf.Image.boot ~fuel binary ~input:script.input

type check = { total : int; passed : int; failures : (script * string) list }

let functional_check ?fuel ~orig ~rewritten scripts =
  let failures = ref [] in
  let passed = ref 0 in
  List.iter
    (fun script ->
      let a = run ?fuel orig script in
      let b = run ?fuel rewritten script in
      if a.Zvm.Vm.output <> b.Zvm.Vm.output then
        failures := (script, "output mismatch") :: !failures
      else if not (Zvm.Vm.equal_stop a.Zvm.Vm.stop b.Zvm.Vm.stop) then
        failures :=
          ( script,
            Printf.sprintf "status mismatch: %s vs %s"
              (Zvm.Vm.stop_to_string a.Zvm.Vm.stop)
              (Zvm.Vm.stop_to_string b.Zvm.Vm.stop) )
          :: !failures
      else incr passed)
    scripts;
  { total = List.length scripts; passed = !passed; failures = List.rev !failures }

type usage = { cycles : int; insns : int; rss_pages : int }

let measure ?fuel binary scripts =
  List.fold_left
    (fun acc script ->
      let r = run ?fuel binary script in
      {
        cycles = acc.cycles + r.Zvm.Vm.cycles;
        insns = acc.insns + r.Zvm.Vm.insns;
        rss_pages = max acc.rss_pages r.Zvm.Vm.max_rss_pages;
      })
    { cycles = 0; insns = 0; rss_pages = 0 }
    scripts
