(** Challenge-binary generator.

    DARPA's CGC challenge binaries were purpose-written network services:
    a command loop over DECREE I/O, rich dispatch (switch tables, function
    pointers), compute kernels, and at least one injected memory-safety
    vulnerability.  This generator reproduces that shape deterministically
    from a seed, with knobs for every structural trait that stresses a
    rewriter:

    - jump-table and function-pointer dispatch (indirect-branch targets);
    - data islands inside the text section (code/data disambiguation);
    - hidden code reached through computed jumps no static analysis can
      follow (conservative fixed ranges);
    - adjacent 1-byte address-taken targets (dense pins, sleds);
    - a stack-overflow vulnerability with a deterministic PoV;
    - a "pathological" mode modelled on the paper's Figure-6 outlier:
      pinned addresses scattered densely between large dollops.

    Every binary reads commands until ['q'] or EOF and answers each with
    output that depends on the command, its arguments, and a running
    session accumulator, so pollers get deep behavioural coverage. *)

type profile = {
  n_handlers : int;  (** switch-dispatched command handlers *)
  n_helpers : int;  (** call-graph depth fodder *)
  body_ops : int;  (** straight-line ALU ops per handler body *)
  loop_iters : int;  (** hot-loop trip count (execution-time profile) *)
  use_jump_table : bool;
  n_fptrs : int;  (** function-pointer table entries (0 = none) *)
  data_islands : int;  (** data blobs embedded in text *)
  hidden_funcs : int;  (** computed-jump-only code regions *)
  dense_pair : bool;  (** adjacent 1-byte pins forcing a sled *)
  vuln : bool;
  vuln_fptr : bool;
      (** a second vulnerability class: an unchecked indexed write into a
          writable function-pointer table ('w'), triggered through 'x' —
          hijacks via [callr] rather than [ret] *)
  pathological : bool;  (** scatter many pins between large dollops *)
  mem_span : int;  (** bytes of working buffer each handler touches *)
  pic : bool;  (** form data addresses PC-relatively (position-independent style) *)
}

val default_profile : profile
(** A mid-sized CB: 6 handlers, 8 helpers, jump table, 4 function
    pointers, one island, one hidden function, vulnerable. *)

type meta = {
  seed : int;
  profile : profile;
  symbols : (string * int) list;
  commands : char list;  (** dispatchable command bytes (excluding 'q') *)
  fptr_count : int;
  vuln_frame : int option;  (** vulnerable handler's frame size, if any *)
  vuln_buffer_addr : int option;  (** deterministic stack address of the buffer *)
  fptr_slots_addr : int option;  (** writable pointer table, when [vuln_fptr] *)
  upload_buf_addr : int option;  (** attacker-controllable upload buffer, when [vuln_fptr] *)
}

val generate : seed:int -> profile -> Zelf.Binary.t * meta
(** Deterministic: equal seeds and profiles yield identical binaries. *)
