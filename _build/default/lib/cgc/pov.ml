module B = Zipr_util.Bytebuf

let marker = "PWN!"
let exploit_status = 42

(* Shellcode that transmits the marker (placed at [marker_addr]) and
   exits with the flag status. *)
let shellcode ~marker_addr =
  Zvm.Encode.encode_all
    Zvm.Insn.
      [
        Movi (Zvm.Reg.R0, 1);
        Movi (Zvm.Reg.R1, marker_addr);
        Movi (Zvm.Reg.R2, String.length marker);
        Sys 1;
        Movi (Zvm.Reg.R0, exploit_status);
        Sys 0;
      ]

let build_stack (meta : Cb_gen.meta) =
  match (meta.Cb_gen.vuln_frame, meta.Cb_gen.vuln_buffer_addr) with
  | Some frame, Some buffer_addr ->
      let buf = B.create () in
      let marker_off = frame - 12 in
      let shell = shellcode ~marker_addr:(buffer_addr + marker_off) in
      assert (Bytes.length shell <= marker_off);
      B.blit_bytes buf shell;
      B.zeros buf (marker_off - Bytes.length shell);
      B.string buf marker;
      B.zeros buf (frame - B.length buf);
      B.u32 buf buffer_addr;
      let payload = B.to_string buf in
      Some (Printf.sprintf "v%c%s" (Char.chr (String.length payload)) payload)
  | _ -> None

(* The function-pointer overwrite: upload shellcode to the bounded buffer
   ('b' — benign in itself), stomp dispatch slot 0 with its address ('w'
   — the unchecked write), and trigger it ('x'). *)
let build_fptr (meta : Cb_gen.meta) =
  match meta.Cb_gen.upload_buf_addr with
  | Some upload ->
      let buf = B.create () in
      let marker_off = 40 in
      let shell = shellcode ~marker_addr:(upload + marker_off) in
      assert (Bytes.length shell <= marker_off);
      B.blit_bytes buf shell;
      B.zeros buf (marker_off - Bytes.length shell);
      B.string buf marker;
      let payload = B.to_string buf in
      let input = Buffer.create 64 in
      Buffer.add_char input 'b';
      Buffer.add_char input (Char.chr (String.length payload));
      Buffer.add_string input payload;
      Buffer.add_char input 'w';
      Buffer.add_char input '\000';
      Buffer.add_char input (Char.chr (upload land 0xff));
      Buffer.add_char input (Char.chr ((upload lsr 8) land 0xff));
      Buffer.add_char input (Char.chr ((upload lsr 16) land 0xff));
      Buffer.add_char input (Char.chr ((upload lsr 24) land 0xff));
      Buffer.add_char input 'x';
      Buffer.add_char input '\000';
      Some (Buffer.contents input)
  | None -> None

let povs meta =
  List.filter_map
    (fun (kind, v) -> Option.map (fun input -> (kind, input)) v)
    [ ("stack-overflow", build_stack meta); ("fptr-overwrite", build_fptr meta) ]

let build meta = Option.map snd (List.nth_opt (povs meta) 0)

type outcome = Exploited | Blocked of string | Inconclusive of string

let classify (r : Zvm.Vm.result) =
  let has_marker =
    let m = marker and s = r.Zvm.Vm.output in
    let ml = String.length m and sl = String.length s in
    let rec scan i = i + ml <= sl && (String.sub s i ml = m || scan (i + 1)) in
    scan 0
  in
  if has_marker || r.Zvm.Vm.stop = Zvm.Vm.Exited exploit_status then Exploited
  else
    match r.Zvm.Vm.stop with
    | Zvm.Vm.Exited n when n = Transforms.Cfi.violation_status ->
        Blocked "CFI violation (safe termination)"
    | Zvm.Vm.Exited n when n = Transforms.Canary.violation_status ->
        Blocked "canary mismatch (safe termination)"
    | Zvm.Vm.Exited n when n = Transforms.Shadow_stack.violation_status ->
        Blocked "shadow-stack mismatch (safe termination)"
    | Zvm.Vm.Fault f -> Blocked (Format.asprintf "%a" Zvm.Vm.pp_stop (Zvm.Vm.Fault f))
    | stop -> Inconclusive (Zvm.Vm.stop_to_string stop)

let attempt_all ?(fuel = 5_000_000) binary meta =
  List.map (fun (kind, input) -> (kind, classify (Zelf.Image.boot ~fuel binary ~input))) (povs meta)

let attempt ?fuel binary meta =
  match attempt_all ?fuel binary meta with [] -> None | (_, o) :: _ -> Some o
