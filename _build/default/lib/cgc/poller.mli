(** Pollers: deterministic functionality and performance probes.

    In the CGC, DARPA required challenge-binary authors to supply pollers
    exercising all of a CB's functionality; replacement binaries were
    scored on poller behaviour (functionality) and poller resource usage
    (execution time, memory) relative to the original.  Here a poller is a
    generated input script; its expected behaviour is whatever the
    {e original} binary does with it, so a rewritten binary passes when
    its transcript (output bytes and exit status) matches byte-for-byte. *)

type script = { input : string }

val generate : Cb_gen.meta -> seed:int -> count:int -> script list
(** Random command scripts covering every dispatchable command, indirect
    calls, hidden code, benign (in-bounds) uses of the vulnerable
    handler, unknown-command paths, and quit/EOF endings. *)

val run : ?fuel:int -> Zelf.Binary.t -> script -> Zvm.Vm.result

type check = {
  total : int;
  passed : int;
  failures : (script * string) list;  (** script and a short reason *)
}

val functional_check :
  ?fuel:int -> orig:Zelf.Binary.t -> rewritten:Zelf.Binary.t -> script list -> check
(** Byte-for-byte transcript comparison over every script. *)

type usage = {
  cycles : int;  (** summed over scripts *)
  insns : int;
  rss_pages : int;  (** maximum over scripts *)
}

val measure : ?fuel:int -> Zelf.Binary.t -> script list -> usage
