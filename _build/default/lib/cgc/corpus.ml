module Rng = Zipr_util.Rng

type entry = {
  name : string;
  binary : Zelf.Binary.t;
  meta : Cb_gen.meta;
  pollers : Poller.script list;
}

let size = 62

let profile_for i ~master_seed =
  let rng = Rng.create (master_seed + (i * 7919)) in
  if i = 47 then
    (* The Figure-6 outlier: scattered pins, large dollops. *)
    {
      Cb_gen.n_handlers = 10;
      n_helpers = 6;
      body_ops = 500;
      loop_iters = 30;
      use_jump_table = true;
      n_fptrs = 6;
      data_islands = 0;
      hidden_funcs = 0;
      dense_pair = false;
      vuln = true;
      vuln_fptr = false;
      pathological = true;
      mem_span = 0;
      pic = false;
    }
  else
    {
      Cb_gen.n_handlers = 4 + Rng.int rng 7;
      n_helpers = 8 + Rng.int rng 22;
      body_ops = 40 + Rng.int rng 110;
      loop_iters = 100 + Rng.int rng 700;
      use_jump_table = i mod 3 <> 1;
      n_fptrs = (match i mod 4 with 0 -> 0 | 1 -> 2 | 2 -> 4 | _ -> 6);
      data_islands = (if i mod 5 = 0 then 1 + Rng.int rng 2 else 0);
      hidden_funcs = (if i mod 6 = 2 then 1 else 0);
      dense_pair = i mod 7 = 3;
      vuln = true;
      vuln_fptr = i mod 8 = 5;
      pathological = false;
      mem_span = 64 lsl Rng.int rng 8;
      pic = i mod 9 = 4;
    }

let entry ?(master_seed = 2016) ?(pollers_per_cb = 8) i =
  let profile = profile_for i ~master_seed in
  let binary, meta = Cb_gen.generate ~seed:(master_seed + i) profile in
  let pollers = Poller.generate meta ~seed:(master_seed + (1000 * i)) ~count:pollers_per_cb in
  { name = Printf.sprintf "CB_%02d" i; binary; meta; pollers }

let build ?master_seed ?pollers_per_cb ?(n = size) () =
  List.init n (fun i -> entry ?master_seed ?pollers_per_cb i)
