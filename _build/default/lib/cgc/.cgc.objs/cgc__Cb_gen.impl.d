lib/cgc/cb_gen.ml: Assemble Ast Builder Char List Printf Zasm Zipr_util Zvm
