lib/cgc/corpus.mli: Cb_gen Poller Zelf
