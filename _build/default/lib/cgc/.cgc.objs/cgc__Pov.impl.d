lib/cgc/pov.ml: Buffer Bytes Cb_gen Char Format List Option Printf String Transforms Zelf Zipr_util Zvm
