lib/cgc/corpus.ml: Cb_gen List Poller Printf Zelf Zipr_util
