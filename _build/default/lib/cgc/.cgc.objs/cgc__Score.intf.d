lib/cgc/score.mli: Cb_gen Format Poller Zelf
