lib/cgc/poller.ml: Buffer Cb_gen Char List Printf String Zelf Zipr_util Zvm
