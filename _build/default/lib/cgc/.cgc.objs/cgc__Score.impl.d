lib/cgc/score.ml: Format List Poller Pov Zelf Zipr_util
