lib/cgc/poller.mli: Cb_gen Zelf Zvm
