lib/cgc/cb_gen.mli: Zelf
