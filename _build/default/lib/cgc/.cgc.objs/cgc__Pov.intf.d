lib/cgc/pov.mli: Cb_gen Zelf Zvm
