module Stats = Zipr_util.Stats

type overheads = { size_pct : float; exec_pct : float; mem_pct : float }

let overheads ~orig ~rewritten pollers =
  let size_pct =
    Stats.overhead_pct
      ~baseline:(float_of_int (Zelf.Binary.file_size orig))
      ~measured:(float_of_int (Zelf.Binary.file_size rewritten))
  in
  let uo = Poller.measure orig pollers in
  let ur = Poller.measure rewritten pollers in
  {
    size_pct;
    exec_pct =
      Stats.overhead_pct
        ~baseline:(float_of_int uo.Poller.cycles)
        ~measured:(float_of_int ur.Poller.cycles);
    mem_pct =
      Stats.overhead_pct
        ~baseline:(float_of_int uo.Poller.rss_pages)
        ~measured:(float_of_int ur.Poller.rss_pages);
  }

type eval = {
  name : string;
  ov : overheads;
  functionality : float;
  pov_blocked : bool option;
}

let evaluate ~name ~orig ~rewritten ~meta ~pollers =
  let ov = overheads ~orig ~rewritten pollers in
  let check = Poller.functional_check ~orig ~rewritten pollers in
  let functionality =
    if check.Poller.total = 0 then 1.0
    else float_of_int check.Poller.passed /. float_of_int check.Poller.total
  in
  let pov_blocked =
    match Pov.attempt_all rewritten meta with
    | [] -> None
    | outcomes -> Some (List.for_all (fun (_, o) -> o <> Pov.Exploited) outcomes)
  in
  { name; ov; functionality; pov_blocked }

let availability e =
  let excess =
    (max 0.0 (e.ov.exec_pct -. 5.0) /. 100.0)
    +. (max 0.0 (e.ov.mem_pct -. 5.0) /. 100.0)
    +. (max 0.0 (e.ov.size_pct -. 20.0) /. 100.0)
  in
  e.functionality /. (1.0 +. excess)

let security e = match e.pov_blocked with Some true -> 2.0 | _ -> 1.0

let total e = availability e *. security e

let pp_eval ppf e =
  Format.fprintf ppf "%s: size=%+.1f%% exec=%+.1f%% mem=%+.1f%% func=%.2f pov=%s score=%.3f"
    e.name e.ov.size_pct e.ov.exec_pct e.ov.mem_pct e.functionality
    (match e.pov_blocked with
    | None -> "n/a"
    | Some true -> "blocked"
    | Some false -> "EXPLOITED")
    (total e)
