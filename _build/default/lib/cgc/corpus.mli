(** The evaluation corpus: 62 deterministic challenge binaries, matching
    the count the paper measured during the CGC final event (§IV-B, "For
    62 of the CBs deployed during CFE...").

    Profiles sweep the structural space — handler counts, body sizes,
    loop weights, dispatch styles, data islands, hidden code, dense pins
    — and CB #47 uses the pathological profile that reproduces the
    paper's Figure-6 memory outlier (pinned addresses fragmenting the
    address space under large dollops). *)

type entry = {
  name : string;  (** "CB_00" ... *)
  binary : Zelf.Binary.t;
  meta : Cb_gen.meta;
  pollers : Poller.script list;
}

val size : int
(** 62. *)

val profile_for : int -> master_seed:int -> Cb_gen.profile
(** The deterministic profile of corpus index [i] (exposed for tests). *)

val entry : ?master_seed:int -> ?pollers_per_cb:int -> int -> entry
(** Build a single corpus member (default master seed 2016, 8 pollers). *)

val build : ?master_seed:int -> ?pollers_per_cb:int -> ?n:int -> unit -> entry list
(** Build the first [n] members (default: all {!size}). *)
